// Ablation (paper Appendix A + §2): what do Bouncer's per-type
// distributions buy, and what happens while they are still cold?
// Three configurations on the Table-1 mix plus a rare expensive type at
// 1.2x load:
//  * per-type histograms (normal)  — the paper's design, fully learned;
//  * general histogram only        — every type held permanently "cold",
//    so decisions use the type-agnostic distribution under the default
//    SLO: a type-blind Bouncer, which over-rejects cheap queries just as
//    the paper's §2 argues type-oblivious policies do;
//  * accept-all while cold         — Appendix A's maximally lenient
//    alternative degenerates into no admission control when types never
//    warm: queues (and response times) grow without bound.

#include <cstdio>

#include "bench/bench_common.h"

using namespace bouncer;
using namespace bouncer::bench;

int main() {
  PrintPreamble("ablation_cold_start",
                "value of per-type histograms vs cold-start fallbacks at "
                "1.2x load");
  const Slo slo{18 * kMillisecond, 50 * kMillisecond, 0};
  workload::WorkloadSpec mix(
      {workload::QueryTypeSpec::FromMillis("fast", 0.398, 1.16, 0.38, slo),
       workload::QueryTypeSpec::FromMillis("medium_fast", 0.199, 2.53, 2.22,
                                           slo),
       workload::QueryTypeSpec::FromMillis("medium_slow", 0.299, 12.13, 7.40,
                                           slo),
       workload::QueryTypeSpec::FromMillis("slow", 0.099, 20.05, 12.51, slo),
       workload::QueryTypeSpec::FromMillis("sporadic", 0.005, 25.0, 16.0,
                                           slo)});

  const auto params = DefaultStudyParams();
  auto config = params.config;
  config.arrival_rate_qps = 1.2 * mix.FullLoadQps(config.parallelism);

  constexpr uint64_t kNeverWarm = ~uint64_t{0};
  const struct {
    const char* label;
    ColdStartMode mode;
    uint64_t warmup_min_samples;
  } cases[] = {
      {"per-type histograms (normal)", ColdStartMode::kGeneralHistogram, 50},
      {"general histogram only (cold)", ColdStartMode::kGeneralHistogram,
       kNeverWarm},
      {"accept-all while cold", ColdStartMode::kAcceptAll, kNeverWarm},
  };

  std::printf("%-32s%14s%16s%14s%14s\n", "mode", "overall rej%",
              "sporadic rt50", "slow rt50", "fast rt50");
  PrintRule(90);
  for (const auto& c : cases) {
    PolicyConfig policy = MakeStudyPolicy(PolicyKind::kBouncer);
    policy.bouncer.cold_start_mode = c.mode;
    policy.bouncer.warmup_min_samples = c.warmup_min_samples;
    const auto result = sim::RunAveraged(mix, config, policy, params.runs);
    std::printf("%-32s%14.2f%14.2fms%12.2fms%12.2fms\n", c.label,
                result.overall.rejection_pct,
                result.per_type[4].rt_p50_ms, result.per_type[3].rt_p50_ms,
                result.per_type[0].rt_p50_ms);
  }
  std::printf("(per-type learning rejects the fewest queries; the "
              "type-blind fallback over-rejects;\n accepting everything "
              "while cold is the absence of admission control.)\n");
  return 0;
}
