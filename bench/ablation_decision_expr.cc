// Ablation (paper §3 / §7 future work): alternative logical expressions
// for Bouncer's acceptance decision — p50-only, p90-only, the published
// p50-OR-p90, and p50-OR-p90-OR-p99 (with SLO_p99 = 80 ms). Measured
// across the load sweep; reports slow-type rt_p50/rt_p90/rt_p99 and
// overall rejections at 1.3x.

#include <cstdio>

#include "bench/bench_common.h"

using namespace bouncer;
using namespace bouncer::bench;

int main() {
  PrintPreamble("ablation_decision_expr",
                "Bouncer decision expressions at 1.3x load");
  auto workload = workload::PaperSimulationWorkload();
  // Give every type an additional p99 objective for the p99 variant.
  {
    // The slow type's intrinsic p99 is ~120 ms, so the added objective
    // must sit above that to be attainable at all (Appendix B.1 is about
    // exactly this kind of percentile-choice pitfall).
    std::vector<workload::QueryTypeSpec> types = workload.types();
    for (auto& t : types) t.slo.p99 = 160 * kMillisecond;
    workload = workload::WorkloadSpec(std::move(types));
  }
  const auto params = DefaultStudyParams();
  auto config = params.config;
  config.arrival_rate_qps =
      1.3 * workload.FullLoadQps(params.config.parallelism);

  const struct {
    const char* label;
    DecisionExpr expr;
  } cases[] = {
      {"p50 only", DecisionExpr::kP50Only},
      {"p90 only", DecisionExpr::kP90Only},
      {"p50 OR p90 (paper)", DecisionExpr::kP50OrP90},
      {"p50 OR p90 OR p99", DecisionExpr::kP50OrP90OrP99},
  };

  std::printf("%-22s%12s%12s%12s%14s\n", "expression", "rt_p50", "rt_p90",
              "rt_p99", "overall rej%");
  PrintRule(72);
  for (const auto& c : cases) {
    PolicyConfig policy = MakeStudyPolicy(PolicyKind::kBouncer);
    policy.bouncer.decision_expr = c.expr;
    const auto result =
        sim::RunAveraged(workload, config, policy, params.runs);
    std::printf("%-22s%10.2fms%10.2fms%10.2fms%14.2f\n", c.label,
                result.per_type[3].rt_p50_ms, result.per_type[3].rt_p90_ms,
                result.per_type[3].rt_p99_ms,
                result.overall.rejection_pct);
  }
  std::printf("(slow-type latencies; SLOs: p50=18ms p90=50ms p99=160ms)\n");
  return 0;
}
