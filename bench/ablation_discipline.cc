// Extension experiment (paper §7 future work: adapting Bouncer to other
// scheduling disciplines): how does the queue discipline interact with
// SLO-driven admission? Runs Bouncer at 1.2x full load under FIFO,
// shortest-job-first, and a priority order that serves the slow type
// first, and reports per-type rt_p50 and rejections.

#include <cstdio>

#include "bench/bench_common.h"

using namespace bouncer;
using namespace bouncer::bench;

int main() {
  PrintPreamble("ablation_discipline",
                "Bouncer at 1.2x load under FIFO / SJF / priority "
                "scheduling");
  const auto workload = workload::PaperSimulationWorkload();
  const auto params = DefaultStudyParams();

  struct Case {
    const char* label;
    sim::QueueDiscipline discipline;
    std::vector<int> priorities;
    bool priority_aware_bouncer;
  };
  const Case cases[] = {
      {"FIFO (paper)", sim::QueueDiscipline::kFifo, {}, false},
      {"SJF (Gatekeeper-style)", sim::QueueDiscipline::kShortestJobFirst,
       {}, false},
      {"priority: slow first", sim::QueueDiscipline::kPriority, {3, 2, 1, 0},
       false},
      // Same scheduler, but Bouncer's Eq. 2 made priority-aware (§7):
      // each type's wait estimate only counts work served ahead of it.
      {"  + priority-aware Bouncer", sim::QueueDiscipline::kPriority,
       {3, 2, 1, 0}, true},
  };

  std::printf("%-26s", "discipline");
  for (const auto& type : workload.types()) {
    std::printf("  %10s", type.name.c_str());
  }
  std::printf("%12s\n", "overall rej%");
  PrintRule(26 + 12 * 4 + 12);
  for (const Case& c : cases) {
    PolicyConfig policy = MakeStudyPolicy(PolicyKind::kBouncer);
    auto config = params.config;
    config.arrival_rate_qps =
        1.2 * workload.FullLoadQps(config.parallelism);
    config.discipline = c.discipline;
    config.type_priorities = c.priorities;
    if (c.priority_aware_bouncer) {
      // Registry id 0 is the default type; workload types follow.
      policy.bouncer.type_priorities = {0};
      for (int p : c.priorities) {
        policy.bouncer.type_priorities.push_back(p);
      }
    }
    const auto result =
        sim::RunAveraged(workload, config, policy, params.runs);
    std::printf("%-26s", c.label);
    for (size_t t = 0; t < workload.size(); ++t) {
      std::printf("  %8.2fms", result.per_type[t].rt_p50_ms);
    }
    std::printf("%11.2f%%\n", result.overall.rejection_pct);
  }
  std::printf("(rt_p50 per type. Under SJF the slow type waits longer, so "
              "Bouncer rejects more of it;\n serving it first instead "
              "spends its SLO headroom on the cheap types.)\n");
  return 0;
}
