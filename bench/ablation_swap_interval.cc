// Ablation (DESIGN.md): sensitivity of Bouncer to the dual-buffer
// histogram swap interval. Shorter intervals track load shifts faster but
// publish noisier percentiles from fewer samples; longer intervals
// publish stale distributions. Measured at 1.3x full load.

#include <cstdio>

#include "bench/bench_common.h"

using namespace bouncer;
using namespace bouncer::bench;

int main() {
  PrintPreamble("ablation_swap_interval",
                "Bouncer at 1.3x load vs histogram swap interval");
  const auto workload = workload::PaperSimulationWorkload();
  const auto params = DefaultStudyParams();
  auto config = params.config;
  config.arrival_rate_qps =
      1.3 * workload.FullLoadQps(params.config.parallelism);

  std::printf("%-16s%14s%16s%14s\n", "interval", "slow rt_p50", "overall rej%",
              "utilization");
  PrintRule(60);
  for (Nanos interval : {100 * kMillisecond, 250 * kMillisecond,
                         500 * kMillisecond, kSecond, 2 * kSecond,
                         5 * kSecond}) {
    PolicyConfig policy = MakeStudyPolicy(PolicyKind::kBouncer);
    policy.bouncer.histogram_swap_interval = interval;
    const auto result =
        sim::RunAveraged(workload, config, policy, params.runs);
    if (result.per_type[3].completed == 0) {
      std::printf("%13.0fms %13s %15.2f %13.3f\n", ToMillis(interval),
                  "starved", result.overall.rejection_pct,
                  result.utilization);
    } else {
      std::printf("%13.0fms %11.2fms %15.2f %13.3f\n", ToMillis(interval),
                  result.per_type[3].rt_p50_ms, result.overall.rejection_pct,
                  result.utilization);
    }
  }
  std::printf("('starved': short windows publish p90 estimates noisy "
              "enough to cross the SLO and\n freeze — no slow queries "
              "are serviced at all. Longer windows trade staleness for "
              "stability.)\n");
  return 0;
}
