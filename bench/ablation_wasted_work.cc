// Motivation experiment (paper §2): when queries carry client deadlines,
// how much processing does the system spend on answers nobody is waiting
// for anymore — and how much of that does early rejection save? Runs the
// Table 1 workload with a 100 ms client deadline across load factors and
// reports, per policy, the fraction of processing time wasted on queries
// that completed past their deadline plus the expired-in-queue count.

#include <cstdio>

#include "bench/bench_common.h"

using namespace bouncer;
using namespace bouncer::bench;

int main() {
  PrintPreamble("ablation_wasted_work",
                "wasted processing time with 100 ms client deadlines, "
                "per policy and load");
  const auto workload = workload::PaperSimulationWorkload();
  const auto params = DefaultStudyParams();
  const std::vector<double> factors = {1.0, 1.1, 1.2, 1.3, 1.4, 1.5};

  const PolicyKind kinds[] = {PolicyKind::kAlwaysAccept,
                              PolicyKind::kMaxQueueLength,
                              PolicyKind::kBouncer};

  std::printf("%-16s%-22s%14s%12s%12s\n", "load", "policy", "wasted work %",
              "expired", "useless");
  PrintRule(76);
  for (double factor : factors) {
    for (PolicyKind kind : kinds) {
      PolicyConfig policy = MakeStudyPolicy(kind);
      auto config = params.config;
      config.arrival_rate_qps =
          factor * workload.FullLoadQps(config.parallelism);
      config.deadline = 100 * kMillisecond;
      const auto result =
          sim::RunAveraged(workload, config, policy, params.runs);
      std::printf("%13.2fx  %-22s%13.2f%%%12llu%12llu\n", factor,
                  std::string(PolicyKindName(kind)).c_str(),
                  100.0 * result.wasted_work_fraction,
                  static_cast<unsigned long long>(result.overall.expired),
                  static_cast<unsigned long long>(result.overall.useless));
    }
  }
  std::printf("(AlwaysAccept: queues grow until answers outlive their "
              "deadlines — work wasted;\n Bouncer's early rejections keep "
              "waits bounded, so almost no processing is wasted.)\n");
  return 0;
}
