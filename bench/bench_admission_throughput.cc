// Admission hot-path throughput: a closed-loop multi-threaded driver
// hammering Stage::Submit() and measuring decisions/sec plus the
// Submit -> enqueue latency distribution, swept over the number of
// registered query types (1 / 8 / 64 / 512) and all study policies.
//
// The interesting comparison is Bouncer vs Bouncer(rescan): the latter
// disables the O(1) incremental Eq. 2 aggregate and rescans every
// per-type histogram per decision — the pre-optimization behavior —
// which degrades linearly in the number of types while the default stays
// flat. Results are printed as a table and written to
// BENCH_admission_throughput.json.

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/policy_factory.h"
#include "src/server/stage.h"
#include "src/stats/flight_recorder.h"
#include "src/stats/histogram.h"
#include "src/util/rng.h"

namespace bouncer::bench {
namespace {

constexpr size_t kSubmitters = 8;

/// Worker pool sized to the machine: the handler is trivial, so extra
/// workers only add scheduler churn on small hosts.
size_t BenchWorkers() {
  const size_t hw = std::thread::hardware_concurrency();
  if (hw <= 2) return 2;
  return hw < 8 ? hw : 8;
}

struct Variant {
  std::string name;
  PolicyConfig config;
};

std::vector<Variant> MakeVariants() {
  std::vector<Variant> variants;
  for (const PolicyKind kind : StudyPolicyKinds()) {
    Variant v;
    v.name = std::string(PolicyKindName(kind));
    v.config = MakeStudyPolicy(kind);
    variants.push_back(std::move(v));
  }
  // The pre-optimization Bouncer: every estimate rescans all types.
  Variant rescan;
  rescan.name = "Bouncer(rescan)";
  rescan.config = MakeStudyPolicy(PolicyKind::kBouncer);
  rescan.config.bouncer.incremental_estimate = false;
  variants.push_back(std::move(rescan));
  return variants;
}

/// Unwraps the policy stack (QueueGuard / Allowance / Underserved) down
/// to the BouncerPolicy, or null for non-Bouncer policies.
BouncerPolicy* FindBouncer(AdmissionPolicy* policy) {
  for (;;) {
    if (auto* b = dynamic_cast<BouncerPolicy*>(policy)) return b;
    if (auto* g = dynamic_cast<QueueGuardPolicy*>(policy)) {
      policy = g->inner();
    } else if (auto* a = dynamic_cast<AcceptanceAllowancePolicy*>(policy)) {
      policy = a->inner();
    } else if (auto* u = dynamic_cast<HelpingUnderservedPolicy*>(policy)) {
      policy = u->inner();
    } else {
      return nullptr;
    }
  }
}

struct CellResult {
  std::string policy;
  size_t num_types = 0;
  int tracing = 0;  ///< Flight recorder enabled (1-in-64 sampling).
  double seconds = 0;
  uint64_t decisions = 0;
  double decisions_per_sec = 0;
  Nanos submit_mean = 0;
  Nanos submit_p50 = 0;
  Nanos submit_p90 = 0;
  Nanos submit_p99 = 0;
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  uint64_t shedded = 0;
};

CellResult RunCell(const Variant& variant, size_t num_types, Nanos duration,
                   bool tracing = false) {
  // Generous SLOs: the bench measures decision cost, not rejection
  // behavior, so the common path should be an accept.
  const Slo slo{kSecond, 2 * kSecond, 0};
  QueryTypeRegistry registry(slo);
  for (size_t i = 0; i < num_types; ++i) {
    (void)registry.Register("QT" + std::to_string(i + 1), slo);
  }

  server::Stage::Options options;
  options.name = "bench";
  options.num_workers = BenchWorkers();
  options.queue_capacity = 1 << 15;
  // Cell-local recorder so the tracing column prices exactly the trace
  // sites (default 1-in-64 sampling), not a shared global's ring state.
  stats::FlightRecorder recorder;
  recorder.SetEnabled(tracing);
  options.recorder = &recorder;
  const PolicyConfig config = variant.config;
  server::Stage stage(
      options, &registry, SystemClock::Global(),
      [&config](const PolicyContext& context) {
        return CreatePolicy(config, context);
      },
      [](server::WorkItem&) {});
  if (!stage.init_status().ok()) {
    std::fprintf(stderr, "policy init failed: %s\n",
                 stage.init_status().ToString().c_str());
    std::exit(1);
  }

  // Warm every type's histogram so Bouncer runs its steady-state path
  // (no cold-start shortcuts), then publish via a forced swap.
  Rng rng(42);
  for (size_t t = 1; t <= num_types; ++t) {
    for (int s = 0; s < 64; ++s) {
      stage.policy()->OnCompleted(
          static_cast<QueryTypeId>(t),
          static_cast<Nanos>(50 * kMicrosecond + rng.NextBounded(kMicrosecond)),
          0);
    }
  }
  if (BouncerPolicy* bouncer = FindBouncer(stage.policy())) {
    bouncer->ForceHistogramSwap();
  }

  if (!stage.Start().ok()) std::exit(1);

  stats::Histogram submit_latency;
  std::atomic<uint64_t> decisions{0};
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::nanoseconds(duration);
  const auto bench_start = std::chrono::steady_clock::now();

  std::vector<std::thread> submitters;
  for (size_t s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      Rng thread_rng(1000 + s);
      uint64_t local = 0;
      while (std::chrono::steady_clock::now() < deadline) {
        // Batch between clock checks to keep the loop overhead small.
        for (int i = 0; i < 64; ++i) {
          server::WorkItem item;
          item.type = static_cast<QueryTypeId>(
              1 + thread_rng.NextBounded(num_types));
          // Ids stamped in both columns so on/off differ only in the
          // recorder's enabled bit (the sampling hash's key source).
          item.id = (static_cast<uint64_t>(s) << 40) | local;
          const auto t0 = std::chrono::steady_clock::now();
          stage.Submit(std::move(item));
          const auto t1 = std::chrono::steady_clock::now();
          submit_latency.Record(
              std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                  .count());
          ++local;
        }
      }
      decisions.fetch_add(local, std::memory_order_relaxed);
    });
  }
  for (auto& t : submitters) t.join();
  const auto bench_end = std::chrono::steady_clock::now();
  stage.Stop(false);

  CellResult r;
  r.policy = variant.name;
  r.num_types = num_types;
  r.tracing = tracing ? 1 : 0;
  r.seconds = std::chrono::duration<double>(bench_end - bench_start).count();
  r.decisions = decisions.load();
  r.decisions_per_sec = static_cast<double>(r.decisions) / r.seconds;
  r.submit_mean = submit_latency.Mean();
  r.submit_p50 = submit_latency.Percentile(0.5);
  r.submit_p90 = submit_latency.Percentile(0.9);
  r.submit_p99 = submit_latency.Percentile(0.99);
  r.accepted = stage.counters().accepted.load();
  r.rejected = stage.counters().rejected.load();
  r.shedded = stage.counters().shedded.load();
  return r;
}

void WriteJson(const std::vector<CellResult>& results) {
  std::FILE* f = std::fopen("BENCH_admission_throughput.json", "w");
  if (f == nullptr) return;
  std::fprintf(f, "{\n  \"bench\": \"admission_throughput\",\n");
  std::fprintf(f, "  \"submitters\": %zu,\n  \"workers\": %zu,\n",
               kSubmitters, BenchWorkers());
  std::fprintf(f, "  \"cells\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const CellResult& r = results[i];
    std::fprintf(
        f,
        "    {\"policy\": \"%s\", \"num_types\": %zu, \"tracing\": %d, "
        "\"seconds\": %.3f, \"decisions\": %llu, "
        "\"decisions_per_sec\": %.0f, \"submit_mean_ns\": %lld, "
        "\"submit_p50_ns\": %lld, \"submit_p90_ns\": %lld, "
        "\"submit_p99_ns\": %lld, \"accepted\": %llu, "
        "\"rejected\": %llu, \"shedded\": %llu}%s\n",
        r.policy.c_str(), r.num_types, r.tracing, r.seconds,
        static_cast<unsigned long long>(r.decisions), r.decisions_per_sec,
        static_cast<long long>(r.submit_mean),
        static_cast<long long>(r.submit_p50),
        static_cast<long long>(r.submit_p90),
        static_cast<long long>(r.submit_p99),
        static_cast<unsigned long long>(r.accepted),
        static_cast<unsigned long long>(r.rejected),
        static_cast<unsigned long long>(r.shedded),
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

int Main() {
  PrintPreamble("bench_admission_throughput",
                "closed-loop Stage::Submit() throughput and latency by "
                "policy and number of query types");
  const Nanos duration = BenchScale() == 0   ? 100 * kMillisecond
                         : BenchScale() == 1 ? 300 * kMillisecond
                                             : kSecond;
  const std::vector<size_t> type_counts = {1, 8, 64, 512};
  const std::vector<Variant> variants = MakeVariants();

  std::printf("%-24s %9s %12s %12s %10s %10s %10s\n", "policy", "types",
              "decisions/s", "mean_ns", "p50_ns", "p90_ns", "p99_ns");
  PrintRule(94);
  std::vector<CellResult> results;
  for (const size_t num_types : type_counts) {
    for (const Variant& variant : variants) {
      const CellResult r = RunCell(variant, num_types, duration);
      std::printf("%-24s %9zu %12.0f %12lld %10lld %10lld %10lld\n",
                  r.policy.c_str(), r.num_types, r.decisions_per_sec,
                  static_cast<long long>(r.submit_mean),
                  static_cast<long long>(r.submit_p50),
                  static_cast<long long>(r.submit_p90),
                  static_cast<long long>(r.submit_p99));
      results.push_back(r);
    }
    PrintRule(94);
  }
  // Tracing overhead pair: the same Bouncer cell with the flight
  // recorder off vs on at the default 1-in-64 sampling (the always-on
  // observability bar is < 3% throughput cost).
  const Variant* bouncer_variant = nullptr;
  for (const Variant& v : variants) {
    if (v.name == "Bouncer") bouncer_variant = &v;
  }
  if (bouncer_variant != nullptr) {
    const CellResult off =
        RunCell(*bouncer_variant, 8, duration, /*tracing=*/false);
    const CellResult on =
        RunCell(*bouncer_variant, 8, duration, /*tracing=*/true);
    results.push_back(off);
    results.push_back(on);
    std::printf("%-24s %9zu %12.0f   (tracing off)\n", off.policy.c_str(),
                off.num_types, off.decisions_per_sec);
    std::printf("%-24s %9zu %12.0f   (tracing on, 1-in-64)\n",
                on.policy.c_str(), on.num_types, on.decisions_per_sec);
    if (off.decisions_per_sec > 0) {
      std::printf("tracing overhead: %+.2f%%\n",
                  100.0 * (off.decisions_per_sec - on.decisions_per_sec) /
                      off.decisions_per_sec);
    }
    PrintRule(94);
  }
  WriteJson(results);
  std::printf("wrote BENCH_admission_throughput.json\n");

  // Headline ratio: incremental vs rescan Bouncer at the largest sweep
  // points (the acceptance bar for this optimization is >= 3x at 64+).
  for (const size_t n : type_counts) {
    double fast = 0, slow = 0;
    for (const CellResult& r : results) {
      if (r.num_types != n) continue;
      if (r.policy == "Bouncer") fast = r.decisions_per_sec;
      if (r.policy == "Bouncer(rescan)") slow = r.decisions_per_sec;
    }
    if (fast > 0 && slow > 0) {
      std::printf("types=%zu: incremental/rescan = %.2fx\n", n, fast / slow);
    }
  }
  return 0;
}

}  // namespace
}  // namespace bouncer::bench

int main() { return bouncer::bench::Main(); }
