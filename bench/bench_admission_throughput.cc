// Admission hot-path throughput: a closed-loop multi-threaded driver
// hammering Stage::Submit() and measuring decisions/sec plus the
// Submit -> enqueue latency distribution, swept over the number of
// registered query types (1 / 8 / 64 / 512) and all study policies.
//
// The interesting comparison is Bouncer vs Bouncer(rescan): the latter
// disables the O(1) incremental Eq. 2 aggregate and rescans every
// per-type histogram per decision — the pre-optimization behavior —
// which degrades linearly in the number of types while the default stays
// flat. Results are printed as a table and written to
// BENCH_admission_throughput.json.
//
// A second sweep prices the shared-nothing execution core: a submitter
// x {sharded, single-queue} grid over the Bouncer policy at 512 types,
// where "single-queue" forces the pre-sharding one-global-FIFO core
// (Stage::Options::force_single_queue) and "sharded" runs per-worker
// run queues with striped admission counters. Invoked as
// `bench_admission_throughput --guard` it instead runs just that pair
// best-of-3 and fails (exit 1) when sharded falls below
// BOUNCER_BENCH_GUARD_MIN_RATIO x single-queue (default 0.9 — a
// regression guard, not a speedup assertion, so core-starved CI hosts
// don't flap).
//
// A third sweep prices the high-cardinality tenant dimension: a tenant
// ladder (1 / 100 / 1k / 10k / 100k tenants, uniform draw per submit)
// over Bouncer wrapped in TenantFairPolicy, A/B between the flat-indexed
// PolicyStateTable slab and the shared-lock unordered_map baseline
// (Options::use_map_baseline). The acceptance bar: the flat slab's
// per-decision cost at 10k tenants stays within ~1.15x of the
// single-tenant cell and beats the map baseline. --guard also runs a
// 10k-tenant flat-vs-map rung under the same threshold env var.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/policy_factory.h"
#include "src/core/tenant_registry.h"
#include "src/server/stage.h"
#include "src/stats/flight_recorder.h"
#include "src/stats/histogram.h"
#include "src/util/rng.h"

namespace bouncer::bench {
namespace {

constexpr size_t kSubmitters = 8;

/// Worker pool sized to the machine: the handler is trivial, so extra
/// workers only add scheduler churn on small hosts.
size_t BenchWorkers() {
  const size_t hw = HardwareConcurrency();
  if (hw <= 2) return 2;
  return hw < 8 ? hw : 8;
}

struct Variant {
  std::string name;
  PolicyConfig config;
};

std::vector<Variant> MakeVariants() {
  std::vector<Variant> variants;
  for (const PolicyKind kind : StudyPolicyKinds()) {
    Variant v;
    v.name = std::string(PolicyKindName(kind));
    v.config = MakeStudyPolicy(kind);
    variants.push_back(std::move(v));
  }
  // The pre-optimization Bouncer: every estimate rescans all types.
  Variant rescan;
  rescan.name = "Bouncer(rescan)";
  rescan.config = MakeStudyPolicy(PolicyKind::kBouncer);
  rescan.config.bouncer.incremental_estimate = false;
  variants.push_back(std::move(rescan));
  return variants;
}

/// Unwraps the policy stack (QueueGuard / Allowance / Underserved) down
/// to the BouncerPolicy, or null for non-Bouncer policies.
BouncerPolicy* FindBouncer(AdmissionPolicy* policy) {
  for (;;) {
    if (auto* b = dynamic_cast<BouncerPolicy*>(policy)) return b;
    if (auto* g = dynamic_cast<QueueGuardPolicy*>(policy)) {
      policy = g->inner();
    } else if (auto* a = dynamic_cast<AcceptanceAllowancePolicy*>(policy)) {
      policy = a->inner();
    } else if (auto* u = dynamic_cast<HelpingUnderservedPolicy*>(policy)) {
      policy = u->inner();
    } else {
      return nullptr;
    }
  }
}

struct CellResult {
  std::string policy;
  size_t num_types = 0;
  size_t num_tenants = 0;  ///< 0 = tenant dimension off.
  size_t submitters = kSubmitters;
  size_t workers = 0;
  int single_queue = 0;  ///< force_single_queue (pre-sharding core).
  int tenant_map = 0;    ///< unordered_map A/B baseline for tenant state.
  int tracing = 0;       ///< Flight recorder enabled (1-in-64 sampling).
  double seconds = 0;
  uint64_t decisions = 0;
  double decisions_per_sec = 0;
  Nanos submit_mean = 0;
  Nanos submit_p50 = 0;
  Nanos submit_p90 = 0;
  Nanos submit_p99 = 0;
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  uint64_t shedded = 0;
};

struct CellParams {
  size_t num_types = 8;
  /// > 0 wraps the policy in TenantFairPolicy over this many
  /// pre-registered tenants, drawn uniformly per submit.
  size_t num_tenants = 0;
  size_t submitters = kSubmitters;
  size_t workers = 0;  ///< 0 = BenchWorkers().
  bool force_single_queue = false;
  bool tenant_map_baseline = false;
  bool tracing = false;
};

CellResult RunCell(const Variant& variant, Nanos duration,
                   const CellParams& params) {
  // Generous SLOs: the bench measures decision cost, not rejection
  // behavior, so the common path should be an accept.
  const Slo slo{kSecond, 2 * kSecond, 0};
  QueryTypeRegistry registry(slo);
  const size_t num_types = params.num_types;
  for (size_t i = 0; i < num_types; ++i) {
    (void)registry.Register("QT" + std::to_string(i + 1), slo);
  }

  server::Stage::Options options;
  options.name = "bench";
  options.num_workers = params.workers == 0 ? BenchWorkers() : params.workers;
  options.queue_capacity = 1 << 15;
  options.force_single_queue = params.force_single_queue;
  // Cell-local recorder so the tracing column prices exactly the trace
  // sites (default 1-in-64 sampling), not a shared global's ring state.
  stats::FlightRecorder recorder;
  recorder.SetEnabled(params.tracing);
  options.recorder = &recorder;
  // Tenant ladder: pre-register the population (dense ids 1..N — the
  // steady state; first-contact interning is priced elsewhere) and draw
  // tenants uniformly per submit, the worst case for the state table's
  // cache locality.
  TenantRegistry tenant_registry;
  if (params.num_tenants > 0) {
    for (size_t t = 1; t <= params.num_tenants; ++t) {
      (void)tenant_registry.Register(t, 1.0);
    }
    options.tenants = &tenant_registry;
  }
  PolicyConfig config = variant.config;
  if (params.num_tenants > 0) {
    config.tenant_fair = true;
    config.tenant_fair_options.use_map_baseline = params.tenant_map_baseline;
  }
  server::Stage stage(
      options, &registry, SystemClock::Global(),
      [&config](const PolicyContext& context) {
        return CreatePolicy(config, context);
      },
      [](server::WorkItem&) {});
  if (!stage.init_status().ok()) {
    std::fprintf(stderr, "policy init failed: %s\n",
                 stage.init_status().ToString().c_str());
    std::exit(1);
  }

  // Warm every type's histogram so Bouncer runs its steady-state path
  // (no cold-start shortcuts), then publish via a forced swap.
  Rng rng(42);
  for (size_t t = 1; t <= num_types; ++t) {
    for (int s = 0; s < 64; ++s) {
      stage.policy()->OnCompleted(
          static_cast<QueryTypeId>(t),
          static_cast<Nanos>(50 * kMicrosecond + rng.NextBounded(kMicrosecond)),
          0);
    }
  }
  if (BouncerPolicy* bouncer = FindBouncer(stage.policy())) {
    bouncer->ForceHistogramSwap();
  }

  if (!stage.Start().ok()) std::exit(1);

  stats::Histogram submit_latency;
  std::atomic<uint64_t> decisions{0};
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::nanoseconds(duration);
  const auto bench_start = std::chrono::steady_clock::now();

  std::vector<std::thread> submitters;
  for (size_t s = 0; s < params.submitters; ++s) {
    submitters.emplace_back([&, s] {
      Rng thread_rng(1000 + s);
      uint64_t local = 0;
      while (std::chrono::steady_clock::now() < deadline) {
        // Batch between clock checks to keep the loop overhead small.
        for (int i = 0; i < 64; ++i) {
          server::WorkItem item;
          item.type = static_cast<QueryTypeId>(
              1 + thread_rng.NextBounded(num_types));
          if (params.num_tenants > 0) {
            item.tenant = static_cast<TenantId>(
                1 + thread_rng.NextBounded(params.num_tenants));
          }
          // Ids stamped in both columns so on/off differ only in the
          // recorder's enabled bit (the sampling hash's key source).
          item.id = (static_cast<uint64_t>(s) << 40) | local;
          const auto t0 = std::chrono::steady_clock::now();
          stage.Submit(std::move(item));
          const auto t1 = std::chrono::steady_clock::now();
          submit_latency.Record(
              std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                  .count());
          ++local;
        }
      }
      decisions.fetch_add(local, std::memory_order_relaxed);
    });
  }
  for (auto& t : submitters) t.join();
  const auto bench_end = std::chrono::steady_clock::now();
  stage.Stop(false);

  CellResult r;
  r.policy = variant.name;
  r.num_types = num_types;
  r.num_tenants = params.num_tenants;
  r.submitters = params.submitters;
  r.workers = options.num_workers;
  r.single_queue = params.force_single_queue ? 1 : 0;
  r.tenant_map = params.tenant_map_baseline ? 1 : 0;
  r.tracing = params.tracing ? 1 : 0;
  r.seconds = std::chrono::duration<double>(bench_end - bench_start).count();
  r.decisions = decisions.load();
  r.decisions_per_sec = static_cast<double>(r.decisions) / r.seconds;
  r.submit_mean = submit_latency.Mean();
  r.submit_p50 = submit_latency.Percentile(0.5);
  r.submit_p90 = submit_latency.Percentile(0.9);
  r.submit_p99 = submit_latency.Percentile(0.99);
  const server::StageCounters counters = stage.counters();
  r.accepted = counters.accepted;
  r.rejected = counters.rejected;
  r.shedded = counters.shedded;
  return r;
}

void WriteCells(std::FILE* f, const std::vector<CellResult>& results) {
  std::fprintf(f, "  \"cells\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const CellResult& r = results[i];
    std::fprintf(
        f,
        "    {\"policy\": \"%s\", \"num_types\": %zu, "
        "\"num_tenants\": %zu, \"submitters\": %zu, "
        "\"workers\": %zu, \"single_queue\": %d, \"tenant_map\": %d, "
        "\"tracing\": %d, "
        "\"seconds\": %.3f, \"decisions\": %llu, "
        "\"decisions_per_sec\": %.0f, \"submit_mean_ns\": %lld, "
        "\"submit_p50_ns\": %lld, \"submit_p90_ns\": %lld, "
        "\"submit_p99_ns\": %lld, \"accepted\": %llu, "
        "\"rejected\": %llu, \"shedded\": %llu}%s\n",
        r.policy.c_str(), r.num_types, r.num_tenants, r.submitters,
        r.workers, r.single_queue, r.tenant_map, r.tracing, r.seconds,
        static_cast<unsigned long long>(r.decisions),
        r.decisions_per_sec, static_cast<long long>(r.submit_mean),
        static_cast<long long>(r.submit_p50),
        static_cast<long long>(r.submit_p90),
        static_cast<long long>(r.submit_p99),
        static_cast<unsigned long long>(r.accepted),
        static_cast<unsigned long long>(r.rejected),
        static_cast<unsigned long long>(r.shedded),
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
}

void WriteJson(const std::vector<CellResult>& results) {
  std::FILE* f = std::fopen("BENCH_admission_throughput.json", "w");
  if (f == nullptr) return;
  std::fprintf(f, "{\n  \"bench\": \"admission_throughput\",\n");
  WriteHostJsonFields(f);
  std::fprintf(f, "  \"submitters\": %zu,\n  \"workers\": %zu,\n",
               kSubmitters, BenchWorkers());
  WriteCells(f, results);
  std::fprintf(f, "}\n");
  std::fclose(f);
}

/// The sharded-vs-single-queue pair the scaling grid and the guard mode
/// share: Bouncer at `num_types` types, `submitters` closed-loop
/// threads.
Variant GridVariant() {
  Variant v;
  v.name = "Bouncer";
  v.config = MakeStudyPolicy(PolicyKind::kBouncer);
  return v;
}

/// Regression guard for the shared-nothing execution core, run by CI
/// pinned to a fixed CPU set. Best-of-3 per column absorbs scheduler
/// noise; the threshold defaults below 1.0 because a core-starved host
/// (CI runners routinely grant 2 CPUs) cannot demonstrate scaling, only
/// catastrophic regression.
int RunGuard(Nanos duration) {
  const double configured_min_ratio = [] {
    const char* env = std::getenv("BOUNCER_BENCH_GUARD_MIN_RATIO");
    if (env == nullptr) return 0.9;
    const double v = std::atof(env);
    return v > 0 ? v : 0.9;
  }();
  // A core-starved host (fewer CPUs than the guard's worker + submitter
  // threads want) cannot demonstrate scaling: time-slicing makes the
  // sharded core's steal scans pure overhead. Keep the run as a smoke
  // test there, but only fail on a catastrophic regression.
  const size_t cpus = AffinityCpuCount();
  constexpr size_t kFullGuardCpus = 4;
  const bool core_starved = cpus < kFullGuardCpus;
  const double min_ratio =
      core_starved ? configured_min_ratio * 0.5 : configured_min_ratio;
  if (core_starved) {
    std::printf(
        "note: affinity grants %zu CPUs (< %zu); relaxing threshold "
        "%.3fx -> %.3fx (catastrophic-regression guard only)\n",
        cpus, kFullGuardCpus, configured_min_ratio, min_ratio);
  }
  const Variant variant = GridVariant();

  auto best_of_3 = [&](const CellParams& params) {
    CellResult best;
    for (int run = 0; run < 3; ++run) {
      CellResult r = RunCell(variant, duration, params);
      if (r.decisions_per_sec > best.decisions_per_sec) best = std::move(r);
    }
    return best;
  };

  CellParams core_params;
  core_params.num_types = 512;
  core_params.submitters = kSubmitters;
  core_params.force_single_queue = false;
  const CellResult sharded = best_of_3(core_params);
  core_params.force_single_queue = true;
  const CellResult single = best_of_3(core_params);
  const double ratio = single.decisions_per_sec > 0
                           ? sharded.decisions_per_sec /
                                 single.decisions_per_sec
                           : 0;

  // The 10k-tenant rung: flat-indexed tenant state vs the unordered_map
  // baseline under the same threshold. Flat should win outright; the
  // sub-1.0 threshold only absorbs scheduler noise on starved hosts.
  CellParams tenant_params;
  tenant_params.num_types = 8;
  tenant_params.num_tenants = 10'000;
  tenant_params.submitters = kSubmitters;
  tenant_params.tenant_map_baseline = false;
  const CellResult tenant_flat = best_of_3(tenant_params);
  tenant_params.tenant_map_baseline = true;
  const CellResult tenant_map = best_of_3(tenant_params);
  const double tenant_ratio = tenant_map.decisions_per_sec > 0
                                  ? tenant_flat.decisions_per_sec /
                                        tenant_map.decisions_per_sec
                                  : 0;

  std::printf("%-24s %9s %9s %10s %12s\n", "cell", "types", "tenants",
              "submitters", "decisions/s");
  PrintRule(70);
  std::printf("%-24s %9zu %9zu %10zu %12.0f\n", "sharded", sharded.num_types,
              sharded.num_tenants, sharded.submitters,
              sharded.decisions_per_sec);
  std::printf("%-24s %9zu %9zu %10zu %12.0f\n", "single-queue",
              single.num_types, single.num_tenants, single.submitters,
              single.decisions_per_sec);
  std::printf("%-24s %9zu %9zu %10zu %12.0f\n", "tenant-flat",
              tenant_flat.num_types, tenant_flat.num_tenants,
              tenant_flat.submitters, tenant_flat.decisions_per_sec);
  std::printf("%-24s %9zu %9zu %10zu %12.0f\n", "tenant-map",
              tenant_map.num_types, tenant_map.num_tenants,
              tenant_map.submitters, tenant_map.decisions_per_sec);
  std::printf("sharded/single-queue = %.3fx (min %.3fx)\n", ratio, min_ratio);
  std::printf("tenant flat/map at 10k = %.3fx (min %.3fx)\n", tenant_ratio,
              min_ratio);

  std::FILE* f = std::fopen("BENCH_admission_guard.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"bench\": \"admission_guard\",\n");
    WriteHostJsonFields(f);
    std::fprintf(f, "  \"min_ratio\": %.3f, \"ratio\": %.3f,\n", min_ratio,
                 ratio);
    std::fprintf(f, "  \"tenant_ratio\": %.3f,\n", tenant_ratio);
    std::fprintf(f, "  \"core_starved\": %s,\n",
                 core_starved ? "true" : "false");
    WriteCells(f, {sharded, single, tenant_flat, tenant_map});
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote BENCH_admission_guard.json\n");
  }

  if (ratio < min_ratio) {
    std::fprintf(stderr,
                 "FAIL: sharded execution core at %.3fx of single-queue "
                 "(threshold %.3fx)\n",
                 ratio, min_ratio);
    return 1;
  }
  if (tenant_ratio < min_ratio) {
    std::fprintf(stderr,
                 "FAIL: flat tenant state at %.3fx of the map baseline "
                 "(threshold %.3fx)\n",
                 tenant_ratio, min_ratio);
    return 1;
  }
  std::printf("guard OK\n");
  return 0;
}

int Main(int argc, char** argv) {
  const bool guard_mode =
      argc > 1 && std::strcmp(argv[1], "--guard") == 0;
  PrintPreamble("bench_admission_throughput",
                guard_mode
                    ? "sharded vs single-queue execution-core regression "
                      "guard (best of 3)"
                    : "closed-loop Stage::Submit() throughput and latency "
                      "by policy and number of query types");
  const Nanos duration = BenchScale() == 0   ? 100 * kMillisecond
                         : BenchScale() == 1 ? 300 * kMillisecond
                                             : kSecond;
  if (guard_mode) return RunGuard(duration);

  const std::vector<size_t> type_counts = {1, 8, 64, 512};
  const std::vector<Variant> variants = MakeVariants();

  std::printf("%-24s %9s %12s %12s %10s %10s %10s\n", "policy", "types",
              "decisions/s", "mean_ns", "p50_ns", "p90_ns", "p99_ns");
  PrintRule(94);
  std::vector<CellResult> results;
  for (const size_t num_types : type_counts) {
    for (const Variant& variant : variants) {
      CellParams params;
      params.num_types = num_types;
      const CellResult r = RunCell(variant, duration, params);
      std::printf("%-24s %9zu %12.0f %12lld %10lld %10lld %10lld\n",
                  r.policy.c_str(), r.num_types, r.decisions_per_sec,
                  static_cast<long long>(r.submit_mean),
                  static_cast<long long>(r.submit_p50),
                  static_cast<long long>(r.submit_p90),
                  static_cast<long long>(r.submit_p99));
      results.push_back(r);
    }
    PrintRule(94);
  }
  // Tracing overhead pair: the same Bouncer cell with the flight
  // recorder off vs on at the default 1-in-64 sampling (the always-on
  // observability bar is < 3% throughput cost).
  const Variant* bouncer_variant = nullptr;
  for (const Variant& v : variants) {
    if (v.name == "Bouncer") bouncer_variant = &v;
  }
  if (bouncer_variant != nullptr) {
    CellParams params;
    params.num_types = 8;
    params.tracing = false;
    const CellResult off = RunCell(*bouncer_variant, duration, params);
    params.tracing = true;
    const CellResult on = RunCell(*bouncer_variant, duration, params);
    results.push_back(off);
    results.push_back(on);
    std::printf("%-24s %9zu %12.0f   (tracing off)\n", off.policy.c_str(),
                off.num_types, off.decisions_per_sec);
    std::printf("%-24s %9zu %12.0f   (tracing on, 1-in-64)\n",
                on.policy.c_str(), on.num_types, on.decisions_per_sec);
    if (off.decisions_per_sec > 0) {
      std::printf("tracing overhead: %+.2f%%\n",
                  100.0 * (off.decisions_per_sec - on.decisions_per_sec) /
                      off.decisions_per_sec);
    }
    PrintRule(94);
  }

  // Execution-core scaling grid: submitter counts x {sharded,
  // single-queue} over Bouncer at 512 types. On a multi-core host the
  // sharded column should pull ahead as submitters grow (contended
  // single FIFO + shared counter lines vs per-submitter rings + striped
  // counters); at scale 0 the grid is trimmed to its endpoints.
  const Variant grid_variant = GridVariant();
  const std::vector<size_t> submitter_counts =
      BenchScale() == 0 ? std::vector<size_t>{1, kSubmitters}
                        : std::vector<size_t>{1, 2, 4, kSubmitters};
  std::printf("%-24s %9s %10s %12s %12s\n", "core", "types", "submitters",
              "decisions/s", "p99_ns");
  PrintRule(94);
  for (const size_t submitters : submitter_counts) {
    for (const bool single_queue : {false, true}) {
      CellParams params;
      params.num_types = 512;
      params.submitters = submitters;
      params.force_single_queue = single_queue;
      const CellResult r = RunCell(grid_variant, duration, params);
      std::printf("%-24s %9zu %10zu %12.0f %12lld\n",
                  single_queue ? "single-queue" : "sharded", r.num_types,
                  r.submitters, r.decisions_per_sec,
                  static_cast<long long>(r.submit_p99));
      results.push_back(r);
    }
  }
  PrintRule(94);

  // Tenant ladder: Bouncer + TenantFairPolicy over a growing tenant
  // population, flat slab vs unordered_map A/B. The flat column should
  // stay near-flat up the ladder (O(1) addressing, one cache line per
  // tenant); the map column pays the shared lock and pointer chase.
  const std::vector<size_t> tenant_counts =
      BenchScale() == 0 ? std::vector<size_t>{1, 10'000}
                        : std::vector<size_t>{1, 100, 1'000, 10'000, 100'000};
  std::printf("%-24s %9s %12s %12s %10s\n", "tenant state", "tenants",
              "decisions/s", "mean_ns", "p99_ns");
  PrintRule(94);
  for (const size_t num_tenants : tenant_counts) {
    for (const bool map_baseline : {false, true}) {
      CellParams params;
      params.num_types = 8;
      params.num_tenants = num_tenants;
      params.tenant_map_baseline = map_baseline;
      const CellResult r = RunCell(grid_variant, duration, params);
      std::printf("%-24s %9zu %12.0f %12lld %10lld\n",
                  map_baseline ? "map" : "flat", r.num_tenants,
                  r.decisions_per_sec, static_cast<long long>(r.submit_mean),
                  static_cast<long long>(r.submit_p99));
      results.push_back(r);
    }
  }
  PrintRule(94);

  WriteJson(results);
  std::printf("wrote BENCH_admission_throughput.json\n");

  // Headline ratio: incremental vs rescan Bouncer at the largest sweep
  // points (the acceptance bar for this optimization is >= 3x at 64+).
  for (const size_t n : type_counts) {
    double fast = 0, slow = 0;
    for (const CellResult& r : results) {
      if (r.num_types != n || r.submitters != kSubmitters ||
          r.single_queue != 0) {
        continue;
      }
      if (r.policy == "Bouncer") fast = r.decisions_per_sec;
      if (r.policy == "Bouncer(rescan)") slow = r.decisions_per_sec;
    }
    if (fast > 0 && slow > 0) {
      std::printf("types=%zu: incremental/rescan = %.2fx\n", n, fast / slow);
    }
  }
  // Execution-core headline: sharded vs single-queue at max submitters.
  {
    double sharded = 0, single = 0;
    for (const CellResult& r : results) {
      if (r.num_types != 512 || r.submitters != kSubmitters) continue;
      if (r.policy != "Bouncer" || r.tracing != 0) continue;
      if (r.single_queue == 0) sharded = r.decisions_per_sec;
      if (r.single_queue == 1) single = r.decisions_per_sec;
    }
    if (sharded > 0 && single > 0) {
      std::printf("submitters=%zu types=512: sharded/single-queue = %.2fx\n",
                  kSubmitters, sharded / single);
    }
  }
  // Tenant-ladder headlines: flat vs map throughput per rung, and the
  // flat slab's per-decision cost at 10k tenants relative to the
  // single-tenant cell (the <= ~1.15x cardinality-proofness bar).
  {
    double flat_mean_1 = 0, flat_mean_10k = 0;
    for (const size_t n : tenant_counts) {
      double flat = 0, map = 0;
      for (const CellResult& r : results) {
        if (r.num_tenants != n || r.num_types != 8 || r.tracing != 0) {
          continue;
        }
        if (r.tenant_map == 0) {
          flat = r.decisions_per_sec;
          if (n == 1) flat_mean_1 = static_cast<double>(r.submit_mean);
          if (n == 10'000) flat_mean_10k = static_cast<double>(r.submit_mean);
        } else {
          map = r.decisions_per_sec;
        }
      }
      if (flat > 0 && map > 0) {
        std::printf("tenants=%zu: flat/map = %.2fx\n", n, flat / map);
      }
    }
    if (flat_mean_1 > 0 && flat_mean_10k > 0) {
      std::printf("flat per-decision mean: 10k tenants / 1 tenant = %.3fx\n",
                  flat_mean_10k / flat_mean_1);
    }
  }
  return 0;
}

}  // namespace
}  // namespace bouncer::bench

int main(int argc, char** argv) { return bouncer::bench::Main(argc, argv); }
