// Real-cluster scatter-gather throughput: a closed-loop driver keeps a
// fixed window of queries in flight against the in-process broker/shard
// cluster and measures sustained completions/sec plus the end-to-end
// latency distribution, comparing the pooled/async scatter-gather hot
// path against the pre-optimization legacy path (Options::legacy_scatter)
// at the real-study topology, and sweeping broker/shard worker counts at
// larger scales. Both tiers run AlwaysAccept so the bench measures the
// data path, not admission behavior. Results are printed as a table and
// written to BENCH_cluster_throughput.json.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "bench/real_common.h"
#include "src/graph/cluster.h"
#include "src/stats/histogram.h"
#include "src/util/rng.h"
#include "src/workload/workload_spec.h"

namespace bouncer::bench {
namespace {

using graph::Cluster;
using graph::GraphOp;
using graph::GraphQuery;
using graph::GraphQueryResult;
using graph::GraphStore;

/// Outstanding queries in the closed loop: enough to keep every broker
/// and shard worker of the largest swept topology busy with a queue
/// behind it, small enough that queueing delay stays bounded.
constexpr size_t kWindow = 32;

struct CellResult {
  std::string variant;
  size_t broker_workers = 0;
  size_t shard_workers = 0;
  double seconds = 0;
  uint64_t completed = 0;
  double qps = 0;
  Nanos rt_p50 = 0;
  Nanos rt_p99 = 0;
  uint64_t shard_failures = 0;
};

/// Shared state of one closed-loop run. Completion callbacks capture a
/// pointer to this plus their submit timestamp (16 trivially-copyable
/// bytes, inside std::function's small-buffer), so driving the loop
/// allocates nothing per query.
struct BenchState {
  Cluster* cluster = nullptr;
  const std::vector<GraphQuery>* queries = nullptr;
  std::atomic<uint64_t> cursor{0};
  std::atomic<uint64_t> completed{0};
  std::atomic<bool> recording{false};
  std::atomic<bool> stop{false};
  std::atomic<size_t> in_flight{0};
  stats::Histogram rt;

  void SubmitNext();
};

void BenchState::SubmitNext() {
  const uint64_t i =
      cursor.fetch_add(1, std::memory_order_relaxed) % queries->size();
  const Nanos t0 = SystemClock::Global()->Now();
  BenchState* state = this;
  cluster->Submit(
      (*queries)[i], /*deadline=*/0,
      [state, t0](const server::WorkItem&, server::Outcome,
                  const GraphQueryResult&) {
        if (state->recording.load(std::memory_order_relaxed)) {
          state->rt.Record(SystemClock::Global()->Now() - t0);
          state->completed.fetch_add(1, std::memory_order_relaxed);
        }
        if (!state->stop.load(std::memory_order_acquire)) {
          state->SubmitNext();  // Keep the window full.
        } else {
          state->in_flight.fetch_sub(1, std::memory_order_acq_rel);
        }
      });
}

/// One benched cluster configuration. "legacy" restores the blocking
/// scatter-gather, "fast-1q" keeps the pooled/async path but forces the
/// pre-sharding single-run-queue execution core, "fast" is the default
/// (per-worker run queues with stealing + striped counters).
struct Variant {
  const char* name;
  bool legacy_scatter;
  bool force_single_queue;
};

constexpr Variant kVariants[] = {
    {"legacy", true, false},
    {"fast-1q", false, true},
    {"fast", false, false},
};

CellResult RunCell(const GraphStore& graph_store, const Variant& variant,
                   size_t broker_workers, size_t shard_workers,
                   const std::vector<GraphQuery>& queries, Nanos warmup,
                   Nanos measure) {
  const Slo slo{kSecond, 2 * kSecond, 0};
  QueryTypeRegistry registry = Cluster::MakeRegistry(slo);

  // Real-study topology (DefaultRealParams) with swept worker counts and
  // wide-open admission: the bench isolates scatter-gather cost.
  Cluster::Options options;
  options.num_brokers = 1;
  options.broker_workers = broker_workers;
  options.num_shards = 2;
  options.shard_workers = shard_workers;
  options.work_per_edge = 24;
  options.broker_queue_capacity = 1 << 15;
  options.shard_queue_capacity = 1 << 15;
  options.broker_policy.kind = PolicyKind::kAlwaysAccept;
  options.shard_policy.kind = PolicyKind::kAlwaysAccept;
  options.legacy_scatter = variant.legacy_scatter;
  options.force_single_queue = variant.force_single_queue;
  Cluster cluster(&graph_store, &registry, SystemClock::Global(), options);
  if (!cluster.Start().ok()) {
    std::fprintf(stderr, "cluster start failed\n");
    std::exit(1);
  }

  BenchState state;
  state.cluster = &cluster;
  state.queries = &queries;
  state.in_flight.store(kWindow, std::memory_order_relaxed);
  for (size_t i = 0; i < kWindow; ++i) state.SubmitNext();

  std::this_thread::sleep_for(std::chrono::nanoseconds(warmup));
  state.recording.store(true, std::memory_order_relaxed);
  const auto measure_start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::nanoseconds(measure));
  state.recording.store(false, std::memory_order_relaxed);
  const auto measure_end = std::chrono::steady_clock::now();

  state.stop.store(true, std::memory_order_release);
  const auto drain_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (state.in_flight.load(std::memory_order_acquire) > 0 &&
         std::chrono::steady_clock::now() < drain_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  cluster.Stop();

  CellResult r;
  r.variant = variant.name;
  r.broker_workers = broker_workers;
  r.shard_workers = shard_workers;
  r.seconds =
      std::chrono::duration<double>(measure_end - measure_start).count();
  r.completed = state.completed.load();
  r.qps = static_cast<double>(r.completed) / r.seconds;
  r.rt_p50 = state.rt.Percentile(0.5);
  r.rt_p99 = state.rt.Percentile(0.99);
  r.shard_failures = cluster.shard_failures();
  return r;
}

void WriteJson(const std::vector<CellResult>& results) {
  std::FILE* f = std::fopen("BENCH_cluster_throughput.json", "w");
  if (f == nullptr) return;
  std::fprintf(f, "{\n  \"bench\": \"cluster_throughput\",\n");
  WriteHostJsonFields(f);
  std::fprintf(f, "  \"window\": %zu,\n  \"cells\": [\n", kWindow);
  for (size_t i = 0; i < results.size(); ++i) {
    const CellResult& r = results[i];
    std::fprintf(
        f,
        "    {\"variant\": \"%s\", \"broker_workers\": %zu, "
        "\"shard_workers\": %zu, \"seconds\": %.3f, \"completed\": %llu, "
        "\"qps\": %.0f, \"rt_p50_us\": %.1f, \"rt_p99_us\": %.1f, "
        "\"shard_failures\": %llu}%s\n",
        r.variant.c_str(), r.broker_workers, r.shard_workers, r.seconds,
        static_cast<unsigned long long>(r.completed), r.qps,
        static_cast<double>(r.rt_p50) / 1000.0,
        static_cast<double>(r.rt_p99) / 1000.0,
        static_cast<unsigned long long>(r.shard_failures),
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

int Main() {
  PrintPreamble("bench_cluster_throughput",
                "closed-loop broker/shard cluster throughput, pooled/async "
                "vs legacy scatter-gather");
  const RealStudyParams params = DefaultRealParams();
  const GraphStore& graph_store = SharedGraph(params);

  Nanos warmup = 200 * kMillisecond;
  Nanos measure = 500 * kMillisecond;
  if (BenchScale() == 1) {
    warmup = 500 * kMillisecond;
    measure = 2 * kSecond;
  } else if (BenchScale() >= 2) {
    warmup = kSecond;
    measure = 5 * kSecond;
  }

  // Pre-generated §5.4 query mix: the driver only bumps an atomic cursor.
  const workload::WorkloadSpec mix = workload::PaperRealSystemMix();
  Rng rng(7);
  std::vector<GraphQuery> queries;
  queries.reserve(1 << 14);
  for (size_t i = 0; i < (1 << 14); ++i) {
    const size_t type_index = mix.SampleType(rng);
    queries.push_back(Cluster::SampleQuery(static_cast<GraphOp>(type_index),
                                           graph_store, rng));
  }

  // (broker_workers, shard_workers) sweep; the first point is the
  // real-study topology and the headline fast-vs-legacy comparison.
  std::vector<std::pair<size_t, size_t>> grid = {{4, 1}};
  if (BenchScale() >= 1) {
    grid.push_back({2, 1});
    grid.push_back({8, 1});
    grid.push_back({4, 2});
    grid.push_back({8, 2});
  }

  std::printf("%-8s %8s %8s %12s %12s %12s %10s\n", "variant", "brk_wrk",
              "shd_wrk", "qps", "p50_us", "p99_us", "failures");
  PrintRule(78);
  std::vector<CellResult> results;
  for (const auto& [brokers, shards] : grid) {
    for (const Variant& variant : kVariants) {
      const CellResult r = RunCell(graph_store, variant, brokers, shards,
                                   queries, warmup, measure);
      std::printf("%-8s %8zu %8zu %12.0f %12.1f %12.1f %10llu\n",
                  r.variant.c_str(), r.broker_workers, r.shard_workers, r.qps,
                  static_cast<double>(r.rt_p50) / 1000.0,
                  static_cast<double>(r.rt_p99) / 1000.0,
                  static_cast<unsigned long long>(r.shard_failures));
      results.push_back(r);
    }
    PrintRule(78);
  }
  WriteJson(results);
  std::printf("wrote BENCH_cluster_throughput.json\n");

  // Headline ratios at the real-study topology (fast/legacy acceptance
  // bar: >= 2x; fast/fast-1q isolates the execution-core sharding).
  double fast = 0, slow = 0, single_queue = 0;
  for (const CellResult& r : results) {
    if (r.broker_workers != 4 || r.shard_workers != 1) continue;
    if (r.variant == "fast") fast = r.qps;
    if (r.variant == "fast-1q") single_queue = r.qps;
    if (r.variant == "legacy") slow = r.qps;
  }
  if (slow > 0) {
    std::printf("default topology: fast/legacy = %.2fx\n", fast / slow);
  }
  if (single_queue > 0) {
    std::printf("default topology: sharded/single-queue = %.2fx\n",
                fast / single_queue);
  }
  return 0;
}

}  // namespace
}  // namespace bouncer::bench

int main() { return bouncer::bench::Main(); }
