#include "bench/bench_common.h"

#include <cstdlib>
#include <thread>

#ifdef __linux__
#include <sched.h>
#endif

namespace bouncer::bench {

size_t HardwareConcurrency() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

size_t AffinityCpuCount() {
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    const int count = CPU_COUNT(&set);
    if (count > 0) return static_cast<size_t>(count);
  }
#endif
  return HardwareConcurrency();
}

void WriteHostJsonFields(std::FILE* f) {
  std::fprintf(f, "  \"hardware_concurrency\": %zu, \"affinity_cpus\": %zu,\n",
               HardwareConcurrency(), AffinityCpuCount());
}

int BenchScale() {
  const char* env = std::getenv("BOUNCER_BENCH_SCALE");
  if (env == nullptr) return 1;
  const int scale = std::atoi(env);
  if (scale < 0) return 0;
  if (scale > 2) return 2;
  return scale;
}

StudyParams DefaultStudyParams() {
  StudyParams params;
  params.config.parallelism = 100;
  params.config.seed = 20240101;
  switch (BenchScale()) {
    case 0:
      // Warm-up must cover the histogram cold start plus the backlog it
      // leaves behind (several seconds of simulated time at overload).
      params.config.total_queries = 150'000;
      params.config.warmup_queries = 75'000;
      params.runs = 1;
      params.load_factors = {0.9, 1.1, 1.3, 1.5};
      break;
    case 1:
      params.config.total_queries = 300'000;
      params.config.warmup_queries = 120'000;
      params.runs = 3;
      params.load_factors = sim::PaperLoadFactors();
      break;
    default:
      params.config.total_queries = 1'500'000;  // Paper §5.3.
      params.config.warmup_queries = 300'000;
      params.runs = 5;  // "average of 5 simulation runs".
      params.load_factors = sim::PaperLoadFactors();
      break;
  }
  return params;
}

PolicyConfig MakeStudyPolicy(PolicyKind kind) {
  PolicyConfig config;
  config.kind = kind;
  // Table 2 parameters. Bouncer's SLOs live in the workload/registry.
  // Histogram cadence: 2 s windows with a 30-sample publication floor
  // keep the per-type p90 estimates stable enough that basic Bouncer
  // degrades smoothly instead of locking into premature starvation (the
  // paper does not publish its update interval; this choice reproduces
  // Table 3's basic-formulation row).
  config.bouncer.histogram_swap_interval = 2 * kSecond;
  config.bouncer.min_samples_to_publish = 30;
  config.allowance.allowance = 0.05;
  config.underserved.alpha = 1.0;
  config.max_queue_length.length_limit = 400;
  config.max_queue_wait.wait_time_limit = 15 * kMillisecond;
  config.accept_fraction.max_utilization = 0.95;
  if (BenchScale() < 2) {
    // Short runs: shrink the demand-tracking windows proportionally so
    // the policy reaches steady state inside the run.
    config.accept_fraction.window_duration = kSecond;
    config.accept_fraction.window_step = 50 * kMillisecond;
    config.accept_fraction.update_interval = 50 * kMillisecond;
  }
  return config;
}

std::vector<PolicyKind> StudyPolicyKinds() {
  return {PolicyKind::kBouncer,
          PolicyKind::kBouncerWithAllowance,
          PolicyKind::kBouncerWithUnderserved,
          PolicyKind::kMaxQueueLength,
          PolicyKind::kMaxQueueWait,
          PolicyKind::kAcceptFraction};
}

std::vector<PolicyConfig> MakeStudyPolicies(
    const std::vector<PolicyKind>& kinds) {
  std::vector<PolicyConfig> policies;
  policies.reserve(kinds.size());
  for (const PolicyKind kind : kinds) policies.push_back(MakeStudyPolicy(kind));
  return policies;
}

std::vector<std::vector<sim::SweepPoint>> SweepStudyPolicies(
    const workload::WorkloadSpec& workload, const StudyParams& params,
    const std::vector<PolicyConfig>& policies) {
  return sim::SweepPolicyGrid(workload, params.config, policies,
                              params.load_factors, params.runs);
}

void PrintPreamble(const char* name, const char* description) {
  std::printf(
      "# %s\n# %s\n# scale=%d (set BOUNCER_BENCH_SCALE=0|1|2), jobs=%d "
      "(set BOUNCER_BENCH_JOBS)\n",
      name, description, BenchScale(), sim::DefaultJobs());
}

void PrintRule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace bouncer::bench
