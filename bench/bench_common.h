#ifndef BOUNCER_BENCH_BENCH_COMMON_H_
#define BOUNCER_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/sim/experiment.h"

namespace bouncer::bench {

/// Experiment fidelity, from the BOUNCER_BENCH_SCALE environment variable:
/// 0 = smoke (seconds), 1 = default (tens of seconds), 2 = paper scale
/// (the paper's 1.5 M queries x 5 runs per cell; minutes).
int BenchScale();

/// Simulation parameters for the current scale (paper §5.3 at scale 2).
struct StudyParams {
  sim::SimulationConfig config;
  int runs = 1;
  std::vector<double> load_factors;
};
StudyParams DefaultStudyParams();

/// The policies of the simulation study (paper Table 2), with parameters
/// as published. AcceptFraction's moving-average windows are scaled down
/// with the run length at scales 0/1 (the paper's D = 60 s assumes
/// minute-long runs); at scale 2 they use the published values.
PolicyConfig MakeStudyPolicy(PolicyKind kind);

/// All six policy kinds of the simulation study, in presentation order.
std::vector<PolicyKind> StudyPolicyKinds();

/// MakeStudyPolicy applied to each kind, preserving order.
std::vector<PolicyConfig> MakeStudyPolicies(
    const std::vector<PolicyKind>& kinds);

/// Sweeps every policy over params.load_factors as one flattened
/// (policy × load-factor × seed) grid through the parallel runner
/// (sim::SweepPolicyGrid): all BOUNCER_BENCH_JOBS workers stay busy
/// across the whole figure instead of per-policy. Returns one sweep per
/// policy, index-aligned and bit-identical to serial SweepLoadFactors.
std::vector<std::vector<sim::SweepPoint>> SweepStudyPolicies(
    const workload::WorkloadSpec& workload, const StudyParams& params,
    const std::vector<PolicyConfig>& policies);

/// Logical CPUs the kernel reports (std::thread::hardware_concurrency,
/// 0 mapped to 1 so ratios never divide by zero).
size_t HardwareConcurrency();

/// CPUs in this process's scheduling affinity mask — what taskset or a
/// cgroup cpuset actually grants, which on CI runners is often smaller
/// than HardwareConcurrency(). Falls back to HardwareConcurrency() on
/// platforms without sched_getaffinity.
size_t AffinityCpuCount();

/// Writes the shared host-description fields every BENCH_*.json carries
/// (so scaling numbers can be interpreted against the machine that
/// produced them), with a trailing comma:
///   "hardware_concurrency": N, "affinity_cpus": N,
void WriteHostJsonFields(std::FILE* f);

/// Prints "# name: description" plus the runtime scale and job count.
void PrintPreamble(const char* name, const char* description);

/// Prints a row of '-' the width of the previous header (cosmetic).
void PrintRule(int width = 100);

}  // namespace bouncer::bench

#endif  // BOUNCER_BENCH_BENCH_COMMON_H_
