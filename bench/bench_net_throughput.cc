// Network front-end throughput: drives the NetServer over loopback with
// the closed-loop NetClient, comparing variants per (backend x loops x
// connections x in-flight) cell —
//
//   inproc     closed-loop Cluster::Submit calls in-process (no sockets):
//              the ceiling the network path is measured against;
//   net_item   loopback TCP, one admission episode per parsed query
//              (NetServer::Options::batch_submit = false), single loop;
//   net_batch  loopback TCP, everything parsed from one epoll wakeup
//              drained through Cluster::SubmitBatch in a single pass —
//              run at every loop count in the sweep, so the same cell
//              read across rows is the multi-reactor scaling curve.
//
// The query mix is deliberately cheap (degree-heavy, ample workers) so
// the event loops are the bottleneck: the net_batch/net_item gap prices
// per-query admission (what SubmitBatch amortizes), and the 1->N loops
// gap prices the single-reactor serialization the sharded front-end
// removes. Loop scaling needs real cores — the JSON records
// hardware_concurrency so a 1-core CI run is read accordingly.
//
// Every net cell runs once per event-loop backend (epoll always,
// io_uring when the kernel passes the functional probe), with the
// server's data-path syscalls-per-response column the backends compete
// on directly.
//
// A high-connection ladder (256 / 1k / 10k / 32k / 64k connections,
// small rings, shallow windows) then checks the front-end holds QPS and
// flat RSS as connection count grows two orders of magnitude;
// RLIMIT_NOFILE is raised toward its hard cap, the ephemeral-port range
// is probed, and rungs that still don't fit are skipped with a clear
// per-rung note rather than failing the bench.
//
// A final overload section offers ~2x the measured capacity open-loop
// against a rejecting broker policy and samples the process RSS across
// the surge: rejections must flow back while memory stays flat (the
// zero-steady-state-allocation claim).
//
// BOUNCER_BENCH_NET_LOOPS=1,4 (comma list) overrides the loop-count
// sweep — CI's bench-smoke uses it to run loops=1 and loops=4 as
// separate jobs. Results are printed as tables and written to
// BENCH_net_throughput.json.

#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/graph/cluster.h"
#include "src/graph/graph_generator.h"
#include "src/net/admin_client.h"
#include "src/net/net_client.h"
#include "src/net/net_server.h"
#include "src/stats/flight_recorder.h"
#include "src/stats/histogram.h"
#include "src/stats/metric_registry.h"
#include "src/util/rng.h"

namespace bouncer::bench {
namespace {

using graph::Cluster;
using graph::GraphOp;
using graph::GraphQuery;
using graph::GraphQueryResult;
using graph::GraphStore;

struct CellResult {
  std::string variant;
  std::string backend;  ///< Resolved event-loop backend ("" for inproc).
  size_t loops = 0;  ///< Event loops (0 for the inproc baseline).
  size_t connections = 0;
  size_t in_flight = 0;
  int tracing = 0;  ///< Flight recorder enabled (1-in-64 sampling).
  double seconds = 0;
  uint64_t completed = 0;
  double qps = 0;
  Nanos rt_p50 = 0;
  Nanos rt_p99 = 0;
  double avg_batch = 0;  ///< Requests per admission episode (net_batch).
  double sys_per_req = 0;  ///< Server data-path syscalls per response.
};

struct LadderResult {
  std::string backend;
  size_t connections = 0;
  size_t loops = 0;
  bool skipped = false;
  std::string skip_reason;
  double qps = 0;
  Nanos rt_p50 = 0;
  Nanos rt_p99 = 0;
  double sys_per_req = 0;
  long rss_start_kb = 0;  ///< Sampled once the full fleet is connected.
  long rss_end_kb = 0;    ///< Sampled at the end of the measure window.
};

struct SurgeResult {
  double offered_qps = 0;
  double capacity_qps = 0;
  uint64_t responses = 0;
  uint64_t ok = 0;
  uint64_t rejections = 0;
  uint64_t dropped = 0;
  long rss_start_kb = 0;
  long rss_end_kb = 0;
};

/// VmRSS of this process in kB (client and server both live here —
/// loopback — so flat covers the whole data path).
long ReadRssKb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  long kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      kb = std::strtol(line + 6, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kb;
}

/// Raises the soft RLIMIT_NOFILE toward the hard cap until `needed` fds
/// fit. Returns false (with a clear, actionable message) when even the
/// hard cap is too small — the caller skips that rung.
bool EnsureNofile(size_t needed, std::string* why) {
  struct rlimit lim;
  if (getrlimit(RLIMIT_NOFILE, &lim) != 0) {
    *why = "getrlimit(RLIMIT_NOFILE) failed";
    return false;
  }
  if (lim.rlim_cur >= needed) return true;
  if (lim.rlim_max < needed) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "needs %zu fds but RLIMIT_NOFILE hard cap is %llu "
                  "(raise with `ulimit -Hn` / limits.conf)",
                  needed, static_cast<unsigned long long>(lim.rlim_max));
    *why = buf;
    return false;
  }
  lim.rlim_cur = needed;
  if (setrlimit(RLIMIT_NOFILE, &lim) != 0) {
    *why = "setrlimit(RLIMIT_NOFILE) failed";
    return false;
  }
  return true;
}

/// High rungs need one ephemeral source port per client connection (all
/// four-tuples share src ip / dst ip / dst port over loopback). Returns
/// false with an actionable message when the kernel's range is too small
/// — the default 32768..60999 caps the ladder near 28k connections.
bool EnsurePorts(size_t needed, std::string* why) {
  std::FILE* f = std::fopen("/proc/sys/net/ipv4/ip_local_port_range", "r");
  if (f == nullptr) return true;  // No procfs: let connect() decide.
  long lo = 0, hi = 0;
  const int n = std::fscanf(f, "%ld %ld", &lo, &hi);
  std::fclose(f);
  if (n != 2 || hi <= lo) return true;
  // Leave headroom for everything else on the box using the range.
  const auto available = static_cast<size_t>(hi - lo + 1);
  const size_t slack = 512;
  if (needed + slack <= available) return true;
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "needs %zu ephemeral ports but ip_local_port_range %ld-%ld "
                "allows %zu (raise with sysctl net.ipv4.ip_local_port_range)",
                needed, lo, hi, available);
  *why = buf;
  return false;
}

/// Loop counts to sweep: BOUNCER_BENCH_NET_LOOPS=1,4 overrides.
std::vector<size_t> LoopSweep() {
  if (const char* env = std::getenv("BOUNCER_BENCH_NET_LOOPS")) {
    std::vector<size_t> loops;
    const char* p = env;
    while (*p != '\0') {
      char* end = nullptr;
      const long v = std::strtol(p, &end, 10);
      if (end == p) break;
      if (v >= 1 && v <= 255) loops.push_back(static_cast<size_t>(v));
      p = (*end == ',') ? end + 1 : end;
    }
    if (!loops.empty()) return loops;
  }
  return BenchScale() >= 1 ? std::vector<size_t>{1, 2, 4}
                           : std::vector<size_t>{1, 4};
}

/// Cheap degree-heavy query stream: 90% QT1 (single-vertex degree), 10%
/// QT2 (capped adjacency) — each query is one shard round, so broker and
/// shard workers outpace the event loops and the submit path shows.
std::vector<GraphQuery> MakeQueries(const GraphStore& graph) {
  Rng rng(11);
  std::vector<GraphQuery> queries;
  queries.reserve(1 << 14);
  for (size_t i = 0; i < (1 << 14); ++i) {
    const GraphOp op =
        rng.NextBounded(10) == 0 ? GraphOp::kNeighbors : GraphOp::kDegree;
    queries.push_back(Cluster::SampleQuery(op, graph, rng));
  }
  return queries;
}

Cluster::Options ClusterOptions(bool rejecting) {
  Cluster::Options options;
  options.num_brokers = 1;
  options.broker_workers = 8;
  options.num_shards = 2;
  options.shard_workers = 2;
  options.work_per_edge = 4;
  options.broker_queue_capacity = 1 << 15;
  options.shard_queue_capacity = 1 << 15;
  if (rejecting) {
    // Overload section: a deterministic queue-length door so the surge
    // produces a steady stream of synchronous early rejections.
    options.broker_policy.kind = PolicyKind::kMaxQueueLength;
    options.broker_policy.max_queue_length.length_limit = 512;
  } else {
    options.broker_policy.kind = PolicyKind::kAlwaysAccept;
  }
  options.shard_policy.kind = PolicyKind::kAlwaysAccept;
  return options;
}

net::RequestFrame FrameFor(const GraphQuery& q) {
  net::RequestFrame frame;
  frame.op = static_cast<uint8_t>(q.op);
  frame.source = q.source;
  frame.target = q.target;
  frame.external_id = q.external_id;
  return frame;
}

/// In-process closed-loop baseline (same shape as bench_cluster_throughput
/// but with the grid cell's total window).
struct InprocState {
  Cluster* cluster = nullptr;
  const std::vector<GraphQuery>* queries = nullptr;
  std::atomic<uint64_t> cursor{0};
  std::atomic<uint64_t> completed{0};
  std::atomic<bool> recording{false};
  std::atomic<bool> stop{false};
  std::atomic<size_t> in_flight{0};
  stats::Histogram rt;

  void SubmitNext() {
    const uint64_t i =
        cursor.fetch_add(1, std::memory_order_relaxed) % queries->size();
    const Nanos t0 = SystemClock::Global()->Now();
    InprocState* state = this;
    cluster->Submit((*queries)[i], /*deadline=*/0,
                    [state, t0](const server::WorkItem&, server::Outcome,
                                const GraphQueryResult&) {
                      if (state->recording.load(std::memory_order_relaxed)) {
                        state->rt.Record(SystemClock::Global()->Now() - t0);
                        state->completed.fetch_add(1,
                                                   std::memory_order_relaxed);
                      }
                      if (!state->stop.load(std::memory_order_acquire)) {
                        state->SubmitNext();
                      } else {
                        state->in_flight.fetch_sub(1,
                                                   std::memory_order_acq_rel);
                      }
                    });
  }
};

CellResult RunInproc(const GraphStore& graph,
                     const std::vector<GraphQuery>& queries, size_t window,
                     Nanos warmup, Nanos measure) {
  const Slo slo{kSecond, 2 * kSecond, 0};
  QueryTypeRegistry registry = Cluster::MakeRegistry(slo);
  Cluster cluster(&graph, &registry, SystemClock::Global(),
                  ClusterOptions(/*rejecting=*/false));
  if (!cluster.Start().ok()) {
    std::fprintf(stderr, "cluster start failed\n");
    std::exit(1);
  }
  InprocState state;
  state.cluster = &cluster;
  state.queries = &queries;
  state.in_flight.store(window, std::memory_order_relaxed);
  for (size_t i = 0; i < window; ++i) state.SubmitNext();

  std::this_thread::sleep_for(std::chrono::nanoseconds(warmup));
  state.recording.store(true, std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::nanoseconds(measure));
  state.recording.store(false, std::memory_order_relaxed);
  const auto t1 = std::chrono::steady_clock::now();
  state.stop.store(true, std::memory_order_release);
  const auto drain_deadline = t1 + std::chrono::seconds(10);
  while (state.in_flight.load(std::memory_order_acquire) > 0 &&
         std::chrono::steady_clock::now() < drain_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  cluster.Stop();

  CellResult r;
  r.variant = "inproc";
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.completed = state.completed.load();
  r.qps = static_cast<double>(r.completed) / r.seconds;
  r.rt_p50 = state.rt.Percentile(0.5);
  r.rt_p99 = state.rt.Percentile(0.99);
  return r;
}

CellResult RunNet(const GraphStore& graph,
                  const std::vector<GraphQuery>& queries, bool batch_submit,
                  net::NetBackend backend, size_t loops, size_t connections,
                  size_t in_flight, Nanos warmup, Nanos measure,
                  bool tracing = false) {
  const Slo slo{kSecond, 2 * kSecond, 0};
  QueryTypeRegistry registry = Cluster::MakeRegistry(slo);
  // Cell-local observability plumbing: the recorder is wired in every
  // cell (tracing merely flips its enabled bit, which is exactly the
  // on/off overhead comparison); the registry only when tracing so the
  // default sweep matches the pre-observability configuration.
  stats::FlightRecorder recorder;
  recorder.SetEnabled(tracing);
  stats::MetricRegistry metrics;
  Cluster::Options cluster_options = ClusterOptions(/*rejecting=*/false);
  cluster_options.recorder = &recorder;
  if (tracing) cluster_options.metrics = &metrics;
  Cluster cluster(&graph, &registry, SystemClock::Global(), cluster_options);
  if (!cluster.Start().ok()) {
    std::fprintf(stderr, "cluster start failed\n");
    std::exit(1);
  }
  net::NetServer::Options server_options;
  server_options.batch_submit = batch_submit;
  server_options.backend = backend;
  server_options.num_loops = loops;
  server_options.max_connections = connections + 8;
  server_options.recorder = &recorder;
  if (tracing) server_options.metrics = &metrics;
  net::NetServer server(&cluster, server_options);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "server start failed\n");
    std::exit(1);
  }

  net::NetClient::Options client_options;
  client_options.port = server.port();
  client_options.num_connections = connections;
  client_options.num_io_threads = connections < 4 ? 1 : 4;
  client_options.in_flight_per_conn = in_flight;
  net::NetClient client(client_options,
                        [&queries](size_t conn_index, uint64_t seq) {
                          return FrameFor(queries[(conn_index * 7919 + seq) %
                                                  queries.size()]);
                        });
  if (!client.Start().ok()) {
    std::fprintf(stderr, "client start failed\n");
    std::exit(1);
  }
  client.StartClosedLoop();
  std::this_thread::sleep_for(std::chrono::nanoseconds(warmup));

  const net::NetServer::Stats before = server.AggregateStats();
  client.ResetStats();
  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::nanoseconds(measure));
  const auto t1 = std::chrono::steady_clock::now();
  const net::NetClient::Counters counters = client.counters();
  const stats::HistogramSummary latency = client.Latency();
  const net::NetServer::Stats after = server.AggregateStats();
  const uint64_t batches = after.submit_batches - before.submit_batches;
  const uint64_t requests = after.requests - before.requests;

  // With the registry wired, grab a live snapshot through the admin
  // opcode while the load is still running — CI's bench-smoke sets
  // BOUNCER_BENCH_NET_STATS_OUT and uploads the file as an artifact.
  if (tracing) {
    if (const char* out = std::getenv("BOUNCER_BENCH_NET_STATS_OUT")) {
      net::AdminFetch fetch;
      fetch.port = server.port();
      fetch.op = net::kOpStatsJson;
      std::string payload;
      if (net::FetchAdmin(fetch, &payload).ok()) {
        if (std::FILE* f = std::fopen(out, "w")) {
          std::fwrite(payload.data(), 1, payload.size(), f);
          std::fputc('\n', f);
          std::fclose(f);
          std::printf("wrote live stats snapshot to %s\n", out);
        }
      } else {
        std::fprintf(stderr, "stats snapshot fetch failed\n");
      }
    }
  }

  client.StopSending();
  client.WaitForDrain(2 * kSecond);
  client.Stop();
  server.Stop();
  cluster.Stop();

  CellResult r;
  r.variant = batch_submit ? "net_batch" : "net_item";
  r.backend = net::NetBackendName(after.backend);
  r.loops = server.num_loops();
  r.connections = connections;
  r.in_flight = in_flight;
  r.tracing = tracing ? 1 : 0;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.completed = counters.responses;
  r.qps = static_cast<double>(r.completed) / r.seconds;
  r.rt_p50 = latency.p50;
  r.rt_p99 = latency.p99;
  if (batch_submit && batches > 0) {
    r.avg_batch = static_cast<double>(requests) / static_cast<double>(batches);
  }
  if (r.completed > 0) {
    r.sys_per_req = static_cast<double>(after.syscalls - before.syscalls) /
                    static_cast<double>(r.completed);
  }
  return r;
}

/// One high-connection ladder rung: `connections` sockets with shallow
/// windows and small rings (the per-connection memory knobs a fleet that
/// size requires), closed loop, RSS sampled across the measure window.
LadderResult RunLadder(const GraphStore& graph,
                       const std::vector<GraphQuery>& queries,
                       net::NetBackend backend, size_t connections,
                       size_t loops, Nanos warmup, Nanos measure) {
  LadderResult r;
  r.backend = net::NetBackendName(backend);
  r.connections = connections;
  r.loops = loops;

  // Client + server ends both live in this process: 2 fds per
  // connection plus epoll/event/listen fds and stdio slack.
  std::string why;
  if (!EnsureNofile(2 * connections + 64, &why) ||
      !EnsurePorts(connections, &why)) {
    r.skipped = true;
    r.skip_reason = why;
    return r;
  }

  const Slo slo{kSecond, 2 * kSecond, 0};
  QueryTypeRegistry registry = Cluster::MakeRegistry(slo);
  Cluster cluster(&graph, &registry, SystemClock::Global(),
                  ClusterOptions(/*rejecting=*/false));
  if (!cluster.Start().ok()) {
    std::fprintf(stderr, "cluster start failed\n");
    std::exit(1);
  }
  net::NetServer::Options server_options;
  server_options.backend = backend;
  server_options.num_loops = loops;
  server_options.max_connections = connections + 8;
  server_options.read_ring_bytes = 1 << 12;
  server_options.write_ring_bytes = 1 << 12;
  server_options.max_inflight_per_conn = 16;
  // 32k+ fleets with 512 x 4k provided buffers per loop would pin tens
  // of MB per ring; the staged-copy design only needs enough buffers to
  // cover one wakeup's worth of CQEs.
  server_options.uring_buf_count = 256;
  net::NetServer server(&cluster, server_options);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "server start failed\n");
    std::exit(1);
  }

  net::NetClient::Options client_options;
  client_options.port = server.port();
  client_options.num_connections = connections;
  client_options.num_io_threads = 4;
  client_options.in_flight_per_conn = 2;
  client_options.ring_bytes = 1 << 12;
  net::NetClient client(client_options,
                        [&queries](size_t conn_index, uint64_t seq) {
                          return FrameFor(queries[(conn_index * 7919 + seq) %
                                                  queries.size()]);
                        });
  if (!client.Start().ok()) {
    r.skipped = true;
    r.skip_reason = "client connect failed (host fd or port limits?)";
    server.Stop();
    cluster.Stop();
    return r;
  }
  client.StartClosedLoop();
  std::this_thread::sleep_for(std::chrono::nanoseconds(warmup));

  client.ResetStats();
  const net::NetServer::Stats before = server.AggregateStats();
  r.rss_start_kb = ReadRssKb();
  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::nanoseconds(measure));
  const auto t1 = std::chrono::steady_clock::now();
  r.rss_end_kb = ReadRssKb();
  const net::NetServer::Stats after = server.AggregateStats();
  const net::NetClient::Counters counters = client.counters();
  const stats::HistogramSummary latency = client.Latency();

  client.StopSending();
  client.WaitForDrain(2 * kSecond);
  client.Stop();
  server.Stop();
  cluster.Stop();

  r.backend = net::NetBackendName(after.backend);
  r.qps = static_cast<double>(counters.responses) /
          std::chrono::duration<double>(t1 - t0).count();
  r.rt_p50 = latency.p50;
  r.rt_p99 = latency.p99;
  if (counters.responses > 0) {
    r.sys_per_req = static_cast<double>(after.syscalls - before.syscalls) /
                    static_cast<double>(counters.responses);
  }
  return r;
}

/// Overload: offer ~2x `capacity_qps` open-loop against the rejecting
/// policy, sampling RSS just after the surge is established and at its
/// end.
SurgeResult RunSurge(const GraphStore& graph,
                     const std::vector<GraphQuery>& queries,
                     double capacity_qps, Nanos duration) {
  const Slo slo{kSecond, 2 * kSecond, 0};
  QueryTypeRegistry registry = Cluster::MakeRegistry(slo);
  Cluster cluster(&graph, &registry, SystemClock::Global(),
                  ClusterOptions(/*rejecting=*/true));
  if (!cluster.Start().ok()) std::exit(1);
  net::NetServer server(&cluster, {});
  if (!server.Start().ok()) std::exit(1);

  net::NetClient::Options client_options;
  client_options.port = server.port();
  client_options.num_connections = 64;
  client_options.num_io_threads = 4;
  net::NetClient client(client_options, [](size_t, uint64_t) {
    return net::RequestFrame{};  // Open loop only; sampler unused.
  });
  if (!client.Start().ok()) std::exit(1);

  SurgeResult surge;
  surge.capacity_qps = capacity_qps;
  surge.offered_qps = 2.0 * capacity_qps;

  // Paced open-loop feeder: every millisecond, offer the next slice of
  // the absolute schedule; local-queue overflow counts as drops (the
  // server's TCP backpressure reached the client), which is the open-loop
  // contract under overload.
  const auto t_start = std::chrono::steady_clock::now();
  const auto t_end = t_start + std::chrono::nanoseconds(duration);
  const Nanos rss_probe_at = duration / 5;
  uint64_t offered = 0;
  size_t qi = 0;
  bool rss_sampled = false;
  while (std::chrono::steady_clock::now() < t_end) {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t_start)
            .count();
    const auto due = static_cast<uint64_t>(elapsed * surge.offered_qps);
    while (offered < due) {
      const GraphQuery& q = queries[qi++ % queries.size()];
      net::RequestFrame frame;
      frame.op = static_cast<uint8_t>(q.op);
      frame.source = q.source;
      frame.target = q.target;
      client.TrySend(frame);
      ++offered;
    }
    if (!rss_sampled &&
        elapsed * kSecond >= static_cast<double>(rss_probe_at)) {
      surge.rss_start_kb = ReadRssKb();
      rss_sampled = true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  surge.rss_end_kb = ReadRssKb();
  client.WaitForDrain(2 * kSecond);

  const net::NetClient::Counters counters = client.counters();
  surge.responses = counters.responses;
  surge.ok = counters.ok;
  surge.rejections = counters.rejected + counters.shedded;
  surge.dropped = counters.dropped;
  client.Stop();
  server.Stop();
  cluster.Stop();
  return surge;
}

void WriteJson(const std::vector<CellResult>& results,
               const std::vector<LadderResult>& ladder,
               const SurgeResult& surge, double headline,
               double loop_scaling, const std::string& uring_skip) {
  std::FILE* f = std::fopen("BENCH_net_throughput.json", "w");
  if (f == nullptr) return;
  std::fprintf(f, "{\n  \"bench\": \"net_throughput\",\n");
  WriteHostJsonFields(f);
  {
    const Cluster::Options topology = ClusterOptions(false);
    std::fprintf(f,
                 "  \"brokers\": %zu, \"broker_workers\": %zu, "
                 "\"shards\": %zu, \"shard_workers\": %zu,\n",
                 topology.num_brokers, topology.broker_workers,
                 topology.num_shards, topology.shard_workers);
  }
  if (uring_skip.empty()) {
    std::fprintf(f, "  \"backends\": [\"epoll\", \"io_uring\"],\n");
  } else {
    std::fprintf(f,
                 "  \"backends\": [\"epoll\"],\n"
                 "  \"io_uring_skipped\": \"%s\",\n",
                 uring_skip.c_str());
  }
  std::fprintf(f, "  \"cells\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const CellResult& r = results[i];
    std::fprintf(
        f,
        "    {\"variant\": \"%s\", \"backend\": \"%s\", \"loops\": %zu, "
        "\"connections\": %zu, "
        "\"in_flight\": %zu, \"tracing\": %d, \"seconds\": %.3f, "
        "\"completed\": %llu, "
        "\"qps\": %.0f, \"rt_p50_us\": %.1f, \"rt_p99_us\": %.1f, "
        "\"avg_batch\": %.1f, \"sys_per_req\": %.3f}%s\n",
        r.variant.c_str(), r.backend.c_str(), r.loops, r.connections,
        r.in_flight, r.tracing, r.seconds,
        static_cast<unsigned long long>(r.completed), r.qps,
        static_cast<double>(r.rt_p50) / 1000.0,
        static_cast<double>(r.rt_p99) / 1000.0, r.avg_batch, r.sys_per_req,
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"ladder\": [\n");
  for (size_t i = 0; i < ladder.size(); ++i) {
    const LadderResult& r = ladder[i];
    if (r.skipped) {
      std::fprintf(f,
                   "    {\"backend\": \"%s\", \"connections\": %zu, "
                   "\"loops\": %zu, "
                   "\"skipped\": \"%s\"}%s\n",
                   r.backend.c_str(), r.connections, r.loops,
                   r.skip_reason.c_str(), i + 1 < ladder.size() ? "," : "");
    } else {
      std::fprintf(
          f,
          "    {\"backend\": \"%s\", \"connections\": %zu, \"loops\": %zu, "
          "\"qps\": %.0f, "
          "\"rt_p50_us\": %.1f, \"rt_p99_us\": %.1f, \"sys_per_req\": %.3f, "
          "\"rss_start_kb\": %ld, "
          "\"rss_end_kb\": %ld}%s\n",
          r.backend.c_str(), r.connections, r.loops, r.qps,
          static_cast<double>(r.rt_p50) / 1000.0,
          static_cast<double>(r.rt_p99) / 1000.0, r.sys_per_req,
          r.rss_start_kb, r.rss_end_kb, i + 1 < ladder.size() ? "," : "");
    }
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(
      f,
      "  \"surge\": {\"offered_qps\": %.0f, \"capacity_qps\": %.0f, "
      "\"responses\": %llu, \"ok\": %llu, \"rejections\": %llu, "
      "\"dropped\": %llu, \"rss_start_kb\": %ld, \"rss_end_kb\": %ld},\n",
      surge.offered_qps, surge.capacity_qps,
      static_cast<unsigned long long>(surge.responses),
      static_cast<unsigned long long>(surge.ok),
      static_cast<unsigned long long>(surge.rejections),
      static_cast<unsigned long long>(surge.dropped), surge.rss_start_kb,
      surge.rss_end_kb);
  std::fprintf(f, "  \"batch_vs_item_at_64conns\": %.2f,\n", headline);
  std::fprintf(f, "  \"loop_scaling_at_256conns\": %.2f\n}\n", loop_scaling);
  std::fclose(f);
}

int Main() {
  PrintPreamble("bench_net_throughput",
                "sharded front-end over loopback: epoll vs io_uring "
                "backends, batched vs per-item admission, loop scaling, "
                "vs the in-process ceiling");

  Nanos warmup = 300 * kMillisecond;
  Nanos measure = 600 * kMillisecond;
  Nanos surge_duration = 1500 * kMillisecond;
  std::vector<std::pair<size_t, size_t>> grid = {{16, 8}, {64, 16}};
  std::vector<size_t> ladder_conns = {256, 1024};
  if (BenchScale() == 1) {
    warmup = 500 * kMillisecond;
    measure = 2 * kSecond;
    surge_duration = 4 * kSecond;
    grid = {{4, 8}, {16, 8}, {64, 16}, {128, 16}, {256, 16}};
    ladder_conns = {256, 1024, 10240, 32768};
  } else if (BenchScale() >= 2) {
    warmup = kSecond;
    measure = 5 * kSecond;
    surge_duration = 10 * kSecond;
    grid = {{4, 8}, {16, 8}, {64, 8}, {64, 16}, {128, 16}, {256, 16}};
    ladder_conns = {256, 1024, 10240, 32768, 65536};
  }
  const std::vector<size_t> loop_sweep = LoopSweep();

  // Both backends in one invocation: epoll always, io_uring when the
  // kernel passes the functional probe (otherwise noted in the JSON so a
  // fallback run is never mistaken for a comparison).
  std::vector<net::NetBackend> backends = {net::NetBackend::kEpoll};
  std::string uring_skip;
  if (net::NetServer::UringSupported(&uring_skip)) {
    backends.push_back(net::NetBackend::kUring);
    uring_skip.clear();
  } else {
    std::printf("io_uring backend skipped: %s\n", uring_skip.c_str());
  }

  graph::GeneratorOptions graph_options;
  graph_options.num_vertices = 20'000;
  graph_options.edges_per_vertex = 8;
  const GraphStore graph = GeneratePreferentialAttachment(graph_options);
  const std::vector<GraphQuery> queries = MakeQueries(graph);

  std::printf("hardware_concurrency: %u, loop sweep:",
              std::thread::hardware_concurrency());
  for (const size_t loops : loop_sweep) std::printf(" %zu", loops);
  std::printf("\n\n%-10s %-9s %6s %6s %9s %12s %12s %12s %10s %8s\n",
              "variant", "backend", "loops", "conns", "in_flight", "qps",
              "p50_us", "p99_us", "avg_batch", "sys/req");
  PrintRule(103);
  std::vector<CellResult> results;
  double capacity_qps = 0;
  double item_64 = 0, batch_64 = 0;
  for (const auto& [connections, in_flight] : grid) {
    const size_t row_start = results.size();
    CellResult inproc = RunInproc(graph, queries, connections * in_flight,
                                  warmup, measure);
    inproc.connections = connections;
    inproc.in_flight = in_flight;
    results.push_back(inproc);
    for (const net::NetBackend backend : backends) {
      // net_item only at the sweep's first loop count (the batching A/B
      // baseline); net_batch at every loop count (the scaling curve).
      const CellResult item =
          RunNet(graph, queries, /*batch_submit=*/false, backend,
                 loop_sweep.front(), connections, in_flight, warmup, measure);
      results.push_back(item);
      // The batch-vs-item headline stays an epoll-vs-epoll ratio so the
      // number is comparable across kernels with and without io_uring.
      if (connections >= 64 && backend == net::NetBackend::kEpoll &&
          item.qps > item_64) {
        item_64 = item.qps;
      }
      for (const size_t loops : loop_sweep) {
        const CellResult r =
            RunNet(graph, queries, /*batch_submit=*/true, backend, loops,
                   connections, in_flight, warmup, measure);
        results.push_back(r);
        if (connections >= 64 && backend == net::NetBackend::kEpoll &&
            r.qps > batch_64) {
          batch_64 = r.qps;
        }
        if (r.qps > capacity_qps) capacity_qps = r.qps;
      }
    }
    for (size_t i = row_start; i < results.size(); ++i) {
      const CellResult& r = results[i];
      std::printf("%-10s %-9s %6zu %6zu %9zu %12.0f %12.1f %12.1f %10.1f "
                  "%8.2f\n",
                  r.variant.c_str(),
                  r.backend.empty() ? "-" : r.backend.c_str(), r.loops,
                  r.connections, r.in_flight, r.qps,
                  static_cast<double>(r.rt_p50) / 1000.0,
                  static_cast<double>(r.rt_p99) / 1000.0, r.avg_batch,
                  r.sys_per_req);
    }
    PrintRule(103);
  }

  // High-connection ladder at the sweep's min and max loop counts.
  std::vector<size_t> ladder_loops = {loop_sweep.front()};
  if (loop_sweep.back() != loop_sweep.front()) {
    ladder_loops.push_back(loop_sweep.back());
  }
  std::vector<LadderResult> ladder;
  std::printf("\nladder (in_flight=2, 4k rings)\n%-9s %6s %6s %12s %12s "
              "%12s %8s %12s %12s\n",
              "backend", "conns", "loops", "qps", "p50_us", "p99_us",
              "sys/req", "rss0_kb", "rss1_kb");
  PrintRule(97);
  double ladder_1 = 0, ladder_n = 0;
  for (const size_t connections : ladder_conns) {
    for (const net::NetBackend backend : backends) {
      for (const size_t loops : ladder_loops) {
        const LadderResult r = RunLadder(graph, queries, backend,
                                         connections, loops, warmup, measure);
        ladder.push_back(r);
        if (r.skipped) {
          std::printf("%-9s %6zu %6zu skipped: %s\n", r.backend.c_str(),
                      r.connections, r.loops, r.skip_reason.c_str());
          continue;
        }
        std::printf("%-9s %6zu %6zu %12.0f %12.1f %12.1f %8.3f %12ld "
                    "%12ld\n",
                    r.backend.c_str(), r.connections, r.loops, r.qps,
                    static_cast<double>(r.rt_p50) / 1000.0,
                    static_cast<double>(r.rt_p99) / 1000.0, r.sys_per_req,
                    r.rss_start_kb, r.rss_end_kb);
        if (connections == 256 && backend == net::NetBackend::kEpoll) {
          if (loops == ladder_loops.front()) ladder_1 = r.qps;
          if (loops == ladder_loops.back()) ladder_n = r.qps;
        }
      }
    }
  }
  PrintRule(97);

  // Tracing overhead pair: the largest grid cell, net_batch, with the
  // flight recorder off vs on at the default 1-in-64 sampling (the
  // always-on observability bar is < 3% QPS cost). The on cell also
  // serves the BOUNCER_BENCH_NET_STATS_OUT live-snapshot hook.
  const auto [trace_conns, trace_flight] = grid.back();
  const net::NetBackend trace_backend = backends.back();
  const CellResult trace_off =
      RunNet(graph, queries, /*batch_submit=*/true, trace_backend,
             loop_sweep.front(), trace_conns, trace_flight, warmup, measure,
             /*tracing=*/false);
  const CellResult trace_on =
      RunNet(graph, queries, /*batch_submit=*/true, trace_backend,
             loop_sweep.front(), trace_conns, trace_flight, warmup, measure,
             /*tracing=*/true);
  results.push_back(trace_off);
  results.push_back(trace_on);
  std::printf("\n%-10s %6zu %6zu %9zu %12.0f   (tracing off)\n",
              trace_off.variant.c_str(), trace_off.loops,
              trace_off.connections, trace_off.in_flight, trace_off.qps);
  std::printf("%-10s %6zu %6zu %9zu %12.0f   (tracing on, 1-in-64)\n",
              trace_on.variant.c_str(), trace_on.loops, trace_on.connections,
              trace_on.in_flight, trace_on.qps);
  if (trace_off.qps > 0) {
    std::printf("tracing overhead: %+.2f%%\n",
                100.0 * (trace_off.qps - trace_on.qps) / trace_off.qps);
  }

  const SurgeResult surge =
      RunSurge(graph, queries, capacity_qps, surge_duration);
  std::printf(
      "surge: offered %.0f qps (2x capacity %.0f), responses=%llu "
      "ok=%llu rejections=%llu dropped=%llu\n",
      surge.offered_qps, surge.capacity_qps,
      static_cast<unsigned long long>(surge.responses),
      static_cast<unsigned long long>(surge.ok),
      static_cast<unsigned long long>(surge.rejections),
      static_cast<unsigned long long>(surge.dropped));
  std::printf("surge RSS: %ld kB -> %ld kB (delta %+ld kB)\n",
              surge.rss_start_kb, surge.rss_end_kb,
              surge.rss_end_kb - surge.rss_start_kb);

  // Per-backend syscall cost at the largest grid cell (net_batch, first
  // loop count): the number the io_uring backend exists to shrink.
  std::vector<std::string> summarized;
  for (const CellResult& r : results) {
    if (r.variant == "net_batch" && r.loops == loop_sweep.front() &&
        r.connections == grid.back().first && r.tracing == 0 &&
        r.sys_per_req > 0 &&
        std::find(summarized.begin(), summarized.end(), r.backend) ==
            summarized.end()) {
      summarized.push_back(r.backend);
      std::printf("%s: %.3f syscalls/request at %zu conns\n",
                  r.backend.c_str(), r.sys_per_req, r.connections);
    }
  }

  const double headline = item_64 > 0 ? batch_64 / item_64 : 0;
  const double loop_scaling =
      (ladder_1 > 0 && ladder_loops.size() > 1) ? ladder_n / ladder_1 : 0;
  WriteJson(results, ladder, surge, headline, loop_scaling, uring_skip);
  std::printf("wrote BENCH_net_throughput.json\n");
  if (headline > 0) {
    std::printf(">= 64 conns: net_batch/net_item = %.2fx\n", headline);
  }
  if (loop_scaling > 0) {
    std::printf("256 conns: loops %zu -> %zu scaling = %.2fx\n",
                ladder_loops.front(), ladder_loops.back(), loop_scaling);
  }
  return 0;
}

}  // namespace
}  // namespace bouncer::bench

int main() { return bouncer::bench::Main(); }
