// Simulator-side throughput tracking, the evaluation-pipeline analogue
// of bench_admission_throughput: how many simulated events/sec the
// discrete-event engine sustains, and how the experiment grid scales
// across cores.
//
// Part (a) runs one simulation cell per configuration and compares the
// FIFO ring fast path against the generic heap-backed queue (same
// discipline, forced via SimulationConfig::force_heap_queue), the other
// disciplines, and the three stats modes. Part (b) runs the full
// (policy × load-factor × seed) study grid through sim::RunJobs serially
// and with BOUNCER_BENCH_JOBS workers and reports the wall-clock
// speedup, checking the parallel results are bit-identical to serial.
// Results are written to BENCH_sim_throughput.json.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"

using namespace bouncer;
using namespace bouncer::bench;

namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct CellRow {
  std::string label;
  double seconds = 0;
  uint64_t events = 0;
  double events_per_sec = 0;
  uint64_t rejected = 0;
};

CellRow RunCell(const std::string& label,
                const workload::WorkloadSpec& workload,
                const sim::SimulationConfig& config,
                const PolicyConfig& policy) {
  sim::Simulator simulator(workload, config, policy);
  const double t0 = Now();
  const sim::SimulationResult result = simulator.Run();
  const double t1 = Now();
  CellRow row;
  row.label = label;
  row.seconds = t1 - t0;
  row.events = result.events_processed;
  row.events_per_sec =
      row.seconds > 0 ? static_cast<double>(row.events) / row.seconds : 0;
  row.rejected = result.overall.rejected;
  return row;
}

struct ParallelRow {
  int jobs = 0;
  double seconds = 0;
  uint64_t events = 0;
  double events_per_sec = 0;
  double speedup = 1.0;
  bool identical = true;
};

void WriteJson(const std::vector<CellRow>& cells,
               const std::vector<ParallelRow>& parallel, size_t grid_cells) {
  std::FILE* f = std::fopen("BENCH_sim_throughput.json", "w");
  if (f == nullptr) return;
  std::fprintf(f, "{\n  \"bench\": \"sim_throughput\",\n");
  WriteHostJsonFields(f);
  std::fprintf(f, "  \"scale\": %d,\n", BenchScale());
  std::fprintf(f, "  \"single_cell\": [\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const CellRow& r = cells[i];
    std::fprintf(f,
                 "    {\"config\": \"%s\", \"seconds\": %.4f, "
                 "\"events\": %llu, \"events_per_sec\": %.0f}%s\n",
                 r.label.c_str(), r.seconds,
                 static_cast<unsigned long long>(r.events), r.events_per_sec,
                 i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"grid_cells\": %zu,\n  \"parallel\": [\n",
               grid_cells);
  for (size_t i = 0; i < parallel.size(); ++i) {
    const ParallelRow& r = parallel[i];
    std::fprintf(f,
                 "    {\"jobs\": %d, \"seconds\": %.3f, \"events\": %llu, "
                 "\"events_per_sec\": %.0f, \"speedup\": %.2f, "
                 "\"bit_identical\": %s}%s\n",
                 r.jobs, r.seconds,
                 static_cast<unsigned long long>(r.events), r.events_per_sec,
                 r.speedup, r.identical ? "true" : "false",
                 i + 1 < parallel.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

/// Field-exact comparison of two result sets (the determinism contract:
/// same seeds => same outcomes regardless of thread count).
bool Identical(const std::vector<sim::SimulationResult>& a,
               const std::vector<sim::SimulationResult>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].overall.received != b[i].overall.received ||
        a[i].overall.rejected != b[i].overall.rejected ||
        a[i].overall.completed != b[i].overall.completed ||
        a[i].overall.rt_p50_ms != b[i].overall.rt_p50_ms ||
        a[i].overall.rt_p99_ms != b[i].overall.rt_p99_ms ||
        a[i].utilization != b[i].utilization ||
        a[i].events_processed != b[i].events_processed) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  PrintPreamble("bench_sim_throughput",
                "simulated events/sec: FIFO ring vs heap queue, stats "
                "modes, disciplines; serial vs parallel grid");
  const auto workload = workload::PaperSimulationWorkload();
  const auto params = DefaultStudyParams();

  // (a) Single-cell engine throughput, Bouncer at 1.2x full load (a
  // representative overload point with a standing queue, where the
  // admitted-queue data structure actually matters).
  sim::SimulationConfig base = params.config;
  base.arrival_rate_qps = 1.2 * workload.FullLoadQps(base.parallelism);
  const PolicyConfig bouncer = MakeStudyPolicy(PolicyKind::kBouncer);

  struct CellSpec {
    const char* label;
    sim::QueueDiscipline discipline;
    bool force_heap;
    sim::StatsMode stats;
    std::vector<int> priorities;
  };
  const std::vector<CellSpec> specs = {
      {"fifo_ring/exact", sim::QueueDiscipline::kFifo, false,
       sim::StatsMode::kExactSamples, {}},
      {"fifo_heap/exact", sim::QueueDiscipline::kFifo, true,
       sim::StatsMode::kExactSamples, {}},
      {"fifo_ring/streaming", sim::QueueDiscipline::kFifo, false,
       sim::StatsMode::kStreamingSummary, {}},
      {"fifo_ring/none", sim::QueueDiscipline::kFifo, false,
       sim::StatsMode::kNone, {}},
      {"sjf_heap/exact", sim::QueueDiscipline::kShortestJobFirst, false,
       sim::StatsMode::kExactSamples, {}},
      {"priority_heap/exact", sim::QueueDiscipline::kPriority, false,
       sim::StatsMode::kExactSamples, {3, 2, 1, 0}},
  };

  std::printf("(a) single-cell events/sec, Bouncer @ 1.2x, %llu queries\n",
              static_cast<unsigned long long>(base.total_queries));
  std::printf("%-24s %10s %12s %14s %10s\n", "config", "seconds", "events",
              "events/sec", "rejected");
  PrintRule(74);
  std::vector<CellRow> cells;
  for (const CellSpec& spec : specs) {
    sim::SimulationConfig config = base;
    config.discipline = spec.discipline;
    config.force_heap_queue = spec.force_heap;
    config.stats_mode = spec.stats;
    config.type_priorities = spec.priorities;
    cells.push_back(RunCell(spec.label, workload, config, bouncer));
    const CellRow& r = cells.back();
    std::printf("%-24s %10.3f %12llu %14.0f %10llu\n", r.label.c_str(),
                r.seconds, static_cast<unsigned long long>(r.events),
                r.events_per_sec, static_cast<unsigned long long>(r.rejected));
  }
  if (cells[0].events == cells[1].events &&
      cells[0].rejected == cells[1].rejected) {
    std::printf("fifo ring vs heap: identical outcomes, ring %.2fx "
                "events/sec\n",
                cells[0].events_per_sec / cells[1].events_per_sec);
  } else {
    std::printf("fifo ring vs heap: OUTCOME MISMATCH (bug!)\n");
  }

  // (b) The study grid (every policy x load factor x seed) through the
  // parallel runner at increasing thread counts. Serial first, as the
  // speedup baseline and the determinism oracle.
  std::vector<sim::SimJob> jobs;
  const double full_load = workload.FullLoadQps(params.config.parallelism);
  for (const PolicyKind kind : StudyPolicyKinds()) {
    for (const double factor : params.load_factors) {
      for (int r = 0; r < params.runs; ++r) {
        sim::SimJob job;
        job.workload = &workload;
        job.config = params.config;
        job.config.arrival_rate_qps = factor * full_load;
        job.config.seed = params.config.seed + static_cast<uint64_t>(r) * 7919;
        job.policy = MakeStudyPolicy(kind);
        jobs.push_back(std::move(job));
      }
    }
  }

  std::printf("\n(b) %zu-cell study grid wall clock vs BOUNCER_BENCH_JOBS\n",
              jobs.size());
  std::printf("%-8s %10s %14s %10s %14s\n", "jobs", "seconds", "events/sec",
              "speedup", "bit-identical");
  PrintRule(60);
  std::vector<int> thread_counts = {1};
  const int max_jobs = sim::DefaultJobs();
  for (int j = 2; j < max_jobs; j *= 2) thread_counts.push_back(j);
  if (max_jobs > 1) thread_counts.push_back(max_jobs);

  std::vector<sim::SimulationResult> serial;
  std::vector<ParallelRow> parallel_rows;
  for (const int jobs_n : thread_counts) {
    const double t0 = Now();
    const auto results = sim::RunJobs(jobs, jobs_n);
    const double t1 = Now();
    uint64_t events = 0;
    for (const auto& r : results) events += r.events_processed;
    ParallelRow row;
    row.jobs = jobs_n;
    row.seconds = t1 - t0;
    row.events = events;
    row.events_per_sec =
        row.seconds > 0 ? static_cast<double>(events) / row.seconds : 0;
    if (jobs_n == 1) {
      serial = results;
    } else {
      row.speedup = parallel_rows[0].seconds / row.seconds;
      row.identical = Identical(serial, results);
    }
    parallel_rows.push_back(row);
    std::printf("%-8d %10.2f %14.0f %9.2fx %14s\n", row.jobs, row.seconds,
                row.events_per_sec, row.speedup,
                row.jobs == 1 ? "(baseline)"
                              : (row.identical ? "yes" : "NO (bug!)"));
  }

  WriteJson(cells, parallel_rows, jobs.size());
  std::printf("wrote BENCH_sim_throughput.json\n");
  return 0;
}
