// Reproduces paper Fig. 3: the query-starvation example. Two query types
// share the same latency SLO (p50 = 18 ms, p90 = 50 ms); SLOW's
// processing time sits close to the SLO, FAST's far below. Under heavy
// load with basic Bouncer, FAST queries fill the queue to the point where
// SLOW's response-time estimates exceed the SLO while FAST's stay under:
// nearly all SLOW queries are rejected (the paper observes ~99%) while
// FAST rejections stay low (<10%).

#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/bouncer_policy.h"

using namespace bouncer;
using namespace bouncer::bench;

int main() {
  PrintPreamble("fig03_starvation",
                "per-interval response-time estimates and rejection %% for "
                "FAST and SLOW under basic Bouncer at high load");
  const Slo slo{18 * kMillisecond, 50 * kMillisecond, 0};
  // FAST and SLOW are the plotted types (paper Fig. 3 plots two types
  // picked out of production traffic); MEDIUM is the rest of the
  // production mix, whose queued work keeps the wait estimate pinned
  // right below FAST's headroom and above SLOW's.
  workload::WorkloadSpec mix(
      {workload::QueryTypeSpec::FromMillis("FAST", 0.40, 2.53, 2.22, slo),
       workload::QueryTypeSpec::FromMillis("MEDIUM", 0.40, 12.13, 7.40, slo),
       workload::QueryTypeSpec::FromMillis("SLOW", 0.20, 20.05, 12.51, slo)});

  sim::SimulationConfig config;
  config.parallelism = 100;
  config.seed = 33;
  const double full_load = mix.FullLoadQps(config.parallelism);
  config.arrival_rate_qps = 1.6 * full_load;
  config.total_queries = BenchScale() == 0
                             ? 150'000
                             : static_cast<uint64_t>(
                                   config.arrival_rate_qps * 10.0);
  config.warmup_queries = config.total_queries / 5;

  PolicyConfig policy;
  policy.kind = PolicyKind::kBouncer;

  sim::Simulator simulator(mix, config, policy);
  auto* bouncer_policy = dynamic_cast<BouncerPolicy*>(simulator.policy());

  std::printf("%6s %10s %10s %10s %10s %8s %8s\n", "t(s)", "FAST_e50",
              "FAST_e90", "SLOW_e50", "SLOW_e90", "FAST_rej", "SLOW_rej");
  PrintRule(70);
  // FAST is workload index 0 (type id 1); SLOW is index 2 (type id 3).
  const size_t kPlottedIndex[2] = {0, 2};
  uint64_t prev_counts[2][2] = {{0, 0}, {0, 0}};  // [plotted][recv/rej].
  simulator.SetTickCallback(kSecond, [&](Nanos now) {
    const auto fast = bouncer_policy->EstimateFor(1, now);
    const auto slow = bouncer_policy->EstimateFor(3, now);
    double rejection_pct[2] = {0.0, 0.0};
    for (size_t t = 0; t < 2; ++t) {
      const auto [received, rejected] =
          simulator.LiveTypeCounts(kPlottedIndex[t]);
      const uint64_t interval_received = received - prev_counts[t][0];
      const uint64_t interval_rejected = rejected - prev_counts[t][1];
      prev_counts[t][0] = received;
      prev_counts[t][1] = rejected;
      if (interval_received > 0) {
        rejection_pct[t] = 100.0 * static_cast<double>(interval_rejected) /
                           static_cast<double>(interval_received);
      }
    }
    std::printf("%6.0f %9.2fms %9.2fms %9.2fms %9.2fms %7.1f%% %7.1f%%\n",
                ToSeconds(now), ToMillis(fast.ert_p50),
                ToMillis(fast.ert_p90), ToMillis(slow.ert_p50),
                ToMillis(slow.ert_p90), rejection_pct[0], rejection_pct[1]);
  });
  const auto result = simulator.Run();
  PrintRule(70);
  std::printf("overall: FAST rejected %.1f%%, SLOW rejected %.1f%% "
              "(paper: <10%% vs ~99%%)\n",
              result.per_type[0].rejection_pct,
              result.per_type[2].rejection_pct);
  std::printf("SLO (dotted lines in the paper): p50=18ms p90=50ms\n");
  return 0;
}
