// Reproduces paper Fig. 6: median response time (rt_p50) of the *slow*
// query type versus offered load, for every admission-control policy in
// the simulation study. Expected shape: Bouncer (and variants) hold
// rt_p50 at/under the 18 ms SLO; MaxQL plateaus around ~40 ms; MaxQWT
// plateaus around ~22 ms; AcceptFraction grows without bound.

#include <cstdio>

#include "bench/bench_common.h"

using namespace bouncer;
using namespace bouncer::bench;

int main() {
  PrintPreamble("fig06_slow_rt_p50",
                "rt_p50 of 'slow' queries vs load factor, per policy "
                "(SLO_p50 = 18 ms)");
  const auto workload = workload::PaperSimulationWorkload();
  const auto params = DefaultStudyParams();

  std::printf("%-28s", "policy \\ load");
  for (double f : params.load_factors) std::printf("%8.2fx", f);
  std::printf("\n");
  PrintRule(28 + 9 * static_cast<int>(params.load_factors.size()));

  const auto kinds = StudyPolicyKinds();
  const auto sweeps =
      SweepStudyPolicies(workload, params, MakeStudyPolicies(kinds));
  for (size_t k = 0; k < kinds.size(); ++k) {
    std::printf("%-28s", std::string(PolicyKindName(kinds[k])).c_str());
    for (const auto& point : sweeps[k]) {
      std::printf("%9.2f", point.result.per_type[3].rt_p50_ms);
    }
    std::printf("\n");
  }
  std::printf("(values in ms; SLO_p50 = 18 ms shown as the paper's dotted "
              "line)\n");
  return 0;
}
