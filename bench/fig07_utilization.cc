// Reproduces paper Fig. 7: system utilization versus offered load, per
// policy. Expected shape: every policy approaches ~100% utilization at
// and beyond full load, except AcceptFraction which is pinned near its
// 95% utilization threshold.

#include <cstdio>

#include "bench/bench_common.h"

using namespace bouncer;
using namespace bouncer::bench;

int main() {
  PrintPreamble("fig07_utilization",
                "system utilization vs load factor, per policy "
                "(AcceptFraction threshold = 95%)");
  const auto workload = workload::PaperSimulationWorkload();
  const auto params = DefaultStudyParams();

  std::printf("%-28s", "policy \\ load");
  for (double f : params.load_factors) std::printf("%8.2fx", f);
  std::printf("\n");
  PrintRule(28 + 9 * static_cast<int>(params.load_factors.size()));

  const auto kinds = StudyPolicyKinds();
  const auto sweeps =
      SweepStudyPolicies(workload, params, MakeStudyPolicies(kinds));
  for (size_t k = 0; k < kinds.size(); ++k) {
    std::printf("%-28s", std::string(PolicyKindName(kinds[k])).c_str());
    for (const auto& point : sweeps[k]) {
      std::printf("%9.3f", point.result.utilization);
    }
    std::printf("\n");
  }
  return 0;
}
