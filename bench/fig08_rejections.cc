// Reproduces paper Fig. 8: percentage of overall rejections versus
// offered load, per policy. Expected shape: rejections grow with load for
// every policy; Bouncer rejects the least (it targets only the costly
// types); AcceptFraction rejects the most (bounded by its 95% threshold).

#include <cstdio>

#include "bench/bench_common.h"

using namespace bouncer;
using namespace bouncer::bench;

int main() {
  PrintPreamble("fig08_rejections",
                "overall rejection %% vs load factor, per policy");
  const auto workload = workload::PaperSimulationWorkload();
  const auto params = DefaultStudyParams();

  std::printf("%-28s", "policy \\ load");
  for (double f : params.load_factors) std::printf("%8.2fx", f);
  std::printf("\n");
  PrintRule(28 + 9 * static_cast<int>(params.load_factors.size()));

  const auto kinds = StudyPolicyKinds();
  const auto sweeps =
      SweepStudyPolicies(workload, params, MakeStudyPolicies(kinds));
  for (size_t k = 0; k < kinds.size(); ++k) {
    std::printf("%-28s", std::string(PolicyKindName(kinds[k])).c_str());
    for (const auto& point : sweeps[k]) {
      std::printf("%9.2f", point.result.overall.rejection_pct);
    }
    std::printf("\n");
  }
  std::printf("(values in %% of received queries)\n");
  return 0;
}
