// Reproduces paper Fig. 9: median response time (rt_p50) of slow queries
// under basic Bouncer vs. its two starvation-avoiding variants. Expected
// shape: the strategies exceed SLO_p50 = 18 ms at high load (they admit
// queries plain Bouncer would reject); acceptance-allowance activates at
// higher traffic rates and stays below helping-the-underserved.

#include <cstdio>

#include "bench/bench_common.h"

using namespace bouncer;
using namespace bouncer::bench;

int main() {
  PrintPreamble("fig09_strategy_rt",
                "rt_p50 of 'slow' queries vs load: basic Bouncer vs "
                "starvation-avoidance strategies (A=0.05, alpha=1.0)");
  const auto workload = workload::PaperSimulationWorkload();
  const auto params = DefaultStudyParams();

  const std::vector<PolicyKind> kinds = {PolicyKind::kBouncer,
                                         PolicyKind::kBouncerWithAllowance,
                                         PolicyKind::kBouncerWithUnderserved};
  std::printf("%-28s", "policy \\ load");
  for (double f : params.load_factors) std::printf("%8.2fx", f);
  std::printf("\n");
  PrintRule(28 + 9 * static_cast<int>(params.load_factors.size()));
  const auto sweeps =
      SweepStudyPolicies(workload, params, MakeStudyPolicies(kinds));
  for (size_t k = 0; k < kinds.size(); ++k) {
    std::printf("%-28s", std::string(PolicyKindName(kinds[k])).c_str());
    for (const auto& point : sweeps[k]) {
      std::printf("%9.2f", point.result.per_type[3].rt_p50_ms);
    }
    std::printf("\n");
  }
  std::printf("(values in ms; SLO_p50 = 18 ms)\n");
  return 0;
}
