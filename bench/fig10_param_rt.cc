// Reproduces paper Fig. 10: median response time of slow queries at 1.5x
// full load as a function of the strategy parameters A (acceptance-
// allowance) and alpha (helping-the-underserved). Expected shape: both
// series sit above SLO_p50 = 18 ms (around 20-22 ms) and grow only
// slowly (<10%) across the parameter ranges.

#include <cstdio>

#include "bench/bench_common.h"

using namespace bouncer;
using namespace bouncer::bench;

int main() {
  PrintPreamble("fig10_param_rt",
                "rt_p50 of 'slow' queries at 1.5x load vs strategy "
                "parameters A and alpha");
  const auto workload = workload::PaperSimulationWorkload();
  const auto params = DefaultStudyParams();
  auto config = params.config;
  config.arrival_rate_qps =
      1.5 * workload.FullLoadQps(params.config.parallelism);

  std::printf("%-34s%10s%14s\n", "series", "param", "rt_p50 (ms)");
  PrintRule(58);
  for (double a : {0.01, 0.05, 0.1, 0.2, 0.3}) {
    PolicyConfig policy = MakeStudyPolicy(PolicyKind::kBouncerWithAllowance);
    policy.allowance.allowance = a;
    const auto result = sim::RunAveraged(workload, config, policy,
                                         params.runs);
    std::printf("%-34s%10.2f%14.2f\n", "acceptance-allowance (A)", a,
                result.per_type[3].rt_p50_ms);
  }
  for (double alpha : {0.1, 0.25, 0.5, 0.75, 1.0}) {
    PolicyConfig policy = MakeStudyPolicy(PolicyKind::kBouncerWithUnderserved);
    policy.underserved.alpha = alpha;
    const auto result = sim::RunAveraged(workload, config, policy,
                                         params.runs);
    std::printf("%-34s%10.2f%14.2f\n", "helping-the-underserved (alpha)",
                alpha, result.per_type[3].rt_p50_ms);
  }
  std::printf("(SLO_p50 = 18 ms)\n");
  return 0;
}
