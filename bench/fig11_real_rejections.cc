// Reproduces paper Fig. 11: percentage of overall rejections on the real
// system (the in-process Minigraph cluster standing in for LIquid) versus
// offered QPS, per broker policy. Expected shape: rejections rise with
// load for every policy; the Bouncer variants reject noticeably less
// (paper: 15-30% less) because they target only the costly query types;
// AcceptFraction rejects the most (80% utilization cap).

#include <cstdio>

#include "bench/real_common.h"

using namespace bouncer;
using namespace bouncer::bench;

int main() {
  PrintPreamble("fig11_real_rejections",
                "overall rejection %% vs offered QPS on the Minigraph "
                "cluster (broker policy varies; shards: AcceptFraction)");
  const auto params = DefaultRealParams();
  (void)SharedGraph(params);  // Build the graph before timing anything.

  std::printf("%-30s", "policy \\ rate");
  for (size_t i = 0; i < params.rates_qps.size(); ++i) {
    std::printf("  %5.0fqps", params.rates_qps[i]);
  }
  std::printf("\n%-30s", "(paper-equivalent)");
  for (int kqps : params.paper_rates_kqps) std::printf("  %5dK  ", kqps);
  std::printf("\n");
  PrintRule(30 + 9 * static_cast<int>(params.rates_qps.size()));

  for (const RealPolicy& policy : RealBrokerPolicies()) {
    std::printf("%-30s", policy.label.c_str());
    std::fflush(stdout);
    for (double rate : params.rates_qps) {
      const RealCell cell = RunRealCell(params, policy.config, rate);
      std::printf("%8.2f%%", cell.overall.rejection_pct);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
