// Reproduces paper Fig. 12: response times of serviced QT11 queries (the
// costliest type, with the tightest effective SLO and the largest share
// of the mix) on the real system: (a) rt_p50 and (b) rt_p90 versus
// offered QPS per broker policy. Expected shape: Bouncer variants and
// MaxQWT keep rt_p50 near SLO_p50 = 18 ms and rt_p90 under SLO_p90 =
// 50 ms; MaxQL and AcceptFraction blow past both at high load (paper:
// >4x / >2x).

#include <cstdio>
#include <vector>

#include "bench/real_common.h"

using namespace bouncer;
using namespace bouncer::bench;

int main() {
  PrintPreamble("fig12_real_qt11_rt",
                "QT11 rt_p50 / rt_p90 vs offered QPS on the Minigraph "
                "cluster (SLO: 18 ms / 50 ms)");
  const auto params = DefaultRealParams();
  (void)SharedGraph(params);

  const auto policies = RealBrokerPolicies();
  std::vector<std::vector<RealCell>> cells(policies.size());
  for (size_t p = 0; p < policies.size(); ++p) {
    for (double rate : params.rates_qps) {
      cells[p].push_back(RunRealCell(params, policies[p].config, rate));
    }
    std::fprintf(stderr, "measured %s\n", policies[p].label.c_str());
  }

  for (int pane = 0; pane < 2; ++pane) {
    std::printf("\n(%c) QT11 %s (ms), SLO = %d ms\n", 'a' + pane,
                pane == 0 ? "rt_p50" : "rt_p90", pane == 0 ? 18 : 50);
    std::printf("%-30s", "policy \\ rate");
    for (double rate : params.rates_qps) std::printf("  %5.0fqps", rate);
    std::printf("\n");
    PrintRule(30 + 9 * static_cast<int>(params.rates_qps.size()));
    for (size_t p = 0; p < policies.size(); ++p) {
      std::printf("%-30s", policies[p].label.c_str());
      for (const RealCell& cell : cells[p]) {
        std::printf("%9.2f",
                    pane == 0 ? cell.qt11.rt_p50_ms : cell.qt11.rt_p90_ms);
      }
      std::printf("\n");
    }
  }
  return 0;
}
