// Reproduces paper Fig. 13: for serviced QT11 queries, median processing
// time (pt_p50) versus median response time (rt_p50) under MaxQWT and
// under Bouncer (with starvation avoidance), as load grows. Expected
// shape: pt_p50 itself rises with load (the shard tier queues too — the
// effect the paper highlights as the reason wait-time limits alone are
// not enough); under MaxQWT rt_p50 departs from pt_p50 and crosses the
// SLO, while under Bouncer rt_p50 tracks pt_p50 closely.

#include <cstdio>

#include "bench/real_common.h"

using namespace bouncer;
using namespace bouncer::bench;

int main() {
  PrintPreamble("fig13_pt_vs_rt",
                "QT11 pt_p50 vs rt_p50 under MaxQWT and Bouncer+Allowance "
                "on the Minigraph cluster");
  const auto params = DefaultRealParams();
  (void)SharedGraph(params);

  const auto all = RealBrokerPolicies();
  // MaxQWT and Bouncer+Allowance, as in the paper's figure.
  const RealPolicy* selected[2] = {&all[3], &all[0]};

  std::printf("%-30s", "series \\ rate");
  for (double rate : params.rates_qps) std::printf("  %5.0fqps", rate);
  std::printf("\n");
  PrintRule(30 + 9 * static_cast<int>(params.rates_qps.size()));
  for (const RealPolicy* policy : selected) {
    std::vector<RealCell> cells;
    for (double rate : params.rates_qps) {
      cells.push_back(RunRealCell(params, policy->config, rate));
    }
    std::printf("%-30s", (policy->label + " pt_p50").c_str());
    for (const RealCell& cell : cells) {
      std::printf("%9.2f", cell.qt11.pt_p50_ms);
    }
    std::printf("\n%-30s", (policy->label + " rt_p50").c_str());
    for (const RealCell& cell : cells) {
      std::printf("%9.2f", cell.qt11.rt_p50_ms);
    }
    std::printf("\n");
  }
  std::printf("(ms; SLO_p50 = 18 ms. Paper: QT11 pt_p50 rises toward "
              "~15 ms at peak; MaxQWT lets rt_p50 depart from pt_p50, "
              "Bouncer keeps them close)\n");
  return 0;
}
