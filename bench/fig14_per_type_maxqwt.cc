// Reproduces paper Fig. 14: Bouncer (basic formulation) vs. MaxQWT with
// wait-time limits assigned *per query type*. Expected shape: with
// properly chosen per-type limits, MaxQWT matches Bouncer on both the
// slow-type rt_p50 (a) and overall rejections (b) — the paper's point
// being that finding those limits is laborious tuning while Bouncer takes
// the SLOs directly.

#include <cstdio>

#include "bench/bench_common.h"

using namespace bouncer;
using namespace bouncer::bench;

int main() {
  PrintPreamble("fig14_per_type_maxqwt",
                "Bouncer vs per-type-tuned MaxQWT: slow rt_p50 and "
                "overall rejection %%");
  const auto workload = workload::PaperSimulationWorkload();
  const auto params = DefaultStudyParams();

  // Hand-tuned per-type wait limits (the tuning the paper calls
  // time-consuming): limit_t ~ SLO_p50 - pt_p50(t), clamped.
  PolicyConfig tuned = MakeStudyPolicy(PolicyKind::kMaxQueueWait);
  tuned.max_queue_wait.per_type_limits = {
      0,                            // default -> global limit.
      FromMillis(17.6),             // fast   (pt_p50 0.38 ms).
      FromMillis(15.8),             // medium fast (2.22 ms).
      FromMillis(10.6),             // medium slow (7.40 ms).
      FromMillis(5.5),              // slow   (12.51 ms).
  };

  struct Series {
    const char* label;
    PolicyConfig config;
  };
  const Series series[] = {
      {"Bouncer", MakeStudyPolicy(PolicyKind::kBouncer)},
      {"MaxQWT(per-type limits)", tuned},
      {"MaxQWT(single 15ms limit)",
       MakeStudyPolicy(PolicyKind::kMaxQueueWait)},
  };

  std::printf("(a) rt_p50 of 'slow' queries (ms), SLO_p50 = 18 ms\n");
  std::printf("%-28s", "policy \\ load");
  for (double f : params.load_factors) std::printf("%8.2fx", f);
  std::printf("\n");
  PrintRule(28 + 9 * static_cast<int>(params.load_factors.size()));
  const auto all_points = SweepStudyPolicies(
      workload, params,
      {series[0].config, series[1].config, series[2].config});
  for (size_t i = 0; i < all_points.size(); ++i) {
    std::printf("%-28s", series[i].label);
    for (const auto& point : all_points[i]) {
      std::printf("%9.2f", point.result.per_type[3].rt_p50_ms);
    }
    std::printf("\n");
  }

  std::printf("\n(b) overall rejection %%\n");
  std::printf("%-28s", "policy \\ load");
  for (double f : params.load_factors) std::printf("%8.2fx", f);
  std::printf("\n");
  PrintRule(28 + 9 * static_cast<int>(params.load_factors.size()));
  for (size_t i = 0; i < all_points.size(); ++i) {
    std::printf("%-28s", series[i].label);
    for (const auto& point : all_points[i]) {
      std::printf("%9.2f", point.result.overall.rejection_pct);
    }
    std::printf("\n");
  }
  return 0;
}
