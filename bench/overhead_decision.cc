// Reproduces the paper's §5.4 overhead measurement: the cost Bouncer adds
// on the critical path of every query (paper: mean = 18 us, p50 = 15 us,
// p99 = 87 us on production broker hosts, for millisecond-scale queries).
// These google-benchmark timings measure the same code path — admission
// decision plus the metric hooks — on this host. Results go to stdout
// and, like the other benches, to a BENCH_*.json artifact
// (BENCH_overhead_decision.json, google-benchmark's JSON format).

#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <vector>

#include "src/core/policy_factory.h"
#include "src/util/rng.h"

namespace bouncer {
namespace {

constexpr size_t kNumTypes = 11;  // The §5.4 mix has 11 query types.

struct BenchSetup {
  BenchSetup()
      : registry(Slo{18 * kMillisecond, 50 * kMillisecond, 0}) {
    for (size_t i = 0; i < kNumTypes; ++i) {
      (void)registry.Register("QT" + std::to_string(i + 1),
                              Slo{18 * kMillisecond, 50 * kMillisecond, 0});
    }
    queue = std::make_unique<QueueState>(registry.size());
    context = PolicyContext{&registry, queue.get(), 100};
  }

  /// Trains a policy with lognormal-ish processing times and a populated
  /// queue so Decide() exercises its full path.
  void Train(AdmissionPolicy* policy) {
    Rng rng(1);
    for (int i = 0; i < 20000; ++i) {
      const auto type = static_cast<QueryTypeId>(1 + rng.NextBounded(kNumTypes));
      policy->OnCompleted(
          type, static_cast<Nanos>(rng.NextLogNormal(15.0, 1.0)), 0);
    }
    if (auto* bouncer_policy = dynamic_cast<BouncerPolicy*>(policy)) {
      bouncer_policy->ForceHistogramSwap();
    }
    for (int i = 0; i < 50; ++i) {
      queue->OnEnqueued(static_cast<QueryTypeId>(1 + (i % kNumTypes)));
    }
  }

  QueryTypeRegistry registry;
  std::unique_ptr<QueueState> queue;
  PolicyContext context;
};

void BM_BouncerDecide(benchmark::State& state) {
  BenchSetup setup;
  PolicyConfig config;
  config.kind = PolicyKind::kBouncer;
  auto policy = CreatePolicy(config, setup.context);
  setup.Train(policy->get());
  Rng rng(2);
  Nanos now = kSecond;
  for (auto _ : state) {
    const auto type = static_cast<QueryTypeId>(1 + rng.NextBounded(kNumTypes));
    now += kMicrosecond;
    benchmark::DoNotOptimize((*policy)->Decide(type, now));
  }
}
BENCHMARK(BM_BouncerDecide);

void BM_BouncerDecidePlusHooks(benchmark::State& state) {
  // The full per-query policy cost: decision + enqueue/dequeue/complete
  // hooks (the path a serviced query takes).
  BenchSetup setup;
  PolicyConfig config;
  config.kind = PolicyKind::kBouncer;
  auto policy = CreatePolicy(config, setup.context);
  setup.Train(policy->get());
  Rng rng(3);
  Nanos now = kSecond;
  for (auto _ : state) {
    const auto type = static_cast<QueryTypeId>(1 + rng.NextBounded(kNumTypes));
    now += kMicrosecond;
    const Decision decision = (*policy)->Decide(type, now);
    if (decision == Decision::kAccept) {
      (*policy)->OnEnqueued(type, now);
      (*policy)->OnDequeued(type, 100 * kMicrosecond, now);
      (*policy)->OnCompleted(type, 5 * kMillisecond, now);
    } else {
      (*policy)->OnRejected(type, now);
    }
    benchmark::DoNotOptimize(decision);
  }
}
BENCHMARK(BM_BouncerDecidePlusHooks);

void BM_BouncerWithAllowanceDecide(benchmark::State& state) {
  BenchSetup setup;
  PolicyConfig config;
  config.kind = PolicyKind::kBouncerWithAllowance;
  config.allowance.allowance = 0.05;
  auto policy = CreatePolicy(config, setup.context);
  setup.Train(policy->get());
  Rng rng(4);
  Nanos now = kSecond;
  for (auto _ : state) {
    const auto type = static_cast<QueryTypeId>(1 + rng.NextBounded(kNumTypes));
    now += kMicrosecond;
    benchmark::DoNotOptimize((*policy)->Decide(type, now));
  }
}
BENCHMARK(BM_BouncerWithAllowanceDecide);

void BM_BouncerWithUnderservedDecide(benchmark::State& state) {
  BenchSetup setup;
  PolicyConfig config;
  config.kind = PolicyKind::kBouncerWithUnderserved;
  auto policy = CreatePolicy(config, setup.context);
  setup.Train(policy->get());
  Rng rng(5);
  Nanos now = kSecond;
  for (auto _ : state) {
    const auto type = static_cast<QueryTypeId>(1 + rng.NextBounded(kNumTypes));
    now += kMicrosecond;
    benchmark::DoNotOptimize((*policy)->Decide(type, now));
  }
}
BENCHMARK(BM_BouncerWithUnderservedDecide);

void BM_MaxQwtDecide(benchmark::State& state) {
  BenchSetup setup;
  PolicyConfig config;
  config.kind = PolicyKind::kMaxQueueWait;
  auto policy = CreatePolicy(config, setup.context);
  setup.Train(policy->get());
  Rng rng(6);
  Nanos now = kSecond;
  for (auto _ : state) {
    const auto type = static_cast<QueryTypeId>(1 + rng.NextBounded(kNumTypes));
    now += kMicrosecond;
    benchmark::DoNotOptimize((*policy)->Decide(type, now));
  }
}
BENCHMARK(BM_MaxQwtDecide);

void BM_HistogramRecord(benchmark::State& state) {
  stats::Histogram histogram;
  Rng rng(7);
  for (auto _ : state) {
    histogram.Record(static_cast<Nanos>(rng.NextBounded(50 * kMillisecond)));
  }
}
BENCHMARK(BM_HistogramRecord);

void BM_DualHistogramReadSummary(benchmark::State& state) {
  stats::DualHistogram histogram;
  for (int i = 0; i < 1000; ++i) histogram.Record(i * kMicrosecond);
  histogram.ForceSwap();
  for (auto _ : state) {
    benchmark::DoNotOptimize(histogram.ReadSummary());
  }
}
BENCHMARK(BM_DualHistogramReadSummary);

}  // namespace
}  // namespace bouncer

int main(int argc, char** argv) {
  // Console output as before, plus the BENCH_*.json artifact every other
  // bench in this repo emits (CI uploads BENCH_*.json) — by defaulting
  // the --benchmark_out flags; explicit flags still win.
  std::vector<char*> args(argv, argv + argc);
  char out_flag[] = "--benchmark_out=BENCH_overhead_decision.json";
  char format_flag[] = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
  }
  if (!has_out) {
    args.push_back(out_flag);
    args.push_back(format_flag);
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!has_out) std::printf("wrote BENCH_overhead_decision.json\n");
  return 0;
}
