#include "bench/real_common.h"

#include <memory>

#include "src/workload/load_generator.h"

namespace bouncer::bench {

using graph::Cluster;
using graph::GraphOp;
using graph::GraphQuery;
using graph::GraphStore;

RealStudyParams DefaultRealParams() {
  RealStudyParams params;
  // Paper rates 36K..180K QPS, scaled down ~120x for a single-core host:
  // the measured capacity of the default cluster is ~950 QPS closed-loop
  // (bench_cluster_throughput, pooled/async scatter path), so this
  // ladder spans ~0.3x to ~1.6x of capacity just as the paper's spans
  // light load to past saturation ("shards report high CPU at >= 108K").
  params.paper_rates_kqps = {36, 72, 108, 144, 180};
  params.rates_qps = {300, 600, 900, 1200, 1500};
  params.graph.edges_per_vertex = 8;
  params.graph.seed = 42;
  // Warm-up must cover a few histogram swap intervals (2 s) plus the
  // drain of any backlog accumulated before the policies engage.
  switch (BenchScale()) {
    case 0:
      params.graph.num_vertices = 50'000;
      params.warmup = 5 * kSecond;
      params.measure = 3 * kSecond;
      params.rates_qps = {300, 900, 1500};
      params.paper_rates_kqps = {36, 108, 180};
      break;
    case 1:
      params.graph.num_vertices = 50'000;
      params.warmup = 6 * kSecond;
      params.measure = 5 * kSecond;
      break;
    default:
      params.graph.num_vertices = 100'000;
      params.warmup = 15 * kSecond;
      params.measure = 60 * kSecond;
      break;
  }

  // Topology sized for this single-core host: shard workers do the
  // CPU-bound work (2 threads timesharing the core); the broker's small
  // worker pool is the explicit concurrency bottleneck so overload shows
  // up in the broker FIFO queue — where the policy under test sits —
  // rather than disappearing into the OS run queue (on the paper's
  // testbed the brokers likewise produced the vast majority of
  // rejections).
  Cluster::Options& cluster = params.cluster;
  cluster.num_brokers = 1;
  cluster.broker_workers = 4;
  cluster.num_shards = 2;
  cluster.shard_workers = 1;
  cluster.work_per_edge = 24;
  // Shards always run AcceptFraction (paper §5.4), guarding CPU; the
  // loose threshold keeps shard shedding a backstop, not the first line.
  cluster.shard_policy.kind = PolicyKind::kAcceptFraction;
  cluster.shard_policy.accept_fraction.max_utilization = 0.98;
  cluster.shard_policy.accept_fraction.window_duration = kSecond;
  cluster.shard_policy.accept_fraction.window_step = 50 * kMillisecond;
  cluster.shard_policy.accept_fraction.update_interval = 50 * kMillisecond;
  cluster.shard_policy.queue_guard_limit = 4000;
  return params;
}

std::vector<RealPolicy> RealBrokerPolicies() {
  std::vector<RealPolicy> policies;
  // The paper caps every broker queue at L_limit = 800 with ~15 kQPS of
  // per-broker capacity (~53 ms of queue at most). Our broker serves
  // ~900 QPS on the pooled/async scatter path, so the equivalent cap —
  // same maximum queueing delay — is 800 x (900 / 15000) = 48.
  constexpr uint64_t kScaledQueueLimit = 48;
  const auto with_guard = [](PolicyConfig config) {
    config.queue_guard_limit = kScaledQueueLimit;
    return config;
  };

  // Same histogram cadence as the simulation study: 2 s windows with a
  // 30-sample floor keep the per-type p90 estimates stable.
  BouncerPolicy::Options bouncer_options;
  bouncer_options.histogram_swap_interval = 2 * kSecond;
  bouncer_options.min_samples_to_publish = 30;

  PolicyConfig allowance;
  allowance.kind = PolicyKind::kBouncerWithAllowance;
  allowance.bouncer = bouncer_options;
  allowance.allowance.allowance = 0.05;
  policies.push_back({"Bouncer+Allowance(A=0.05)", with_guard(allowance)});

  PolicyConfig underserved;
  underserved.kind = PolicyKind::kBouncerWithUnderserved;
  underserved.bouncer = bouncer_options;
  underserved.underserved.alpha = 1.0;
  policies.push_back(
      {"Bouncer+Underserved(a=1.0)", with_guard(underserved)});

  PolicyConfig max_ql;
  max_ql.kind = PolicyKind::kMaxQueueLength;
  max_ql.max_queue_length.length_limit = kScaledQueueLimit;
  policies.push_back({"MaxQL", with_guard(max_ql)});

  PolicyConfig max_qwt;
  max_qwt.kind = PolicyKind::kMaxQueueWait;
  max_qwt.max_queue_wait.wait_time_limit = 12 * kMillisecond;  // §5.4.
  policies.push_back({"MaxQWT(12ms)", with_guard(max_qwt)});

  PolicyConfig accept_fraction;
  accept_fraction.kind = PolicyKind::kAcceptFraction;
  accept_fraction.accept_fraction.max_utilization = 0.80;  // §5.4.
  accept_fraction.accept_fraction.window_duration = 2 * kSecond;
  accept_fraction.accept_fraction.window_step = 100 * kMillisecond;
  accept_fraction.accept_fraction.update_interval = 100 * kMillisecond;
  policies.push_back({"AcceptFraction(80%)", with_guard(accept_fraction)});
  return policies;
}

const GraphStore& SharedGraph(const RealStudyParams& params) {
  static const GraphStore* const kGraph =
      new GraphStore(graph::GeneratePreferentialAttachment(params.graph));
  return *kGraph;
}

RealCell RunRealCell(const RealStudyParams& params,
                     const PolicyConfig& broker_policy, double rate_qps) {
  const GraphStore& graph_store = SharedGraph(params);
  const Slo slo{18 * kMillisecond, 50 * kMillisecond, 0};
  QueryTypeRegistry registry = Cluster::MakeRegistry(slo);

  Cluster::Options options = params.cluster;
  options.broker_policy = broker_policy;
  // Shard stages report their own Points 1–3 metrics (per subquery
  // batch), so cells can report shard utilization alongside the broker
  // numbers the study plots.
  server::MetricsCollector shard_metrics(registry.size());
  shard_metrics.SetRecording(false);
  options.shard_metrics = &shard_metrics;
  Cluster cluster(&graph_store, &registry, SystemClock::Global(), options);
  auto status = cluster.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "cluster start failed: %s\n",
                 status.ToString().c_str());
    return RealCell{};
  }

  server::MetricsCollector collector(registry.size());
  collector.SetRecording(false);

  // §5.4 mix, by op index QT1..QT11.
  const workload::WorkloadSpec mix = workload::PaperRealSystemMix();
  Rng query_rng(7);
  workload::LoadGenerator::Options generator_options;
  generator_options.rate_qps = rate_qps;
  generator_options.duration = params.warmup + params.measure;
  generator_options.seed = 99;
  workload::LoadGenerator generator(
      &mix, generator_options, [&](size_t type_index) {
        const GraphQuery query = Cluster::SampleQuery(
            static_cast<GraphOp>(type_index), graph_store, query_rng);
        cluster.Submit(query, /*deadline=*/0,
                       [&collector](const server::WorkItem& item,
                                    server::Outcome outcome,
                                    const graph::GraphQueryResult& result) {
                         // A query whose subqueries were shed by a shard
                         // returns an error to the client: count it as a
                         // rejection, and keep its (fast-fail) latency out
                         // of the serviced-query percentiles.
                         if (outcome == server::Outcome::kCompleted &&
                             !result.ok) {
                           outcome = server::Outcome::kShedded;
                         }
                         collector.Record(item, outcome);
                       });
      });

  // Flip recording on after the warm-up window (from a helper thread;
  // the generator blocks this one).
  std::thread warmup_timer([&] {
    std::this_thread::sleep_for(std::chrono::nanoseconds(params.warmup));
    collector.SetRecording(true);
    shard_metrics.SetRecording(true);
  });
  generator.Run();
  warmup_timer.join();
  cluster.Stop();

  RealCell cell;
  cell.offered_qps = rate_qps;
  cell.overall = collector.Overall();
  cell.qt11 = collector.Report(Cluster::TypeIdFor(GraphOp::kDistance4));
  cell.shard_overall = shard_metrics.Overall();
  const double capacity_ms =
      ToMillis(params.measure) *
      static_cast<double>(options.num_shards * options.shard_workers);
  if (capacity_ms > 0) {
    cell.shard_utilization = cell.shard_overall.BusyMs() / capacity_ms;
  }
  return cell;
}

}  // namespace bouncer::bench
