#ifndef BOUNCER_BENCH_REAL_COMMON_H_
#define BOUNCER_BENCH_REAL_COMMON_H_

#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/graph/cluster.h"
#include "src/graph/graph_generator.h"
#include "src/server/metrics_collector.h"
#include "src/workload/workload_spec.h"

namespace bouncer::bench {

/// Parameters of the real-system study (paper §5.4), scaled to this
/// machine. The paper drives a 16-shard/12-broker LIquid cluster at
/// 36K-180K QPS; here an in-process broker/shard cluster on one host is
/// driven at rates scaled down ~120x, spanning the same relative range
/// (light load to past saturation).
struct RealStudyParams {
  std::vector<double> rates_qps;
  std::vector<int> paper_rates_kqps;  ///< Labels: the paper's rates.
  Nanos warmup = 2 * kSecond;
  Nanos measure = 5 * kSecond;
  graph::GeneratorOptions graph;
  graph::Cluster::Options cluster;
};
RealStudyParams DefaultRealParams();

/// Broker policies of §5.4 with the published parameters: Bouncer +
/// acceptance-allowance (A = 0.05), Bouncer + helping-the-underserved
/// (alpha = 1.0), MaxQL, MaxQWT (12 ms), AcceptFraction (80%); all capped
/// by L_limit = 800.
struct RealPolicy {
  std::string label;
  PolicyConfig config;
};
std::vector<RealPolicy> RealBrokerPolicies();

/// Outcome of one (policy, rate) cell.
struct RealCell {
  double offered_qps = 0.0;
  server::TypeReport overall;
  server::TypeReport qt11;
  /// Shard-side Points 1–3 aggregate: every subquery batch the shard
  /// stages completed (or rejected/shed) during the measure window.
  server::TypeReport shard_overall;
  /// Fraction of total shard worker-time spent processing subqueries
  /// during the measure window. Can exceed 1.0 when broker workers lend
  /// CPU to shard queues while gathering (work-helping).
  double shard_utilization = 0.0;
};

/// Generates the graph once per process (expensive); returns a shared
/// instance.
const graph::GraphStore& SharedGraph(const RealStudyParams& params);

/// Runs one measurement: builds the cluster with `broker_policy`, warms
/// it up at `rate_qps`, then measures for the configured window.
RealCell RunRealCell(const RealStudyParams& params,
                     const PolicyConfig& broker_policy, double rate_qps);

}  // namespace bouncer::bench

#endif  // BOUNCER_BENCH_REAL_COMMON_H_
