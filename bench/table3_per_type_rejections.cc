// Reproduces paper Table 3: per-type rejection percentages at load
// factors 0.9x..1.5x for basic Bouncer, Bouncer + acceptance-allowance
// (A = 0.1, as in the table), and Bouncer + helping-the-underserved
// (alpha = 1.0). Expected shape: fast / medium-fast never rejected; slow
// takes nearly all rejections; the strategies cap slow rejections
// (<= ~88% / ~71% at 1.5x) and shift the overflow to medium-slow.

#include <cstdio>

#include "bench/bench_common.h"

using namespace bouncer;
using namespace bouncer::bench;

namespace {

void PrintBlock(const char* title, const workload::WorkloadSpec& workload,
                const StudyParams& params,
                const std::vector<sim::SweepPoint>& points) {
  std::printf("\n%s\n", title);
  std::printf("%-14s", "type \\ load");
  for (double f : params.load_factors) std::printf("%8.2fx", f);
  std::printf("\n");
  PrintRule(14 + 9 * static_cast<int>(params.load_factors.size()));
  const auto& names = workload.types();
  for (size_t t = 0; t < names.size(); ++t) {
    std::printf("%-14s", names[t].name.c_str());
    for (const auto& point : points) {
      const double pct = point.result.per_type[t].rejection_pct;
      if (point.result.per_type[t].rejected == 0) {
        std::printf("%9s", "-0-");
      } else {
        std::printf("%9.2f", pct);
      }
    }
    std::printf("\n");
  }
  std::printf("%-14s", "ALL");
  for (const auto& point : points) {
    std::printf("%9.2f", point.result.overall.rejection_pct);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  PrintPreamble("table3_per_type_rejections",
                "rejection %% per query type vs load, Bouncer with and "
                "without starvation avoidance");
  const auto workload = workload::PaperSimulationWorkload();
  const auto params = DefaultStudyParams();
  // All three blocks as one (policy × load × seed) parallel grid.
  // Table 3 uses A = 0.1 (MakeStudyPolicy defaults to 0.05).
  std::vector<PolicyConfig> policies =
      MakeStudyPolicies({PolicyKind::kBouncer,
                         PolicyKind::kBouncerWithAllowance,
                         PolicyKind::kBouncerWithUnderserved});
  for (PolicyConfig& policy : policies) policy.allowance.allowance = 0.1;
  const auto sweeps = SweepStudyPolicies(workload, params, policies);
  PrintBlock("Bouncer (Basic Formulation)", workload, params, sweeps[0]);
  PrintBlock("Bouncer (Acceptance Allowance, A=0.1)", workload, params,
             sweeps[1]);
  PrintBlock("Bouncer (Helping the Underserved, alpha=1.0)", workload,
             params, sweeps[2]);
  std::printf("\n(-0- marks absolute zero rejections, as in the paper)\n");
  return 0;
}
