// Reproduces paper Table 4: per-type rejection percentages under Bouncer
// + acceptance-allowance at 1.5x full load, sweeping the allowance A over
// [0.01, 0.3]. Expected shape: slow-type rejections stay at or below the
// (1-A) ceiling the strategy enforces and fall as A grows, while
// medium-slow rejections rise to make room; overall rejections rise only
// slightly (~11.4% -> ~13.4%).

#include <cstdio>

#include "bench/bench_common.h"

using namespace bouncer;
using namespace bouncer::bench;

int main() {
  PrintPreamble("table4_allowance_sweep",
                "rejection %% per type at 1.5x load vs allowance A");
  const auto workload = workload::PaperSimulationWorkload();
  const auto params = DefaultStudyParams();
  const double qps = 1.5 * workload.FullLoadQps(params.config.parallelism);

  const std::vector<double> allowances = {0.01, 0.02, 0.03, 0.04, 0.05, 0.06,
                                          0.07, 0.08, 0.09, 0.1,  0.2,  0.3};
  std::printf("%-14s", "type \\ A");
  for (double a : allowances) std::printf("%8.2f", a);
  std::printf("\n%-14s", "[max rej %]");
  for (double a : allowances) std::printf("%7.0f%%", (1.0 - a) * 100.0);
  std::printf("\n");
  PrintRule(14 + 8 * static_cast<int>(allowances.size()));

  std::vector<sim::SimulationResult> results;
  for (double a : allowances) {
    PolicyConfig policy = MakeStudyPolicy(PolicyKind::kBouncerWithAllowance);
    policy.allowance.allowance = a;
    auto config = params.config;
    config.arrival_rate_qps = qps;
    results.push_back(
        sim::RunAveraged(workload, config, policy, params.runs));
  }

  for (size_t t = 0; t < workload.size(); ++t) {
    std::printf("%-14s", workload.type(t).name.c_str());
    for (const auto& r : results) {
      if (r.per_type[t].rejected == 0) {
        std::printf("%8s", "-0-");
      } else {
        std::printf("%8.2f", r.per_type[t].rejection_pct);
      }
    }
    std::printf("\n");
  }
  std::printf("%-14s", "ALL");
  for (const auto& r : results) {
    std::printf("%8.2f", r.overall.rejection_pct);
  }
  std::printf("\n");
  return 0;
}
