// Reproduces paper Table 5: per-type rejection percentages under Bouncer
// + helping-the-underserved at 1.5x full load, sweeping alpha over
// [0.1, 1.0]. Expected shape: slow-type rejections fall as alpha grows
// but generally exceed (1 - p_max) where p_max = alpha/2 (the help is
// probabilistic and p rarely reaches its maximum); rejections shift to
// medium-slow; overall rejections rise slightly (~11.6% -> ~13.2%).

#include <cstdio>

#include "bench/bench_common.h"

using namespace bouncer;
using namespace bouncer::bench;

int main() {
  PrintPreamble("table5_underserved_sweep",
                "rejection %% per type at 1.5x load vs alpha");
  const auto workload = workload::PaperSimulationWorkload();
  const auto params = DefaultStudyParams();
  const double qps = 1.5 * workload.FullLoadQps(params.config.parallelism);

  const std::vector<double> alphas = {0.1, 0.2, 0.3, 0.4, 0.5,
                                      0.6, 0.7, 0.8, 0.9, 1.0};
  std::printf("%-14s", "type \\ alpha");
  for (double a : alphas) std::printf("%8.2f", a);
  std::printf("\n%-14s", "[p_max %]");
  for (double a : alphas) std::printf("%7.0f%%", a * 50.0);
  std::printf("\n");
  PrintRule(14 + 8 * static_cast<int>(alphas.size()));

  std::vector<sim::SimulationResult> results;
  for (double a : alphas) {
    PolicyConfig policy = MakeStudyPolicy(PolicyKind::kBouncerWithUnderserved);
    policy.underserved.alpha = a;
    auto config = params.config;
    config.arrival_rate_qps = qps;
    results.push_back(
        sim::RunAveraged(workload, config, policy, params.runs));
  }

  for (size_t t = 0; t < workload.size(); ++t) {
    std::printf("%-14s", workload.type(t).name.c_str());
    for (const auto& r : results) {
      if (r.per_type[t].rejected == 0) {
        std::printf("%8s", "-0-");
      } else {
        std::printf("%8.2f", r.per_type[t].rejection_pct);
      }
    }
    std::printf("\n");
  }
  std::printf("%-14s", "ALL");
  for (const auto& r : results) {
    std::printf("%8.2f", r.overall.rejection_pct);
  }
  std::printf("\n");
  return 0;
}
