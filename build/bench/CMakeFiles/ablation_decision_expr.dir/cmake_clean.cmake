file(REMOVE_RECURSE
  "CMakeFiles/ablation_decision_expr.dir/ablation_decision_expr.cc.o"
  "CMakeFiles/ablation_decision_expr.dir/ablation_decision_expr.cc.o.d"
  "ablation_decision_expr"
  "ablation_decision_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_decision_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
