# Empty dependencies file for ablation_decision_expr.
# This may be replaced when dependencies are built.
