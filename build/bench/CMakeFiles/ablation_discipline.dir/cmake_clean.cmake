file(REMOVE_RECURSE
  "CMakeFiles/ablation_discipline.dir/ablation_discipline.cc.o"
  "CMakeFiles/ablation_discipline.dir/ablation_discipline.cc.o.d"
  "ablation_discipline"
  "ablation_discipline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_discipline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
