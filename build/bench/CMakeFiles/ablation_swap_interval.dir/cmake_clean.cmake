file(REMOVE_RECURSE
  "CMakeFiles/ablation_swap_interval.dir/ablation_swap_interval.cc.o"
  "CMakeFiles/ablation_swap_interval.dir/ablation_swap_interval.cc.o.d"
  "ablation_swap_interval"
  "ablation_swap_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_swap_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
