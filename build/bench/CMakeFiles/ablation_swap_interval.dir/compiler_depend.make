# Empty compiler generated dependencies file for ablation_swap_interval.
# This may be replaced when dependencies are built.
