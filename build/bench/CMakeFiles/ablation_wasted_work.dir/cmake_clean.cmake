file(REMOVE_RECURSE
  "CMakeFiles/ablation_wasted_work.dir/ablation_wasted_work.cc.o"
  "CMakeFiles/ablation_wasted_work.dir/ablation_wasted_work.cc.o.d"
  "ablation_wasted_work"
  "ablation_wasted_work.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wasted_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
