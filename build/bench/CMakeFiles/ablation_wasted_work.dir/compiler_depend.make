# Empty compiler generated dependencies file for ablation_wasted_work.
# This may be replaced when dependencies are built.
