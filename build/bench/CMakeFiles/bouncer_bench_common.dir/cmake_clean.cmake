file(REMOVE_RECURSE
  "../lib/libbouncer_bench_common.a"
  "../lib/libbouncer_bench_common.pdb"
  "CMakeFiles/bouncer_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/bouncer_bench_common.dir/bench_common.cc.o.d"
  "CMakeFiles/bouncer_bench_common.dir/real_common.cc.o"
  "CMakeFiles/bouncer_bench_common.dir/real_common.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bouncer_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
