file(REMOVE_RECURSE
  "../lib/libbouncer_bench_common.a"
)
