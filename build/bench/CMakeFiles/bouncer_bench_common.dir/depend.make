# Empty dependencies file for bouncer_bench_common.
# This may be replaced when dependencies are built.
