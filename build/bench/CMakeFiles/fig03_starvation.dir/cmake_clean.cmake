file(REMOVE_RECURSE
  "CMakeFiles/fig03_starvation.dir/fig03_starvation.cc.o"
  "CMakeFiles/fig03_starvation.dir/fig03_starvation.cc.o.d"
  "fig03_starvation"
  "fig03_starvation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_starvation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
