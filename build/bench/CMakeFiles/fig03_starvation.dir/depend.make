# Empty dependencies file for fig03_starvation.
# This may be replaced when dependencies are built.
