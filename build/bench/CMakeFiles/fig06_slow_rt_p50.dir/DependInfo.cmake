
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig06_slow_rt_p50.cc" "bench/CMakeFiles/fig06_slow_rt_p50.dir/fig06_slow_rt_p50.cc.o" "gcc" "bench/CMakeFiles/fig06_slow_rt_p50.dir/fig06_slow_rt_p50.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bouncer_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/bouncer_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bouncer_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/bouncer_server.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bouncer_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bouncer_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/bouncer_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bouncer_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
