file(REMOVE_RECURSE
  "CMakeFiles/fig06_slow_rt_p50.dir/fig06_slow_rt_p50.cc.o"
  "CMakeFiles/fig06_slow_rt_p50.dir/fig06_slow_rt_p50.cc.o.d"
  "fig06_slow_rt_p50"
  "fig06_slow_rt_p50.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_slow_rt_p50.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
