# Empty compiler generated dependencies file for fig06_slow_rt_p50.
# This may be replaced when dependencies are built.
