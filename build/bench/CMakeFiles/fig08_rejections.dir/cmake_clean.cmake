file(REMOVE_RECURSE
  "CMakeFiles/fig08_rejections.dir/fig08_rejections.cc.o"
  "CMakeFiles/fig08_rejections.dir/fig08_rejections.cc.o.d"
  "fig08_rejections"
  "fig08_rejections.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_rejections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
