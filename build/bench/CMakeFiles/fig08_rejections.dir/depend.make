# Empty dependencies file for fig08_rejections.
# This may be replaced when dependencies are built.
