file(REMOVE_RECURSE
  "CMakeFiles/fig09_strategy_rt.dir/fig09_strategy_rt.cc.o"
  "CMakeFiles/fig09_strategy_rt.dir/fig09_strategy_rt.cc.o.d"
  "fig09_strategy_rt"
  "fig09_strategy_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_strategy_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
