# Empty compiler generated dependencies file for fig09_strategy_rt.
# This may be replaced when dependencies are built.
