file(REMOVE_RECURSE
  "CMakeFiles/fig10_param_rt.dir/fig10_param_rt.cc.o"
  "CMakeFiles/fig10_param_rt.dir/fig10_param_rt.cc.o.d"
  "fig10_param_rt"
  "fig10_param_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_param_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
