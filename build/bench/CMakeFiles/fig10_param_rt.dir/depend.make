# Empty dependencies file for fig10_param_rt.
# This may be replaced when dependencies are built.
