file(REMOVE_RECURSE
  "CMakeFiles/fig11_real_rejections.dir/fig11_real_rejections.cc.o"
  "CMakeFiles/fig11_real_rejections.dir/fig11_real_rejections.cc.o.d"
  "fig11_real_rejections"
  "fig11_real_rejections.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_real_rejections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
