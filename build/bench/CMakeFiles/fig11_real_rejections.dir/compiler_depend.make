# Empty compiler generated dependencies file for fig11_real_rejections.
# This may be replaced when dependencies are built.
