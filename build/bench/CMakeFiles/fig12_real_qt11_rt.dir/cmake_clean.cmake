file(REMOVE_RECURSE
  "CMakeFiles/fig12_real_qt11_rt.dir/fig12_real_qt11_rt.cc.o"
  "CMakeFiles/fig12_real_qt11_rt.dir/fig12_real_qt11_rt.cc.o.d"
  "fig12_real_qt11_rt"
  "fig12_real_qt11_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_real_qt11_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
