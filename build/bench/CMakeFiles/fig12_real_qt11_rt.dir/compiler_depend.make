# Empty compiler generated dependencies file for fig12_real_qt11_rt.
# This may be replaced when dependencies are built.
