file(REMOVE_RECURSE
  "CMakeFiles/fig13_pt_vs_rt.dir/fig13_pt_vs_rt.cc.o"
  "CMakeFiles/fig13_pt_vs_rt.dir/fig13_pt_vs_rt.cc.o.d"
  "fig13_pt_vs_rt"
  "fig13_pt_vs_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_pt_vs_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
