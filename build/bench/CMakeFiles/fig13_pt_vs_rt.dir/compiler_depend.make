# Empty compiler generated dependencies file for fig13_pt_vs_rt.
# This may be replaced when dependencies are built.
