file(REMOVE_RECURSE
  "CMakeFiles/fig14_per_type_maxqwt.dir/fig14_per_type_maxqwt.cc.o"
  "CMakeFiles/fig14_per_type_maxqwt.dir/fig14_per_type_maxqwt.cc.o.d"
  "fig14_per_type_maxqwt"
  "fig14_per_type_maxqwt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_per_type_maxqwt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
