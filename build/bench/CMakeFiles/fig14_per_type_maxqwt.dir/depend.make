# Empty dependencies file for fig14_per_type_maxqwt.
# This may be replaced when dependencies are built.
