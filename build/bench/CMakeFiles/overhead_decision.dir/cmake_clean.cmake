file(REMOVE_RECURSE
  "CMakeFiles/overhead_decision.dir/overhead_decision.cc.o"
  "CMakeFiles/overhead_decision.dir/overhead_decision.cc.o.d"
  "overhead_decision"
  "overhead_decision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhead_decision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
