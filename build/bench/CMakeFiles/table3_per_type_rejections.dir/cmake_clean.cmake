file(REMOVE_RECURSE
  "CMakeFiles/table3_per_type_rejections.dir/table3_per_type_rejections.cc.o"
  "CMakeFiles/table3_per_type_rejections.dir/table3_per_type_rejections.cc.o.d"
  "table3_per_type_rejections"
  "table3_per_type_rejections.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_per_type_rejections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
