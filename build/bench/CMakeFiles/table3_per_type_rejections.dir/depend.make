# Empty dependencies file for table3_per_type_rejections.
# This may be replaced when dependencies are built.
