file(REMOVE_RECURSE
  "CMakeFiles/table4_allowance_sweep.dir/table4_allowance_sweep.cc.o"
  "CMakeFiles/table4_allowance_sweep.dir/table4_allowance_sweep.cc.o.d"
  "table4_allowance_sweep"
  "table4_allowance_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_allowance_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
