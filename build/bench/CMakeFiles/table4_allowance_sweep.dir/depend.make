# Empty dependencies file for table4_allowance_sweep.
# This may be replaced when dependencies are built.
