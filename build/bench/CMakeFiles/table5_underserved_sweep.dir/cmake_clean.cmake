file(REMOVE_RECURSE
  "CMakeFiles/table5_underserved_sweep.dir/table5_underserved_sweep.cc.o"
  "CMakeFiles/table5_underserved_sweep.dir/table5_underserved_sweep.cc.o.d"
  "table5_underserved_sweep"
  "table5_underserved_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_underserved_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
