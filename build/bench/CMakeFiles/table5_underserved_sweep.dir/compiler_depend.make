# Empty compiler generated dependencies file for table5_underserved_sweep.
# This may be replaced when dependencies are built.
