file(REMOVE_RECURSE
  "CMakeFiles/graph_service.dir/graph_service.cpp.o"
  "CMakeFiles/graph_service.dir/graph_service.cpp.o.d"
  "graph_service"
  "graph_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
