# Empty compiler generated dependencies file for graph_service.
# This may be replaced when dependencies are built.
