# Empty dependencies file for sim_cli.
# This may be replaced when dependencies are built.
