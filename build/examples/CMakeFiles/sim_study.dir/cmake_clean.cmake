file(REMOVE_RECURSE
  "CMakeFiles/sim_study.dir/sim_study.cpp.o"
  "CMakeFiles/sim_study.dir/sim_study.cpp.o.d"
  "sim_study"
  "sim_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
