# Empty dependencies file for sim_study.
# This may be replaced when dependencies are built.
