
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/accept_fraction_policy.cc" "src/core/CMakeFiles/bouncer_core.dir/accept_fraction_policy.cc.o" "gcc" "src/core/CMakeFiles/bouncer_core.dir/accept_fraction_policy.cc.o.d"
  "/root/repo/src/core/acceptance_allowance_policy.cc" "src/core/CMakeFiles/bouncer_core.dir/acceptance_allowance_policy.cc.o" "gcc" "src/core/CMakeFiles/bouncer_core.dir/acceptance_allowance_policy.cc.o.d"
  "/root/repo/src/core/bouncer_policy.cc" "src/core/CMakeFiles/bouncer_core.dir/bouncer_policy.cc.o" "gcc" "src/core/CMakeFiles/bouncer_core.dir/bouncer_policy.cc.o.d"
  "/root/repo/src/core/helping_underserved_policy.cc" "src/core/CMakeFiles/bouncer_core.dir/helping_underserved_policy.cc.o" "gcc" "src/core/CMakeFiles/bouncer_core.dir/helping_underserved_policy.cc.o.d"
  "/root/repo/src/core/policy_factory.cc" "src/core/CMakeFiles/bouncer_core.dir/policy_factory.cc.o" "gcc" "src/core/CMakeFiles/bouncer_core.dir/policy_factory.cc.o.d"
  "/root/repo/src/core/query_type_registry.cc" "src/core/CMakeFiles/bouncer_core.dir/query_type_registry.cc.o" "gcc" "src/core/CMakeFiles/bouncer_core.dir/query_type_registry.cc.o.d"
  "/root/repo/src/core/slo_config.cc" "src/core/CMakeFiles/bouncer_core.dir/slo_config.cc.o" "gcc" "src/core/CMakeFiles/bouncer_core.dir/slo_config.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/bouncer_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bouncer_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
