file(REMOVE_RECURSE
  "CMakeFiles/bouncer_core.dir/accept_fraction_policy.cc.o"
  "CMakeFiles/bouncer_core.dir/accept_fraction_policy.cc.o.d"
  "CMakeFiles/bouncer_core.dir/acceptance_allowance_policy.cc.o"
  "CMakeFiles/bouncer_core.dir/acceptance_allowance_policy.cc.o.d"
  "CMakeFiles/bouncer_core.dir/bouncer_policy.cc.o"
  "CMakeFiles/bouncer_core.dir/bouncer_policy.cc.o.d"
  "CMakeFiles/bouncer_core.dir/helping_underserved_policy.cc.o"
  "CMakeFiles/bouncer_core.dir/helping_underserved_policy.cc.o.d"
  "CMakeFiles/bouncer_core.dir/policy_factory.cc.o"
  "CMakeFiles/bouncer_core.dir/policy_factory.cc.o.d"
  "CMakeFiles/bouncer_core.dir/query_type_registry.cc.o"
  "CMakeFiles/bouncer_core.dir/query_type_registry.cc.o.d"
  "CMakeFiles/bouncer_core.dir/slo_config.cc.o"
  "CMakeFiles/bouncer_core.dir/slo_config.cc.o.d"
  "libbouncer_core.a"
  "libbouncer_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bouncer_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
