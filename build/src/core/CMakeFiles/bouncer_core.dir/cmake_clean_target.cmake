file(REMOVE_RECURSE
  "libbouncer_core.a"
)
