# Empty dependencies file for bouncer_core.
# This may be replaced when dependencies are built.
