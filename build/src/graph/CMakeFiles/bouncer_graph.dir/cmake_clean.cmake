file(REMOVE_RECURSE
  "CMakeFiles/bouncer_graph.dir/cluster.cc.o"
  "CMakeFiles/bouncer_graph.dir/cluster.cc.o.d"
  "CMakeFiles/bouncer_graph.dir/graph_generator.cc.o"
  "CMakeFiles/bouncer_graph.dir/graph_generator.cc.o.d"
  "CMakeFiles/bouncer_graph.dir/graph_store.cc.o"
  "CMakeFiles/bouncer_graph.dir/graph_store.cc.o.d"
  "CMakeFiles/bouncer_graph.dir/shard_engine.cc.o"
  "CMakeFiles/bouncer_graph.dir/shard_engine.cc.o.d"
  "CMakeFiles/bouncer_graph.dir/update_log.cc.o"
  "CMakeFiles/bouncer_graph.dir/update_log.cc.o.d"
  "libbouncer_graph.a"
  "libbouncer_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bouncer_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
