file(REMOVE_RECURSE
  "libbouncer_graph.a"
)
