# Empty compiler generated dependencies file for bouncer_graph.
# This may be replaced when dependencies are built.
