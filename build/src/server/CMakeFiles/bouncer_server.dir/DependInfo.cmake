
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/server/stage.cc" "src/server/CMakeFiles/bouncer_server.dir/stage.cc.o" "gcc" "src/server/CMakeFiles/bouncer_server.dir/stage.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bouncer_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bouncer_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/bouncer_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
