file(REMOVE_RECURSE
  "CMakeFiles/bouncer_server.dir/stage.cc.o"
  "CMakeFiles/bouncer_server.dir/stage.cc.o.d"
  "libbouncer_server.a"
  "libbouncer_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bouncer_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
