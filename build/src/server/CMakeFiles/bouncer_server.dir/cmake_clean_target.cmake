file(REMOVE_RECURSE
  "libbouncer_server.a"
)
