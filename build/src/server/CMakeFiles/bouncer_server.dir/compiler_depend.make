# Empty compiler generated dependencies file for bouncer_server.
# This may be replaced when dependencies are built.
