file(REMOVE_RECURSE
  "CMakeFiles/bouncer_sim.dir/experiment.cc.o"
  "CMakeFiles/bouncer_sim.dir/experiment.cc.o.d"
  "CMakeFiles/bouncer_sim.dir/simulator.cc.o"
  "CMakeFiles/bouncer_sim.dir/simulator.cc.o.d"
  "libbouncer_sim.a"
  "libbouncer_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bouncer_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
