file(REMOVE_RECURSE
  "libbouncer_sim.a"
)
