# Empty dependencies file for bouncer_sim.
# This may be replaced when dependencies are built.
