file(REMOVE_RECURSE
  "CMakeFiles/bouncer_stats.dir/dual_histogram.cc.o"
  "CMakeFiles/bouncer_stats.dir/dual_histogram.cc.o.d"
  "CMakeFiles/bouncer_stats.dir/histogram.cc.o"
  "CMakeFiles/bouncer_stats.dir/histogram.cc.o.d"
  "CMakeFiles/bouncer_stats.dir/sliding_window_counter.cc.o"
  "CMakeFiles/bouncer_stats.dir/sliding_window_counter.cc.o.d"
  "CMakeFiles/bouncer_stats.dir/sliding_window_mean.cc.o"
  "CMakeFiles/bouncer_stats.dir/sliding_window_mean.cc.o.d"
  "CMakeFiles/bouncer_stats.dir/summary.cc.o"
  "CMakeFiles/bouncer_stats.dir/summary.cc.o.d"
  "libbouncer_stats.a"
  "libbouncer_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bouncer_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
