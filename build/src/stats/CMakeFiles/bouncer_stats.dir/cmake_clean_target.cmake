file(REMOVE_RECURSE
  "libbouncer_stats.a"
)
