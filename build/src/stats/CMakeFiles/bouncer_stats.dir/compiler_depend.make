# Empty compiler generated dependencies file for bouncer_stats.
# This may be replaced when dependencies are built.
