file(REMOVE_RECURSE
  "CMakeFiles/bouncer_util.dir/clock.cc.o"
  "CMakeFiles/bouncer_util.dir/clock.cc.o.d"
  "CMakeFiles/bouncer_util.dir/rng.cc.o"
  "CMakeFiles/bouncer_util.dir/rng.cc.o.d"
  "CMakeFiles/bouncer_util.dir/status.cc.o"
  "CMakeFiles/bouncer_util.dir/status.cc.o.d"
  "libbouncer_util.a"
  "libbouncer_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bouncer_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
