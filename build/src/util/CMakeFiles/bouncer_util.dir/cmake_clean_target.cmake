file(REMOVE_RECURSE
  "libbouncer_util.a"
)
