# Empty dependencies file for bouncer_util.
# This may be replaced when dependencies are built.
