
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/load_generator.cc" "src/workload/CMakeFiles/bouncer_workload.dir/load_generator.cc.o" "gcc" "src/workload/CMakeFiles/bouncer_workload.dir/load_generator.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/workload/CMakeFiles/bouncer_workload.dir/trace.cc.o" "gcc" "src/workload/CMakeFiles/bouncer_workload.dir/trace.cc.o.d"
  "/root/repo/src/workload/workload_spec.cc" "src/workload/CMakeFiles/bouncer_workload.dir/workload_spec.cc.o" "gcc" "src/workload/CMakeFiles/bouncer_workload.dir/workload_spec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bouncer_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bouncer_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/bouncer_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
