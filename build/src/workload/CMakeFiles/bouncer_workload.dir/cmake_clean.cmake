file(REMOVE_RECURSE
  "CMakeFiles/bouncer_workload.dir/load_generator.cc.o"
  "CMakeFiles/bouncer_workload.dir/load_generator.cc.o.d"
  "CMakeFiles/bouncer_workload.dir/trace.cc.o"
  "CMakeFiles/bouncer_workload.dir/trace.cc.o.d"
  "CMakeFiles/bouncer_workload.dir/workload_spec.cc.o"
  "CMakeFiles/bouncer_workload.dir/workload_spec.cc.o.d"
  "libbouncer_workload.a"
  "libbouncer_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bouncer_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
