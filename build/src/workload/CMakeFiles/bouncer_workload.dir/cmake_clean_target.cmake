file(REMOVE_RECURSE
  "libbouncer_workload.a"
)
