# Empty dependencies file for bouncer_workload.
# This may be replaced when dependencies are built.
