
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/accept_fraction_test.cc" "tests/CMakeFiles/core_tests.dir/core/accept_fraction_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/accept_fraction_test.cc.o.d"
  "/root/repo/tests/core/acceptance_allowance_test.cc" "tests/CMakeFiles/core_tests.dir/core/acceptance_allowance_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/acceptance_allowance_test.cc.o.d"
  "/root/repo/tests/core/bouncer_policy_test.cc" "tests/CMakeFiles/core_tests.dir/core/bouncer_policy_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/bouncer_policy_test.cc.o.d"
  "/root/repo/tests/core/helping_underserved_test.cc" "tests/CMakeFiles/core_tests.dir/core/helping_underserved_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/helping_underserved_test.cc.o.d"
  "/root/repo/tests/core/max_policies_test.cc" "tests/CMakeFiles/core_tests.dir/core/max_policies_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/max_policies_test.cc.o.d"
  "/root/repo/tests/core/policy_concurrency_test.cc" "tests/CMakeFiles/core_tests.dir/core/policy_concurrency_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/policy_concurrency_test.cc.o.d"
  "/root/repo/tests/core/policy_factory_test.cc" "tests/CMakeFiles/core_tests.dir/core/policy_factory_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/policy_factory_test.cc.o.d"
  "/root/repo/tests/core/priority_bouncer_test.cc" "tests/CMakeFiles/core_tests.dir/core/priority_bouncer_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/priority_bouncer_test.cc.o.d"
  "/root/repo/tests/core/query_type_registry_test.cc" "tests/CMakeFiles/core_tests.dir/core/query_type_registry_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/query_type_registry_test.cc.o.d"
  "/root/repo/tests/core/queue_state_test.cc" "tests/CMakeFiles/core_tests.dir/core/queue_state_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/queue_state_test.cc.o.d"
  "/root/repo/tests/core/slo_config_test.cc" "tests/CMakeFiles/core_tests.dir/core/slo_config_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/slo_config_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/bouncer_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bouncer_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/bouncer_server.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bouncer_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bouncer_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/bouncer_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bouncer_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
