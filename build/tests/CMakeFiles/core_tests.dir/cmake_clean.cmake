file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/accept_fraction_test.cc.o"
  "CMakeFiles/core_tests.dir/core/accept_fraction_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/acceptance_allowance_test.cc.o"
  "CMakeFiles/core_tests.dir/core/acceptance_allowance_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/bouncer_policy_test.cc.o"
  "CMakeFiles/core_tests.dir/core/bouncer_policy_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/helping_underserved_test.cc.o"
  "CMakeFiles/core_tests.dir/core/helping_underserved_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/max_policies_test.cc.o"
  "CMakeFiles/core_tests.dir/core/max_policies_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/policy_concurrency_test.cc.o"
  "CMakeFiles/core_tests.dir/core/policy_concurrency_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/policy_factory_test.cc.o"
  "CMakeFiles/core_tests.dir/core/policy_factory_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/priority_bouncer_test.cc.o"
  "CMakeFiles/core_tests.dir/core/priority_bouncer_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/query_type_registry_test.cc.o"
  "CMakeFiles/core_tests.dir/core/query_type_registry_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/queue_state_test.cc.o"
  "CMakeFiles/core_tests.dir/core/queue_state_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/slo_config_test.cc.o"
  "CMakeFiles/core_tests.dir/core/slo_config_test.cc.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
