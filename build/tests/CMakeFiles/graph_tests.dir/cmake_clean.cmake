file(REMOVE_RECURSE
  "CMakeFiles/graph_tests.dir/graph/cluster_test.cc.o"
  "CMakeFiles/graph_tests.dir/graph/cluster_test.cc.o.d"
  "CMakeFiles/graph_tests.dir/graph/graph_generator_test.cc.o"
  "CMakeFiles/graph_tests.dir/graph/graph_generator_test.cc.o.d"
  "CMakeFiles/graph_tests.dir/graph/graph_store_test.cc.o"
  "CMakeFiles/graph_tests.dir/graph/graph_store_test.cc.o.d"
  "CMakeFiles/graph_tests.dir/graph/query_golden_test.cc.o"
  "CMakeFiles/graph_tests.dir/graph/query_golden_test.cc.o.d"
  "CMakeFiles/graph_tests.dir/graph/shard_engine_test.cc.o"
  "CMakeFiles/graph_tests.dir/graph/shard_engine_test.cc.o.d"
  "CMakeFiles/graph_tests.dir/graph/update_log_test.cc.o"
  "CMakeFiles/graph_tests.dir/graph/update_log_test.cc.o.d"
  "graph_tests"
  "graph_tests.pdb"
  "graph_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
