file(REMOVE_RECURSE
  "CMakeFiles/stats_tests.dir/stats/dual_histogram_test.cc.o"
  "CMakeFiles/stats_tests.dir/stats/dual_histogram_test.cc.o.d"
  "CMakeFiles/stats_tests.dir/stats/histogram_accuracy_test.cc.o"
  "CMakeFiles/stats_tests.dir/stats/histogram_accuracy_test.cc.o.d"
  "CMakeFiles/stats_tests.dir/stats/histogram_test.cc.o"
  "CMakeFiles/stats_tests.dir/stats/histogram_test.cc.o.d"
  "CMakeFiles/stats_tests.dir/stats/sliding_window_counter_test.cc.o"
  "CMakeFiles/stats_tests.dir/stats/sliding_window_counter_test.cc.o.d"
  "CMakeFiles/stats_tests.dir/stats/sliding_window_mean_test.cc.o"
  "CMakeFiles/stats_tests.dir/stats/sliding_window_mean_test.cc.o.d"
  "CMakeFiles/stats_tests.dir/stats/summary_test.cc.o"
  "CMakeFiles/stats_tests.dir/stats/summary_test.cc.o.d"
  "stats_tests"
  "stats_tests.pdb"
  "stats_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
