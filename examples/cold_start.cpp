// Cold starts and unknown query types (paper Appendix A + B.2): a new
// query type starts sending traffic long after the system warmed up. With
// the general-histogram fallback, Bouncer decides for the cold type from
// the type-agnostic distribution under the catch-all "default" SLO until
// the type's own histogram fills; unknown type strings resolve to the
// default type outright.
//
//   ./build/examples/cold_start

#include <cstdio>

#include "src/core/bouncer_policy.h"

using namespace bouncer;

namespace {

void Report(const char* when, const BouncerPolicy& policy,
            const QueryTypeRegistry& registry, QueryTypeId type) {
  const auto estimate = policy.EstimateFor(type, 0);
  const auto summary = policy.TypeSummary(type);
  std::printf("%-34s type=%-10s cold=%-5s samples=%-6llu ert_p50=%.2fms "
              "ert_p90=%.2fms\n",
              when, registry.Name(type).c_str(),
              estimate.cold ? "yes" : "no",
              static_cast<unsigned long long>(summary.count),
              ToMillis(estimate.ert_p50), ToMillis(estimate.ert_p90));
}

}  // namespace

int main() {
  // Permissive default SLO so brand-new queries can be onboarded without
  // configuration (paper B.2), tighter SLOs for the known types.
  QueryTypeRegistry registry(
      /*default_slo=*/{100 * kMillisecond, 800 * kMillisecond, 0});
  const QueryTypeId hot =
      *registry.Register("HotType", {18 * kMillisecond, 50 * kMillisecond, 0});
  const QueryTypeId late =
      *registry.Register("LateType", {18 * kMillisecond, 50 * kMillisecond, 0});
  QueueState queue(registry.size());
  PolicyContext context{&registry, &queue, /*parallelism=*/8};

  BouncerPolicy::Options options;
  options.cold_start_mode = ColdStartMode::kGeneralHistogram;
  options.warmup_min_samples = 50;
  BouncerPolicy policy(context, options);

  std::printf("== phase 1: only HotType traffic (5 ms queries) ==\n");
  for (int i = 0; i < 500; ++i) policy.OnCompleted(hot, 5 * kMillisecond, 0);
  policy.ForceHistogramSwap();
  Report("after warm-up", policy, registry, hot);
  Report("LateType (never seen)", policy, registry, late);
  std::printf("LateType decision now: %s  (general histogram, default SLO)\n",
              policy.Decide(late, 0) == Decision::kAccept ? "ACCEPT"
                                                          : "REJECT");

  std::printf("\n== phase 2: LateType arrives, runs hot at 40 ms ==\n");
  for (int i = 0; i < 500; ++i) policy.OnCompleted(late, 40 * kMillisecond, 0);
  policy.ForceHistogramSwap();
  Report("after LateType warm-up", policy, registry, late);
  std::printf("LateType decision now: %s  (own histogram: 40 ms median "
              "violates its 18 ms SLO)\n",
              policy.Decide(late, 0) == Decision::kAccept ? "ACCEPT"
                                                          : "REJECT");

  std::printf("\n== phase 3: a request with an unknown type string ==\n");
  const QueryTypeId resolved = registry.Resolve("BrandNewQuery");
  std::printf("'BrandNewQuery' resolves to '%s' (id %u); decision: %s "
              "(default SLO is permissive)\n",
              registry.Name(resolved).c_str(), resolved,
              policy.Decide(resolved, 0) == Decision::kAccept ? "ACCEPT"
                                                              : "REJECT");
  return 0;
}
