// Minimal shared command-line flag parser for the example binaries.
// Accepts `--name=value`, `--name value`, and bare `--name` (boolean
// true); `--help` / `-h` set help(). Typed getters record which flags a
// binary consumed so Unknown() can report typos the way the examples
// always have (unknown flag -> print help, exit non-zero).

#ifndef BOUNCER_EXAMPLES_FLAGS_H_
#define BOUNCER_EXAMPLES_FLAGS_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/net/net_server.h"

namespace bouncer::examples {

class CliFlags {
 public:
  CliFlags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
        help_ = true;
        continue;
      }
      if (std::strncmp(arg, "--", 2) != 0) {
        unknown_.push_back(arg);  // Positional args are not used anywhere.
        continue;
      }
      Entry entry;
      const char* eq = std::strchr(arg + 2, '=');
      if (eq != nullptr) {
        entry.name.assign(arg + 2, eq - (arg + 2));
        entry.value = eq + 1;
        entry.has_value = true;
      } else {
        entry.name = arg + 2;
        // `--name value`: the next token is the value unless it looks
        // like another flag.
        if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
          entry.value = argv[++i];
          entry.has_value = true;
        }
      }
      entries_.push_back(std::move(entry));
    }
  }

  bool help() const { return help_; }

  bool Has(const char* name) const {
    for (const Entry& e : entries_) {
      if (e.name == name) return true;
    }
    return false;
  }

  std::string GetString(const char* name, const std::string& fallback) {
    const Entry* e = Consume(name);
    return e != nullptr && e->has_value ? e->value : fallback;
  }

  double GetDouble(const char* name, double fallback) {
    const Entry* e = Consume(name);
    return e != nullptr && e->has_value ? std::atof(e->value.c_str())
                                        : fallback;
  }

  int64_t GetInt(const char* name, int64_t fallback) {
    const Entry* e = Consume(name);
    return e != nullptr && e->has_value
               ? std::strtoll(e->value.c_str(), nullptr, 10)
               : fallback;
  }

  uint64_t GetUint(const char* name, uint64_t fallback) {
    const Entry* e = Consume(name);
    return e != nullptr && e->has_value
               ? std::strtoull(e->value.c_str(), nullptr, 10)
               : fallback;
  }

  /// Bare `--name` means true; otherwise parses 1/0/true/false.
  bool GetBool(const char* name, bool fallback) {
    const Entry* e = Consume(name);
    if (e == nullptr) return fallback;
    if (!e->has_value) return true;
    return e->value == "1" || e->value == "true";
  }

  /// `--backend=auto|epoll|io_uring`, shared by every binary that fronts
  /// or drives a NetServer. Exits with a usage message on a bad value so
  /// a typo never silently runs the wrong event loop.
  net::NetBackend GetBackend(const char* name, net::NetBackend fallback) {
    const Entry* e = Consume(name);
    if (e == nullptr || !e->has_value) return fallback;
    net::NetBackend backend;
    if (!net::ParseNetBackend(e->value, &backend)) {
      std::fprintf(stderr, "bad --%s value: %s (auto|epoll|io_uring)\n",
                   name, e->value.c_str());
      std::exit(1);
    }
    return backend;
  }

  /// Flags that were passed but never consumed by a getter (plus any
  /// positional arguments). Call after all getters.
  std::vector<std::string> Unknown() const {
    std::vector<std::string> out = unknown_;
    for (const Entry& e : entries_) {
      if (!e.consumed) out.push_back("--" + e.name);
    }
    return out;
  }

 private:
  struct Entry {
    std::string name;
    std::string value;
    bool has_value = false;
    bool consumed = false;
  };

  Entry* Consume(const char* name) {
    for (Entry& e : entries_) {
      if (e.name == name) {
        e.consumed = true;
        return &e;
      }
    }
    return nullptr;
  }

  std::vector<Entry> entries_;
  std::vector<std::string> unknown_;
  bool help_ = false;
};

}  // namespace bouncer::examples

#endif  // BOUNCER_EXAMPLES_FLAGS_H_
