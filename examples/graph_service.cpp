// Minigraph service under a traffic surge: the full real-system stack —
// synthetic social graph, broker/shard cluster, open-loop load generator
// — with Bouncer guarding the broker. Traffic ramps from light load
// through a surge past capacity and back; per-phase stats show early
// rejections kicking in during the surge while serviced queries keep
// meeting their SLOs (the paper's §2 motivation).
//
//   ./build/examples/graph_service

#include <cstdio>
#include <thread>

#include "src/graph/cluster.h"
#include "src/graph/graph_generator.h"
#include "src/server/metrics_collector.h"
#include "src/workload/load_generator.h"

using namespace bouncer;
using namespace bouncer::graph;

int main() {
  // Graph substrate: a preferential-attachment social graph.
  GeneratorOptions graph_options;
  graph_options.num_vertices = 50'000;
  graph_options.edges_per_vertex = 8;
  std::printf("generating graph (%u vertices)...\n",
              graph_options.num_vertices);
  const GraphStore graph = GeneratePreferentialAttachment(graph_options);
  std::printf("graph ready: %u vertices, %llu edges\n", graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()));

  // Cluster: one broker (Bouncer + acceptance-allowance at the door),
  // two shards (AcceptFraction as the CPU backstop).
  const Slo slo{18 * kMillisecond, 50 * kMillisecond, 0};
  QueryTypeRegistry registry = Cluster::MakeRegistry(slo);
  Cluster::Options options;
  options.num_brokers = 1;
  options.broker_workers = 4;
  options.num_shards = 2;
  options.shard_workers = 1;
  options.broker_policy.kind = PolicyKind::kBouncerWithAllowance;
  options.broker_policy.bouncer.histogram_swap_interval = 2 * kSecond;
  options.broker_policy.bouncer.min_samples_to_publish = 5;
  options.broker_policy.allowance.allowance = 0.10;
  options.broker_policy.queue_guard_limit = 48;
  options.shard_policy.kind = PolicyKind::kAcceptFraction;
  options.shard_policy.accept_fraction.max_utilization = 0.98;
  Cluster cluster(&graph, &registry, SystemClock::Global(), options);
  if (Status s = cluster.Start(); !s.ok()) {
    std::fprintf(stderr, "cluster start failed: %s\n", s.ToString().c_str());
    return 1;
  }

  const workload::WorkloadSpec mix = workload::PaperRealSystemMix();
  server::MetricsCollector metrics(registry.size());
  Rng query_rng(1);

  const struct {
    const char* label;
    double qps;
    Nanos duration;
  } phases[] = {
      {"warm-up (not reported)", 300, 5 * kSecond},
      {"steady (light load)", 300, 6 * kSecond},
      {"surge (past capacity)", 1400, 6 * kSecond},
      {"recovery", 300, 6 * kSecond},
  };

  std::printf("\n%-24s %9s %9s %9s %12s %12s\n", "phase", "received",
              "rejected", "rej %", "QT11 rt_p50", "QT11 rt_p90");
  for (const auto& phase : phases) {
    metrics.Reset();
    workload::LoadGenerator::Options generator_options;
    generator_options.rate_qps = phase.qps;
    generator_options.duration = phase.duration;
    workload::LoadGenerator generator(
        &mix, generator_options, [&](size_t type_index) {
          const GraphQuery query = Cluster::SampleQuery(
              static_cast<GraphOp>(type_index), graph, query_rng);
          cluster.Submit(query, /*deadline=*/0,
                         [&metrics](const server::WorkItem& item,
                                    server::Outcome outcome,
                                    const GraphQueryResult& result) {
                           if (outcome == server::Outcome::kCompleted &&
                               !result.ok) {
                             outcome = server::Outcome::kShedded;
                           }
                           metrics.Record(item, outcome);
                         });
        });
    generator.Run();
    // Let in-flight queries finish before reading the phase's numbers.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    if (phase.label[0] == 'w') continue;  // Warm-up phase: discard.
    const auto overall = metrics.Overall();
    const auto qt11 = metrics.Report(Cluster::TypeIdFor(GraphOp::kDistance4));
    std::printf("%-24s %9lu %9lu %8.2f%% %10.2fms %10.2fms\n", phase.label,
                static_cast<unsigned long>(overall.received),
                static_cast<unsigned long>(overall.rejected),
                overall.rejection_pct, qt11.rt_p50_ms, qt11.rt_p90_ms);
  }
  cluster.Stop();
  std::printf("\nDuring the surge Bouncer sheds the expensive QT11 queries "
              "early (clients can fail over\nimmediately) and keeps the "
              "serviced ones near the 18ms/50ms SLOs.\n");
  return 0;
}
