// Minigraph service under a traffic surge: the full real-system stack —
// synthetic social graph, broker/shard cluster, open-loop load generator
// — with Bouncer guarding the broker. Traffic ramps from light load
// through a surge past capacity and back; per-phase stats show early
// rejections kicking in during the surge while serviced queries keep
// meeting their SLOs (the paper's §2 motivation).
//
//   ./build/examples/graph_service
//   ./build/examples/graph_service --surge-qps=2000 --broker-workers=8
//
// With --listen the same stack serves the binary TCP protocol instead of
// an in-process generator; drive it with examples/net_client:
//
//   ./build/examples/graph_service --listen=7317
//   ./build/examples/net_client --port=7317 --qps=500 --duration-s=5
//
//   ./build/examples/graph_service --help

#include <csignal>
#include <cstdio>
#include <thread>

#include "examples/flags.h"
#include "src/graph/cluster.h"
#include "src/graph/graph_generator.h"
#include "src/net/net_server.h"
#include "src/server/metrics_collector.h"
#include "src/stats/flight_recorder.h"
#include "src/stats/metric_registry.h"
#include "src/workload/load_generator.h"

using namespace bouncer;
using namespace bouncer::graph;

namespace {

std::atomic<bool> g_interrupted{false};

void OnSignal(int) { g_interrupted.store(true, std::memory_order_release); }

void PrintHelp() {
  std::printf(
      "graph_service — broker/shard graph cluster with Bouncer at the "
      "door\n\n"
      "  mode\n"
      "  --listen=PORT       serve the TCP protocol on PORT (0 = "
      "ephemeral)\n"
      "                      instead of the in-process surge demo\n"
      "  --serve-seconds=N   with --listen: stop after N s (0 = until "
      "SIGINT)\n"
      "  --batch-submit=0|1  with --listen: drain each epoll wakeup "
      "through\n"
      "                      one SubmitBatch admission pass (default 1)\n"
      "  --loops=N           with --listen: event loops / SO_REUSEPORT\n"
      "                      listeners (default 0 = min(cores, 4))\n"
      "  --backend=KIND      with --listen: event-loop backend — auto,\n"
      "                      epoll, or io_uring (default auto: probe the\n"
      "                      kernel, fall back to epoll)\n\n"
      "  observability\n"
      "  --stats-interval=N  with --listen: print a metric-registry "
      "summary\n"
      "                      every N s (default 2; 0 = quiet)\n"
      "  --trace=0|1         enable the flight recorder (default 1)\n"
      "  --trace-sample=N    trace 1-in-N requests (default 64)\n"
      "  --trace-dump=PATH   dump retained trace events to PATH as JSONL "
      "on\n"
      "                      exit (also served live via net_client "
      "--stats=trace)\n\n"
      "  cluster\n"
      "  --vertices=N        graph size (default 50000)\n"
      "  --brokers=N         broker stages (default 1)\n"
      "  --broker-workers=N  workers per broker (default 4)\n"
      "  --shards=N          shard stages (default 2)\n"
      "  --shard-workers=N   workers per shard (default 1)\n"
      "  --allowance=F       broker acceptance allowance (default 0.10)\n"
      "  --queue-guard=N     broker queue guard limit (default 48)\n"
      "  --tenant-fair=0|1   weighted-fair admission across tenants "
      "(default\n"
      "                      0; stats rows appear as tenant.<id>.*)\n"
      "  --tenant-flood-guard=N  queue depth at which a tenant is capped "
      "at\n"
      "                      its weighted queue share (default 32 when\n"
      "                      --tenant-fair; 0 = off)\n"
      "  --single-queue=0|1  force one global run queue per stage instead "
      "of\n"
      "                      per-worker run queues with stealing (default "
      "0)\n\n"
      "  surge demo\n"
      "  --steady-qps=F      light-load rate (default 300)\n"
      "  --surge-qps=F       surge rate past capacity (default 1400)\n"
      "  --phase-seconds=N   length of each reported phase (default 6)\n");
}

}  // namespace

int main(int argc, char** argv) {
  examples::CliFlags flags(argc, argv);
  if (flags.help()) {
    PrintHelp();
    return 0;
  }
  const bool listen_mode = flags.Has("listen");
  const auto listen_port = static_cast<uint16_t>(flags.GetUint("listen", 0));
  const auto serve_seconds = flags.GetUint("serve-seconds", 0);
  const bool batch_submit = flags.GetBool("batch-submit", true);
  const auto num_loops = flags.GetUint("loops", 0);
  const net::NetBackend backend =
      flags.GetBackend("backend", net::NetBackend::kAuto);
  const auto stats_interval_s = flags.GetUint("stats-interval", 2);
  const bool trace_on = flags.GetBool("trace", true);
  const auto trace_sample = flags.GetUint("trace-sample", 64);
  const std::string trace_dump_path = flags.GetString("trace-dump", "");

  GeneratorOptions graph_options;
  graph_options.num_vertices =
      static_cast<uint32_t>(flags.GetUint("vertices", 50'000));
  graph_options.edges_per_vertex = 8;

  Cluster::Options options;
  options.num_brokers = flags.GetUint("brokers", 1);
  options.broker_workers = flags.GetUint("broker-workers", 4);
  options.num_shards = flags.GetUint("shards", 2);
  options.shard_workers = flags.GetUint("shard-workers", 1);
  options.force_single_queue = flags.GetBool("single-queue", false);
  options.broker_policy.kind = PolicyKind::kBouncerWithAllowance;
  options.broker_policy.bouncer.histogram_swap_interval = 2 * kSecond;
  options.broker_policy.bouncer.min_samples_to_publish = 5;
  options.broker_policy.allowance.allowance =
      flags.GetDouble("allowance", 0.10);
  options.broker_policy.queue_guard_limit = flags.GetUint("queue-guard", 48);
  options.shard_policy.kind = PolicyKind::kAcceptFraction;
  options.shard_policy.accept_fraction.max_utilization = 0.98;

  // Multi-tenant admission: requests carrying a wire tenant id are
  // interned here; --tenant-fair adds the weighted-fair layer on the
  // brokers. The registry is cheap when unused (single-tenant traffic
  // all lands on the pre-interned default tenant).
  TenantRegistry tenant_registry;
  options.tenants = &tenant_registry;
  const bool tenant_fair = flags.GetBool("tenant-fair", false);
  const uint64_t tenant_flood_guard =
      flags.GetUint("tenant-flood-guard", tenant_fair ? 32 : 0);
  if (tenant_fair) {
    options.broker_policy.tenant_fair = true;
    options.broker_policy.tenant_fair_options.flood_guard_limit =
        tenant_flood_guard;
  }

  const double steady_qps = flags.GetDouble("steady-qps", 300);
  const double surge_qps = flags.GetDouble("surge-qps", 1400);
  const Nanos phase_duration =
      static_cast<Nanos>(flags.GetUint("phase-seconds", 6)) * kSecond;

  const auto unknown = flags.Unknown();
  if (!unknown.empty()) {
    for (const auto& flag : unknown) {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", flag.c_str());
    }
    return 1;
  }

  std::printf("generating graph (%u vertices)...\n",
              graph_options.num_vertices);
  const GraphStore graph = GeneratePreferentialAttachment(graph_options);
  std::printf("graph ready: %u vertices, %llu edges\n", graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()));

  // Observability: one process-wide metric registry every layer publishes
  // into, plus the flight recorder sampling 1-in-N request lifecycles.
  stats::MetricRegistry metric_registry;
  stats::FlightRecorder& recorder = stats::FlightRecorder::Global();
  if (stats::kTraceCompiledIn && trace_on) {
    stats::FlightRecorder::Options trace_options;
    trace_options.sampling_period =
        trace_sample == 0 ? 1 : static_cast<uint32_t>(trace_sample);
    recorder.Configure(trace_options);
    recorder.SetEnabled(true);
  }
  options.metrics = &metric_registry;

  // Cluster: brokers run Bouncer + acceptance-allowance at the door,
  // shards run AcceptFraction as the CPU backstop.
  const Slo slo{18 * kMillisecond, 50 * kMillisecond, 0};
  QueryTypeRegistry registry = Cluster::MakeRegistry(slo);
  Cluster cluster(&graph, &registry, SystemClock::Global(), options);
  if (Status s = cluster.Start(); !s.ok()) {
    std::fprintf(stderr, "cluster start failed: %s\n", s.ToString().c_str());
    return 1;
  }

  if (listen_mode) {
    net::NetServer::Options server_options;
    server_options.port = listen_port;
    server_options.batch_submit = batch_submit;
    server_options.num_loops = num_loops;
    server_options.backend = backend;
    server_options.metrics = &metric_registry;
    server_options.tenants = &tenant_registry;
    net::NetServer server(&cluster, server_options);
    if (Status s = server.Start(); !s.ok()) {
      std::fprintf(stderr, "server start failed: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    std::signal(SIGINT, OnSignal);
    std::signal(SIGTERM, OnSignal);
    std::printf("listening on %s:%u (%s backend, %s admission, %zu "
                "loop%s%s)\n",
                server_options.bind_address.c_str(), server.port(),
                net::NetBackendName(server.backend()),
                batch_submit ? "batched" : "per-query", server.num_loops(),
                server.num_loops() == 1 ? "" : "s",
                server.handoff_mode() ? ", fd-handoff fallback" : "");
    if (!server.backend_fallback_reason().empty()) {
      std::printf("  (io_uring unavailable: %s)\n",
                  server.backend_fallback_reason().c_str());
    }
    std::fflush(stdout);
    const Nanos stop_at =
        serve_seconds == 0
            ? 0
            : SystemClock::Global()->Now() +
                  static_cast<Nanos>(serve_seconds) * kSecond;
    const Nanos interval = static_cast<Nanos>(stats_interval_s) * kSecond;
    Nanos next_report =
        interval == 0 ? 0 : SystemClock::Global()->Now() + interval;
    uint64_t last_requests = 0;
    while (!g_interrupted.load(std::memory_order_acquire)) {
      const Nanos now = SystemClock::Global()->Now();
      if (stop_at != 0 && now >= stop_at) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      if (interval == 0 || now < next_report) continue;
      next_report = now + interval;
      const net::NetServer::Stats stats = server.AggregateStats();
      if (stats.requests == last_requests) continue;
      last_requests = stats.requests;
      std::printf(
          "conns=%llu requests=%llu rejected=%llu (policy=%llu "
          "queue=%llu) shard-fail=%llu expired=%llu batches=%llu "
          "pauses=%llu admin=%llu\n",
          static_cast<unsigned long long>(stats.connections_accepted -
                                          stats.connections_closed),
          static_cast<unsigned long long>(stats.requests),
          static_cast<unsigned long long>(stats.rejections),
          static_cast<unsigned long long>(stats.rejections_policy),
          static_cast<unsigned long long>(stats.rejections_queue),
          static_cast<unsigned long long>(stats.failures_shard),
          static_cast<unsigned long long>(stats.expirations),
          static_cast<unsigned long long>(stats.submit_batches),
          static_cast<unsigned long long>(stats.pauses),
          static_cast<unsigned long long>(stats.admin_requests));
      // One registry line per interval: the broker estimate-error
      // histograms are the live Eq. 2 health check.
      const stats::MetricSnapshot snap = metric_registry.Snapshot();
      for (const auto& [name, summary] : snap.histograms) {
        if (name.find("est_wait_err") == std::string::npos) continue;
        if (summary.count == 0) continue;
        std::printf("  %s: n=%llu mean=%.3fms p99=%.3fms\n", name.c_str(),
                    static_cast<unsigned long long>(summary.count),
                    ToMillis(static_cast<Nanos>(summary.mean)),
                    ToMillis(summary.p99));
      }
      std::fflush(stdout);
    }
    server.Stop();
    cluster.Stop();
    std::printf("served %llu requests\n",
                static_cast<unsigned long long>(
                    server.AggregateStats().requests));
    if (!trace_dump_path.empty()) {
      if (recorder.DumpToFile(trace_dump_path.c_str())) {
        std::printf("trace dump written to %s\n", trace_dump_path.c_str());
      } else {
        std::fprintf(stderr, "trace dump to %s failed\n",
                     trace_dump_path.c_str());
      }
    }
    return 0;
  }

  const workload::WorkloadSpec mix = workload::PaperRealSystemMix();
  server::MetricsCollector metrics(registry.size());
  Rng query_rng(1);

  const struct {
    const char* label;
    double qps;
  } phases[] = {
      {"warm-up (not reported)", steady_qps},
      {"steady (light load)", steady_qps},
      {"surge (past capacity)", surge_qps},
      {"recovery", steady_qps},
  };

  std::printf("\n%-24s %9s %9s %9s %12s %12s\n", "phase", "received",
              "rejected", "rej %", "QT11 rt_p50", "QT11 rt_p90");
  for (const auto& phase : phases) {
    metrics.Reset();
    workload::LoadGenerator::Options generator_options;
    generator_options.rate_qps = phase.qps;
    generator_options.duration =
        phase.label[0] == 'w' ? 5 * kSecond : phase_duration;
    workload::LoadGenerator generator(
        &mix, generator_options, [&](size_t type_index) {
          const GraphQuery query = Cluster::SampleQuery(
              static_cast<GraphOp>(type_index), graph, query_rng);
          cluster.Submit(query, /*deadline=*/0,
                         [&metrics](const server::WorkItem& item,
                                    server::Outcome outcome,
                                    const GraphQueryResult& result) {
                           if (outcome == server::Outcome::kCompleted &&
                               !result.ok) {
                             outcome = server::Outcome::kShedded;
                           }
                           metrics.Record(item, outcome);
                         });
        });
    generator.Run();
    // Let in-flight queries finish before reading the phase's numbers.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    if (phase.label[0] == 'w') continue;  // Warm-up phase: discard.
    const auto overall = metrics.Overall();
    const auto qt11 = metrics.Report(Cluster::TypeIdFor(GraphOp::kDistance4));
    std::printf("%-24s %9lu %9lu %8.2f%% %10.2fms %10.2fms\n", phase.label,
                static_cast<unsigned long>(overall.received),
                static_cast<unsigned long>(overall.rejected),
                overall.rejection_pct, qt11.rt_p50_ms, qt11.rt_p90_ms);
  }
  cluster.Stop();
  std::printf("\nDuring the surge Bouncer sheds the expensive QT11 queries "
              "early (clients can fail over\nimmediately) and keeps the "
              "serviced ones near the 18ms/50ms SLOs.\n");
  return 0;
}
