// Network load client for graph_service --listen: drives the binary TCP
// protocol either open-loop (Poisson departures at --qps via the
// paper's real-system mix, drops counted when server backpressure fills
// the local queue) or closed-loop (--closed-loop: a fixed in-flight
// window per connection, the saturation mode).
//
//   ./build/examples/graph_service --listen=7317 &
//   ./build/examples/net_client --port=7317 --qps=500 --duration-s=5
//   ./build/examples/net_client --port=7317 --closed-loop --in-flight=32
//
//   ./build/examples/net_client --help

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "examples/flags.h"
#include "src/net/admin_client.h"
#include "src/net/net_client.h"
#include "src/util/rng.h"
#include "src/workload/load_generator.h"
#include "src/workload/tenant_mix.h"

using namespace bouncer;

namespace {

void PrintHelp() {
  std::printf(
      "net_client — TCP load client for graph_service --listen\n\n"
      "  --host=A          server address (default 127.0.0.1)\n"
      "  --port=N          server port (required)\n"
      "  --connections=N   TCP connections (default 8)\n"
      "  --threads=N       client IO event loops (default 2;\n"
      "                    --loops=N is an alias, mirroring the server)\n"
      "  --backend=KIND    auto|epoll|io_uring, mirroring the server "
      "flag;\n"
      "                    client IO loops are epoll-based, so io_uring\n"
      "                    falls back to epoll with a note\n"
      "  --duration-s=N    run length in seconds (default 5)\n"
      "  --vertices=N      vertex-id space of the server's graph "
      "(default 50000)\n"
      "  --deadline-ms=F   per-query deadline (0 = none)\n"
      "  --seed=N          RNG seed (default 1)\n"
      "  --tenants=N       stamp tenant ids 1..N on requests (default 0:\n"
      "                    no tenant field, v1 frames)\n"
      "  --tenant-dist=D   rr (round-robin, default) or zipf (skewed,\n"
      "                    tenant 1 hottest)\n"
      "  --tenant-zipf-s=F Zipf exponent for --tenant-dist=zipf "
      "(default 1.0)\n\n"
      "  open loop (default)\n"
      "  --qps=F           offered rate (default 500)\n\n"
      "  closed loop\n"
      "  --closed-loop     saturate instead of pacing\n"
      "  --in-flight=N     window per connection (default 16)\n\n"
      "  admin\n"
      "  --stats[=json]    fetch the server's live metric snapshot and\n"
      "                    print it; =prom for Prometheus text, =trace "
      "for\n"
      "                    the flight-recorder JSONL dump. No load is\n"
      "                    generated in this mode.\n");
}

void PrintSummary(const char* label, const stats::HistogramSummary& s) {
  std::printf("%-8s n=%-9llu p50=%8.2fms  p90=%8.2fms  p99=%8.2fms\n", label,
              static_cast<unsigned long long>(s.count),
              ToMillis(s.p50), ToMillis(s.p90), ToMillis(s.p99));
}

}  // namespace

int main(int argc, char** argv) {
  examples::CliFlags flags(argc, argv);
  if (flags.help()) {
    PrintHelp();
    return 0;
  }
  net::NetClient::Options options;
  options.host = flags.GetString("host", "127.0.0.1");
  options.port = static_cast<uint16_t>(flags.GetUint("port", 0));
  options.num_connections = flags.GetUint("connections", 8);
  options.num_io_threads =
      flags.GetUint("threads", flags.GetUint("loops", 2));
  options.in_flight_per_conn = flags.GetUint("in-flight", 16);
  if (flags.GetBackend("backend", net::NetBackend::kAuto) ==
      net::NetBackend::kUring) {
    std::fprintf(stderr,
                 "note: net_client IO loops are epoll-based; --backend "
                 "selects the server side (see graph_service --backend)\n");
  }
  const double qps = flags.GetDouble("qps", 500);
  const auto duration_s = flags.GetUint("duration-s", 5);
  const bool closed_loop = flags.GetBool("closed-loop", false);
  const auto vertices =
      static_cast<uint32_t>(flags.GetUint("vertices", 50'000));
  const double deadline_ms = flags.GetDouble("deadline-ms", 0);
  const uint64_t seed = flags.GetUint("seed", 1);
  const uint64_t num_tenants = flags.GetUint("tenants", 0);
  const std::string tenant_dist = flags.GetString("tenant-dist", "rr");
  const double tenant_zipf_s = flags.GetDouble("tenant-zipf-s", 1.0);
  const bool stats_mode = flags.Has("stats");
  const std::string stats_kind = flags.GetString("stats", "json");
  const auto unknown = flags.Unknown();
  if (!unknown.empty()) {
    for (const auto& flag : unknown) {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", flag.c_str());
    }
    return 1;
  }
  if (options.port == 0) {
    std::fprintf(stderr, "--port is required (try --help)\n");
    return 1;
  }

  if (stats_mode) {
    const std::string& kind = stats_kind;
    net::AdminFetch fetch;
    fetch.host = options.host;
    fetch.port = options.port;
    if (kind == "json" || kind.empty()) {
      fetch.op = net::kOpStatsJson;
    } else if (kind == "prom" || kind == "prometheus") {
      fetch.op = net::kOpStatsPrometheus;
    } else if (kind == "trace") {
      fetch.op = net::kOpTraceDump;
    } else {
      std::fprintf(stderr, "unknown --stats kind: %s (json|prom|trace)\n",
                   kind.c_str());
      return 1;
    }
    std::string payload;
    if (Status s = net::FetchAdmin(fetch, &payload); !s.ok()) {
      std::fprintf(stderr, "stats fetch failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::fwrite(payload.data(), 1, payload.size(), stdout);
    if (payload.empty() || payload.back() != '\n') std::printf("\n");
    // The net.backend_io_uring gauge says which event-loop backend
    // served this very fetch; summarize it so nobody has to eyeball the
    // JSON.
    if (fetch.op == net::kOpStatsJson) {
      const size_t pos = payload.find("\"net.backend_io_uring\"");
      const size_t colon =
          pos == std::string::npos ? pos : payload.find(':', pos);
      if (colon != std::string::npos) {
        const bool uring =
            std::strtol(payload.c_str() + colon + 1, nullptr, 10) != 0;
        std::fprintf(stderr, "server backend: %s\n",
                     uring ? "io_uring" : "epoll");
      }
    }
    return 0;
  }

  if (tenant_dist != "rr" && tenant_dist != "zipf") {
    std::fprintf(stderr, "unknown --tenant-dist: %s (rr|zipf)\n",
                 tenant_dist.c_str());
    return 1;
  }

  const workload::WorkloadSpec mix = workload::PaperRealSystemMix();
  const workload::TenantMix tenant_mix =
      num_tenants > 0 && tenant_dist == "zipf"
          ? workload::ZipfianTenantMix(num_tenants, tenant_zipf_s)
          : workload::TenantMix();
  std::atomic<uint64_t> tenant_rr{0};
  const auto deadline_ns =
      static_cast<uint64_t>(deadline_ms * 1'000'000.0);
  const auto make_frame = [&](Rng& rng) {
    net::RequestFrame frame;
    frame.op = static_cast<uint8_t>(mix.SampleType(rng));
    frame.source = static_cast<uint32_t>(rng.NextBounded(vertices));
    frame.target = static_cast<uint32_t>(rng.NextBounded(vertices));
    frame.external_id = rng.NextU64();
    frame.deadline_ns = deadline_ns;
    if (num_tenants > 0) {
      frame.tenant =
          tenant_dist == "zipf"
              ? tenant_mix.SampleExternalId(rng)
              : tenant_rr.fetch_add(1, std::memory_order_relaxed) %
                        num_tenants +
                    1;
    }
    return frame;
  };

  // Closed-loop sampler: one RNG per connection (called concurrently for
  // distinct connections, never for the same one).
  std::vector<Rng> conn_rngs;
  conn_rngs.reserve(options.num_connections);
  for (size_t i = 0; i < options.num_connections; ++i) {
    conn_rngs.emplace_back(seed + i * 7919);
  }
  net::NetClient client(options, [&](size_t conn_index, uint64_t) {
    return make_frame(conn_rngs[conn_index]);
  });
  if (Status s = client.Start(); !s.ok()) {
    std::fprintf(stderr, "client start failed: %s\n", s.ToString().c_str());
    return 1;
  }

  if (closed_loop) {
    std::printf("closed loop: %zu conns x %zu in flight, %llus\n",
                options.num_connections, options.in_flight_per_conn,
                static_cast<unsigned long long>(duration_s));
    client.StartClosedLoop();
    std::this_thread::sleep_for(std::chrono::seconds(duration_s));
    client.StopSending();
  } else {
    std::printf("open loop: %.0f qps over %zu conns, %llus\n", qps,
                options.num_connections,
                static_cast<unsigned long long>(duration_s));
    Rng open_rng(seed);
    workload::LoadGenerator::Options generator_options;
    generator_options.rate_qps = qps;
    generator_options.duration = static_cast<Nanos>(duration_s) * kSecond;
    generator_options.seed = seed;
    workload::LoadGenerator generator(&mix, generator_options,
                                      [&](size_t type_index) {
                                        net::RequestFrame frame =
                                            make_frame(open_rng);
                                        frame.op =
                                            static_cast<uint8_t>(type_index);
                                        client.TrySend(frame);
                                      });
    generator.Run();
  }
  client.WaitForDrain(2 * kSecond);

  const auto counters = client.counters();
  std::printf(
      "\nqueued=%llu responses=%llu ok=%llu rejected=%llu shedded=%llu "
      "expired=%llu failed=%llu dropped=%llu conn_errors=%llu\n",
      static_cast<unsigned long long>(counters.queued),
      static_cast<unsigned long long>(counters.responses),
      static_cast<unsigned long long>(counters.ok),
      static_cast<unsigned long long>(counters.rejected),
      static_cast<unsigned long long>(counters.shedded),
      static_cast<unsigned long long>(counters.expired),
      static_cast<unsigned long long>(counters.failed),
      static_cast<unsigned long long>(counters.dropped),
      static_cast<unsigned long long>(counters.conn_errors));
  std::printf(
      "reasons: policy=%llu queue=%llu expired=%llu shard=%llu\n",
      static_cast<unsigned long long>(counters.reason_policy),
      static_cast<unsigned long long>(counters.reason_queue),
      static_cast<unsigned long long>(counters.reason_expired),
      static_cast<unsigned long long>(counters.reason_shard));
  PrintSummary("ALL", client.Latency());
  PrintSummary("QT1", client.LatencyFor(graph::GraphOp::kDegree));
  PrintSummary("QT11", client.LatencyFor(graph::GraphOp::kDistance4));
  client.Stop();
  return counters.conn_errors == 0 ? 0 : 1;
}
