// Quickstart: put Bouncer in front of a tiny in-process service.
//
// Builds a query-type registry with per-type latency SLOs, wraps a
// worker-pool Stage with the Bouncer admission policy, and offers it a
// burst of traffic. Rejected queries get an immediate error (early
// rejection, paper §2); admitted queries are processed and their
// response times collected.
//
//   ./build/examples/quickstart

#include <chrono>
#include <cstdio>
#include <thread>

#include "src/core/policy_factory.h"
#include "src/server/metrics_collector.h"
#include "src/server/stage.h"

using namespace bouncer;

namespace {

// Simulated query engine: an I/O-bound query of a type-dependent
// duration (sleeping keeps the toy deterministic on small machines).
void WorkFor(Nanos duration) {
  std::this_thread::sleep_for(std::chrono::nanoseconds(duration));
}

}  // namespace

int main() {
  // 1. Declare the query types and their latency SLOs (percentile
  //    response-time objectives). Unknown types resolve to "default".
  QueryTypeRegistry registry(
      /*default_slo=*/{30 * kMillisecond, 400 * kMillisecond, 0});
  const QueryTypeId get_friends =
      *registry.Register("GetFriends", {30 * kMillisecond,
                                        120 * kMillisecond, 0});
  const QueryTypeId graph_distance =
      *registry.Register("GraphDistance", {60 * kMillisecond,
                                           270 * kMillisecond, 0});

  // 2. Configure the policy: Bouncer + acceptance-allowance so no query
  //    type can starve (paper §4.1).
  PolicyConfig policy;
  policy.kind = PolicyKind::kBouncerWithAllowance;
  policy.bouncer.histogram_swap_interval = 200 * kMillisecond;
  policy.allowance.allowance = 0.02;

  // 3. Build the stage: a FIFO queue drained by 2 worker threads, with
  //    the policy deciding at the door.
  server::MetricsCollector metrics(registry.size());
  auto stage_or = server::StageBuilder()
                      .SetRegistry(&registry)
                      .SetPolicyConfig(policy)
                      .SetOptions({.name = "quickstart", .num_workers = 2})
                      .SetHandler([&](server::WorkItem& item) {
                        // The "query engine": cheap for GetFriends,
                        // expensive for GraphDistance.
                        WorkFor(item.type == 1 ? 2 * kMillisecond
                                               : 20 * kMillisecond);
                      })
                      .Build();
  if (!stage_or.ok()) {
    std::fprintf(stderr, "failed to build stage: %s\n",
                 stage_or.status().ToString().c_str());
    return 1;
  }
  server::Stage& stage = **stage_or;
  if (Status s = stage.Start(); !s.ok()) {
    std::fprintf(stderr, "failed to start: %s\n", s.ToString().c_str());
    return 1;
  }

  // 4. Offer ~2x more traffic than the two workers can absorb and watch
  //    Bouncer shed the overflow at the door. The first rounds warm the
  //    processing-time histograms and are excluded from the report.
  metrics.SetRecording(false);
  for (int round = 0; round < 200; ++round) {
    if (round == 70) metrics.SetRecording(true);  // Warm-up done.
    for (QueryTypeId type : {get_friends, get_friends, get_friends,
                             graph_distance}) {
      server::WorkItem item;
      item.type = type;
      item.on_complete = [&](const server::WorkItem& w, server::Outcome o) {
        metrics.Record(w, o);
      };
      stage.Submit(std::move(item));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stage.Stop(/*drain=*/false);

  // 5. Report.
  std::printf("%-14s %9s %9s %9s %11s %11s\n", "type", "received",
              "accepted", "rejected", "rt_p50(ms)", "rt_p90(ms)");
  for (QueryTypeId type : {get_friends, graph_distance}) {
    const auto report = metrics.Report(type);
    std::printf("%-14s %9lu %9lu %9lu %11.2f %11.2f\n",
                registry.Name(type).c_str(),
                static_cast<unsigned long>(report.received),
                static_cast<unsigned long>(report.accepted),
                static_cast<unsigned long>(report.rejected),
                report.rt_p50_ms, report.rt_p90_ms);
  }
  std::printf("\nSLOs: GetFriends p50=30ms p90=120ms; GraphDistance "
              "p50=60ms p90=270ms\nServiced queries meet or track closely "
              "their SLOs (expect some jitter on a busy host);\nthe "
              "overflow was rejected at the door. Note that the type with "
              "the tighter SLO\nrelative to its cost sheds first — exactly "
              "the per-type behaviour Bouncer is built for.\n");
  return 0;
}
