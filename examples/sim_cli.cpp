// Command-line simulation driver: run any policy against the paper's
// Table 1 workload (or a custom SLO set) at a chosen load, straight from
// the shell — handy for exploring parameter spaces beyond the canned
// benches.
//
//   ./build/examples/sim_cli --policy=bouncer --load=1.3
//   ./build/examples/sim_cli --policy=allowance --load=1.5 --A=0.1
//   ./build/examples/sim_cli --policy=maxqwt --limit-ms=12 --queries=500000
//   ./build/examples/sim_cli --policy=bouncer --deadline-ms=100 --runs=3
//   ./build/examples/sim_cli --help

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/sim/experiment.h"

using namespace bouncer;
using namespace bouncer::sim;

namespace {

struct CliOptions {
  std::string policy = "bouncer";
  double load_factor = 1.2;
  uint64_t queries = 300'000;
  uint64_t warmup = 100'000;
  uint64_t seed = 1;
  int runs = 1;
  double allowance = 0.05;
  double alpha = 1.0;
  double limit_ms = 15.0;
  uint64_t queue_limit = 400;
  double max_util = 0.95;
  double deadline_ms = 0.0;
  std::string discipline = "fifo";
  bool help = false;
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  return false;
}

CliOptions ParseArgs(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (std::strcmp(argv[i], "--help") == 0) {
      options.help = true;
    } else if (ParseFlag(argv[i], "--policy", &value)) {
      options.policy = value;
    } else if (ParseFlag(argv[i], "--load", &value)) {
      options.load_factor = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "--queries", &value)) {
      options.queries = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--warmup", &value)) {
      options.warmup = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--seed", &value)) {
      options.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--runs", &value)) {
      options.runs = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--A", &value)) {
      options.allowance = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "--alpha", &value)) {
      options.alpha = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "--limit-ms", &value)) {
      options.limit_ms = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "--queue-limit", &value)) {
      options.queue_limit = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--max-util", &value)) {
      options.max_util = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "--deadline-ms", &value)) {
      options.deadline_ms = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "--discipline", &value)) {
      options.discipline = value;
    } else {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", argv[i]);
      options.help = true;
    }
  }
  return options;
}

void PrintHelp() {
  std::printf(
      "sim_cli — run one admission-control policy on the paper's Table 1 "
      "workload\n\n"
      "  --policy=bouncer|allowance|underserved|maxql|maxqwt|"
      "acceptfraction|always\n"
      "  --load=F          offered load as a multiple of full load "
      "(default 1.2)\n"
      "  --queries=N       arrivals per run (default 300000)\n"
      "  --warmup=N        arrivals excluded as warm-up (default 100000)\n"
      "  --runs=N          runs to average (default 1)\n"
      "  --seed=N          base RNG seed\n"
      "  --A=F             acceptance allowance (allowance policy)\n"
      "  --alpha=F         underserved scaling factor\n"
      "  --limit-ms=F      MaxQWT wait limit\n"
      "  --queue-limit=N   MaxQL length limit\n"
      "  --max-util=F      AcceptFraction utilization threshold\n"
      "  --deadline-ms=F   client deadline (0 = none)\n"
      "  --discipline=fifo|sjf\n");
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions options = ParseArgs(argc, argv);
  if (options.help) {
    PrintHelp();
    return 0;
  }

  PolicyConfig policy;
  policy.bouncer.histogram_swap_interval = 2 * kSecond;
  policy.bouncer.min_samples_to_publish = 30;
  if (options.policy == "bouncer") {
    policy.kind = PolicyKind::kBouncer;
  } else if (options.policy == "allowance") {
    policy.kind = PolicyKind::kBouncerWithAllowance;
    policy.allowance.allowance = options.allowance;
  } else if (options.policy == "underserved") {
    policy.kind = PolicyKind::kBouncerWithUnderserved;
    policy.underserved.alpha = options.alpha;
  } else if (options.policy == "maxql") {
    policy.kind = PolicyKind::kMaxQueueLength;
    policy.max_queue_length.length_limit = options.queue_limit;
  } else if (options.policy == "maxqwt") {
    policy.kind = PolicyKind::kMaxQueueWait;
    policy.max_queue_wait.wait_time_limit = FromMillis(options.limit_ms);
  } else if (options.policy == "acceptfraction") {
    policy.kind = PolicyKind::kAcceptFraction;
    policy.accept_fraction.max_utilization = options.max_util;
    policy.accept_fraction.window_duration = kSecond;
    policy.accept_fraction.window_step = 50 * kMillisecond;
    policy.accept_fraction.update_interval = 50 * kMillisecond;
  } else if (options.policy == "always") {
    policy.kind = PolicyKind::kAlwaysAccept;
  } else {
    std::fprintf(stderr, "unknown policy '%s'\n", options.policy.c_str());
    return 1;
  }

  const auto workload = workload::PaperSimulationWorkload();
  SimulationConfig config;
  config.parallelism = 100;
  config.arrival_rate_qps =
      options.load_factor * workload.FullLoadQps(config.parallelism);
  config.total_queries = options.queries;
  config.warmup_queries = options.warmup;
  config.seed = options.seed;
  config.deadline = FromMillis(options.deadline_ms);
  if (options.discipline == "sjf") {
    config.discipline = QueueDiscipline::kShortestJobFirst;
  } else if (options.discipline != "fifo") {
    std::fprintf(stderr, "unknown discipline '%s'\n",
                 options.discipline.c_str());
    return 1;
  }

  const auto result =
      RunAveraged(workload, config, policy, options.runs);

  std::printf("policy=%s load=%.2fx (%.0f QPS), %llu queries x %d run(s)\n\n",
              options.policy.c_str(), options.load_factor,
              config.arrival_rate_qps,
              static_cast<unsigned long long>(options.queries),
              options.runs);
  std::printf("%-14s %9s %8s %10s %10s %10s\n", "type", "received", "rej %",
              "rt_p50", "rt_p90", "rt_p99");
  for (const auto& type : result.per_type) {
    std::printf("%-14s %9llu %7.2f%% %8.2fms %8.2fms %8.2fms\n",
                type.name.c_str(),
                static_cast<unsigned long long>(type.received),
                type.rejection_pct, type.rt_p50_ms, type.rt_p90_ms,
                type.rt_p99_ms);
  }
  std::printf("%-14s %9llu %7.2f%% %8.2fms %8.2fms %8.2fms\n", "ALL",
              static_cast<unsigned long long>(result.overall.received),
              result.overall.rejection_pct, result.overall.rt_p50_ms,
              result.overall.rt_p90_ms, result.overall.rt_p99_ms);
  std::printf("\nutilization=%.3f", result.utilization);
  if (config.deadline > 0) {
    std::printf("  wasted_work=%.2f%%  expired=%llu",
                100.0 * result.wasted_work_fraction,
                static_cast<unsigned long long>(result.overall.expired));
  }
  std::printf("\n");
  return 0;
}
