// Command-line simulation driver: run any policy against the paper's
// Table 1 workload (or a custom SLO set) at a chosen load, straight from
// the shell — handy for exploring parameter spaces beyond the canned
// benches.
//
//   ./build/examples/sim_cli --policy=bouncer --load=1.3
//   ./build/examples/sim_cli --policy=allowance --load=1.5 --A=0.1
//   ./build/examples/sim_cli --policy=maxqwt --limit-ms=12 --queries=500000
//   ./build/examples/sim_cli --policy=bouncer --deadline-ms=100 --runs=3
//   ./build/examples/sim_cli --help

#include <cstdio>
#include <string>

#include "examples/flags.h"
#include "src/sim/experiment.h"

using namespace bouncer;
using namespace bouncer::sim;

namespace {

void PrintHelp() {
  std::printf(
      "sim_cli — run one admission-control policy on the paper's Table 1 "
      "workload\n\n"
      "  --policy=bouncer|allowance|underserved|maxql|maxqwt|"
      "acceptfraction|always\n"
      "  --load=F          offered load as a multiple of full load "
      "(default 1.2)\n"
      "  --queries=N       arrivals per run (default 300000)\n"
      "  --warmup=N        arrivals excluded as warm-up (default 100000)\n"
      "  --runs=N          runs to average (default 1)\n"
      "  --seed=N          base RNG seed\n"
      "  --A=F             acceptance allowance (allowance policy)\n"
      "  --alpha=F         underserved scaling factor\n"
      "  --limit-ms=F      MaxQWT wait limit\n"
      "  --queue-limit=N   MaxQL length limit\n"
      "  --max-util=F      AcceptFraction utilization threshold\n"
      "  --deadline-ms=F   client deadline (0 = none)\n"
      "  --discipline=fifo|sjf\n");
}

}  // namespace

int main(int argc, char** argv) {
  examples::CliFlags flags(argc, argv);
  const std::string policy_name = flags.GetString("policy", "bouncer");
  const double load_factor = flags.GetDouble("load", 1.2);
  const uint64_t queries = flags.GetUint("queries", 300'000);
  const uint64_t warmup = flags.GetUint("warmup", 100'000);
  const uint64_t seed = flags.GetUint("seed", 1);
  const int runs = static_cast<int>(flags.GetInt("runs", 1));
  const double allowance = flags.GetDouble("A", 0.05);
  const double alpha = flags.GetDouble("alpha", 1.0);
  const double limit_ms = flags.GetDouble("limit-ms", 15.0);
  const uint64_t queue_limit = flags.GetUint("queue-limit", 400);
  const double max_util = flags.GetDouble("max-util", 0.95);
  const double deadline_ms = flags.GetDouble("deadline-ms", 0.0);
  const std::string discipline = flags.GetString("discipline", "fifo");
  bool help = flags.help();
  for (const auto& flag : flags.Unknown()) {
    std::fprintf(stderr, "unknown flag: %s (try --help)\n", flag.c_str());
    help = true;
  }
  if (help) {
    PrintHelp();
    return 0;
  }

  PolicyConfig policy;
  policy.bouncer.histogram_swap_interval = 2 * kSecond;
  policy.bouncer.min_samples_to_publish = 30;
  if (policy_name == "bouncer") {
    policy.kind = PolicyKind::kBouncer;
  } else if (policy_name == "allowance") {
    policy.kind = PolicyKind::kBouncerWithAllowance;
    policy.allowance.allowance = allowance;
  } else if (policy_name == "underserved") {
    policy.kind = PolicyKind::kBouncerWithUnderserved;
    policy.underserved.alpha = alpha;
  } else if (policy_name == "maxql") {
    policy.kind = PolicyKind::kMaxQueueLength;
    policy.max_queue_length.length_limit = queue_limit;
  } else if (policy_name == "maxqwt") {
    policy.kind = PolicyKind::kMaxQueueWait;
    policy.max_queue_wait.wait_time_limit = FromMillis(limit_ms);
  } else if (policy_name == "acceptfraction") {
    policy.kind = PolicyKind::kAcceptFraction;
    policy.accept_fraction.max_utilization = max_util;
    policy.accept_fraction.window_duration = kSecond;
    policy.accept_fraction.window_step = 50 * kMillisecond;
    policy.accept_fraction.update_interval = 50 * kMillisecond;
  } else if (policy_name == "always") {
    policy.kind = PolicyKind::kAlwaysAccept;
  } else {
    std::fprintf(stderr, "unknown policy '%s'\n", policy_name.c_str());
    return 1;
  }

  const auto workload = workload::PaperSimulationWorkload();
  SimulationConfig config;
  config.parallelism = 100;
  config.arrival_rate_qps =
      load_factor * workload.FullLoadQps(config.parallelism);
  config.total_queries = queries;
  config.warmup_queries = warmup;
  config.seed = seed;
  config.deadline = FromMillis(deadline_ms);
  if (discipline == "sjf") {
    config.discipline = QueueDiscipline::kShortestJobFirst;
  } else if (discipline != "fifo") {
    std::fprintf(stderr, "unknown discipline '%s'\n", discipline.c_str());
    return 1;
  }

  const auto result = RunAveraged(workload, config, policy, runs);

  std::printf("policy=%s load=%.2fx (%.0f QPS), %llu queries x %d run(s)\n\n",
              policy_name.c_str(), load_factor, config.arrival_rate_qps,
              static_cast<unsigned long long>(queries), runs);
  std::printf("%-14s %9s %8s %10s %10s %10s\n", "type", "received", "rej %",
              "rt_p50", "rt_p90", "rt_p99");
  for (const auto& type : result.per_type) {
    std::printf("%-14s %9llu %7.2f%% %8.2fms %8.2fms %8.2fms\n",
                type.name.c_str(),
                static_cast<unsigned long long>(type.received),
                type.rejection_pct, type.rt_p50_ms, type.rt_p90_ms,
                type.rt_p99_ms);
  }
  std::printf("%-14s %9llu %7.2f%% %8.2fms %8.2fms %8.2fms\n", "ALL",
              static_cast<unsigned long long>(result.overall.received),
              result.overall.rejection_pct, result.overall.rt_p50_ms,
              result.overall.rt_p90_ms, result.overall.rt_p99_ms);
  std::printf("\nutilization=%.3f", result.utilization);
  if (config.deadline > 0) {
    std::printf("  wasted_work=%.2f%%  expired=%llu",
                100.0 * result.wasted_work_fraction,
                static_cast<unsigned long long>(result.overall.expired));
  }
  std::printf("\n");
  return 0;
}
