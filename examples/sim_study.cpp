// Simulation study in miniature: compares every admission-control policy
// on the paper's Table 1 workload at three traffic levels using the
// discrete-event simulator, and prints SLO compliance, rejections, and
// utilization side by side — the quickest way to see why percentile-SLO
// admission control differs from queue- and utilization-centric shedding.
//
//   ./build/examples/sim_study

#include <cstdio>
#include <string>

#include "src/sim/experiment.h"

using namespace bouncer;
using namespace bouncer::sim;

int main() {
  const auto workload = workload::PaperSimulationWorkload();
  SimulationConfig config;
  config.parallelism = 100;
  config.total_queries = 250'000;
  config.warmup_queries = 100'000;
  config.seed = 7;

  PolicyConfig policies[6];
  policies[0].kind = PolicyKind::kBouncer;
  policies[1].kind = PolicyKind::kBouncerWithAllowance;
  policies[1].allowance.allowance = 0.05;
  policies[2].kind = PolicyKind::kBouncerWithUnderserved;
  policies[3].kind = PolicyKind::kMaxQueueLength;
  policies[3].max_queue_length.length_limit = 400;
  policies[4].kind = PolicyKind::kMaxQueueWait;
  policies[4].max_queue_wait.wait_time_limit = 15 * kMillisecond;
  policies[5].kind = PolicyKind::kAcceptFraction;
  policies[5].accept_fraction.window_duration = kSecond;
  policies[5].accept_fraction.window_step = 50 * kMillisecond;
  policies[5].accept_fraction.update_interval = 50 * kMillisecond;
  for (auto& p : policies) {
    p.bouncer.histogram_swap_interval = 2 * kSecond;
    p.bouncer.min_samples_to_publish = 30;
  }

  const double full_load = workload.FullLoadQps(config.parallelism);
  std::printf("Workload: paper Table 1 (4 types, lognormal); "
              "SLO p50=18ms p90=50ms; full load = %.0f QPS\n\n",
              full_load);

  for (double factor : {0.95, 1.2, 1.5}) {
    config.arrival_rate_qps = factor * full_load;
    std::printf("=== offered load %.2fx full load (%.0f QPS) ===\n", factor,
                config.arrival_rate_qps);
    std::printf("%-28s %12s %12s %10s %12s\n", "policy", "slow rt_p50",
                "slow rt_p90", "rej %", "utilization");
    for (const PolicyConfig& policy : policies) {
      Simulator simulator(workload, config, policy);
      const SimulationResult result = simulator.Run();
      std::printf("%-28s %10.2fms %10.2fms %9.2f%% %12.3f\n",
                  std::string(simulator.policy()->name()).c_str(),
                  result.per_type[3].rt_p50_ms, result.per_type[3].rt_p90_ms,
                  result.overall.rejection_pct, result.utilization);
    }
    std::printf("\n");
  }
  std::printf("Reading: only the Bouncer family keeps the slow type inside "
              "its SLO under overload,\nwhile also rejecting the fewest "
              "queries overall.\n");
  return 0;
}
