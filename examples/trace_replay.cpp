// Operations-flavoured walkthrough: configure SLOs from the paper's text
// notation, record a traffic trace to a file (the synthetic equivalent
// of sampling production queries, §5.4), then replay it — at recorded
// speed and again at 2x, the way live load tests replay sampled traffic
// at multiples — against a Bouncer-guarded stage.
//
//   ./build/examples/trace_replay

#include <chrono>
#include <cstdio>
#include <thread>

#include "src/core/policy_factory.h"
#include "src/core/slo_config.h"
#include "src/server/metrics_collector.h"
#include "src/server/stage.h"
#include "src/workload/trace.h"

using namespace bouncer;

int main() {
  // 1. SLOs in the paper's configuration notation (§3).
  QueryTypeRegistry registry;
  const Status parsed = ParseSloConfig(
      R"("Lookup":{p50=8ms, p90=25ms},
         "Aggregate":{p50=40ms, p90=120ms},
         "default":{p50=30ms, p90=400ms})",
      &registry);
  if (!parsed.ok()) {
    std::fprintf(stderr, "config error: %s\n", parsed.ToString().c_str());
    return 1;
  }
  std::printf("configured SLOs:\n%s\n\n",
              FormatSloConfig(registry).c_str());

  // 2. Record a trace: 2 s of Poisson traffic, 70/30 Lookup/Aggregate.
  workload::WorkloadSpec mix(
      {workload::QueryTypeSpec::FromMillis("Lookup", 0.7, 2.0, 1.5,
                                           registry.GetSlo(1)),
       workload::QueryTypeSpec::FromMillis("Aggregate", 0.3, 15.0, 11.0,
                                           registry.GetSlo(2))});
  const auto trace =
      workload::QueryTrace::Synthesize(mix, 250.0, 2 * kSecond, 42, 1'000);
  const std::string path = "/tmp/bouncer_example_trace.txt";
  if (Status s = trace.SaveToFile(path); !s.ok()) {
    std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("recorded %zu queries (%.0f QPS avg) to %s\n", trace.size(),
              trace.AverageQps(), path.c_str());

  // 3. Load it back and replay against a Bouncer-guarded stage.
  auto loaded = workload::QueryTrace::LoadFromFile(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }

  PolicyConfig policy;
  policy.kind = PolicyKind::kBouncerWithAllowance;
  policy.bouncer.histogram_swap_interval = 250 * kMillisecond;
  policy.allowance.allowance = 0.03;
  server::MetricsCollector metrics(registry.size());
  Rng service_rng(7);
  std::mutex rng_mu;
  auto stage_or =
      server::StageBuilder()
          .SetRegistry(&registry)
          .SetPolicyConfig(policy)
          .SetOptions({.name = "replay-target", .num_workers = 4})
          .SetHandler([&](server::WorkItem& item) {
            // Service time drawn from the type's recorded distribution.
            const auto& spec = mix.type(item.type - 1);
            Nanos pt;
            {
              std::lock_guard<std::mutex> lock(rng_mu);
              pt = static_cast<Nanos>(service_rng.NextLogNormal(
                  spec.processing_time.mu, spec.processing_time.sigma));
            }
            std::this_thread::sleep_for(std::chrono::nanoseconds(pt));
          })
          .Build();
  server::Stage& stage = **stage_or;
  (void)stage.Start();

  for (double speed : {1.0, 2.0}) {
    metrics.Reset();
    workload::TraceReplayer replayer(
        &*loaded, {.speed = speed},
        [&](const workload::TraceRecord& record) {
          server::WorkItem item;
          // Trace type index -> registry id (Lookup=1, Aggregate=2).
          item.type = static_cast<QueryTypeId>(record.type_index + 1);
          item.on_complete = [&](const server::WorkItem& w,
                                 server::Outcome outcome) {
            metrics.Record(w, outcome);
          };
          stage.Submit(std::move(item));
        });
    const uint64_t sent = replayer.Run();
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    const auto overall = metrics.Overall();
    const auto aggregate = metrics.Report(2);
    std::printf("replay at %.0fx: sent %llu, rejected %.1f%%, "
                "Aggregate rt_p50 %.1fms (SLO 40ms)\n",
                speed, static_cast<unsigned long long>(sent),
                overall.rejection_pct, aggregate.rt_p50_ms);
  }
  stage.Stop(false);
  std::remove(path.c_str());
  std::printf("\nAt 2x replay speed the offered load exceeds the stage's "
              "capacity; Bouncer sheds the\noverflow while serviced "
              "queries keep tracking their configured SLOs.\n");
  return 0;
}
