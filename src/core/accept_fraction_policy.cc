#include "src/core/accept_fraction_policy.h"

#include <algorithm>

namespace bouncer {

AcceptFractionPolicy::AcceptFractionPolicy(const PolicyContext& context,
                                           const Options& options)
    : queue_(context.queue),
      processing_units_(options.processing_units != 0
                            ? options.processing_units
                            : std::max<size_t>(context.parallelism, 1)),
      options_(options),
      qps_mavg_(options.window_duration, options.window_step),
      pt_mavg_(options.window_duration, options.window_step),
      fraction_(1.0),
      next_update_(0),
      rng_(options.seed) {}

void AcceptFractionPolicy::MaybeUpdateFraction(Nanos now) {
  Nanos next = next_update_.load(std::memory_order_acquire);
  if (now < next) return;
  if (!next_update_.compare_exchange_strong(next,
                                            now + options_.update_interval,
                                            std::memory_order_acq_rel)) {
    return;
  }
  // Available capacity is fixed: APC = MaxUtil * |PU|. Demanded capacity:
  // dpc = qps_mavg * pt_mavg, with pt in seconds so dpc is in processing
  // units. Standard floating-point semantics give f = min(1, inf) = 1
  // when dpc == 0 (paper footnote 6).
  const double apc =
      options_.max_utilization * static_cast<double>(processing_units_);
  qps_mavg_.AdvanceTo(now);
  const double qps = qps_mavg_.RatePerSecond(now);
  const double pt_seconds = pt_mavg_.Mean(0.0) / static_cast<double>(kSecond);
  const double dpc = qps * pt_seconds;
  const double f = std::min(1.0, apc / dpc);  // dpc==0 -> inf -> 1.0.
  fraction_.store(f, std::memory_order_relaxed);
}

Nanos AcceptFractionPolicy::EstimateQueueWait(Nanos now) {
  pt_mavg_.AdvanceTo(now);
  const double mavg = pt_mavg_.Mean(0.0);
  const double l = static_cast<double>(queue_->TotalLength());
  return static_cast<Nanos>(l * mavg /
                            static_cast<double>(processing_units_));
}

Decision AcceptFractionPolicy::Decide(WorkKey /*key*/, Nanos now) {
  qps_mavg_.RecordEvent(now);
  MaybeUpdateFraction(now);

  if (options_.queue_length_limit > 0 &&
      queue_->TotalLength() >= options_.queue_length_limit) {
    return Decision::kReject;
  }
  if (options_.queue_timeout > 0 &&
      EstimateQueueWait(now) > options_.queue_timeout) {
    return Decision::kReject;
  }

  const double f = fraction_.load(std::memory_order_relaxed);
  if (f >= 1.0) return Decision::kAccept;
  bool accept = false;
  {
    std::lock_guard<std::mutex> lock(rng_mu_);
    accept = rng_.NextBernoulli(f);
  }
  return accept ? Decision::kAccept : Decision::kReject;
}

}  // namespace bouncer
