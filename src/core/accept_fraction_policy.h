#ifndef BOUNCER_CORE_ACCEPT_FRACTION_POLICY_H_
#define BOUNCER_CORE_ACCEPT_FRACTION_POLICY_H_

#include <atomic>
#include <mutex>

#include "src/core/admission_policy.h"
#include "src/stats/sliding_window_mean.h"
#include "src/util/rng.h"

namespace bouncer {

/// Acceptance-fraction (AcceptFraction) capacity-centric policy (paper
/// §5.2.3). Periodically computes the fraction of incoming queries the
/// host should accept,
///   f = min(1.0, MaxUtil × |PU| / (qps_mavg × pt_mavg)),
/// where the numerator is the fixed available processing capacity and the
/// denominator the demanded capacity from moving averages of arrival rate
/// and processing time, then accepts queries with probability f.
///
/// The LIquid variant (§5.4, footnote 8) also rejects queries expected to
/// time out in the queue (Eq. 5 estimate vs. `queue_timeout`) and enforces
/// a maximum queue length; both guards are optional here (0 disables).
class AcceptFractionPolicy final : public AdmissionPolicy {
 public:
  struct Options {
    double max_utilization = 0.95;   ///< MaxUtil in (0, 1].
    /// |PU|: processing units for query processing. 0 means "use the
    /// context's parallelism".
    size_t processing_units = 0;
    Nanos update_interval = kSecond;       ///< dpc/f recompute period.
    Nanos window_duration = 60 * kSecond;  ///< D for both moving averages.
    Nanos window_step = kSecond;           ///< Δ.
    Nanos queue_timeout = 0;         ///< Reject if ewt exceeds this (0 = off).
    uint64_t queue_length_limit = 0;  ///< L_limit (0 = off).
    uint64_t seed = 0x5eed3ULL;      ///< RNG seed for probabilistic drops.
  };

  AcceptFractionPolicy(const PolicyContext& context, const Options& options);

  Decision Decide(WorkKey key, Nanos now) override;

  void OnCompleted(WorkKey /*key*/, Nanos processing_time,
                   Nanos now) override {
    pt_mavg_.Record(processing_time, now);
  }

  std::string_view name() const override { return "AcceptFraction"; }

  /// Currently effective acceptance fraction f.
  double CurrentFraction() const {
    return fraction_.load(std::memory_order_relaxed);
  }

  /// Eq. 5 estimate with P = |PU| (used for the timeout guard).
  Nanos EstimateQueueWait(Nanos now);

  const Options& options() const { return options_; }

 private:
  void MaybeUpdateFraction(Nanos now);

  const QueueState* const queue_;
  const size_t processing_units_;
  const Options options_;

  stats::SlidingWindowMean qps_mavg_;  ///< Arrival events; rate per second.
  stats::SlidingWindowMean pt_mavg_;   ///< Processing-time samples (ns).

  std::atomic<double> fraction_;
  std::atomic<Nanos> next_update_;
  std::mutex rng_mu_;
  Rng rng_;
};

}  // namespace bouncer

#endif  // BOUNCER_CORE_ACCEPT_FRACTION_POLICY_H_
