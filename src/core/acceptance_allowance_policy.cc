#include "src/core/acceptance_allowance_policy.h"

#include <cassert>

namespace bouncer {

AcceptanceAllowancePolicy::AcceptanceAllowancePolicy(
    std::unique_ptr<AdmissionPolicy> inner, size_t num_types,
    const Options& options, size_t num_stripes)
    : inner_(std::move(inner)),
      options_(options),
      window_(num_types, options.window_duration, options.window_step,
              num_stripes),
      rng_(options.seed) {
  assert(inner_ != nullptr);
  name_ = std::string(inner_->name()) + "+AcceptanceAllowance";
}

Decision AcceptanceAllowancePolicy::Decide(WorkKey key, Nanos now) {
  window_.AdvanceTo(now);
  const uint64_t aqc = window_.AcceptedCount(key.type);
  const uint64_t rqc = window_.ReceivedCount(key.type);

  Decision decision = Decision::kReject;
  if (rqc == 0) {
    // No history in the window: the type may be starving or new — let it in.
    decision = Decision::kAccept;
  } else {
    const double acceptance_ratio =
        static_cast<double>(aqc) / static_cast<double>(rqc);
    if (acceptance_ratio < options_.allowance) decision = Decision::kAccept;
  }

  if (decision == Decision::kReject) {
    decision = inner_->Decide(key, now);  // Ask the policy.
  }

  if (decision == Decision::kReject) {
    // On-the-spot override with probability A.
    bool pass = false;
    {
      std::lock_guard<std::mutex> lock(rng_mu_);
      pass = rng_.NextBernoulli(options_.allowance);
    }
    if (pass) decision = Decision::kAccept;
  }

  window_.Record(key.type, decision == Decision::kAccept, now);
  return decision;
}

}  // namespace bouncer
