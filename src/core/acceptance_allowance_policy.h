#ifndef BOUNCER_CORE_ACCEPTANCE_ALLOWANCE_POLICY_H_
#define BOUNCER_CORE_ACCEPTANCE_ALLOWANCE_POLICY_H_

#include <memory>
#include <mutex>
#include <string>

#include "src/core/admission_policy.h"
#include "src/stats/sliding_window_counter.h"
#include "src/util/rng.h"

namespace bouncer {

/// Acceptance-allowance starvation-avoidance strategy (paper §4.1,
/// Alg. 2), wrapped around an inner policy (normally Bouncer).
///
/// A sliding window (duration D, step Δ, D >> Δ) tracks per-type accepted
/// and received counts. A query is accepted outright when its type has no
/// history in the window or its acceptance ratio has fallen below the
/// allowance A; otherwise the inner policy decides; an inner rejection is
/// finally overridden "on the spot" with probability A. Setting A = 0.01
/// grants free passes to up to ~1% of each type's queries over the window,
/// guaranteeing every type some service and keeping Bouncer's histograms
/// populated.
class AcceptanceAllowancePolicy final : public AdmissionPolicy {
 public:
  struct Options {
    double allowance = 0.01;            ///< A in [0, 1]; expected 0.01–0.03.
    Nanos window_duration = kSecond;    ///< D.
    Nanos window_step = 10 * kMillisecond;  ///< Δ.
    uint64_t seed = 0x5eedULL;          ///< RNG seed for the on-the-spot pass.
  };

  /// `inner` must be non-null; `num_types` is the registry size.
  /// `num_stripes` stripes the allowance window's counters by writer
  /// affinity (pass the stage's PolicyContext::counter_stripes).
  AcceptanceAllowancePolicy(std::unique_ptr<AdmissionPolicy> inner,
                            size_t num_types, const Options& options,
                            size_t num_stripes = 1);

  Decision Decide(WorkKey key, Nanos now) override;
  void OnEnqueued(WorkKey key, Nanos now) override {
    inner_->OnEnqueued(key, now);
  }
  void OnRejected(WorkKey key, Nanos now) override {
    inner_->OnRejected(key, now);
  }
  void OnDequeued(WorkKey key, Nanos wait_time, Nanos now) override {
    inner_->OnDequeued(key, wait_time, now);
  }
  void OnCompleted(WorkKey key, Nanos processing_time,
                   Nanos now) override {
    inner_->OnCompleted(key, processing_time, now);
  }
  /// The runtime dropped a query Decide() counted as accepted: retract
  /// the accept from the allowance window so the type's acceptance ratio
  /// (and with it future free passes) reflects what was actually served.
  void OnShedded(WorkKey key, Nanos now) override {
    window_.UndoAccepted(key.type, now);
    inner_->OnShedded(key, now);
  }

  Nanos EstimatedQueueWait(WorkKey key) const override {
    return inner_->EstimatedQueueWait(key);
  }

  std::string_view name() const override { return name_; }

  /// The wrapped policy.
  AdmissionPolicy* inner() { return inner_.get(); }

  /// Acceptance ratio currently observed for `type` (1.0 when no history).
  double AcceptanceRatio(QueryTypeId type) const {
    return window_.AcceptanceRatio(type);
  }

  const Options& options() const { return options_; }

 private:
  std::unique_ptr<AdmissionPolicy> inner_;
  const Options options_;
  std::string name_;
  stats::SlidingWindowCounter window_;
  std::mutex rng_mu_;
  Rng rng_;
};

}  // namespace bouncer

#endif  // BOUNCER_CORE_ACCEPTANCE_ALLOWANCE_POLICY_H_
