#ifndef BOUNCER_CORE_ADMISSION_POLICY_H_
#define BOUNCER_CORE_ADMISSION_POLICY_H_

#include <string_view>

#include "src/core/query_type_registry.h"
#include "src/core/tenant_registry.h"
#include "src/core/queue_state.h"
#include "src/core/types.h"
#include "src/util/time.h"

namespace bouncer {

/// Dependencies a policy needs from the admission-control framework
/// (paper Fig. 1): the query-type registry with SLOs, the live queue
/// occupancy maintained by the runtime, and the level of task parallelism
/// P (number of query engine processes). All pointers outlive the policy.
struct PolicyContext {
  const QueryTypeRegistry* registry = nullptr;
  const QueueState* queue = nullptr;
  size_t parallelism = 1;  ///< P: number of query engine processes.
  /// Writer-affinity stripes for the policy's own hot-path counters
  /// (Eq. 2 aggregates, sliding windows). A sharded stage passes its
  /// run-queue count so admission bookkeeping stays single-writer per
  /// cache line; 1 keeps the exact shared-counter layout.
  size_t counter_stripes = 1;
  /// Tenant interner shared by every stage of a deployment; null means
  /// the stage runs single-tenant (everything charges kDefaultTenant).
  /// Policies that keep per-tenant state (TenantFairPolicy) require it.
  const TenantRegistry* tenants = nullptr;
};

/// Interface of an admission-control policy plugged into the SEDA-like
/// stage of paper Fig. 1. The runtime calls Decide() on query arrival and
/// the On*() hooks at the framework's metric points:
///
///   Point 1 — after the admission/rejection decision: OnEnqueued() for
///             accepted queries, OnRejected() for dropped ones;
///   Point 2 — after a query is dequeued for processing: OnDequeued(),
///             which carries the observed queue wait time;
///   Point 3 — after processing finishes: OnCompleted(), which carries the
///             observed processing time.
///
/// Every entry point takes the current time explicitly so the same policy
/// object runs unchanged under simulated and real clocks. Implementations
/// must be thread-safe: a server stage calls Decide() from acceptor
/// threads concurrently with hooks from worker threads.
///
/// Entry points key on a WorkKey — the (query type, tenant) pair. WorkKey
/// converts implicitly from a bare QueryTypeId, so single-tenant callers
/// keep passing a type and charge kDefaultTenant; type-keyed policies
/// read `key.type` and ignore the tenant.
class AdmissionPolicy {
 public:
  virtual ~AdmissionPolicy() = default;

  /// Decides whether to admit an incoming query of `key` arriving at
  /// `now`. Called on the query's critical path; must be cheap.
  virtual Decision Decide(WorkKey key, Nanos now) = 0;

  /// Point 1, accepted branch: the query was placed in the FIFO queue.
  virtual void OnEnqueued(WorkKey key, Nanos now) {
    (void)key;
    (void)now;
  }

  /// Point 1, rejected branch: the query was dropped and an error response
  /// is being returned.
  virtual void OnRejected(WorkKey key, Nanos now) {
    (void)key;
    (void)now;
  }

  /// Point 2: the query was pulled from the queue after waiting
  /// `wait_time` (wt(Q) = t_dequeued - t_enqueued).
  virtual void OnDequeued(WorkKey key, Nanos wait_time, Nanos now) {
    (void)key;
    (void)wait_time;
    (void)now;
  }

  /// An admitted query was dropped before processing: the runtime could
  /// not (or will not) serve a query that Decide() accepted — the bounded
  /// queue was full at submit time, or queued work was discarded at stage
  /// shutdown. Called after OnEnqueued() and instead of OnDequeued()/
  /// OnCompleted(), so policies can roll back accept/enqueue accounting
  /// (acceptance-allowance windows, incremental queue-wait aggregates)
  /// that would otherwise silently desync from reality.
  virtual void OnShedded(WorkKey key, Nanos now) {
    (void)key;
    (void)now;
  }

  /// Point 3: the query finished processing after `processing_time`
  /// (pt(Q) = t_completed - t_dequeued).
  virtual void OnCompleted(WorkKey key, Nanos processing_time,
                           Nanos now) {
    (void)key;
    (void)processing_time;
    (void)now;
  }

  /// The policy's current queue-wait estimate for `type` (Eq. 2 for
  /// Bouncer-family policies), for observability: stages stamp it on
  /// admitted work so the estimate can be compared against the wait the
  /// query actually incurs. Returns -1 when the policy maintains no
  /// estimate. Must be cheap and thread-safe like Decide().
  virtual Nanos EstimatedQueueWait(WorkKey key) const {
    (void)key;
    return -1;
  }

  /// Short stable policy name for reports ("Bouncer", "MaxQL", ...).
  virtual std::string_view name() const = 0;
};

/// Policy that admits every query; the no-admission-control baseline.
class AlwaysAcceptPolicy final : public AdmissionPolicy {
 public:
  Decision Decide(WorkKey, Nanos) override { return Decision::kAccept; }
  std::string_view name() const override { return "AlwaysAccept"; }
};

}  // namespace bouncer

#endif  // BOUNCER_CORE_ADMISSION_POLICY_H_
