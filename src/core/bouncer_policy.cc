#include "src/core/bouncer_policy.h"

#include <cassert>

namespace bouncer {

BouncerPolicy::BouncerPolicy(const PolicyContext& context,
                             const Options& options)
    : registry_(context.registry),
      queue_(context.queue),
      parallelism_(context.parallelism == 0 ? 1 : context.parallelism),
      options_(options),
      general_histogram_(stats::DualHistogram::Options{
          options.histogram_swap_interval, options.min_samples_to_publish}) {
  assert(registry_ != nullptr && queue_ != nullptr);
  const stats::DualHistogram::Options histo_options{
      options.histogram_swap_interval, options.min_samples_to_publish};
  type_histograms_.reserve(registry_->size());
  for (size_t i = 0; i < registry_->size(); ++i) {
    type_histograms_.push_back(
        std::make_unique<stats::DualHistogram>(histo_options));
  }
}

void BouncerPolicy::MaybeSwapAll(Nanos now) {
  // The general histogram's timer paces all swaps, so the common case
  // costs one atomic load; the per-type buffers swap in lockstep with it.
  if (general_histogram_.MaybeSwap(now)) {
    for (auto& h : type_histograms_) h->ForceSwap();
  }
}

void BouncerPolicy::ForceHistogramSwap() {
  general_histogram_.ForceSwap();
  for (auto& h : type_histograms_) h->ForceSwap();
}

Nanos BouncerPolicy::EstimateQueueWait(QueryTypeId type) const {
  // Eq. 2: ewt_mean = sum_type(count(type) * pt_mean(type)) / P. With
  // priorities configured, only work served at or ahead of `type`'s
  // priority level contributes.
  const bool priority_aware = !options_.type_priorities.empty();
  const auto priority_of = [this](size_t t) {
    return t < options_.type_priorities.size() ? options_.type_priorities[t]
                                               : 0;
  };
  const int own_priority =
      priority_aware ? priority_of(type) : 0;
  int64_t weighted_sum = 0;
  const stats::HistogramSummary general = general_histogram_.ReadSummary();
  for (size_t t = 0; t < type_histograms_.size(); ++t) {
    if (priority_aware && priority_of(t) > own_priority) continue;
    const uint64_t count =
        queue_->CountForType(static_cast<QueryTypeId>(t));
    if (count == 0) continue;
    stats::HistogramSummary s = type_histograms_[t]->ReadSummary();
    // Types still cold contribute via the general histogram's mean so the
    // wait estimate does not silently drop their queued work.
    const Nanos mean = s.count >= options_.warmup_min_samples
                           ? s.mean
                           : general.mean;
    weighted_sum += static_cast<int64_t>(count) * mean;
  }
  return weighted_sum / static_cast<int64_t>(parallelism_);
}

BouncerPolicy::Estimates BouncerPolicy::EstimateFor(QueryTypeId type,
                                                    Nanos now) const {
  (void)now;
  Estimates e;
  if (type >= type_histograms_.size()) type = kDefaultQueryType;
  stats::HistogramSummary s = type_histograms_[type]->ReadSummary();
  e.cold = s.count < options_.warmup_min_samples;
  if (e.cold && options_.cold_start_mode == ColdStartMode::kGeneralHistogram) {
    s = general_histogram_.ReadSummary();
  }
  e.ewt_mean = EstimateQueueWait(type);
  e.ert_p50 = e.ewt_mean + s.p50;  // Eq. 3.
  e.ert_p90 = e.ewt_mean + s.p90;  // Eq. 4.
  e.ert_p99 = e.ewt_mean + s.p99;
  return e;
}

Decision BouncerPolicy::DecideWithEstimates(QueryTypeId type, Nanos now,
                                            Estimates* out) {
  if (type >= type_histograms_.size()) type = kDefaultQueryType;
  stats::HistogramSummary s = type_histograms_[type]->ReadSummary();
  const bool cold = s.count < options_.warmup_min_samples;
  const Slo* slo = &registry_->GetSlo(type);
  if (cold) {
    switch (options_.cold_start_mode) {
      case ColdStartMode::kAcceptAll:
        if (out != nullptr) {
          out->cold = true;
          out->ewt_mean = 0;
        }
        return Decision::kAccept;
      case ColdStartMode::kGeneralHistogram: {
        // Appendix A: decide from the general histogram under the default
        // (catch-all) type's SLO. If even that is empty, there is nothing
        // to reject on — let the query in to populate the histograms.
        const stats::HistogramSummary general =
            general_histogram_.ReadSummary();
        if (general.empty()) {
          if (out != nullptr) out->cold = true;
          return Decision::kAccept;
        }
        s = general;
        slo = &registry_->GetSlo(kDefaultQueryType);
        break;
      }
      case ColdStartMode::kNone:
        break;  // Proceed with the (possibly empty) type summary.
    }
  }

  const Nanos ewt = EstimateQueueWait(type);
  const Nanos ert_p50 = ewt + s.p50;
  const Nanos ert_p90 = ewt + s.p90;
  const Nanos ert_p99 = ewt + s.p99;
  if (out != nullptr) {
    out->ewt_mean = ewt;
    out->ert_p50 = ert_p50;
    out->ert_p90 = ert_p90;
    out->ert_p99 = ert_p99;
    out->cold = cold;
  }

  // Alg. 1 and its alternative expressions.
  bool reject = false;
  switch (options_.decision_expr) {
    case DecisionExpr::kP50OrP90:
      reject = ert_p50 > slo->p50 || ert_p90 > slo->p90;
      break;
    case DecisionExpr::kP50Only:
      reject = ert_p50 > slo->p50;
      break;
    case DecisionExpr::kP90Only:
      reject = ert_p90 > slo->p90;
      break;
    case DecisionExpr::kP50OrP90OrP99:
      reject = ert_p50 > slo->p50 || ert_p90 > slo->p90 ||
               (slo->p99 > 0 && ert_p99 > slo->p99);
      break;
  }
  (void)now;
  return reject ? Decision::kReject : Decision::kAccept;
}

Decision BouncerPolicy::Decide(QueryTypeId type, Nanos now) {
  MaybeSwapAll(now);
  return DecideWithEstimates(type, now, nullptr);
}

void BouncerPolicy::OnCompleted(QueryTypeId type, Nanos processing_time,
                                Nanos now) {
  if (type >= type_histograms_.size()) type = kDefaultQueryType;
  type_histograms_[type]->Record(processing_time);
  general_histogram_.Record(processing_time);
  MaybeSwapAll(now);
}

stats::HistogramSummary BouncerPolicy::TypeSummary(QueryTypeId type) const {
  if (type >= type_histograms_.size()) type = kDefaultQueryType;
  return type_histograms_[type]->ReadSummary();
}

stats::HistogramSummary BouncerPolicy::GeneralSummary() const {
  return general_histogram_.ReadSummary();
}

}  // namespace bouncer
