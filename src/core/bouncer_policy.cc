#include "src/core/bouncer_policy.h"

#include <algorithm>
#include <cassert>

#include "src/util/stripe.h"

namespace bouncer {

BouncerPolicy::BouncerPolicy(const PolicyContext& context,
                             const Options& options)
    : registry_(context.registry),
      queue_(context.queue),
      parallelism_(context.parallelism == 0 ? 1 : context.parallelism),
      stripes_(context.counter_stripes == 0 ? 1 : context.counter_stripes),
      options_(options),
      general_histogram_(stats::DualHistogram::Options{
          options.histogram_swap_interval, options.min_samples_to_publish}) {
  assert(registry_ != nullptr && queue_ != nullptr);
  const stats::DualHistogram::Options histo_options{
      options.histogram_swap_interval, options.min_samples_to_publish};
  const size_t num_types = registry_->size();
  type_histograms_.reserve(num_types);
  for (size_t i = 0; i < num_types; ++i) {
    type_histograms_.push_back(
        std::make_unique<stats::DualHistogram>(histo_options));
  }

  // Map each type to its priority level. Under FIFO everything lands in
  // one level, so the hot path reads a single aggregate.
  const auto priority_of = [this](size_t t) {
    return t < options_.type_priorities.size() ? options_.type_priorities[t]
                                               : 0;
  };
  for (size_t t = 0; t < num_types; ++t) {
    sorted_levels_.push_back(priority_of(t));
  }
  std::sort(sorted_levels_.begin(), sorted_levels_.end());
  sorted_levels_.erase(
      std::unique(sorted_levels_.begin(), sorted_levels_.end()),
      sorted_levels_.end());
  if (sorted_levels_.empty()) sorted_levels_.push_back(0);
  level_of_type_.resize(num_types, 0);
  for (size_t t = 0; t < num_types; ++t) {
    level_of_type_[t] = static_cast<size_t>(
        std::lower_bound(sorted_levels_.begin(), sorted_levels_.end(),
                         priority_of(t)) -
        sorted_levels_.begin());
  }
  level_aggs_ =
      std::make_unique<LevelAggregate[]>(sorted_levels_.size() * stripes_);
  type_cache_ = std::make_unique<TypeCache[]>(num_types);
  tracked_total_ = std::make_unique<TrackedCount[]>(stripes_);
  RebuildAggregates();
}

void BouncerPolicy::MaybeSwapAll(Nanos now) {
  // The general histogram's timer paces all swaps, so the common case
  // costs one atomic load; the per-type buffers swap in lockstep with it.
  if (general_histogram_.MaybeSwap(now)) {
    std::lock_guard<std::mutex> lock(swap_mu_);
    for (auto& h : type_histograms_) h->ForceSwap();
    RebuildAggregates();
  }
}

void BouncerPolicy::ForceHistogramSwap() {
  std::lock_guard<std::mutex> lock(swap_mu_);
  general_histogram_.ForceSwap();
  for (auto& h : type_histograms_) h->ForceSwap();
  RebuildAggregates();
}

void BouncerPolicy::RebuildAggregates() {
  const stats::HistogramSummary general = general_histogram_.ReadSummary();
  general_mean_.store(general.mean, std::memory_order_relaxed);

  const size_t num_levels = sorted_levels_.size();
  std::vector<int64_t> warm_sums(num_levels, 0);
  std::vector<int64_t> cold_counts(num_levels, 0);
  int64_t total = 0;
  for (size_t t = 0; t < type_histograms_.size(); ++t) {
    const stats::HistogramSummary s = type_histograms_[t]->ReadSummary();
    const bool warm = s.count >= options_.warmup_min_samples;
    type_cache_[t].mean.store(s.mean, std::memory_order_relaxed);
    type_cache_[t].warm.store(warm, std::memory_order_relaxed);
    const auto count = static_cast<int64_t>(
        queue_->CountForType(static_cast<QueryTypeId>(t)));
    total += count;
    const size_t level = level_of_type_[t];
    if (warm) {
      warm_sums[level] += count * s.mean;
    } else {
      cold_counts[level] += count;
    }
  }
  // The rebuild's snapshot lands wholly in stripe 0; the other stripes
  // restart from zero so cross-stripe sums equal the snapshot.
  for (size_t l = 0; l < num_levels; ++l) {
    for (size_t s = 0; s < stripes_; ++s) {
      LevelAggregate& agg = level_aggs_[l * stripes_ + s];
      agg.warm_weighted_sum.store(s == 0 ? warm_sums[l] : 0,
                                  std::memory_order_relaxed);
      agg.cold_count.store(s == 0 ? cold_counts[l] : 0,
                           std::memory_order_relaxed);
    }
  }
  // Sync the drift detector to the occupancy the rebuild was computed
  // from. Hooks racing this store cause a transient mismatch, which only
  // means a few decisions take the exact slow path until counts agree.
  for (size_t s = 0; s < stripes_; ++s) {
    tracked_total_[s].value.store(s == 0 ? total : 0,
                                  std::memory_order_relaxed);
  }
}

int64_t BouncerPolicy::TrackedTotal() const {
  int64_t sum = 0;
  for (size_t s = 0; s < stripes_; ++s) {
    sum += tracked_total_[s].value.load(std::memory_order_relaxed);
  }
  return sum;
}

void BouncerPolicy::ApplyQueueDelta(QueryTypeId type, int64_t sign) {
  if (type >= type_histograms_.size()) type = kDefaultQueryType;
  const size_t level = level_of_type_[type];
  const size_t stripe = StripeOf(stripes_);
  LevelAggregate& agg = level_aggs_[level * stripes_ + stripe];
  // warm/mean can flip at a concurrent swap between the paired enqueue
  // and dequeue of one query; the resulting drift is bounded by the
  // queries in flight across one swap and is wiped by the next rebuild.
  if (type_cache_[type].warm.load(std::memory_order_relaxed)) {
    const Nanos mean = type_cache_[type].mean.load(std::memory_order_relaxed);
    agg.warm_weighted_sum.fetch_add(sign * mean, std::memory_order_relaxed);
  } else {
    agg.cold_count.fetch_add(sign, std::memory_order_relaxed);
  }
  tracked_total_[stripe].value.fetch_add(sign, std::memory_order_relaxed);
}

void BouncerPolicy::OnEnqueued(WorkKey key, Nanos now) {
  (void)now;
  ApplyQueueDelta(key.type, +1);
}

void BouncerPolicy::OnDequeued(WorkKey key, Nanos wait_time, Nanos now) {
  (void)wait_time;
  (void)now;
  ApplyQueueDelta(key.type, -1);
}

void BouncerPolicy::OnShedded(WorkKey key, Nanos now) {
  (void)now;
  ApplyQueueDelta(key.type, -1);
}

Nanos BouncerPolicy::EstimateQueueWaitSlow(QueryTypeId type) const {
  // Eq. 2: ewt_mean = sum_type(count(type) * pt_mean(type)) / P. With
  // priorities configured, only work served at or ahead of `type`'s
  // priority level contributes.
  const bool priority_aware = !options_.type_priorities.empty();
  const auto priority_of = [this](size_t t) {
    return t < options_.type_priorities.size() ? options_.type_priorities[t]
                                               : 0;
  };
  const int own_priority =
      priority_aware ? priority_of(type) : 0;
  int64_t weighted_sum = 0;
  const stats::HistogramSummary general = general_histogram_.ReadSummary();
  for (size_t t = 0; t < type_histograms_.size(); ++t) {
    if (priority_aware && priority_of(t) > own_priority) continue;
    const uint64_t count =
        queue_->CountForType(static_cast<QueryTypeId>(t));
    if (count == 0) continue;
    stats::HistogramSummary s = type_histograms_[t]->ReadSummary();
    // Types still cold contribute via the general histogram's mean so the
    // wait estimate does not silently drop their queued work.
    const Nanos mean = s.count >= options_.warmup_min_samples
                           ? s.mean
                           : general.mean;
    weighted_sum += static_cast<int64_t>(count) * mean;
  }
  return weighted_sum / static_cast<int64_t>(parallelism_);
}

Nanos BouncerPolicy::EstimateQueueWait(QueryTypeId type) const {
  if (type >= type_histograms_.size()) type = kDefaultQueryType;
  if (!options_.incremental_estimate) return EstimateQueueWaitSlow(type);
  // Out-of-band queue mutation (tests and tools drive QueueState without
  // the policy hooks) shows up as a count mismatch: answer exactly via
  // the rescan until a rebuild re-syncs the aggregates.
  if (TrackedTotal() != static_cast<int64_t>(queue_->TotalLength())) {
    return EstimateQueueWaitSlow(type);
  }
  const Nanos general_mean = general_mean_.load(std::memory_order_relaxed);
  int64_t weighted_sum = 0;
  const size_t own_level = level_of_type_[type];
  for (size_t l = 0; l <= own_level; ++l) {
    for (size_t s = 0; s < stripes_; ++s) {
      const LevelAggregate& agg = level_aggs_[l * stripes_ + s];
      weighted_sum +=
          agg.warm_weighted_sum.load(std::memory_order_relaxed) +
          agg.cold_count.load(std::memory_order_relaxed) * general_mean;
    }
  }
  // Racing hooks can transiently drive the aggregate a hair negative.
  if (weighted_sum < 0) weighted_sum = 0;
  const Nanos fast = weighted_sum / static_cast<int64_t>(parallelism_);
  if (options_.check_estimates) {
    const Nanos slow = EstimateQueueWaitSlow(type);
    assert(fast == slow && "incremental Eq. 2 aggregate diverged");
    (void)slow;
  }
  return fast;
}

BouncerPolicy::Estimates BouncerPolicy::EstimateFor(QueryTypeId type,
                                                    Nanos now) const {
  (void)now;
  Estimates e;
  if (type >= type_histograms_.size()) type = kDefaultQueryType;
  stats::HistogramSummary s = type_histograms_[type]->ReadSummary();
  e.cold = s.count < options_.warmup_min_samples;
  if (e.cold && options_.cold_start_mode == ColdStartMode::kGeneralHistogram) {
    s = general_histogram_.ReadSummary();
  }
  e.ewt_mean = EstimateQueueWait(type);
  e.ert_p50 = e.ewt_mean + s.p50;  // Eq. 3.
  e.ert_p90 = e.ewt_mean + s.p90;  // Eq. 4.
  e.ert_p99 = e.ewt_mean + s.p99;
  return e;
}

Decision BouncerPolicy::DecideWithEstimates(QueryTypeId type, Nanos now,
                                            Estimates* out) {
  if (type >= type_histograms_.size()) type = kDefaultQueryType;
  stats::HistogramSummary s = type_histograms_[type]->ReadSummary();
  const bool cold = s.count < options_.warmup_min_samples;
  const Slo* slo = &registry_->GetSlo(type);
  if (cold) {
    switch (options_.cold_start_mode) {
      case ColdStartMode::kAcceptAll:
        if (out != nullptr) {
          out->cold = true;
          out->ewt_mean = 0;
        }
        return Decision::kAccept;
      case ColdStartMode::kGeneralHistogram: {
        // Appendix A: decide from the general histogram under the default
        // (catch-all) type's SLO. If even that is empty, there is nothing
        // to reject on — let the query in to populate the histograms.
        const stats::HistogramSummary general =
            general_histogram_.ReadSummary();
        if (general.empty()) {
          if (out != nullptr) out->cold = true;
          return Decision::kAccept;
        }
        s = general;
        slo = &registry_->GetSlo(kDefaultQueryType);
        break;
      }
      case ColdStartMode::kNone:
        break;  // Proceed with the (possibly empty) type summary.
    }
  }

  const Nanos ewt = EstimateQueueWait(type);
  const Nanos ert_p50 = ewt + s.p50;
  const Nanos ert_p90 = ewt + s.p90;
  const Nanos ert_p99 = ewt + s.p99;
  if (out != nullptr) {
    out->ewt_mean = ewt;
    out->ert_p50 = ert_p50;
    out->ert_p90 = ert_p90;
    out->ert_p99 = ert_p99;
    out->cold = cold;
  }

  // Alg. 1 and its alternative expressions.
  bool reject = false;
  switch (options_.decision_expr) {
    case DecisionExpr::kP50OrP90:
      reject = ert_p50 > slo->p50 || ert_p90 > slo->p90;
      break;
    case DecisionExpr::kP50Only:
      reject = ert_p50 > slo->p50;
      break;
    case DecisionExpr::kP90Only:
      reject = ert_p90 > slo->p90;
      break;
    case DecisionExpr::kP50OrP90OrP99:
      reject = ert_p50 > slo->p50 || ert_p90 > slo->p90 ||
               (slo->p99 > 0 && ert_p99 > slo->p99);
      break;
  }
  (void)now;
  return reject ? Decision::kReject : Decision::kAccept;
}

Decision BouncerPolicy::Decide(WorkKey key, Nanos now) {
  MaybeSwapAll(now);
  return DecideWithEstimates(key.type, now, nullptr);
}

void BouncerPolicy::OnCompleted(WorkKey key, Nanos processing_time,
                                Nanos now) {
  QueryTypeId type = key.type;
  if (type >= type_histograms_.size()) type = kDefaultQueryType;
  type_histograms_[type]->Record(processing_time);
  general_histogram_.Record(processing_time);
  MaybeSwapAll(now);
}

stats::HistogramSummary BouncerPolicy::TypeSummary(QueryTypeId type) const {
  if (type >= type_histograms_.size()) type = kDefaultQueryType;
  return type_histograms_[type]->ReadSummary();
}

stats::HistogramSummary BouncerPolicy::GeneralSummary() const {
  return general_histogram_.ReadSummary();
}

}  // namespace bouncer
