#ifndef BOUNCER_CORE_BOUNCER_POLICY_H_
#define BOUNCER_CORE_BOUNCER_POLICY_H_

#include <memory>
#include <vector>

#include "src/core/admission_policy.h"
#include "src/stats/dual_histogram.h"
#include "src/util/status.h"

namespace bouncer {

/// Which percentile estimates participate in the accept/reject expression
/// (paper Alg. 1 uses p50 OR p90; §7 lists alternative formulations as
/// future work — implemented here for the ablation benches).
enum class DecisionExpr : uint8_t {
  kP50OrP90 = 0,  ///< Reject if ert_p50 > SLO_p50 || ert_p90 > SLO_p90.
  kP50Only = 1,   ///< Reject if ert_p50 > SLO_p50.
  kP90Only = 2,   ///< Reject if ert_p90 > SLO_p90.
  kP50OrP90OrP99 = 3,  ///< Additionally reject if ert_p99 > SLO_p99 (when set).
};

/// How Bouncer decides for a query type whose histogram is not yet
/// sufficiently populated (paper Appendix A).
enum class ColdStartMode : uint8_t {
  /// Fall back to the general (type-agnostic) histogram and the default
  /// type's SLO — the paper's preferred in-policy solution.
  kGeneralHistogram = 0,
  /// Accept unconditionally until the type warms up (maximally lenient).
  kAcceptAll = 1,
  /// No special handling: an empty histogram reads as zero processing
  /// time, which under-estimates and over-admits (basic formulation).
  kNone = 2,
};

/// The Bouncer admission-control policy (paper §3).
///
/// For every incoming query it estimates the mean queue wait time from the
/// live per-type queue counts and per-type mean processing times (Eq. 2),
/// adds the type's p50/p90 processing-time percentiles to form percentile
/// response-time estimates (Eq. 3–4), and rejects the query when an
/// estimate exceeds the type's SLO (Alg. 1). Processing-time distributions
/// are approximated with per-type dual-buffer histograms swapped
/// periodically (footnote 4); a general catch-all histogram backs cold
/// starts (Appendix A).
class BouncerPolicy : public AdmissionPolicy {
 public:
  struct Options {
    /// Dual-buffer histogram swap interval.
    Nanos histogram_swap_interval = kSecond;
    /// A populated buffer with fewer samples than this retains the
    /// previous summary at swap (stale-over-empty, Appendix A).
    uint64_t min_samples_to_publish = 1;
    /// A type whose published summary holds fewer samples than this is
    /// treated as cold (Appendix A warm-up phase).
    uint64_t warmup_min_samples = 1;
    ColdStartMode cold_start_mode = ColdStartMode::kGeneralHistogram;
    DecisionExpr decision_expr = DecisionExpr::kP50OrP90;
    /// Priority-aware wait estimation (paper §7 future work: supporting
    /// queries served by priority instead of FIFO). When non-empty,
    /// entry t is the priority of QueryTypeId t (lower = served first)
    /// and Eq. 2 only counts queued queries that would be served before
    /// an incoming query of the estimated type — those with strictly
    /// smaller priority, plus those at equal priority (FIFO within a
    /// level). Missing entries default to priority 0. Leave empty for
    /// the paper's FIFO formulation.
    std::vector<int> type_priorities;
  };

  /// The percentile response-time estimates behind one decision, exposed
  /// for observability (paper Fig. 3 plots these).
  struct Estimates {
    Nanos ewt_mean = 0;  ///< Estimated mean queue wait time (Eq. 2).
    Nanos ert_p50 = 0;   ///< Estimated p50 response time (Eq. 3).
    Nanos ert_p90 = 0;   ///< Estimated p90 response time (Eq. 4).
    Nanos ert_p99 = 0;   ///< Only meaningful under kP50OrP90OrP99.
    bool cold = false;   ///< True if decided via the cold-start path.
  };

  /// `context.registry`, `context.queue` and `context.parallelism` must be
  /// valid; the registry's type count fixes the histogram table size.
  BouncerPolicy(const PolicyContext& context, const Options& options);

  Decision Decide(QueryTypeId type, Nanos now) override;
  void OnCompleted(QueryTypeId type, Nanos processing_time,
                   Nanos now) override;

  std::string_view name() const override { return "Bouncer"; }

  /// Computes the estimates Decide() would use for `type` at `now`,
  /// without making a decision or touching histogram swap state.
  Estimates EstimateFor(QueryTypeId type, Nanos now) const;

  /// Estimated mean queue wait time (Eq. 2). Under FIFO (no priorities
  /// configured) every queued query counts; with priorities configured,
  /// only work scheduled ahead of a query of `type` counts.
  Nanos EstimateQueueWait(QueryTypeId type = kDefaultQueryType) const;

  /// Published processing-time summary for a type (for observability).
  stats::HistogramSummary TypeSummary(QueryTypeId type) const;

  /// Published summary of the general (catch-all, type-agnostic)
  /// histogram.
  stats::HistogramSummary GeneralSummary() const;

  /// Force-swaps all histograms so freshly recorded samples become
  /// immediately visible. Used by tests and simulation warm-up.
  void ForceHistogramSwap();

  const Options& options() const { return options_; }

 private:
  Decision DecideWithEstimates(QueryTypeId type, Nanos now, Estimates* out);
  void MaybeSwapAll(Nanos now);

  const QueryTypeRegistry* const registry_;
  const QueueState* const queue_;
  const size_t parallelism_;
  const Options options_;

  /// One dual histogram per registered type (index = QueryTypeId).
  std::vector<std::unique_ptr<stats::DualHistogram>> type_histograms_;
  /// Type-agnostic histogram of all processing times (Appendix A).
  stats::DualHistogram general_histogram_;
};

}  // namespace bouncer

#endif  // BOUNCER_CORE_BOUNCER_POLICY_H_
