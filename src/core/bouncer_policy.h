#ifndef BOUNCER_CORE_BOUNCER_POLICY_H_
#define BOUNCER_CORE_BOUNCER_POLICY_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "src/core/admission_policy.h"
#include "src/stats/dual_histogram.h"
#include "src/util/mpmc_queue.h"
#include "src/util/status.h"

namespace bouncer {

/// Which percentile estimates participate in the accept/reject expression
/// (paper Alg. 1 uses p50 OR p90; §7 lists alternative formulations as
/// future work — implemented here for the ablation benches).
enum class DecisionExpr : uint8_t {
  kP50OrP90 = 0,  ///< Reject if ert_p50 > SLO_p50 || ert_p90 > SLO_p90.
  kP50Only = 1,   ///< Reject if ert_p50 > SLO_p50.
  kP90Only = 2,   ///< Reject if ert_p90 > SLO_p90.
  kP50OrP90OrP99 = 3,  ///< Additionally reject if ert_p99 > SLO_p99 (when set).
};

/// How Bouncer decides for a query type whose histogram is not yet
/// sufficiently populated (paper Appendix A).
enum class ColdStartMode : uint8_t {
  /// Fall back to the general (type-agnostic) histogram and the default
  /// type's SLO — the paper's preferred in-policy solution.
  kGeneralHistogram = 0,
  /// Accept unconditionally until the type warms up (maximally lenient).
  kAcceptAll = 1,
  /// No special handling: an empty histogram reads as zero processing
  /// time, which under-estimates and over-admits (basic formulation).
  kNone = 2,
};

/// The Bouncer admission-control policy (paper §3).
///
/// For every incoming query it estimates the mean queue wait time from the
/// live per-type queue counts and per-type mean processing times (Eq. 2),
/// adds the type's p50/p90 processing-time percentiles to form percentile
/// response-time estimates (Eq. 3–4), and rejects the query when an
/// estimate exceeds the type's SLO (Alg. 1). Processing-time distributions
/// are approximated with per-type dual-buffer histograms swapped
/// periodically (footnote 4); a general catch-all histogram backs cold
/// starts (Appendix A).
class BouncerPolicy : public AdmissionPolicy {
 public:
  struct Options {
    /// Dual-buffer histogram swap interval.
    Nanos histogram_swap_interval = kSecond;
    /// A populated buffer with fewer samples than this retains the
    /// previous summary at swap (stale-over-empty, Appendix A).
    uint64_t min_samples_to_publish = 1;
    /// A type whose published summary holds fewer samples than this is
    /// treated as cold (Appendix A warm-up phase).
    uint64_t warmup_min_samples = 1;
    ColdStartMode cold_start_mode = ColdStartMode::kGeneralHistogram;
    DecisionExpr decision_expr = DecisionExpr::kP50OrP90;
    /// Priority-aware wait estimation (paper §7 future work: supporting
    /// queries served by priority instead of FIFO). When non-empty,
    /// entry t is the priority of QueryTypeId t (lower = served first)
    /// and Eq. 2 only counts queued queries that would be served before
    /// an incoming query of the estimated type — those with strictly
    /// smaller priority, plus those at equal priority (FIFO within a
    /// level). Missing entries default to priority 0. Leave empty for
    /// the paper's FIFO formulation.
    std::vector<int> type_priorities;
    /// Use the O(1) incrementally-maintained Eq. 2 aggregate on the
    /// decision path (default). When false, every estimate rescans all
    /// per-type histograms — the pre-optimization behavior, kept
    /// selectable so benchmarks can measure the difference.
    bool incremental_estimate = true;
    /// Debug aid: cross-check every fast-path estimate against the full
    /// rescan and assert equality. Only meaningful in quiescent or
    /// single-threaded use (under concurrency the two can legitimately
    /// diverge transiently); intended for tests.
    bool check_estimates = false;
  };

  /// The percentile response-time estimates behind one decision, exposed
  /// for observability (paper Fig. 3 plots these).
  struct Estimates {
    Nanos ewt_mean = 0;  ///< Estimated mean queue wait time (Eq. 2).
    Nanos ert_p50 = 0;   ///< Estimated p50 response time (Eq. 3).
    Nanos ert_p90 = 0;   ///< Estimated p90 response time (Eq. 4).
    Nanos ert_p99 = 0;   ///< Only meaningful under kP50OrP90OrP99.
    bool cold = false;   ///< True if decided via the cold-start path.
  };

  /// `context.registry`, `context.queue` and `context.parallelism` must be
  /// valid; the registry's type count fixes the histogram table size.
  BouncerPolicy(const PolicyContext& context, const Options& options);

  Decision Decide(WorkKey key, Nanos now) override;
  void OnCompleted(WorkKey key, Nanos processing_time,
                   Nanos now) override;
  /// Maintains the incremental Eq. 2 aggregate: adds the type's cached
  /// mean (or a cold count) to its priority level's running sum.
  void OnEnqueued(WorkKey key, Nanos now) override;
  /// Removes the type's contribution from the running aggregate.
  void OnDequeued(WorkKey key, Nanos wait_time, Nanos now) override;
  /// An admitted query never reached processing: rolls back the
  /// OnEnqueued() contribution, same as a dequeue.
  void OnShedded(WorkKey key, Nanos now) override;

  std::string_view name() const override { return "Bouncer"; }

  /// Exposes the live Eq. 2 estimate for observability stamping.
  Nanos EstimatedQueueWait(WorkKey key) const override {
    return EstimateQueueWait(key.type);
  }

  /// Computes the estimates Decide() would use for `type` at `now`,
  /// without making a decision or touching histogram swap state.
  Estimates EstimateFor(QueryTypeId type, Nanos now) const;

  /// Estimated mean queue wait time (Eq. 2). Under FIFO (no priorities
  /// configured) every queued query counts; with priorities configured,
  /// only work scheduled ahead of a query of `type` counts.
  ///
  /// O(1) hot path: reads the per-priority-level aggregates maintained by
  /// the enqueue/dequeue/shed hooks plus the cached general mean. When
  /// the hook-tracked occupancy disagrees with the live QueueState (the
  /// runtime mutated the queue without calling the hooks, or a rebuild
  /// raced), it falls back to EstimateQueueWaitSlow() — so the result is
  /// always the Eq. 2 value, only the cost varies.
  Nanos EstimateQueueWait(QueryTypeId type = kDefaultQueryType) const;

  /// Reference O(num_types) Eq. 2 implementation: rescans every per-type
  /// histogram summary and queue count. This is the pre-optimization
  /// decision path, kept as the fallback for out-of-band queue mutation
  /// and as the cross-check oracle for the incremental aggregate.
  Nanos EstimateQueueWaitSlow(QueryTypeId type = kDefaultQueryType) const;

  /// Published processing-time summary for a type (for observability).
  stats::HistogramSummary TypeSummary(QueryTypeId type) const;

  /// Published summary of the general (catch-all, type-agnostic)
  /// histogram.
  stats::HistogramSummary GeneralSummary() const;

  /// Force-swaps all histograms so freshly recorded samples become
  /// immediately visible. Used by tests and simulation warm-up.
  void ForceHistogramSwap();

  const Options& options() const { return options_; }

 private:
  /// Incremental Eq. 2 state, per (priority level, writer stripe): the
  /// weighted sum over warm types of count(t)·pt_mean(t), plus the number
  /// of queued queries of cold types (costed at the general mean at read
  /// time, so a general-histogram refresh never requires touching the
  /// aggregates). With `stripes_` > 1 each hook thread updates only its
  /// own cache-line-padded stripe (StripeOf) and reads sum across
  /// stripes; the enqueue and dequeue of one query can land on different
  /// stripes, so per-stripe values go negative and only sums mean
  /// anything.
  struct alignas(kCacheLineSize) LevelAggregate {
    std::atomic<int64_t> warm_weighted_sum{0};
    std::atomic<int64_t> cold_count{0};
  };
  /// One padded per-stripe cell of the hook-tracked occupancy.
  struct alignas(kCacheLineSize) TrackedCount {
    std::atomic<int64_t> value{0};
  };
  /// Snapshot of one type's published summary, refreshed at swap time so
  /// the enqueue/dequeue hooks never touch the histograms.
  struct TypeCache {
    std::atomic<Nanos> mean{0};
    std::atomic<bool> warm{false};
  };

  Decision DecideWithEstimates(QueryTypeId type, Nanos now, Estimates* out);
  void MaybeSwapAll(Nanos now);
  /// Applies one enqueue (+1) or dequeue (-1) of `type` to the aggregate.
  void ApplyQueueDelta(QueryTypeId type, int64_t sign);
  /// Recomputes the mean cache and all level aggregates from the live
  /// QueueState and freshly published summaries. Called at every swap
  /// (under swap_mu_), which also heals any drift racing hooks caused.
  void RebuildAggregates();

  /// Sum of the hook-tracked occupancy stripes (the drift detector).
  int64_t TrackedTotal() const;

  const QueryTypeRegistry* const registry_;
  const QueueState* const queue_;
  const size_t parallelism_;
  const size_t stripes_;  ///< Writer-affinity stripes of the aggregates.
  const Options options_;

  /// One dual histogram per registered type (index = QueryTypeId).
  std::vector<std::unique_ptr<stats::DualHistogram>> type_histograms_;
  /// Type-agnostic histogram of all processing times (Appendix A).
  stats::DualHistogram general_histogram_;

  /// Distinct priority values, ascending; a single level under FIFO.
  std::vector<int> sorted_levels_;
  /// QueryTypeId -> index into sorted_levels_. A query of type T waits
  /// behind levels 0..level_of_type_[T] inclusive.
  std::vector<size_t> level_of_type_;
  /// sorted_levels_.size() × stripes_, indexed level·stripes_ + stripe.
  std::unique_ptr<LevelAggregate[]> level_aggs_;
  std::unique_ptr<TypeCache[]> type_cache_;
  /// Cached mean of the general histogram's published summary.
  std::atomic<Nanos> general_mean_{0};
  /// Queue occupancy as seen through the hooks, one padded cell per
  /// stripe; the cross-stripe sum is compared against
  /// QueueState::TotalLength() to detect out-of-band queue mutation.
  std::unique_ptr<TrackedCount[]> tracked_total_;
  /// Serializes buffer swaps + aggregate rebuilds (cold path).
  std::mutex swap_mu_;
};

}  // namespace bouncer

#endif  // BOUNCER_CORE_BOUNCER_POLICY_H_
