#include "src/core/helping_underserved_policy.h"

#include <algorithm>
#include <cassert>

namespace bouncer {

HelpingUnderservedPolicy::HelpingUnderservedPolicy(
    std::unique_ptr<AdmissionPolicy> inner, size_t num_types,
    const Options& options, size_t num_stripes)
    : inner_(std::move(inner)),
      options_(options),
      window_(num_types, options.window_duration, options.window_step,
              num_stripes),
      rng_(options.seed) {
  assert(inner_ != nullptr);
  name_ = std::string(inner_->name()) + "+HelpingUnderserved";
}

double HelpingUnderservedPolicy::OverrideProbability(double ar,
                                                     double aar) const {
  if (aar <= 0.0 || ar >= aar) return 0.0;
  const double x = (aar - ar) / aar;  // x in (0, 1].
  return options_.alpha * x / (1.0 + x);
}

Decision HelpingUnderservedPolicy::Decide(WorkKey key, Nanos now) {
  Decision decision = inner_->Decide(key, now);  // Ask the policy.
  if (decision == Decision::kReject) {
    window_.AdvanceTo(now);
    // Acceptance ratio for the query type: accepted / max(received, 1).
    const double received = static_cast<double>(
        std::max<uint64_t>(window_.ReceivedCount(key.type), 1));
    const double ar =
        static_cast<double>(window_.AcceptedCount(key.type)) / received;
    const double aar = window_.AverageAcceptanceRatio();
    const double p = OverrideProbability(ar, aar);
    if (p > 0.0) {
      bool pass = false;
      {
        std::lock_guard<std::mutex> lock(rng_mu_);
        pass = rng_.NextBernoulli(p);
      }
      if (pass) decision = Decision::kAccept;
    }
  }
  window_.Record(key.type, decision == Decision::kAccept, now);
  return decision;
}

}  // namespace bouncer
