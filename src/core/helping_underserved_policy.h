#ifndef BOUNCER_CORE_HELPING_UNDERSERVED_POLICY_H_
#define BOUNCER_CORE_HELPING_UNDERSERVED_POLICY_H_

#include <memory>
#include <mutex>
#include <string>

#include "src/core/admission_policy.h"
#include "src/stats/sliding_window_counter.h"
#include "src/util/rng.h"

namespace bouncer {

/// Helping-the-underserved starvation-avoidance strategy (paper §4.2,
/// Alg. 3), wrapped around an inner policy (normally Bouncer).
///
/// When the inner policy rejects a query, the strategy compares the
/// query type's acceptance ratio AR against the average acceptance ratio
/// AAR across all types over a sliding window. If AR < AAR — the type is
/// being treated unfavorably — the rejection is overridden with
/// probability p = α·x/(1+x) where x = (AAR−AR)/AAR, a sigmoid that
/// smooths the help so a fully starved type is accepted with probability
/// at most α/2.
class HelpingUnderservedPolicy final : public AdmissionPolicy {
 public:
  struct Options {
    double alpha = 1.0;                 ///< Scaling factor α in (0, 1].
    Nanos window_duration = kSecond;    ///< D.
    Nanos window_step = 10 * kMillisecond;  ///< Δ.
    uint64_t seed = 0x5eed2ULL;         ///< RNG seed for the override draw.
  };

  /// `inner` must be non-null; `num_types` is the registry size.
  /// `num_stripes` stripes the window's counters by writer affinity
  /// (pass the stage's PolicyContext::counter_stripes).
  HelpingUnderservedPolicy(std::unique_ptr<AdmissionPolicy> inner,
                           size_t num_types, const Options& options,
                           size_t num_stripes = 1);

  Decision Decide(WorkKey key, Nanos now) override;
  void OnEnqueued(WorkKey key, Nanos now) override {
    inner_->OnEnqueued(key, now);
  }
  void OnRejected(WorkKey key, Nanos now) override {
    inner_->OnRejected(key, now);
  }
  void OnDequeued(WorkKey key, Nanos wait_time, Nanos now) override {
    inner_->OnDequeued(key, wait_time, now);
  }
  void OnCompleted(WorkKey key, Nanos processing_time,
                   Nanos now) override {
    inner_->OnCompleted(key, processing_time, now);
  }
  /// A shed query was never served: retract its accept so AR/AAR keep
  /// measuring actual service, not intent.
  void OnShedded(WorkKey key, Nanos now) override {
    window_.UndoAccepted(key.type, now);
    inner_->OnShedded(key, now);
  }

  Nanos EstimatedQueueWait(WorkKey key) const override {
    return inner_->EstimatedQueueWait(key);
  }

  std::string_view name() const override { return name_; }

  /// The wrapped policy.
  AdmissionPolicy* inner() { return inner_.get(); }

  /// Probability of overriding a rejection for a type with acceptance
  /// ratio `ar` given average ratio `aar` (exposed for tests).
  double OverrideProbability(double ar, double aar) const;

  const Options& options() const { return options_; }

 private:
  std::unique_ptr<AdmissionPolicy> inner_;
  const Options options_;
  std::string name_;
  stats::SlidingWindowCounter window_;
  std::mutex rng_mu_;
  Rng rng_;
};

}  // namespace bouncer

#endif  // BOUNCER_CORE_HELPING_UNDERSERVED_POLICY_H_
