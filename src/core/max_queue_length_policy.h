#ifndef BOUNCER_CORE_MAX_QUEUE_LENGTH_POLICY_H_
#define BOUNCER_CORE_MAX_QUEUE_LENGTH_POLICY_H_

#include <cstdint>

#include "src/core/admission_policy.h"

namespace bouncer {

/// Maximum-queue-length (MaxQL) policy (paper §5.2.1): accepts an incoming
/// query only while the FIFO queue holds fewer than `length_limit`
/// queries. Oblivious to query types.
class MaxQueueLengthPolicy final : public AdmissionPolicy {
 public:
  struct Options {
    uint64_t length_limit = 400;  ///< L_limit (Table 2 uses 400).
  };

  MaxQueueLengthPolicy(const PolicyContext& context, const Options& options)
      : queue_(context.queue), options_(options) {}

  Decision Decide(WorkKey /*key*/, Nanos /*now*/) override {
    return queue_->TotalLength() < options_.length_limit ? Decision::kAccept
                                                         : Decision::kReject;
  }

  std::string_view name() const override { return "MaxQL"; }

  const Options& options() const { return options_; }

 private:
  const QueueState* const queue_;
  const Options options_;
};

}  // namespace bouncer

#endif  // BOUNCER_CORE_MAX_QUEUE_LENGTH_POLICY_H_
