#ifndef BOUNCER_CORE_MAX_QUEUE_WAIT_POLICY_H_
#define BOUNCER_CORE_MAX_QUEUE_WAIT_POLICY_H_

#include <vector>

#include "src/core/admission_policy.h"
#include "src/stats/sliding_window_mean.h"

namespace bouncer {

/// Maximum-queue-wait-time (MaxQWT) policy (paper §5.2.2): admits a query
/// only while the estimated mean queue wait time
///   ewt_mean = l × pt_mavg / P          (Eq. 5)
/// is at or below a configured limit, where l is the current queue length
/// and pt_mavg the moving average of processing times over a sliding
/// window (default D = 60 s, Δ = 1 s).
///
/// The paper's in-house implementation enforces one limit for all query
/// types; §5.5 additionally studies per-type limits, supported here via
/// `per_type_limits`.
class MaxQueueWaitPolicy final : public AdmissionPolicy {
 public:
  struct Options {
    Nanos wait_time_limit = 15 * kMillisecond;  ///< T_limit (Table 2: 15 ms).
    Nanos window_duration = 60 * kSecond;       ///< D.
    Nanos window_step = kSecond;                ///< Δ.
    /// Optional per-type limits (§5.5). When non-empty, entry t overrides
    /// `wait_time_limit` for type t; entries of 0 fall back to the global
    /// limit. Size may be smaller than the registry.
    std::vector<Nanos> per_type_limits;
  };

  MaxQueueWaitPolicy(const PolicyContext& context, const Options& options)
      : queue_(context.queue),
        parallelism_(context.parallelism == 0 ? 1 : context.parallelism),
        options_(options),
        pt_mavg_(options.window_duration, options.window_step) {}

  Decision Decide(WorkKey key, Nanos now) override {
    const Nanos ewt = EstimateQueueWait(now);
    return ewt <= LimitFor(key.type) ? Decision::kAccept : Decision::kReject;
  }

  void OnCompleted(WorkKey /*key*/, Nanos processing_time,
                   Nanos now) override {
    pt_mavg_.Record(processing_time, now);
  }

  std::string_view name() const override {
    return options_.per_type_limits.empty() ? "MaxQWT" : "MaxQWT(per-type)";
  }

  /// Eq. 5: l × pt_mavg / P. An empty window reads as pt_mavg = 0.
  Nanos EstimateQueueWait(Nanos now) {
    pt_mavg_.AdvanceTo(now);
    const double mavg = pt_mavg_.Mean(0.0);
    const double l = static_cast<double>(queue_->TotalLength());
    return static_cast<Nanos>(l * mavg /
                              static_cast<double>(parallelism_));
  }

  /// Effective wait-time limit for `type`.
  Nanos LimitFor(QueryTypeId type) const {
    if (type < options_.per_type_limits.size() &&
        options_.per_type_limits[type] > 0) {
      return options_.per_type_limits[type];
    }
    return options_.wait_time_limit;
  }

  const Options& options() const { return options_; }

 private:
  const QueueState* const queue_;
  const size_t parallelism_;
  const Options options_;
  stats::SlidingWindowMean pt_mavg_;
};

}  // namespace bouncer

#endif  // BOUNCER_CORE_MAX_QUEUE_WAIT_POLICY_H_
