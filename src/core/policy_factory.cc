#include "src/core/policy_factory.h"

namespace bouncer {

std::string_view PolicyKindName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kAlwaysAccept:
      return "AlwaysAccept";
    case PolicyKind::kBouncer:
      return "Bouncer";
    case PolicyKind::kBouncerWithAllowance:
      return "Bouncer+AcceptanceAllowance";
    case PolicyKind::kBouncerWithUnderserved:
      return "Bouncer+HelpingUnderserved";
    case PolicyKind::kMaxQueueLength:
      return "MaxQL";
    case PolicyKind::kMaxQueueWait:
      return "MaxQWT";
    case PolicyKind::kAcceptFraction:
      return "AcceptFraction";
  }
  return "Unknown";
}

StatusOr<std::unique_ptr<AdmissionPolicy>> CreatePolicy(
    const PolicyConfig& config, const PolicyContext& context) {
  if (context.registry == nullptr || context.queue == nullptr) {
    return Status::InvalidArgument(
        "PolicyContext requires a registry and a queue");
  }
  if (context.queue->num_types() < context.registry->size()) {
    return Status::InvalidArgument(
        "QueueState tracks fewer types than the registry defines");
  }

  std::unique_ptr<AdmissionPolicy> policy;
  switch (config.kind) {
    case PolicyKind::kAlwaysAccept:
      policy = std::make_unique<AlwaysAcceptPolicy>();
      break;
    case PolicyKind::kBouncer:
      policy = std::make_unique<BouncerPolicy>(context, config.bouncer);
      break;
    case PolicyKind::kBouncerWithAllowance: {
      if (config.allowance.allowance < 0.0 ||
          config.allowance.allowance > 1.0) {
        return Status::InvalidArgument("allowance A must be in [0, 1]");
      }
      auto inner = std::make_unique<BouncerPolicy>(context, config.bouncer);
      policy = std::make_unique<AcceptanceAllowancePolicy>(
          std::move(inner), context.registry->size(), config.allowance,
          context.counter_stripes);
      break;
    }
    case PolicyKind::kBouncerWithUnderserved: {
      if (config.underserved.alpha <= 0.0 || config.underserved.alpha > 1.0) {
        return Status::InvalidArgument("alpha must be in (0, 1]");
      }
      auto inner = std::make_unique<BouncerPolicy>(context, config.bouncer);
      policy = std::make_unique<HelpingUnderservedPolicy>(
          std::move(inner), context.registry->size(), config.underserved,
          context.counter_stripes);
      break;
    }
    case PolicyKind::kMaxQueueLength:
      if (config.max_queue_length.length_limit == 0) {
        return Status::InvalidArgument("MaxQL length limit must be > 0");
      }
      policy = std::make_unique<MaxQueueLengthPolicy>(
          context, config.max_queue_length);
      break;
    case PolicyKind::kMaxQueueWait:
      if (config.max_queue_wait.wait_time_limit <= 0) {
        return Status::InvalidArgument("MaxQWT wait limit must be > 0");
      }
      policy =
          std::make_unique<MaxQueueWaitPolicy>(context, config.max_queue_wait);
      break;
    case PolicyKind::kAcceptFraction:
      if (config.accept_fraction.max_utilization <= 0.0 ||
          config.accept_fraction.max_utilization > 1.0) {
        return Status::InvalidArgument("max utilization must be in (0, 1]");
      }
      policy = std::make_unique<AcceptFractionPolicy>(context,
                                                      config.accept_fraction);
      break;
  }
  if (policy == nullptr) {
    return Status::InvalidArgument("unknown policy kind");
  }
  if (config.tenant_fair) {
    if (context.tenants == nullptr) {
      return Status::InvalidArgument(
          "tenant_fair requires PolicyContext::tenants");
    }
    if (config.tenant_fair_options.alpha < 0.0 ||
        config.tenant_fair_options.alpha > 1.0) {
      return Status::InvalidArgument("tenant_fair alpha must be in [0, 1]");
    }
    policy = std::make_unique<TenantFairPolicy>(std::move(policy), context,
                                                config.tenant_fair_options);
  }
  if (config.queue_guard_limit > 0) {
    policy = std::make_unique<QueueGuardPolicy>(
        std::move(policy), context.queue, config.queue_guard_limit);
  }
  return policy;
}

}  // namespace bouncer
