#ifndef BOUNCER_CORE_POLICY_FACTORY_H_
#define BOUNCER_CORE_POLICY_FACTORY_H_

#include <memory>
#include <string_view>

#include "src/core/accept_fraction_policy.h"
#include "src/core/acceptance_allowance_policy.h"
#include "src/core/admission_policy.h"
#include "src/core/bouncer_policy.h"
#include "src/core/helping_underserved_policy.h"
#include "src/core/max_queue_length_policy.h"
#include "src/core/max_queue_wait_policy.h"
#include "src/core/queue_guard_policy.h"
#include "src/core/tenant_fair_policy.h"
#include "src/util/status.h"

namespace bouncer {

/// The admission-control policies this library ships (paper §3–§5.2).
enum class PolicyKind : uint8_t {
  kAlwaysAccept = 0,
  kBouncer = 1,
  kBouncerWithAllowance = 2,    ///< Bouncer + acceptance-allowance (§4.1).
  kBouncerWithUnderserved = 3,  ///< Bouncer + helping-the-underserved (§4.2).
  kMaxQueueLength = 4,
  kMaxQueueWait = 5,
  kAcceptFraction = 6,
};

/// Human-readable name of a PolicyKind.
std::string_view PolicyKindName(PolicyKind kind);

/// Declarative configuration from which CreatePolicy() assembles a policy
/// stack. Only the options of the selected `kind` are consulted, plus the
/// optional queue guard.
struct PolicyConfig {
  PolicyKind kind = PolicyKind::kBouncer;

  BouncerPolicy::Options bouncer;
  AcceptanceAllowancePolicy::Options allowance;
  HelpingUnderservedPolicy::Options underserved;
  MaxQueueLengthPolicy::Options max_queue_length;
  MaxQueueWaitPolicy::Options max_queue_wait;
  AcceptFractionPolicy::Options accept_fraction;

  /// When non-zero, the finished policy is wrapped in a QueueGuardPolicy
  /// with this hard queue-length cap (§5.4 uses 800).
  uint64_t queue_guard_limit = 0;

  /// When set, the selected policy is wrapped in a TenantFairPolicy
  /// (weighted-fair admission across tenants; requires
  /// PolicyContext::tenants). Wrapped inside the queue guard, so the
  /// hard cap still binds even when fairness overrides a rejection.
  bool tenant_fair = false;
  TenantFairPolicy::Options tenant_fair_options;
};

/// Builds the policy described by `config` against `context`. Returns
/// InvalidArgument for out-of-domain parameters (e.g. allowance outside
/// [0, 1]).
StatusOr<std::unique_ptr<AdmissionPolicy>> CreatePolicy(
    const PolicyConfig& config, const PolicyContext& context);

}  // namespace bouncer

#endif  // BOUNCER_CORE_POLICY_FACTORY_H_
