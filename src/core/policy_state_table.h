#ifndef BOUNCER_CORE_POLICY_STATE_TABLE_H_
#define BOUNCER_CORE_POLICY_STATE_TABLE_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

#include "src/core/types.h"

namespace bouncer {

/// Flat-indexed per-(tenant, type) policy state: one logical slab of
/// cache-line-padded cells addressed by `tenant * num_types + type`, the
/// layout that keeps per-tenant admission bookkeeping O(1) and
/// cache-friendly at 10k+ tenants where a hash map would rehash, chase
/// pointers, and contend on a shared lock.
///
/// Growth is what makes the flat layout survive unbounded tenant arrival:
/// the slab is physically a short array of chunk pointers, where chunk 0
/// covers the first `base_tenants` tenants and every later chunk doubles
/// the covered range (the same geometry TenantRegistry uses for its
/// metadata). The tenant index alone determines its chunk (a bit-width
/// computation, no search), so addressing is O(1); a new tenant's first
/// touch allocates its chunk — rows of `num_types` contiguous cells — and
/// publishes it with a single compare-exchange. Nothing is ever copied or
/// rehashed: cells are typically striped/atomic counters, and moving a
/// counter under concurrent writers would silently drop updates, so cell
/// addresses are stable for the table's lifetime by construction.
///
/// `Cell` must be default-constructible to its zero state (atomic members
/// with default member initializers) and is destroyed in place; typical
/// cells are `alignas(kCacheLineSize)` so tenants never false-share.
template <typename Cell>
class PolicyStateTable {
 public:
  /// `num_types` fixes the row width (immutable, like the query-type
  /// registry after configuration); `base_tenants` sizes chunk 0.
  explicit PolicyStateTable(size_t num_types, size_t base_tenants = 1024)
      : num_types_(num_types < 1 ? 1 : num_types),
        base_(base_tenants < 1 ? 1 : base_tenants) {}

  ~PolicyStateTable() {
    for (auto& chunk : chunks_) {
      delete[] chunk.load(std::memory_order_acquire);
    }
  }

  PolicyStateTable(const PolicyStateTable&) = delete;
  PolicyStateTable& operator=(const PolicyStateTable&) = delete;

  /// The cell of (tenant, type), allocating the tenant's chunk on first
  /// touch. Lock-free; `type` must be < num_types.
  Cell& At(TenantId tenant, size_t type = 0) {
    size_t chunk, offset;
    Locate(tenant, &chunk, &offset);
    Cell* cells = chunks_[chunk].load(std::memory_order_acquire);
    if (cells == nullptr) cells = AllocateChunk(chunk);
    return cells[offset * num_types_ + type];
  }

  /// Read-only access that never allocates: null when no request of this
  /// tenant's chunk range has been seen (state walkers skip such rows).
  const Cell* Find(TenantId tenant, size_t type = 0) const {
    size_t chunk, offset;
    Locate(tenant, &chunk, &offset);
    const Cell* cells = chunks_[chunk].load(std::memory_order_acquire);
    return cells == nullptr ? nullptr : cells + offset * num_types_ + type;
  }

  size_t num_types() const { return num_types_; }

 private:
  /// 30 doubling chunks cover base_ << 29 tenants — far beyond the
  /// registry's max_tenants cap for any sane base.
  static constexpr size_t kMaxChunks = 30;

  void Locate(size_t tenant, size_t* chunk, size_t* offset) const {
    if (tenant < base_) {
      *chunk = 0;
      *offset = tenant;
      return;
    }
    size_t c = 0;
    for (size_t range = tenant / base_; range != 0; range >>= 1) ++c;
    *chunk = c >= kMaxChunks ? kMaxChunks - 1 : c;
    *offset = tenant - (base_ << (*chunk - 1));
  }

  Cell* AllocateChunk(size_t chunk) {
    const size_t rows = chunk == 0 ? base_ : base_ << (chunk - 1);
    Cell* fresh = new Cell[rows * num_types_];
    Cell* expected = nullptr;
    if (chunks_[chunk].compare_exchange_strong(expected, fresh,
                                               std::memory_order_acq_rel,
                                               std::memory_order_acquire)) {
      return fresh;
    }
    delete[] fresh;  // Lost the publication race; adopt the winner's.
    return expected;
  }

  const size_t num_types_;
  const size_t base_;
  std::array<std::atomic<Cell*>, kMaxChunks> chunks_{};
};

/// The A/B baseline the flat slab is benchmarked against: the naive
/// per-(tenant, type) state keyed through a shared `std::unordered_map`
/// under a reader-writer lock — what "just add a tenant key" would have
/// done to the admission path. Cells are heap nodes so references stay
/// valid across rehashes. Kept deliberately straightforward.
template <typename Cell>
class MapPolicyStateTable {
 public:
  explicit MapPolicyStateTable(size_t num_types)
      : num_types_(num_types < 1 ? 1 : num_types) {}

  MapPolicyStateTable(const MapPolicyStateTable&) = delete;
  MapPolicyStateTable& operator=(const MapPolicyStateTable&) = delete;

  Cell& At(TenantId tenant, size_t type = 0) {
    const uint64_t key =
        static_cast<uint64_t>(tenant) * num_types_ + type;
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      auto it = cells_.find(key);
      if (it != cells_.end()) return *it->second;
    }
    std::unique_lock<std::shared_mutex> lock(mu_);
    auto [it, inserted] = cells_.try_emplace(key);
    if (inserted) it->second = std::make_unique<Cell>();
    return *it->second;
  }

  const Cell* Find(TenantId tenant, size_t type = 0) const {
    const uint64_t key =
        static_cast<uint64_t>(tenant) * num_types_ + type;
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = cells_.find(key);
    return it == cells_.end() ? nullptr : it->second.get();
  }

  size_t num_types() const { return num_types_; }

 private:
  const size_t num_types_;
  mutable std::shared_mutex mu_;
  std::unordered_map<uint64_t, std::unique_ptr<Cell>> cells_;
};

}  // namespace bouncer

#endif  // BOUNCER_CORE_POLICY_STATE_TABLE_H_
