#include "src/core/query_type_registry.h"

namespace bouncer {

QueryTypeRegistry::QueryTypeRegistry(const Slo& default_slo) {
  names_.emplace_back("default");
  slos_.push_back(default_slo);
  index_.emplace("default", kDefaultQueryType);
}

StatusOr<QueryTypeId> QueryTypeRegistry::Register(std::string name,
                                                  const Slo& slo) {
  if (name.empty()) {
    return Status::InvalidArgument("query type name must be non-empty");
  }
  if (index_.contains(name)) {
    return Status::AlreadyExists("query type already registered: " + name);
  }
  const auto id = static_cast<QueryTypeId>(names_.size());
  index_.emplace(name, id);
  names_.push_back(std::move(name));
  slos_.push_back(slo);
  return id;
}

QueryTypeId QueryTypeRegistry::Resolve(std::string_view name) const {
  const auto it = index_.find(std::string(name));
  return it == index_.end() ? kDefaultQueryType : it->second;
}

StatusOr<QueryTypeId> QueryTypeRegistry::Find(std::string_view name) const {
  const auto it = index_.find(std::string(name));
  if (it == index_.end()) {
    return Status::NotFound("unknown query type: " + std::string(name));
  }
  return it->second;
}

Status QueryTypeRegistry::SetSlo(QueryTypeId id, const Slo& slo) {
  if (id >= slos_.size()) {
    return Status::OutOfRange("query type id out of range");
  }
  slos_[id] = slo;
  return Status::OK();
}

}  // namespace bouncer
