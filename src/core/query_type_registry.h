#ifndef BOUNCER_CORE_QUERY_TYPE_REGISTRY_H_
#define BOUNCER_CORE_QUERY_TYPE_REGISTRY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/core/types.h"
#include "src/util/status.h"

namespace bouncer {

/// Maps query-type strings (e.g. the REST endpoint path segment or datalog
/// rule name a request carries, paper §3) to dense QueryTypeId indices and
/// holds the per-type latency SLOs.
///
/// Id 0 is always the catch-all "default" type; Resolve() returns it for
/// unrecognized strings, so new queries with no declared type are served
/// under the default SLO (paper Appendix B.2). The registry is built once
/// during configuration and is immutable afterwards from the policies'
/// point of view; Resolve() and accessors are thread-safe on the frozen
/// registry.
class QueryTypeRegistry {
 public:
  /// Creates a registry whose default (catch-all) type has `default_slo`.
  explicit QueryTypeRegistry(const Slo& default_slo = Slo{});

  /// Registers a query type. Returns its id, or AlreadyExists /
  /// InvalidArgument on a duplicate or empty name.
  StatusOr<QueryTypeId> Register(std::string name, const Slo& slo);

  /// Resolves a query-type string; unknown names map to the default type.
  QueryTypeId Resolve(std::string_view name) const;

  /// Exact lookup: NotFound for unknown names (no default fallback).
  StatusOr<QueryTypeId> Find(std::string_view name) const;

  /// Number of types including the default type.
  size_t size() const { return names_.size(); }

  /// Name of a type id ("default" for id 0).
  const std::string& Name(QueryTypeId id) const { return names_.at(id); }

  /// SLO of a type id.
  const Slo& GetSlo(QueryTypeId id) const { return slos_.at(id); }

  /// Replaces the SLO of an existing type (configuration-time only).
  Status SetSlo(QueryTypeId id, const Slo& slo);

 private:
  std::vector<std::string> names_;
  std::vector<Slo> slos_;
  std::unordered_map<std::string, QueryTypeId> index_;
};

}  // namespace bouncer

#endif  // BOUNCER_CORE_QUERY_TYPE_REGISTRY_H_
