#ifndef BOUNCER_CORE_QUEUE_GUARD_POLICY_H_
#define BOUNCER_CORE_QUEUE_GUARD_POLICY_H_

#include <memory>
#include <string>

#include "src/core/admission_policy.h"

namespace bouncer {

/// Wrapper that enforces a hard queue-length cap in front of any policy
/// (paper §5.4: "In LIquid not only MaxQL, but the other policies too can
/// enforce a limit on the queue's length to safeguard against its
/// unbounded growth"; the study uses L_limit = 800 for all policies).
class QueueGuardPolicy final : public AdmissionPolicy {
 public:
  /// `inner` must be non-null. A query is rejected outright when the
  /// queue already holds `length_limit` queries; otherwise `inner`
  /// decides.
  QueueGuardPolicy(std::unique_ptr<AdmissionPolicy> inner,
                   const QueueState* queue, uint64_t length_limit)
      : inner_(std::move(inner)),
        queue_(queue),
        length_limit_(length_limit),
        name_(std::string(inner_->name()) + "+QueueGuard") {}

  Decision Decide(WorkKey key, Nanos now) override {
    if (queue_->TotalLength() >= length_limit_) return Decision::kReject;
    return inner_->Decide(key, now);
  }
  void OnEnqueued(WorkKey key, Nanos now) override {
    inner_->OnEnqueued(key, now);
  }
  void OnRejected(WorkKey key, Nanos now) override {
    inner_->OnRejected(key, now);
  }
  void OnDequeued(WorkKey key, Nanos wait_time, Nanos now) override {
    inner_->OnDequeued(key, wait_time, now);
  }
  void OnCompleted(WorkKey key, Nanos processing_time,
                   Nanos now) override {
    inner_->OnCompleted(key, processing_time, now);
  }
  void OnShedded(WorkKey key, Nanos now) override {
    inner_->OnShedded(key, now);
  }
  Nanos EstimatedQueueWait(WorkKey key) const override {
    return inner_->EstimatedQueueWait(key);
  }

  std::string_view name() const override { return name_; }

  AdmissionPolicy* inner() { return inner_.get(); }
  uint64_t length_limit() const { return length_limit_; }

 private:
  std::unique_ptr<AdmissionPolicy> inner_;
  const QueueState* const queue_;
  const uint64_t length_limit_;
  std::string name_;
};

}  // namespace bouncer

#endif  // BOUNCER_CORE_QUEUE_GUARD_POLICY_H_
