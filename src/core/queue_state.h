#ifndef BOUNCER_CORE_QUEUE_STATE_H_
#define BOUNCER_CORE_QUEUE_STATE_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/core/types.h"
#include "src/util/stripe.h"

namespace bouncer {

/// Live per-type and total occupancy of the admitted-query FIFO queue
/// (paper §3: "Bouncer maintains per-type atomic counts of the queries
/// currently in the queue"). Maintained by the runtime (simulator or
/// server stage) as queries are enqueued and dequeued, and read by
/// policies on the decision path. All operations are lock-free.
///
/// With `num_stripes` > 1 the counts are striped by writer affinity:
/// each thread updates its own cache-line-padded stripe (picked via
/// StripeOf), and reads sum across stripes. The enqueue and dequeue of
/// one query routinely land on different stripes (submitter vs worker
/// thread), so individual stripe cells go negative; only the cross-
/// stripe sum is meaningful, and a read racing updates can transiently
/// undershoot — sums are clamped at zero. A single stripe (the default)
/// reproduces the old exact shared-counter behavior.
class QueueState {
 public:
  explicit QueueState(size_t num_types, size_t num_stripes = 1)
      : num_types_(num_types),
        num_stripes_(num_stripes == 0 ? 1 : num_stripes),
        stride_(StripeStride(num_types + 1)),
        cells_(stride_ * num_stripes_) {
    for (auto& c : cells_) c.store(0, std::memory_order_relaxed);
  }

  QueueState(const QueueState&) = delete;
  QueueState& operator=(const QueueState&) = delete;

  /// Called by the runtime when an admitted query enters the FIFO queue.
  void OnEnqueued(QueryTypeId type) {
    std::atomic<int64_t>* stripe = StripeBase();
    stripe[type].fetch_add(1, std::memory_order_relaxed);
    stripe[num_types_].fetch_add(1, std::memory_order_relaxed);
  }

  /// Called by the runtime when a query is pulled for processing.
  void OnDequeued(QueryTypeId type) {
    std::atomic<int64_t>* stripe = StripeBase();
    stripe[type].fetch_sub(1, std::memory_order_relaxed);
    stripe[num_types_].fetch_sub(1, std::memory_order_relaxed);
  }

  /// Number of queries of `type` currently in the queue.
  uint64_t CountForType(QueryTypeId type) const {
    if (type >= num_types_) return 0;
    return SumCell(type);
  }

  /// Total queue length.
  uint64_t TotalLength() const { return SumCell(num_types_); }

  /// Number of tracked types.
  size_t num_types() const { return num_types_; }
  size_t num_stripes() const { return num_stripes_; }

 private:
  std::atomic<int64_t>* StripeBase() {
    return cells_.data() + StripeOf(num_stripes_) * stride_;
  }

  uint64_t SumCell(size_t index) const {
    int64_t sum = 0;
    for (size_t s = 0; s < num_stripes_; ++s) {
      sum += cells_[s * stride_ + index].load(std::memory_order_relaxed);
    }
    return sum > 0 ? static_cast<uint64_t>(sum) : 0;
  }

  const size_t num_types_;
  const size_t num_stripes_;
  /// Cells per stripe: num_types_ per-type counts plus the stripe's
  /// total at index num_types_, padded to whole cache lines.
  const size_t stride_;
  std::vector<std::atomic<int64_t>> cells_;
};

}  // namespace bouncer

#endif  // BOUNCER_CORE_QUEUE_STATE_H_
