#ifndef BOUNCER_CORE_QUEUE_STATE_H_
#define BOUNCER_CORE_QUEUE_STATE_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/core/types.h"

namespace bouncer {

/// Live per-type and total occupancy of the admitted-query FIFO queue
/// (paper §3: "Bouncer maintains per-type atomic counts of the queries
/// currently in the queue"). Maintained by the runtime (simulator or
/// server stage) as queries are enqueued and dequeued, and read by
/// policies on the decision path. All operations are lock-free.
class QueueState {
 public:
  explicit QueueState(size_t num_types)
      : per_type_(num_types), total_(0) {
    for (auto& c : per_type_) c.store(0, std::memory_order_relaxed);
  }

  QueueState(const QueueState&) = delete;
  QueueState& operator=(const QueueState&) = delete;

  /// Called by the runtime when an admitted query enters the FIFO queue.
  void OnEnqueued(QueryTypeId type) {
    per_type_[type].fetch_add(1, std::memory_order_relaxed);
    total_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Called by the runtime when a query is pulled for processing.
  void OnDequeued(QueryTypeId type) {
    per_type_[type].fetch_sub(1, std::memory_order_relaxed);
    total_.fetch_sub(1, std::memory_order_relaxed);
  }

  /// Number of queries of `type` currently in the queue.
  uint64_t CountForType(QueryTypeId type) const {
    if (type >= per_type_.size()) return 0;
    return per_type_[type].load(std::memory_order_relaxed);
  }

  /// Total queue length.
  uint64_t TotalLength() const {
    return total_.load(std::memory_order_relaxed);
  }

  /// Number of tracked types.
  size_t num_types() const { return per_type_.size(); }

 private:
  std::vector<std::atomic<uint64_t>> per_type_;
  std::atomic<uint64_t> total_;
};

}  // namespace bouncer

#endif  // BOUNCER_CORE_QUEUE_STATE_H_
