#include "src/core/slo_config.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace bouncer {
namespace {

/// Minimal recursive-descent scanner over the SLO config grammar.
class Scanner {
 public:
  explicit Scanner(std::string_view input) : input_(input) {}

  void SkipSpace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= input_.size();
  }

  /// Consumes `c` (after whitespace) or returns an error naming it.
  Status Expect(char c) {
    SkipSpace();
    if (pos_ >= input_.size() || input_[pos_] != c) {
      return Error(std::string("expected '") + c + "'");
    }
    ++pos_;
    return Status::OK();
  }

  bool Peek(char c) {
    SkipSpace();
    return pos_ < input_.size() && input_[pos_] == c;
  }

  bool TryConsume(char c) {
    if (Peek(c)) {
      ++pos_;
      return true;
    }
    return false;
  }

  /// Parses a double-quoted string.
  StatusOr<std::string> QuotedString() {
    if (Status s = Expect('"'); !s.ok()) return s;
    std::string out;
    while (pos_ < input_.size() && input_[pos_] != '"') {
      out.push_back(input_[pos_++]);
    }
    if (pos_ >= input_.size()) return Error("unterminated string");
    ++pos_;  // Closing quote.
    return out;
  }

  /// Parses an identifier like p50 / p90 / p99.
  StatusOr<std::string> Identifier() {
    SkipSpace();
    std::string out;
    while (pos_ < input_.size() &&
           (std::isalnum(static_cast<unsigned char>(input_[pos_])))) {
      out.push_back(input_[pos_++]);
    }
    if (out.empty()) return Error("expected identifier");
    return out;
  }

  /// Parses a duration token up to the next delimiter.
  StatusOr<std::string> DurationToken() {
    SkipSpace();
    std::string out;
    while (pos_ < input_.size() &&
           (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '.')) {
      out.push_back(input_[pos_++]);
    }
    if (out.empty()) return Error("expected duration");
    return out;
  }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument(message + " at offset " +
                                   std::to_string(pos_));
  }

 private:
  std::string_view input_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<Nanos> ParseDuration(std::string_view token) {
  size_t i = 0;
  while (i < token.size() &&
         (std::isdigit(static_cast<unsigned char>(token[i])) ||
          token[i] == '.')) {
    ++i;
  }
  if (i == 0) {
    return Status::InvalidArgument("duration has no numeric part: " +
                                   std::string(token));
  }
  const std::string number(token.substr(0, i));
  char* end = nullptr;
  const double value = std::strtod(number.c_str(), &end);
  if (end == number.c_str() || *end != '\0') {
    return Status::InvalidArgument("bad duration number: " +
                                   std::string(token));
  }
  const std::string_view unit = token.substr(i);
  double scale = 0.0;
  if (unit == "ns") {
    scale = 1.0;
  } else if (unit == "us") {
    scale = static_cast<double>(kMicrosecond);
  } else if (unit == "ms") {
    scale = static_cast<double>(kMillisecond);
  } else if (unit == "s") {
    scale = static_cast<double>(kSecond);
  } else {
    return Status::InvalidArgument("unknown duration unit: " +
                                   std::string(token));
  }
  if (value < 0.0) {
    return Status::InvalidArgument("negative duration: " +
                                   std::string(token));
  }
  return static_cast<Nanos>(std::llround(value * scale));
}

std::string FormatDuration(Nanos value) {
  char buffer[32];
  if (value % kSecond == 0 && value != 0) {
    std::snprintf(buffer, sizeof(buffer), "%llds",
                  static_cast<long long>(value / kSecond));
  } else if (value % kMillisecond == 0) {
    std::snprintf(buffer, sizeof(buffer), "%lldms",
                  static_cast<long long>(value / kMillisecond));
  } else if (value % kMicrosecond == 0) {
    std::snprintf(buffer, sizeof(buffer), "%lldus",
                  static_cast<long long>(value / kMicrosecond));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%lldns",
                  static_cast<long long>(value));
  }
  return buffer;
}

namespace {

Status ParseObjectives(Scanner& scanner, Slo* slo) {
  if (Status s = scanner.Expect('{'); !s.ok()) return s;
  bool saw_any = false;
  while (!scanner.Peek('}')) {
    if (saw_any) {
      if (Status s = scanner.Expect(','); !s.ok()) return s;
    }
    auto key = scanner.Identifier();
    if (!key.ok()) return key.status();
    if (Status s = scanner.Expect('='); !s.ok()) return s;
    auto token = scanner.DurationToken();
    if (!token.ok()) return token.status();
    auto duration = ParseDuration(*token);
    if (!duration.ok()) return duration.status();
    if (*key == "p50") {
      slo->p50 = *duration;
    } else if (*key == "p90") {
      slo->p90 = *duration;
    } else if (*key == "p99") {
      slo->p99 = *duration;
    } else {
      return Status::InvalidArgument("unknown objective: " + *key);
    }
    saw_any = true;
  }
  if (Status s = scanner.Expect('}'); !s.ok()) return s;
  if (!saw_any) return Status::InvalidArgument("empty SLO block");
  if (slo->p50 > 0 && slo->p90 > 0 && slo->p50 > slo->p90) {
    return Status::InvalidArgument("p50 objective exceeds p90");
  }
  if (slo->p90 > 0 && slo->p99 > 0 && slo->p90 > slo->p99) {
    return Status::InvalidArgument("p90 objective exceeds p99");
  }
  return Status::OK();
}

}  // namespace

Status ParseSloConfig(std::string_view config, QueryTypeRegistry* registry) {
  Scanner scanner(config);
  bool first = true;
  while (!scanner.AtEnd()) {
    if (!first) {
      if (Status s = scanner.Expect(','); !s.ok()) return s;
      if (scanner.AtEnd()) break;  // Trailing comma tolerated.
    }
    first = false;
    auto name = scanner.QuotedString();
    if (!name.ok()) return name.status();
    if (Status s = scanner.Expect(':'); !s.ok()) return s;
    Slo slo;
    if (Status s = ParseObjectives(scanner, &slo); !s.ok()) return s;
    if (*name == "default") {
      if (Status s = registry->SetSlo(kDefaultQueryType, slo); !s.ok()) {
        return s;
      }
    } else {
      auto id = registry->Register(*name, slo);
      if (!id.ok()) return id.status();
    }
  }
  return Status::OK();
}

std::string FormatSloConfig(const QueryTypeRegistry& registry) {
  std::string out;
  for (QueryTypeId id = 0; id < registry.size(); ++id) {
    if (!out.empty()) out += ",\n";
    const Slo& slo = registry.GetSlo(id);
    out += "\"" + registry.Name(id) + "\":{";
    bool first = true;
    const auto append = [&](const char* key, Nanos value) {
      if (value <= 0) return;
      if (!first) out += ", ";
      out += std::string(key) + "=" + FormatDuration(value);
      first = false;
    };
    append("p50", slo.p50);
    append("p90", slo.p90);
    append("p99", slo.p99);
    out += "}";
  }
  return out;
}

}  // namespace bouncer
