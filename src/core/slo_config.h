#ifndef BOUNCER_CORE_SLO_CONFIG_H_
#define BOUNCER_CORE_SLO_CONFIG_H_

#include <string>
#include <string_view>

#include "src/core/query_type_registry.h"
#include "src/util/status.h"

namespace bouncer {

/// Parses latency-SLO configuration in the paper's §3 notation:
///
///   "Fast":{p50=10ms, p90=90ms}, "Slow":{p50=60ms, p90=270ms},
///   "default":{p50=30ms, p90=400ms}
///
/// into a QueryTypeRegistry. Rules:
///  * every entry is `"<type>":{<objective>[, <objective>...]}`;
///  * objectives are `p50=`, `p90=`, `p99=` with a duration suffix of
///    `us`, `ms` or `s` (fractions allowed: `p50=1.5ms`);
///  * entries are separated by commas; whitespace and newlines are free;
///  * the `default` entry, when present, sets the catch-all type's SLO
///    and may appear in any position; otherwise the default SLO is what
///    the registry was constructed with;
///  * duplicate type names and malformed syntax are errors; the paper's
///    SLOs are ordered objectives, so p50 <= p90 <= p99 is enforced when
///    both sides of a pair are present.
///
/// On success the registry contains one entry per non-default type, in
/// file order. Parsing stops at the first error, which names the
/// offending position.
Status ParseSloConfig(std::string_view config, QueryTypeRegistry* registry);

/// Formats a registry back into the §3 notation (round-trips through
/// ParseSloConfig). Times print in the largest exact unit.
std::string FormatSloConfig(const QueryTypeRegistry& registry);

/// Parses one duration token like "10ms", "1.5s", "250us" into
/// nanoseconds. Exposed for reuse by other config surfaces.
StatusOr<Nanos> ParseDuration(std::string_view token);

/// Formats nanoseconds as the shortest exact token ("10ms", "1500us").
std::string FormatDuration(Nanos value);

}  // namespace bouncer

#endif  // BOUNCER_CORE_SLO_CONFIG_H_
