#include "src/core/tenant_fair_policy.h"

#include <algorithm>
#include <cassert>

namespace bouncer {

TenantFairPolicy::TenantFairPolicy(std::unique_ptr<AdmissionPolicy> inner,
                                   const PolicyContext& context,
                                   const Options& options)
    : inner_(std::move(inner)),
      tenants_(context.tenants),
      queue_(context.queue),
      options_(options),
      rng_(options.seed) {
  assert(inner_ != nullptr);
  assert(tenants_ != nullptr);
  assert(queue_ != nullptr);
  name_ = std::string(inner_->name()) + "+TenantFair";
  if (options_.use_map_baseline) {
    map_ = std::make_unique<MapPolicyStateTable<Cell>>(/*num_types=*/1);
  } else {
    flat_ = std::make_unique<PolicyStateTable<Cell>>(/*num_types=*/1);
  }
  active_weight_.store(tenants_->TotalWeight(), std::memory_order_relaxed);
}

void TenantFairPolicy::RotateTo(Cell& cell, Nanos now) const {
  const Nanos step =
      options_.window_step > 0 ? options_.window_step : kMillisecond;
  const int64_t epoch = static_cast<int64_t>(now / step);
  int64_t seen = cell.epoch.load(std::memory_order_relaxed);
  if (seen >= epoch) return;
  if (!cell.epoch.compare_exchange_strong(seen, epoch,
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed)) {
    return;  // Another thread rotates this step.
  }
  if (epoch == seen + 1) {
    cell.prev_received.store(
        cell.cur_received.exchange(0, std::memory_order_acq_rel),
        std::memory_order_release);
    cell.prev_admitted.store(
        cell.cur_admitted.exchange(0, std::memory_order_acq_rel),
        std::memory_order_release);
  } else {
    // The tenant idled across at least one full step: both buckets stale.
    cell.prev_received.store(0, std::memory_order_release);
    cell.prev_admitted.store(0, std::memory_order_release);
    cell.cur_received.store(0, std::memory_order_release);
    cell.cur_admitted.store(0, std::memory_order_release);
  }
}

int64_t TenantFairPolicy::WindowReceived(const Cell& cell) {
  return std::max<int64_t>(
      0, cell.cur_received.load(std::memory_order_relaxed) +
             cell.prev_received.load(std::memory_order_relaxed));
}

int64_t TenantFairPolicy::WindowAdmitted(const Cell& cell) {
  return std::max<int64_t>(
      0, cell.cur_admitted.load(std::memory_order_relaxed) +
             cell.prev_admitted.load(std::memory_order_relaxed));
}

double TenantFairPolicy::OverrideProbability(double admitted,
                                             double fair) const {
  if (fair <= 0.0 || admitted >= fair) return 0.0;
  const double x = (fair - admitted) / fair;  // x in (0, 1].
  return options_.alpha * x / (1.0 + x);
}

void TenantFairPolicy::MaybeRefreshAggregates(Nanos now) {
  const Nanos deadline = next_refresh_.load(std::memory_order_relaxed);
  if (now < deadline) return;
  std::unique_lock<std::mutex> lock(refresh_mu_, std::try_to_lock);
  if (!lock.owns_lock()) return;  // Someone else is already scanning.
  if (now < next_refresh_.load(std::memory_order_relaxed)) return;
  const size_t n = tenants_->size();
  double weight = 0.0;
  double admitted = 0.0;
  for (size_t t = 0; t < n; ++t) {
    const Cell* cell = FindState(static_cast<TenantId>(t));
    if (cell == nullptr) continue;
    // Stale cells (tenant idle for > a window) read as 0 after their
    // next rotation; counting them once more here only smooths the
    // transition.
    const int64_t received = WindowReceived(*cell);
    if (received == 0 && cell->queued.load(std::memory_order_relaxed) <= 0) {
      continue;  // Inactive: no demand, no share.
    }
    weight += tenants_->WeightOf(static_cast<TenantId>(t));
    admitted += static_cast<double>(WindowAdmitted(*cell));
  }
  if (weight <= 0.0) weight = tenants_->TotalWeight();
  active_weight_.store(weight, std::memory_order_relaxed);
  window_admitted_total_.store(admitted, std::memory_order_relaxed);
  const Nanos interval =
      options_.refresh_interval > 0 ? options_.refresh_interval : kMillisecond;
  next_refresh_.store(now + interval, std::memory_order_relaxed);
}

Decision TenantFairPolicy::Decide(WorkKey key, Nanos now) {
  Cell& cell = StateFor(key.tenant);
  RotateTo(cell, now);
  MaybeRefreshAggregates(now);

  cell.total_received.fetch_add(1, std::memory_order_relaxed);
  cell.cur_received.fetch_add(1, std::memory_order_relaxed);

  // The tenant's weight lives in the registry's metadata chunks — a
  // second tenant-indexed cache line. Only the guard and override
  // branches need it, so the accept fast path never touches it.

  // Flood guard: under queue pressure a tenant gets at most `slack`
  // times its weighted share of the queue (plus the min_share floor).
  if (options_.flood_guard_limit > 0) {
    const uint64_t queue_len = queue_->TotalLength();
    if (queue_len >= options_.flood_guard_limit) {
      const double weight = tenants_->WeightOf(key.tenant);
      const double active_weight =
          std::max(active_weight_.load(std::memory_order_relaxed), weight);
      const double share =
          weight / active_weight * static_cast<double>(queue_len);
      const double cap = std::max(static_cast<double>(options_.min_share),
                                  options_.share_slack * share);
      const int64_t queued = cell.queued.load(std::memory_order_relaxed);
      if (static_cast<double>(queued) >= cap) {
        return Decision::kReject;
      }
    }
  }

  Decision decision = inner_->Decide(key, now);

  if (decision == Decision::kReject && options_.alpha > 0.0) {
    // Helping the underserved, tenant edition: admitted window count vs
    // the tenant's weighted share of everything admitted in the window.
    const double weight = tenants_->WeightOf(key.tenant);
    const double active_weight =
        std::max(active_weight_.load(std::memory_order_relaxed), weight);
    const double total =
        window_admitted_total_.load(std::memory_order_relaxed);
    const double fair = weight / active_weight * total;
    const double admitted = static_cast<double>(WindowAdmitted(cell));
    const double p = OverrideProbability(admitted, fair);
    if (p > 0.0) {
      bool pass = false;
      {
        std::lock_guard<std::mutex> lock(rng_mu_);
        pass = rng_.NextBernoulli(p);
      }
      if (pass) decision = Decision::kAccept;
    }
  }

  if (decision == Decision::kAccept) {
    cell.total_admitted.fetch_add(1, std::memory_order_relaxed);
    cell.cur_admitted.fetch_add(1, std::memory_order_relaxed);
  }
  return decision;
}

void TenantFairPolicy::OnEnqueued(WorkKey key, Nanos now) {
  if (options_.flood_guard_limit > 0) {
    StateFor(key.tenant).queued.fetch_add(1, std::memory_order_relaxed);
  }
  inner_->OnEnqueued(key, now);
}

void TenantFairPolicy::OnDequeued(WorkKey key, Nanos wait_time, Nanos now) {
  if (options_.flood_guard_limit > 0) {
    StateFor(key.tenant).queued.fetch_sub(1, std::memory_order_relaxed);
  }
  inner_->OnDequeued(key, wait_time, now);
}

void TenantFairPolicy::OnShedded(WorkKey key, Nanos now) {
  Cell& cell = StateFor(key.tenant);
  if (options_.flood_guard_limit > 0) {
    cell.queued.fetch_sub(1, std::memory_order_relaxed);
  }
  // Retract the accept (current bucket: sheds follow their accept within
  // a step or miscount one event at a boundary — acceptable noise).
  cell.cur_admitted.fetch_sub(1, std::memory_order_relaxed);
  cell.total_admitted.fetch_sub(1, std::memory_order_relaxed);
  inner_->OnShedded(key, now);
}

TenantFairPolicy::TenantSnapshot TenantFairPolicy::Snapshot(
    TenantId tenant) const {
  TenantSnapshot snapshot;
  const Cell* cell = FindState(tenant);
  if (cell == nullptr) return snapshot;
  snapshot.queued =
      std::max<int64_t>(0, cell->queued.load(std::memory_order_relaxed));
  snapshot.window_received = WindowReceived(*cell);
  snapshot.window_admitted = WindowAdmitted(*cell);
  snapshot.total_received =
      cell->total_received.load(std::memory_order_relaxed);
  snapshot.total_admitted = std::max<int64_t>(
      0, cell->total_admitted.load(std::memory_order_relaxed));
  return snapshot;
}

}  // namespace bouncer
