#ifndef BOUNCER_CORE_TENANT_FAIR_POLICY_H_
#define BOUNCER_CORE_TENANT_FAIR_POLICY_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>

#include "src/core/admission_policy.h"
#include "src/core/policy_state_table.h"
#include "src/core/tenant_registry.h"
#include "src/util/mpmc_queue.h"  // kCacheLineSize
#include "src/util/rng.h"

namespace bouncer {

/// Weighted-fair admission across tenants under overload: the
/// helping-the-underserved strategy of paper §4.2 extended from query
/// types to tenants (Tempo-style weighted shares), wrapped around any
/// inner policy. Two mechanisms, both O(1) per decision:
///
///  * Helping (acceptance floor): when the inner policy rejects, compare
///    the tenant's admitted count over a sliding window against its
///    weighted fair share w_t/Σw · A (A = total admitted across active
///    tenants). A tenant running below its share gets the rejection
///    overridden with probability α·x/(1+x), x the relative shortfall —
///    the same sigmoid as HelpingUnderservedPolicy, so a fully starved
///    tenant is helped with probability at most α/2.
///  * Flood guard (occupancy ceiling): once the stage queue exceeds
///    `flood_guard_limit`, a tenant whose queued count exceeds
///    `share_slack` × its weighted share of the queue is rejected before
///    the inner policy runs — a flooding tenant saturates its own share
///    and cannot displace everyone else's. 0 disables the guard.
///
/// Cardinality design (the tentpole): per-tenant state lives in
/// cache-line-sized cells of a flat-indexed PolicyStateTable, one cell
/// per tenant. Dense per-(stripe × slot × type) windows à la
/// SlidingWindowCounter are infeasible at 100k tenants, so each cell
/// holds a 2-bucket epoch-rotated window (current + previous step;
/// readers sum both) — O(1) memory per tenant, rotation is a lazy CAS on
/// the cell's epoch, no background work. The cross-tenant aggregates
/// (Σw of active tenants, total admitted A) are refreshed periodically
/// by whichever decision crosses the refresh deadline first, under a
/// try-lock — an O(num_tenants) scan every `refresh_interval`, never on
/// the per-decision path, never blocking a second decider.
///
/// `use_map_baseline` swaps the flat slab for the shared-lock
/// unordered_map the refactor exists to avoid — the A/B knob
/// bench_admission_throughput's tenant ladder measures against.
class TenantFairPolicy final : public AdmissionPolicy {
 public:
  struct Options {
    double alpha = 1.0;              ///< Helping scale α in (0, 1]; 0 = off.
    Nanos window_step = 100 * kMillisecond;  ///< Per-cell bucket width.
    Nanos refresh_interval = 100 * kMillisecond;  ///< Aggregate rescan.
    /// Stage queue length at which the flood guard engages (0 = off).
    uint64_t flood_guard_limit = 0;
    /// A tenant may occupy this multiple of its weighted queue share
    /// before the guard rejects it.
    double share_slack = 1.5;
    /// Queued items every tenant may hold regardless of share, so small
    /// shares at small queue depths never round down to a total ban.
    uint64_t min_share = 4;
    bool use_map_baseline = false;   ///< A/B: unordered_map-keyed state.
    uint64_t seed = 0x5eed4ULL;      ///< RNG seed for the override draw.
  };

  /// `inner` must be non-null; `context.tenants` and `context.queue`
  /// must be set (the tenant dimension and flood guard need them).
  TenantFairPolicy(std::unique_ptr<AdmissionPolicy> inner,
                   const PolicyContext& context, const Options& options);

  Decision Decide(WorkKey key, Nanos now) override;
  /// Queue-share tracking (the cell's `queued` count) only exists for
  /// the flood guard: with the guard off these hooks skip the tenant
  /// cell entirely, sparing the enqueue/dequeue path a touch of a cache
  /// line that is cold at high cardinality and that nothing would read.
  void OnEnqueued(WorkKey key, Nanos now) override;
  void OnRejected(WorkKey key, Nanos now) override {
    inner_->OnRejected(key, now);
  }
  void OnDequeued(WorkKey key, Nanos wait_time, Nanos now) override;
  void OnCompleted(WorkKey key, Nanos processing_time, Nanos now) override {
    inner_->OnCompleted(key, processing_time, now);
  }
  /// A shed query was never served: release its queue share and retract
  /// its accept so the fair-share window measures actual service.
  void OnShedded(WorkKey key, Nanos now) override;

  Nanos EstimatedQueueWait(WorkKey key) const override {
    return inner_->EstimatedQueueWait(key);
  }

  std::string_view name() const override { return name_; }

  AdmissionPolicy* inner() { return inner_.get(); }
  const Options& options() const { return options_; }

  /// Probability of overriding a rejection for a tenant with `admitted`
  /// window count against weighted fair share `fair` (for tests).
  double OverrideProbability(double admitted, double fair) const;

  /// Observability: the tenant's current queued / window-admitted /
  /// cumulative counts (approximate under concurrency). `queued` is
  /// only maintained while the flood guard is on (see OnEnqueued).
  struct TenantSnapshot {
    int64_t queued = 0;
    int64_t window_received = 0;
    int64_t window_admitted = 0;
    int64_t total_received = 0;
    int64_t total_admitted = 0;
  };
  TenantSnapshot Snapshot(TenantId tenant) const;

 private:
  /// Per-tenant cell: exactly one cache line, so 10k tenants cost 640 KB
  /// and two tenants never share a line. The 2-bucket window: `cur_*`
  /// accumulates the step begun at `epoch`, `prev_*` holds the completed
  /// step before it; readers sum both for a window of ~2 steps.
  struct alignas(kCacheLineSize) Cell {
    std::atomic<int64_t> epoch{0};
    std::atomic<int64_t> cur_received{0};
    std::atomic<int64_t> cur_admitted{0};
    std::atomic<int64_t> prev_received{0};
    std::atomic<int64_t> prev_admitted{0};
    std::atomic<int64_t> queued{0};
    std::atomic<int64_t> total_received{0};
    std::atomic<int64_t> total_admitted{0};
  };
  static_assert(sizeof(Cell) == kCacheLineSize);

  Cell& StateFor(TenantId tenant) {
    return flat_ != nullptr ? flat_->At(tenant) : map_->At(tenant);
  }
  const Cell* FindState(TenantId tenant) const {
    return flat_ != nullptr ? flat_->Find(tenant) : map_->Find(tenant);
  }
  /// Lazily rotates the cell's 2-bucket window into the step containing
  /// `now`. Losing a rotation race only miscounts a handful of events at
  /// a step boundary — the window is statistical, not an invariant.
  void RotateTo(Cell& cell, Nanos now) const;
  /// Window sums (both buckets, clamped at 0).
  static int64_t WindowReceived(const Cell& cell);
  static int64_t WindowAdmitted(const Cell& cell);
  /// O(num_tenants) rescan of Σw_active and total admitted, under a
  /// try-lock when `now` passed the refresh deadline.
  void MaybeRefreshAggregates(Nanos now);

  std::unique_ptr<AdmissionPolicy> inner_;
  const TenantRegistry* const tenants_;
  const QueueState* const queue_;
  const Options options_;
  std::string name_;

  std::unique_ptr<PolicyStateTable<Cell>> flat_;
  std::unique_ptr<MapPolicyStateTable<Cell>> map_;

  /// Cached cross-tenant aggregates (see MaybeRefreshAggregates).
  std::atomic<double> active_weight_;
  std::atomic<double> window_admitted_total_{0.0};
  std::atomic<Nanos> next_refresh_{0};
  std::mutex refresh_mu_;

  std::mutex rng_mu_;
  Rng rng_;
};

}  // namespace bouncer

#endif  // BOUNCER_CORE_TENANT_FAIR_POLICY_H_
