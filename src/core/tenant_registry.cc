#include "src/core/tenant_registry.h"

#include <bit>

namespace bouncer {

namespace {

/// splitmix64 finalizer: external ids are often small sequential account
/// numbers; this spreads them over the whole table.
uint64_t MixKey(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

constexpr uint32_t kMiss = UINT32_MAX;

}  // namespace

TenantRegistry::TenantRegistry(const Options& options) : options_(options) {
  if (options_.initial_capacity < 8) options_.initial_capacity = 8;
  options_.initial_capacity = std::bit_ceil(options_.initial_capacity);
  if (options_.max_tenants < 1) options_.max_tenants = 1;
  if (options_.default_weight <= 0.0) options_.default_weight = 1.0;
  head_.store(new Table(options_.initial_capacity),
              std::memory_order_release);
  // The default tenant: external id 0, weight 1, index 0.
  Status status;
  InternSlow(/*external_id=*/0, /*key=*/1, /*weight=*/1.0,
             /*update_weight=*/false, &status);
}

TenantRegistry::~TenantRegistry() {
  Table* table = head_.load(std::memory_order_acquire);
  while (table != nullptr) {
    Table* prev = table->prev;
    delete table;
    table = prev;
  }
  for (auto& chunk : meta_chunks_) {
    delete[] chunk.load(std::memory_order_acquire);
  }
}

void TenantRegistry::LocateMeta(size_t index, size_t* chunk,
                                size_t* offset) {
  if (index < kChunkBase) {
    *chunk = 0;
    *offset = index;
    return;
  }
  const size_t c = std::bit_width(index / kChunkBase);
  *chunk = c;
  *offset = index - (kChunkBase << (c - 1));
}

TenantRegistry::Meta* TenantRegistry::MetaFor(size_t index) const {
  size_t chunk, offset;
  LocateMeta(index, &chunk, &offset);
  if (chunk >= kMaxMetaChunks) return nullptr;
  Meta* cells = meta_chunks_[chunk].load(std::memory_order_acquire);
  return cells == nullptr ? nullptr : cells + offset;
}

TenantRegistry::Meta& TenantRegistry::EnsureMeta(size_t index) {
  size_t chunk, offset;
  LocateMeta(index, &chunk, &offset);
  Meta* cells = meta_chunks_[chunk].load(std::memory_order_acquire);
  if (cells == nullptr) {
    const size_t count = chunk == 0 ? kChunkBase : kChunkBase << (chunk - 1);
    Meta* fresh = new Meta[count];
    Meta* expected = nullptr;
    if (meta_chunks_[chunk].compare_exchange_strong(
            expected, fresh, std::memory_order_acq_rel,
            std::memory_order_acquire)) {
      cells = fresh;
    } else {
      delete[] fresh;
      cells = expected;
    }
  }
  return cells[offset];
}

uint32_t TenantRegistry::Lookup(uint64_t key) const {
  const uint64_t hash = MixKey(key);
  for (const Table* table = head_.load(std::memory_order_acquire);
       table != nullptr; table = table->prev) {
    size_t i = hash & table->mask;
    for (size_t probes = 0; probes <= table->mask; ++probes) {
      const uint64_t slot_key =
          table->slots[i].key.load(std::memory_order_acquire);
      if (slot_key == key) {
        return table->slots[i].value.load(std::memory_order_acquire);
      }
      if (slot_key == 0) break;  // Not in this table.
      i = (i + 1) & table->mask;
    }
  }
  return kMiss;
}

TenantId TenantRegistry::Intern(uint64_t external_id) {
  const uint64_t key = external_id + 1;
  if (key == 0) return kDefaultTenant;  // UINT64_MAX is unrepresentable.
  const uint32_t found = Lookup(key);
  if (found != kMiss) return found;
  Status status;
  return InternSlow(external_id, key, options_.default_weight,
                    /*update_weight=*/false, &status);
}

StatusOr<TenantId> TenantRegistry::Register(uint64_t external_id,
                                            double weight) {
  if (weight <= 0.0) {
    return Status::InvalidArgument("tenant weight must be positive");
  }
  const uint64_t key = external_id + 1;
  if (key == 0) {
    return Status::InvalidArgument("external tenant id UINT64_MAX reserved");
  }
  Status status;
  const TenantId id =
      InternSlow(external_id, key, weight, /*update_weight=*/true, &status);
  if (!status.ok()) return status;
  return id;
}

StatusOr<TenantId> TenantRegistry::Find(uint64_t external_id) const {
  const uint64_t key = external_id + 1;
  if (key != 0) {
    const uint32_t found = Lookup(key);
    if (found != kMiss) return static_cast<TenantId>(found);
  }
  return Status::NotFound("unknown tenant");
}

TenantId TenantRegistry::InternSlow(uint64_t external_id, uint64_t key,
                                    double weight, bool update_weight,
                                    Status* status) {
  *status = Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  const uint32_t existing = Lookup(key);
  if (existing != kMiss) {
    if (update_weight) {
      Meta& meta = EnsureMeta(existing);
      const double old = meta.weight.exchange(weight,
                                              std::memory_order_acq_rel);
      double total = total_weight_.load(std::memory_order_relaxed);
      while (!total_weight_.compare_exchange_weak(
          total, total - old + weight, std::memory_order_acq_rel,
          std::memory_order_relaxed)) {
      }
    }
    return existing;
  }
  const size_t index = count_.load(std::memory_order_relaxed);
  if (index >= options_.max_tenants) {
    overflowed_.fetch_add(1, std::memory_order_relaxed);
    *status = Status::ResourceExhausted("tenant cap reached");
    return kDefaultTenant;
  }
  Meta& meta = EnsureMeta(index);
  meta.external_id.store(external_id, std::memory_order_relaxed);
  meta.weight.store(weight, std::memory_order_release);
  double total = total_weight_.load(std::memory_order_relaxed);
  while (!total_weight_.compare_exchange_weak(total, total + weight,
                                              std::memory_order_acq_rel,
                                              std::memory_order_relaxed)) {
  }
  Table* head = head_.load(std::memory_order_relaxed);
  if (head_filled_ + 1 > (head->mask + 1) / 4 * 3) {
    Grow();
    head = head_.load(std::memory_order_relaxed);
  }
  InsertIntoHead(key, static_cast<uint32_t>(index));
  ++head_filled_;
  // Publish the index last: size() is the fence per-tenant state walkers
  // (fair-share refresh) rely on — every index below size() has its meta
  // and probe entry fully written.
  count_.store(index + 1, std::memory_order_release);
  return static_cast<TenantId>(index);
}

void TenantRegistry::InsertIntoHead(uint64_t key, uint32_t value) {
  Table* head = head_.load(std::memory_order_relaxed);
  size_t i = MixKey(key) & head->mask;
  while (true) {
    const uint64_t slot_key =
        head->slots[i].key.load(std::memory_order_relaxed);
    if (slot_key == 0) {
      // Value before key: a concurrent lock-free reader that matches the
      // key is guaranteed to read the final value.
      head->slots[i].value.store(value, std::memory_order_relaxed);
      head->slots[i].key.store(key, std::memory_order_release);
      return;
    }
    if (slot_key == key) return;  // Migrated duplicate.
    i = (i + 1) & head->mask;
  }
}

void TenantRegistry::Grow() {
  Table* old_head = head_.load(std::memory_order_relaxed);
  Table* bigger = new Table((old_head->mask + 1) * 2);
  bigger->prev = old_head;
  // Migrate live entries so steady-state lookups stay a single-table
  // probe; the old table stays chained (and authoritative for readers
  // that loaded it before the swap) until destruction.
  head_filled_ = 0;
  head_.store(bigger, std::memory_order_release);
  for (size_t i = 0; i <= old_head->mask; ++i) {
    const uint64_t key = old_head->slots[i].key.load(std::memory_order_acquire);
    if (key == 0) continue;
    InsertIntoHead(key,
                   old_head->slots[i].value.load(std::memory_order_acquire));
    ++head_filled_;
  }
}

double TenantRegistry::WeightOf(TenantId tenant) const {
  if (tenant >= size()) return options_.default_weight;
  const Meta* meta = MetaFor(tenant);
  if (meta == nullptr) return options_.default_weight;
  const double w = meta->weight.load(std::memory_order_acquire);
  return w > 0.0 ? w : options_.default_weight;
}

uint64_t TenantRegistry::ExternalIdOf(TenantId tenant) const {
  if (tenant >= size()) return 0;
  const Meta* meta = MetaFor(tenant);
  return meta == nullptr ? 0 : meta->external_id.load(std::memory_order_acquire);
}

}  // namespace bouncer
