#ifndef BOUNCER_CORE_TENANT_REGISTRY_H_
#define BOUNCER_CORE_TENANT_REGISTRY_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>

#include "src/core/types.h"
#include "src/util/status.h"

namespace bouncer {

/// Interns sparse external tenant/account ids (the u64 a request carries
/// on the wire) into dense TenantId indices, so every per-tenant state
/// table in the system can be a flat array addressed by index instead of
/// a hash map keyed by account id — the cardinality refactor that keeps
/// the admission decision O(1) at 10k+ tenants.
///
/// Concurrency contract, matching where each path sits in the system:
///
///  * Lookup of an already-interned tenant — every request after a
///    tenant's first — is a lock-free probe of an open-addressing table:
///    no mutex, no rehash, nothing the admission hot path can stall on.
///  * Interning a brand-new tenant serializes on a mutex. First contact
///    is rare by definition (bounded by the number of distinct tenants,
///    not by QPS) and publication into the probe table is a single
///    release store, so concurrent lookups never wait.
///  * Growth never rehashes under readers: when the current table fills
///    past 3/4, the insert path allocates a doubled table, copies the
///    live entries into it, and publishes it with one store. Old tables
///    stay chained behind the new one until destruction (memory bound:
///    < 2x the newest table), so a reader that raced the swap finds its
///    key in the chain. Dense indices and per-tenant metadata never
///    move.
///
/// Index 0 is kDefaultTenant, pre-interned for external id 0: v1 wire
/// frames and in-process callers that predate the tenant dimension all
/// land there. When `max_tenants` distinct ids have been interned,
/// further unknown ids degrade to kDefaultTenant (counted in
/// overflowed()) instead of growing without bound — per-tenant state is
/// O(max_tenants) by construction.
class TenantRegistry {
 public:
  struct Options {
    /// Slot count of the first probe table; rounded up to a power of 2.
    size_t initial_capacity = 256;
    /// Hard cap on distinct dense indices (the default tenant included).
    size_t max_tenants = 1 << 20;
    /// Fair-share weight assigned to tenants interned on first contact
    /// (Register() can set an explicit weight).
    double default_weight = 1.0;
  };

  TenantRegistry() : TenantRegistry(Options{}) {}
  explicit TenantRegistry(const Options& options);
  ~TenantRegistry();

  TenantRegistry(const TenantRegistry&) = delete;
  TenantRegistry& operator=(const TenantRegistry&) = delete;

  /// Dense index for `external_id`, interning it on first contact with
  /// the default weight. Thread-safe; lock-free for known ids. This is
  /// the request-path entry point.
  TenantId Intern(uint64_t external_id);

  /// Configuration-time registration with an explicit fair-share weight;
  /// re-registering an interned tenant updates its weight. Returns
  /// InvalidArgument for a non-positive weight, ResourceExhausted at the
  /// max_tenants cap.
  StatusOr<TenantId> Register(uint64_t external_id, double weight);

  /// Exact lookup without interning: NotFound for unknown ids.
  StatusOr<TenantId> Find(uint64_t external_id) const;

  /// Number of interned tenants (>= 1: the default tenant). Monotonic;
  /// indices [0, size()) are valid. Thread-safe.
  size_t size() const { return count_.load(std::memory_order_acquire); }

  /// Fair-share weight of a tenant index (default_weight for indices the
  /// caller made up). Thread-safe.
  double WeightOf(TenantId tenant) const;

  /// External wire id a tenant index was interned from.
  uint64_t ExternalIdOf(TenantId tenant) const;

  /// Sum of the weights of all interned tenants. Thread-safe.
  double TotalWeight() const {
    return total_weight_.load(std::memory_order_acquire);
  }

  /// Interning attempts that degraded to the default tenant because the
  /// max_tenants cap was reached.
  uint64_t overflowed() const {
    return overflowed_.load(std::memory_order_relaxed);
  }

  const Options& options() const { return options_; }

 private:
  /// One probe slot. `key` is external_id + 1 so 0 means empty; `value`
  /// (the dense index) is written before `key` is published, so a reader
  /// that matches the key always sees the final value.
  struct Slot {
    std::atomic<uint64_t> key{0};
    std::atomic<uint32_t> value{0};
  };
  /// One open-addressing table in the chain. Immutable once superseded
  /// (only the newest table takes inserts).
  struct Table {
    explicit Table(size_t slot_count)
        : mask(slot_count - 1), slots(new Slot[slot_count]) {}
    const size_t mask;
    std::unique_ptr<Slot[]> slots;
    Table* prev = nullptr;  ///< Next-older table; owned.
  };
  /// Per-tenant metadata, in chunks that never move (see kChunkBase).
  struct Meta {
    std::atomic<uint64_t> external_id{0};
    std::atomic<double> weight{0.0};
  };

  /// Meta chunk c covers kChunkBase << max(0, c-1) indices: chunk 0 is
  /// [0, base), chunk c >= 1 is [base << (c-1), base << c) — doubling
  /// chunks, so growth allocates a new chunk and publishes one pointer;
  /// existing Meta cells never move. 30 chunks cover base << 29 tenants.
  static constexpr size_t kChunkBase = 1024;
  static constexpr size_t kMaxMetaChunks = 30;

  static void LocateMeta(size_t index, size_t* chunk, size_t* offset);
  Meta* MetaFor(size_t index) const;  ///< Null when never allocated.
  Meta& EnsureMeta(size_t index);     ///< Allocates the chunk if needed.

  /// Lock-free probe of the whole table chain; UINT32_MAX on miss.
  uint32_t Lookup(uint64_t key) const;
  /// Interns under mu_; returns the index (existing or new).
  TenantId InternSlow(uint64_t external_id, uint64_t key, double weight,
                      bool update_weight, Status* status);
  /// Under mu_: doubles the head table and migrates live entries.
  void Grow();
  /// Under mu_: writes (key, value) into the head table (value first).
  void InsertIntoHead(uint64_t key, uint32_t value);

  Options options_;
  std::atomic<Table*> head_;
  std::array<std::atomic<Meta*>, kMaxMetaChunks> meta_chunks_{};
  std::atomic<size_t> count_{0};
  std::atomic<double> total_weight_{0.0};
  std::atomic<uint64_t> overflowed_{0};
  std::mutex mu_;         ///< Serializes inserts/growth; never on lookup.
  size_t head_filled_ = 0;  ///< Entries in the head table (under mu_).
};

}  // namespace bouncer

#endif  // BOUNCER_CORE_TENANT_REGISTRY_H_
