#ifndef BOUNCER_CORE_TYPES_H_
#define BOUNCER_CORE_TYPES_H_

#include <cstdint>

#include "src/util/time.h"

namespace bouncer {

/// Dense index of a query type within a QueryTypeRegistry. Index 0 is
/// always the "default" catch-all type (paper §3).
using QueryTypeId = uint32_t;

/// The registry reserves id 0 for the catch-all type that unknown query
/// strings resolve to.
inline constexpr QueryTypeId kDefaultQueryType = 0;

/// Dense index of a tenant within a TenantRegistry. Unlike query types
/// (fixed at configuration time), tenants are interned on first contact:
/// the registry maps sparse external account ids to dense indices so all
/// per-tenant state can live in flat arrays instead of hash maps.
using TenantId = uint32_t;

/// The registry reserves index 0 for the "default" tenant — traffic that
/// carries no tenant id on the wire (old clients) or arrives through
/// in-process call sites that predate the tenant dimension.
inline constexpr TenantId kDefaultTenant = 0;

/// Admission key of one query: the (query type, tenant) pair every
/// policy entry point receives. Implicitly constructible from a bare
/// QueryTypeId so single-tenant call sites (simulator, tests) keep
/// reading `Decide(type, now)` and charge the default tenant.
struct WorkKey {
  QueryTypeId type = kDefaultQueryType;
  TenantId tenant = kDefaultTenant;

  constexpr WorkKey() = default;
  constexpr WorkKey(QueryTypeId t) : type(t) {}  // NOLINT(runtime/explicit)
  constexpr WorkKey(QueryTypeId t, TenantId tn) : type(t), tenant(tn) {}

  friend constexpr bool operator==(const WorkKey&, const WorkKey&) = default;
};

/// Outcome of an admission decision.
enum class Decision : uint8_t {
  kAccept = 0,
  kReject = 1,
};

/// Why an admitted-or-not query did not complete normally. Travels with
/// the work item and, on the wire, in the response frame's flags byte so
/// clients can tell policy rejection, queue shed, and backpressure-driven
/// failures apart. Values are stable wire codes — append only.
enum class RejectReason : uint8_t {
  kNone = 0,            ///< Completed normally (or not yet decided).
  kPolicy = 1,          ///< Admission policy said no (paper Alg. 1).
  kQueueFull = 2,       ///< Accepted, then shed on a full bounded queue.
  kExpired = 3,         ///< Deadline passed while queued.
  kShardPolicy = 4,     ///< A shard's admission policy rejected a subquery.
  kShardQueueFull = 5,  ///< A shard shed a subquery on a full queue.
  kShardExpired = 6,    ///< A subquery expired in a shard queue.
};

constexpr const char* RejectReasonName(RejectReason reason) {
  switch (reason) {
    case RejectReason::kNone: return "none";
    case RejectReason::kPolicy: return "policy";
    case RejectReason::kQueueFull: return "queue_full";
    case RejectReason::kExpired: return "expired";
    case RejectReason::kShardPolicy: return "shard_policy";
    case RejectReason::kShardQueueFull: return "shard_queue_full";
    case RejectReason::kShardExpired: return "shard_expired";
  }
  return "unknown";
}

/// Latency service-level objective for a query type, expressed as target
/// percentile response times (paper §3). `p99` is optional (0 = unused):
/// the basic formulation checks p50 and p90; alternative formulations
/// (paper §7 future work, implemented here) can also check p99.
struct Slo {
  Nanos p50 = 0;
  Nanos p90 = 0;
  Nanos p99 = 0;  ///< 0 means "no p99 objective".

  friend bool operator==(const Slo&, const Slo&) = default;
};

}  // namespace bouncer

#endif  // BOUNCER_CORE_TYPES_H_
