#ifndef BOUNCER_CORE_TYPES_H_
#define BOUNCER_CORE_TYPES_H_

#include <cstdint>

#include "src/util/time.h"

namespace bouncer {

/// Dense index of a query type within a QueryTypeRegistry. Index 0 is
/// always the "default" catch-all type (paper §3).
using QueryTypeId = uint32_t;

/// The registry reserves id 0 for the catch-all type that unknown query
/// strings resolve to.
inline constexpr QueryTypeId kDefaultQueryType = 0;

/// Outcome of an admission decision.
enum class Decision : uint8_t {
  kAccept = 0,
  kReject = 1,
};

/// Latency service-level objective for a query type, expressed as target
/// percentile response times (paper §3). `p99` is optional (0 = unused):
/// the basic formulation checks p50 and p90; alternative formulations
/// (paper §7 future work, implemented here) can also check p99.
struct Slo {
  Nanos p50 = 0;
  Nanos p90 = 0;
  Nanos p99 = 0;  ///< 0 means "no p99 objective".

  friend bool operator==(const Slo&, const Slo&) = default;
};

}  // namespace bouncer

#endif  // BOUNCER_CORE_TYPES_H_
