#include "src/graph/cluster.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>

#include "src/util/epoch_visited.h"

namespace bouncer::graph {

using server::Outcome;
using server::Stage;
using server::WorkItem;

struct Cluster::QueryContext {
  GraphQuery query;
  GraphQueryResult result;
  CompletionFn done;
};

namespace {

/// Shared layout the shard handler executes against; both scatter paths
/// hang their synchronization state off a derived task type.
struct ShardTaskBase {
  Subquery subquery;
  SubqueryResult result;
};

/// Countdown for one pooled/async broker->shards scatter. Lives in the
/// broker worker's scratch; the last shard completion is its last access
/// (the wake-up goes through the cluster-owned ParkingLot, never through
/// this struct), so the gathering worker may move on the instant
/// `pending` reads zero.
struct ScatterCountdown {
  std::atomic<uint32_t> pending{0};
  std::atomic<bool> failed{false};
  /// RejectReason wire code of the first failure (first writer wins).
  std::atomic<uint8_t> fail_reason{0};
};

/// Maps a shard-stage failure to the kShard* reason the client sees.
uint8_t ShardFailReason(const WorkItem& w, Outcome outcome) {
  switch (w.reject_reason) {
    case RejectReason::kPolicy:
      return static_cast<uint8_t>(RejectReason::kShardPolicy);
    case RejectReason::kQueueFull:
      return static_cast<uint8_t>(RejectReason::kShardQueueFull);
    case RejectReason::kExpired:
      return static_cast<uint8_t>(RejectReason::kShardExpired);
    default:
      break;
  }
  switch (outcome) {
    case Outcome::kRejected:
      return static_cast<uint8_t>(RejectReason::kShardPolicy);
    case Outcome::kExpired:
      return static_cast<uint8_t>(RejectReason::kShardExpired);
    default:
      return static_cast<uint8_t>(RejectReason::kShardQueueFull);
  }
}

/// One in-flight subquery batch of the pooled/async path; lives in the
/// broker worker's scratch until the round's countdown reaches zero, so
/// raw pointers into it stay valid.
struct AsyncShardTask : ShardTaskBase {
  ScatterCountdown* countdown = nullptr;
};

/// Synchronization block of the legacy (pre-optimization) path.
struct LegacyScatterState {
  std::mutex mu;
  std::condition_variable cv;
  size_t pending = 0;
  bool ok = true;
  uint8_t fail_reason = 0;  ///< First failure's reason (under mu).
};

/// Legacy in-flight subquery; lives on the broker worker's stack.
struct LegacyShardTask : ShardTaskBase {
  LegacyScatterState* state = nullptr;
};

/// Per-broker-worker reusable buffers: the full multi-round execution of
/// a query runs out of these, so the steady-state fast path performs no
/// heap allocation (vectors are clear()ed, never freed; capacity is
/// retained across rounds and queries). Broker workers are dedicated
/// threads, so thread-local storage is per-worker by construction; no
/// round outlives its ScatterGather call, so nothing here escapes the
/// owning thread.
struct WorkerScratch {
  // Query-level trace/failure state, stamped from the WorkItem at
  // ExecuteQuery entry so the scatter rounds (which only see vertex
  // spans) can emit correlated events and report the failing reason.
  uint64_t trace_id = 0;
  bool traced = false;
  TenantId tenant = kDefaultTenant;
  uint8_t fail_reason = 0;
  // Round-level state.
  std::vector<AsyncShardTask> tasks;  ///< One slot per shard.
  ScatterCountdown countdown;
  // Query-level operand buffers.
  std::vector<uint32_t> degrees;
  std::vector<uint32_t> hop1;
  std::vector<uint32_t> hop2;
  std::vector<uint32_t> neighbors_a;
  std::vector<uint32_t> neighbors_b;
  std::vector<uint32_t> frontier;
  std::vector<uint32_t> next;
  // Epoch-stamped membership sets replacing per-call sort/unique scratch
  // (2-hop dedup) and sorted visited vectors (BFS).
  EpochVisitedSet dedup;
  EpochVisitedSet bfs_visited;
};

thread_local WorkerScratch tls_scratch;

/// Brief spin before parking on the scatter gate: under load the shard
/// completion lands within microseconds, while a park costs a futex
/// round-trip on both sides.
constexpr int kGatherSpins = 128;

}  // namespace

Cluster::Cluster(const GraphStore* graph, const QueryTypeRegistry* registry,
                 Clock* clock, const Options& options)
    : graph_(graph), registry_(registry), clock_(clock), options_(options) {
  const auto num_shards = static_cast<uint32_t>(
      options_.num_shards == 0 ? 1 : options_.num_shards);
  options_.num_shards = num_shards;
  if (options_.num_brokers == 0) options_.num_brokers = 1;
  if constexpr (stats::kTraceCompiledIn) {
    recorder_ = options_.recorder != nullptr
                    ? options_.recorder
                    : &stats::FlightRecorder::Global();
  }

  for (uint32_t s = 0; s < num_shards; ++s) {
    engines_.push_back(std::make_unique<ShardEngine>(
        graph_, s, num_shards, options_.work_per_edge,
        options_.update_log));
    ShardEngine* engine = engines_.back().get();
    Stage::Options stage_options;
    stage_options.name = "shard-" + std::to_string(s);
    stage_options.num_workers = options_.shard_workers;
    stage_options.queue_capacity = options_.shard_queue_capacity;
    stage_options.force_single_queue = options_.force_single_queue;
    stage_options.metrics = options_.metrics;
    stage_options.recorder = options_.recorder;
    stage_options.tenants = options_.tenants;
    const PolicyConfig policy = options_.shard_policy;
    shards_.push_back(std::make_unique<Stage>(
        stage_options, registry_, clock_,
        [&policy](const PolicyContext& context) {
          return CreatePolicy(policy, context);
        },
        [engine](WorkItem& item) {
          auto* task = static_cast<ShardTaskBase*>(item.user);
          engine->Execute(task->subquery, &task->result);
        }));
    if (!shards_.back()->init_status().ok()) {
      init_status_ = shards_.back()->init_status();
    }
  }

  for (size_t b = 0; b < options_.num_brokers; ++b) {
    Stage::Options stage_options;
    stage_options.name = "broker-" + std::to_string(b);
    stage_options.num_workers = options_.broker_workers;
    stage_options.queue_capacity = options_.broker_queue_capacity;
    stage_options.force_single_queue = options_.force_single_queue;
    stage_options.metrics = options_.metrics;
    stage_options.recorder = options_.recorder;
    stage_options.tenants = options_.tenants;
    const PolicyConfig policy = options_.broker_policy;
    brokers_.push_back(std::make_unique<Stage>(
        stage_options, registry_, clock_,
        [&policy](const PolicyContext& context) {
          return CreatePolicy(policy, context);
        },
        [this](WorkItem& item) { ExecuteQuery(item); }));
    if (!brokers_.back()->init_status().ok()) {
      init_status_ = brokers_.back()->init_status();
    }
  }
}

Cluster::~Cluster() { Stop(); }

Status Cluster::Start() {
  if (!init_status_.ok()) return init_status_;
  for (auto& shard : shards_) {
    if (Status s = shard->Start(); !s.ok()) return s;
  }
  for (auto& broker : brokers_) {
    if (Status s = broker->Start(); !s.ok()) return s;
  }
  return Status::OK();
}

void Cluster::Stop() {
  for (auto& broker : brokers_) broker->Stop(false);
  for (auto& shard : shards_) shard->Stop(false);
}

QueryTypeRegistry Cluster::MakeRegistry(const Slo& slo) {
  QueryTypeRegistry registry(slo);
  for (size_t i = 0; i < kNumGraphOps; ++i) {
    (void)registry.Register("QT" + std::to_string(i + 1), slo);
  }
  return registry;
}

GraphQuery Cluster::SampleQuery(GraphOp op, const GraphStore& graph,
                                Rng& rng) {
  GraphQuery q;
  q.op = op;
  const uint32_t n = std::max<uint32_t>(graph.num_vertices(), 1);
  q.source = static_cast<uint32_t>(rng.NextBounded(n));
  q.target = static_cast<uint32_t>(rng.NextBounded(n));
  if (op == GraphOp::kDegreeByExternalId) {
    q.external_id = graph.ExternalId(q.source);
  }
  return q;
}

Outcome Cluster::Submit(const GraphQuery& query, Nanos deadline,
                        CompletionFn done, uint64_t id, TenantId tenant) {
  const size_t broker_index =
      next_broker_.fetch_add(1, std::memory_order_relaxed) % brokers_.size();
  if (options_.legacy_scatter) {
    // Pre-optimization submit: a fresh shared context per query.
    auto context = std::make_shared<QueryContext>();
    context->query = query;
    context->done = std::move(done);

    WorkItem item;
    item.type = TypeIdFor(query.op);
    item.tenant = tenant;
    item.id = id;
    item.deadline = deadline;
    item.user = context.get();
    item.on_complete = [context](const WorkItem& w, Outcome outcome) {
      if (context->done) context->done(w, outcome, context->result);
    };
    return brokers_[broker_index]->Submit(std::move(item));
  }

  QueryContext* context = context_pool_.Acquire();
  context->query = query;
  context->result = GraphQueryResult{};
  context->done = std::move(done);

  WorkItem item;
  item.type = TypeIdFor(query.op);
  item.tenant = tenant;
  item.id = id;
  item.deadline = deadline;
  item.user = context;
  item.on_complete = [this](const WorkItem& w, Outcome outcome) {
    auto* ctx = static_cast<QueryContext*>(w.user);
    if (ctx->done) ctx->done(w, outcome, ctx->result);
    ctx->done = nullptr;  // Drop caller resources before pooling.
    context_pool_.Release(ctx);
  };
  return brokers_[broker_index]->Submit(std::move(item));
}

server::Stage::BatchResult Cluster::SubmitBatch(
    std::span<BatchRequest> requests, uint32_t submitter) {
  server::Stage::BatchResult total;
  if (requests.empty()) return total;
  if (options_.legacy_scatter) {
    // Baseline path: per-item submits (the batch API exists to beat this).
    for (BatchRequest& request : requests) {
      const Outcome outcome =
          Submit(request.query, request.deadline, std::move(request.done),
                 request.id, request.tenant);
      switch (outcome) {
        case Outcome::kCompleted: ++total.admitted; break;
        case Outcome::kRejected: ++total.rejected; break;
        default: ++total.shedded; break;
      }
    }
    return total;
  }

  // Build the WorkItems into per-broker scratch (reused across calls, so
  // steady state allocates nothing), then hand each broker its block in
  // one Stage::SubmitBatch. Requests spread round-robin across brokers;
  // each broker sees its share in arrival order.
  thread_local std::vector<std::vector<WorkItem>> tls_broker_items;
  std::vector<std::vector<WorkItem>>& broker_items = tls_broker_items;
  const size_t num_brokers = brokers_.size();
  if (broker_items.size() < num_brokers) broker_items.resize(num_brokers);
  for (size_t b = 0; b < num_brokers; ++b) broker_items[b].clear();

  const size_t start =
      num_brokers == 1
          ? 0
          : next_broker_.fetch_add(1, std::memory_order_relaxed);
  for (size_t i = 0; i < requests.size(); ++i) {
    BatchRequest& request = requests[i];
    QueryContext* context = context_pool_.Acquire();
    context->query = request.query;
    context->result = GraphQueryResult{};
    context->done = std::move(request.done);

    WorkItem item;
    item.type = TypeIdFor(request.query.op);
    item.tenant = request.tenant;
    item.id = request.id;
    item.traced = request.traced;
    item.deadline = request.deadline;
    item.user = context;
    item.on_complete = [this](const WorkItem& w, Outcome outcome) {
      auto* ctx = static_cast<QueryContext*>(w.user);
      if (ctx->done) ctx->done(w, outcome, ctx->result);
      ctx->done = nullptr;  // Drop caller resources before pooling.
      context_pool_.Release(ctx);
    };
    broker_items[(start + i) % num_brokers].push_back(std::move(item));
  }
  for (size_t b = 0; b < num_brokers; ++b) {
    if (broker_items[b].empty()) continue;
    const server::Stage::BatchResult r =
        brokers_[b]->SubmitBatch(broker_items[b], submitter);
    total.admitted += r.admitted;
    total.rejected += r.rejected;
    total.shedded += r.shedded;
    broker_items[b].clear();
  }
  return total;
}

bool Cluster::ScatterGather(std::span<const uint32_t> vertices,
                            Subquery::Kind kind, uint32_t limit_per_vertex,
                            QueryTypeId type, Nanos deadline,
                            std::vector<uint32_t>* degrees_out,
                            std::vector<uint32_t>* neighbors_out) {
  if (options_.legacy_scatter) {
    return ScatterGatherLegacy(vertices, kind, limit_per_vertex, type,
                               deadline, degrees_out, neighbors_out);
  }
  return ScatterGatherAsync(vertices, kind, limit_per_vertex, type, deadline,
                            degrees_out, neighbors_out);
}

bool Cluster::ScatterGatherAsync(std::span<const uint32_t> vertices,
                                 Subquery::Kind kind,
                                 uint32_t limit_per_vertex, QueryTypeId type,
                                 Nanos deadline,
                                 std::vector<uint32_t>* degrees_out,
                                 std::vector<uint32_t>* neighbors_out) {
  WorkerScratch& scratch = tls_scratch;
  const size_t num_shards = shards_.size();
  if (scratch.tasks.size() < num_shards) scratch.tasks.resize(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    AsyncShardTask& task = scratch.tasks[s];
    task.subquery.vertices.clear();
    task.result.degrees.clear();
    task.result.neighbors.clear();
    task.result.checksum = 0;
  }
  for (const uint32_t v : vertices) {
    scratch.tasks[v % num_shards].subquery.vertices.push_back(v);
  }

  uint32_t active = 0;
  for (size_t s = 0; s < num_shards; ++s) {
    if (!scratch.tasks[s].subquery.vertices.empty()) ++active;
  }
  if (active == 0) return true;

  // The countdown is preloaded with the full fan-out before the first
  // Submit: completion callbacks may fire synchronously inside Submit
  // (early rejection, shed on a full ring) or inline (single-shard fast
  // path), and must never see a count that another shard's submission
  // has not yet been added to.
  ScatterCountdown& countdown = scratch.countdown;
  countdown.pending.store(active, std::memory_order_relaxed);
  countdown.failed.store(false, std::memory_order_relaxed);
  countdown.fail_reason.store(0, std::memory_order_relaxed);

  for (size_t s = 0; s < num_shards; ++s) {
    AsyncShardTask& task = scratch.tasks[s];
    if (task.subquery.vertices.empty()) continue;
    task.subquery.kind = kind;
    task.subquery.limit_per_vertex = limit_per_vertex;
    task.countdown = &countdown;

    WorkItem item;
    item.type = type;
    item.tenant = scratch.tenant;
    item.id = scratch.trace_id;
    item.traced = scratch.traced;
    item.deadline = deadline;
    item.user = static_cast<ShardTaskBase*>(&task);
    if constexpr (stats::kTraceCompiledIn) {
      if (scratch.traced) {
        stats::TraceEvent event;
        event.ts = clock_->Now();
        event.id = scratch.trace_id;
        event.arg0 =
            static_cast<int64_t>(task.subquery.vertices.size());
        event.loc = static_cast<uint32_t>(s);
        event.type = static_cast<uint16_t>(type);
        event.tenant = scratch.tenant;
        event.kind =
            static_cast<uint8_t>(stats::TraceEventKind::kShardScatter);
        recorder_->Record(event);
      }
    }
    item.on_complete = [this](const WorkItem& w, Outcome outcome) {
      auto* t =
          static_cast<AsyncShardTask*>(static_cast<ShardTaskBase*>(w.user));
      ScatterCountdown* countdown = t->countdown;
      if (outcome != Outcome::kCompleted) {
        shard_failures_.fetch_add(1, std::memory_order_relaxed);
        countdown->failed.store(true, std::memory_order_relaxed);
        uint8_t expected = 0;
        countdown->fail_reason.compare_exchange_strong(
            expected, ShardFailReason(w, outcome), std::memory_order_relaxed);
      }
      if (options_.shard_metrics != nullptr) {
        options_.shard_metrics->Record(w, outcome);
      }
      // acq_rel: the decrement publishes this shard's result writes to
      // the gatherer's acquire load, and the RMW chain extends the
      // release sequence across shards. This is the countdown's last
      // access — the wake-up goes through the cluster-owned gate.
      if (countdown->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        scatter_gate_.NotifyAll();
      }
    };
    if (active == 1) {
      // Single-shard round: when the shard's queue is empty-and-admitting
      // the subquery runs right here on the broker worker, skipping both
      // thread hand-offs; admission accounting still lands on the shard.
      shards_[s]->SubmitInline(std::move(item));
    } else {
      shards_[s]->Submit(std::move(item));
    }
  }

  // Gather: lend this broker worker's CPU to the shard queues while the
  // round is in flight (work-helping) — the round's own subqueries sit
  // in those queues, so on a saturated host the gather usually completes
  // without a single thread hand-off. Only when every shard queue is dry
  // does the worker spin briefly and then park on the cluster's
  // eventcount; the 10 ms ParkingLot backstop re-checks the countdown,
  // so a missed wake-up costs bounded latency, never a hang.
  int spins = 0;
  while (countdown.pending.load(std::memory_order_acquire) != 0) {
    bool helped = false;
    for (size_t s = 0; s < num_shards; ++s) {
      if (countdown.pending.load(std::memory_order_acquire) == 0) break;
      if (shards_[s]->TryRunOne()) helped = true;
    }
    if (helped) {
      spins = 0;
      continue;
    }
    if (++spins < kGatherSpins) {
      CpuRelax();
      continue;
    }
    scatter_gate_.ParkUnless([&countdown] {
      return countdown.pending.load(std::memory_order_acquire) == 0;
    });
  }

  if (degrees_out != nullptr) {
    size_t total = 0;
    for (size_t s = 0; s < num_shards; ++s) {
      total += scratch.tasks[s].result.degrees.size();
    }
    degrees_out->reserve(degrees_out->size() + total);
    for (size_t s = 0; s < num_shards; ++s) {
      const auto& d = scratch.tasks[s].result.degrees;
      degrees_out->insert(degrees_out->end(), d.begin(), d.end());
    }
  }
  if (neighbors_out != nullptr) {
    size_t total = 0;
    for (size_t s = 0; s < num_shards; ++s) {
      total += scratch.tasks[s].result.neighbors.size();
    }
    neighbors_out->reserve(neighbors_out->size() + total);
    for (size_t s = 0; s < num_shards; ++s) {
      const auto& n = scratch.tasks[s].result.neighbors;
      neighbors_out->insert(neighbors_out->end(), n.begin(), n.end());
    }
  }
  const bool ok = !countdown.failed.load(std::memory_order_relaxed);
  if (!ok && scratch.fail_reason == 0) {
    scratch.fail_reason = countdown.fail_reason.load(std::memory_order_relaxed);
  }
  if constexpr (stats::kTraceCompiledIn) {
    if (scratch.traced) {
      stats::TraceEvent event;
      event.ts = clock_->Now();
      event.id = scratch.trace_id;
      event.arg0 = static_cast<int64_t>(active);
      event.type = static_cast<uint16_t>(type);
      event.tenant = scratch.tenant;
      event.kind = static_cast<uint8_t>(stats::TraceEventKind::kShardGather);
      event.reason = countdown.fail_reason.load(std::memory_order_relaxed);
      recorder_->Record(event);
    }
  }
  return ok;
}

bool Cluster::ScatterGatherLegacy(std::span<const uint32_t> vertices,
                                  Subquery::Kind kind,
                                  uint32_t limit_per_vertex, QueryTypeId type,
                                  Nanos deadline,
                                  std::vector<uint32_t>* degrees_out,
                                  std::vector<uint32_t>* neighbors_out) {
  const size_t num_shards = shards_.size();
  const TenantId scratch_tenant = tls_scratch.tenant;
  std::vector<LegacyShardTask> tasks(num_shards);
  for (const uint32_t v : vertices) {
    tasks[v % num_shards].subquery.vertices.push_back(v);
  }

  LegacyScatterState state;
  size_t active = 0;
  for (auto& task : tasks) {
    if (!task.subquery.vertices.empty()) ++active;
  }
  if (active == 0) return true;
  state.pending = active;

  for (size_t s = 0; s < num_shards; ++s) {
    LegacyShardTask& task = tasks[s];
    if (task.subquery.vertices.empty()) continue;
    task.subquery.kind = kind;
    task.subquery.limit_per_vertex = limit_per_vertex;
    task.state = &state;

    WorkItem item;
    item.type = type;
    item.tenant = scratch_tenant;
    item.deadline = deadline;
    item.user = static_cast<ShardTaskBase*>(&task);
    item.on_complete = [this](const WorkItem& w, Outcome outcome) {
      auto* t =
          static_cast<LegacyShardTask*>(static_cast<ShardTaskBase*>(w.user));
      if (options_.shard_metrics != nullptr) {
        options_.shard_metrics->Record(w, outcome);
      }
      std::lock_guard<std::mutex> lock(t->state->mu);
      if (outcome != Outcome::kCompleted) {
        t->state->ok = false;
        if (t->state->fail_reason == 0) {
          t->state->fail_reason = ShardFailReason(w, outcome);
        }
        shard_failures_.fetch_add(1, std::memory_order_relaxed);
      }
      --t->state->pending;
      t->state->cv.notify_all();
    };
    shards_[s]->Submit(std::move(item));
  }

  {
    std::unique_lock<std::mutex> lock(state.mu);
    state.cv.wait(lock, [&state] { return state.pending == 0; });
  }

  for (LegacyShardTask& task : tasks) {
    if (degrees_out != nullptr) {
      degrees_out->insert(degrees_out->end(), task.result.degrees.begin(),
                          task.result.degrees.end());
    }
    if (neighbors_out != nullptr) {
      neighbors_out->insert(neighbors_out->end(),
                            task.result.neighbors.begin(),
                            task.result.neighbors.end());
    }
  }
  if (!state.ok && tls_scratch.fail_reason == 0) {
    tls_scratch.fail_reason = state.fail_reason;
  }
  return state.ok;
}

bool Cluster::FetchDegrees(std::span<const uint32_t> vertices,
                           QueryTypeId type, Nanos deadline,
                           std::vector<uint32_t>* degrees) {
  degrees->clear();
  return ScatterGather(vertices, Subquery::Kind::kDegrees, 0, type, deadline,
                       degrees, nullptr);
}

bool Cluster::Expand(std::span<const uint32_t> vertices,
                     uint32_t cap_per_vertex, size_t total_cap,
                     QueryTypeId type, Nanos deadline,
                     std::vector<uint32_t>* unique_neighbors) {
  unique_neighbors->clear();
  const bool ok = ScatterGather(vertices, Subquery::Kind::kExpand,
                                cap_per_vertex, type, deadline, nullptr,
                                unique_neighbors);
  if (options_.legacy_scatter) {
    std::sort(unique_neighbors->begin(), unique_neighbors->end());
    unique_neighbors->erase(
        std::unique(unique_neighbors->begin(), unique_neighbors->end()),
        unique_neighbors->end());
    if (total_cap > 0 && unique_neighbors->size() > total_cap) {
      unique_neighbors->resize(total_cap);
    }
    return ok;
  }
  // Epoch-stamped dedup (O(n), no sort): the result is the same SET the
  // legacy sort+unique produces, in unspecified order. When the cap
  // bites, nth_element keeps exactly the smallest total_cap ids — the
  // set legacy's sorted resize keeps. Every fast-path consumer is
  // order-independent (counts, degree sums, membership tests, next-hop
  // vertex sets), so skipping the O(n log n) sort changes no observable
  // query value; profiling showed the sort alone costing as much as a
  // third of broker-side CPU on 2-hop/BFS rounds.
  EpochVisitedSet& dedup = tls_scratch.dedup;
  dedup.NextEpoch(graph_->num_vertices());
  size_t write = 0;
  for (const uint32_t u : *unique_neighbors) {
    if (dedup.Insert(u)) (*unique_neighbors)[write++] = u;
  }
  unique_neighbors->resize(write);
  if (total_cap > 0 && unique_neighbors->size() > total_cap) {
    std::nth_element(unique_neighbors->begin(),
                     unique_neighbors->begin() + total_cap,
                     unique_neighbors->end());
    unique_neighbors->resize(total_cap);
  }
  return ok;
}

uint64_t Cluster::RunBfs(const GraphQuery& query, uint32_t max_depth,
                         size_t frontier_cap, QueryTypeId type,
                         Nanos deadline, bool* ok) {
  if (options_.legacy_scatter) {
    return RunBfsLegacy(query, max_depth, frontier_cap, type, deadline, ok);
  }
  if (query.source == query.target) return 0;
  WorkerScratch& scratch = tls_scratch;
  scratch.bfs_visited.NextEpoch(graph_->num_vertices());
  scratch.bfs_visited.Insert(query.source);
  std::vector<uint32_t>& frontier = scratch.frontier;
  std::vector<uint32_t>& next = scratch.next;
  frontier.clear();
  frontier.push_back(query.source);
  for (uint32_t depth = 1; depth <= max_depth; ++depth) {
    if (!Expand(frontier, 64, frontier_cap, type, deadline, &next)) {
      *ok = false;
      return 0;
    }
    // `next` is the same unique set (smallest frontier_cap on overflow)
    // the legacy sorted path produces, in unspecified order: membership
    // is a linear scan, and the visited-filtered frontier below is a
    // vertex set whose order the next round doesn't observe — exactly
    // the legacy set_difference semantics without its scratch.
    if (std::find(next.begin(), next.end(), query.target) != next.end()) {
      return depth;
    }
    frontier.clear();
    for (const uint32_t u : next) {
      if (scratch.bfs_visited.Insert(u)) frontier.push_back(u);
    }
    if (frontier.empty()) return 0;  // Exhausted within the budget.
    if (frontier.size() > frontier_cap) frontier.resize(frontier_cap);
  }
  return 0;  // Not reachable within max_depth.
}

uint64_t Cluster::RunBfsLegacy(const GraphQuery& query, uint32_t max_depth,
                               size_t frontier_cap, QueryTypeId type,
                               Nanos deadline, bool* ok) {
  if (query.source == query.target) return 0;
  std::vector<uint32_t> visited = {query.source};
  std::vector<uint32_t> frontier = {query.source};
  for (uint32_t depth = 1; depth <= max_depth; ++depth) {
    std::vector<uint32_t> next;
    if (!Expand(frontier, 64, frontier_cap, type, deadline, &next)) {
      *ok = false;
      return 0;
    }
    if (std::binary_search(next.begin(), next.end(), query.target)) {
      return depth;
    }
    // next := next \ visited (both sorted).
    std::vector<uint32_t> fresh;
    fresh.reserve(next.size());
    std::set_difference(next.begin(), next.end(), visited.begin(),
                        visited.end(), std::back_inserter(fresh));
    if (fresh.empty()) return 0;  // Exhausted within the budget.
    std::vector<uint32_t> merged_visited;
    merged_visited.reserve(visited.size() + fresh.size());
    std::merge(visited.begin(), visited.end(), fresh.begin(), fresh.end(),
               std::back_inserter(merged_visited));
    visited = std::move(merged_visited);
    frontier = std::move(fresh);
    if (frontier.size() > frontier_cap) frontier.resize(frontier_cap);
  }
  return 0;  // Not reachable within max_depth.
}

void Cluster::ExecuteQuery(WorkItem& item) {
  auto* context = static_cast<QueryContext*>(item.user);
  const GraphQuery& q = context->query;
  GraphQueryResult& r = context->result;
  const QueryTypeId type = item.type;
  const Nanos deadline = item.deadline;
  WorkerScratch& scratch = tls_scratch;
  // The scatter rounds below only see vertex spans; park the query's
  // trace identity and a slot for the first subquery failure in the
  // worker's scratch for them.
  scratch.trace_id = item.id;
  scratch.traced = item.traced;
  scratch.tenant = item.tenant;
  scratch.fail_reason = 0;

  switch (q.op) {
    case GraphOp::kDegree: {
      std::vector<uint32_t>& degrees = scratch.degrees;
      const uint32_t v[] = {q.source};
      r.ok = FetchDegrees(v, type, deadline, &degrees);
      for (uint32_t d : degrees) r.value += d;
      break;
    }
    case GraphOp::kNeighbors: {
      std::vector<uint32_t>& neighbors = scratch.hop1;
      const uint32_t v[] = {q.source};
      r.ok = Expand(v, 64, 64, type, deadline, &neighbors);
      r.value = neighbors.size();
      break;
    }
    case GraphOp::kDegreeByExternalId: {
      const auto vertex = graph_->FindByExternalId(q.external_id);
      if (!vertex.ok()) {
        r.value = 0;
        break;
      }
      std::vector<uint32_t>& degrees = scratch.degrees;
      const uint32_t v[] = {*vertex};
      r.ok = FetchDegrees(v, type, deadline, &degrees);
      for (uint32_t d : degrees) r.value += d;
      break;
    }
    case GraphOp::kCommonNeighbors: {
      std::vector<uint32_t>& a = scratch.neighbors_a;
      std::vector<uint32_t>& b = scratch.neighbors_b;
      const uint32_t va[] = {q.source};
      const uint32_t vb[] = {q.target};
      r.ok = Expand(va, 512, 512, type, deadline, &a);
      r.ok = Expand(vb, 512, 512, type, deadline, &b) && r.ok;
      // Order-independent intersection count (both lists are unique
      // sets; fast-path Expand returns them unordered): mark one side in
      // the epoch set, count the other side's hits. The legacy path
      // materialized the sorted intersection only to take its size.
      EpochVisitedSet& membership = scratch.dedup;
      membership.NextEpoch(graph_->num_vertices());
      for (const uint32_t u : a) membership.Insert(u);
      uint64_t common = 0;
      for (const uint32_t u : b) {
        if (membership.Contains(u)) ++common;
      }
      r.value = common;
      break;
    }
    case GraphOp::kNeighborDegreeSum: {
      std::vector<uint32_t>& neighbors = scratch.hop1;
      const uint32_t v[] = {q.source};
      r.ok = Expand(v, 128, 128, type, deadline, &neighbors);
      std::vector<uint32_t>& degrees = scratch.degrees;
      r.ok = FetchDegrees(neighbors, type, deadline, &degrees) && r.ok;
      for (uint32_t d : degrees) r.value += d;
      break;
    }
    case GraphOp::kTopKNeighbors: {
      std::vector<uint32_t>& neighbors = scratch.hop1;
      const uint32_t v[] = {q.source};
      r.ok = Expand(v, 256, 256, type, deadline, &neighbors);
      std::vector<uint32_t>& degrees = scratch.degrees;
      r.ok = FetchDegrees(neighbors, type, deadline, &degrees) && r.ok;
      std::sort(degrees.begin(), degrees.end(), std::greater<>());
      const size_t k = std::min<size_t>(10, degrees.size());
      for (size_t i = 0; i < k; ++i) r.value += degrees[i];
      break;
    }
    case GraphOp::kTwoHopSample: {
      std::vector<uint32_t>& hop1 = scratch.hop1;
      const uint32_t v[] = {q.source};
      r.ok = Expand(v, 64, 64, type, deadline, &hop1);
      if (hop1.size() > 32) {
        // Sample the 32 smallest ids, matching the legacy sorted resize
        // (fast-path Expand output is unordered, so select explicitly).
        if (!options_.legacy_scatter) {
          std::nth_element(hop1.begin(), hop1.begin() + 32, hop1.end());
        }
        hop1.resize(32);
      }
      std::vector<uint32_t>& hop2 = scratch.hop2;
      r.ok = Expand(hop1, 32, 1024, type, deadline, &hop2) && r.ok;
      r.value = hop2.size();
      break;
    }
    case GraphOp::kTwoHopCount: {
      std::vector<uint32_t>& hop1 = scratch.hop1;
      const uint32_t v[] = {q.source};
      r.ok = Expand(v, 128, 128, type, deadline, &hop1);
      std::vector<uint32_t>& hop2 = scratch.hop2;
      r.ok = Expand(hop1, 64, 2048, type, deadline, &hop2) && r.ok;
      r.value = hop2.size();
      break;
    }
    case GraphOp::kTwoHopDedup: {
      std::vector<uint32_t>& hop1 = scratch.hop1;
      const uint32_t v[] = {q.source};
      r.ok = Expand(v, 256, 256, type, deadline, &hop1);
      std::vector<uint32_t>& hop2 = scratch.hop2;
      r.ok = Expand(hop1, 64, 4096, type, deadline, &hop2) && r.ok;
      r.value = hop2.size();
      if (hop2.size() > 64) hop2.resize(64);
      std::vector<uint32_t>& degrees = scratch.degrees;
      r.ok = FetchDegrees(hop2, type, deadline, &degrees) && r.ok;
      break;
    }
    case GraphOp::kDistance3: {
      bool ok = true;
      r.value = RunBfs(q, 3, 2048, type, deadline, &ok);
      r.ok = ok;
      break;
    }
    case GraphOp::kDistance4: {
      bool ok = true;
      r.value = RunBfs(q, 4, 4096, type, deadline, &ok);
      r.ok = ok;
      break;
    }
  }
  if (!r.ok) r.fail_reason = scratch.fail_reason;
}

}  // namespace bouncer::graph
