#include "src/graph/cluster.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>

namespace bouncer::graph {

using server::Outcome;
using server::Stage;
using server::WorkItem;

struct Cluster::QueryContext {
  GraphQuery query;
  GraphQueryResult result;
  CompletionFn done;
};

struct Cluster::ScatterState {
  std::mutex mu;
  std::condition_variable cv;
  size_t pending = 0;
  bool ok = true;
};

namespace {

/// One in-flight subquery; lives on the broker worker's stack until the
/// scatter completes, so raw pointers into it stay valid.
struct ShardTask {
  Subquery subquery;
  SubqueryResult result;
  Cluster::ScatterState* state = nullptr;
};

}  // namespace

Cluster::Cluster(const GraphStore* graph, const QueryTypeRegistry* registry,
                 Clock* clock, const Options& options)
    : graph_(graph), registry_(registry), clock_(clock), options_(options) {
  const auto num_shards = static_cast<uint32_t>(
      options_.num_shards == 0 ? 1 : options_.num_shards);
  options_.num_shards = num_shards;
  if (options_.num_brokers == 0) options_.num_brokers = 1;

  for (uint32_t s = 0; s < num_shards; ++s) {
    engines_.push_back(std::make_unique<ShardEngine>(
        graph_, s, num_shards, options_.work_per_edge,
        options_.update_log));
    ShardEngine* engine = engines_.back().get();
    Stage::Options stage_options;
    stage_options.name = "shard-" + std::to_string(s);
    stage_options.num_workers = options_.shard_workers;
    stage_options.queue_capacity = options_.shard_queue_capacity;
    const PolicyConfig policy = options_.shard_policy;
    shards_.push_back(std::make_unique<Stage>(
        stage_options, registry_, clock_,
        [&policy](const PolicyContext& context) {
          return CreatePolicy(policy, context);
        },
        [engine](WorkItem& item) {
          auto* task = static_cast<ShardTask*>(item.user);
          engine->Execute(task->subquery, &task->result);
        }));
    if (!shards_.back()->init_status().ok()) {
      init_status_ = shards_.back()->init_status();
    }
  }

  for (size_t b = 0; b < options_.num_brokers; ++b) {
    Stage::Options stage_options;
    stage_options.name = "broker-" + std::to_string(b);
    stage_options.num_workers = options_.broker_workers;
    stage_options.queue_capacity = options_.broker_queue_capacity;
    const PolicyConfig policy = options_.broker_policy;
    brokers_.push_back(std::make_unique<Stage>(
        stage_options, registry_, clock_,
        [&policy](const PolicyContext& context) {
          return CreatePolicy(policy, context);
        },
        [this](WorkItem& item) { ExecuteQuery(item); }));
    if (!brokers_.back()->init_status().ok()) {
      init_status_ = brokers_.back()->init_status();
    }
  }
}

Cluster::~Cluster() { Stop(); }

Status Cluster::Start() {
  if (!init_status_.ok()) return init_status_;
  for (auto& shard : shards_) {
    if (Status s = shard->Start(); !s.ok()) return s;
  }
  for (auto& broker : brokers_) {
    if (Status s = broker->Start(); !s.ok()) return s;
  }
  return Status::OK();
}

void Cluster::Stop() {
  for (auto& broker : brokers_) broker->Stop(false);
  for (auto& shard : shards_) shard->Stop(false);
}

QueryTypeRegistry Cluster::MakeRegistry(const Slo& slo) {
  QueryTypeRegistry registry(slo);
  for (size_t i = 0; i < kNumGraphOps; ++i) {
    (void)registry.Register("QT" + std::to_string(i + 1), slo);
  }
  return registry;
}

GraphQuery Cluster::SampleQuery(GraphOp op, const GraphStore& graph,
                                Rng& rng) {
  GraphQuery q;
  q.op = op;
  const uint32_t n = std::max<uint32_t>(graph.num_vertices(), 1);
  q.source = static_cast<uint32_t>(rng.NextBounded(n));
  q.target = static_cast<uint32_t>(rng.NextBounded(n));
  if (op == GraphOp::kDegreeByExternalId) {
    q.external_id = graph.ExternalId(q.source);
  }
  return q;
}

Outcome Cluster::Submit(const GraphQuery& query, Nanos deadline,
                        CompletionFn done) {
  auto context = std::make_shared<QueryContext>();
  context->query = query;
  context->done = std::move(done);

  WorkItem item;
  item.type = TypeIdFor(query.op);
  item.deadline = deadline;
  item.user = context.get();
  item.on_complete = [context](const WorkItem& w, Outcome outcome) {
    if (context->done) context->done(w, outcome, context->result);
  };
  const size_t broker_index =
      next_broker_.fetch_add(1, std::memory_order_relaxed) % brokers_.size();
  return brokers_[broker_index]->Submit(std::move(item));
}

bool Cluster::ScatterGather(std::span<const uint32_t> vertices,
                            Subquery::Kind kind, uint32_t limit_per_vertex,
                            QueryTypeId type, Nanos deadline,
                            SubqueryResult* merged) {
  const size_t num_shards = shards_.size();
  std::vector<ShardTask> tasks(num_shards);
  for (const uint32_t v : vertices) {
    tasks[v % num_shards].subquery.vertices.push_back(v);
  }

  ScatterState state;
  size_t active = 0;
  for (auto& task : tasks) {
    if (!task.subquery.vertices.empty()) ++active;
  }
  if (active == 0) return true;
  state.pending = active;

  for (size_t s = 0; s < num_shards; ++s) {
    ShardTask& task = tasks[s];
    if (task.subquery.vertices.empty()) continue;
    task.subquery.kind = kind;
    task.subquery.limit_per_vertex = limit_per_vertex;
    task.state = &state;

    WorkItem item;
    item.type = type;
    item.deadline = deadline;
    item.user = &task;
    item.on_complete = [this](const WorkItem& w, Outcome outcome) {
      auto* t = static_cast<ShardTask*>(w.user);
      std::lock_guard<std::mutex> lock(t->state->mu);
      if (outcome != Outcome::kCompleted) {
        t->state->ok = false;
        shard_failures_.fetch_add(1, std::memory_order_relaxed);
      }
      --t->state->pending;
      t->state->cv.notify_all();
    };
    shards_[s]->Submit(std::move(item));
  }

  {
    std::unique_lock<std::mutex> lock(state.mu);
    state.cv.wait(lock, [&state] { return state.pending == 0; });
  }

  for (ShardTask& task : tasks) {
    merged->checksum ^= task.result.checksum;
    merged->degrees.insert(merged->degrees.end(), task.result.degrees.begin(),
                           task.result.degrees.end());
    merged->neighbors.insert(merged->neighbors.end(),
                             task.result.neighbors.begin(),
                             task.result.neighbors.end());
  }
  return state.ok;
}

bool Cluster::FetchDegrees(std::span<const uint32_t> vertices,
                           QueryTypeId type, Nanos deadline,
                           std::vector<uint32_t>* degrees) {
  SubqueryResult merged;
  const bool ok = ScatterGather(vertices, Subquery::Kind::kDegrees, 0, type,
                                deadline, &merged);
  *degrees = std::move(merged.degrees);
  return ok;
}

bool Cluster::Expand(std::span<const uint32_t> vertices,
                     uint32_t cap_per_vertex, size_t total_cap,
                     QueryTypeId type, Nanos deadline,
                     std::vector<uint32_t>* unique_neighbors) {
  SubqueryResult merged;
  const bool ok = ScatterGather(vertices, Subquery::Kind::kExpand,
                                cap_per_vertex, type, deadline, &merged);
  std::sort(merged.neighbors.begin(), merged.neighbors.end());
  merged.neighbors.erase(
      std::unique(merged.neighbors.begin(), merged.neighbors.end()),
      merged.neighbors.end());
  if (total_cap > 0 && merged.neighbors.size() > total_cap) {
    merged.neighbors.resize(total_cap);
  }
  *unique_neighbors = std::move(merged.neighbors);
  return ok;
}

uint64_t Cluster::RunBfs(const GraphQuery& query, uint32_t max_depth,
                         size_t frontier_cap, QueryTypeId type,
                         Nanos deadline, bool* ok) {
  if (query.source == query.target) return 0;
  std::vector<uint32_t> visited = {query.source};
  std::vector<uint32_t> frontier = {query.source};
  for (uint32_t depth = 1; depth <= max_depth; ++depth) {
    std::vector<uint32_t> next;
    if (!Expand(frontier, 64, frontier_cap, type, deadline, &next)) {
      *ok = false;
      return 0;
    }
    if (std::binary_search(next.begin(), next.end(), query.target)) {
      return depth;
    }
    // next := next \ visited (both sorted).
    std::vector<uint32_t> fresh;
    fresh.reserve(next.size());
    std::set_difference(next.begin(), next.end(), visited.begin(),
                        visited.end(), std::back_inserter(fresh));
    if (fresh.empty()) return 0;  // Exhausted within the budget.
    std::vector<uint32_t> merged_visited;
    merged_visited.reserve(visited.size() + fresh.size());
    std::merge(visited.begin(), visited.end(), fresh.begin(), fresh.end(),
               std::back_inserter(merged_visited));
    visited = std::move(merged_visited);
    frontier = std::move(fresh);
    if (frontier.size() > frontier_cap) frontier.resize(frontier_cap);
  }
  return 0;  // Not reachable within max_depth.
}

void Cluster::ExecuteQuery(WorkItem& item) {
  auto* context = static_cast<QueryContext*>(item.user);
  const GraphQuery& q = context->query;
  GraphQueryResult& r = context->result;
  const QueryTypeId type = item.type;
  const Nanos deadline = item.deadline;

  switch (q.op) {
    case GraphOp::kDegree: {
      std::vector<uint32_t> degrees;
      const uint32_t v[] = {q.source};
      r.ok = FetchDegrees(v, type, deadline, &degrees);
      for (uint32_t d : degrees) r.value += d;
      break;
    }
    case GraphOp::kNeighbors: {
      std::vector<uint32_t> neighbors;
      const uint32_t v[] = {q.source};
      r.ok = Expand(v, 64, 64, type, deadline, &neighbors);
      r.value = neighbors.size();
      break;
    }
    case GraphOp::kDegreeByExternalId: {
      const auto vertex = graph_->FindByExternalId(q.external_id);
      if (!vertex.ok()) {
        r.value = 0;
        break;
      }
      std::vector<uint32_t> degrees;
      const uint32_t v[] = {*vertex};
      r.ok = FetchDegrees(v, type, deadline, &degrees);
      for (uint32_t d : degrees) r.value += d;
      break;
    }
    case GraphOp::kCommonNeighbors: {
      std::vector<uint32_t> a;
      std::vector<uint32_t> b;
      const uint32_t va[] = {q.source};
      const uint32_t vb[] = {q.target};
      r.ok = Expand(va, 512, 512, type, deadline, &a);
      r.ok = Expand(vb, 512, 512, type, deadline, &b) && r.ok;
      std::vector<uint32_t> common;
      std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                            std::back_inserter(common));
      r.value = common.size();
      break;
    }
    case GraphOp::kNeighborDegreeSum: {
      std::vector<uint32_t> neighbors;
      const uint32_t v[] = {q.source};
      r.ok = Expand(v, 128, 128, type, deadline, &neighbors);
      std::vector<uint32_t> degrees;
      r.ok = FetchDegrees(neighbors, type, deadline, &degrees) && r.ok;
      for (uint32_t d : degrees) r.value += d;
      break;
    }
    case GraphOp::kTopKNeighbors: {
      std::vector<uint32_t> neighbors;
      const uint32_t v[] = {q.source};
      r.ok = Expand(v, 256, 256, type, deadline, &neighbors);
      std::vector<uint32_t> degrees;
      r.ok = FetchDegrees(neighbors, type, deadline, &degrees) && r.ok;
      std::sort(degrees.begin(), degrees.end(), std::greater<>());
      const size_t k = std::min<size_t>(10, degrees.size());
      for (size_t i = 0; i < k; ++i) r.value += degrees[i];
      break;
    }
    case GraphOp::kTwoHopSample: {
      std::vector<uint32_t> hop1;
      const uint32_t v[] = {q.source};
      r.ok = Expand(v, 64, 64, type, deadline, &hop1);
      if (hop1.size() > 32) hop1.resize(32);
      std::vector<uint32_t> hop2;
      r.ok = Expand(hop1, 32, 1024, type, deadline, &hop2) && r.ok;
      r.value = hop2.size();
      break;
    }
    case GraphOp::kTwoHopCount: {
      std::vector<uint32_t> hop1;
      const uint32_t v[] = {q.source};
      r.ok = Expand(v, 128, 128, type, deadline, &hop1);
      std::vector<uint32_t> hop2;
      r.ok = Expand(hop1, 64, 2048, type, deadline, &hop2) && r.ok;
      r.value = hop2.size();
      break;
    }
    case GraphOp::kTwoHopDedup: {
      std::vector<uint32_t> hop1;
      const uint32_t v[] = {q.source};
      r.ok = Expand(v, 256, 256, type, deadline, &hop1);
      std::vector<uint32_t> hop2;
      r.ok = Expand(hop1, 64, 4096, type, deadline, &hop2) && r.ok;
      r.value = hop2.size();
      if (hop2.size() > 64) hop2.resize(64);
      std::vector<uint32_t> degrees;
      r.ok = FetchDegrees(hop2, type, deadline, &degrees) && r.ok;
      break;
    }
    case GraphOp::kDistance3: {
      bool ok = true;
      r.value = RunBfs(q, 3, 2048, type, deadline, &ok);
      r.ok = ok;
      break;
    }
    case GraphOp::kDistance4: {
      bool ok = true;
      r.value = RunBfs(q, 4, 4096, type, deadline, &ok);
      r.ok = ok;
      break;
    }
  }
}

}  // namespace bouncer::graph
