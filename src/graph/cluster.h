#ifndef BOUNCER_GRAPH_CLUSTER_H_
#define BOUNCER_GRAPH_CLUSTER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "src/core/policy_factory.h"
#include "src/graph/graph_store.h"
#include "src/graph/shard_engine.h"
#include "src/server/metrics_collector.h"
#include "src/server/stage.h"
#include "src/util/mpmc_queue.h"
#include "src/util/object_pool.h"
#include "src/util/rng.h"

namespace bouncer::graph {

/// The eleven graph operations standing in for the anonymized production
/// query types QT1..QT11 of paper §5.4, sorted by cost ascending. Each
/// maps to one or more broker→shard communication rounds.
enum class GraphOp : uint32_t {
  kDegree = 0,             ///< QT1: degree of one vertex.
  kNeighbors = 1,          ///< QT2: capped adjacency fetch.
  kDegreeByExternalId = 2, ///< QT3: hash-index lookup + degree.
  kCommonNeighbors = 3,    ///< QT4: adjacency intersection of two vertices.
  kNeighborDegreeSum = 4,  ///< QT5: 1-hop expand + degree round.
  kTopKNeighbors = 5,      ///< QT6: 1-hop expand + degree round + top-k.
  kTwoHopSample = 6,       ///< QT7: sampled 2-hop expansion.
  kTwoHopCount = 7,        ///< QT8: capped 2-hop expansion count.
  kTwoHopDedup = 8,        ///< QT9: larger 2-hop expansion + dedup + degrees.
  kDistance3 = 9,          ///< QT10: bounded BFS, depth <= 3.
  kDistance4 = 10,         ///< QT11: bounded BFS, depth <= 4.
};

inline constexpr size_t kNumGraphOps = 11;

/// Parameters of one query submitted to the cluster.
struct GraphQuery {
  GraphOp op = GraphOp::kDegree;
  uint32_t source = 0;
  uint32_t target = 0;       ///< For 2-vertex ops (distance, intersection).
  uint64_t external_id = 0;  ///< For kDegreeByExternalId.
};

/// Scalar answer of a graph query.
struct GraphQueryResult {
  uint64_t value = 0;  ///< Degree / count / distance (0 = unreachable).
  bool ok = true;      ///< False when a shard shed or rejected a subquery.
  /// RejectReason wire code of the first failed subquery (kShard* family)
  /// when !ok; 0 otherwise.
  uint8_t fail_reason = 0;
};

/// An in-process two-tier LIquid-like cluster (paper §5.1, Fig. 5):
/// broker stages receive typed client queries and answer them through
/// rounds of sub-queries to shard stages; every stage runs the admission-
/// control framework of §3. In the paper's evaluation setup the brokers
/// run the policy under test while the shards run AcceptFraction (§5.4);
/// both policies are configurable here.
///
/// The graph is shared read-only; shard s serves vertices v with
/// v % num_shards == s, so the data distribution of a real cluster is
/// modeled without duplicating memory.
class Cluster {
 public:
  struct Options {
    size_t num_brokers = 1;
    size_t broker_workers = 16;  ///< P per broker (brokers mostly wait).
    size_t num_shards = 4;
    size_t shard_workers = 2;    ///< CPU-bound workers per shard.
    uint32_t work_per_edge = 24; ///< ShardEngine calibration knob.
    size_t broker_queue_capacity = 100'000;
    size_t shard_queue_capacity = 100'000;
    PolicyConfig broker_policy;  ///< Policy under test (paper varies this).
    PolicyConfig shard_policy;   ///< Paper §5.4: AcceptFraction.
    /// Optional live update feed layered over the snapshot (paper §5.1);
    /// must outlive the cluster.
    const EdgeUpdateLog* update_log = nullptr;
    /// Use the pre-optimization blocking scatter-gather: fresh per-round
    /// heap buffers, mutex+condvar gather, no single-shard inline
    /// short-circuit, sort/unique dedup. Kept as the A/B baseline for
    /// bench_cluster_throughput; query results are identical either way.
    bool legacy_scatter = false;
    /// A/B knob: run every broker and shard stage with one global run
    /// queue (the pre-sharding execution core) instead of per-worker
    /// run-queue shards with stealing. Query results are identical
    /// either way.
    bool force_single_queue = false;
    /// Optional sink for shard-stage subquery outcomes (Points 1–3 per
    /// subquery batch, one per shard per round); must outlive the
    /// cluster. Lets studies report shard-side utilization, not just
    /// broker metrics.
    server::MetricsCollector* shard_metrics = nullptr;
    /// When set, every broker/shard stage publishes its counters and
    /// estimate-error histograms here (under "stage.broker-N.*" /
    /// "stage.shard-N.*"); must outlive the cluster. Optional.
    stats::MetricRegistry* metrics = nullptr;
    /// Flight recorder for sampled request traces (scatter/gather events
    /// plus the per-stage lifecycle); defaults to
    /// stats::FlightRecorder::Global() when tracing is compiled in.
    stats::FlightRecorder* recorder = nullptr;
    /// Tenant interner shared by every broker/shard stage; must outlive
    /// the cluster. Required when a stage policy is tenant-aware
    /// (PolicyConfig::tenant_fair); null runs the cluster single-tenant.
    const TenantRegistry* tenants = nullptr;
  };

  using CompletionFn =
      std::function<void(const server::WorkItem&, server::Outcome,
                         const GraphQueryResult&)>;

  /// `graph`, `registry` and `clock` must outlive the cluster. The
  /// registry must hold one type per GraphOp, registered in op order
  /// (QueryTypeId = op index + 1); MakeRegistry() builds one.
  Cluster(const GraphStore* graph, const QueryTypeRegistry* registry,
          Clock* clock, const Options& options);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Starts shard stages then broker stages.
  Status Start();
  /// Stops brokers first (no new fan-out), then shards.
  void Stop();

  /// Submits a query to broker `query.source % num_brokers`. `done` runs
  /// exactly once. Returns the admission outcome at the broker (early
  /// rejection happens here, before the broker queue — paper §2). `id`
  /// is the correlation id stamped on the WorkItem; it keys the flight
  /// recorder's deterministic sampling (0 = untraceable).
  server::Outcome Submit(const GraphQuery& query, Nanos deadline,
                         CompletionFn done, uint64_t id = 0,
                         TenantId tenant = kDefaultTenant);

  /// One request of a SubmitBatch() call. `done` runs exactly once, same
  /// contract as Submit().
  struct BatchRequest {
    GraphQuery query;
    Nanos deadline = 0;
    CompletionFn done;
    uint64_t id = 0;     ///< Correlation id for tracing (0 = none).
    bool traced = false; ///< Upstream sampling decision (net parse point).
    /// Dense tenant index the broker admission decision is charged to
    /// and every shard subquery inherits.
    TenantId tenant = kDefaultTenant;
  };

  /// Submits a whole batch — every request parsed from one network
  /// wakeup — through the brokers' admission policies in one pass per
  /// broker (Stage::SubmitBatch: one clock read, one ring reservation,
  /// one wakeup episode per broker instead of per query). Requests keep
  /// their relative order within each broker. Rejections and sheds
  /// complete synchronously inside the call; returns the aggregated
  /// per-batch outcome counts. `requests` is scratch: `done` callbacks
  /// are moved from.
  ///
  /// `submitter` is forwarded to Stage::SubmitBatch as the run-queue
  /// affinity hint: the network layer passes its event-loop id so each
  /// loop keeps feeding the same broker run queue;
  /// Stage::kNoSubmitterHint uses the calling thread's stripe token.
  server::Stage::BatchResult SubmitBatch(
      std::span<BatchRequest> requests,
      uint32_t submitter = server::Stage::kNoSubmitterHint);

  /// Registry id for a graph op.
  static QueryTypeId TypeIdFor(GraphOp op) {
    return static_cast<QueryTypeId>(op) + 1;
  }

  /// Builds a registry with types "QT1".."QT11" (op order) all carrying
  /// `slo`; the default type gets `slo` too.
  static QueryTypeRegistry MakeRegistry(const Slo& slo);

  /// Draws a random, valid query for `op` over `graph`.
  static GraphQuery SampleQuery(GraphOp op, const GraphStore& graph,
                                Rng& rng);

  server::Stage* broker(size_t i) { return brokers_.at(i).get(); }
  server::Stage* shard(size_t i) { return shards_.at(i).get(); }
  size_t num_brokers() const { return brokers_.size(); }
  size_t num_shards() const { return shards_.size(); }
  const Options& options() const { return options_; }
  /// Total subqueries shards rejected or shed (broker-observed).
  uint64_t shard_failures() const {
    return shard_failures_.load(std::memory_order_relaxed);
  }

 private:
  struct QueryContext;

  void ExecuteQuery(server::WorkItem& item);
  /// Scatter `vertices` to their shards as one `kind` subquery batch per
  /// shard (admission is charged once per round per shard) and gather
  /// results, appending degrees/neighbors to whichever outputs are
  /// non-null. Returns false if any subquery failed. Routes to the
  /// pooled/async or the legacy implementation per Options.
  bool ScatterGather(std::span<const uint32_t> vertices, Subquery::Kind kind,
                     uint32_t limit_per_vertex, QueryTypeId type,
                     Nanos deadline, std::vector<uint32_t>* degrees_out,
                     std::vector<uint32_t>* neighbors_out);
  bool ScatterGatherAsync(std::span<const uint32_t> vertices,
                          Subquery::Kind kind, uint32_t limit_per_vertex,
                          QueryTypeId type, Nanos deadline,
                          std::vector<uint32_t>* degrees_out,
                          std::vector<uint32_t>* neighbors_out);
  bool ScatterGatherLegacy(std::span<const uint32_t> vertices,
                           Subquery::Kind kind, uint32_t limit_per_vertex,
                           QueryTypeId type, Nanos deadline,
                           std::vector<uint32_t>* degrees_out,
                           std::vector<uint32_t>* neighbors_out);
  bool FetchDegrees(std::span<const uint32_t> vertices, QueryTypeId type,
                    Nanos deadline, std::vector<uint32_t>* degrees);
  bool Expand(std::span<const uint32_t> vertices, uint32_t cap_per_vertex,
              size_t total_cap, QueryTypeId type, Nanos deadline,
              std::vector<uint32_t>* unique_neighbors);
  uint64_t RunBfs(const GraphQuery& query, uint32_t max_depth,
                  size_t frontier_cap, QueryTypeId type, Nanos deadline,
                  bool* ok);
  uint64_t RunBfsLegacy(const GraphQuery& query, uint32_t max_depth,
                        size_t frontier_cap, QueryTypeId type, Nanos deadline,
                        bool* ok);

  const GraphStore* graph_;
  const QueryTypeRegistry* registry_;
  Clock* clock_;
  Options options_;

  std::vector<std::unique_ptr<ShardEngine>> engines_;
  std::vector<std::unique_ptr<server::Stage>> shards_;
  std::vector<std::unique_ptr<server::Stage>> brokers_;
  stats::FlightRecorder* recorder_ = nullptr;
  std::atomic<uint64_t> shard_failures_{0};
  std::atomic<uint64_t> next_broker_{0};
  /// Eventcount the gathering broker workers park on; shared (it is
  /// notified only when a round's countdown hits zero, and every waiter
  /// re-checks its own round) and owned by the cluster so a completion
  /// racing a worker shutdown never touches freed memory.
  ParkingLot scatter_gate_;
  /// Recycles per-query contexts so Submit() allocates nothing in steady
  /// state (the completion callback returns the context).
  ObjectPool<QueryContext> context_pool_;
  Status init_status_;
};

}  // namespace bouncer::graph

#endif  // BOUNCER_GRAPH_CLUSTER_H_
