#include "src/graph/graph_generator.h"

#include <algorithm>
#include <vector>

namespace bouncer::graph {

GraphStore GeneratePreferentialAttachment(const GeneratorOptions& options) {
  const uint32_t n = std::max<uint32_t>(options.num_vertices, 2);
  const uint32_t m = std::max<uint32_t>(options.edges_per_vertex, 1);
  Rng rng(options.seed);
  GraphBuilder builder(n);

  // Endpoint pool: each inserted endpoint appears once, so sampling a
  // uniform pool element is degree-proportional sampling.
  std::vector<uint32_t> endpoint_pool;
  endpoint_pool.reserve(static_cast<size_t>(n) * m * 2);

  // Seed clique over the first m+1 vertices.
  const uint32_t seed_count = std::min(n, m + 1);
  for (uint32_t a = 0; a < seed_count; ++a) {
    for (uint32_t b = a + 1; b < seed_count; ++b) {
      builder.AddUndirectedEdge(a, b);
      endpoint_pool.push_back(a);
      endpoint_pool.push_back(b);
    }
  }

  for (uint32_t v = seed_count; v < n; ++v) {
    for (uint32_t e = 0; e < m; ++e) {
      const uint32_t target =
          endpoint_pool[rng.NextBounded(endpoint_pool.size())];
      if (target == v) continue;
      builder.AddUndirectedEdge(v, target);
      endpoint_pool.push_back(v);
      endpoint_pool.push_back(target);
    }
  }
  return std::move(builder).Build();
}

}  // namespace bouncer::graph
