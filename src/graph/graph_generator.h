#ifndef BOUNCER_GRAPH_GRAPH_GENERATOR_H_
#define BOUNCER_GRAPH_GRAPH_GENERATOR_H_

#include <cstdint>

#include "src/graph/graph_store.h"
#include "src/util/rng.h"

namespace bouncer::graph {

/// Parameters for the synthetic social-graph generator. The generator
/// produces an undirected preferential-attachment (Barabási–Albert style)
/// graph whose heavy-tailed degree distribution stands in for the
/// LinkedIn Economic Graph in the real-system study (DESIGN.md lists the
/// substitution).
struct GeneratorOptions {
  uint32_t num_vertices = 100'000;
  /// Edges attached per new vertex (mean degree ~ 2 * edges_per_vertex).
  uint32_t edges_per_vertex = 8;
  uint64_t seed = 42;
};

/// Generates the synthetic graph. Deterministic for a given seed.
GraphStore GeneratePreferentialAttachment(const GeneratorOptions& options);

}  // namespace bouncer::graph

#endif  // BOUNCER_GRAPH_GRAPH_GENERATOR_H_
