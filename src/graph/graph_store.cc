#include "src/graph/graph_store.h"

#include <algorithm>

namespace bouncer::graph {
namespace {

// SplitMix64 finalizer: deterministic external-id scramble.
uint64_t ScrambleId(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x = x ^ (x >> 31);
  return x | 1;  // Never 0: 0 marks empty index slots.
}

uint64_t NextPowerOfTwo(uint64_t x) {
  uint64_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

}  // namespace

bool GraphStore::HasEdge(uint32_t src, uint32_t dst) const {
  const auto neighbors = Neighbors(src);
  return std::binary_search(neighbors.begin(), neighbors.end(), dst);
}

StatusOr<uint32_t> GraphStore::FindByExternalId(uint64_t external_id) const {
  if (index_keys_.empty() || external_id == 0) {
    return Status::NotFound("external id not indexed");
  }
  uint64_t slot = external_id & index_mask_;
  while (true) {
    const uint64_t key = index_keys_[slot];
    if (key == external_id) return index_values_[slot];
    if (key == 0) return Status::NotFound("external id not found");
    slot = (slot + 1) & index_mask_;
  }
}

GraphBuilder::GraphBuilder(uint32_t num_vertices)
    : num_vertices_(num_vertices) {}

void GraphBuilder::AddEdge(uint32_t src, uint32_t dst) {
  if (src >= num_vertices_ || dst >= num_vertices_) return;
  edges_.emplace_back(src, dst);
}

GraphStore GraphBuilder::Build() && {
  GraphStore store;
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  store.offsets_.assign(static_cast<size_t>(num_vertices_) + 1, 0);
  for (const auto& [src, dst] : edges_) {
    (void)dst;
    ++store.offsets_[src + 1];
  }
  for (size_t v = 1; v <= num_vertices_; ++v) {
    store.offsets_[v] += store.offsets_[v - 1];
  }
  store.targets_.reserve(edges_.size());
  for (const auto& [src, dst] : edges_) {
    (void)src;
    store.targets_.push_back(dst);
  }

  // External ids + hash index at 50% max load factor.
  store.external_ids_.resize(num_vertices_);
  const uint64_t table_size =
      NextPowerOfTwo(std::max<uint64_t>(2 * num_vertices_, 16));
  store.index_keys_.assign(table_size, 0);
  store.index_values_.assign(table_size, 0);
  store.index_mask_ = table_size - 1;
  for (uint32_t v = 0; v < num_vertices_; ++v) {
    const uint64_t id = ScrambleId(v);
    store.external_ids_[v] = id;
    uint64_t slot = id & store.index_mask_;
    while (store.index_keys_[slot] != 0) {
      slot = (slot + 1) & store.index_mask_;
    }
    store.index_keys_[slot] = id;
    store.index_values_[slot] = v;
  }
  edges_.clear();
  return store;
}

}  // namespace bouncer::graph
