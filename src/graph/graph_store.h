#ifndef BOUNCER_GRAPH_GRAPH_STORE_H_
#define BOUNCER_GRAPH_GRAPH_STORE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/util/status.h"

namespace bouncer::graph {

/// Immutable in-memory graph in compressed-sparse-row form, plus an
/// open-addressing hash index from 64-bit external ids to vertex numbers
/// (the LIquid papers index graph data with hash maps; this is the
/// corresponding substrate here). Vertices are dense uint32 indices;
/// adjacency lists are sorted and deduplicated. Thread-safe for reads.
class GraphStore {
 public:
  GraphStore() = default;

  uint32_t num_vertices() const {
    return offsets_.empty() ? 0 : static_cast<uint32_t>(offsets_.size() - 1);
  }
  uint64_t num_edges() const { return targets_.size(); }

  /// Sorted out-neighbors of `v`. Empty for out-of-range vertices.
  std::span<const uint32_t> Neighbors(uint32_t v) const {
    if (v >= num_vertices()) return {};
    return {targets_.data() + offsets_[v],
            static_cast<size_t>(offsets_[v + 1] - offsets_[v])};
  }

  /// Out-degree of `v` (0 for out-of-range vertices).
  uint32_t Degree(uint32_t v) const {
    if (v >= num_vertices()) return 0;
    return static_cast<uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// True if the sorted adjacency of `src` contains `dst`.
  bool HasEdge(uint32_t src, uint32_t dst) const;

  /// External id assigned to vertex `v`.
  uint64_t ExternalId(uint32_t v) const {
    return v < external_ids_.size() ? external_ids_[v] : 0;
  }

  /// Hash-index lookup: vertex for an external id, or NotFound.
  StatusOr<uint32_t> FindByExternalId(uint64_t external_id) const;

 private:
  friend class GraphBuilder;

  std::vector<uint64_t> offsets_;   // num_vertices + 1.
  std::vector<uint32_t> targets_;   // Sorted per source.
  std::vector<uint64_t> external_ids_;  // Per vertex.

  // Open-addressing (linear probing) index: external id -> vertex + 1;
  // 0 marks an empty slot. Size is a power of two.
  std::vector<uint64_t> index_keys_;
  std::vector<uint32_t> index_values_;
  uint64_t index_mask_ = 0;
};

/// Mutable edge accumulator that finalizes into a GraphStore. Not
/// thread-safe; build on one thread, then share the store read-only.
class GraphBuilder {
 public:
  explicit GraphBuilder(uint32_t num_vertices);

  /// Adds a directed edge. Out-of-range endpoints are ignored. Duplicate
  /// edges collapse at Build() time.
  void AddEdge(uint32_t src, uint32_t dst);

  /// Adds both directions.
  void AddUndirectedEdge(uint32_t a, uint32_t b) {
    AddEdge(a, b);
    AddEdge(b, a);
  }

  uint32_t num_vertices() const { return num_vertices_; }

  /// Finalizes into CSR form and builds the external-id hash index.
  /// External ids are a deterministic scramble of the vertex number.
  /// The builder is consumed.
  GraphStore Build() &&;

 private:
  uint32_t num_vertices_;
  std::vector<std::pair<uint32_t, uint32_t>> edges_;
};

}  // namespace bouncer::graph

#endif  // BOUNCER_GRAPH_GRAPH_STORE_H_
