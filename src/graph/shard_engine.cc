#include "src/graph/shard_engine.h"

#include <algorithm>

namespace bouncer::graph {

uint64_t ShardEngine::EdgeWork(uint64_t seed) const {
  // Cheap data-dependent hash chain; ~1 ns per iteration. Folding the
  // result into the checksum keeps the optimizer from removing it.
  uint64_t x = seed | 1;
  for (uint32_t i = 0; i < work_per_edge_; ++i) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
  }
  return x;
}

void ShardEngine::Execute(const Subquery& subquery,
                          SubqueryResult* result) const {
  switch (subquery.kind) {
    case Subquery::Kind::kDegrees: {
      result->degrees.reserve(result->degrees.size() +
                              subquery.vertices.size());
      for (const uint32_t v : subquery.vertices) {
        uint32_t degree = 0;
        if (Owns(v)) {
          degree = graph_->Degree(v);
          if (updates_ != nullptr) degree += updates_->ExtraDegree(v);
        }
        result->degrees.push_back(degree);
        result->checksum ^= EdgeWork(v + degree);
      }
      break;
    }
    case Subquery::Kind::kExpand: {
      // Reserve from degree hints so pooled result buffers reach their
      // steady-state capacity in one step instead of doubling up to it.
      size_t expansion_hint = 0;
      for (const uint32_t v : subquery.vertices) {
        if (!Owns(v)) continue;
        const size_t degree = graph_->Degree(v);
        expansion_hint += subquery.limit_per_vertex > 0
                              ? std::min<size_t>(degree,
                                                 subquery.limit_per_vertex)
                              : degree;
      }
      result->neighbors.reserve(result->neighbors.size() + expansion_hint);
      for (const uint32_t v : subquery.vertices) {
        if (!Owns(v)) continue;
        auto neighbors = graph_->Neighbors(v);
        size_t count = neighbors.size();
        if (subquery.limit_per_vertex > 0 &&
            count > subquery.limit_per_vertex) {
          count = subquery.limit_per_vertex;
        }
        for (size_t i = 0; i < count; ++i) {
          result->neighbors.push_back(neighbors[i]);
          result->checksum ^= EdgeWork(neighbors[i]);
        }
        if (updates_ != nullptr && count == neighbors.size()) {
          // Remaining headroom under the cap goes to delta edges.
          const bool capped = subquery.limit_per_vertex > 0;
          const uint32_t remaining =
              capped ? subquery.limit_per_vertex - static_cast<uint32_t>(count)
                     : 0;
          if (!capped || remaining > 0) {
            const size_t before = result->neighbors.size();
            updates_->AppendNeighbors(v, remaining, &result->neighbors);
            for (size_t i = before; i < result->neighbors.size(); ++i) {
              result->checksum ^= EdgeWork(result->neighbors[i]);
            }
          }
        }
      }
      break;
    }
  }
}

}  // namespace bouncer::graph
