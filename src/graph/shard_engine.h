#ifndef BOUNCER_GRAPH_SHARD_ENGINE_H_
#define BOUNCER_GRAPH_SHARD_ENGINE_H_

#include <cstdint>
#include <vector>

#include "src/graph/graph_store.h"
#include "src/graph/update_log.h"

namespace bouncer::graph {

/// A sub-query a broker sends to one shard (paper §5.1: answering a query
/// involves one or more communication rounds between the broker and the
/// shards). Vertices listed must be owned by the addressed shard.
struct Subquery {
  enum class Kind : uint8_t {
    kDegrees = 0,  ///< Return the degree of each input vertex.
    kExpand = 1,   ///< Return the (capped) neighbor lists, concatenated.
  };
  Kind kind = Kind::kDegrees;
  std::vector<uint32_t> vertices;
  /// For kExpand: per-vertex cap on returned neighbors (0 = no cap).
  uint32_t limit_per_vertex = 0;
};

/// Result of one sub-query.
struct SubqueryResult {
  std::vector<uint32_t> degrees;    ///< kDegrees: aligned with the input.
  std::vector<uint32_t> neighbors;  ///< kExpand: concatenated, may repeat.
  uint64_t checksum = 0;            ///< Folded per-edge work product.
};

/// Executes sub-queries against the slice of the graph a shard owns.
/// Vertex `v` belongs to shard `v % num_shards`. `work_per_edge` adds a
/// calibratable amount of CPU work per edge touched, standing in for
/// index traversal and serialization cost on real shard hosts so that
/// per-type processing costs are meaningfully different and load-
/// dependent. Thread-safe (the store is immutable).
class ShardEngine {
 public:
  /// `updates`, when non-null, layers a live edge-update feed over the
  /// base snapshot (paper §5.1's continuous updates); degree and expand
  /// subqueries then see base + delta edges.
  ShardEngine(const GraphStore* graph, uint32_t shard_id, uint32_t num_shards,
              uint32_t work_per_edge,
              const EdgeUpdateLog* updates = nullptr)
      : graph_(graph),
        updates_(updates),
        shard_id_(shard_id),
        num_shards_(num_shards == 0 ? 1 : num_shards),
        work_per_edge_(work_per_edge) {}

  /// True if this shard owns `v`.
  bool Owns(uint32_t v) const { return v % num_shards_ == shard_id_; }

  /// Runs `subquery`, appending into `result`. Vertices this shard does
  /// not own are skipped (degree 0 / no neighbors).
  void Execute(const Subquery& subquery, SubqueryResult* result) const;

  uint32_t shard_id() const { return shard_id_; }

 private:
  uint64_t EdgeWork(uint64_t seed) const;

  const GraphStore* graph_;
  const EdgeUpdateLog* updates_;
  const uint32_t shard_id_;
  const uint32_t num_shards_;
  const uint32_t work_per_edge_;
};

}  // namespace bouncer::graph

#endif  // BOUNCER_GRAPH_SHARD_ENGINE_H_
