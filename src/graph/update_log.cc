#include "src/graph/update_log.h"

#include <algorithm>

namespace bouncer::graph {
namespace {

size_t NextPowerOfTwo(size_t x) {
  size_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

}  // namespace

EdgeUpdateLog::EdgeUpdateLog(size_t stripes)
    : stripes_(NextPowerOfTwo(std::max<size_t>(stripes, 1))),
      stripe_mask_(stripes_.size() - 1) {}

void EdgeUpdateLog::AddEdge(uint32_t src, uint32_t dst) {
  Stripe& stripe = StripeFor(src);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto& neighbors = stripe.adjacency[src];
  if (std::find(neighbors.begin(), neighbors.end(), dst) !=
      neighbors.end()) {
    return;  // Duplicate within the log.
  }
  neighbors.push_back(dst);
  total_edges_.fetch_add(1, std::memory_order_relaxed);
}

uint32_t EdgeUpdateLog::ExtraDegree(uint32_t v) const {
  const Stripe& stripe = StripeFor(v);
  std::lock_guard<std::mutex> lock(stripe.mu);
  const auto it = stripe.adjacency.find(v);
  return it == stripe.adjacency.end()
             ? 0
             : static_cast<uint32_t>(it->second.size());
}

void EdgeUpdateLog::AppendNeighbors(uint32_t v, uint32_t limit,
                                    std::vector<uint32_t>* out) const {
  const Stripe& stripe = StripeFor(v);
  std::lock_guard<std::mutex> lock(stripe.mu);
  const auto it = stripe.adjacency.find(v);
  if (it == stripe.adjacency.end()) return;
  size_t count = it->second.size();
  if (limit > 0 && count > limit) count = limit;
  out->insert(out->end(), it->second.begin(), it->second.begin() + count);
}

GraphStore EdgeUpdateLog::Compact(const GraphStore& base) const {
  GraphBuilder builder(base.num_vertices());
  for (uint32_t v = 0; v < base.num_vertices(); ++v) {
    for (const uint32_t u : base.Neighbors(v)) builder.AddEdge(v, u);
  }
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    for (const auto& [src, neighbors] : stripe.adjacency) {
      for (const uint32_t dst : neighbors) builder.AddEdge(src, dst);
    }
  }
  return std::move(builder).Build();
}

}  // namespace bouncer::graph
