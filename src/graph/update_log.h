#ifndef BOUNCER_GRAPH_UPDATE_LOG_H_
#define BOUNCER_GRAPH_UPDATE_LOG_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/graph/graph_store.h"

namespace bouncer::graph {

/// Live edge updates layered over an immutable GraphStore snapshot —
/// the stand-in for LIquid's continuous update feed (paper §5.1: shards
/// "receive a continuous feed of updates (e.g., via Kafka) from
/// source-of-truth databases"). Writers append edges concurrently with
/// readers serving queries; a periodic Compact() folds the deltas into a
/// fresh CSR snapshot, mirroring how log-structured stores rotate.
///
/// Locking is striped by source vertex, so concurrent updates to
/// different vertices do not contend.
class EdgeUpdateLog {
 public:
  /// `stripes` is rounded up to a power of two.
  explicit EdgeUpdateLog(size_t stripes = 64);

  EdgeUpdateLog(const EdgeUpdateLog&) = delete;
  EdgeUpdateLog& operator=(const EdgeUpdateLog&) = delete;

  /// Appends a directed edge. Duplicates (vs. the log, not the base
  /// snapshot) are kept out; callers wanting undirected edges add both
  /// directions. Thread-safe.
  void AddEdge(uint32_t src, uint32_t dst);

  /// Number of delta out-edges recorded for `v`. Thread-safe.
  uint32_t ExtraDegree(uint32_t v) const;

  /// Appends up to `limit` (0 = all) of `v`'s delta neighbors to `out`.
  /// Thread-safe. Order is append order, not sorted.
  void AppendNeighbors(uint32_t v, uint32_t limit,
                       std::vector<uint32_t>* out) const;

  /// Total delta edges across all vertices.
  uint64_t TotalEdges() const {
    return total_edges_.load(std::memory_order_relaxed);
  }

  /// Folds `base` + this log into a fresh CSR snapshot. Readers may keep
  /// using the log during compaction; edges added concurrently may or
  /// may not be included.
  GraphStore Compact(const GraphStore& base) const;

 private:
  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<uint32_t, std::vector<uint32_t>> adjacency;
  };

  const Stripe& StripeFor(uint32_t v) const {
    return stripes_[v & stripe_mask_];
  }
  Stripe& StripeFor(uint32_t v) { return stripes_[v & stripe_mask_]; }

  std::vector<Stripe> stripes_;
  size_t stripe_mask_;
  std::atomic<uint64_t> total_edges_{0};
};

}  // namespace bouncer::graph

#endif  // BOUNCER_GRAPH_UPDATE_LOG_H_
