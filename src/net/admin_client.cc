#include "src/net/admin_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

namespace bouncer::net {

namespace {

bool ReadExact(int fd, uint8_t* buf, size_t len) {
  size_t got = 0;
  while (got < len) {
    const ssize_t n = ::read(fd, buf + got, len - got);
    if (n > 0) {
      got += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // EOF, timeout or hard error.
  }
  return true;
}

bool WriteExact(int fd, const uint8_t* buf, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::write(fd, buf + sent, len - sent);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace

Status FetchAdmin(const AdminFetch& fetch, std::string* payload) {
  payload->clear();
  if (!IsAdminOp(fetch.op)) {
    return Status::InvalidArgument("not an admin opcode");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(fetch.port);
  if (::inet_pton(AF_INET, fetch.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad host address: " + fetch.host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Status::Internal("socket() failed");
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(fetch.timeout / 1'000'000'000);
  tv.tv_usec = static_cast<suseconds_t>((fetch.timeout % 1'000'000'000) /
                                        1'000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status s = Status::Internal(std::string("connect failed: ") +
                                      std::strerror(errno));
    ::close(fd);
    return s;
  }

  RequestFrame request;
  request.id = 1;
  request.op = fetch.op;
  uint8_t encoded[kRequestFrameBytes];
  const size_t frame_bytes = EncodeRequest(request, encoded);
  if (!WriteExact(fd, encoded, frame_bytes)) {
    ::close(fd);
    return Status::Internal("send failed");
  }

  // Chunk loop: each frame is a response body plus a payload slice; the
  // u64 value field repeats the total payload size so the buffer can be
  // reserved up front.
  for (;;) {
    uint8_t head[kLengthPrefixBytes];
    if (!ReadExact(fd, head, sizeof(head))) {
      ::close(fd);
      return Status::Internal("short read on chunk header");
    }
    const uint32_t body_len = wire::GetU32(head);
    if (body_len < kResponseBodyBytes ||
        body_len > kResponseBodyBytes + kAdminMaxChunk) {
      ::close(fd);
      return Status::Internal("bad admin chunk length");
    }
    uint8_t body[kResponseBodyBytes];
    if (!ReadExact(fd, body, sizeof(body))) {
      ::close(fd);
      return Status::Internal("short read on chunk body");
    }
    ResponseFrame frame;
    DecodeResponseBody(body, &frame);
    if (frame.status != ResponseStatus::kOk) {
      ::close(fd);
      return Status::Internal("admin request refused by server");
    }
    const size_t chunk = body_len - kResponseBodyBytes;
    if (payload->empty() && frame.value > 0) {
      payload->reserve(static_cast<size_t>(frame.value));
    }
    if (chunk > 0) {
      std::vector<uint8_t> buf(chunk);
      if (!ReadExact(fd, buf.data(), chunk)) {
        ::close(fd);
        return Status::Internal("short read on chunk payload");
      }
      payload->append(reinterpret_cast<const char*>(buf.data()), chunk);
    }
    if ((frame.flags & kAdminFlagMore) == 0) break;
  }
  ::close(fd);
  return Status::OK();
}

}  // namespace bouncer::net
