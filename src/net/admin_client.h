#ifndef BOUNCER_NET_ADMIN_CLIENT_H_
#define BOUNCER_NET_ADMIN_CLIENT_H_

#include <cstdint>
#include <string>

#include "src/net/protocol.h"
#include "src/util/status.h"
#include "src/util/time.h"

namespace bouncer::net {

/// One blocking admin fetch against a running NetServer. Deliberately
/// not routed through NetClient: its response path is hard-wired to the
/// fixed 18-byte graph response body, while admin responses are chunked
/// variable-length frames (see protocol.h). A plain blocking socket is
/// exactly right for a control-plane request issued once per scrape.
struct AdminFetch {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  uint8_t op = kOpStatsJson;  ///< kOpStatsJson/kOpStatsPrometheus/kOpTraceDump.
  Nanos timeout = 5'000'000'000;  ///< Socket send/receive timeout.
};

/// Connects, sends one admin request frame, concatenates response chunks
/// until the final one (kAdminFlagMore clear) and returns the payload.
Status FetchAdmin(const AdminFetch& fetch, std::string* payload);

}  // namespace bouncer::net

#endif  // BOUNCER_NET_ADMIN_CLIENT_H_
