#ifndef BOUNCER_NET_BYTE_RING_H_
#define BOUNCER_NET_BYTE_RING_H_

#include <sys/uio.h>

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>

namespace bouncer::net {

/// Fixed-capacity power-of-two byte ring used as a connection's read and
/// write buffer. Allocated once when the connection slot is created and
/// reused across connections, so the steady-state data path performs no
/// allocation. Single-threaded by design: only the owning event loop
/// touches it.
///
/// The ring hands out at most two contiguous segments (the wrap split)
/// for scatter/gather IO: readv() fills WritableSegments(), writev()
/// drains ReadableSegments().
class ByteRing {
 public:
  explicit ByteRing(size_t min_capacity)
      : capacity_(RoundUpPow2(min_capacity < 64 ? 64 : min_capacity)),
        mask_(capacity_ - 1),
        data_(new uint8_t[capacity_]) {}

  ByteRing(const ByteRing&) = delete;
  ByteRing& operator=(const ByteRing&) = delete;

  size_t capacity() const { return capacity_; }
  size_t size() const { return tail_ - head_; }
  size_t free_space() const { return capacity_ - size(); }
  bool empty() const { return head_ == tail_; }

  void Clear() { head_ = tail_ = 0; }

  /// Copies up to free_space() bytes from `data`; returns bytes written.
  size_t Write(const void* data, size_t len) {
    const size_t n = len < free_space() ? len : free_space();
    const auto* src = static_cast<const uint8_t*>(data);
    const size_t offset = tail_ & mask_;
    const size_t first = n < capacity_ - offset ? n : capacity_ - offset;
    std::memcpy(data_.get() + offset, src, first);
    std::memcpy(data_.get(), src + first, n - first);
    tail_ += n;
    return n;
  }

  /// Copies `len` bytes starting `offset` bytes past the read position
  /// into `out` without consuming them. Returns false when fewer than
  /// offset + len bytes are buffered.
  bool Peek(size_t offset, void* out, size_t len) const {
    if (size() < offset + len) return false;
    auto* dst = static_cast<uint8_t*>(out);
    const size_t start = (head_ + offset) & mask_;
    const size_t first = len < capacity_ - start ? len : capacity_ - start;
    std::memcpy(dst, data_.get() + start, first);
    std::memcpy(dst + first, data_.get(), len - first);
    return true;
  }

  /// Discards `len` buffered bytes (len <= size()).
  void Consume(size_t len) { head_ += len; }

  /// Fills `out[0..1]` with the writable segments (for readv into the
  /// ring); returns the segment count (0 when full).
  int WritableSegments(struct iovec out[2]) const {
    const size_t n = free_space();
    if (n == 0) return 0;
    const size_t offset = tail_ & mask_;
    const size_t first = n < capacity_ - offset ? n : capacity_ - offset;
    out[0] = {data_.get() + offset, first};
    if (first == n) return 1;
    out[1] = {data_.get(), n - first};
    return 2;
  }

  /// Commits `len` bytes a reader deposited into WritableSegments().
  void CommitWrite(size_t len) { tail_ += len; }

  /// Fills `out[0..1]` with the readable segments (for writev from the
  /// ring); returns the segment count (0 when empty).
  int ReadableSegments(struct iovec out[2]) const {
    const size_t n = size();
    if (n == 0) return 0;
    const size_t offset = head_ & mask_;
    const size_t first = n < capacity_ - offset ? n : capacity_ - offset;
    out[0] = {data_.get() + offset, first};
    if (first == n) return 1;
    out[1] = {data_.get(), n - first};
    return 2;
  }

 private:
  static size_t RoundUpPow2(size_t v) {
    size_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

  const size_t capacity_;
  const size_t mask_;
  std::unique_ptr<uint8_t[]> data_;
  size_t head_ = 0;  ///< Read cursor (monotonic; masked on access).
  size_t tail_ = 0;  ///< Write cursor.
};

}  // namespace bouncer::net

#endif  // BOUNCER_NET_BYTE_RING_H_
