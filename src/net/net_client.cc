#include "src/net/net_client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/util/clock.h"

namespace bouncer::net {

namespace {

constexpr uint64_t kEventToken = ~uint64_t{0};
constexpr int kMaxEpollEvents = 64;

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

/// One client connection, owned by exactly one IO thread.
struct NetClient::Conn {
  Conn(size_t ring_bytes) : rx(ring_bytes), tx(ring_bytes) {}

  struct Slot {
    Nanos t0 = 0;
    uint64_t seq = ~uint64_t{0};
    uint8_t op = 0;
  };

  int fd = -1;
  size_t index = 0;
  ByteRing rx;
  ByteRing tx;
  uint64_t next_seq = 0;
  uint64_t inflight = 0;
  std::vector<Slot> slots;
  bool want_write = false;  ///< EPOLLOUT armed.
  bool alive = false;
};

NetClient::NetClient(const Options& options, Sampler sampler)
    : options_(options),
      sampler_(std::move(sampler)),
      open_queue_(options.open_queue_capacity) {
  if (options_.num_io_threads == 0) options_.num_io_threads = 1;
  if (options_.num_io_threads > options_.num_connections) {
    options_.num_io_threads = options_.num_connections;
  }
  // Responses match their departure timestamp by sequence number; a
  // stale slot (overwritten under extreme overload) just skips the
  // latency sample instead of corrupting it.
  size_t slots = options_.latency_slots;
  if (slots == 0) {
    slots = 4 * options_.in_flight_per_conn;
    if (slots < 64) slots = 64;
    if (slots > 4096) slots = 4096;
  }
  slot_mask_ = RoundUpPow2(slots) - 1;
}

NetClient::~NetClient() { Stop(); }

Status NetClient::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("client already started");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad host address: " + options_.host);
  }
  // Setup failures below must close everything opened so far (sockets
  // and per-thread epoll/event fds); Stop() never runs for a failed
  // Start(), so each early return routes through this cleanup.
  const auto fail = [this](Status status) {
    for (auto& c : conns_) {
      if (c->fd >= 0) ::close(c->fd);
    }
    conns_.clear();
    for (int fd : epoll_fds_) {
      if (fd >= 0) ::close(fd);
    }
    for (int fd : event_fds_) {
      if (fd >= 0) ::close(fd);
    }
    epoll_fds_.clear();
    event_fds_.clear();
    wake_flags_.clear();
    return status;
  };
  conns_.reserve(options_.num_connections);
  for (size_t i = 0; i < options_.num_connections; ++i) {
    auto conn = std::make_unique<Conn>(options_.ring_bytes);
    conn->index = i;
    conn->slots.resize(slot_mask_ + 1);
    conn->fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (conn->fd < 0 ||
        ::connect(conn->fd, reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) < 0) {
      if (conn->fd >= 0) ::close(conn->fd);
      return fail(Status::Internal(std::string("connect() failed: ") +
                                   std::strerror(errno)));
    }
    const int one = 1;
    ::setsockopt(conn->fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    // Verify: a client socket Nagle-delaying small request frames would
    // serialize the whole closed loop behind delayed ACKs.
    int nodelay = 0;
    socklen_t nodelay_len = sizeof(nodelay);
    if (::getsockopt(conn->fd, IPPROTO_TCP, TCP_NODELAY, &nodelay,
                     &nodelay_len) != 0 ||
        nodelay == 0) {
      ::close(conn->fd);
      return fail(Status::Internal("TCP_NODELAY not set on client socket"));
    }
    // Connect blocking (deterministic setup), then switch non-blocking
    // for the event loop.
    const int fl = ::fcntl(conn->fd, F_GETFL, 0);
    ::fcntl(conn->fd, F_SETFL, fl | O_NONBLOCK);
    conn->alive = true;
    conns_.push_back(std::move(conn));
  }

  const size_t nthreads = options_.num_io_threads;
  epoll_fds_.assign(nthreads, -1);
  event_fds_.assign(nthreads, -1);
  wake_flags_.clear();
  for (size_t t = 0; t < nthreads; ++t) {
    wake_flags_.push_back(std::make_unique<std::atomic<bool>>(false));
    epoll_fds_[t] = ::epoll_create1(EPOLL_CLOEXEC);
    event_fds_[t] = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (epoll_fds_[t] < 0 || event_fds_[t] < 0) {
      return fail(Status::Internal("epoll/eventfd setup failed"));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kEventToken;
    ::epoll_ctl(epoll_fds_[t], EPOLL_CTL_ADD, event_fds_[t], &ev);
  }
  // Connections shard across threads round-robin.
  for (auto& conn : conns_) {
    const size_t t = conn->index % nthreads;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = conn->index;
    ::epoll_ctl(epoll_fds_[t], EPOLL_CTL_ADD, conn->fd, &ev);
  }
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  for (size_t t = 0; t < nthreads; ++t) {
    threads_.emplace_back([this, t] { IoThread(t); });
  }
  return Status::OK();
}

void NetClient::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_.store(true, std::memory_order_release);
  for (size_t t = 0; t < threads_.size(); ++t) WakeThread(t);
  for (auto& thread : threads_) thread.join();
  threads_.clear();
  for (auto& conn : conns_) {
    if (conn->fd >= 0) ::close(conn->fd);
  }
  conns_.clear();
  for (int fd : epoll_fds_) {
    if (fd >= 0) ::close(fd);
  }
  for (int fd : event_fds_) {
    if (fd >= 0) ::close(fd);
  }
  epoll_fds_.clear();
  event_fds_.clear();
  wake_flags_.clear();
}

void NetClient::WakeThread(size_t thread_index) {
  if (thread_index >= wake_flags_.size()) return;
  if (!wake_flags_[thread_index]->exchange(true,
                                           std::memory_order_acq_rel)) {
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t n =
        ::write(event_fds_[thread_index], &one, sizeof(one));
  }
}

void NetClient::StartClosedLoop() {
  sending_.store(true, std::memory_order_release);
  mode_.store(static_cast<int>(Mode::kClosedLoop),
              std::memory_order_release);
  for (size_t t = 0; t < threads_.size(); ++t) WakeThread(t);
}

void NetClient::StopSending() {
  sending_.store(false, std::memory_order_release);
}

bool NetClient::TrySend(const RequestFrame& frame) {
  if (!running_.load(std::memory_order_acquire)) return false;
  if (!open_queue_.TryPush(RequestFrame(frame))) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // Counted before the IO threads ever see the frame, so WaitForDrain
  // can't miss requests still sitting in open_queue_ (or mid-placement).
  accepted_.fetch_add(1, std::memory_order_release);
  WakeThread(open_rr_.fetch_add(1, std::memory_order_relaxed) %
             options_.num_io_threads);
  return true;
}

bool NetClient::WaitForDrain(Nanos timeout) {
  Clock* clock = SystemClock::Global();
  const Nanos deadline = clock->Now() + timeout;
  for (;;) {
    // accepted_ covers every frame committed to be sent — including
    // open-loop frames still in open_queue_ or being placed on a
    // connection — unlike queued_, which lags until placement.
    const uint64_t accepted = accepted_.load(std::memory_order_acquire);
    const uint64_t responses = responses_.load(std::memory_order_acquire);
    if (responses >= accepted) return true;
    if (conn_errors_.load(std::memory_order_acquire) > 0) return false;
    if (clock->Now() >= deadline) return false;
    ::usleep(200);
  }
}

NetClient::Counters NetClient::counters() const {
  Counters c;
  c.accepted = accepted_.load(std::memory_order_relaxed);
  c.queued = queued_.load(std::memory_order_relaxed);
  c.responses = responses_.load(std::memory_order_relaxed);
  c.ok = ok_.load(std::memory_order_relaxed);
  c.rejected = rejected_.load(std::memory_order_relaxed);
  c.shedded = shedded_.load(std::memory_order_relaxed);
  c.expired = expired_.load(std::memory_order_relaxed);
  c.failed = failed_.load(std::memory_order_relaxed);
  c.dropped = dropped_.load(std::memory_order_relaxed);
  c.conn_errors = conn_errors_.load(std::memory_order_relaxed);
  c.reason_policy = reason_policy_.load(std::memory_order_relaxed);
  c.reason_queue = reason_queue_.load(std::memory_order_relaxed);
  c.reason_expired = reason_expired_.load(std::memory_order_relaxed);
  c.reason_shard = reason_shard_.load(std::memory_order_relaxed);
  return c;
}

void NetClient::ResetStats() {
  accepted_.store(0, std::memory_order_relaxed);
  queued_.store(0, std::memory_order_relaxed);
  responses_.store(0, std::memory_order_relaxed);
  ok_.store(0, std::memory_order_relaxed);
  rejected_.store(0, std::memory_order_relaxed);
  shedded_.store(0, std::memory_order_relaxed);
  expired_.store(0, std::memory_order_relaxed);
  failed_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  reason_policy_.store(0, std::memory_order_relaxed);
  reason_queue_.store(0, std::memory_order_relaxed);
  reason_expired_.store(0, std::memory_order_relaxed);
  reason_shard_.store(0, std::memory_order_relaxed);
  latency_.Reset();
  for (auto& h : latency_by_op_) h.Reset();
}

bool NetClient::SendOne(Conn* conn) {
  if (conn->tx.free_space() < kRequestFrameBytes) return false;
  RequestFrame frame = sampler_(conn->index, conn->next_seq);
  frame.id = conn->next_seq;
  Conn::Slot& slot = conn->slots[conn->next_seq & slot_mask_];
  slot.t0 = SystemClock::Global()->Now();
  slot.seq = conn->next_seq;
  slot.op = frame.op;
  uint8_t encoded[kRequestFrameBytes];
  const size_t frame_bytes = EncodeRequest(frame, encoded);
  conn->tx.Write(encoded, frame_bytes);
  ++conn->next_seq;
  ++conn->inflight;
  // Closed-loop frames skip open_queue_, so acceptance and placement
  // coincide.
  accepted_.fetch_add(1, std::memory_order_release);
  queued_.fetch_add(1, std::memory_order_release);
  return true;
}

void NetClient::TopUp(Conn* conn) {
  if (!conn->alive) return;
  while (conn->inflight < options_.in_flight_per_conn) {
    if (!SendOne(conn)) break;
  }
}

void NetClient::PlaceOpenLoop(size_t thread_index) {
  // Each thread drains the shared queue onto its own connections,
  // round-robin, stopping when none can take another frame (the local
  // queue then backs up and TrySend starts dropping — by design).
  const size_t nthreads = options_.num_io_threads;
  size_t start = thread_index;
  RequestFrame frame;
  for (;;) {
    Conn* target = nullptr;
    for (size_t i = start; i < conns_.size(); i += nthreads) {
      Conn* conn = conns_[i].get();
      if (conn->alive && conn->tx.free_space() >= kRequestFrameBytes) {
        target = conn;
        start = i + nthreads;  // Continue the scan past this conn.
        break;
      }
    }
    if (target == nullptr) return;
    if (!open_queue_.TryPop(frame)) return;
    frame.id = target->next_seq;
    Conn::Slot& slot = target->slots[target->next_seq & slot_mask_];
    slot.t0 = SystemClock::Global()->Now();
    slot.seq = target->next_seq;
    slot.op = frame.op;
    uint8_t encoded[kRequestFrameBytes];
    const size_t frame_bytes = EncodeRequest(frame, encoded);
    target->tx.Write(encoded, frame_bytes);
    ++target->next_seq;
    ++target->inflight;
    queued_.fetch_add(1, std::memory_order_release);
    if (start >= conns_.size()) start = thread_index;
  }
}

void NetClient::OnResponse(Conn* conn, const ResponseFrame& frame,
                           Nanos now) {
  responses_.fetch_add(1, std::memory_order_release);
  switch (frame.status) {
    case ResponseStatus::kOk:
      ok_.fetch_add(1, std::memory_order_relaxed);
      break;
    case ResponseStatus::kRejected:
      rejected_.fetch_add(1, std::memory_order_relaxed);
      break;
    case ResponseStatus::kShedded:
      shedded_.fetch_add(1, std::memory_order_relaxed);
      break;
    case ResponseStatus::kExpired:
      expired_.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      failed_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  // The flags byte carries the server's RejectReason wire code.
  switch (static_cast<RejectReason>(frame.flags)) {
    case RejectReason::kPolicy:
      reason_policy_.fetch_add(1, std::memory_order_relaxed);
      break;
    case RejectReason::kQueueFull:
      reason_queue_.fetch_add(1, std::memory_order_relaxed);
      break;
    case RejectReason::kExpired:
      reason_expired_.fetch_add(1, std::memory_order_relaxed);
      break;
    case RejectReason::kShardPolicy:
    case RejectReason::kShardQueueFull:
    case RejectReason::kShardExpired:
      reason_shard_.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      break;
  }
  if (conn->inflight > 0) --conn->inflight;
  const Conn::Slot& slot = conn->slots[frame.id & slot_mask_];
  if (slot.seq == frame.id) {
    const Nanos rt = now - slot.t0;
    latency_.Record(rt);
    if (slot.op < graph::kNumGraphOps) latency_by_op_[slot.op].Record(rt);
  }
  if (mode_.load(std::memory_order_acquire) ==
          static_cast<int>(Mode::kClosedLoop) &&
      sending_.load(std::memory_order_acquire)) {
    SendOne(conn);
  }
}

void NetClient::FailConn(Conn* conn) {
  if (!conn->alive) return;
  conn->alive = false;
  ::close(conn->fd);
  conn->fd = -1;
  conn_errors_.fetch_add(1, std::memory_order_release);
}

void NetClient::ReadConn(Conn* conn) {
  if (!conn->alive) return;
  for (;;) {
    struct iovec iov[2];
    const int segments = conn->rx.WritableSegments(iov);
    if (segments == 0) break;  // Parse below frees space next round.
    const ssize_t n = ::readv(conn->fd, iov, segments);
    if (n > 0) {
      conn->rx.CommitWrite(static_cast<size_t>(n));
      continue;
    }
    if (n == 0 || (errno != EAGAIN && errno != EWOULDBLOCK &&
                   errno != EINTR)) {
      FailConn(conn);
      return;
    }
    if (errno == EINTR) continue;
    break;
  }
  const Nanos now = SystemClock::Global()->Now();
  for (;;) {
    uint8_t header[kLengthPrefixBytes];
    if (!conn->rx.Peek(0, header, sizeof(header))) break;
    if (wire::GetU32(header) != kResponseBodyBytes) {
      FailConn(conn);
      return;
    }
    uint8_t body[kResponseBodyBytes];
    if (!conn->rx.Peek(kLengthPrefixBytes, body, sizeof(body))) break;
    conn->rx.Consume(kResponseFrameBytes);
    ResponseFrame frame;
    DecodeResponseBody(body, &frame);
    OnResponse(conn, frame, now);
  }
}

void NetClient::FlushConn(Conn* conn) {
  if (!conn->alive) return;
  bool want_write = false;
  while (!conn->tx.empty()) {
    struct iovec iov[2];
    const int segments = conn->tx.ReadableSegments(iov);
    const ssize_t n = ::writev(conn->fd, iov, segments);
    if (n > 0) {
      conn->tx.Consume(static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      want_write = true;
      break;
    }
    if (n < 0 && errno == EINTR) continue;
    FailConn(conn);
    return;
  }
  if (want_write != conn->want_write) {
    conn->want_write = want_write;
    epoll_event ev{};
    ev.events = EPOLLIN | (want_write ? static_cast<uint32_t>(EPOLLOUT) : 0u);
    ev.data.u64 = conn->index;
    ::epoll_ctl(epoll_fds_[conn->index % options_.num_io_threads],
                EPOLL_CTL_MOD, conn->fd, &ev);
  }
}

void NetClient::IoThread(size_t thread_index) {
  epoll_event events[kMaxEpollEvents];
  while (!stop_.load(std::memory_order_acquire)) {
    const int n =
        ::epoll_wait(epoll_fds_[thread_index], events, kMaxEpollEvents, 100);
    for (int i = 0; i < n; ++i) {
      const uint64_t token = events[i].data.u64;
      if (token == kEventToken) {
        uint64_t drained;
        [[maybe_unused]] ssize_t r =
            ::read(event_fds_[thread_index], &drained, sizeof(drained));
        wake_flags_[thread_index]->store(false, std::memory_order_release);
        continue;
      }
      Conn* conn = conns_[token].get();
      if (events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) {
        ReadConn(conn);
      }
      if (conn->alive && (events[i].events & EPOLLOUT)) FlushConn(conn);
    }
    if (mode_.load(std::memory_order_acquire) ==
            static_cast<int>(Mode::kClosedLoop) &&
        sending_.load(std::memory_order_acquire)) {
      for (size_t i = thread_index; i < conns_.size();
           i += options_.num_io_threads) {
        TopUp(conns_[i].get());
      }
    }
    PlaceOpenLoop(thread_index);
    for (size_t i = thread_index; i < conns_.size();
         i += options_.num_io_threads) {
      FlushConn(conns_[i].get());
    }
  }
}

}  // namespace bouncer::net
