#ifndef BOUNCER_NET_NET_CLIENT_H_
#define BOUNCER_NET_NET_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/graph/cluster.h"
#include "src/net/byte_ring.h"
#include "src/net/protocol.h"
#include "src/stats/histogram.h"
#include "src/util/mpmc_queue.h"
#include "src/util/status.h"

namespace bouncer::net {

/// TCP load client for NetServer: a pool of non-blocking connections
/// sharded across epoll IO threads, driving the server in either of the
/// two modes the benchmarks need:
///
///  - closed loop (StartClosedLoop): every connection keeps a fixed
///    window of requests in flight, refilling as responses arrive — the
///    saturation mode bench_net_throughput sweeps;
///  - open loop (TrySend): the caller emits requests on an absolute
///    schedule (e.g. workload::LoadGenerator's Poisson departures) into a
///    bounded local queue the IO threads drain; when server backpressure
///    fills the local queue, TrySend reports the drop instead of
///    blocking, preserving the open-loop property.
///
/// Request frames come from a caller-provided Sampler; the client
/// overwrites `id` with a per-connection sequence number used to match
/// responses to their departure timestamps (no allocation per request).
class NetClient {
 public:
  /// Produces the next frame for `conn_index`; `seq` is that connection's
  /// request sequence number. Called concurrently for distinct
  /// connections — key any RNG state by conn_index.
  using Sampler = std::function<RequestFrame(size_t conn_index, uint64_t seq)>;

  struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    size_t num_connections = 8;
    size_t num_io_threads = 2;
    size_t in_flight_per_conn = 16;  ///< Closed-loop window.
    size_t ring_bytes = 1 << 16;     ///< Per-connection rx and tx rings.
    size_t open_queue_capacity = 1 << 14;  ///< Open-loop local queue.
    /// Departure-timestamp slots per connection (rounded up to a power
    /// of two). 0 = sized from the closed-loop window, capped at 4096 —
    /// at 10k+ connections a fixed-size table would dominate client
    /// memory. A response whose slot was overwritten (possible open-loop
    /// under extreme overload) skips the latency sample, nothing else.
    size_t latency_slots = 0;
  };

  /// Monotonic counters (snapshot via counters()).
  struct Counters {
    uint64_t accepted = 0;   ///< Requests committed to be sent (closed-loop
                             ///< placements + open-loop TrySend successes,
                             ///< including frames still in the local queue).
    uint64_t queued = 0;     ///< Requests handed to a connection.
    uint64_t responses = 0;  ///< Response frames received.
    uint64_t ok = 0;
    uint64_t rejected = 0;
    uint64_t shedded = 0;
    uint64_t expired = 0;
    uint64_t failed = 0;  ///< kFailed + kBadRequest responses.
    uint64_t dropped = 0;       ///< Open-loop sends shed at the local queue.
    uint64_t conn_errors = 0;   ///< Connections lost mid-run.
    /// Failure attribution parsed from the response flags byte (the
    /// server's RejectReason wire code), so callers can tell policy
    /// rejection, queue shed, shard-side backpressure and expiry apart
    /// even when statuses alone are ambiguous (e.g. kFailed).
    uint64_t reason_policy = 0;   ///< kPolicy (broker policy said no).
    uint64_t reason_queue = 0;    ///< kQueueFull (broker queue shed).
    uint64_t reason_expired = 0;  ///< kExpired (deadline passed queued).
    uint64_t reason_shard = 0;    ///< kShard* (subquery failed at a shard).
  };

  NetClient(const Options& options, Sampler sampler);
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Connects all connections and spawns the IO threads (idle until a
  /// mode starts).
  Status Start();
  void Stop();

  /// Begins closed-loop driving: tops every connection up to the
  /// configured window and keeps it there.
  void StartClosedLoop();
  /// Stops issuing new closed-loop requests; in-flight ones still drain.
  void StopSending();

  /// Open loop: enqueue one request for the IO threads to place. Returns
  /// false (and counts a drop) when the local queue is full — i.e. the
  /// server's TCP backpressure has propagated all the way here.
  bool TrySend(const RequestFrame& frame);

  /// Blocks until every accepted request has a response — including
  /// open-loop frames still waiting in the local queue, which would
  /// otherwise leak into a later measurement window — or the timeout
  /// passes, or a connection error makes completion impossible. Returns
  /// true when fully drained.
  bool WaitForDrain(Nanos timeout);

  Counters counters() const;
  /// Round-trip latency over all responses since the last ResetStats().
  stats::HistogramSummary Latency() const { return latency_.MakeSummary(); }
  /// Round-trip latency of one op's responses.
  stats::HistogramSummary LatencyFor(graph::GraphOp op) const {
    return latency_by_op_[static_cast<size_t>(op)].MakeSummary();
  }
  /// Zeros counters and latency histograms. Call only while quiescent
  /// (before a measurement window, not mid-flight).
  void ResetStats();

 private:
  struct Conn;
  enum class Mode : int { kIdle = 0, kClosedLoop = 1 };

  void IoThread(size_t thread_index);
  void ReadConn(Conn* conn);
  void OnResponse(Conn* conn, const ResponseFrame& frame, Nanos now);
  bool SendOne(Conn* conn);
  void TopUp(Conn* conn);
  void PlaceOpenLoop(size_t thread_index);
  void FlushConn(Conn* conn);
  void FailConn(Conn* conn);
  void WakeThread(size_t thread_index);

  Options options_;
  Sampler sampler_;
  size_t slot_mask_ = 0;  ///< latency-slot count - 1 (power of two).

  std::vector<std::unique_ptr<Conn>> conns_;
  std::vector<int> epoll_fds_;
  std::vector<int> event_fds_;
  std::vector<std::unique_ptr<std::atomic<bool>>> wake_flags_;
  std::vector<std::thread> threads_;

  MpmcQueue<RequestFrame> open_queue_;
  std::atomic<size_t> open_rr_{0};  ///< Round-robin wake target.

  std::atomic<int> mode_{0};
  std::atomic<bool> sending_{false};
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> queued_{0};
  std::atomic<uint64_t> responses_{0};
  std::atomic<uint64_t> ok_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> shedded_{0};
  std::atomic<uint64_t> expired_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> conn_errors_{0};
  std::atomic<uint64_t> reason_policy_{0};
  std::atomic<uint64_t> reason_queue_{0};
  std::atomic<uint64_t> reason_expired_{0};
  std::atomic<uint64_t> reason_shard_{0};
  stats::Histogram latency_;
  stats::Histogram latency_by_op_[graph::kNumGraphOps];
};

}  // namespace bouncer::net

#endif  // BOUNCER_NET_NET_CLIENT_H_
