#include "src/net/net_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "src/net/net_server_internal.h"
#include "src/util/clock.h"

namespace bouncer::net {

using graph::GraphQueryResult;
using server::Outcome;

namespace {

ResponseStatus ToStatus(Outcome outcome, bool result_ok) {
  switch (outcome) {
    case Outcome::kCompleted:
      return result_ok ? ResponseStatus::kOk : ResponseStatus::kFailed;
    case Outcome::kRejected:
      return ResponseStatus::kRejected;
    case Outcome::kExpired:
      return ResponseStatus::kExpired;
    case Outcome::kShedded:
      return ResponseStatus::kShedded;
  }
  return ResponseStatus::kFailed;
}

/// Data-path syscall accounting (Stats::syscalls). Templated so it never
/// names the private LoopCounters type.
template <typename Counters>
void CountSyscall(Counters& counters, uint64_t n = 1) {
  counters.syscalls.fetch_add(n, std::memory_order_relaxed);
}

}  // namespace

const char* NetBackendName(NetBackend backend) {
  switch (backend) {
    case NetBackend::kAuto:
      return "auto";
    case NetBackend::kEpoll:
      return "epoll";
    case NetBackend::kUring:
      return "io_uring";
  }
  return "epoll";
}

bool ParseNetBackend(const std::string& text, NetBackend* out) {
  if (text == "auto") {
    *out = NetBackend::kAuto;
  } else if (text == "epoll") {
    *out = NetBackend::kEpoll;
  } else if (text == "io_uring" || text == "uring") {
    *out = NetBackend::kUring;
  } else {
    return false;
  }
  return true;
}

bool NetServer::UringSupported(std::string* reason) {
  const UringSupport& support = QueryUringSupport();
  if (!support.supported && reason != nullptr) *reason = support.reason;
  return support.supported;
}

NetServer::NetServer(graph::Cluster* cluster, const Options& options)
    : cluster_(cluster), options_(options) {
  if (options_.num_loops == 0) {
    const size_t hw = std::thread::hardware_concurrency();
    options_.num_loops = hw == 0 ? 1 : (hw < 4 ? hw : 4);
  }
  if (options_.num_loops > kMaxLoops) options_.num_loops = kMaxLoops;
  if constexpr (stats::kTraceCompiledIn) {
    recorder_ = options_.recorder != nullptr
                    ? options_.recorder
                    : &stats::FlightRecorder::Global();
  }
  if (options_.tenants != nullptr) {
    tenant_stats_ =
        std::make_unique<PolicyStateTable<TenantNetCell>>(/*num_types=*/1);
  }
}

NetServer::~NetServer() { Stop(); }

Status NetServer::StartListeners() {
  // Reuseport path: one listener per loop, all bound to the same port,
  // the kernel hashes incoming connections across them. Any failure
  // after loop 0's listener is up falls back to handoff mode (loop 0
  // accepts for everyone) rather than failing Start; extra listeners
  // already bound are closed so exactly one thread ever accepts then.
  const bool want_reuseport =
      !options_.force_fd_handoff && loops_.size() > 1;
  handoff_mode_ = !want_reuseport && loops_.size() > 1;
  const auto fall_back = [this] {
    for (size_t j = 1; j < loops_.size(); ++j) {
      if (loops_[j]->listen_fd >= 0) {
        ::close(loops_[j]->listen_fd);
        loops_[j]->listen_fd = -1;
      }
    }
    handoff_mode_ = true;
  };

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  const size_t listeners = handoff_mode_ ? 1 : loops_.size();
  for (size_t i = 0; i < listeners; ++i) {
    const int fd =
        ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd < 0) {
      if (i == 0) return Status::Internal("socket() failed");
      fall_back();
      return Status::OK();
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (want_reuseport &&
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
      // Kernel without SO_REUSEPORT: single listener + fd handoff.
      if (i > 0) {
        ::close(fd);
        fall_back();
        return Status::OK();
      }
      handoff_mode_ = true;
    }
    addr.sin_port = htons(i == 0 ? options_.port : port_);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
        ::listen(fd, options_.listen_backlog) < 0) {
      ::close(fd);
      if (i == 0) {
        return Status::Internal(std::string("bind/listen failed: ") +
                                std::strerror(errno));
      }
      fall_back();
      return Status::OK();
    }
    if (i == 0) {
      socklen_t addr_len = sizeof(addr);
      ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len);
      port_ = ntohs(addr.sin_port);
    }
    loops_[i]->listen_fd = fd;
    if (handoff_mode_) break;  // SO_REUSEPORT failed on loop 0's socket.
  }
  return Status::OK();
}

Status NetServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server already started");
  }
  loops_.clear();  // Restart after Stop(): previous loops' stats reset.
  handoff_mode_ = false;
  handoff_rr_ = 0;
  port_ = 0;
  total_live_.store(0, std::memory_order_relaxed);

  const size_t num_loops = options_.num_loops;
  // Done-ring sizing: bounds how far workers can run ahead of a loop's
  // drain. Scaled down with the loop count so a high-connection server
  // doesn't multiply ring memory by the loop count.
  size_t ring = options_.max_connections * 64 / num_loops;
  if (ring < (1u << 12)) ring = 1u << 12;
  if (ring > (1u << 16)) ring = 1u << 16;
  const size_t mailbox =
      options_.max_connections < 1024 ? 1024 : options_.max_connections;
  loops_.reserve(num_loops);
  for (size_t i = 0; i < num_loops; ++i) {
    loops_.push_back(std::make_unique<Loop>(this, i, ring, mailbox));
    Loop& loop = *loops_.back();
    loop.batch.reserve(options_.max_batch);
    loop.batch_tokens.reserve(options_.max_batch);
    loop.deferred_dones.reserve(options_.max_batch);
  }

  // Backend resolution. kAuto degrades to epoll with a recorded reason;
  // explicit kUring fails Start() instead so a misconfigured deployment
  // is loud, not silently slower.
  backend_ = NetBackend::kEpoll;
  backend_fallback_reason_.clear();
  if (options_.backend != NetBackend::kEpoll) {
    const UringSupport& support = QueryUringSupport();
    if (support.supported) {
      backend_ = NetBackend::kUring;
    } else if (options_.backend == NetBackend::kUring) {
      loops_.clear();
      return Status::FailedPrecondition("io_uring backend unavailable: " +
                                        support.reason);
    } else {
      backend_fallback_reason_ = support.reason;
      std::fprintf(stderr,
                   "[net] io_uring unavailable (%s); backend=auto falling "
                   "back to epoll\n",
                   support.reason.c_str());
    }
  }

  if (Status s = StartListeners(); !s.ok()) {
    CloseAll();
    loops_.clear();
    return s;
  }
  for (auto& loop_ptr : loops_) {
    Loop& loop = *loop_ptr;
    loop.event_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (loop.event_fd < 0) {
      CloseAll();
      loops_.clear();
      return Status::Internal("eventfd setup failed");
    }
  }
  if (backend_ == NetBackend::kUring && !UringSetupLoops()) {
    // Probe passed but ring setup failed (fd or memlock limits, most
    // likely). Explicit kUring surfaces it; kAuto degrades.
    if (options_.backend == NetBackend::kUring) {
      CloseAll();
      loops_.clear();
      return Status::Internal("io_uring setup failed: " +
                              backend_fallback_reason_);
    }
    std::fprintf(stderr,
                 "[net] io_uring setup failed (%s); backend=auto falling "
                 "back to epoll\n",
                 backend_fallback_reason_.c_str());
    backend_ = NetBackend::kEpoll;
  }
  if (backend_ == NetBackend::kEpoll) {
    for (auto& loop_ptr : loops_) {
      Loop& loop = *loop_ptr;
      loop.epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
      if (loop.epoll_fd < 0) {
        CloseAll();
        loops_.clear();
        return Status::Internal("epoll setup failed");
      }
      epoll_event ev{};
      if (loop.listen_fd >= 0) {
        ev.events = EPOLLIN;
        ev.data.u64 = kListenToken;
        ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_ADD, loop.listen_fd, &ev);
      }
      ev.events = EPOLLIN;
      ev.data.u64 = kEventToken;
      ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_ADD, loop.event_fd, &ev);
    }
  }

  if (options_.metrics != nullptr) {
    metrics_collector_handle_ =
        options_.metrics->AddCollector([this](stats::MetricSink& sink) {
          const Stats s = AggregateStats();
          sink.AddCounter("net.connections_accepted", s.connections_accepted);
          sink.AddCounter("net.connections_dropped", s.connections_dropped);
          sink.AddCounter("net.connections_closed", s.connections_closed);
          sink.AddCounter("net.requests", s.requests);
          sink.AddCounter("net.responses", s.responses);
          sink.AddCounter("net.rejections", s.rejections);
          sink.AddCounter("net.rejections_policy", s.rejections_policy);
          sink.AddCounter("net.rejections_queue", s.rejections_queue);
          sink.AddCounter("net.failures_shard", s.failures_shard);
          sink.AddCounter("net.expirations", s.expirations);
          sink.AddCounter("net.bad_frames", s.bad_frames);
          sink.AddCounter("net.submit_batches", s.submit_batches);
          sink.AddCounter("net.pauses", s.pauses);
          sink.AddCounter("net.pauses_inflight", s.pauses_inflight);
          sink.AddCounter("net.pauses_tx", s.pauses_tx);
          sink.AddCounter("net.pauses_overload", s.pauses_overload);
          sink.AddCounter("net.admin_requests", s.admin_requests);
          sink.AddCounter("net.handoffs", s.handoffs);
          sink.AddCounter("net.nodelay_failures", s.nodelay_failures);
          sink.AddCounter("net.syscalls", s.syscalls);
          sink.AddCounter("net.wakeups", s.wakeups);
          sink.AddCounter("net.eventfd_wakeups", s.eventfd_wakeups);
          // 1 when the io_uring backend is serving, 0 for epoll — how
          // `net_client --stats` learns which backend answered it.
          sink.AddGauge("net.backend_io_uring",
                        backend_ == NetBackend::kUring ? 1 : 0);
          sink.AddGauge("net.loops", static_cast<int64_t>(loops_.size()));
          for (size_t i = 0; i < loops_.size(); ++i) {
            const Stats ls = LoopStats(i);
            const std::string prefix = "net.loop" + std::to_string(i) + ".";
            sink.AddCounter(prefix + "requests", ls.requests);
            sink.AddCounter(prefix + "responses", ls.responses);
            sink.AddCounter(prefix + "pauses", ls.pauses);
          }
          if (options_.tenants != nullptr && tenant_stats_ != nullptr) {
            // Per-tenant rows, keyed by external id. Bounded so a
            // 100k-tenant deployment cannot balloon the admin payload:
            // the first kMaxTenantMetricRows active tenants are listed,
            // the rest only counted.
            constexpr size_t kMaxTenantMetricRows = 256;
            const size_t n = options_.tenants->size();
            sink.AddGauge("tenant.count", static_cast<int64_t>(n));
            size_t rows = 0;
            size_t skipped = 0;
            for (size_t t = 0; t < n; ++t) {
              const TenantNetCell* cell =
                  tenant_stats_->Find(static_cast<TenantId>(t));
              if (cell == nullptr) continue;
              const uint64_t requests =
                  cell->requests.load(std::memory_order_relaxed);
              if (requests == 0) continue;
              if (rows >= kMaxTenantMetricRows) {
                ++skipped;
                continue;
              }
              ++rows;
              const std::string prefix =
                  "tenant." +
                  std::to_string(options_.tenants->ExternalIdOf(
                      static_cast<TenantId>(t))) +
                  ".";
              sink.AddCounter(prefix + "requests", requests);
              sink.AddCounter(prefix + "ok",
                              cell->ok.load(std::memory_order_relaxed));
              sink.AddCounter(
                  prefix + "rejected",
                  cell->rejected.load(std::memory_order_relaxed));
              sink.AddCounter(prefix + "shedded",
                              cell->shedded.load(std::memory_order_relaxed));
              sink.AddCounter(prefix + "expired",
                              cell->expired.load(std::memory_order_relaxed));
              sink.AddCounter(prefix + "failed",
                              cell->failed.load(std::memory_order_relaxed));
            }
            sink.AddGauge("tenant.rows_truncated",
                          static_cast<int64_t>(skipped));
          }
        });
  }

  stop_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  for (auto& loop_ptr : loops_) {
    Loop& loop = *loop_ptr;
    loop.thread = std::thread([this, &loop] { LoopThread(loop); });
  }
  return Status::OK();
}

void NetServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  if (metrics_collector_handle_ != 0) {
    options_.metrics->RemoveCollector(metrics_collector_handle_);
    metrics_collector_handle_ = 0;
  }
  stop_requested_.store(true, std::memory_order_release);
  for (auto& loop : loops_) {
    if (loop->event_fd >= 0) WriteEventFd(loop->event_fd);
  }
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  // Cluster workers may still be inside OnQueryDone for requests this
  // server submitted; those calls read Loop state (done rings, counters,
  // eventfds), so the loops must stay alive until the last one returns.
  // The ring-push spin inside OnQueryDone exits on stop_requested_, so
  // this drain is bounded by worker progress, never by ring space.
  while (inflight_dones_.load(std::memory_order_acquire) != 0) {
    CpuRelax();
  }
  CloseAll();
}

void NetServer::CloseAll() {
  for (auto& loop_ptr : loops_) {
    Loop& loop = *loop_ptr;
    // Handed-off fds nobody adopted.
    int fd;
    while (loop.fd_mailbox.TryPop(fd)) ::close(fd);
    for (auto& slot : loop.slots) {
      if (slot && slot->fd >= 0) {
        ::close(slot->fd);
        slot->fd = -1;
        ++slot->gen;
      }
    }
    if (loop.listen_fd >= 0) ::close(loop.listen_fd);
    if (loop.epoll_fd >= 0) ::close(loop.epoll_fd);
    if (loop.event_fd >= 0) ::close(loop.event_fd);
    loop.listen_fd = loop.epoll_fd = loop.event_fd = -1;
    // Closing the ring fd cancels whatever was still in flight.
    UringDestroyLoop(loop);
  }
}

NetServer::TenantStats NetServer::TenantStatsOf(TenantId tenant) const {
  TenantStats s;
  if (tenant_stats_ == nullptr) return s;
  const TenantNetCell* cell = tenant_stats_->Find(tenant);
  if (cell == nullptr) return s;
  s.requests = cell->requests.load(std::memory_order_relaxed);
  s.ok = cell->ok.load(std::memory_order_relaxed);
  s.rejected = cell->rejected.load(std::memory_order_relaxed);
  s.shedded = cell->shedded.load(std::memory_order_relaxed);
  s.expired = cell->expired.load(std::memory_order_relaxed);
  s.failed = cell->failed.load(std::memory_order_relaxed);
  return s;
}

NetServer::Stats NetServer::LoopStats(size_t loop) const {
  Stats s;
  if (loop >= loops_.size()) return s;
  const LoopCounters& c = loops_[loop]->counters;
  s.connections_accepted =
      c.connections_accepted.load(std::memory_order_relaxed);
  s.connections_dropped =
      c.connections_dropped.load(std::memory_order_relaxed);
  s.connections_closed =
      c.connections_closed.load(std::memory_order_relaxed);
  s.requests = c.requests.load(std::memory_order_relaxed);
  s.responses = c.responses.load(std::memory_order_relaxed);
  s.rejections = c.rejections.load(std::memory_order_relaxed);
  s.rejections_policy = c.rejections_policy.load(std::memory_order_relaxed);
  s.rejections_queue = c.rejections_queue.load(std::memory_order_relaxed);
  s.failures_shard = c.failures_shard.load(std::memory_order_relaxed);
  s.expirations = c.expirations.load(std::memory_order_relaxed);
  s.bad_frames = c.bad_frames.load(std::memory_order_relaxed);
  s.submit_batches = c.submit_batches.load(std::memory_order_relaxed);
  s.pauses = c.pauses.load(std::memory_order_relaxed);
  s.pauses_inflight = c.pauses_inflight.load(std::memory_order_relaxed);
  s.pauses_tx = c.pauses_tx.load(std::memory_order_relaxed);
  s.pauses_overload = c.pauses_overload.load(std::memory_order_relaxed);
  s.admin_requests = c.admin_requests.load(std::memory_order_relaxed);
  s.handoffs = c.handoffs.load(std::memory_order_relaxed);
  s.nodelay_failures = c.nodelay_failures.load(std::memory_order_relaxed);
  s.syscalls = c.syscalls.load(std::memory_order_relaxed);
  s.wakeups = c.wakeups.load(std::memory_order_relaxed);
  s.eventfd_wakeups = c.eventfd_wakeups.load(std::memory_order_relaxed);
  s.backend = backend_;
  return s;
}

NetServer::Stats NetServer::AggregateStats() const {
  Stats total;
  for (size_t i = 0; i < loops_.size(); ++i) {
    const Stats s = LoopStats(i);
    total.connections_accepted += s.connections_accepted;
    total.connections_dropped += s.connections_dropped;
    total.connections_closed += s.connections_closed;
    total.requests += s.requests;
    total.responses += s.responses;
    total.rejections += s.rejections;
    total.rejections_policy += s.rejections_policy;
    total.rejections_queue += s.rejections_queue;
    total.failures_shard += s.failures_shard;
    total.expirations += s.expirations;
    total.bad_frames += s.bad_frames;
    total.submit_batches += s.submit_batches;
    total.pauses += s.pauses;
    total.pauses_inflight += s.pauses_inflight;
    total.pauses_tx += s.pauses_tx;
    total.pauses_overload += s.pauses_overload;
    total.admin_requests += s.admin_requests;
    total.handoffs += s.handoffs;
    total.nodelay_failures += s.nodelay_failures;
    total.syscalls += s.syscalls;
    total.wakeups += s.wakeups;
    total.eventfd_wakeups += s.eventfd_wakeups;
  }
  total.backend = backend_;
  return total;
}

NetServer::Connection* NetServer::Resolve(Loop& loop, uint64_t token) {
  const uint32_t index = static_cast<uint32_t>(token) & kSlotMask;
  const uint32_t loop_id =
      static_cast<uint32_t>(token >> kSlotBits) & kLoopMask;
  const auto gen = static_cast<uint32_t>(token >> 32);
  if (loop_id != loop.id || index >= loop.slots.size()) return nullptr;
  Connection* conn = loop.slots[index].get();
  if (conn == nullptr || conn->fd < 0 || conn->gen != gen) return nullptr;
  return conn;
}

void NetServer::UpdateEpoll(Loop& loop, Connection* conn) {
  if (backend_ == NetBackend::kUring) {
    UringUpdateInterest(loop, conn);
    return;
  }
  uint32_t want = 0;
  if (conn->want_read && !conn->closing) want |= EPOLLIN;
  if (!conn->tx.empty()) want |= EPOLLOUT;
  if (want == conn->armed_events) return;
  epoll_event ev{};
  ev.events = want | EPOLLRDHUP;
  ev.data.u64 = conn->Token();
  ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev);
  CountSyscall(loop.counters);
  conn->armed_events = want;
}

void NetServer::PauseRead(Loop& loop, Connection* conn) {
  if (!conn->want_read) return;
  conn->want_read = false;
  loop.counters.pauses.fetch_add(1, std::memory_order_relaxed);
  UpdateEpoll(loop, conn);
}

void NetServer::ResumeRead(Loop& loop, Connection* conn) {
  if (conn->want_read || conn->closing) return;
  if (conn->read_paused_inflight || conn->read_paused_tx ||
      conn->read_paused_overload) {
    return;
  }
  conn->want_read = true;
  UpdateEpoll(loop, conn);
  // Bytes may already be buffered (or the kernel buffer full); parse and
  // read rather than waiting for another edge.
  ParseConn(loop, conn);
  ReadConn(loop, conn);
}

void NetServer::AdoptFd(Loop& loop, int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  // Verify: small length-prefixed frames must never be Nagle-delayed.
  // The counter (asserted zero in tests) proves every accepted socket
  // really runs with the option set.
  int got = 0;
  socklen_t got_len = sizeof(got);
  if (::getsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &got, &got_len) != 0 ||
      got == 0) {
    loop.counters.nodelay_failures.fetch_add(1, std::memory_order_relaxed);
  }

  Connection* conn;
  if (!loop.free_slots.empty()) {
    conn = loop.slots[loop.free_slots.back()].get();
    loop.free_slots.pop_back();
  } else {
    if (loop.slots.size() >= kSlotMask) {
      // Slot index field exhausted (16M connections on one loop).
      loop.counters.connections_dropped.fetch_add(1,
                                                  std::memory_order_relaxed);
      total_live_.fetch_sub(1, std::memory_order_relaxed);
      ::close(fd);
      return;
    }
    const auto index = static_cast<uint32_t>(loop.slots.size());
    loop.slots.push_back(std::make_unique<Connection>(
        options_.read_ring_bytes, options_.write_ring_bytes));
    conn = loop.slots.back().get();
    conn->index = index;
    conn->loop_id = loop.id;
  }
  conn->fd = fd;
  conn->rx.Clear();
  conn->tx.Clear();
  conn->owed = 0;
  conn->want_read = true;
  conn->dirty = false;
  conn->read_paused_inflight = conn->read_paused_tx =
      conn->read_paused_overload = false;
  conn->closing = false;
  conn->admin_active = false;
  conn->admin_id = 0;
  conn->admin_offset = 0;
  conn->admin_payload.clear();
  conn->armed_events = EPOLLIN;
  conn->recv_armed = false;
  conn->send_inflight = false;
  conn->cancel_pending = false;
  conn->zombie = false;
  loop.counters.connections_accepted.fetch_add(1, std::memory_order_relaxed);

  if (backend_ == NetBackend::kUring) {
    // Multishot recv plays the role of the persistent EPOLLIN interest;
    // bytes that arrived before the arm (handed-off fds) surface as a
    // completion as soon as the SQE is submitted.
    UringArmRecv(loop, conn);
    return;
  }
  // Level-triggered EPOLLIN: bytes that arrived before this ADD (e.g. on
  // a handed-off fd) surface on the next epoll_wait.
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLRDHUP;
  ev.data.u64 = conn->Token();
  ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_ADD, fd, &ev);
  CountSyscall(loop.counters);
}

void NetServer::AcceptReady(Loop& loop) {
  for (;;) {
    CountSyscall(loop.counters);
    const int fd = ::accept4(loop.listen_fd, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error: done for now.
    HandleAccepted(loop, fd);
  }
}

/// Shared accept tail: cap enforcement and (in handoff mode) mailing
/// the fd to its round-robin target. Both backends' accept paths land
/// here.
void NetServer::HandleAccepted(Loop& loop, int fd) {
  if (total_live_.fetch_add(1, std::memory_order_relaxed) >=
      options_.max_connections) {
    total_live_.fetch_sub(1, std::memory_order_relaxed);
    loop.counters.connections_dropped.fetch_add(1, std::memory_order_relaxed);
    ::close(fd);
    return;
  }
  if (handoff_mode_ && loops_.size() > 1) {
    // Loop 0 accepts for everyone; fds round-robin across the loops
    // (including loop 0 itself) through each target's mailbox.
    const size_t target = handoff_rr_++ % loops_.size();
    if (target != loop.id) {
      Loop& other = *loops_[target];
      int mailed = fd;
      if (other.fd_mailbox.TryPush(std::move(mailed))) {
        loop.counters.handoffs.fetch_add(1, std::memory_order_relaxed);
        WriteEventFd(other.event_fd);
        CountSyscall(loop.counters);
        return;
      }
      // Mailbox full (target loop badly behind): keep it local rather
      // than dropping the connection.
    }
  }
  AdoptFd(loop, fd);
}

void NetServer::DrainMailbox(Loop& loop) {
  int fd;
  while (loop.fd_mailbox.TryPop(fd)) {
    if (stop_requested_.load(std::memory_order_acquire)) {
      ::close(fd);
      total_live_.fetch_sub(1, std::memory_order_relaxed);
      continue;
    }
    AdoptFd(loop, fd);
  }
}

void NetServer::CloseConn(Loop& loop, Connection* conn) {
  if (conn->fd < 0) return;
  // io_uring holds a file reference for every outstanding SQE, so close
  // alone would leave a multishot recv pending forever; cancel first
  // (by user_data — the fd number may be reused immediately).
  if (backend_ == NetBackend::kUring) UringPrepareClose(loop, conn);
  ::close(conn->fd);  // Also removes it from the epoll set.
  conn->fd = -1;
  ++conn->gen;  // In-flight completions now resolve to nothing.
  conn->rx.Clear();
  conn->tx.Clear();
  conn->owed = 0;
  conn->dirty = false;
  conn->admin_active = false;
  conn->admin_payload.clear();
  conn->admin_payload.shrink_to_fit();
  if (conn->uring_inflight > 0) {
    // Zombie: the slot returns to free_slots when the last CQE lands.
    conn->zombie = true;
  } else {
    loop.free_slots.push_back(conn->index);
  }
  total_live_.fetch_sub(1, std::memory_order_relaxed);
  loop.counters.connections_closed.fetch_add(1, std::memory_order_relaxed);
}

void NetServer::ReadConn(Loop& loop, Connection* conn) {
  if (conn->fd < 0 || conn->closing) return;
  if (backend_ == NetBackend::kUring) {
    // No synchronous read: drain staged recv buffers, parse, and make
    // sure the multishot recv is armed again.
    UringPumpConn(loop, conn);
    return;
  }
  for (;;) {
    if (!conn->want_read) return;  // Parse gate paused us mid-read.
    struct iovec iov[2];
    const int segments = conn->rx.WritableSegments(iov);
    if (segments == 0) {
      // Ring full of unparsed bytes: only possible while a parse gate
      // holds (frames are far smaller than the ring); the gate's resume
      // re-enters here.
      ParseConn(loop, conn);
      if (conn->rx.free_space() == 0) return;
      continue;
    }
    const ssize_t n = ::readv(conn->fd, iov, segments);
    CountSyscall(loop.counters);
    if (n > 0) {
      conn->rx.CommitWrite(static_cast<size_t>(n));
      ParseConn(loop, conn);
      continue;
    }
    if (n == 0) {
      // EOF: answer what is owed, flush, then close.
      conn->closing = true;
      if (conn->owed == 0 && conn->tx.empty()) CloseConn(loop, conn);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    CloseConn(loop, conn);  // Hard error: responses in flight are dropped.
    return;
  }
}

void NetServer::ParseConn(Loop& loop, Connection* conn) {
  if (conn->fd < 0 || conn->closing) return;
  const Nanos now = SystemClock::Global()->Now();
  for (;;) {
    // Backpressure gates, checked before consuming another frame. Each
    // pause disarms EPOLLIN: the kernel receive buffer fills, the TCP
    // window closes, and the overload queues at the client.
    if (conn->owed >= options_.max_inflight_per_conn) {
      if (!conn->read_paused_inflight) {
        conn->read_paused_inflight = true;
        loop.counters.pauses_inflight.fetch_add(1, std::memory_order_relaxed);
      }
      PauseRead(loop, conn);
      return;
    }
    if (conn->tx.free_space() <
        (conn->owed + 1) * kResponseFrameBytes) {
      if (!conn->read_paused_tx) {
        conn->read_paused_tx = true;
        loop.counters.pauses_tx.fetch_add(1, std::memory_order_relaxed);
      }
      PauseRead(loop, conn);
      return;
    }
    uint8_t header[kLengthPrefixBytes];
    if (!conn->rx.Peek(0, header, sizeof(header))) return;
    const uint32_t body_len = wire::GetU32(header);
    if (body_len != kRequestBodyBytesV1 && body_len != kRequestBodyBytes) {
      // Framing is lost; nothing downstream is trustworthy.
      loop.counters.bad_frames.fetch_add(1, std::memory_order_relaxed);
      CloseConn(loop, conn);
      return;
    }
    uint8_t body[kRequestBodyBytes];
    if (!conn->rx.Peek(kLengthPrefixBytes, body, body_len)) return;
    const size_t frame_bytes = kLengthPrefixBytes + body_len;

    // Decoded before the frame is consumed: an admin op that cannot start
    // yet (one already streaming) must stay buffered.
    RequestFrame frame;
    const bool valid = DecodeRequestBody(body, body_len, &frame);
    if (valid && IsAdminOp(frame.op)) {
      if (conn->admin_active) return;  // Resumes when the pump finishes.
      conn->rx.Consume(frame_bytes);
      loop.counters.admin_requests.fetch_add(1, std::memory_order_relaxed);
      StartAdmin(loop, conn, frame);
      continue;
    }
    conn->rx.Consume(frame_bytes);

    if (!valid) {
      // Well-framed but invalid (unknown op / flags): answer and move on.
      loop.counters.bad_frames.fetch_add(1, std::memory_order_relaxed);
      uint8_t encoded[kResponseFrameBytes];
      EncodeResponse({frame.id, ResponseStatus::kBadRequest, 0, 0}, encoded);
      conn->tx.Write(encoded, sizeof(encoded));
      conn->dirty = true;
      loop.counters.responses.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    loop.counters.requests.fetch_add(1, std::memory_order_relaxed);
    ++conn->owed;

    bool traced = false;
    if constexpr (stats::kTraceCompiledIn) {
      if (recorder_->ShouldSample(frame.id)) {
        traced = true;
        stats::TraceEvent event;
        event.ts = now;
        event.id = frame.id;
        event.arg0 = static_cast<int64_t>(frame.deadline_ns);
        event.loc = loop.id;
        event.type = static_cast<uint16_t>(frame.op) + 1;
        event.kind = static_cast<uint8_t>(stats::TraceEventKind::kNetParse);
        recorder_->Record(event);
      }
    }

    TenantId tenant = kDefaultTenant;
    if (options_.tenants != nullptr && frame.tenant != 0) {
      // Interning is O(1) after the tenant's first request (lock-free
      // probe); the first request takes the registry mutex once.
      tenant = options_.tenants->Intern(frame.tenant);
    }
    if (tenant_stats_ != nullptr) {
      tenant_stats_->At(tenant).requests.fetch_add(1,
                                                   std::memory_order_relaxed);
    }

    Pending* pending = loop.pending_pool.Acquire();
    pending->loop = &loop;
    pending->token = conn->Token();
    pending->request_id = frame.id;
    pending->tenant = tenant;
    inflight_dones_.fetch_add(1, std::memory_order_relaxed);
    graph::Cluster::BatchRequest request;
    request.query = ToGraphQuery(frame);
    request.tenant = tenant;
    request.deadline =
        frame.deadline_ns == 0
            ? 0
            : now + static_cast<Nanos>(frame.deadline_ns);
    request.id = frame.id;
    request.traced = traced;
    // 8-byte capture: stays in std::function's inline buffer.
    request.done = [pending](const server::WorkItem& w, Outcome outcome,
                             const GraphQueryResult& result) {
      pending->loop->server->OnQueryDone(pending, w, outcome, result);
    };
    if (options_.batch_submit) {
      loop.batch.push_back(std::move(request));
      loop.batch_tokens.push_back(conn->Token());
      if (loop.batch.size() >= options_.max_batch) SubmitParsed(loop);
    } else {
      // A/B baseline: one admission episode per query.
      cluster_->Submit(request.query, request.deadline,
                       std::move(request.done), frame.id, tenant);
    }
  }
}

void NetServer::SubmitParsed(Loop& loop) {
  if (!loop.batch.empty()) {
    loop.counters.submit_batches.fetch_add(1, std::memory_order_relaxed);
    // Synchronous completions (rejections/sheds) fire on this thread
    // while SubmitBatch iterates the batch; delivering them immediately
    // could resume a paused read, whose re-parse appends to the batch
    // mid-iteration. Park them in deferred_dones until the call returns.
    ++loop.submit_depth;
    loop.in_submit = true;
    // The loop id rides along as the broker run-queue affinity hint:
    // each event loop keeps feeding the same run-queue shard, so the
    // submit side of the execution core stays shared-nothing per loop.
    const server::Stage::BatchResult result =
        cluster_->SubmitBatch(loop.batch, loop.id);
    loop.in_submit = false;
    if (result.shedded > 0) {
      // A broker's bounded queue stopped admitting: pause every
      // connection that fed this batch until the queue drains
      // (MaybeResumePaused).
      for (const uint64_t token : loop.batch_tokens) {
        Connection* conn = Resolve(loop, token);
        if (conn == nullptr || conn->read_paused_overload) continue;
        conn->read_paused_overload = true;
        loop.counters.pauses_overload.fetch_add(1, std::memory_order_relaxed);
        PauseRead(loop, conn);
      }
      loop.overload_paused = true;
    }
    loop.batch.clear();
    loop.batch_tokens.clear();
    --loop.submit_depth;
  }
  // Answer the parked synchronous rejections — only at the outermost
  // call: delivery can resume reads whose re-parse fills the batch and
  // re-enters SubmitParsed, and letting every nesting level deliver
  // would recurse without bound. Nested calls just append here; the
  // index loop picks their entries up (the vector may grow and
  // reallocate mid-iteration, hence no iterators and a by-value copy).
  if (loop.submit_depth == 0) {
    for (size_t i = 0; i < loop.deferred_dones.size(); ++i) {
      const Done done = loop.deferred_dones[i];
      DeliverDone(loop, done);
    }
    loop.deferred_dones.clear();
  }
}

bool NetServer::BrokersCongested() const {
  const size_t limit = cluster_->options().broker_queue_capacity / 2;
  for (size_t b = 0; b < cluster_->num_brokers(); ++b) {
    if (cluster_->broker(b)->QueueLength() >= limit) return true;
  }
  return false;
}

void NetServer::MaybeResumePaused(Loop& loop) {
  if (!loop.overload_paused || BrokersCongested()) return;
  loop.overload_paused = false;
  for (auto& slot : loop.slots) {
    Connection* conn = slot.get();
    if (conn == nullptr || conn->fd < 0 || !conn->read_paused_overload) {
      continue;
    }
    conn->read_paused_overload = false;
    ResumeRead(loop, conn);
  }
}

void NetServer::OnQueryDone(Pending* pending, const server::WorkItem& item,
                            Outcome outcome, const GraphQueryResult& result) {
  // Keeps Stop()'s loop teardown at bay until every return path below
  // has finished touching `loop`.
  struct InflightGuard {
    std::atomic<uint64_t>& count;
    ~InflightGuard() { count.fetch_sub(1, std::memory_order_release); }
  } inflight_guard{inflight_dones_};
  Loop& loop = *pending->loop;
  Done done;
  done.token = pending->token;
  done.request_id = pending->request_id;
  done.status = static_cast<uint8_t>(ToStatus(outcome, result.ok));
  // Response flags carry the RejectReason wire code: the broker stage's
  // own reason when it terminated the request, else the first failed
  // subquery's shard-side reason.
  if (item.reject_reason != RejectReason::kNone) {
    done.reason = static_cast<uint8_t>(item.reject_reason);
  } else if (outcome == Outcome::kCompleted && !result.ok) {
    done.reason = result.fail_reason;
  }
  done.value = result.value;
  if (tenant_stats_ != nullptr) {
    TenantNetCell& cell = tenant_stats_->At(pending->tenant);
    switch (static_cast<ResponseStatus>(done.status)) {
      case ResponseStatus::kOk:
        cell.ok.fetch_add(1, std::memory_order_relaxed);
        break;
      case ResponseStatus::kRejected:
        cell.rejected.fetch_add(1, std::memory_order_relaxed);
        break;
      case ResponseStatus::kShedded:
        cell.shedded.fetch_add(1, std::memory_order_relaxed);
        break;
      case ResponseStatus::kExpired:
        cell.expired.fetch_add(1, std::memory_order_relaxed);
        break;
      default:
        cell.failed.fetch_add(1, std::memory_order_relaxed);
        break;
    }
  }
  loop.pending_pool.Release(pending);
  if (std::this_thread::get_id() ==
      loop.tid.load(std::memory_order_relaxed)) {
    // Synchronous completion on the owning event loop itself (a
    // rejection inside Submit/SubmitBatch — only the owning loop ever
    // submits its own connections' queries). Never goes near the ring —
    // the loop must not be able to block on the queue only it drains.
    // Delivery is deferred while a submit call is iterating the batch
    // (see SubmitParsed).
    if (loop.in_submit) {
      loop.deferred_dones.push_back(done);
    } else {
      DeliverDone(loop, done);
    }
    return;
  }
  // Worker thread: a full ring means the owning loop has fallen behind;
  // spin until a drain frees a slot (the completion must be delivered
  // exactly once). The loop drains every iteration and can never block
  // on the ring itself, so the wait is bounded by loop progress — except
  // after Stop(), when the loops are gone and every connection is dead:
  // then the completion has no destination and is dropped instead of
  // hanging the cluster's shutdown.
  while (!loop.done_ring.TryPush(std::move(done))) {
    if (stop_requested_.load(std::memory_order_acquire)) return;
    CpuRelax();
  }
  // Wake the loop only if it is (about to be) blocked: an awake loop
  // drains the ring every iteration, so the eventfd write would be a
  // wasted syscall. The seq_cst fence pairs with the loop's pre-wait
  // fence (store done_waiting=true; fence; check ring emptiness): either
  // this push is visible to that check, or done_waiting=true is visible
  // here — a push can never slip past both.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (loop.done_waiting.load(std::memory_order_relaxed) &&
      !loop.done_signal.exchange(true, std::memory_order_acq_rel)) {
    WriteEventFd(loop.event_fd);
    loop.counters.eventfd_wakeups.fetch_add(1, std::memory_order_relaxed);
    loop.counters.syscalls.fetch_add(1, std::memory_order_relaxed);
  }
}

void NetServer::DeliverDone(Loop& loop, const Done& done) {
  loop.counters.responses.fetch_add(1, std::memory_order_relaxed);
  const auto status = static_cast<ResponseStatus>(done.status);
  switch (status) {
    case ResponseStatus::kRejected:
      loop.counters.rejections.fetch_add(1, std::memory_order_relaxed);
      loop.counters.rejections_policy.fetch_add(1, std::memory_order_relaxed);
      break;
    case ResponseStatus::kShedded:
      loop.counters.rejections.fetch_add(1, std::memory_order_relaxed);
      loop.counters.rejections_queue.fetch_add(1, std::memory_order_relaxed);
      break;
    case ResponseStatus::kExpired:
      loop.counters.expirations.fetch_add(1, std::memory_order_relaxed);
      break;
    case ResponseStatus::kFailed:
      loop.counters.failures_shard.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      break;
  }
  Connection* conn = Resolve(loop, done.token);
  if (conn == nullptr) return;  // Connection died while in flight.
  --conn->owed;
  if constexpr (stats::kTraceCompiledIn) {
    if (recorder_->ShouldSample(done.request_id)) {
      stats::TraceEvent event;
      event.ts = SystemClock::Global()->Now();
      event.id = done.request_id;
      event.arg0 = static_cast<int64_t>(done.status);
      event.loc = loop.id;
      event.kind = static_cast<uint8_t>(stats::TraceEventKind::kResponseWrite);
      event.reason = done.reason;
      recorder_->Record(event);
    }
  }
  uint8_t encoded[kResponseFrameBytes];
  EncodeResponse({done.request_id, status, done.reason, done.value}, encoded);
  // Space is guaranteed: parsing never runs the write ring below
  // owed * kResponseFrameBytes of free space.
  conn->tx.Write(encoded, sizeof(encoded));
  conn->dirty = true;
  if (conn->read_paused_inflight &&
      conn->owed < options_.max_inflight_per_conn / 2) {
    conn->read_paused_inflight = false;
    ResumeRead(loop, conn);
  }
}

void NetServer::BuildAdminPayload(uint8_t op, std::string* out) {
  out->clear();
  switch (op) {
    case kOpStatsJson:
      if (options_.metrics != nullptr) {
        *out = options_.metrics->ToJson();
      } else {
        *out = "{\"counters\":{},\"gauges\":{},\"histograms\":{}}";
      }
      return;
    case kOpStatsPrometheus:
      if (options_.metrics != nullptr) *out = options_.metrics->ToPrometheus();
      return;
    case kOpTraceDump:
      if constexpr (stats::kTraceCompiledIn) recorder_->Dump(out);
      return;
    default:
      return;
  }
}

void NetServer::StartAdmin(Loop& loop, Connection* conn,
                           const RequestFrame& frame) {
  BuildAdminPayload(frame.op, &conn->admin_payload);
  conn->admin_offset = 0;
  conn->admin_id = frame.id;
  conn->admin_active = true;
  PumpAdmin(loop, conn);
}

bool NetServer::PumpAdmin(Loop& loop, Connection* conn) {
  if (!conn->admin_active || conn->fd < 0) return true;
  const size_t total = conn->admin_payload.size();
  for (;;) {
    const size_t remaining = total - conn->admin_offset;
    const size_t chunk = remaining < kAdminMaxChunk ? remaining
                                                    : kAdminMaxChunk;
    // The write ring keeps owed * kResponseFrameBytes reserved for
    // in-flight graph responses (DeliverDone writes unconditionally); an
    // admin chunk only goes out when it fits NEXT TO that reservation.
    if (conn->tx.free_space() <
        (conn->owed + 1) * kResponseFrameBytes + chunk) {
      return false;  // Re-pumped next loop iteration, after a flush.
    }
    const bool more = conn->admin_offset + chunk < total;
    uint8_t head[kResponseFrameBytes];
    wire::PutU32(head, static_cast<uint32_t>(kResponseBodyBytes + chunk));
    uint8_t* p = head + kLengthPrefixBytes;
    wire::PutU64(p, conn->admin_id);
    p[8] = static_cast<uint8_t>(ResponseStatus::kOk);
    p[9] = more ? kAdminFlagMore : 0;
    wire::PutU64(p + 10, static_cast<uint64_t>(total));
    conn->tx.Write(head, sizeof(head));
    if (chunk > 0) {
      conn->tx.Write(reinterpret_cast<const uint8_t*>(
                         conn->admin_payload.data() + conn->admin_offset),
                     chunk);
    }
    conn->admin_offset += chunk;
    conn->dirty = true;
    if (!more) {
      conn->admin_active = false;
      conn->admin_payload.clear();
      conn->admin_payload.shrink_to_fit();
      loop.counters.responses.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
}

void NetServer::PumpAdminAll(Loop& loop) {
  for (auto& slot : loop.slots) {
    Connection* conn = slot.get();
    if (conn == nullptr || conn->fd < 0 || !conn->admin_active) continue;
    if (PumpAdmin(loop, conn)) {
      // Frames parked behind the admin request (including another admin
      // op) are parseable again.
      ParseConn(loop, conn);
    }
  }
}

void NetServer::DrainCompletions(Loop& loop) {
  // done_signal resets in the pre-wait block (just before the loop can
  // actually block), not here: resetting mid-iteration would let workers
  // pay an eventfd write for completions this iteration already covers.
  Done done;
  while (loop.done_ring.TryPop(done)) DeliverDone(loop, done);
}

void NetServer::FlushConn(Loop& loop, Connection* conn) {
  if (conn->fd < 0) return;
  if (backend_ == NetBackend::kUring) {
    UringFlushConn(loop, conn);
    return;
  }
  conn->dirty = false;
  while (!conn->tx.empty()) {
    struct iovec iov[2];
    const int segments = conn->tx.ReadableSegments(iov);
    const ssize_t n = ::writev(conn->fd, iov, segments);
    CountSyscall(loop.counters);
    if (n > 0) {
      conn->tx.Consume(static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    CloseConn(loop, conn);
    return;
  }
  if (conn->tx.empty() && conn->read_paused_tx) {
    conn->read_paused_tx = false;
    ResumeRead(loop, conn);
  }
  if (conn->closing && conn->owed == 0 && conn->tx.empty()) {
    CloseConn(loop, conn);
    return;
  }
  UpdateEpoll(loop, conn);  // Arm EPOLLOUT iff bytes remain.
}

void NetServer::LoopThread(Loop& loop) {
  loop.tid.store(std::this_thread::get_id(), std::memory_order_relaxed);
  if (backend_ == NetBackend::kUring) {
    UringRun(loop);
  } else {
    EpollRun(loop);
  }
  // Drain loop-side state so queued completions don't linger unanswered
  // in the ring (they resolve to dead connections after Stop closes fds).
  DrainCompletions(loop);
}

void NetServer::EpollRun(Loop& loop) {
  epoll_event events[kMaxEpollEvents];
  while (!stop_requested_.load(std::memory_order_acquire)) {
    // Overload pauses are re-checked on a short timer (the broker queue
    // drains without producing an event we could wait on); otherwise a
    // long timeout keeps an idle server quiet.
    int timeout_ms = loop.overload_paused ? 1 : 100;
    // Pre-wait handshake with OnQueryDone's worker side: declare we are
    // about to block, then re-check the done ring. Seq_cst fences make
    // this a store-buffering (Dekker) pair — a worker push either shows
    // up in EmptyApprox here, or the worker sees done_waiting and pays
    // the eventfd wakeup.
    loop.done_signal.store(false, std::memory_order_relaxed);
    loop.done_waiting.store(true, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (!loop.done_ring.EmptyApprox()) timeout_ms = 0;
    const int n = ::epoll_wait(loop.epoll_fd, events, kMaxEpollEvents,
                               timeout_ms);
    loop.done_waiting.store(false, std::memory_order_relaxed);
    CountSyscall(loop.counters);
    loop.counters.wakeups.fetch_add(1, std::memory_order_relaxed);
    for (int i = 0; i < n; ++i) {
      const uint64_t token = events[i].data.u64;
      if (token == kListenToken) {
        AcceptReady(loop);
        continue;
      }
      if (token == kEventToken) {
        uint64_t drained;
        [[maybe_unused]] ssize_t r =
            ::read(loop.event_fd, &drained, sizeof(drained));
        CountSyscall(loop.counters);
        DrainMailbox(loop);
        continue;
      }
      Connection* conn = Resolve(loop, token);
      if (conn == nullptr) continue;  // Stale event for a closed conn.
      if (events[i].events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR)) {
        ReadConn(loop, conn);
      }
      if (conn->fd >= 0 && (events[i].events & EPOLLOUT)) {
        FlushConn(loop, conn);
      }
    }
    // One admission episode for everything parsed this wakeup, then
    // answer whatever completed — the batch's synchronous rejections are
    // delivered inside SubmitParsed and flushed in this same iteration.
    // The drain/flush/resume phases can themselves parse new requests
    // (ResumeRead re-parses buffered bytes), so repeat until nothing is
    // left rather than let a resumed request sit in the batch across an
    // epoll_wait (up to the idle timeout away). Each pass consumes real
    // buffered bytes or ring entries, so the loop terminates.
    do {
      SubmitParsed(loop);
      DrainCompletions(loop);
      PumpAdminAll(loop);
      for (auto& slot : loop.slots) {
        Connection* conn = slot.get();
        if (conn != nullptr && conn->fd >= 0 && conn->dirty) {
          FlushConn(loop, conn);
        }
      }
      MaybeResumePaused(loop);
    } while (!loop.batch.empty());
  }
}

}  // namespace bouncer::net
