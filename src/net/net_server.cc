#include "src/net/net_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/util/clock.h"

namespace bouncer::net {

using graph::GraphQueryResult;
using server::Outcome;

namespace {

/// epoll user-data tokens for the two non-connection fds.
constexpr uint64_t kListenToken = ~uint64_t{0};
constexpr uint64_t kEventToken = ~uint64_t{0} - 1;

/// Events drained per epoll_wait call; a wakeup with more ready fds just
/// takes another loop iteration.
constexpr int kMaxEpollEvents = 128;

ResponseStatus ToStatus(Outcome outcome, bool result_ok) {
  switch (outcome) {
    case Outcome::kCompleted:
      return result_ok ? ResponseStatus::kOk : ResponseStatus::kFailed;
    case Outcome::kRejected:
      return ResponseStatus::kRejected;
    case Outcome::kExpired:
      return ResponseStatus::kExpired;
    case Outcome::kShedded:
      return ResponseStatus::kShedded;
  }
  return ResponseStatus::kFailed;
}

}  // namespace

/// One connection slot. Slots (and their rings) are allocated once and
/// recycled across connections; `gen` stamps each incarnation so a
/// completion for a closed connection resolves to nothing instead of a
/// stranger's socket.
struct NetServer::Connection {
  Connection(size_t rx_bytes, size_t tx_bytes) : rx(rx_bytes), tx(tx_bytes) {}

  int fd = -1;
  uint32_t index = 0;
  uint32_t gen = 1;
  ByteRing rx;
  ByteRing tx;
  /// Parsed requests whose response has not yet been encoded into `tx`.
  /// Invariant: tx.free_space() >= owed * kResponseFrameBytes, so a
  /// completion can always be answered without dropping or buffering.
  size_t owed = 0;
  uint32_t armed_events = 0;  ///< Events currently registered in epoll.
  bool want_read = true;
  bool dirty = false;  ///< Has tx bytes awaiting a flush this iteration.
  bool read_paused_inflight = false;
  bool read_paused_tx = false;
  bool read_paused_overload = false;
  bool closing = false;  ///< Peer EOF seen; flush what is owed, then close.

  uint64_t Token() const {
    return (static_cast<uint64_t>(gen) << 32) | index;
  }
};

struct NetServer::Pending {
  NetServer* server = nullptr;
  uint64_t token = 0;
  uint64_t request_id = 0;
};

NetServer::NetServer(graph::Cluster* cluster, const Options& options)
    : cluster_(cluster),
      options_(options),
      pending_pool_(4096),
      done_ring_(options.max_connections * 64 < (1u << 16)
                     ? (1u << 16)
                     : options.max_connections * 64) {
  batch_.reserve(options_.max_batch);
  batch_tokens_.reserve(options_.max_batch);
  deferred_dones_.reserve(options_.max_batch);
}

NetServer::~NetServer() { Stop(); }

Status NetServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server already started");
  }
  // Stop() only cleans up after a successful Start(), so each early
  // return below must close what it already opened.
  const auto fail = [this](Status status) {
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (event_fd_ >= 0) ::close(event_fd_);
    listen_fd_ = epoll_fd_ = event_fd_ = -1;
    return status;
  };
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) return Status::Internal("socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return fail(Status::InvalidArgument("bad bind address: " +
                                        options_.bind_address));
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return fail(Status::Internal(std::string("bind() failed: ") +
                                 std::strerror(errno)));
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, options_.listen_backlog) < 0) {
    return fail(Status::Internal("listen() failed"));
  }

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  event_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || event_fd_ < 0) {
    return fail(Status::Internal("epoll/eventfd setup failed"));
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenToken;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.u64 = kEventToken;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev);

  stop_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  loop_ = std::thread([this] { LoopThread(); });
  return Status::OK();
}

void NetServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_requested_.store(true, std::memory_order_release);
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(event_fd_, &one, sizeof(one));
  if (loop_.joinable()) loop_.join();
  for (auto& slot : slots_) {
    if (slot && slot->fd >= 0) {
      ::close(slot->fd);
      slot->fd = -1;
      ++slot->gen;
    }
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (event_fd_ >= 0) ::close(event_fd_);
  listen_fd_ = epoll_fd_ = event_fd_ = -1;
}

NetServer::Connection* NetServer::Resolve(uint64_t token) {
  const auto index = static_cast<uint32_t>(token);
  const auto gen = static_cast<uint32_t>(token >> 32);
  if (index >= slots_.size()) return nullptr;
  Connection* conn = slots_[index].get();
  if (conn == nullptr || conn->fd < 0 || conn->gen != gen) return nullptr;
  return conn;
}

void NetServer::UpdateEpoll(Connection* conn) {
  uint32_t want = 0;
  if (conn->want_read && !conn->closing) want |= EPOLLIN;
  if (!conn->tx.empty()) want |= EPOLLOUT;
  if (want == conn->armed_events) return;
  epoll_event ev{};
  ev.events = want | EPOLLRDHUP;
  ev.data.u64 = conn->Token();
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
  conn->armed_events = want;
}

void NetServer::PauseRead(Connection* conn) {
  if (!conn->want_read) return;
  conn->want_read = false;
  stats_.pauses.fetch_add(1, std::memory_order_relaxed);
  UpdateEpoll(conn);
}

void NetServer::ResumeRead(Connection* conn) {
  if (conn->want_read || conn->closing) return;
  if (conn->read_paused_inflight || conn->read_paused_tx ||
      conn->read_paused_overload) {
    return;
  }
  conn->want_read = true;
  UpdateEpoll(conn);
  // Bytes may already be buffered (or the kernel buffer full); parse and
  // read rather than waiting for another edge.
  ParseConn(conn);
  ReadConn(conn);
}

void NetServer::AcceptReady() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error: done for now.
    if (live_connections_ >= options_.max_connections &&
        free_slots_.empty()) {
      stats_.connections_dropped.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    Connection* conn;
    if (!free_slots_.empty()) {
      conn = slots_[free_slots_.back()].get();
      free_slots_.pop_back();
    } else {
      const auto index = static_cast<uint32_t>(slots_.size());
      slots_.push_back(std::make_unique<Connection>(
          options_.read_ring_bytes, options_.write_ring_bytes));
      conn = slots_.back().get();
      conn->index = index;
    }
    conn->fd = fd;
    conn->rx.Clear();
    conn->tx.Clear();
    conn->owed = 0;
    conn->want_read = true;
    conn->dirty = false;
    conn->read_paused_inflight = conn->read_paused_tx =
        conn->read_paused_overload = false;
    conn->closing = false;
    conn->armed_events = EPOLLIN;
    ++live_connections_;
    stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);

    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP;
    ev.data.u64 = conn->Token();
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  }
}

void NetServer::CloseConn(Connection* conn) {
  if (conn->fd < 0) return;
  ::close(conn->fd);  // Also removes it from the epoll set.
  conn->fd = -1;
  ++conn->gen;  // In-flight completions now resolve to nothing.
  conn->rx.Clear();
  conn->tx.Clear();
  conn->owed = 0;
  conn->dirty = false;
  free_slots_.push_back(conn->index);
  --live_connections_;
  stats_.connections_closed.fetch_add(1, std::memory_order_relaxed);
}

void NetServer::ReadConn(Connection* conn) {
  if (conn->fd < 0 || conn->closing) return;
  for (;;) {
    if (!conn->want_read) return;  // Parse gate paused us mid-read.
    struct iovec iov[2];
    const int segments = conn->rx.WritableSegments(iov);
    if (segments == 0) {
      // Ring full of unparsed bytes: only possible while a parse gate
      // holds (frames are far smaller than the ring); the gate's resume
      // re-enters here.
      ParseConn(conn);
      if (conn->rx.free_space() == 0) return;
      continue;
    }
    const ssize_t n = ::readv(conn->fd, iov, segments);
    if (n > 0) {
      conn->rx.CommitWrite(static_cast<size_t>(n));
      ParseConn(conn);
      continue;
    }
    if (n == 0) {
      // EOF: answer what is owed, flush, then close.
      conn->closing = true;
      if (conn->owed == 0 && conn->tx.empty()) CloseConn(conn);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    CloseConn(conn);  // Hard error: responses in flight are dropped.
    return;
  }
}

void NetServer::ParseConn(Connection* conn) {
  if (conn->fd < 0 || conn->closing) return;
  const Nanos now = SystemClock::Global()->Now();
  for (;;) {
    // Backpressure gates, checked before consuming another frame. Each
    // pause disarms EPOLLIN: the kernel receive buffer fills, the TCP
    // window closes, and the overload queues at the client.
    if (conn->owed >= options_.max_inflight_per_conn) {
      conn->read_paused_inflight = true;
      PauseRead(conn);
      return;
    }
    if (conn->tx.free_space() <
        (conn->owed + 1) * kResponseFrameBytes) {
      conn->read_paused_tx = true;
      PauseRead(conn);
      return;
    }
    uint8_t header[kLengthPrefixBytes];
    if (!conn->rx.Peek(0, header, sizeof(header))) return;
    const uint32_t body_len = wire::GetU32(header);
    if (body_len != kRequestBodyBytes) {
      // Framing is lost; nothing downstream is trustworthy.
      stats_.bad_frames.fetch_add(1, std::memory_order_relaxed);
      CloseConn(conn);
      return;
    }
    uint8_t body[kRequestBodyBytes];
    if (!conn->rx.Peek(kLengthPrefixBytes, body, sizeof(body))) return;
    conn->rx.Consume(kRequestFrameBytes);

    RequestFrame frame;
    if (!DecodeRequestBody(body, &frame)) {
      // Well-framed but invalid (unknown op / flags): answer and move on.
      stats_.bad_frames.fetch_add(1, std::memory_order_relaxed);
      uint8_t encoded[kResponseFrameBytes];
      EncodeResponse({frame.id, ResponseStatus::kBadRequest, 0, 0}, encoded);
      conn->tx.Write(encoded, sizeof(encoded));
      conn->dirty = true;
      stats_.responses.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    stats_.requests.fetch_add(1, std::memory_order_relaxed);
    ++conn->owed;

    Pending* pending = pending_pool_.Acquire();
    pending->server = this;
    pending->token = conn->Token();
    pending->request_id = frame.id;
    graph::Cluster::BatchRequest request;
    request.query = ToGraphQuery(frame);
    request.deadline =
        frame.deadline_ns == 0
            ? 0
            : now + static_cast<Nanos>(frame.deadline_ns);
    // 8-byte capture: stays in std::function's inline buffer.
    request.done = [pending](const server::WorkItem& w, Outcome outcome,
                             const GraphQueryResult& result) {
      (void)w;
      pending->server->OnQueryDone(pending, outcome, result);
    };
    if (options_.batch_submit) {
      batch_.push_back(std::move(request));
      batch_tokens_.push_back(conn->Token());
      if (batch_.size() >= options_.max_batch) SubmitParsed();
    } else {
      // A/B baseline: one admission episode per query.
      cluster_->Submit(request.query, request.deadline,
                       std::move(request.done));
    }
  }
}

void NetServer::SubmitParsed() {
  if (!batch_.empty()) {
    stats_.submit_batches.fetch_add(1, std::memory_order_relaxed);
    // Synchronous completions (rejections/sheds) fire on this thread
    // while SubmitBatch iterates batch_; delivering them immediately
    // could resume a paused read, whose re-parse appends to batch_
    // mid-iteration. Park them in deferred_dones_ until the call returns.
    ++submit_depth_;
    in_submit_ = true;
    const server::Stage::BatchResult result = cluster_->SubmitBatch(batch_);
    in_submit_ = false;
    if (result.shedded > 0) {
      // A broker's bounded queue stopped admitting: pause every
      // connection that fed this batch until the queue drains
      // (MaybeResumePaused).
      for (const uint64_t token : batch_tokens_) {
        Connection* conn = Resolve(token);
        if (conn == nullptr || conn->read_paused_overload) continue;
        conn->read_paused_overload = true;
        PauseRead(conn);
      }
      overload_paused_ = true;
    }
    batch_.clear();
    batch_tokens_.clear();
    --submit_depth_;
  }
  // Answer the parked synchronous rejections — only at the outermost
  // call: delivery can resume reads whose re-parse fills batch_ and
  // re-enters SubmitParsed, and letting every nesting level deliver
  // would recurse without bound. Nested calls just append here; the
  // index loop picks their entries up (the vector may grow and
  // reallocate mid-iteration, hence no iterators and a by-value copy).
  if (submit_depth_ == 0) {
    for (size_t i = 0; i < deferred_dones_.size(); ++i) {
      const Done done = deferred_dones_[i];
      DeliverDone(done);
    }
    deferred_dones_.clear();
  }
}

bool NetServer::BrokersCongested() const {
  const size_t limit = cluster_->options().broker_queue_capacity / 2;
  for (size_t b = 0; b < cluster_->num_brokers(); ++b) {
    if (cluster_->broker(b)->QueueLength() >= limit) return true;
  }
  return false;
}

void NetServer::MaybeResumePaused() {
  if (!overload_paused_ || BrokersCongested()) return;
  overload_paused_ = false;
  for (auto& slot : slots_) {
    Connection* conn = slot.get();
    if (conn == nullptr || conn->fd < 0 || !conn->read_paused_overload) {
      continue;
    }
    conn->read_paused_overload = false;
    ResumeRead(conn);
  }
}

void NetServer::OnQueryDone(Pending* pending, Outcome outcome,
                            const GraphQueryResult& result) {
  Done done;
  done.token = pending->token;
  done.request_id = pending->request_id;
  done.status = static_cast<uint8_t>(ToStatus(outcome, result.ok));
  done.value = result.value;
  pending_pool_.Release(pending);
  if (std::this_thread::get_id() ==
      loop_tid_.load(std::memory_order_relaxed)) {
    // Synchronous completion on the event loop itself (a rejection inside
    // Submit/SubmitBatch). Never goes near the ring — the loop must not
    // be able to block on the queue only it drains. Delivery is deferred
    // while a submit call is iterating batch_ (see SubmitParsed).
    if (in_submit_) {
      deferred_dones_.push_back(done);
    } else {
      DeliverDone(done);
    }
    return;
  }
  // Worker thread: a full ring means the loop has fallen behind; spin
  // until a drain frees a slot (the completion must be delivered exactly
  // once). The loop drains every iteration and can never block on the
  // ring itself, so the wait is bounded by loop progress — except after
  // Stop(), when the loop is gone and every connection is dead: then the
  // completion has no destination and is dropped instead of hanging the
  // cluster's shutdown.
  while (!done_ring_.TryPush(std::move(done))) {
    if (stop_requested_.load(std::memory_order_acquire)) return;
    CpuRelax();
  }
  if (!done_signal_.exchange(true, std::memory_order_acq_rel)) {
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(event_fd_, &one, sizeof(one));
  }
}

void NetServer::DeliverDone(const Done& done) {
  stats_.responses.fetch_add(1, std::memory_order_relaxed);
  const auto status = static_cast<ResponseStatus>(done.status);
  if (status == ResponseStatus::kRejected ||
      status == ResponseStatus::kShedded) {
    stats_.rejections.fetch_add(1, std::memory_order_relaxed);
  }
  Connection* conn = Resolve(done.token);
  if (conn == nullptr) return;  // Connection died while in flight.
  --conn->owed;
  uint8_t encoded[kResponseFrameBytes];
  EncodeResponse({done.request_id, status, 0, done.value}, encoded);
  // Space is guaranteed: parsing never runs the write ring below
  // owed * kResponseFrameBytes of free space.
  conn->tx.Write(encoded, sizeof(encoded));
  conn->dirty = true;
  if (conn->read_paused_inflight &&
      conn->owed < options_.max_inflight_per_conn / 2) {
    conn->read_paused_inflight = false;
    ResumeRead(conn);
  }
}

void NetServer::DrainCompletions() {
  done_signal_.store(false, std::memory_order_release);
  Done done;
  while (done_ring_.TryPop(done)) DeliverDone(done);
}

void NetServer::FlushConn(Connection* conn) {
  if (conn->fd < 0) return;
  conn->dirty = false;
  while (!conn->tx.empty()) {
    struct iovec iov[2];
    const int segments = conn->tx.ReadableSegments(iov);
    const ssize_t n = ::writev(conn->fd, iov, segments);
    if (n > 0) {
      conn->tx.Consume(static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    CloseConn(conn);
    return;
  }
  if (conn->tx.empty() && conn->read_paused_tx) {
    conn->read_paused_tx = false;
    ResumeRead(conn);
  }
  if (conn->closing && conn->owed == 0 && conn->tx.empty()) {
    CloseConn(conn);
    return;
  }
  UpdateEpoll(conn);  // Arm EPOLLOUT iff bytes remain.
}

void NetServer::LoopThread() {
  loop_tid_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  epoll_event events[kMaxEpollEvents];
  while (!stop_requested_.load(std::memory_order_acquire)) {
    // Overload pauses are re-checked on a short timer (the broker queue
    // drains without producing an event we could wait on); otherwise a
    // long timeout keeps an idle server quiet.
    const int timeout_ms = overload_paused_ ? 1 : 100;
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEpollEvents,
                               timeout_ms);
    for (int i = 0; i < n; ++i) {
      const uint64_t token = events[i].data.u64;
      if (token == kListenToken) {
        AcceptReady();
        continue;
      }
      if (token == kEventToken) {
        uint64_t drained;
        [[maybe_unused]] ssize_t r =
            ::read(event_fd_, &drained, sizeof(drained));
        continue;
      }
      Connection* conn = Resolve(token);
      if (conn == nullptr) continue;  // Stale event for a closed conn.
      if (events[i].events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR)) {
        ReadConn(conn);
      }
      if (conn->fd >= 0 && (events[i].events & EPOLLOUT)) {
        FlushConn(conn);
      }
    }
    // One admission episode for everything parsed this wakeup, then
    // answer whatever completed — the batch's synchronous rejections are
    // delivered inside SubmitParsed and flushed in this same iteration.
    // The drain/flush/resume phases can themselves parse new requests
    // (ResumeRead re-parses buffered bytes), so repeat until nothing is
    // left rather than let a resumed request sit in batch_ across an
    // epoll_wait (up to the idle timeout away). Each pass consumes real
    // buffered bytes or ring entries, so the loop terminates.
    do {
      SubmitParsed();
      DrainCompletions();
      for (auto& slot : slots_) {
        Connection* conn = slot.get();
        if (conn != nullptr && conn->fd >= 0 && conn->dirty) FlushConn(conn);
      }
      MaybeResumePaused();
    } while (!batch_.empty());
  }
  // Drain loop-side state so queued completions don't linger unanswered
  // in the ring (they resolve to dead connections after Stop closes fds).
  DrainCompletions();
}

}  // namespace bouncer::net
