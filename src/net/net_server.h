#ifndef BOUNCER_NET_NET_SERVER_H_
#define BOUNCER_NET_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/policy_state_table.h"
#include "src/core/tenant_registry.h"
#include "src/graph/cluster.h"
#include "src/net/byte_ring.h"
#include "src/net/protocol.h"
#include "src/stats/flight_recorder.h"
#include "src/stats/metric_registry.h"
#include "src/util/mpmc_queue.h"
#include "src/util/object_pool.h"
#include "src/util/status.h"

namespace bouncer::net {

/// Event-loop backend for the network front end.
enum class NetBackend : uint8_t {
  kAuto = 0,   ///< io_uring when the kernel supports it, else epoll.
  kEpoll = 1,  ///< epoll_wait + readv/writev/accept4 per ready fd.
  kUring = 2,  ///< io_uring: multishot accept/recv, batched one-syscall
               ///< submit-and-wait.
};

/// "auto" | "epoll" | "io_uring".
const char* NetBackendName(NetBackend backend);
/// Parses NetBackendName() spellings (plus "uring"); false on anything
/// else, leaving `out` untouched.
bool ParseNetBackend(const std::string& text, NetBackend* out);

/// Linux epoll TCP front door for a graph::Cluster, sharded across N
/// independent event loops (`Options::num_loops`, default
/// min(hardware threads, 4)) so the front-end scales with cores instead
/// of serializing every connection behind one loop thread.
///
/// Each loop is a self-contained reactor: its own epoll fd, its own
/// `SO_REUSEPORT` listener (the kernel hashes incoming connections
/// across the listeners; when `SO_REUSEPORT` is unavailable — or
/// `Options::force_fd_handoff` is set — loop 0 owns the only listener
/// and hands accepted fds to the other loops round-robin through a
/// per-loop mailbox ring + eventfd), its own connection-slot table and
/// byte rings, its own parse/submit batch buffers, its own
/// `ObjectPool` of per-request records, and its own completion ring +
/// eventfd. Nothing mutable is shared between loops on the hot path —
/// the zero-allocation, single-writer discipline of the original
/// single-loop design holds per loop — and all loops stream their
/// parsed batches into the shared admission stages via
/// `Cluster::SubmitBatch`.
///
/// Completions route back to the owning loop through a 64-bit
/// generation-stamped connection token:
///
///   bits 63..32  generation (slot reuse guard)
///   bits 31..24  loop id    (completion routing)
///   bits 23..0   slot index (within the owning loop's table)
///
/// A cluster worker finishing a query packs {token, id, status, value}
/// into the owning loop's bounded MPMC done-ring and writes that loop's
/// eventfd on the empty→non-empty transition; only the owning loop ever
/// touches the connection. Rejections still complete synchronously
/// inside the submitting loop's `SubmitBatch` call and are answered
/// from the same loop iteration without waking any worker.
///
/// Per-connection backpressure (inflight cap, write-ring owed-space
/// gate, broker-shed overload pause with half-capacity resume) is
/// unchanged from the single-loop design and applies loop-locally:
/// paused sockets fill their kernel receive buffers, shrink the TCP
/// window, and push the queueing back into the clients.
class NetServer {
 public:
  struct Options {
    std::string bind_address = "127.0.0.1";
    uint16_t port = 0;  ///< 0 = ephemeral; read the bound port via port().
    int listen_backlog = 256;
    /// Event loops. 0 = min(hardware threads, 4). Capped at 255 (the
    /// loop-id field of the connection token is 8 bits).
    size_t num_loops = 0;
    /// Testing / legacy-kernel knob: skip `SO_REUSEPORT` and run the
    /// accept-and-hand-off fallback (loop 0 accepts, fds round-robin to
    /// the other loops through their mailboxes).
    bool force_fd_handoff = false;
    size_t max_connections = 1024;  ///< Across all loops.
    size_t read_ring_bytes = 1 << 16;
    size_t write_ring_bytes = 1 << 17;
    /// Admission mode: true drains each wakeup's parse batch through
    /// Cluster::SubmitBatch; false submits per item (the A/B baseline
    /// bench_net_throughput measures against).
    bool batch_submit = true;
    /// Cap on one admission episode; a wakeup that parses more submits in
    /// chunks of this size.
    size_t max_batch = 4096;
    /// Admitted-but-unanswered cap per connection before its EPOLLIN is
    /// paused. Bounds both completion-ring pressure and write-ring needs.
    size_t max_inflight_per_conn = 1024;
    /// When set, the server answers kOpStatsJson/kOpStatsPrometheus from
    /// this registry and publishes its own per-loop counters into it
    /// (under "net.*"); must outlive the server. Without it, admin stats
    /// requests return an empty snapshot.
    stats::MetricRegistry* metrics = nullptr;
    /// Flight recorder serving kOpTraceDump and receiving the net-layer
    /// parse/response events of sampled requests; defaults to
    /// stats::FlightRecorder::Global() when tracing is compiled in.
    stats::FlightRecorder* recorder = nullptr;
    /// Interns the wire protocol's external tenant ids (v2 frames) into
    /// the dense indices the admission stages key their per-tenant state
    /// on; should be the same registry the cluster's stages were built
    /// with. Must outlive the server. When null, every request runs as
    /// the default tenant and v2 tenant ids are ignored. With `metrics`
    /// also set, per-tenant outcome counters are published under
    /// "tenant.<external-id>.*".
    TenantRegistry* tenants = nullptr;
    /// Event-loop backend. kAuto probes io_uring support once per
    /// process at Start() and falls back to epoll with a logged reason
    /// (see backend_fallback_reason()); kUring instead fails Start()
    /// when the kernel or the build (BOUNCER_IOURING=OFF) lacks it.
    NetBackend backend = NetBackend::kAuto;
    /// io_uring only: provided recv buffers per loop (power of two) and
    /// the size of each. Multishot recv completions land in these; the
    /// loop copies them into the connection rx rings and recycles them.
    size_t uring_buf_count = 512;
    size_t uring_buf_bytes = 4096;
    /// io_uring only: submission-queue entries per loop. Bounds the
    /// SQEs batched into one io_uring_enter; overflow just flushes
    /// early.
    size_t uring_sq_entries = 1024;
  };

  /// Counter snapshot. Counters are accumulated per loop in
  /// cache-line-padded blocks (no false sharing between loops) and
  /// summed on read by AggregateStats() / LoopStats().
  struct Stats {
    uint64_t connections_accepted = 0;
    uint64_t connections_dropped = 0;  ///< No free slot / over cap.
    uint64_t connections_closed = 0;
    uint64_t requests = 0;
    uint64_t responses = 0;
    uint64_t rejections = 0;  ///< kRejected + kShedded responses.
    uint64_t rejections_policy = 0;  ///< Admission policy said no.
    uint64_t rejections_queue = 0;   ///< Shed on a full bounded queue.
    uint64_t failures_shard = 0;     ///< kFailed: shard-side subquery loss.
    uint64_t expirations = 0;        ///< kExpired responses.
    uint64_t bad_frames = 0;
    uint64_t submit_batches = 0;
    uint64_t pauses = 0;    ///< EPOLLIN disarm episodes.
    uint64_t pauses_inflight = 0;  ///< ... due to the inflight cap.
    uint64_t pauses_tx = 0;        ///< ... due to write-ring space.
    uint64_t pauses_overload = 0;  ///< ... due to broker-queue sheds.
    uint64_t admin_requests = 0;   ///< Admin opcodes served.
    uint64_t handoffs = 0;  ///< Fds mailed to another loop (fallback mode).
    uint64_t nodelay_failures = 0;  ///< TCP_NODELAY not verified on accept.
    /// Data-path syscalls: waits, readv/writev/accept4, epoll_ctl,
    /// io_uring_enter, eventfd reads and writes. Divided by `responses`
    /// this is the per-request syscall cost the backends compete on.
    uint64_t syscalls = 0;
    uint64_t wakeups = 0;  ///< Blocking-wait returns (epoll/io_uring).
    /// Completion-signal write(2)s workers actually issued; pushes that
    /// found the loop awake are coalesced away (no syscall).
    uint64_t eventfd_wakeups = 0;
    /// Backend that produced these counters (resolved, never kAuto).
    NetBackend backend = NetBackend::kEpoll;
  };

  /// `cluster` must be started, and must outlive the server. Shutdown
  /// order: NetServer::Stop() (or destruction), then Cluster::Stop() —
  /// completions the cluster flushes during its stop still land in this
  /// object's completion rings, so the server object must still exist.
  NetServer(graph::Cluster* cluster, const Options& options);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds the listener(s) and spawns one event-loop thread per loop.
  Status Start();
  /// Stops every loop and closes every connection. Idempotent.
  void Stop();

  /// The bound TCP port (valid after Start(); all listeners share it).
  uint16_t port() const { return port_; }
  /// Counters summed across loops.
  Stats AggregateStats() const;
  /// One loop's counters (loop < num_loops()).
  Stats LoopStats(size_t loop) const;
  /// Event loops actually running (valid after Start()).
  size_t num_loops() const { return loops_.size(); }
  /// True when the accept-and-hand-off fallback is active instead of
  /// per-loop SO_REUSEPORT listeners.
  bool handoff_mode() const { return handoff_mode_; }
  const Options& options() const { return options_; }
  /// The backend actually running (resolved at Start(); never kAuto
  /// afterwards).
  NetBackend backend() const { return backend_; }
  /// Why Options::backend = kAuto degraded to epoll; empty when it did
  /// not.
  const std::string& backend_fallback_reason() const {
    return backend_fallback_reason_;
  }
  /// Cached process-wide kernel/build capability probe for the io_uring
  /// backend; fills `reason` when unsupported.
  static bool UringSupported(std::string* reason = nullptr);

  /// Per-tenant outcome counters (Options::tenants required; zeros
  /// otherwise). `tenant` is the dense registry index.
  struct TenantStats {
    uint64_t requests = 0;   ///< Frames parsed for this tenant.
    uint64_t ok = 0;         ///< kOk responses.
    uint64_t rejected = 0;   ///< Policy rejections.
    uint64_t shedded = 0;    ///< Queue sheds.
    uint64_t expired = 0;    ///< Deadline expirations.
    uint64_t failed = 0;     ///< Shard-side subquery failures.
  };
  TenantStats TenantStatsOf(TenantId tenant) const;

 private:
  struct Connection;
  struct Pending;  ///< Pooled per-request completion record.
  struct Loop;

  /// Completion record a cluster worker pushes for the owning loop to
  /// deliver.
  struct Done {
    uint64_t token = 0;  ///< Generation | loop id | slot index.
    uint64_t request_id = 0;
    uint8_t status = 0;
    uint8_t reason = 0;  ///< RejectReason wire code (response flags byte).
    uint64_t value = 0;
  };

  /// Per-loop counters, cache-line aligned so two loops bumping their
  /// own counters never share a line.
  struct alignas(64) LoopCounters {
    std::atomic<uint64_t> connections_accepted{0};
    std::atomic<uint64_t> connections_dropped{0};
    std::atomic<uint64_t> connections_closed{0};
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> responses{0};
    std::atomic<uint64_t> rejections{0};
    std::atomic<uint64_t> rejections_policy{0};
    std::atomic<uint64_t> rejections_queue{0};
    std::atomic<uint64_t> failures_shard{0};
    std::atomic<uint64_t> expirations{0};
    std::atomic<uint64_t> bad_frames{0};
    std::atomic<uint64_t> submit_batches{0};
    std::atomic<uint64_t> pauses{0};
    std::atomic<uint64_t> pauses_inflight{0};
    std::atomic<uint64_t> pauses_tx{0};
    std::atomic<uint64_t> pauses_overload{0};
    std::atomic<uint64_t> admin_requests{0};
    std::atomic<uint64_t> handoffs{0};
    std::atomic<uint64_t> nodelay_failures{0};
    std::atomic<uint64_t> syscalls{0};
    std::atomic<uint64_t> wakeups{0};
    std::atomic<uint64_t> eventfd_wakeups{0};
  };

  void LoopThread(Loop& loop);
  void EpollRun(Loop& loop);
  void AcceptReady(Loop& loop);
  void HandleAccepted(Loop& loop, int fd);
  void AdoptFd(Loop& loop, int fd);
  void DrainMailbox(Loop& loop);
  void ReadConn(Loop& loop, Connection* conn);
  void ParseConn(Loop& loop, Connection* conn);
  void SubmitParsed(Loop& loop);
  void DeliverDone(Loop& loop, const Done& done);
  void DrainCompletions(Loop& loop);
  void FlushConn(Loop& loop, Connection* conn);
  void CloseConn(Loop& loop, Connection* conn);
  void PauseRead(Loop& loop, Connection* conn);
  void ResumeRead(Loop& loop, Connection* conn);
  void UpdateEpoll(Loop& loop, Connection* conn);
  void MaybeResumePaused(Loop& loop);
  bool BrokersCongested() const;
  Connection* Resolve(Loop& loop, uint64_t token);
  void OnQueryDone(Pending* pending, const server::WorkItem& item,
                   server::Outcome outcome,
                   const graph::GraphQueryResult& result);
  /// Renders the admin payload for `op` (registry JSON / Prometheus text
  /// / recorder JSONL dump).
  void BuildAdminPayload(uint8_t op, std::string* out);
  /// Begins streaming an admin response on `conn` and pumps what fits.
  void StartAdmin(Loop& loop, Connection* conn, const RequestFrame& frame);
  /// Writes as many admin chunks as the write ring can take without
  /// eating the space reserved for owed graph responses. Returns true
  /// when the response finished (admin_active cleared).
  bool PumpAdmin(Loop& loop, Connection* conn);
  /// Pumps every connection with an admin response in progress; resumes
  /// parsing on the ones that finished.
  void PumpAdminAll(Loop& loop);
  Status StartListeners();
  void CloseAll();

  // io_uring backend (net_server_uring.cc; no-op stubs when the build
  // compiles it out). The shared logic above calls into these through
  // small backend branches at the transport touchpoints.
  bool UringSetupLoops();  ///< Rings per loop; false => fallback/fail.
  void UringDestroyLoop(Loop& loop);
  void UringRun(Loop& loop);
  void UringProcessCqes(Loop& loop);
  void UringOnAccept(Loop& loop, int res, uint32_t flags);
  void UringOnRecv(Loop& loop, uint64_t user_data, int res, uint32_t flags);
  void UringOnSend(Loop& loop, uint64_t user_data, int res);
  void UringArmRecv(Loop& loop, Connection* conn);
  /// The uring analogue of UpdateEpoll: reconciles want_read with the
  /// armed multishot recv (arming or async-canceling as needed).
  void UringUpdateInterest(Loop& loop, Connection* conn);
  /// Drains staged recv buffers into rx, parses, and re-arms.
  void UringPumpConn(Loop& loop, Connection* conn);
  void UringFlushConn(Loop& loop, Connection* conn);
  /// Cancels outstanding SQEs before CloseConn closes the fd; the slot
  /// stays a zombie (not reusable) until they all complete.
  void UringPrepareClose(Loop& loop, Connection* conn);
  void UringRearmPending(Loop& loop);
  /// One CQE landed for `conn`'s slot: drop the inflight count and, when
  /// a zombie slot drains to zero, recycle it.
  void UringDecInflight(Loop& loop, Connection* conn);

  graph::Cluster* cluster_;
  Options options_;

  std::vector<std::unique_ptr<Loop>> loops_;
  uint16_t port_ = 0;
  bool handoff_mode_ = false;
  NetBackend backend_ = NetBackend::kEpoll;  ///< Resolved at Start().
  std::string backend_fallback_reason_;
  /// Live connections across all loops (accept-path only — the data
  /// path never touches it).
  std::atomic<size_t> total_live_{0};
  /// Round-robin target for fallback fd handoff (loop 0 only).
  size_t handoff_rr_ = 0;

  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};

  stats::FlightRecorder* recorder_ = nullptr;
  uint64_t metrics_collector_handle_ = 0;

  /// Per-tenant outcome accounting, one cache-line cell per tenant in a
  /// flat-indexed slab (grows lazily with the registry; never rehashes
  /// on the parse path). Null when Options::tenants is unset.
  struct alignas(64) TenantNetCell {
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> ok{0};
    std::atomic<uint64_t> rejected{0};
    std::atomic<uint64_t> shedded{0};
    std::atomic<uint64_t> expired{0};
    std::atomic<uint64_t> failed{0};
  };
  std::unique_ptr<PolicyStateTable<TenantNetCell>> tenant_stats_;
  /// In-flight cluster completions (Pending records alive between parse
  /// and OnQueryDone return). Stop() drains it after joining the loop
  /// threads: a completion still executing inside OnQueryDone reads
  /// Loop state, so the loops must not be torn down under it.
  std::atomic<uint64_t> inflight_dones_{0};
};

}  // namespace bouncer::net

#endif  // BOUNCER_NET_NET_SERVER_H_
