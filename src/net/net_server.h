#ifndef BOUNCER_NET_NET_SERVER_H_
#define BOUNCER_NET_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/graph/cluster.h"
#include "src/net/byte_ring.h"
#include "src/net/protocol.h"
#include "src/util/mpmc_queue.h"
#include "src/util/object_pool.h"
#include "src/util/status.h"

namespace bouncer::net {

/// Linux epoll TCP front door for a graph::Cluster: a single non-blocking
/// event-loop thread accepts connections, parses length-prefixed request
/// frames out of per-connection read rings, and drains everything parsed
/// from one epoll wakeup through the brokers' admission policies in a
/// single Cluster::SubmitBatch pass. Rejections complete synchronously
/// inside that call and are answered from the same loop iteration without
/// ever touching a worker thread; admitted queries complete on cluster
/// workers, which hand {token, id, status, value} records back through a
/// bounded MPMC completion ring + eventfd, and the loop encodes responses
/// into per-connection write rings flushed with writev.
///
/// Zero steady-state allocation: connection slots (with their byte rings)
/// are created once and recycled, per-request completion records come
/// from an ObjectPool, and the parse/submit scratch is reused — in steady
/// state a query's full server-side life touches no allocator.
///
/// Connection-level backpressure (overload must become TCP backpressure,
/// not heap growth):
///  - a connection with `max_inflight_per_conn` admitted-but-unanswered
///    queries stops being read (EPOLLIN disarmed) until completions
///    drain it below the watermark;
///  - parsing stops while the write ring lacks guaranteed space for the
///    responses already owed, resuming after a flush;
///  - when a broker stage stops admitting to its bounded queue (a batch
///    reported sheds), every connection that fed that batch is paused
///    until the broker queue falls below half its capacity.
/// Paused sockets fill their kernel receive buffers, shrink the TCP
/// window, and push the queueing back into the clients.
class NetServer {
 public:
  struct Options {
    std::string bind_address = "127.0.0.1";
    uint16_t port = 0;  ///< 0 = ephemeral; read the bound port via port().
    int listen_backlog = 256;
    size_t max_connections = 1024;
    size_t read_ring_bytes = 1 << 16;
    size_t write_ring_bytes = 1 << 17;
    /// Admission mode: true drains each wakeup's parse batch through
    /// Cluster::SubmitBatch; false submits per item (the A/B baseline
    /// bench_net_throughput measures against).
    bool batch_submit = true;
    /// Cap on one admission episode; a wakeup that parses more submits in
    /// chunks of this size.
    size_t max_batch = 4096;
    /// Admitted-but-unanswered cap per connection before its EPOLLIN is
    /// paused. Bounds both completion-ring pressure and write-ring needs.
    size_t max_inflight_per_conn = 1024;
  };

  /// Loop-owned counters, readable from any thread.
  struct Stats {
    std::atomic<uint64_t> connections_accepted{0};
    std::atomic<uint64_t> connections_dropped{0};  ///< No free slot.
    std::atomic<uint64_t> connections_closed{0};
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> responses{0};
    std::atomic<uint64_t> rejections{0};  ///< kRejected + kShedded responses.
    std::atomic<uint64_t> bad_frames{0};
    std::atomic<uint64_t> submit_batches{0};
    std::atomic<uint64_t> pauses{0};  ///< EPOLLIN disarm episodes.
  };

  /// `cluster` must be started, and must outlive the server. Shutdown
  /// order: NetServer::Stop() (or destruction), then Cluster::Stop() —
  /// completions the cluster flushes during its stop still land in this
  /// object's completion ring, so the server object must still exist.
  NetServer(graph::Cluster* cluster, const Options& options);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds, listens and spawns the event-loop thread.
  Status Start();
  /// Stops the loop and closes every connection. Idempotent.
  void Stop();

  /// The bound TCP port (valid after Start()).
  uint16_t port() const { return port_; }
  const Stats& stats() const { return stats_; }
  const Options& options() const { return options_; }

 private:
  struct Connection;
  struct Pending;  ///< Pooled per-request completion record.

  /// Completion record a cluster worker pushes for the loop to deliver.
  struct Done {
    uint64_t token = 0;  ///< Connection slot | generation.
    uint64_t request_id = 0;
    uint8_t status = 0;
    uint64_t value = 0;
  };

  void LoopThread();
  void AcceptReady();
  void ReadConn(Connection* conn);
  void ParseConn(Connection* conn);
  void SubmitParsed();
  void DeliverDone(const Done& done);
  void DrainCompletions();
  void FlushConn(Connection* conn);
  void CloseConn(Connection* conn);
  void PauseRead(Connection* conn);
  void ResumeRead(Connection* conn);
  void UpdateEpoll(Connection* conn);
  void MaybeResumePaused();
  bool BrokersCongested() const;
  Connection* Resolve(uint64_t token);
  void OnQueryDone(Pending* pending, server::Outcome outcome,
                   const graph::GraphQueryResult& result);

  graph::Cluster* cluster_;
  Options options_;
  Stats stats_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int event_fd_ = -1;
  uint16_t port_ = 0;

  std::vector<std::unique_ptr<Connection>> slots_;
  std::vector<uint32_t> free_slots_;
  size_t live_connections_ = 0;

  /// Parse scratch for one admission episode (reused, never freed).
  std::vector<graph::Cluster::BatchRequest> batch_;
  std::vector<uint64_t> batch_tokens_;  ///< Connection of each batch entry.

  ObjectPool<Pending> pending_pool_;
  /// Worker-thread completions only. The loop thread never pushes here:
  /// its synchronous completions (rejections inside Submit/SubmitBatch)
  /// deliver inline, so a full ring can never make the loop wait on
  /// itself — it only throttles workers until the next loop drain.
  MpmcQueue<Done> done_ring_;
  std::atomic<bool> done_signal_{false};
  std::atomic<std::thread::id> loop_tid_{};
  /// True while the loop thread is inside a Cluster submit call. Loop-
  /// thread completions arriving then are parked in deferred_dones_
  /// (delivery can resume reads, which would mutate batch_ mid-submit)
  /// and delivered as soon as the submit returns.
  bool in_submit_ = false;
  /// SubmitParsed nesting depth (delivery of deferred completions can
  /// resume reads that re-enter it); only depth 0 delivers.
  size_t submit_depth_ = 0;
  std::vector<Done> deferred_dones_;  ///< Loop-only scratch, reused.

  /// Connections paused for broker-queue overload, re-checked every loop
  /// iteration; sheds observed by the last submit episode set this.
  bool overload_paused_ = false;

  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::thread loop_;
  Status init_status_;
};

}  // namespace bouncer::net

#endif  // BOUNCER_NET_NET_SERVER_H_
