// NetServer's private per-loop data structures, shared between the
// epoll backend (net_server.cc, which also owns all transport-agnostic
// logic: parsing, admission batching, completion delivery, admin
// streaming) and the io_uring backend (net_server_uring.cc). Not part
// of the public API — include only from those two translation units.

#ifndef BOUNCER_NET_NET_SERVER_INTERNAL_H_
#define BOUNCER_NET_NET_SERVER_INTERNAL_H_

#include <sys/uio.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/net/net_server.h"
#include "src/net/uring_loop.h"

namespace bouncer::net {

/// epoll user-data tokens for the two non-connection fds.
inline constexpr uint64_t kListenToken = ~uint64_t{0};
inline constexpr uint64_t kEventToken = ~uint64_t{0} - 1;

/// Events drained per epoll_wait call; a wakeup with more ready fds just
/// takes another loop iteration.
inline constexpr int kMaxEpollEvents = 128;

/// Connection-token field widths: generation << 32 | loop << 24 | slot.
inline constexpr uint32_t kSlotBits = 24;
inline constexpr uint32_t kSlotMask = (1u << kSlotBits) - 1;
inline constexpr uint32_t kLoopMask = 0xff;
inline constexpr size_t kMaxLoops = 255;

inline void WriteEventFd(int fd) {
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(fd, &one, sizeof(one));
}

/// One connection slot, owned by exactly one loop for its whole life.
/// Slots (and their rings) are allocated once and recycled across
/// connections; `gen` stamps each incarnation so a completion for a
/// closed connection resolves to nothing instead of a stranger's socket.
struct NetServer::Connection {
  Connection(size_t rx_bytes, size_t tx_bytes) : rx(rx_bytes), tx(tx_bytes) {}

  int fd = -1;
  uint32_t index = 0;    ///< Slot index within the owning loop (24 bits).
  uint32_t loop_id = 0;  ///< Owning loop (8 bits); never changes.
  uint32_t gen = 1;
  ByteRing rx;
  ByteRing tx;
  /// Parsed requests whose response has not yet been encoded into `tx`.
  /// Invariant: tx.free_space() >= owed * kResponseFrameBytes, so a
  /// completion can always be answered without dropping or buffering.
  size_t owed = 0;
  uint32_t armed_events = 0;  ///< Events currently registered in epoll.
  bool want_read = true;
  bool dirty = false;  ///< Has tx bytes awaiting a flush this iteration.
  bool read_paused_inflight = false;
  bool read_paused_tx = false;
  bool read_paused_overload = false;
  bool closing = false;  ///< Peer EOF seen; flush what is owed, then close.

  /// Admin response in progress: the rendered payload streams into `tx`
  /// in chunks as space frees up, never displacing the frames reserved
  /// for the `owed` graph responses. One admin response at a time per
  /// connection; a second admin frame stays buffered in `rx` meanwhile.
  bool admin_active = false;
  uint64_t admin_id = 0;       ///< Request id echoed in every chunk.
  size_t admin_offset = 0;     ///< Payload bytes already written.
  std::string admin_payload;

  // io_uring backend state. The kernel holds a file reference for every
  // outstanding SQE, so a closed slot with uring_inflight > 0 becomes a
  // zombie: unusable until its last CQE lands (the cancels prepared by
  // UringPrepareClose make that prompt).
  bool recv_armed = false;     ///< Multishot recv outstanding.
  bool send_inflight = false;  ///< One WRITEV outstanding at a time.
  bool cancel_pending = false; ///< Recv async-cancel submitted (pause).
  bool zombie = false;         ///< Closed, awaiting final CQEs.
  uint32_t uring_inflight = 0;  ///< Outstanding SQEs for this slot.
  /// The in-flight WRITEV's scatter list: must stay stable until its
  /// CQE, so it lives with the connection, not on the stack.
  struct iovec send_iov[2] = {};
#if BOUNCER_HAS_IOURING
  /// Recv-buffer bytes waiting for rx-ring space (FIFO), plus the index
  /// of the first unconsumed entry (drained from the front without
  /// shifting; compacted when it empties).
  std::vector<StagedBuf> staged;
  size_t staged_head = 0;
#endif

  uint64_t Token() const {
    return (static_cast<uint64_t>(gen) << 32) |
           (static_cast<uint64_t>(loop_id) << kSlotBits) | index;
  }
};

struct NetServer::Pending {
  Loop* loop = nullptr;  ///< Owning loop (completion routing).
  uint64_t token = 0;
  uint64_t request_id = 0;
  TenantId tenant = kDefaultTenant;  ///< Dense index (outcome accounting).
};

/// One reactor: everything a loop thread touches on the hot path lives
/// here and is owned by that thread alone (the done-ring and mailbox are
/// the only cross-thread entry points, both bounded MPMC).
struct NetServer::Loop {
  Loop(NetServer* server_in, size_t id_in, size_t done_ring_capacity,
       size_t mailbox_capacity)
      : server(server_in),
        id(static_cast<uint32_t>(id_in)),
        pending_pool(4096),
        done_ring(done_ring_capacity),
        fd_mailbox(mailbox_capacity) {}

  NetServer* server;
  uint32_t id;

  int listen_fd = -1;  ///< Own SO_REUSEPORT listener; -1 in handoff mode
                       ///< for every loop but 0.
  int epoll_fd = -1;   ///< epoll backend only.
  int event_fd = -1;

  /// io_uring backend only: the loop's ring + provided-buffer ring,
  /// created by UringSetupLoops and destroyed by UringDestroyLoop.
  UringState* uring = nullptr;

  std::vector<std::unique_ptr<Connection>> slots;
  std::vector<uint32_t> free_slots;

  /// Parse scratch for one admission episode (reused, never freed).
  std::vector<graph::Cluster::BatchRequest> batch;
  std::vector<uint64_t> batch_tokens;  ///< Connection of each batch entry.

  ObjectPool<Pending> pending_pool;
  /// Worker-thread completions only. The loop thread never pushes here:
  /// its synchronous completions (rejections inside Submit/SubmitBatch)
  /// deliver inline, so a full ring can never make the loop wait on
  /// itself — it only throttles workers until the next loop drain.
  MpmcQueue<Done> done_ring;
  std::atomic<bool> done_signal{false};
  /// True only while the loop thread is blocked (or about to block) in
  /// its wait. Workers only pay the eventfd write(2) when they see it:
  /// an awake loop drains the ring every iteration anyway, so pushes
  /// meanwhile coalesce to zero syscalls. Dekker-paired (seq_cst
  /// fences) with the loop's pre-wait ring emptiness check so a push
  /// can never slip between the check and the block unnoticed.
  std::atomic<bool> done_waiting{false};
  /// Accepted fds mailed over by loop 0 in handoff mode; drained on
  /// every eventfd wakeup.
  MpmcQueue<int> fd_mailbox;

  std::atomic<std::thread::id> tid{};
  /// True while this loop's thread is inside a Cluster submit call.
  /// Loop-thread completions arriving then are parked in deferred_dones
  /// (delivery can resume reads, which would mutate batch mid-submit)
  /// and delivered as soon as the submit returns.
  bool in_submit = false;
  /// SubmitParsed nesting depth (delivery of deferred completions can
  /// resume reads that re-enter it); only depth 0 delivers.
  size_t submit_depth = 0;
  std::vector<Done> deferred_dones;  ///< Loop-only scratch, reused.

  /// Connections paused for broker-queue overload, re-checked every loop
  /// iteration; sheds observed by the last submit episode set this.
  bool overload_paused = false;

  LoopCounters counters;
  std::thread thread;
};

}  // namespace bouncer::net

#endif  // BOUNCER_NET_NET_SERVER_INTERNAL_H_
