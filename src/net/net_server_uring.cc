// io_uring backend for NetServer. Everything transport-agnostic
// (parsing, admission batching, completion delivery, admin streaming)
// stays in net_server.cc; this file owns the ring lifecycle and the
// CQE-driven read/write/accept paths. One UringState per loop, used
// only by that loop's thread.
//
// Submission model: SQEs accumulate across a whole loop iteration
// (accept re-arms, recv arms/cancels, WRITEV flushes) and are flushed by
// a single io_uring_enter in SubmitAndWait at the bottom — the wait and
// the submit are the same syscall, which is where the per-request
// syscall win over epoll_wait + readv + writev comes from.
//
// user_data encoding: a 4-bit op tag in bits 63..60 and the connection
// token in the low 60 bits. The token's generation field loses its top
// 4 bits to the tag, so liveness checks compare generations masked to
// 28 bits — ample against the A(close)B(reuse) races it guards.

#include "src/net/net_server_internal.h"

#if BOUNCER_HAS_IOURING

#include <poll.h>

#include <algorithm>
#include <cstdio>

namespace bouncer::net {

namespace {

constexpr uint64_t kTagShift = 60;
constexpr uint64_t kTokenMask = (uint64_t{1} << kTagShift) - 1;
constexpr uint64_t kTagAccept = 1;
constexpr uint64_t kTagRecv = 2;
constexpr uint64_t kTagSend = 3;
constexpr uint64_t kTagEvent = 4;
constexpr uint64_t kTagCancel = 5;
/// Generation bits that survive the tag carve-out (token bits 32..59).
constexpr uint32_t kGenMask = (1u << 28) - 1;

uint64_t Pack(uint64_t tag, uint64_t token) {
  return (tag << kTagShift) | (token & kTokenMask);
}

}  // namespace

bool NetServer::UringSetupLoops() {
  const unsigned sq = options_.uring_sq_entries;
  // CQ sized for bursts: every provided buffer can be an undrained recv
  // CQE, plus a send and a cancel per connection in the worst iteration.
  const unsigned cq = std::max<unsigned>(4096, sq * 4);
  for (auto& loop_ptr : loops_) {
    Loop& loop = *loop_ptr;
    auto state = std::make_unique<UringState>();
    if (Status s = state->ring.Init(sq, cq); !s.ok()) {
      backend_fallback_reason_ = s.message();
      for (auto& lp : loops_) UringDestroyLoop(*lp);
      return false;
    }
    if (Status s = state->bufs.Init(state->ring, /*bgid=*/0,
                                    options_.uring_buf_count,
                                    options_.uring_buf_bytes);
        !s.ok()) {
      backend_fallback_reason_ = s.message();
      for (auto& lp : loops_) UringDestroyLoop(*lp);
      return false;
    }
    loop.uring = state.release();
  }
  return true;
}

void NetServer::UringDestroyLoop(Loop& loop) {
  if (loop.uring == nullptr) return;
  loop.uring->bufs.Destroy(loop.uring->ring);
  loop.uring->ring.Close();
  delete loop.uring;
  loop.uring = nullptr;
}

void NetServer::UringDecInflight(Loop& loop, Connection* conn) {
  if (conn->uring_inflight > 0) --conn->uring_inflight;
  if (conn->zombie && conn->uring_inflight == 0 && conn->fd < 0) {
    conn->zombie = false;
    loop.free_slots.push_back(conn->index);
  }
}

void NetServer::UringArmRecv(Loop& loop, Connection* conn) {
  if (conn->fd < 0 || conn->recv_armed || conn->cancel_pending) return;
  UringState& st = *loop.uring;
  io_uring_sqe* sqe = st.ring.GetSqe();
  if (sqe == nullptr) return;  // Ring dead; Stop() is the only way out.
  PrepRecvMultishot(sqe, conn->fd, /*buf_group=*/0,
                    Pack(kTagRecv, conn->Token()));
  conn->recv_armed = true;
  ++conn->uring_inflight;
}

void NetServer::UringUpdateInterest(Loop& loop, Connection* conn) {
  if (conn->fd < 0) return;
  const bool want = conn->want_read && !conn->closing;
  if (want) {
    UringArmRecv(loop, conn);  // No-op if armed or a cancel is in flight.
    return;
  }
  if (conn->recv_armed && !conn->cancel_pending) {
    // Pause: async-cancel the multishot recv. Bytes already completed
    // surface as CQEs and wait in `staged` (UringOnRecv never delivers
    // past a pause), so nothing is lost — exactly the epoll semantics of
    // disarming EPOLLIN with data left in the socket buffer.
    UringState& st = *loop.uring;
    io_uring_sqe* sqe = st.ring.GetSqe();
    if (sqe == nullptr) return;
    PrepCancel(sqe, Pack(kTagRecv, conn->Token()),
               Pack(kTagCancel, conn->Token()));
    conn->cancel_pending = true;
    ++conn->uring_inflight;
  }
}

void NetServer::UringPumpConn(Loop& loop, Connection* conn) {
  if (conn->fd < 0) return;
  UringState& st = *loop.uring;
  // Drain staged recv bytes into rx as the parse gates allow, oldest
  // first (FIFO keeps the byte stream ordered).
  while (conn->staged_head < conn->staged.size()) {
    if (!conn->want_read) break;  // Paused: bytes stay staged.
    StagedBuf& sb = conn->staged[conn->staged_head];
    const size_t room = conn->rx.free_space();
    if (room == 0) {
      ParseConn(loop, conn);
      if (conn->fd < 0) return;
      if (conn->rx.free_space() == 0) break;  // Gate holds rx full.
      continue;
    }
    const uint32_t n =
        static_cast<uint32_t>(std::min<size_t>(room, sb.len));
    conn->rx.Write(st.bufs.Addr(sb.bid) + sb.offset, n);
    sb.offset += n;
    sb.len -= n;
    if (sb.len == 0) {
      st.bufs.Recycle(sb.bid);
      ++conn->staged_head;
    }
    ParseConn(loop, conn);
    if (conn->fd < 0) return;  // Bad frame closed it mid-drain.
  }
  if (conn->staged_head >= conn->staged.size() && !conn->staged.empty()) {
    conn->staged.clear();
    conn->staged_head = 0;
  }
  UringUpdateInterest(loop, conn);
}

void NetServer::UringFlushConn(Loop& loop, Connection* conn) {
  conn->dirty = false;
  if (conn->fd < 0) return;
  if (conn->send_inflight) return;  // The CQE chains the next flush.
  if (conn->tx.empty()) {
    if (conn->read_paused_tx) {
      conn->read_paused_tx = false;
      ResumeRead(loop, conn);
    }
    if (conn->closing && conn->owed == 0 && conn->tx.empty()) {
      CloseConn(loop, conn);
    }
    return;
  }
  UringState& st = *loop.uring;
  io_uring_sqe* sqe = st.ring.GetSqe();
  if (sqe == nullptr) return;
  // The iovecs must outlive the SQE, so they live on the connection; tx
  // is append-only until the CQE consumes, so the segments stay valid.
  const int segments = conn->tx.ReadableSegments(conn->send_iov);
  PrepWritev(sqe, conn->fd, conn->send_iov, static_cast<unsigned>(segments),
             Pack(kTagSend, conn->Token()));
  conn->send_inflight = true;
  ++conn->uring_inflight;
}

void NetServer::UringPrepareClose(Loop& loop, Connection* conn) {
  UringState& st = *loop.uring;
  // Cancel by user_data, never by fd: the fd number can be reused by the
  // very next accept while these SQEs are still in flight.
  if (conn->recv_armed && !conn->cancel_pending) {
    if (io_uring_sqe* sqe = st.ring.GetSqe(); sqe != nullptr) {
      PrepCancel(sqe, Pack(kTagRecv, conn->Token()),
                 Pack(kTagCancel, conn->Token()));
      ++conn->uring_inflight;
    }
  }
  if (conn->send_inflight) {
    if (io_uring_sqe* sqe = st.ring.GetSqe(); sqe != nullptr) {
      PrepCancel(sqe, Pack(kTagSend, conn->Token()),
                 Pack(kTagCancel, conn->Token()));
      ++conn->uring_inflight;
    }
  }
  conn->recv_armed = false;
  conn->send_inflight = false;
  conn->cancel_pending = false;
  for (size_t i = conn->staged_head; i < conn->staged.size(); ++i) {
    st.bufs.Recycle(conn->staged[i].bid);
  }
  conn->staged.clear();
  conn->staged_head = 0;
}

void NetServer::UringOnAccept(Loop& loop, int res, uint32_t flags) {
  UringState& st = *loop.uring;
  if (!(flags & IORING_CQE_F_MORE)) st.accept_armed = false;
  if (res < 0) return;  // ECANCELED/EMFILE/...; re-armed at loop bottom.
  HandleAccepted(loop, res);
}

void NetServer::UringOnRecv(Loop& loop, uint64_t data, int res,
                            uint32_t flags) {
  UringState& st = *loop.uring;
  const uint32_t index = static_cast<uint32_t>(data) & kSlotMask;
  Connection* slot =
      index < loop.slots.size() ? loop.slots[index].get() : nullptr;
  const bool has_buf = (flags & IORING_CQE_F_BUFFER) != 0;
  const auto bid = static_cast<uint16_t>(flags >> IORING_CQE_BUFFER_SHIFT);
  if (has_buf) st.bufs.Take();

  const auto gen28 = static_cast<uint32_t>(data >> 32) & kGenMask;
  const bool live =
      slot != nullptr && slot->fd >= 0 && (slot->gen & kGenMask) == gen28;

  if (!(flags & IORING_CQE_F_MORE)) {
    // Terminal CQE: the multishot submission is over for whichever
    // incarnation armed it.
    if (slot != nullptr) UringDecInflight(loop, slot);
    if (live) slot->recv_armed = false;
  }

  if (res > 0 && has_buf) {
    if (live && !slot->closing) {
      // Stage then pump: one code path whether rx has room or not, and
      // FIFO order is free.
      slot->staged.push_back({bid, 0, static_cast<uint32_t>(res)});
      UringPumpConn(loop, slot);
      return;  // PumpConn already reconciled recv interest.
    }
    st.bufs.Recycle(bid);  // Stale or closing: drop the bytes.
  } else if (has_buf) {
    st.bufs.Recycle(bid);  // Defensive: error CQE with a buffer attached.
  }
  if (!live) return;

  if (res == 0) {
    // EOF: answer what is owed, flush, then close.
    slot->closing = true;
    if (slot->owed == 0 && slot->tx.empty()) {
      CloseConn(loop, slot);
    } else {
      UringFlushConn(loop, slot);
    }
    return;
  }
  if (res < 0) {
    if (res == -ENOBUFS) {
      // Provided-buffer pool dry; retry once buffers recycle.
      st.rearm.push_back(slot->index);
      return;
    }
    if (res == -ECANCELED) {
      // Pause or close cancel landed; interest reconciles on the cancel
      // CQE (or resume).
      return;
    }
    CloseConn(loop, slot);  // Hard error: responses in flight are dropped.
  }
}

void NetServer::UringOnSend(Loop& loop, uint64_t data, int res) {
  const uint32_t index = static_cast<uint32_t>(data) & kSlotMask;
  Connection* slot =
      index < loop.slots.size() ? loop.slots[index].get() : nullptr;
  if (slot == nullptr) return;
  UringDecInflight(loop, slot);
  const auto gen28 = static_cast<uint32_t>(data >> 32) & kGenMask;
  if (slot->fd < 0 || (slot->gen & kGenMask) != gen28) return;
  slot->send_inflight = false;
  if (res < 0) {
    if (res == -EAGAIN || res == -EINTR) {
      UringFlushConn(loop, slot);  // Spurious; resubmit the same bytes.
      return;
    }
    if (res == -ECANCELED) return;
    CloseConn(loop, slot);
    return;
  }
  slot->tx.Consume(static_cast<size_t>(res));
  if (!slot->tx.empty()) {
    UringFlushConn(loop, slot);  // Short write: chain the remainder.
    return;
  }
  if (slot->read_paused_tx) {
    slot->read_paused_tx = false;
    ResumeRead(loop, slot);
  }
  if (slot->closing && slot->owed == 0 && slot->tx.empty()) {
    CloseConn(loop, slot);
  }
}

void NetServer::UringRearmPending(Loop& loop) {
  UringState& st = *loop.uring;
  if (st.rearm.empty()) return;
  size_t kept = 0;
  for (const uint32_t index : st.rearm) {
    Connection* conn =
        index < loop.slots.size() ? loop.slots[index].get() : nullptr;
    if (conn == nullptr || conn->fd < 0) continue;
    if (!conn->want_read || conn->recv_armed || conn->cancel_pending) {
      continue;  // Resume (UringUpdateInterest) owns re-arming these.
    }
    if (st.bufs.free_bufs() == 0) {
      st.rearm[kept++] = index;  // Still dry; keep waiting.
      continue;
    }
    UringArmRecv(loop, conn);
  }
  st.rearm.resize(kept);
}

void NetServer::UringProcessCqes(Loop& loop) {
  UringState& st = *loop.uring;
  st.ring.DrainCqes([&](const io_uring_cqe& cqe) {
    switch (cqe.user_data >> kTagShift) {
      case kTagAccept:
        UringOnAccept(loop, cqe.res, cqe.flags);
        break;
      case kTagRecv:
        UringOnRecv(loop, cqe.user_data, cqe.res, cqe.flags);
        break;
      case kTagSend:
        UringOnSend(loop, cqe.user_data, cqe.res);
        break;
      case kTagEvent: {
        if (!(cqe.flags & IORING_CQE_F_MORE)) st.event_armed = false;
        uint64_t drained;
        [[maybe_unused]] ssize_t r =
            ::read(loop.event_fd, &drained, sizeof(drained));
        loop.counters.syscalls.fetch_add(1, std::memory_order_relaxed);
        DrainMailbox(loop);
        break;
      }
      case kTagCancel: {
        const uint32_t index =
            static_cast<uint32_t>(cqe.user_data) & kSlotMask;
        Connection* slot =
            index < loop.slots.size() ? loop.slots[index].get() : nullptr;
        if (slot == nullptr) break;
        UringDecInflight(loop, slot);
        const auto gen28 =
            static_cast<uint32_t>(cqe.user_data >> 32) & kGenMask;
        if (slot->fd >= 0 && (slot->gen & kGenMask) == gen28) {
          // A pause cancel finished. If reads resumed meanwhile, the
          // interest reconcile below re-arms the recv right away.
          slot->cancel_pending = false;
          slot->recv_armed = false;
          UringUpdateInterest(loop, slot);
        }
        break;
      }
      default:
        break;
    }
  });
}

void NetServer::UringRun(Loop& loop) {
  UringState& st = *loop.uring;
  while (!stop_requested_.load(std::memory_order_acquire)) {
    UringProcessCqes(loop);
    // One admission episode for everything parsed this wakeup, then
    // answer whatever completed (same phase structure as EpollRun; see
    // the comment there for why this repeats until the batch is empty).
    do {
      SubmitParsed(loop);
      DrainCompletions(loop);
      PumpAdminAll(loop);
      for (auto& slot : loop.slots) {
        Connection* conn = slot.get();
        if (conn != nullptr && conn->fd >= 0 && conn->dirty) {
          FlushConn(loop, conn);
        }
      }
      MaybeResumePaused(loop);
    } while (!loop.batch.empty());
    UringRearmPending(loop);

    // Keep the persistent multishot submissions alive: either can
    // terminate on transient errors (EMFILE, poll races) and just needs
    // a fresh SQE.
    if (loop.listen_fd >= 0 && !st.accept_armed) {
      if (io_uring_sqe* sqe = st.ring.GetSqe(); sqe != nullptr) {
        PrepAcceptMultishot(sqe, loop.listen_fd, Pack(kTagAccept, 0));
        st.accept_armed = true;
      }
    }
    if (!st.event_armed) {
      if (io_uring_sqe* sqe = st.ring.GetSqe(); sqe != nullptr) {
        PrepPollMultishot(sqe, loop.event_fd, POLLIN, Pack(kTagEvent, 0));
        st.event_armed = true;
      }
    }

    // Pre-wait handshake with OnQueryDone's worker side (see EpollRun):
    // declare we are about to block, then re-check the done ring.
    int64_t timeout_ns =
        loop.overload_paused ? 1'000'000 : 100'000'000;  // 1ms / 100ms.
    loop.done_signal.store(false, std::memory_order_relaxed);
    loop.done_waiting.store(true, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (!loop.done_ring.EmptyApprox() || st.ring.CqePending()) {
      timeout_ns = 0;
    }
    // The submit and the wait are one syscall — every SQE prepared this
    // iteration ships here.
    st.ring.SubmitAndWait(/*min_complete=*/1, timeout_ns);
    loop.done_waiting.store(false, std::memory_order_relaxed);
    loop.counters.wakeups.fetch_add(1, std::memory_order_relaxed);
    loop.counters.syscalls.fetch_add(st.ring.TakeEnterCalls(),
                                     std::memory_order_relaxed);
  }
  loop.counters.syscalls.fetch_add(st.ring.TakeEnterCalls(),
                                   std::memory_order_relaxed);
}

}  // namespace bouncer::net

#else  // !BOUNCER_HAS_IOURING

namespace bouncer::net {

// Link stubs: the backend branches in net_server.cc reference these
// unconditionally, but Start() can never resolve backend_ to kUring when
// the build compiles io_uring out (QueryUringSupport reports the
// compile-time reason), so none of them can actually run.

bool NetServer::UringSetupLoops() {
  backend_fallback_reason_ = QueryUringSupport().reason;
  return false;
}
void NetServer::UringDestroyLoop(Loop&) {}
void NetServer::UringRun(Loop&) {}
void NetServer::UringProcessCqes(Loop&) {}
void NetServer::UringOnAccept(Loop&, int, uint32_t) {}
void NetServer::UringOnRecv(Loop&, uint64_t, int, uint32_t) {}
void NetServer::UringOnSend(Loop&, uint64_t, int) {}
void NetServer::UringArmRecv(Loop&, Connection*) {}
void NetServer::UringUpdateInterest(Loop&, Connection*) {}
void NetServer::UringPumpConn(Loop&, Connection*) {}
void NetServer::UringFlushConn(Loop&, Connection*) {}
void NetServer::UringPrepareClose(Loop&, Connection*) {}
void NetServer::UringRearmPending(Loop&) {}
void NetServer::UringDecInflight(Loop&, Connection*) {}

}  // namespace bouncer::net

#endif  // BOUNCER_HAS_IOURING
