#ifndef BOUNCER_NET_PROTOCOL_H_
#define BOUNCER_NET_PROTOCOL_H_

#include <cstdint>
#include <cstring>

#include "src/graph/cluster.h"
#include "src/util/time.h"

namespace bouncer::net {

/// Wire format of the network front-end: length-prefixed little-endian
/// binary frames, fixed-size bodies (the graph query types are all
/// scalar-parameterized, so nothing is gained by a variable layout and a
/// fixed one keeps parsing a bounds check plus a memcpy).
///
/// Request frame (kRequestFrameBytes total):
///   u32  body length (kRequestBodyBytesV1 or kRequestBodyBytes; other
///        values are a protocol error and close the connection)
///   u64  request id (echoed verbatim in the response)
///   u8   query type id (GraphOp, 0..10)
///   u8   priority (carried through; reserved for priority scheduling)
///   u16  flags (bit 0 kRequestFlagTenant: a trailing tenant id follows;
///        all other bits must be 0)
///   u32  source vertex
///   u32  target vertex (2-vertex ops)
///   u64  external id (kDegreeByExternalId)
///   u64  deadline in nanoseconds relative to server receipt (0 = none)
///   u64  external tenant id — present iff kRequestFlagTenant is set.
///        v1 clients omit flag and field (36-byte body) and are decoded
///        as the default tenant; v2 frames carry 44-byte bodies.
///
/// Response frame (kResponseFrameBytes total):
///   u32  body length (== kResponseBodyBytes)
///   u64  request id
///   u8   status (ResponseStatus)
///   u8   flags — for graph responses, the RejectReason wire code of the
///        failure (0 on success), so clients can tell policy rejection,
///        queue shed, and shard-side backpressure apart
///   u64  result value (degree / count / distance; 0 unless status == kOk)
///
/// Admin opcodes (kOpStatsJson/kOpStatsPrometheus/kOpTraceDump) reuse the
/// request frame unchanged and are answered with a chunked variant of the
/// response frame, served directly from the owning event loop:
///   u32  body length (== kResponseBodyBytes + chunk payload length,
///        payload <= kAdminMaxChunk)
///   u64  request id (echoed)
///   u8   status (kOk)
///   u8   flags (bit 0 kAdminFlagMore: another chunk follows)
///   u64  total payload size in bytes (same in every chunk)
///   ...  chunk payload bytes
/// The client concatenates chunk payloads until a frame without
/// kAdminFlagMore arrives.

/// Admin opcode family, far above the graph op range so the two can
/// never collide. Served synchronously from the event loop, not through
/// the admission path — observability must keep working under overload.
inline constexpr uint8_t kOpStatsJson = 0xF0;        ///< Registry as JSON.
inline constexpr uint8_t kOpStatsPrometheus = 0xF1;  ///< Text exposition.
inline constexpr uint8_t kOpTraceDump = 0xF2;        ///< Recorder JSONL.

inline constexpr bool IsAdminOp(uint8_t op) {
  return op == kOpStatsJson || op == kOpStatsPrometheus || op == kOpTraceDump;
}

/// Admin chunk flag: set on every chunk except the last.
inline constexpr uint8_t kAdminFlagMore = 0x01;
/// Upper bound on one admin chunk's payload bytes — small enough that a
/// chunk always fits the write ring next to the in-flight graph
/// responses it must never displace.
inline constexpr size_t kAdminMaxChunk = 4096;

/// Request flag bit 0: the body carries a trailing external tenant id.
/// EncodeRequest manages the bit itself from RequestFrame::tenant, so
/// single-tenant clients never pay the extra 8 bytes and never change.
inline constexpr uint16_t kRequestFlagTenant = 0x1;

/// One parsed client request.
struct RequestFrame {
  uint64_t id = 0;
  uint8_t op = 0;
  uint8_t priority = 0;
  uint16_t flags = 0;
  uint32_t source = 0;
  uint32_t target = 0;
  uint64_t external_id = 0;
  uint64_t deadline_ns = 0;  ///< Relative to receipt; 0 = none.
  /// External tenant id (0 = default tenant). Interned into a dense
  /// TenantId server-side; only on the wire when non-zero.
  uint64_t tenant = 0;
};

/// Terminal status delivered to the client for one request.
enum class ResponseStatus : uint8_t {
  kOk = 0,        ///< Served; `value` holds the answer.
  kRejected = 1,  ///< Early rejection by the admission policy (paper §2).
  kShedded = 2,   ///< Dropped on a full bounded queue.
  kExpired = 3,   ///< Admitted but the deadline passed while queued.
  kFailed = 4,    ///< A shard rejected or shed a subquery mid-execution.
  kBadRequest = 5,///< Malformed frame (unknown op / bad flags).
};

/// One response to a client request.
struct ResponseFrame {
  uint64_t id = 0;
  ResponseStatus status = ResponseStatus::kOk;
  uint8_t flags = 0;
  uint64_t value = 0;
};

inline constexpr size_t kLengthPrefixBytes = 4;
/// v1 body: no tenant field. Still emitted whenever tenant == 0, so the
/// common single-tenant stream is byte-identical to older builds.
inline constexpr size_t kRequestBodyBytesV1 = 8 + 1 + 1 + 2 + 4 + 4 + 8 + 8;
/// v2 body: v1 plus the trailing u64 tenant id. kRequestBodyBytes stays
/// the name for "the largest request body" so buffer sizing is unchanged.
inline constexpr size_t kRequestBodyBytes = kRequestBodyBytesV1 + 8;
inline constexpr size_t kRequestFrameBytes =
    kLengthPrefixBytes + kRequestBodyBytes;
inline constexpr size_t kResponseBodyBytes = 8 + 1 + 1 + 8;
inline constexpr size_t kResponseFrameBytes =
    kLengthPrefixBytes + kResponseBodyBytes;

namespace wire {

/// Little-endian scalar stores/loads. The encode side writes byte by
/// byte so the format is host-endianness-independent; on LE hosts the
/// compiler folds these into plain moves.
inline void PutU16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
}
inline void PutU32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}
inline void PutU64(uint8_t* p, uint64_t v) {
  PutU32(p, static_cast<uint32_t>(v));
  PutU32(p + 4, static_cast<uint32_t>(v >> 32));
}
inline uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}
inline uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}
inline uint64_t GetU64(const uint8_t* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         (static_cast<uint64_t>(GetU32(p + 4)) << 32);
}

}  // namespace wire

/// Encodes `frame` (length prefix included) into `out`, which must hold
/// kRequestFrameBytes; returns the bytes actually written. Emits a v1
/// (36-byte) body when frame.tenant is 0 and a v2 (44-byte) body with the
/// tenant flag set otherwise — callers transmit exactly the returned
/// size, so single-tenant traffic stays wire-compatible with v1 servers.
inline size_t EncodeRequest(const RequestFrame& frame, uint8_t* out) {
  const bool with_tenant = frame.tenant != 0;
  const size_t body_len =
      with_tenant ? kRequestBodyBytes : kRequestBodyBytesV1;
  const uint16_t flags = with_tenant
                             ? static_cast<uint16_t>(frame.flags |
                                                     kRequestFlagTenant)
                             : static_cast<uint16_t>(frame.flags &
                                                     ~kRequestFlagTenant);
  wire::PutU32(out, static_cast<uint32_t>(body_len));
  uint8_t* p = out + kLengthPrefixBytes;
  wire::PutU64(p, frame.id);
  p[8] = frame.op;
  p[9] = frame.priority;
  wire::PutU16(p + 10, flags);
  wire::PutU32(p + 12, frame.source);
  wire::PutU32(p + 16, frame.target);
  wire::PutU64(p + 20, frame.external_id);
  wire::PutU64(p + 28, frame.deadline_ns);
  if (with_tenant) wire::PutU64(p + 36, frame.tenant);
  return kLengthPrefixBytes + body_len;
}

/// Decodes a request body of `body_len` bytes (the bytes after the
/// length prefix); both v1 and v2 layouts are accepted, and a v1 body
/// yields tenant 0 (the default tenant) so pre-tenant clients keep
/// working unchanged. Returns false when the frame is semantically
/// invalid (unknown op, unknown flag bits, flag/length mismatch); the
/// fields are filled either way so the server can echo the id in a
/// kBadRequest response.
inline bool DecodeRequestBody(const uint8_t* body, size_t body_len,
                              RequestFrame* out) {
  out->id = wire::GetU64(body);
  out->op = body[8];
  out->priority = body[9];
  out->flags = wire::GetU16(body + 10);
  out->source = wire::GetU32(body + 12);
  out->target = wire::GetU32(body + 16);
  out->external_id = wire::GetU64(body + 20);
  out->deadline_ns = wire::GetU64(body + 28);
  const bool has_tenant = (out->flags & kRequestFlagTenant) != 0;
  out->tenant =
      has_tenant && body_len >= kRequestBodyBytes ? wire::GetU64(body + 36)
                                                  : 0;
  const size_t expected_len =
      has_tenant ? kRequestBodyBytes : kRequestBodyBytesV1;
  return (out->op < graph::kNumGraphOps || IsAdminOp(out->op)) &&
         (out->flags & ~kRequestFlagTenant) == 0 && body_len == expected_len;
}

/// Encodes `frame` (length prefix included) into `out`, which must hold
/// kResponseFrameBytes.
inline void EncodeResponse(const ResponseFrame& frame, uint8_t* out) {
  wire::PutU32(out, static_cast<uint32_t>(kResponseBodyBytes));
  uint8_t* p = out + kLengthPrefixBytes;
  wire::PutU64(p, frame.id);
  p[8] = static_cast<uint8_t>(frame.status);
  p[9] = frame.flags;
  wire::PutU64(p + 10, frame.value);
}

/// Decodes a response body (the bytes after the length prefix).
inline void DecodeResponseBody(const uint8_t* body, ResponseFrame* out) {
  out->id = wire::GetU64(body);
  out->status = static_cast<ResponseStatus>(body[8]);
  out->flags = body[9];
  out->value = wire::GetU64(body + 10);
}

/// The GraphQuery a request frame describes.
inline graph::GraphQuery ToGraphQuery(const RequestFrame& frame) {
  graph::GraphQuery q;
  q.op = static_cast<graph::GraphOp>(frame.op);
  q.source = frame.source;
  q.target = frame.target;
  q.external_id = frame.external_id;
  return q;
}

}  // namespace bouncer::net

#endif  // BOUNCER_NET_PROTOCOL_H_
