#include "src/net/uring_loop.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#if BOUNCER_HAS_IOURING

#include <poll.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <unistd.h>

#ifndef IORING_UNREGISTER_PBUF_RING
#define IORING_UNREGISTER_PBUF_RING 23
#endif

namespace bouncer::net {

namespace {

int SysSetup(unsigned entries, io_uring_params* params) {
  return static_cast<int>(
      ::syscall(__NR_io_uring_setup, entries, params));
}

int SysEnter(int fd, unsigned to_submit, unsigned min_complete,
             unsigned flags, const void* arg, size_t argsz) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, arg, argsz));
}

int SysRegister(int fd, unsigned opcode, const void* arg, unsigned nr_args) {
  return static_cast<int>(
      ::syscall(__NR_io_uring_register, fd, opcode, arg, nr_args));
}

}  // namespace

Status UringRing::Init(unsigned sq_entries, unsigned cq_entries) {
  if (valid()) return Status::FailedPrecondition("ring already initialized");
  io_uring_params params;
  std::memset(&params, 0, sizeof(params));
  params.flags = IORING_SETUP_CQSIZE | IORING_SETUP_COOP_TASKRUN;
  params.cq_entries = cq_entries;
  int fd = SysSetup(sq_entries, &params);
  if (fd < 0 && errno == EINVAL) {
    // Pre-5.19 kernel: retry without the task-run optimization.
    std::memset(&params, 0, sizeof(params));
    params.flags = IORING_SETUP_CQSIZE;
    params.cq_entries = cq_entries;
    fd = SysSetup(sq_entries, &params);
  }
  if (fd < 0) {
    return Status::Internal(std::string("io_uring_setup failed: ") +
                            std::strerror(errno));
  }
  ring_fd_ = fd;
  features_ = params.features;
  sq_entries_ = params.sq_entries;

  sq_ring_bytes_ =
      params.sq_off.array + params.sq_entries * sizeof(unsigned);
  cq_ring_bytes_ =
      params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
  if (features_ & IORING_FEAT_SINGLE_MMAP) {
    if (cq_ring_bytes_ > sq_ring_bytes_) sq_ring_bytes_ = cq_ring_bytes_;
    cq_ring_bytes_ = sq_ring_bytes_;
  }
  sq_ring_ = ::mmap(nullptr, sq_ring_bytes_, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
  if (sq_ring_ == MAP_FAILED) {
    sq_ring_ = nullptr;
    Close();
    return Status::Internal("io_uring SQ ring mmap failed");
  }
  if (features_ & IORING_FEAT_SINGLE_MMAP) {
    cq_ring_ = sq_ring_;
  } else {
    cq_ring_ = ::mmap(nullptr, cq_ring_bytes_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_,
                      IORING_OFF_CQ_RING);
    if (cq_ring_ == MAP_FAILED) {
      cq_ring_ = nullptr;
      Close();
      return Status::Internal("io_uring CQ ring mmap failed");
    }
  }
  sqes_bytes_ = params.sq_entries * sizeof(io_uring_sqe);
  sqes_ = static_cast<io_uring_sqe*>(
      ::mmap(nullptr, sqes_bytes_, PROT_READ | PROT_WRITE,
             MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES));
  if (sqes_ == MAP_FAILED) {
    sqes_ = nullptr;
    Close();
    return Status::Internal("io_uring SQE array mmap failed");
  }

  auto* sq_base = static_cast<uint8_t*>(sq_ring_);
  sq_head_ = reinterpret_cast<unsigned*>(sq_base + params.sq_off.head);
  sq_tail_ = reinterpret_cast<unsigned*>(sq_base + params.sq_off.tail);
  sq_flags_ = reinterpret_cast<unsigned*>(sq_base + params.sq_off.flags);
  sq_array_ = reinterpret_cast<unsigned*>(sq_base + params.sq_off.array);
  sq_mask_ = *reinterpret_cast<unsigned*>(sq_base + params.sq_off.ring_mask);
  auto* cq_base = static_cast<uint8_t*>(cq_ring_);
  cq_head_ = reinterpret_cast<unsigned*>(cq_base + params.cq_off.head);
  cq_tail_ = reinterpret_cast<unsigned*>(cq_base + params.cq_off.tail);
  cq_mask_ = *reinterpret_cast<unsigned*>(cq_base + params.cq_off.ring_mask);
  cqes_ = reinterpret_cast<io_uring_cqe*>(cq_base + params.cq_off.cqes);

  // SQE i always goes through array slot i & mask: identity, set once.
  for (unsigned i = 0; i <= sq_mask_; ++i) sq_array_[i] = i;
  local_tail_ = submitted_tail_ = *sq_tail_;
  return Status::OK();
}

void UringRing::Close() {
  if (sqes_ != nullptr) ::munmap(sqes_, sqes_bytes_);
  if (cq_ring_ != nullptr && cq_ring_ != sq_ring_) {
    ::munmap(cq_ring_, cq_ring_bytes_);
  }
  if (sq_ring_ != nullptr) ::munmap(sq_ring_, sq_ring_bytes_);
  if (ring_fd_ >= 0) ::close(ring_fd_);
  ring_fd_ = -1;
  sq_ring_ = cq_ring_ = nullptr;
  sqes_ = nullptr;
  sq_head_ = sq_tail_ = sq_flags_ = sq_array_ = nullptr;
  cq_head_ = cq_tail_ = nullptr;
  cqes_ = nullptr;
  local_tail_ = submitted_tail_ = 0;
}

io_uring_sqe* UringRing::GetSqe() {
  const unsigned head = __atomic_load_n(sq_head_, __ATOMIC_ACQUIRE);
  if (local_tail_ - head >= sq_entries_) {
    if (Submit() < 0) return nullptr;
  }
  io_uring_sqe* sqe = &sqes_[local_tail_ & sq_mask_];
  ++local_tail_;
  std::memset(sqe, 0, sizeof(*sqe));
  return sqe;
}

int UringRing::Enter(unsigned to_submit, unsigned min_complete,
                     unsigned flags, const void* arg, size_t argsz) {
  ++enter_calls_;
  const int ret = SysEnter(ring_fd_, to_submit, min_complete, flags, arg,
                           argsz);
  return ret >= 0 ? ret : -errno;
}

int UringRing::Submit() {
  unsigned to_submit = local_tail_ - submitted_tail_;
  if (to_submit == 0) return 0;
  __atomic_store_n(sq_tail_, local_tail_, __ATOMIC_RELEASE);
  int total = 0;
  while (to_submit > 0) {
    int ret = Enter(to_submit, 0, 0, nullptr, 0);
    if (ret == -EINTR) continue;
    if (ret == -EAGAIN || ret == -EBUSY) {
      // CQ overflow backpressure: ask the kernel to flush completions.
      ret = Enter(to_submit, 0, IORING_ENTER_GETEVENTS, nullptr, 0);
      if (ret < 0) return ret;
    } else if (ret < 0) {
      return ret;
    }
    submitted_tail_ += static_cast<unsigned>(ret);
    to_submit -= static_cast<unsigned>(ret);
    total += ret;
  }
  return total;
}

int UringRing::SubmitAndWait(unsigned min_complete, int64_t timeout_ns) {
  __atomic_store_n(sq_tail_, local_tail_, __ATOMIC_RELEASE);
  for (;;) {
    const unsigned to_submit = local_tail_ - submitted_tail_;
    __kernel_timespec ts;
    ts.tv_sec = timeout_ns / 1000000000;
    ts.tv_nsec = timeout_ns % 1000000000;
    io_uring_getevents_arg arg;
    std::memset(&arg, 0, sizeof(arg));
    arg.ts = reinterpret_cast<uint64_t>(&ts);
    const int ret =
        Enter(to_submit, min_complete,
              IORING_ENTER_GETEVENTS | IORING_ENTER_EXT_ARG, &arg,
              sizeof(arg));
    if (ret == -EINTR) continue;
    if (ret == -ETIME) {
      submitted_tail_ += to_submit;  // SQEs were consumed before the wait.
      return 0;
    }
    if (ret < 0) return ret;
    submitted_tail_ += static_cast<unsigned>(ret);
    if (submitted_tail_ != local_tail_) continue;  // Kernel SQ was full.
    return ret;
  }
}

int UringRing::RegisterBufRing(const io_uring_buf_reg& reg) {
  const int ret = SysRegister(ring_fd_, IORING_REGISTER_PBUF_RING, &reg, 1);
  return ret >= 0 ? ret : -errno;
}

int UringRing::UnregisterBufRing(uint16_t bgid) {
  io_uring_buf_reg reg;
  std::memset(&reg, 0, sizeof(reg));
  reg.bgid = bgid;
  const int ret =
      SysRegister(ring_fd_, IORING_UNREGISTER_PBUF_RING, &reg, 1);
  return ret >= 0 ? ret : -errno;
}

UringBufRing::~UringBufRing() {
  // The owning ring may already be closed (which unregisters
  // implicitly); only the memory is ours to release here.
  std::free(br_);
  std::free(pool_);
}

Status UringBufRing::Init(UringRing& ring, uint16_t bgid, uint32_t entries,
                          uint32_t buf_bytes) {
  if ((entries & (entries - 1)) != 0 || entries == 0 || entries > 32768) {
    return Status::InvalidArgument("buffer ring entries must be 2^k <= 32768");
  }
  void* ring_mem = nullptr;
  void* pool_mem = nullptr;
  if (::posix_memalign(&ring_mem, 4096, entries * sizeof(io_uring_buf)) != 0 ||
      ::posix_memalign(&pool_mem, 4096,
                       static_cast<size_t>(entries) * buf_bytes) != 0) {
    std::free(ring_mem);
    return Status::Internal("buffer ring allocation failed");
  }
  std::memset(ring_mem, 0, entries * sizeof(io_uring_buf));
  br_ = static_cast<io_uring_buf_ring*>(ring_mem);
  pool_ = static_cast<uint8_t*>(pool_mem);
  entries_ = entries;
  buf_bytes_ = buf_bytes;
  mask_ = entries - 1;
  bgid_ = bgid;
  tail_ = 0;

  io_uring_buf_reg reg;
  std::memset(&reg, 0, sizeof(reg));
  reg.ring_addr = reinterpret_cast<uint64_t>(br_);
  reg.ring_entries = entries_;
  reg.bgid = bgid_;
  if (const int ret = ring.RegisterBufRing(reg); ret < 0) {
    std::free(br_);
    std::free(pool_);
    br_ = nullptr;
    pool_ = nullptr;
    return Status::Internal(
        std::string("IORING_REGISTER_PBUF_RING failed: ") +
        std::strerror(-ret));
  }
  registered_ = true;
  for (uint32_t bid = 0; bid < entries_; ++bid) {
    Recycle(static_cast<uint16_t>(bid));
  }
  free_bufs_ = entries_;  // Recycle() over-counted from zero.
  return Status::OK();
}

void UringBufRing::Destroy(UringRing& ring) {
  if (registered_ && ring.valid()) ring.UnregisterBufRing(bgid_);
  registered_ = false;
  std::free(br_);
  std::free(pool_);
  br_ = nullptr;
  pool_ = nullptr;
  entries_ = 0;
  free_bufs_ = 0;
}

void UringBufRing::Recycle(uint16_t bid) {
  // Never dereference br_->bufs from C++: __DECLARE_FLEX_ARRAY pads its
  // anonymous empty struct to one byte under C++, shifting `bufs` to
  // offset 8 while the kernel reads entries from offset 0. Index the
  // ring memory the way the kernel does instead. (Entry 0's resv field
  // aliases the ring's tail word by design; only addr/len/bid are ours.)
  auto* entries = reinterpret_cast<io_uring_buf*>(br_);
  io_uring_buf& buf = entries[tail_ & mask_];
  buf.addr = reinterpret_cast<uint64_t>(Addr(bid));
  buf.len = buf_bytes_;
  buf.bid = bid;
  ++tail_;
  __atomic_store_n(&br_->tail, tail_, __ATOMIC_RELEASE);
  ++free_bufs_;
}

void PrepAcceptMultishot(io_uring_sqe* sqe, int fd, uint64_t user_data) {
  sqe->opcode = IORING_OP_ACCEPT;
  sqe->fd = fd;
  sqe->ioprio = IORING_ACCEPT_MULTISHOT;
  sqe->accept_flags = SOCK_NONBLOCK | SOCK_CLOEXEC;
  sqe->user_data = user_data;
}

void PrepRecvMultishot(io_uring_sqe* sqe, int fd, uint16_t buf_group,
                       uint64_t user_data) {
  sqe->opcode = IORING_OP_RECV;
  sqe->fd = fd;
  sqe->ioprio = IORING_RECV_MULTISHOT;
  sqe->flags = IOSQE_BUFFER_SELECT;
  sqe->buf_group = buf_group;
  sqe->user_data = user_data;
}

void PrepWritev(io_uring_sqe* sqe, int fd, const struct iovec* iov,
                unsigned nr_iov, uint64_t user_data) {
  sqe->opcode = IORING_OP_WRITEV;
  sqe->fd = fd;
  sqe->addr = reinterpret_cast<uint64_t>(iov);
  sqe->len = nr_iov;
  sqe->user_data = user_data;
}

void PrepPollMultishot(io_uring_sqe* sqe, int fd, uint32_t poll_mask,
                       uint64_t user_data) {
  sqe->opcode = IORING_OP_POLL_ADD;
  sqe->fd = fd;
  // Little-endian layout assumed, like the rest of the wire protocol.
  sqe->poll32_events = poll_mask;
  sqe->len = IORING_POLL_ADD_MULTI;
  sqe->user_data = user_data;
}

void PrepCancel(io_uring_sqe* sqe, uint64_t target_user_data,
                uint64_t user_data) {
  sqe->opcode = IORING_OP_ASYNC_CANCEL;
  sqe->fd = -1;
  sqe->addr = target_user_data;
  sqe->user_data = user_data;
}

namespace {

/// IORING_REGISTER_PROBE check for the opcodes the backend submits.
bool ProbeOpcodes(int ring_fd, std::string* reason) {
  constexpr unsigned kProbeOps = 64;
  // io_uring_probe ends in a flexible array member, so it cannot be
  // nested in a struct; size a raw buffer for the header plus ops.
  alignas(io_uring_probe) uint8_t raw[sizeof(io_uring_probe) +
                                     kProbeOps * sizeof(io_uring_probe_op)];
  std::memset(raw, 0, sizeof(raw));
  auto* probe = reinterpret_cast<io_uring_probe*>(raw);
  if (SysRegister(ring_fd, IORING_REGISTER_PROBE, probe, kProbeOps) < 0) {
    *reason = std::string("IORING_REGISTER_PROBE failed: ") +
              std::strerror(errno);
    return false;
  }
  const uint8_t needed[] = {IORING_OP_ACCEPT, IORING_OP_RECV,
                            IORING_OP_WRITEV, IORING_OP_POLL_ADD,
                            IORING_OP_ASYNC_CANCEL};
  for (const uint8_t op : needed) {
    if (op > probe->last_op ||
        (probe->ops[op].flags & IO_URING_OP_SUPPORTED) == 0) {
      *reason = "io_uring opcode " + std::to_string(op) + " unsupported";
      return false;
    }
  }
  return true;
}

UringSupport RunProbe() {
  UringSupport result;
  UringRing ring;
  if (Status s = ring.Init(8, 16); !s.ok()) {
    result.reason = s.message();
    return result;
  }
  if ((ring.features() & IORING_FEAT_EXT_ARG) == 0) {
    result.reason = "kernel lacks IORING_FEAT_EXT_ARG (need >= 5.11)";
    return result;
  }
  if ((ring.features() & IORING_FEAT_NODROP) == 0) {
    result.reason = "kernel lacks IORING_FEAT_NODROP";
    return result;
  }
  if (!ProbeOpcodes(ring.ring_fd(), &result.reason)) return result;

  UringBufRing bufs;
  if (Status s = bufs.Init(ring, 0, 8, 256); !s.ok()) {
    result.reason = "provided buffer rings unsupported (need >= 5.19): " +
                    std::string(s.message());
    return result;
  }

  // Functional probe: multishot recv with buffer selection over a
  // socketpair. IORING_RECV_MULTISHOT is an opcode flag (kernel >= 6.0)
  // that IORING_REGISTER_PROBE cannot see; an -EINVAL completion is how
  // older kernels report it.
  int sp[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, sp) != 0) {
    bufs.Destroy(ring);
    result.reason = "probe socketpair failed";
    return result;
  }
  io_uring_sqe* sqe = ring.GetSqe();
  PrepRecvMultishot(sqe, sp[0], 0, 1);
  const char byte = 'x';
  [[maybe_unused]] ssize_t wr = ::write(sp[1], &byte, 1);
  ring.SubmitAndWait(1, 500 * 1000 * 1000);
  int recv_res = -ETIME;
  uint32_t recv_flags = 0;
  ring.DrainCqes([&](const io_uring_cqe& cqe) {
    if (cqe.user_data == 1) {
      recv_res = cqe.res;
      recv_flags = cqe.flags;
    }
  });
  ::close(sp[0]);
  ::close(sp[1]);
  bufs.Destroy(ring);
  if (recv_res == -EINVAL) {
    result.reason = "multishot recv unsupported (need kernel >= 6.0)";
    return result;
  }
  if (recv_res != 1 || (recv_flags & IORING_CQE_F_BUFFER) == 0) {
    result.reason = "multishot recv probe failed (res=" +
                    std::to_string(recv_res) + ")";
    return result;
  }
  result.supported = true;
  return result;
}

}  // namespace

const UringSupport& QueryUringSupport() {
  static const UringSupport support = RunProbe();
  return support;
}

}  // namespace bouncer::net

#else  // !BOUNCER_HAS_IOURING

namespace bouncer::net {

const UringSupport& QueryUringSupport() {
  static const UringSupport support = {
      false, "io_uring backend compiled out (BOUNCER_IOURING=OFF)"};
  return support;
}

}  // namespace bouncer::net

#endif  // BOUNCER_HAS_IOURING
