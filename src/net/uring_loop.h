// Vendored io_uring plumbing for the NetServer io_uring backend: raw
// syscall wrappers (no liburing dependency), a minimal submission/
// completion ring, and a registered provided-buffer ring for multishot
// recv. Everything here is single-threaded by contract — exactly one
// event-loop thread owns a ring, mirroring the one-loop-one-thread
// discipline of the epoll backend.
//
// Compiled out (stubs only) when BOUNCER_HAS_IOURING is 0; callers gate
// on QueryUringSupport().supported, which then reports the compile-time
// reason.

#ifndef BOUNCER_NET_URING_LOOP_H_
#define BOUNCER_NET_URING_LOOP_H_

#ifndef BOUNCER_HAS_IOURING
#define BOUNCER_HAS_IOURING 0
#endif

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/status.h"

#if BOUNCER_HAS_IOURING
#include <linux/io_uring.h>
#include <sys/uio.h>
#endif

namespace bouncer::net {

/// Result of the one-time kernel capability probe.
struct UringSupport {
  bool supported = false;
  /// Human-readable reason when unsupported ("io_uring_setup: EPERM",
  /// "multishot recv unsupported", "compiled out", ...).
  std::string reason;
};

/// Probes once per process (cached): ring setup, the opcodes the backend
/// needs (accept/recv/writev/poll/async-cancel), EXT_ARG timeouts,
/// provided-buffer-ring registration, and — functionally, over a
/// socketpair — multishot recv with buffer selection (kernel >= 6.0; it
/// cannot be probed via IORING_REGISTER_PROBE because it is an opcode
/// flag, not an opcode). Multishot accept (5.19) and multishot poll
/// (5.13) are implied by multishot recv passing.
const UringSupport& QueryUringSupport();

#if BOUNCER_HAS_IOURING

/// One io_uring instance: setup, the three mmaps, SQE acquisition and
/// io_uring_enter submission. The owner thread fills SQEs via GetSqe()
/// and flushes them with Submit()/SubmitAndWait(); completions are read
/// in place from the CQ ring via DrainCqes() (no copy).
class UringRing {
 public:
  UringRing() = default;
  ~UringRing() { Close(); }
  UringRing(const UringRing&) = delete;
  UringRing& operator=(const UringRing&) = delete;

  /// `sq_entries` bounds the SQEs prepared between two flushes (GetSqe
  /// auto-flushes when full); `cq_entries` sizes the completion ring
  /// (IORING_SETUP_CQSIZE). Tries IORING_SETUP_COOP_TASKRUN first and
  /// retries without it on EINVAL (pre-5.19 kernels).
  Status Init(unsigned sq_entries, unsigned cq_entries);
  void Close();
  bool valid() const { return ring_fd_ >= 0; }
  int ring_fd() const { return ring_fd_; }
  uint32_t features() const { return features_; }

  /// Next free SQE, zeroed. Flushes the pending batch first when the SQ
  /// is full; returns nullptr only if that flush fails hard.
  io_uring_sqe* GetSqe();

  /// Flushes prepared SQEs without waiting. Returns a negative errno on
  /// hard failure, else the number submitted.
  int Submit();
  /// One io_uring_enter: flushes prepared SQEs and waits for at least
  /// `min_complete` completions or `timeout_ns` (0 = poll, no wait).
  /// Returns immediately when the CQ already holds entries.
  int SubmitAndWait(unsigned min_complete, int64_t timeout_ns);

  /// Invokes `fn(const io_uring_cqe&)` for every pending completion and
  /// advances the CQ head. Returns the number consumed.
  template <typename Fn>
  unsigned DrainCqes(Fn&& fn) {
    unsigned head = *cq_head_;  // Only this thread writes the head.
    const unsigned tail = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
    unsigned n = 0;
    while (head != tail) {
      fn(cqes_[head & cq_mask_]);
      ++head;
      ++n;
    }
    if (n > 0) __atomic_store_n(cq_head_, head, __ATOMIC_RELEASE);
    return n;
  }

  bool CqePending() const {
    return *cq_head_ != __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
  }

  /// io_uring_enter calls performed since the last call (syscall
  /// accounting for Stats::syscalls).
  uint64_t TakeEnterCalls() {
    const uint64_t n = enter_calls_;
    enter_calls_ = 0;
    return n;
  }

  int RegisterBufRing(const io_uring_buf_reg& reg);
  int UnregisterBufRing(uint16_t bgid);

 private:
  int Enter(unsigned to_submit, unsigned min_complete, unsigned flags,
            const void* arg, size_t argsz);

  int ring_fd_ = -1;
  uint32_t features_ = 0;

  // SQ ring.
  void* sq_ring_ = nullptr;
  size_t sq_ring_bytes_ = 0;
  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned* sq_flags_ = nullptr;
  unsigned* sq_array_ = nullptr;
  unsigned sq_mask_ = 0;
  unsigned sq_entries_ = 0;
  io_uring_sqe* sqes_ = nullptr;
  size_t sqes_bytes_ = 0;
  unsigned local_tail_ = 0;      ///< SQEs prepared (not yet published).
  unsigned submitted_tail_ = 0;  ///< SQEs handed to the kernel.

  // CQ ring (shares sq_ring_ mapping with IORING_FEAT_SINGLE_MMAP).
  void* cq_ring_ = nullptr;
  size_t cq_ring_bytes_ = 0;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned cq_mask_ = 0;
  io_uring_cqe* cqes_ = nullptr;

  uint64_t enter_calls_ = 0;
};

/// A registered provided-buffer ring (IORING_REGISTER_PBUF_RING): the
/// kernel picks a free buffer for each multishot-recv completion and
/// reports its id in the CQE; the owner copies the bytes out and hands
/// the buffer back with Recycle(). All buffers live in one contiguous
/// pool allocated at Init — nothing allocates per recv.
class UringBufRing {
 public:
  UringBufRing() = default;
  ~UringBufRing();
  UringBufRing(const UringBufRing&) = delete;
  UringBufRing& operator=(const UringBufRing&) = delete;

  /// `entries` must be a power of two (<= 32768).
  Status Init(UringRing& ring, uint16_t bgid, uint32_t entries,
              uint32_t buf_bytes);
  void Destroy(UringRing& ring);

  uint8_t* Addr(uint16_t bid) {
    return pool_ + static_cast<size_t>(bid) * buf_bytes_;
  }
  /// Marks `bid` as consumed by a CQE (free-buffer accounting).
  void Take() { --free_bufs_; }
  /// Returns `bid` to the kernel's free set.
  void Recycle(uint16_t bid);

  uint32_t buf_bytes() const { return buf_bytes_; }
  uint32_t entries() const { return entries_; }
  /// Buffers the kernel can still pick; 0 means the next recv ENOBUFS.
  uint32_t free_bufs() const { return free_bufs_; }

 private:
  io_uring_buf_ring* br_ = nullptr;
  uint8_t* pool_ = nullptr;
  uint32_t entries_ = 0;
  uint32_t buf_bytes_ = 0;
  uint32_t mask_ = 0;
  uint32_t free_bufs_ = 0;
  uint16_t bgid_ = 0;
  uint16_t tail_ = 0;
  bool registered_ = false;
};

// SQE preparation helpers (sqe is already zeroed by GetSqe).
void PrepAcceptMultishot(io_uring_sqe* sqe, int fd, uint64_t user_data);
void PrepRecvMultishot(io_uring_sqe* sqe, int fd, uint16_t buf_group,
                       uint64_t user_data);
void PrepWritev(io_uring_sqe* sqe, int fd, const struct iovec* iov,
                unsigned nr_iov, uint64_t user_data);
void PrepPollMultishot(io_uring_sqe* sqe, int fd, uint32_t poll_mask,
                       uint64_t user_data);
/// Cancels the submission whose user_data equals `target_user_data`.
void PrepCancel(io_uring_sqe* sqe, uint64_t target_user_data,
                uint64_t user_data);

/// Bytes of one provided buffer that arrived before a connection could
/// absorb them (rx ring full or read paused mid-flight): the buffer is
/// held out of the kernel's free set until the copy completes.
struct StagedBuf {
  uint16_t bid = 0;
  uint32_t offset = 0;
  uint32_t len = 0;
};

/// Per-loop io_uring backend state, owned by the loop thread.
struct UringState {
  UringRing ring;
  UringBufRing bufs;
  bool accept_armed = false;
  bool event_armed = false;
  /// Slot indices whose multishot recv died with ENOBUFS; re-armed as
  /// buffers recycle.
  std::vector<uint32_t> rearm;
};

#else  // !BOUNCER_HAS_IOURING

struct UringState;  // Never instantiated; Loop holds a null pointer.

#endif  // BOUNCER_HAS_IOURING

}  // namespace bouncer::net

#endif  // BOUNCER_NET_URING_LOOP_H_
