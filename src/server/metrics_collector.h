#ifndef BOUNCER_SERVER_METRICS_COLLECTOR_H_
#define BOUNCER_SERVER_METRICS_COLLECTOR_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/server/stage.h"
#include "src/stats/summary.h"

namespace bouncer::server {

/// Per-type report extracted from a MetricsCollector snapshot; times in
/// milliseconds.
struct TypeReport {
  uint64_t received = 0;
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  uint64_t expired = 0;
  uint64_t completed = 0;
  double rejection_pct = 0.0;
  double rt_mean_ms = 0.0;
  double rt_p50_ms = 0.0;
  double rt_p90_ms = 0.0;
  double rt_p99_ms = 0.0;
  double pt_mean_ms = 0.0;
  double pt_p50_ms = 0.0;
  double pt_p90_ms = 0.0;
  /// Exact sum of processing time over completed items, in ns.
  int64_t pt_total_ns = 0;

  /// Total processing time spent on completed items, in ms — the busy
  /// time a worker pool charged to this type. Utilization over a window
  /// follows as BusyMs() / (workers * window_ms). Computed from the
  /// exactly-accumulated nanosecond sum, not mean * count: the mean is a
  /// double whose rounding error scales with the sample count, and this
  /// value feeds shard_utilization in the real-study cells.
  double BusyMs() const { return ToMillis(pt_total_ns); }
};

/// Thread-safe sink for Stage completion callbacks: counts outcomes and
/// collects response/processing-time samples per query type. Recording
/// can be toggled so warm-up traffic is excluded (paper §5.4 warms the
/// cluster for a minute before each run).
class MetricsCollector {
 public:
  explicit MetricsCollector(size_t num_types)
      : types_(num_types), recording_(true) {}

  /// Enables or disables sample/counter recording.
  void SetRecording(bool on) {
    recording_.store(on, std::memory_order_release);
  }
  bool recording() const { return recording_.load(std::memory_order_acquire); }

  /// Records one terminal outcome. Safe from any thread. Intended as the
  /// WorkItem::on_complete sink:
  ///   item.on_complete = [&](const WorkItem& w, Outcome o) {
  ///     collector.Record(w, o);
  ///   };
  /// Snapshot consistency: the terminal-outcome counter is bumped first
  /// and `received` last (release); Report()/Overall() read `received`
  /// first (acquire). A snapshot therefore never observes a torn per-type
  /// row where an item is counted as received but in no outcome bucket —
  /// rejected + expired + completed >= received always holds, with
  /// equality once recorders quiesce.
  void Record(const WorkItem& item, Outcome outcome) {
    if (!recording()) return;
    if (item.type >= types_.size()) return;
    PerType& t = types_[item.type];
    switch (outcome) {
      case Outcome::kRejected:
      case Outcome::kShedded:
        t.rejected.fetch_add(1, std::memory_order_relaxed);
        t.received.fetch_add(1, std::memory_order_release);
        return;
      case Outcome::kExpired:
        t.expired.fetch_add(1, std::memory_order_relaxed);
        t.received.fetch_add(1, std::memory_order_release);
        return;
      case Outcome::kCompleted:
        break;
    }
    t.completed.fetch_add(1, std::memory_order_relaxed);
    t.accepted.fetch_add(1, std::memory_order_relaxed);
    t.pt_total_ns.fetch_add(item.ProcessingTime(), std::memory_order_relaxed);
    t.received.fetch_add(1, std::memory_order_release);
    std::lock_guard<std::mutex> lock(t.mu);
    t.rt_ms.Add(ToMillis(item.ResponseTime()));
    t.pt_ms.Add(ToMillis(item.ProcessingTime()));
  }

  /// Builds the report for type `id`. Takes the type's sample lock.
  TypeReport Report(QueryTypeId id) {
    TypeReport r;
    if (id >= types_.size()) return r;
    PerType& t = types_[id];
    // Acquire on `received` pairs with the release increment in Record():
    // every outcome bump ordered before a counted `received` is visible
    // below, so the row is never torn (see Record()).
    r.received = t.received.load(std::memory_order_acquire);
    r.accepted = t.accepted.load(std::memory_order_relaxed);
    r.rejected = t.rejected.load(std::memory_order_relaxed);
    r.expired = t.expired.load(std::memory_order_relaxed);
    r.completed = t.completed.load(std::memory_order_relaxed);
    r.pt_total_ns = t.pt_total_ns.load(std::memory_order_relaxed);
    if (r.received > 0) {
      r.rejection_pct = 100.0 * static_cast<double>(r.rejected) /
                        static_cast<double>(r.received);
    }
    std::lock_guard<std::mutex> lock(t.mu);
    r.rt_mean_ms = t.rt_ms.Mean();
    r.rt_p50_ms = t.rt_ms.Percentile(0.50);
    r.rt_p90_ms = t.rt_ms.Percentile(0.90);
    r.rt_p99_ms = t.rt_ms.Percentile(0.99);
    r.pt_mean_ms = t.pt_ms.Mean();
    r.pt_p50_ms = t.pt_ms.Percentile(0.50);
    r.pt_p90_ms = t.pt_ms.Percentile(0.90);
    return r;
  }

  /// Aggregated report across all types (percentiles pooled).
  TypeReport Overall() {
    TypeReport r;
    stats::SampleSummary all_rt;
    stats::SampleSummary all_pt;
    for (size_t i = 0; i < types_.size(); ++i) {
      PerType& t = types_[i];
      r.received += t.received.load(std::memory_order_acquire);
      r.accepted += t.accepted.load(std::memory_order_relaxed);
      r.rejected += t.rejected.load(std::memory_order_relaxed);
      r.expired += t.expired.load(std::memory_order_relaxed);
      r.completed += t.completed.load(std::memory_order_relaxed);
      r.pt_total_ns += t.pt_total_ns.load(std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(t.mu);
      for (double v : t.rt_ms.samples()) all_rt.Add(v);
      for (double v : t.pt_ms.samples()) all_pt.Add(v);
    }
    if (r.received > 0) {
      r.rejection_pct = 100.0 * static_cast<double>(r.rejected) /
                        static_cast<double>(r.received);
    }
    r.rt_mean_ms = all_rt.Mean();
    r.rt_p50_ms = all_rt.Percentile(0.50);
    r.rt_p90_ms = all_rt.Percentile(0.90);
    r.rt_p99_ms = all_rt.Percentile(0.99);
    r.pt_mean_ms = all_pt.Mean();
    r.pt_p50_ms = all_pt.Percentile(0.50);
    r.pt_p90_ms = all_pt.Percentile(0.90);
    return r;
  }

  /// Clears all counters and samples.
  void Reset() {
    for (auto& t : types_) {
      t.received.store(0, std::memory_order_relaxed);
      t.accepted.store(0, std::memory_order_relaxed);
      t.rejected.store(0, std::memory_order_relaxed);
      t.expired.store(0, std::memory_order_relaxed);
      t.completed.store(0, std::memory_order_relaxed);
      t.pt_total_ns.store(0, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(t.mu);
      t.rt_ms.Clear();
      t.pt_ms.Clear();
    }
  }

  size_t num_types() const { return types_.size(); }

 private:
  /// Padded to cache-line granularity: the per-type cells sit in one
  /// flat vector and every completion from every worker writes its
  /// type's cell, so adjacent hot types must not share a line.
  struct alignas(kCacheLineSize) PerType {
    std::atomic<uint64_t> received{0};
    std::atomic<uint64_t> accepted{0};
    std::atomic<uint64_t> rejected{0};
    std::atomic<uint64_t> expired{0};
    std::atomic<uint64_t> completed{0};
    std::atomic<int64_t> pt_total_ns{0};
    std::mutex mu;
    stats::SampleSummary rt_ms;
    stats::SampleSummary pt_ms;
  };

  std::vector<PerType> types_;
  std::atomic<bool> recording_;
};

}  // namespace bouncer::server

#endif  // BOUNCER_SERVER_METRICS_COLLECTOR_H_
