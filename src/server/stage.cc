#include "src/server/stage.h"

#include <utility>

#include "src/core/policy_factory.h"

namespace bouncer::server {

Stage::Stage(const Options& options, const QueryTypeRegistry* registry,
             Clock* clock, const PolicyFactory& policy_factory,
             Handler handler)
    : options_(options),
      registry_(registry),
      clock_(clock),
      queue_state_(registry->size()),
      handler_(std::move(handler)) {
  PolicyContext context{registry_, &queue_state_, options_.num_workers};
  auto policy = policy_factory(context);
  if (policy.ok()) {
    policy_ = std::move(*policy);
  } else {
    init_status_ = policy.status();
  }
}

Stage::~Stage() { Stop(false); }

Status Stage::Start() {
  if (!init_status_.ok()) return init_status_;
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return Status::FailedPrecondition("stage already started");
  started_ = true;
  stopping_ = false;
  workers_.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void Stage::Stop(bool drain) {
  std::vector<std::thread> workers;
  std::deque<WorkItem> leftover;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    stopping_ = true;
    if (!drain) {
      leftover.swap(fifo_);
    }
    cv_.notify_all();
  }
  // Complete discarded items outside the lock.
  for (WorkItem& item : leftover) {
    counters_.shedded.fetch_add(1, std::memory_order_relaxed);
    queue_state_.OnDequeued(item.type);
    if (item.on_complete) item.on_complete(item, Outcome::kShedded);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    workers.swap(workers_);
  }
  for (std::thread& w : workers) {
    if (w.joinable()) w.join();
  }
  std::lock_guard<std::mutex> lock(mu_);
  started_ = false;
}

size_t Stage::QueueLength() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fifo_.size();
}

Outcome Stage::Submit(WorkItem item) {
  const Nanos now = clock_->Now();
  item.arrival = now;
  counters_.received.fetch_add(1, std::memory_order_relaxed);

  const Decision decision = policy_->Decide(item.type, now);
  if (decision == Decision::kReject) {
    counters_.rejected.fetch_add(1, std::memory_order_relaxed);
    policy_->OnRejected(item.type, now);
    if (item.on_complete) item.on_complete(item, Outcome::kRejected);
    return Outcome::kRejected;
  }

  item.enqueued = now;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ || fifo_.size() >= options_.queue_capacity) {
      counters_.shedded.fetch_add(1, std::memory_order_relaxed);
      // Policy saw an accept; report the drop so its windows stay honest.
      if (item.on_complete) item.on_complete(item, Outcome::kShedded);
      return Outcome::kShedded;
    }
    counters_.accepted.fetch_add(1, std::memory_order_relaxed);
    queue_state_.OnEnqueued(item.type);
    policy_->OnEnqueued(item.type, now);  // Point 1.
    fifo_.push_back(std::move(item));
  }
  cv_.notify_one();
  return Outcome::kCompleted;  // Admitted; terminal outcome follows async.
}

void Stage::WorkerLoop() {
  while (true) {
    WorkItem item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !fifo_.empty(); });
      if (fifo_.empty()) {
        if (stopping_) return;
        continue;
      }
      item = std::move(fifo_.front());
      fifo_.pop_front();
    }
    const Nanos dequeue_time = clock_->Now();
    item.dequeued = dequeue_time;
    queue_state_.OnDequeued(item.type);
    policy_->OnDequeued(item.type, item.WaitTime(), dequeue_time);  // Point 2.

    if (item.deadline > 0 && dequeue_time > item.deadline) {
      // Admitted but already expired: doing the work would be useless.
      counters_.expired.fetch_add(1, std::memory_order_relaxed);
      if (item.on_complete) item.on_complete(item, Outcome::kExpired);
      continue;
    }

    handler_(item);
    const Nanos done = clock_->Now();
    item.completed = done;
    policy_->OnCompleted(item.type, item.ProcessingTime(), done);  // Point 3.
    counters_.completed.fetch_add(1, std::memory_order_relaxed);
    if (item.on_complete) item.on_complete(item, Outcome::kCompleted);
  }
}

StatusOr<std::unique_ptr<Stage>> StageBuilder::Build() {
  if (registry_ == nullptr) {
    return Status::InvalidArgument("StageBuilder requires a registry");
  }
  if (clock_ == nullptr) clock_ = SystemClock::Global();
  if (!handler_) {
    return Status::InvalidArgument("StageBuilder requires a handler");
  }
  const PolicyConfig config = policy_config_;
  auto stage = std::make_unique<Stage>(
      options_, registry_, clock_,
      [&config](const PolicyContext& context) {
        return CreatePolicy(config, context);
      },
      handler_);
  if (!stage->init_status().ok()) return stage->init_status();
  return stage;
}

}  // namespace bouncer::server
