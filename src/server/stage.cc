#include "src/server/stage.h"

#include <algorithm>
#include <utility>

#include "src/core/policy_factory.h"

namespace bouncer::server {

namespace {
/// Upper bound on run-queue shards: beyond this the steal scan and the
/// snapshot sums cost more than the contention they avoid.
constexpr size_t kMaxRunQueues = 64;
}  // namespace

size_t Stage::ResolveRunQueues(const Options& options) {
  if (options.force_single_queue) return 1;
  size_t n = options.num_run_queues != 0 ? options.num_run_queues
                                         : options.num_workers;
  if (n == 0) n = 1;
  return std::min(n, kMaxRunQueues);
}

Stage::Stage(const Options& options, const QueryTypeRegistry* registry,
             Clock* clock, const PolicyFactory& policy_factory,
             Handler handler)
    : options_(options),
      registry_(registry),
      clock_(clock),
      queue_state_(registry->size(), ResolveRunQueues(options)),
      handler_(std::move(handler)) {
  const size_t num_queues = ResolveRunQueues(options_);
  // The capacity bound covers the logical FIFO; each ring gets an even
  // share (the ring rounds it up to a power of two, so the total can
  // exceed the request slightly — it is a memory bound, not a quota).
  const size_t per_queue = std::max<size_t>(
      2, (options_.queue_capacity + num_queues - 1) / num_queues);
  queues_.reserve(num_queues);
  for (size_t q = 0; q < num_queues; ++q) {
    queues_.push_back(std::make_unique<RunQueue>(per_queue));
  }
  PolicyContext context{registry_, &queue_state_, options_.num_workers,
                        num_queues, options_.tenants};
  auto policy = policy_factory(context);
  if (policy.ok()) {
    policy_ = std::move(*policy);
  } else {
    init_status_ = policy.status();
  }
  if constexpr (stats::kTraceCompiledIn) {
    recorder_ = options_.recorder != nullptr ? options_.recorder
                                             : &stats::FlightRecorder::Global();
  }
  if (options_.metrics != nullptr) {
    const std::string prefix = "stage." + options_.name + ".";
    est_err_under_ =
        options_.metrics->GetHistogram(prefix + "est_wait_err_under_ns");
    est_err_over_ =
        options_.metrics->GetHistogram(prefix + "est_wait_err_over_ns");
    collector_handle_ =
        options_.metrics->AddCollector([this, prefix](stats::MetricSink& sink) {
          const StageCounters snapshot = counters();
          sink.AddCounter(prefix + "received", snapshot.received);
          sink.AddCounter(prefix + "accepted", snapshot.accepted);
          sink.AddCounter(prefix + "rejected", snapshot.rejected);
          sink.AddCounter(prefix + "expired", snapshot.expired);
          sink.AddCounter(prefix + "shedded", snapshot.shedded);
          sink.AddCounter(prefix + "completed", snapshot.completed);
          sink.AddGauge(prefix + "queue_length",
                        static_cast<int64_t>(queue_state_.TotalLength()));
        });
  }
}

Stage::~Stage() {
  // Drop the collector before any member dies: a concurrent Snapshot()
  // must never run the callback against a half-destroyed stage.
  if (collector_handle_ != 0) {
    options_.metrics->RemoveCollector(collector_handle_);
  }
  Stop(false);
}

StageCounters Stage::counters() const {
  StageCounters out;
  for (const auto& q : queues_) {
    const QueueCounters& c = q->counters;
    out.received += c.received.load(std::memory_order_relaxed);
    out.accepted += c.accepted.load(std::memory_order_relaxed);
    out.rejected += c.rejected.load(std::memory_order_relaxed);
    out.expired += c.expired.load(std::memory_order_relaxed);
    out.shedded += c.shedded.load(std::memory_order_relaxed);
    out.completed += c.completed.load(std::memory_order_relaxed);
  }
  return out;
}

size_t Stage::RunQueueLength(size_t queue) const {
  if (queue >= queues_.size()) return 0;
  return queues_[queue]->fifo.SizeApprox();
}

bool Stage::PopAny(size_t home, WorkItem& out) {
  const size_t n = queues_.size();
  if (queues_[home]->fifo.TryPop(out)) return true;
  for (size_t k = 1; k < n; ++k) {
    if (queues_[(home + k) % n]->fifo.TryPop(out)) return true;
  }
  return false;
}

bool Stage::AnyQueueNonEmpty() const {
  for (const auto& q : queues_) {
    if (!q->fifo.EmptyApprox()) return true;
  }
  return false;
}

void Stage::StampAdmission(WorkItem& item, Nanos now, RejectReason reason) {
  if constexpr (stats::kTraceCompiledIn) {
    if (!item.traced && recorder_->ShouldSample(item.id)) item.traced = true;
  }
  if (item.traced || est_err_under_ != nullptr) {
    item.estimated_wait = policy_->EstimatedQueueWait(item.key());
  }
  if (reason != RejectReason::kNone) item.reject_reason = reason;
  if constexpr (stats::kTraceCompiledIn) {
    if (item.traced) {
      stats::TraceEvent event;
      event.ts = now;
      event.id = item.id;
      event.arg0 = item.estimated_wait;
      event.arg1 = item.deadline > 0 ? item.deadline - now : -1;
      event.type = static_cast<uint16_t>(item.type);
      event.tenant = item.tenant;
      event.kind = static_cast<uint8_t>(stats::TraceEventKind::kAdmission);
      event.reason = static_cast<uint8_t>(reason);
      recorder_->Record(event);
    }
  }
}

void Stage::TraceOutcome(const WorkItem& item, Nanos now,
                         stats::TraceEventKind kind, Nanos arg0, Nanos arg1) {
  if constexpr (stats::kTraceCompiledIn) {
    if (!item.traced) return;
    stats::TraceEvent event;
    event.ts = now;
    event.id = item.id;
    event.arg0 = arg0;
    event.arg1 = arg1;
    event.type = static_cast<uint16_t>(item.type);
    event.tenant = item.tenant;
    event.kind = static_cast<uint8_t>(kind);
    event.reason = static_cast<uint8_t>(item.reject_reason);
    recorder_->Record(event);
  } else {
    (void)item;
    (void)now;
    (void)kind;
    (void)arg0;
    (void)arg1;
  }
}

Status Stage::Start() {
  if (!init_status_.ok()) return init_status_;
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (started_) return Status::FailedPrecondition("stage already started");
  started_ = true;
  stopping_.store(false, std::memory_order_release);
  workers_.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  return Status::OK();
}

void Stage::Stop(bool drain) {
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (!started_) return;
    stopping_.store(true, std::memory_order_release);
    workers.swap(workers_);
  }
  if (!drain) {
    // Discard queued work before the workers can reach it; workers race
    // us for individual items, which only moves an item from "shedded"
    // to "completed".
    DrainAsShedded();
  }
  idle_workers_.NotifyAll();
  for (std::thread& w : workers) {
    if (w.joinable()) w.join();
  }
  // Workers exit once stopping_ is visible and every ring reads empty; a
  // Submit() racing Stop() can still have pushed after that. Sweep so
  // every admitted item completes exactly once.
  DrainAsShedded();
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  started_ = false;
}

size_t Stage::QueueLength() const { return queue_state_.TotalLength(); }

Outcome Stage::Submit(WorkItem item) {
  return SubmitImpl(std::move(item), /*allow_inline=*/false);
}

Outcome Stage::SubmitInline(WorkItem item) {
  return SubmitImpl(std::move(item), /*allow_inline=*/true);
}

Stage::BatchResult Stage::SubmitBatch(std::span<WorkItem> items,
                                      uint32_t submitter) {
  BatchResult result;
  if (items.empty()) return result;
  RunQueue& queue = *queues_[PreferredQueue(submitter)];
  // One timestamp for the whole batch: every item of one epoll wakeup
  // arrived "now" at frame granularity anyway, and the clock read is a
  // per-item cost the batch path exists to amortize.
  const Nanos now = clock_->Now();
  queue.counters.received.fetch_add(items.size(), std::memory_order_relaxed);

  // Pass 1 — admission. Rejections complete right here (the caller's
  // event loop answers them without touching workers); admitted items are
  // compacted to the front of the span, preserving relative order.
  size_t admitted = 0;
  for (size_t i = 0; i < items.size(); ++i) {
    WorkItem& item = items[i];
    item.arrival = now;
    const Decision decision = policy_->Decide(item.key(), now);
    if (decision == Decision::kReject) {
      ++result.rejected;
      StampAdmission(item, now, RejectReason::kPolicy);
      policy_->OnRejected(item.key(), now);
      if (item.on_complete) item.on_complete(item, Outcome::kRejected);
      continue;
    }
    // Estimate is stamped before OnEnqueued: it should cover the work
    // ahead of this item, not the item's own contribution.
    StampAdmission(item, now, RejectReason::kNone);
    item.enqueued = now;
    queue_state_.OnEnqueued(item.type);
    policy_->OnEnqueued(item.key(), now);  // Point 1.
    if (admitted != i) items[admitted] = std::move(item);
    ++admitted;
  }
  queue.counters.rejected.fetch_add(result.rejected,
                                    std::memory_order_relaxed);

  // Pass 2 — one cursor reservation enqueues the whole admitted block
  // into the submitter's preferred ring (one ring per batch keeps the
  // block contiguous).
  size_t pushed = 0;
  if (admitted > 0 && !stopping_.load(std::memory_order_acquire)) {
    pushed = queue.fifo.TryPushBatch(items.data(), admitted);
  }
  for (size_t i = pushed; i < admitted; ++i) {
    // Ring full (or stopping): the policy saw an accept, so report the
    // drop per item to keep its windows and aggregates honest.
    WorkItem& item = items[i];
    queue_state_.OnDequeued(item.type);
    item.reject_reason = RejectReason::kQueueFull;
    TraceOutcome(item, now, stats::TraceEventKind::kShed);
    policy_->OnShedded(item.key(), now);
    if (item.on_complete) item.on_complete(item, Outcome::kShedded);
  }
  result.admitted = static_cast<uint32_t>(pushed);
  result.shedded = static_cast<uint32_t>(admitted - pushed);
  queue.counters.accepted.fetch_add(result.admitted,
                                    std::memory_order_relaxed);
  queue.counters.shedded.fetch_add(result.shedded, std::memory_order_relaxed);
  if (pushed == 1) {
    idle_workers_.NotifyOne();
  } else if (pushed > 1) {
    idle_workers_.NotifyAll();
  }
  return result;
}

bool Stage::TryRunOne() {
  const size_t home = PreferredQueue(kNoSubmitterHint);
  WorkItem item;
  if (!PopAny(home, item)) return false;
  ProcessItem(item, queues_[home]->counters);
  return true;
}

Outcome Stage::SubmitImpl(WorkItem item, bool allow_inline) {
  const Nanos now = clock_->Now();
  item.arrival = now;
  const size_t home = PreferredQueue(kNoSubmitterHint);
  RunQueue& queue = *queues_[home];
  queue.counters.received.fetch_add(1, std::memory_order_relaxed);

  const Decision decision = policy_->Decide(item.key(), now);
  if (decision == Decision::kReject) {
    queue.counters.rejected.fetch_add(1, std::memory_order_relaxed);
    StampAdmission(item, now, RejectReason::kPolicy);
    policy_->OnRejected(item.key(), now);
    if (item.on_complete) item.on_complete(item, Outcome::kRejected);
    return Outcome::kRejected;
  }

  // Estimate is stamped before OnEnqueued: it should cover the work
  // ahead of this item, not the item's own contribution.
  StampAdmission(item, now, RejectReason::kNone);
  item.enqueued = now;
  const WorkKey key = item.key();
  // Occupancy and Point 1 go first: a worker that pops the item
  // immediately must observe the enqueue before its own dequeue.
  queue_state_.OnEnqueued(key.type);
  policy_->OnEnqueued(key, now);  // Point 1.
  if (allow_inline && !stopping_.load(std::memory_order_acquire) &&
      queue_state_.TotalLength() == 1 && queue.fifo.EmptyApprox()) {
    // Empty-and-admitting: nothing is queued in any ring ahead of this
    // item (the occupancy of 1 is its own enqueue), so running it here
    // cannot overtake FIFO order. Points 2–3 run on the calling thread.
    queue.counters.accepted.fetch_add(1, std::memory_order_relaxed);
    ProcessItem(item, queue.counters);
    return Outcome::kCompleted;
  }
  if (stopping_.load(std::memory_order_acquire) ||
      !queue.fifo.TryPush(std::move(item))) {
    // TryPush leaves `item` intact on failure (ring full).
    queue_state_.OnDequeued(key.type);
    item.reject_reason = RejectReason::kQueueFull;
    TraceOutcome(item, now, stats::TraceEventKind::kShed);
    queue.counters.shedded.fetch_add(1, std::memory_order_relaxed);
    // The policy saw an accept; report the drop so its windows and
    // aggregates stay honest.
    policy_->OnShedded(key, now);
    if (item.on_complete) item.on_complete(item, Outcome::kShedded);
    return Outcome::kShedded;
  }
  queue.counters.accepted.fetch_add(1, std::memory_order_relaxed);
  idle_workers_.NotifyOne();
  return Outcome::kCompleted;  // Admitted; terminal outcome follows async.
}

void Stage::WorkerLoop(size_t worker_index) {
  // Spin briefly before parking: under load the next item lands within
  // nanoseconds, while a park/notify cycle costs a futex round-trip on
  // both the worker and the submitter. The bound keeps an idle stage
  // cheap (a few microseconds of pause loops, then sleep).
  constexpr int kIdleSpins = 1024;
  const size_t home = worker_index % queues_.size();
  QueueCounters& counters = queues_[home]->counters;
  WorkItem item;
  int idle_spins = 0;
  for (;;) {
    if (PopAny(home, item)) {
      ProcessItem(item, counters);
      item = WorkItem();
      idle_spins = 0;
      continue;
    }
    if (stopping_.load(std::memory_order_acquire)) {
      // Re-check after observing the stop flag: drain semantics require
      // processing everything pushed before Stop().
      if (!PopAny(home, item)) return;
      ProcessItem(item, counters);
      item = WorkItem();
      continue;
    }
    if (++idle_spins < kIdleSpins) {
      CpuRelax();
      continue;
    }
    idle_spins = 0;
    idle_workers_.ParkUnless([this] {
      return stopping_.load(std::memory_order_relaxed) || AnyQueueNonEmpty();
    });
  }
}

void Stage::ProcessItem(WorkItem& item, QueueCounters& counters) {
  const Nanos dequeue_time = clock_->Now();
  item.dequeued = dequeue_time;
  queue_state_.OnDequeued(item.type);
  const Nanos wait = item.WaitTime();
  policy_->OnDequeued(item.key(), wait, dequeue_time);  // Point 2.
  if (item.estimated_wait >= 0) {
    // How far off was the Eq. 2 estimate for this item? Signed error
    // split across two histograms (the histogram clamps negatives).
    const Nanos err = wait - item.estimated_wait;
    if (est_err_under_ != nullptr) {
      if (err >= 0) {
        est_err_under_->Record(err);
      } else {
        est_err_over_->Record(-err);
      }
    }
    TraceOutcome(item, dequeue_time, stats::TraceEventKind::kDequeue, wait,
                 item.estimated_wait);
  } else {
    TraceOutcome(item, dequeue_time, stats::TraceEventKind::kDequeue, wait, -1);
  }

  if (item.deadline > 0 && dequeue_time > item.deadline) {
    // Admitted but already expired: doing the work would be useless.
    counters.expired.fetch_add(1, std::memory_order_relaxed);
    item.reject_reason = RejectReason::kExpired;
    TraceOutcome(item, dequeue_time, stats::TraceEventKind::kExpired);
    if (item.on_complete) item.on_complete(item, Outcome::kExpired);
    return;
  }

  handler_(item);
  const Nanos done = clock_->Now();
  item.completed = done;
  policy_->OnCompleted(item.key(), item.ProcessingTime(), done);  // Point 3.
  counters.completed.fetch_add(1, std::memory_order_relaxed);
  if (item.on_complete) item.on_complete(item, Outcome::kCompleted);
}

void Stage::DrainAsShedded() {
  // Shutdown path: attribute the sheds to ring 0's block — counters are
  // atomics, so sharing the block with a racing worker is safe, just not
  // contention-free (irrelevant while stopping).
  QueueCounters& counters = queues_[0]->counters;
  WorkItem item;
  while (PopAny(0, item)) {
    const Nanos now = clock_->Now();
    counters.shedded.fetch_add(1, std::memory_order_relaxed);
    queue_state_.OnDequeued(item.type);
    item.reject_reason = RejectReason::kQueueFull;
    TraceOutcome(item, now, stats::TraceEventKind::kShed);
    policy_->OnShedded(item.key(), now);
    if (item.on_complete) item.on_complete(item, Outcome::kShedded);
    item = WorkItem();
  }
}

StatusOr<std::unique_ptr<Stage>> StageBuilder::Build() {
  if (registry_ == nullptr) {
    return Status::InvalidArgument("StageBuilder requires a registry");
  }
  if (clock_ == nullptr) clock_ = SystemClock::Global();
  if (!handler_) {
    return Status::InvalidArgument("StageBuilder requires a handler");
  }
  const PolicyConfig config = policy_config_;
  auto stage = std::make_unique<Stage>(
      options_, registry_, clock_,
      [&config](const PolicyContext& context) {
        return CreatePolicy(config, context);
      },
      handler_);
  if (!stage->init_status().ok()) return stage->init_status();
  return stage;
}

}  // namespace bouncer::server
