#ifndef BOUNCER_SERVER_STAGE_H_
#define BOUNCER_SERVER_STAGE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "src/core/admission_policy.h"
#include "src/core/policy_factory.h"
#include "src/core/query_type_registry.h"
#include "src/core/queue_state.h"
#include "src/stats/flight_recorder.h"
#include "src/stats/metric_registry.h"
#include "src/util/clock.h"
#include "src/util/mpmc_queue.h"
#include "src/util/stripe.h"
#include "src/util/status.h"

namespace bouncer::server {

/// Terminal outcome of a work item submitted to a Stage.
enum class Outcome : uint8_t {
  kCompleted = 0,  ///< Admitted, processed, response produced.
  kRejected = 1,   ///< Dropped by the admission policy (early rejection).
  kExpired = 2,    ///< Admitted but its deadline passed while queued.
  kShedded = 3,    ///< Dropped because the bounded queue was full.
};

/// A unit of work flowing through a Stage: a typed query plus the
/// framework timestamps recorded at the metric points of paper Fig. 1.
struct WorkItem {
  QueryTypeId type = kDefaultQueryType;
  /// Dense tenant index (TenantRegistry); the second half of the
  /// admission key. Default-tenant for single-tenant callers.
  TenantId tenant = kDefaultTenant;
  uint64_t id = 0;        ///< Caller-chosen correlation id.
  Nanos deadline = 0;     ///< Absolute expiration time; 0 = none.
  void* user = nullptr;   ///< Opaque caller payload for the handler.

  Nanos arrival = 0;   ///< Set by Submit().
  Nanos enqueued = 0;  ///< Point 1 (accepted).
  Nanos dequeued = 0;  ///< Point 2.
  Nanos completed = 0; ///< Point 3.

  /// The policy's Eq. 2 queue-wait estimate at admission time, stamped by
  /// the stage for the estimate-vs-actual error histogram and the flight
  /// recorder; -1 when not computed (no observers attached).
  Nanos estimated_wait = -1;
  /// Why the item failed (kNone while in flight / on success). Mapped
  /// into the response frame's flags byte by the network layer.
  RejectReason reject_reason = RejectReason::kNone;
  /// Flight-recorder sampling decision, made once at the first admission
  /// point the item crosses and carried downstream (broker → shards).
  bool traced = false;

  /// The (type, tenant) pair policy entry points key on.
  WorkKey key() const { return WorkKey{type, tenant}; }

  /// Queue wait wt(Q); valid for kCompleted / kExpired.
  Nanos WaitTime() const { return dequeued - enqueued; }
  /// Processing time pt(Q); valid for kCompleted.
  Nanos ProcessingTime() const { return completed - dequeued; }
  /// Response time rt(Q) = wt + pt (ξ = 0, paper Eq. 1).
  Nanos ResponseTime() const { return completed - enqueued; }

  /// Completion callback, invoked exactly once for every submitted item
  /// — from Submit() for rejections, from a worker thread otherwise.
  std::function<void(const WorkItem&, Outcome)> on_complete;
};

/// Snapshot of a stage's aggregate counters: the per-run-queue padded
/// counter blocks summed at the counters() call.
struct StageCounters {
  uint64_t received = 0;
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  uint64_t expired = 0;
  uint64_t shedded = 0;
  uint64_t completed = 0;
};

/// SEDA-like stage (paper Fig. 1): an admission policy guards bounded
/// FIFO run queues drained by a fixed pool of worker threads ("query
/// engine processes") that run a caller-provided handler. The stage
/// maintains the QueueState the policy reads and invokes the policy hooks
/// at metric Points 1–3.
///
/// Execution core (shared-nothing by default): the logical FIFO is
/// sharded into `num_run_queues` bounded MPMC rings. Every submitter has
/// a preferred ring — an explicit hint (the network loop id) or the
/// thread's stripe token — and every worker a home ring (worker index mod
/// ring count), so in steady state each core stays on its own ring's
/// cache lines. Idle workers steal: a worker that finds its home ring dry
/// scans the other rings in index order and pops from the first non-empty
/// one (FIFO-local, FIFO-steal — the admission model's Eq. 2 assumes FIFO
/// service, so steals take the oldest item of the victim ring, never the
/// newest). TryRunOne()/SubmitInline() helpers steal through the same
/// protocol. `force_single_queue` (or num_run_queues = 1) restores the
/// single global FIFO for A/B comparison.
///
/// Thread-safety: Submit() may be called from any number of threads. The
/// submit and worker hot paths are lock-free: items flow through bounded
/// MPMC ring buffers, idle workers park on a condvar that producers only
/// touch when somebody actually sleeps, and queue occupancy is read from
/// the lock-free QueueState. The only mutex guards Start()/Stop()
/// lifecycle transitions.
class Stage {
 public:
  /// SubmitBatch() submitter hint meaning "use the calling thread's
  /// stripe token".
  static constexpr uint32_t kNoSubmitterHint = UINT32_MAX;

  struct Options {
    std::string name = "stage";
    size_t num_workers = 4;       ///< P: level of task parallelism.
    /// Hard memory bound on the logical FIFO, split evenly across the
    /// run queues (each ring rounds its share up to a power of two).
    size_t queue_capacity = 100'000;
    /// Number of run-queue shards; 0 = one per worker (capped at 64).
    /// More queues than workers is allowed — extra rings are drained via
    /// stealing (tests use this to pin items to a victim ring).
    size_t num_run_queues = 0;
    /// A/B knob: collapse to the pre-sharding single global FIFO (and a
    /// single counter stripe everywhere downstream).
    bool force_single_queue = false;
    /// When set, the stage publishes its counters/queue length under
    /// "stage.<name>.*" and records the estimate-vs-actual queue-wait
    /// error into "stage.<name>.est_wait_err_{under,over}_ns". The
    /// registry must outlive the stage. Optional.
    stats::MetricRegistry* metrics = nullptr;
    /// Flight recorder for sampled request traces; defaults to
    /// stats::FlightRecorder::Global() when tracing is compiled in.
    stats::FlightRecorder* recorder = nullptr;
    /// Tenant interner shared across the deployment's stages. When set,
    /// the policy context carries it so tenant-aware policies
    /// (TenantFairPolicy) can resolve weights and walk per-tenant state.
    /// Must outlive the stage. Null runs the stage single-tenant.
    const TenantRegistry* tenants = nullptr;
  };

  /// The query engine: processes one admitted item (runs on a worker
  /// thread). The handler may block (e.g. a broker waiting on shards).
  using Handler = std::function<void(WorkItem&)>;

  /// Builds the policy against the stage's own QueueState once that
  /// exists. Returning an error leaves the stage unusable (init_status()).
  using PolicyFactory =
      std::function<StatusOr<std::unique_ptr<AdmissionPolicy>>(
          const PolicyContext&)>;

  /// `registry` and `clock` must outlive the stage. The policy is built
  /// by `policy_factory` against this stage's QueueState; check
  /// init_status() afterwards. Call Start() before submitting.
  Stage(const Options& options, const QueryTypeRegistry* registry,
        Clock* clock, const PolicyFactory& policy_factory, Handler handler);
  ~Stage();

  /// OK when the policy factory succeeded.
  const Status& init_status() const { return init_status_; }

  Stage(const Stage&) = delete;
  Stage& operator=(const Stage&) = delete;

  /// Spawns the worker pool. Returns FailedPrecondition if already started.
  Status Start();

  /// Stops accepting work, drains or discards the queue, joins workers.
  /// Items still queued are completed with kShedded when `drain` is false.
  void Stop(bool drain = true);

  /// Runs the admission decision for `item` and either enqueues it (into
  /// the calling thread's preferred run queue) or completes it
  /// immediately with kRejected/kShedded. Returns the admission outcome
  /// (kCompleted means "admitted", delivery comes later via on_complete).
  Outcome Submit(WorkItem item);

  /// Per-batch outcome counts of SubmitBatch(). `admitted` items complete
  /// later via on_complete; `rejected`/`shedded` already completed inside
  /// the call.
  struct BatchResult {
    uint32_t admitted = 0;
    uint32_t rejected = 0;
    uint32_t shedded = 0;
  };

  /// Drains a whole batch of items through the admission policy in one
  /// pass — the per-wakeup submit path of the network front-end. Versus
  /// calling Submit() in a loop it takes one clock read, one enqueue-
  /// cursor reservation (a single CAS claims a contiguous ring block) and
  /// one worker-wakeup episode for the whole batch instead of one of each
  /// per item. The admission policy still decides every item individually
  /// and sees the exact same hook sequence (Decide, then OnRejected or
  /// OnEnqueued, with OnShedded when the bounded ring drops an accepted
  /// item), so per-type accounting is identical to the per-item path.
  ///
  /// `submitter` picks the run queue the whole batch lands in: a stable
  /// caller id (the network layer passes its event-loop id so each loop
  /// keeps feeding the same ring), or kNoSubmitterHint to use the calling
  /// thread's stripe token — both constant per calling thread, so one
  /// producer always targets one ring.
  ///
  /// Ordering: admitted items of one batch are pushed as one contiguous
  /// block of one ring and popped from it in batch order with nothing
  /// interleaved inside the block; concurrent submits with the same
  /// preferred ring land wholly before or after it, and submits to other
  /// rings never split the block. Dequeue start-order preserves the block
  /// order even when stolen (steals pop the victim ring's head). With
  /// more than one consumer, items of one batch can be *in flight*
  /// concurrently — that was already true of the single FIFO. When the
  /// ring lacks space, a FIFO prefix is enqueued and the remainder is
  /// shed (per-item OnShedded + on_complete(kShedded), preserving order).
  ///
  /// Items are moved from; the span's storage is the caller's parse
  /// scratch and is reusable once this returns.
  BatchResult SubmitBatch(std::span<WorkItem> items,
                          uint32_t submitter = kNoSubmitterHint);

  /// Like Submit(), but when the item is admitted and the whole stage is
  /// idle (nothing queued anywhere, so nothing would be overtaken), the
  /// item is processed synchronously on the calling thread instead of
  /// being handed to a worker: Points 1–3 and on_complete all fire before
  /// this returns. Falls back to the queued path when the stage is busy
  /// or stopping. The admission policy sees the exact same hook sequence
  /// either way (the inline path is an enqueue immediately followed by a
  /// dequeue), so per-type accounting and utilization charges land on
  /// this stage's policy regardless of which thread lends the CPU. Used
  /// by the cluster's scatter-gather to short-circuit single-shard rounds
  /// without a double thread hand-off.
  Outcome SubmitInline(WorkItem item);

  /// Pops and processes at most one queued item on the calling thread
  /// (Points 2–3 and on_complete run before this returns). Returns true
  /// when an item was run, false when every run queue was empty. Lets a
  /// thread blocked on work this stage owes it lend its CPU instead of
  /// parking (work-helping): the cluster's gather loop drains shard
  /// queues with this while its round is in flight. The helper steals
  /// through the same protocol as the workers — scan from the calling
  /// thread's preferred ring, pop the first non-empty ring's head — so
  /// per-ring FIFO order is preserved.
  bool TryRunOne();

  /// The stage's policy (for observability).
  AdmissionPolicy* policy() { return policy_.get(); }
  /// Live queue occupancy shared with the policy.
  const QueueState& queue_state() const { return queue_state_; }
  /// Sums the per-run-queue counter blocks into one snapshot.
  StageCounters counters() const;
  /// Current queue length.
  size_t QueueLength() const;
  /// Number of run-queue shards the stage resolved to.
  size_t num_run_queues() const { return queues_.size(); }
  /// Occupancy of one run queue (approximate; for tests/observability).
  size_t RunQueueLength(size_t queue) const;
  const Options& options() const { return options_; }

  /// Context to build a policy for this stage before construction.
  static PolicyContext MakeContext(const QueryTypeRegistry* registry,
                                   const QueueState* queue,
                                   size_t num_workers,
                                   size_t counter_stripes = 1,
                                   const TenantRegistry* tenants = nullptr) {
    return PolicyContext{registry, queue, num_workers, counter_stripes,
                         tenants};
  }

 private:
  /// Counter block owned by one run queue index; every thread writes the
  /// block of its home/preferred index so no two cores share a line.
  struct alignas(kCacheLineSize) QueueCounters {
    std::atomic<uint64_t> received{0};
    std::atomic<uint64_t> accepted{0};
    std::atomic<uint64_t> rejected{0};
    std::atomic<uint64_t> expired{0};
    std::atomic<uint64_t> shedded{0};
    std::atomic<uint64_t> completed{0};
  };
  struct RunQueue {
    explicit RunQueue(size_t capacity) : fifo(capacity) {}
    MpmcQueue<WorkItem> fifo;
    QueueCounters counters;
  };

  static size_t ResolveRunQueues(const Options& options);
  /// The ring a submitter feeds: hint mod ring count, or the calling
  /// thread's stripe.
  size_t PreferredQueue(uint32_t submitter) const {
    if (submitter == kNoSubmitterHint) return StripeOf(queues_.size());
    return queues_.size() == 1 ? 0 : submitter % queues_.size();
  }
  /// Pops from `home` first, then steals scanning the other rings in
  /// index order. Returns false when every ring is empty.
  bool PopAny(size_t home, WorkItem& out);
  bool AnyQueueNonEmpty() const;

  Outcome SubmitImpl(WorkItem item, bool allow_inline);
  /// Admission-time observability: decides trace sampling, stamps the
  /// policy's queue-wait estimate when someone will consume it, and
  /// emits the kAdmission event. Called after Decide().
  void StampAdmission(WorkItem& item, Nanos now, RejectReason reason);
  /// Emits a single-kind event for `item` (shed/expired/dequeue).
  void TraceOutcome(const WorkItem& item, Nanos now, stats::TraceEventKind kind,
                    Nanos arg0 = 0, Nanos arg1 = 0);
  void WorkerLoop(size_t worker_index);
  /// Runs Points 2–3 for one popped item: dequeue bookkeeping, deadline
  /// check, handler, completion. `counters` is the executing thread's
  /// home counter block.
  void ProcessItem(WorkItem& item, QueueCounters& counters);
  /// Pops every queued item from every ring and completes it with
  /// kShedded (shutdown discard path; also catches items a Submit()
  /// raced in after the workers exited, so every admitted item
  /// terminates exactly once).
  void DrainAsShedded();

  Options options_;
  const QueryTypeRegistry* registry_;
  Clock* clock_;
  QueueState queue_state_;
  std::unique_ptr<AdmissionPolicy> policy_;
  Status init_status_;
  Handler handler_;

  /// The run-queue shards; fixed after construction.
  std::vector<std::unique_ptr<RunQueue>> queues_;
  ParkingLot idle_workers_;
  std::atomic<bool> stopping_{false};

  std::mutex lifecycle_mu_;  ///< Guards started_ / workers_ only.
  bool started_ = false;
  std::vector<std::thread> workers_;

  stats::FlightRecorder* recorder_ = nullptr;
  stats::Histogram* est_err_under_ = nullptr;  ///< actual > estimate.
  stats::Histogram* est_err_over_ = nullptr;   ///< actual < estimate.
  uint64_t collector_handle_ = 0;
};

/// Helper that builds a Stage together with its policy in one call: the
/// policy needs the stage's QueueState, which needs the stage... This
/// factory owns the chicken-and-egg wiring. Returns the stage (policy
/// attached) or the policy-construction error.
class StageBuilder {
 public:
  StageBuilder& SetOptions(const Stage::Options& options) {
    options_ = options;
    return *this;
  }
  StageBuilder& SetRegistry(const QueryTypeRegistry* registry) {
    registry_ = registry;
    return *this;
  }
  StageBuilder& SetClock(Clock* clock) {
    clock_ = clock;
    return *this;
  }
  StageBuilder& SetPolicyConfig(const PolicyConfig& config) {
    policy_config_ = config;
    return *this;
  }
  StageBuilder& SetHandler(Stage::Handler handler) {
    handler_ = std::move(handler);
    return *this;
  }

  /// Builds and returns the stage (not yet started).
  StatusOr<std::unique_ptr<Stage>> Build();

 private:
  Stage::Options options_;
  const QueryTypeRegistry* registry_ = nullptr;
  Clock* clock_ = nullptr;
  PolicyConfig policy_config_;
  Stage::Handler handler_;
};

}  // namespace bouncer::server

#endif  // BOUNCER_SERVER_STAGE_H_
