#include "src/sim/experiment.h"

namespace bouncer::sim {
namespace {

void AccumulateStats(const TypeStats& in, double weight, TypeStats* out) {
  out->name = in.name;
  out->received += in.received;
  out->accepted += in.accepted;
  out->rejected += in.rejected;
  out->completed += in.completed;
  out->expired += in.expired;
  out->useless += in.useless;
  out->rejection_pct += weight * in.rejection_pct;
  out->rt_mean_ms += weight * in.rt_mean_ms;
  out->rt_p50_ms += weight * in.rt_p50_ms;
  out->rt_p90_ms += weight * in.rt_p90_ms;
  out->rt_p99_ms += weight * in.rt_p99_ms;
  out->pt_p50_ms += weight * in.pt_p50_ms;
  out->pt_p90_ms += weight * in.pt_p90_ms;
  out->wt_p50_ms += weight * in.wt_p50_ms;
}

}  // namespace

SimulationResult RunAveraged(const workload::WorkloadSpec& workload,
                             const SimulationConfig& config,
                             const PolicyConfig& policy_config, int runs) {
  runs = runs < 1 ? 1 : runs;
  SimulationResult aggregate;
  const double weight = 1.0 / runs;
  for (int r = 0; r < runs; ++r) {
    SimulationConfig run_config = config;
    run_config.seed = config.seed + static_cast<uint64_t>(r) * 7919;
    Simulator simulator(workload, run_config, policy_config);
    const SimulationResult result = simulator.Run();
    if (aggregate.per_type.empty()) {
      aggregate.per_type.resize(result.per_type.size());
    }
    for (size_t i = 0; i < result.per_type.size(); ++i) {
      AccumulateStats(result.per_type[i], weight, &aggregate.per_type[i]);
    }
    AccumulateStats(result.overall, weight, &aggregate.overall);
    aggregate.utilization += weight * result.utilization;
    aggregate.measured_seconds += weight * result.measured_seconds;
    aggregate.wasted_work_fraction += weight * result.wasted_work_fraction;
    aggregate.offered_qps = result.offered_qps;
  }
  return aggregate;
}

std::vector<SweepPoint> SweepLoadFactors(
    const workload::WorkloadSpec& workload, const SimulationConfig& base,
    const PolicyConfig& policy_config, const std::vector<double>& factors,
    int runs) {
  const double full_load = workload.FullLoadQps(base.parallelism);
  std::vector<SweepPoint> points;
  points.reserve(factors.size());
  for (double factor : factors) {
    SimulationConfig config = base;
    config.arrival_rate_qps = factor * full_load;
    SweepPoint point;
    point.load_factor = factor;
    point.offered_qps = config.arrival_rate_qps;
    point.result = RunAveraged(workload, config, policy_config, runs);
    points.push_back(std::move(point));
  }
  return points;
}

std::vector<double> PaperLoadFactors() {
  return {0.9,  0.95, 1.0,  1.05, 1.1,  1.15, 1.2,
          1.25, 1.3,  1.35, 1.4,  1.45, 1.5};
}

}  // namespace bouncer::sim
