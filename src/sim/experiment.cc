#include "src/sim/experiment.h"

namespace bouncer::sim {
namespace {

void AccumulateStats(const TypeStats& in, double weight, TypeStats* out) {
  out->name = in.name;
  out->received += in.received;
  out->accepted += in.accepted;
  out->rejected += in.rejected;
  out->completed += in.completed;
  out->expired += in.expired;
  out->useless += in.useless;
  out->rejection_pct += weight * in.rejection_pct;
  out->rt_mean_ms += weight * in.rt_mean_ms;
  out->rt_p50_ms += weight * in.rt_p50_ms;
  out->rt_p90_ms += weight * in.rt_p90_ms;
  out->rt_p99_ms += weight * in.rt_p99_ms;
  out->pt_p50_ms += weight * in.pt_p50_ms;
  out->pt_p90_ms += weight * in.pt_p90_ms;
  out->wt_p50_ms += weight * in.wt_p50_ms;
}

/// Seed for run `r` of a cell whose base config carries seed `base`.
uint64_t RunSeed(uint64_t base, int r) {
  return base + static_cast<uint64_t>(r) * 7919;
}

/// Averages the per-seed results of one cell, in seed order. The
/// floating-point operation sequence matches the historical serial
/// RunAveraged loop exactly, so parallel execution changes nothing.
SimulationResult Aggregate(const SimulationResult* results, int runs) {
  SimulationResult aggregate;
  const double weight = 1.0 / runs;
  for (int r = 0; r < runs; ++r) {
    const SimulationResult& result = results[r];
    if (aggregate.per_type.empty()) {
      aggregate.per_type.resize(result.per_type.size());
    }
    for (size_t i = 0; i < result.per_type.size(); ++i) {
      AccumulateStats(result.per_type[i], weight, &aggregate.per_type[i]);
    }
    AccumulateStats(result.overall, weight, &aggregate.overall);
    aggregate.utilization += weight * result.utilization;
    aggregate.measured_seconds += weight * result.measured_seconds;
    aggregate.wasted_work_fraction += weight * result.wasted_work_fraction;
    aggregate.offered_qps = result.offered_qps;
    aggregate.events_processed += result.events_processed;
  }
  return aggregate;
}

}  // namespace

SimulationResult RunAveraged(const workload::WorkloadSpec& workload,
                             const SimulationConfig& config,
                             const PolicyConfig& policy_config, int runs) {
  runs = runs < 1 ? 1 : runs;
  std::vector<SimJob> jobs(static_cast<size_t>(runs));
  for (int r = 0; r < runs; ++r) {
    jobs[r].workload = &workload;
    jobs[r].config = config;
    jobs[r].config.seed = RunSeed(config.seed, r);
    jobs[r].policy = policy_config;
  }
  const auto results = RunJobs(jobs);
  return Aggregate(results.data(), runs);
}

std::vector<std::vector<SweepPoint>> SweepPolicyGrid(
    const workload::WorkloadSpec& workload, const SimulationConfig& base,
    const std::vector<PolicyConfig>& policies,
    const std::vector<double>& factors, int runs) {
  runs = runs < 1 ? 1 : runs;
  const double full_load = workload.FullLoadQps(base.parallelism);

  // Flatten (policy × factor × seed) into one batch, ordered so that
  // jobs[(p * factors + f) * runs + r] is run r of policy p at factor f.
  std::vector<SimJob> jobs;
  jobs.reserve(policies.size() * factors.size() * static_cast<size_t>(runs));
  for (const PolicyConfig& policy : policies) {
    for (double factor : factors) {
      for (int r = 0; r < runs; ++r) {
        SimJob job;
        job.workload = &workload;
        job.config = base;
        job.config.arrival_rate_qps = factor * full_load;
        job.config.seed = RunSeed(base.seed, r);
        job.policy = policy;
        jobs.push_back(std::move(job));
      }
    }
  }
  const auto results = RunJobs(jobs);

  std::vector<std::vector<SweepPoint>> sweeps(policies.size());
  size_t cell = 0;
  for (size_t p = 0; p < policies.size(); ++p) {
    sweeps[p].reserve(factors.size());
    for (double factor : factors) {
      SweepPoint point;
      point.load_factor = factor;
      point.offered_qps = factor * full_load;
      point.result = Aggregate(&results[cell * runs], runs);
      sweeps[p].push_back(std::move(point));
      ++cell;
    }
  }
  return sweeps;
}

std::vector<SweepPoint> SweepLoadFactors(
    const workload::WorkloadSpec& workload, const SimulationConfig& base,
    const PolicyConfig& policy_config, const std::vector<double>& factors,
    int runs) {
  auto sweeps = SweepPolicyGrid(workload, base, {policy_config}, factors, runs);
  return std::move(sweeps.front());
}

std::vector<double> PaperLoadFactors() {
  return {0.9,  0.95, 1.0,  1.05, 1.1,  1.15, 1.2,
          1.25, 1.3,  1.35, 1.4,  1.45, 1.5};
}

}  // namespace bouncer::sim
