#ifndef BOUNCER_SIM_EXPERIMENT_H_
#define BOUNCER_SIM_EXPERIMENT_H_

#include <vector>

#include "src/sim/parallel_runner.h"
#include "src/sim/simulator.h"

namespace bouncer::sim {

/// Averages `runs` independent simulation runs (different seeds derived
/// from config.seed), mirroring the paper's "average of 5 simulation
/// runs" table cells. Counters are summed; rates, utilization and
/// percentile latencies are averaged across runs.
///
/// Runs fan out across DefaultJobs() threads (BOUNCER_BENCH_JOBS);
/// aggregation order is fixed by seed index, so the result is
/// bit-identical to a serial execution.
SimulationResult RunAveraged(const workload::WorkloadSpec& workload,
                             const SimulationConfig& config,
                             const PolicyConfig& policy_config, int runs);

/// One point of a load sweep: the offered load as a multiple of
/// QPS_full_load, and the (averaged) simulation outcome.
struct SweepPoint {
  double load_factor = 0.0;
  double offered_qps = 0.0;
  SimulationResult result;
};

/// Runs `policy_config` across the given multiples of QPS_full_load
/// (paper §5.3 uses 0.9x..1.5x). `base.arrival_rate_qps` is overwritten
/// per point. The (load-factor × seed) cells fan out in parallel; see
/// RunAveraged for the determinism contract.
std::vector<SweepPoint> SweepLoadFactors(
    const workload::WorkloadSpec& workload, const SimulationConfig& base,
    const PolicyConfig& policy_config, const std::vector<double>& factors,
    int runs);

/// Full study grid: every policy swept over every load factor, the
/// (policy × load-factor × seed) cells flattened into one parallel batch
/// so a multi-policy figure keeps all cores busy end to end. Returns one
/// sweep (index-aligned with `factors`) per entry of `policies`. Each
/// returned point is bit-identical to what a serial SweepLoadFactors
/// call for that policy would produce.
std::vector<std::vector<SweepPoint>> SweepPolicyGrid(
    const workload::WorkloadSpec& workload, const SimulationConfig& base,
    const std::vector<PolicyConfig>& policies,
    const std::vector<double>& factors, int runs);

/// The paper's load-factor grid 0.9, 0.95, ..., 1.5 (13 points).
std::vector<double> PaperLoadFactors();

}  // namespace bouncer::sim

#endif  // BOUNCER_SIM_EXPERIMENT_H_
