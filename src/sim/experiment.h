#ifndef BOUNCER_SIM_EXPERIMENT_H_
#define BOUNCER_SIM_EXPERIMENT_H_

#include <vector>

#include "src/sim/simulator.h"

namespace bouncer::sim {

/// Averages `runs` independent simulation runs (different seeds derived
/// from config.seed), mirroring the paper's "average of 5 simulation
/// runs" table cells. Counters are summed; rates, utilization and
/// percentile latencies are averaged across runs.
SimulationResult RunAveraged(const workload::WorkloadSpec& workload,
                             const SimulationConfig& config,
                             const PolicyConfig& policy_config, int runs);

/// One point of a load sweep: the offered load as a multiple of
/// QPS_full_load, and the (averaged) simulation outcome.
struct SweepPoint {
  double load_factor = 0.0;
  double offered_qps = 0.0;
  SimulationResult result;
};

/// Runs `policy_config` across the given multiples of QPS_full_load
/// (paper §5.3 uses 0.9x..1.5x). `base.arrival_rate_qps` is overwritten
/// per point.
std::vector<SweepPoint> SweepLoadFactors(
    const workload::WorkloadSpec& workload, const SimulationConfig& base,
    const PolicyConfig& policy_config, const std::vector<double>& factors,
    int runs);

/// The paper's load-factor grid 0.9, 0.95, ..., 1.5 (13 points).
std::vector<double> PaperLoadFactors();

}  // namespace bouncer::sim

#endif  // BOUNCER_SIM_EXPERIMENT_H_
