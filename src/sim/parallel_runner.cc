#include "src/sim/parallel_runner.h"

#include <atomic>
#include <cassert>
#include <cstdlib>
#include <thread>

namespace bouncer::sim {

int DefaultJobs() {
  if (const char* env = std::getenv("BOUNCER_BENCH_JOBS")) {
    const int jobs = std::atoi(env);
    if (jobs > 0) return jobs;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

namespace {

SimulationResult RunOne(const SimJob& job) {
  assert(job.workload != nullptr);
  Simulator simulator(*job.workload, job.config, job.policy);
  return simulator.Run();
}

}  // namespace

std::vector<SimulationResult> RunJobs(const std::vector<SimJob>& jobs,
                                      int num_threads) {
  if (num_threads <= 0) num_threads = DefaultJobs();
  std::vector<SimulationResult> results(jobs.size());
  if (jobs.empty()) return results;

  if (num_threads == 1 || jobs.size() == 1) {
    for (size_t i = 0; i < jobs.size(); ++i) results[i] = RunOne(jobs[i]);
    return results;
  }

  // Work-stealing by atomic cursor: cells vary widely in cost (a 1.5x
  // overload cell simulates far more queueing than a 0.9x one), so
  // dynamic assignment beats static striping. Results land at their
  // job's index, which makes completion order irrelevant.
  std::atomic<size_t> next{0};
  const size_t workers =
      std::min(static_cast<size_t>(num_threads), jobs.size());
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&jobs, &results, &next] {
      for (;;) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= jobs.size()) return;
        results[i] = RunOne(jobs[i]);
      }
    });
  }
  for (auto& t : pool) t.join();
  return results;
}

}  // namespace bouncer::sim
