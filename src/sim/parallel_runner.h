#ifndef BOUNCER_SIM_PARALLEL_RUNNER_H_
#define BOUNCER_SIM_PARALLEL_RUNNER_H_

#include <vector>

#include "src/sim/simulator.h"

namespace bouncer::sim {

/// One independent simulation cell of an experiment grid: a (policy ×
/// load-factor × seed) point. Each cell builds its own Simulator — with
/// its own registry, queue state, policy, and Rng — so cells share
/// nothing and can run on any thread.
struct SimJob {
  /// Workload the cell samples from. Not owned; must outlive RunJobs().
  const workload::WorkloadSpec* workload = nullptr;
  SimulationConfig config;
  PolicyConfig policy;
};

/// Number of worker threads experiment fan-out uses by default: the
/// BOUNCER_BENCH_JOBS environment variable when set to a positive
/// integer, otherwise std::thread::hardware_concurrency(). Always >= 1.
int DefaultJobs();

/// Runs every job and returns the results index-aligned with `jobs`.
///
/// `num_threads` <= 0 means DefaultJobs(). With one thread the jobs run
/// inline on the caller's thread; with more, a pool of workers pulls
/// jobs off a shared atomic cursor. Either way the result vector is
/// ordered by job index, and because each cell is hermetic (seeded Rng,
/// private policy/registry/queue state) the outcome of every cell is
/// bit-identical regardless of thread count or completion order.
std::vector<SimulationResult> RunJobs(const std::vector<SimJob>& jobs,
                                      int num_threads = 0);

}  // namespace bouncer::sim

#endif  // BOUNCER_SIM_PARALLEL_RUNNER_H_
