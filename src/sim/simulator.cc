#include "src/sim/simulator.h"

#include <algorithm>
#include <cassert>

namespace bouncer::sim {

void Simulator::FifoRing::Rebuild(size_t capacity) {
  size_t pow2 = 64;
  while (pow2 < capacity) pow2 <<= 1;
  std::vector<QueuedQuery> fresh(pow2);
  for (size_t i = 0; i < size_; ++i) {
    fresh[i] = slots_[(head_ + i) & mask_];
  }
  slots_ = std::move(fresh);
  mask_ = pow2 - 1;
  head_ = 0;
}

Simulator::Simulator(const workload::WorkloadSpec& workload,
                     const SimulationConfig& config,
                     const PolicyConfig& policy_config)
    : workload_(workload),
      config_(config),
      registry_(workload.size() > 0 ? workload.type(0).slo : Slo{}),
      type_ids_(),
      queue_state_(workload.size() + 1),  // +1 for the default type.
      rng_(config.seed) {
  type_ids_ = workload_.PopulateRegistry(&registry_);
  PolicyContext context{&registry_, &queue_state_, config_.parallelism};
  auto policy = CreatePolicy(policy_config, context);
  assert(policy.ok());
  policy_ = std::move(*policy);

  // Pre-reserve every per-run container so the event loop never
  // reallocates mid-run. The event heap holds at most one pending
  // arrival plus `parallelism` in-flight completions; the in-flight slab
  // and its free list never exceed `parallelism` slots.
  {
    std::vector<Event> storage;
    storage.reserve(config_.parallelism + 2);
    events_ = decltype(events_)(std::greater<Event>(), std::move(storage));
  }
  in_flight_.reserve(config_.parallelism);
  free_slots_.reserve(config_.parallelism);

  use_fifo_ring_ = config_.discipline == QueueDiscipline::kFifo &&
                   !config_.force_heap_queue;
  if (use_fifo_ring_) {
    fifo_queue_.Reserve(std::min<uint64_t>(config_.total_queries, 4096));
  }

  counters_.resize(workload_.size());
  const uint64_t measured =
      config_.total_queries > config_.warmup_queries
          ? config_.total_queries - config_.warmup_queries
          : 0;
  for (size_t i = 0; i < workload_.size(); ++i) {
    TypeCounters& c = counters_[i];
    switch (config_.stats_mode) {
      case StatsMode::kExactSamples: {
        // Size each series to the type's expected measured share so the
        // sample vectors are allocated once, up front.
        const auto expect = static_cast<size_t>(
            static_cast<double>(measured) * workload_.type(i).proportion) +
            16;
        c.rt_ms.Reserve(expect);
        c.pt_ms.Reserve(expect);
        c.wt_ms.Reserve(expect);
        break;
      }
      case StatsMode::kStreamingSummary:
        c.rt_hist = std::make_unique<stats::Histogram>();
        c.pt_hist = std::make_unique<stats::Histogram>();
        c.wt_hist = std::make_unique<stats::Histogram>();
        break;
      case StatsMode::kNone:
        break;
    }
  }
  if (config_.stats_mode == StatsMode::kStreamingSummary) {
    all_rt_hist_ = std::make_unique<stats::Histogram>();
    all_pt_hist_ = std::make_unique<stats::Histogram>();
  }

  // Queue-order key per type: 0 for FIFO (pure arrival order), the mean
  // processing time for SJF, the configured priority for kPriority.
  order_keys_.assign(workload_.size(), 0);
  switch (config_.discipline) {
    case QueueDiscipline::kFifo:
      break;
    case QueueDiscipline::kShortestJobFirst:
      for (size_t i = 0; i < workload_.size(); ++i) {
        order_keys_[i] =
            static_cast<int64_t>(workload_.type(i).processing_time.Mean());
      }
      break;
    case QueueDiscipline::kPriority:
      for (size_t i = 0; i < workload_.size(); ++i) {
        order_keys_[i] = i < config_.type_priorities.size()
                             ? config_.type_priorities[i]
                             : 0;
      }
      break;
  }
}

void Simulator::SetTickCallback(Nanos interval, TickCallback callback) {
  tick_interval_ = interval;
  tick_callback_ = std::move(callback);
  next_tick_ = interval;
}

std::pair<uint64_t, uint64_t> Simulator::LiveTypeCounts(size_t i) const {
  if (i >= counters_.size()) return {0, 0};
  return {counters_[i].received, counters_[i].rejected};
}

void Simulator::AccumulateBusy(Nanos now) {
  if (measure_start_ >= 0) {
    const Nanos start = std::max(last_busy_change_, measure_start_);
    Nanos end = now;
    if (last_arrival_time_ > 0) end = std::min(end, last_arrival_time_);
    if (end > start) {
      busy_integral_ns_ +=
          static_cast<double>(busy_) * static_cast<double>(end - start);
    }
  }
  last_busy_change_ = now;
}

void Simulator::HandleArrival(Nanos now) {
  const uint64_t index = generated_++;
  if (generated_ < config_.total_queries) {
    const double mean_gap = kSecond / config_.arrival_rate_qps;
    const Nanos gap = std::max<Nanos>(
        1, static_cast<Nanos>(rng_.NextExponential(mean_gap)));
    events_.push(Event{now + gap, Event::Kind::kArrival, 0});
  } else {
    last_arrival_time_ = now;  // Utilization window closes here.
  }

  const bool measured = index >= config_.warmup_queries;
  if (measured && measure_start_ < 0) measure_start_ = now;

  const auto type_index = static_cast<uint32_t>(workload_.SampleType(rng_));
  const QueryTypeId id = type_ids_[type_index];
  if (measured) ++counters_[type_index].received;

  const Decision decision = policy_->Decide(id, now);
  if (decision == Decision::kAccept) {
    if (measured) ++counters_[type_index].accepted;
    queue_state_.OnEnqueued(id);
    policy_->OnEnqueued(id, now);
    QueuePush(QueuedQuery{type_index, now, measured,
                          order_keys_[type_index], next_sequence_++});
    if (busy_ < config_.parallelism) StartNext(now);
  } else {
    if (measured) ++counters_[type_index].rejected;
    policy_->OnRejected(id, now);
  }
}

void Simulator::StartNext(Nanos now) {
  assert(!QueueEmpty());
  // Pull queued queries until one that has not expired is found (the
  // framework drops expired queries at dequeue without processing them,
  // matching the server Stage and LIquid's expiration enforcement).
  QueuedQuery q{};
  while (true) {
    if (QueueEmpty()) return;
    q = QueuePop();
    const QueryTypeId expired_id = type_ids_[q.type_index];
    if (config_.deadline > 0 && now > q.enqueued + config_.deadline) {
      queue_state_.OnDequeued(expired_id);
      policy_->OnDequeued(expired_id, now - q.enqueued, now);
      if (q.measured) ++counters_[q.type_index].expired;
      continue;
    }
    break;
  }
  const QueryTypeId id = type_ids_[q.type_index];
  queue_state_.OnDequeued(id);
  policy_->OnDequeued(id, now - q.enqueued, now);

  const Nanos pt = std::max<Nanos>(
      1, workload_.SampleProcessingTime(q.type_index, rng_));
  uint64_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = in_flight_.size();
    in_flight_.emplace_back();
  }
  in_flight_[slot] =
      InFlight{q.type_index, q.enqueued, now, pt, q.measured};

  AccumulateBusy(now);
  ++busy_;
  events_.push(Event{now + pt, Event::Kind::kCompletion, slot});
}

void Simulator::RecordLatencies(const InFlight& rec) {
  TypeCounters& c = counters_[rec.type_index];
  const Nanos wt = rec.dequeued - rec.enqueued;
  switch (config_.stats_mode) {
    case StatsMode::kExactSamples:
      c.rt_ms.Add(ToMillis(wt + rec.processing));
      c.pt_ms.Add(ToMillis(rec.processing));
      c.wt_ms.Add(ToMillis(wt));
      break;
    case StatsMode::kStreamingSummary:
      c.rt_hist->Record(wt + rec.processing);
      c.pt_hist->Record(rec.processing);
      c.wt_hist->Record(wt);
      all_rt_hist_->Record(wt + rec.processing);
      all_pt_hist_->Record(rec.processing);
      break;
    case StatsMode::kNone:
      break;
  }
}

void Simulator::HandleCompletion(Nanos now, uint64_t slot) {
  const InFlight rec = in_flight_[slot];
  free_slots_.push_back(slot);
  const QueryTypeId id = type_ids_[rec.type_index];
  policy_->OnCompleted(id, rec.processing, now);

  AccumulateBusy(now);
  --busy_;

  if (rec.measured) {
    TypeCounters& c = counters_[rec.type_index];
    ++c.completed;
    total_work_ns_ += static_cast<double>(rec.processing);
    if (config_.deadline > 0 && now > rec.enqueued + config_.deadline) {
      // Processed, but the client's deadline already passed: the work
      // was useless (paper §2's wasted-work motivation).
      ++c.useless;
      wasted_work_ns_ += static_cast<double>(rec.processing);
    }
    RecordLatencies(rec);
  }
  if (!QueueEmpty() && busy_ < config_.parallelism) StartNext(now);
}

SimulationResult Simulator::Run() {
  assert(config_.arrival_rate_qps > 0.0);
  assert(workload_.size() > 0);

  events_.push(Event{0, Event::Kind::kArrival, 0});
  while (!events_.empty()) {
    const Event event = events_.top();
    // Fire ticks that precede this event.
    while (tick_callback_ && next_tick_ <= event.time) {
      tick_callback_(next_tick_);
      next_tick_ += tick_interval_;
    }
    events_.pop();
    ++events_processed_;
    if (event.kind == Event::Kind::kArrival) {
      HandleArrival(event.time);
    } else {
      HandleCompletion(event.time, event.completion_id);
    }
  }

  SimulationResult result;
  result.offered_qps = config_.arrival_rate_qps;
  result.events_processed = events_processed_;
  const Nanos window_end =
      last_arrival_time_ > 0 ? last_arrival_time_ : last_busy_change_;
  const Nanos window =
      measure_start_ >= 0 ? window_end - measure_start_ : 0;
  result.measured_seconds = ToSeconds(std::max<Nanos>(window, 0));
  if (window > 0) {
    result.utilization =
        busy_integral_ns_ / (static_cast<double>(config_.parallelism) *
                             static_cast<double>(window));
  }

  const bool streaming = config_.stats_mode == StatsMode::kStreamingSummary;
  stats::SampleSummary all_rt;
  stats::SampleSummary all_pt;
  result.per_type.resize(workload_.size());
  TypeStats& overall = result.overall;
  overall.name = "ALL";
  for (size_t i = 0; i < workload_.size(); ++i) {
    TypeCounters& c = counters_[i];
    TypeStats& t = result.per_type[i];
    t.name = workload_.type(i).name;
    t.received = c.received;
    t.accepted = c.accepted;
    t.rejected = c.rejected;
    t.completed = c.completed;
    t.expired = c.expired;
    t.useless = c.useless;
    t.rejection_pct =
        c.received == 0
            ? 0.0
            : 100.0 * static_cast<double>(c.rejected) /
                  static_cast<double>(c.received);
    if (streaming) {
      t.rt_mean_ms = ToMillis(c.rt_hist->Mean());
      t.rt_p50_ms = ToMillis(c.rt_hist->Percentile(0.50));
      t.rt_p90_ms = ToMillis(c.rt_hist->Percentile(0.90));
      t.rt_p99_ms = ToMillis(c.rt_hist->Percentile(0.99));
      t.pt_p50_ms = ToMillis(c.pt_hist->Percentile(0.50));
      t.pt_p90_ms = ToMillis(c.pt_hist->Percentile(0.90));
      t.wt_p50_ms = ToMillis(c.wt_hist->Percentile(0.50));
    } else {
      t.rt_mean_ms = c.rt_ms.Mean();
      t.rt_p50_ms = c.rt_ms.Percentile(0.50);
      t.rt_p90_ms = c.rt_ms.Percentile(0.90);
      t.rt_p99_ms = c.rt_ms.Percentile(0.99);
      t.pt_p50_ms = c.pt_ms.Percentile(0.50);
      t.pt_p90_ms = c.pt_ms.Percentile(0.90);
      t.wt_p50_ms = c.wt_ms.Percentile(0.50);
    }

    overall.received += c.received;
    overall.accepted += c.accepted;
    overall.rejected += c.rejected;
    overall.completed += c.completed;
    overall.expired += c.expired;
    overall.useless += c.useless;
    if (!streaming) {
      for (double v : c.rt_ms.samples()) all_rt.Add(v);
      for (double v : c.pt_ms.samples()) all_pt.Add(v);
    }
  }
  overall.rejection_pct =
      overall.received == 0
          ? 0.0
          : 100.0 * static_cast<double>(overall.rejected) /
                static_cast<double>(overall.received);
  if (total_work_ns_ > 0.0) {
    result.wasted_work_fraction = wasted_work_ns_ / total_work_ns_;
  }
  if (streaming) {
    overall.rt_mean_ms = ToMillis(all_rt_hist_->Mean());
    overall.rt_p50_ms = ToMillis(all_rt_hist_->Percentile(0.50));
    overall.rt_p90_ms = ToMillis(all_rt_hist_->Percentile(0.90));
    overall.rt_p99_ms = ToMillis(all_rt_hist_->Percentile(0.99));
    overall.pt_p50_ms = ToMillis(all_pt_hist_->Percentile(0.50));
    overall.pt_p90_ms = ToMillis(all_pt_hist_->Percentile(0.90));
  } else {
    overall.rt_mean_ms = all_rt.Mean();
    overall.rt_p50_ms = all_rt.Percentile(0.50);
    overall.rt_p90_ms = all_rt.Percentile(0.90);
    overall.rt_p99_ms = all_rt.Percentile(0.99);
    overall.pt_p50_ms = all_pt.Percentile(0.50);
    overall.pt_p90_ms = all_pt.Percentile(0.90);
  }
  return result;
}

}  // namespace bouncer::sim
