#ifndef BOUNCER_SIM_SIMULATOR_H_
#define BOUNCER_SIM_SIMULATOR_H_

#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "src/core/admission_policy.h"
#include "src/core/policy_factory.h"
#include "src/core/query_type_registry.h"
#include "src/core/queue_state.h"
#include "src/stats/histogram.h"
#include "src/stats/summary.h"
#include "src/util/rng.h"
#include "src/workload/workload_spec.h"

namespace bouncer::sim {

/// Order in which admitted queries leave the queue. The paper's systems
/// process queries in FIFO order; evaluating other disciplines is listed
/// as future work (§7) and supported here.
enum class QueueDiscipline : uint8_t {
  kFifo = 0,
  /// Non-preemptive shortest-job-first on the type's mean processing
  /// time (the discipline Gatekeeper uses, paper §6); FIFO within a type.
  kShortestJobFirst = 1,
  /// Per-type priorities (lower value = served first); FIFO within a
  /// priority level.
  kPriority = 2,
};

/// How the simulator summarizes per-query rt/pt/wt measurements.
enum class StatsMode : uint8_t {
  /// Raw samples, exact percentiles. Memory is ~8 bytes per measured
  /// query per series — the default, and what EXPERIMENTS.md numbers use.
  kExactSamples = 0,
  /// Streaming stats::Histogram per series: constant memory per cell
  /// (~9 KB per histogram) at the histogram's ~3% relative percentile
  /// error. For paper-scale sweeps where exactness is not needed.
  kStreamingSummary = 1,
  /// No latency series at all; counters and utilization only.
  kNone = 2,
};

/// Simulation parameters (paper §5.3): a host with P query engine
/// processes fed by open-loop Poisson traffic drawn from a typed mix.
struct SimulationConfig {
  size_t parallelism = 100;        ///< P query engine processes.
  double arrival_rate_qps = 0.0;   ///< Offered load λ.
  uint64_t total_queries = 1'500'000;  ///< Arrivals generated per run.
  /// Arrivals excluded from metrics while histograms and windows warm up.
  uint64_t warmup_queries = 100'000;
  uint64_t seed = 1;
  StatsMode stats_mode = StatsMode::kExactSamples;
  /// Forces the generic heap-backed admitted-query queue even under
  /// kFifo, bypassing the O(1) FIFO ring fast path. The two paths are
  /// behaviorally identical; this knob exists so tests and
  /// bench_sim_throughput can compare them.
  bool force_heap_queue = false;
  /// Relative deadline clients give their queries (0 = none). A query
  /// still queued past its deadline is dropped without processing
  /// (expired); one that completes past it was processed uselessly —
  /// the wasted work the paper's §2 motivates early rejection with.
  Nanos deadline = 0;
  QueueDiscipline discipline = QueueDiscipline::kFifo;
  /// For kPriority: priority per workload type index (missing = 0).
  std::vector<int> type_priorities;
};

/// Per-type outcome of a run. Times are reported in milliseconds.
struct TypeStats {
  std::string name;
  uint64_t received = 0;   ///< Measured arrivals of this type.
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  uint64_t completed = 0;
  /// Admitted but dropped unprocessed: the deadline passed in the queue.
  uint64_t expired = 0;
  /// Completed after the deadline: processed, but the client had given up.
  uint64_t useless = 0;
  double rejection_pct = 0.0;  ///< 100 * rejected / received.
  double rt_mean_ms = 0.0;
  double rt_p50_ms = 0.0;
  double rt_p90_ms = 0.0;
  double rt_p99_ms = 0.0;
  double pt_p50_ms = 0.0;  ///< Median processing time of serviced queries.
  double pt_p90_ms = 0.0;
  double wt_p50_ms = 0.0;  ///< Median queue wait of serviced queries.
};

/// Result of one simulation run.
struct SimulationResult {
  std::vector<TypeStats> per_type;  ///< Index-aligned with the workload.
  TypeStats overall;                ///< Aggregated across types.
  double utilization = 0.0;  ///< Busy-process-time / (P × measured span).
  double measured_seconds = 0.0;  ///< Span of the measurement window.
  double offered_qps = 0.0;       ///< Configured arrival rate.
  /// Fraction of total processing time spent on queries that completed
  /// past their deadline (0 when no deadline is configured).
  double wasted_work_fraction = 0.0;
  /// Discrete events (arrivals + completions) the run processed; the
  /// numerator of the events/sec throughput the sim bench tracks.
  uint64_t events_processed = 0;
};

/// Discrete-event simulator of the admission-control framework in paper
/// Fig. 1 — the C++ rebuild of the paper's Python simulator (§5.3). It
/// models an ideal parallel query engine: P processes take admitted
/// queries from one FIFO queue first-come first-served; processing times
/// are sampled from the workload's per-type lognormal distributions;
/// inter-arrival times are exponential.
///
/// The simulator owns the registry (types from the workload spec), the
/// QueueState, and the policy built from a PolicyConfig; `now` flows from
/// event timestamps into the policy, so the same policy code runs under
/// simulated and wall-clock time.
class Simulator {
 public:
  /// Observer invoked every `interval` of simulated time; receives the
  /// current simulated time. Use policy() to inspect estimates.
  using TickCallback = std::function<void(Nanos now)>;

  Simulator(const workload::WorkloadSpec& workload,
            const SimulationConfig& config, const PolicyConfig& policy_config);

  /// Registers a periodic observer. Must be called before Run().
  void SetTickCallback(Nanos interval, TickCallback callback);

  /// Runs the simulation to completion and returns aggregated metrics.
  SimulationResult Run();

  /// The policy under test (valid after construction).
  AdmissionPolicy* policy() { return policy_.get(); }
  const QueryTypeRegistry& registry() const { return registry_; }

  /// Measured per-type counters so far (valid during tick callbacks):
  /// {received, rejected} for workload type index `i`.
  std::pair<uint64_t, uint64_t> LiveTypeCounts(size_t i) const;

 private:
  struct InFlight {
    uint32_t type_index;  ///< Workload spec index.
    Nanos enqueued;
    Nanos dequeued;
    Nanos processing;
    bool measured;
  };

  struct Event {
    Nanos time;
    enum class Kind : uint8_t { kArrival, kCompletion } kind;
    uint64_t completion_id;  ///< Index into in-flight slab for completions.

    friend bool operator>(const Event& a, const Event& b) {
      return a.time > b.time;
    }
  };

  void HandleArrival(Nanos now);
  void StartNext(Nanos now);
  void HandleCompletion(Nanos now, uint64_t id);
  void AccumulateBusy(Nanos now);
  void RecordLatencies(const InFlight& rec);

  workload::WorkloadSpec workload_;
  SimulationConfig config_;
  QueryTypeRegistry registry_;
  std::vector<QueryTypeId> type_ids_;  ///< Workload index -> QueryTypeId.
  QueueState queue_state_;
  std::unique_ptr<AdmissionPolicy> policy_;
  Rng rng_;

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events_;
  struct QueuedQuery {
    uint32_t type_index;
    Nanos enqueued;
    bool measured;
    int64_t order_key;  ///< Discipline key; ties broken by sequence.
    uint64_t sequence;

    friend bool operator>(const QueuedQuery& a, const QueuedQuery& b) {
      if (a.order_key != b.order_key) return a.order_key > b.order_key;
      return a.sequence > b.sequence;
    }
  };

  /// Power-of-two ring buffer of admitted queries. Under kFifo every
  /// order_key is 0 and sequences ascend with arrival, so the heap's
  /// (order_key, sequence) min-order *is* insertion order — a ring gives
  /// the same pop sequence with O(1) push/pop and no sift-down, which is
  /// most of the win at overload where the backlog runs to thousands.
  class FifoRing {
   public:
    void Reserve(size_t n) {
      if (n > slots_.size()) Rebuild(n);
    }
    bool empty() const { return size_ == 0; }
    size_t size() const { return size_; }
    void push(const QueuedQuery& q) {
      if (size_ == slots_.size()) Rebuild(size_ * 2);
      slots_[(head_ + size_) & mask_] = q;
      ++size_;
    }
    const QueuedQuery& front() const { return slots_[head_]; }
    void pop() {
      head_ = (head_ + 1) & mask_;
      --size_;
    }

   private:
    void Rebuild(size_t capacity);

    std::vector<QueuedQuery> slots_;
    size_t mask_ = 0;
    size_t head_ = 0;
    size_t size_ = 0;
  };

  // The admitted-query queue: the ring when the discipline is FIFO (the
  // paper's default everywhere), the heap otherwise. These helpers are
  // the only accessors, so the two paths cannot diverge structurally.
  bool QueueEmpty() const {
    return use_fifo_ring_ ? fifo_queue_.empty() : heap_queue_.empty();
  }
  void QueuePush(const QueuedQuery& q) {
    if (use_fifo_ring_) {
      fifo_queue_.push(q);
    } else {
      heap_queue_.push(q);
    }
  }
  QueuedQuery QueuePop() {
    if (use_fifo_ring_) {
      const QueuedQuery q = fifo_queue_.front();
      fifo_queue_.pop();
      return q;
    }
    const QueuedQuery q = heap_queue_.top();
    heap_queue_.pop();
    return q;
  }

  /// Min-heap on (order_key, sequence): pure FIFO when all keys equal.
  std::priority_queue<QueuedQuery, std::vector<QueuedQuery>,
                      std::greater<QueuedQuery>>
      heap_queue_;
  FifoRing fifo_queue_;
  bool use_fifo_ring_ = false;
  std::vector<int64_t> order_keys_;  ///< Per workload type index.
  uint64_t next_sequence_ = 0;
  std::vector<InFlight> in_flight_;
  std::vector<uint64_t> free_slots_;
  size_t busy_ = 0;

  uint64_t generated_ = 0;
  uint64_t events_processed_ = 0;

  // Measurement state. The latency series live in exactly one of two
  // representations, per config_.stats_mode: raw SampleSummary vectors
  // (exact percentiles, ~8 B/query) or streaming Histograms (constant
  // memory, ~3% relative error). Histograms are heap-allocated because
  // stats::Histogram is non-movable (atomic buckets).
  struct TypeCounters {
    uint64_t received = 0;
    uint64_t accepted = 0;
    uint64_t rejected = 0;
    uint64_t completed = 0;
    uint64_t expired = 0;
    uint64_t useless = 0;
    stats::SampleSummary rt_ms;
    stats::SampleSummary pt_ms;
    stats::SampleSummary wt_ms;
    std::unique_ptr<stats::Histogram> rt_hist;
    std::unique_ptr<stats::Histogram> pt_hist;
    std::unique_ptr<stats::Histogram> wt_hist;
  };
  std::vector<TypeCounters> counters_;
  std::unique_ptr<stats::Histogram> all_rt_hist_;
  std::unique_ptr<stats::Histogram> all_pt_hist_;
  Nanos measure_start_ = -1;
  Nanos last_busy_change_ = 0;
  double busy_integral_ns_ = 0.0;  // sum busy_count * dt, within window.
  Nanos last_arrival_time_ = 0;
  double total_work_ns_ = 0.0;   // Processing time spent (measured).
  double wasted_work_ns_ = 0.0;  // ... on queries past their deadline.

  Nanos tick_interval_ = 0;
  TickCallback tick_callback_;
  Nanos next_tick_ = 0;
};

}  // namespace bouncer::sim

#endif  // BOUNCER_SIM_SIMULATOR_H_
