#ifndef BOUNCER_SIM_SIMULATOR_H_
#define BOUNCER_SIM_SIMULATOR_H_

#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "src/core/admission_policy.h"
#include "src/core/policy_factory.h"
#include "src/core/query_type_registry.h"
#include "src/core/queue_state.h"
#include "src/stats/summary.h"
#include "src/util/rng.h"
#include "src/workload/workload_spec.h"

namespace bouncer::sim {

/// Order in which admitted queries leave the queue. The paper's systems
/// process queries in FIFO order; evaluating other disciplines is listed
/// as future work (§7) and supported here.
enum class QueueDiscipline : uint8_t {
  kFifo = 0,
  /// Non-preemptive shortest-job-first on the type's mean processing
  /// time (the discipline Gatekeeper uses, paper §6); FIFO within a type.
  kShortestJobFirst = 1,
  /// Per-type priorities (lower value = served first); FIFO within a
  /// priority level.
  kPriority = 2,
};

/// Simulation parameters (paper §5.3): a host with P query engine
/// processes fed by open-loop Poisson traffic drawn from a typed mix.
struct SimulationConfig {
  size_t parallelism = 100;        ///< P query engine processes.
  double arrival_rate_qps = 0.0;   ///< Offered load λ.
  uint64_t total_queries = 1'500'000;  ///< Arrivals generated per run.
  /// Arrivals excluded from metrics while histograms and windows warm up.
  uint64_t warmup_queries = 100'000;
  uint64_t seed = 1;
  /// Collect raw response-time samples for exact percentiles (memory is
  /// ~8 bytes per measured query).
  bool collect_samples = true;
  /// Relative deadline clients give their queries (0 = none). A query
  /// still queued past its deadline is dropped without processing
  /// (expired); one that completes past it was processed uselessly —
  /// the wasted work the paper's §2 motivates early rejection with.
  Nanos deadline = 0;
  QueueDiscipline discipline = QueueDiscipline::kFifo;
  /// For kPriority: priority per workload type index (missing = 0).
  std::vector<int> type_priorities;
};

/// Per-type outcome of a run. Times are reported in milliseconds.
struct TypeStats {
  std::string name;
  uint64_t received = 0;   ///< Measured arrivals of this type.
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  uint64_t completed = 0;
  /// Admitted but dropped unprocessed: the deadline passed in the queue.
  uint64_t expired = 0;
  /// Completed after the deadline: processed, but the client had given up.
  uint64_t useless = 0;
  double rejection_pct = 0.0;  ///< 100 * rejected / received.
  double rt_mean_ms = 0.0;
  double rt_p50_ms = 0.0;
  double rt_p90_ms = 0.0;
  double rt_p99_ms = 0.0;
  double pt_p50_ms = 0.0;  ///< Median processing time of serviced queries.
  double pt_p90_ms = 0.0;
  double wt_p50_ms = 0.0;  ///< Median queue wait of serviced queries.
};

/// Result of one simulation run.
struct SimulationResult {
  std::vector<TypeStats> per_type;  ///< Index-aligned with the workload.
  TypeStats overall;                ///< Aggregated across types.
  double utilization = 0.0;  ///< Busy-process-time / (P × measured span).
  double measured_seconds = 0.0;  ///< Span of the measurement window.
  double offered_qps = 0.0;       ///< Configured arrival rate.
  /// Fraction of total processing time spent on queries that completed
  /// past their deadline (0 when no deadline is configured).
  double wasted_work_fraction = 0.0;
};

/// Discrete-event simulator of the admission-control framework in paper
/// Fig. 1 — the C++ rebuild of the paper's Python simulator (§5.3). It
/// models an ideal parallel query engine: P processes take admitted
/// queries from one FIFO queue first-come first-served; processing times
/// are sampled from the workload's per-type lognormal distributions;
/// inter-arrival times are exponential.
///
/// The simulator owns the registry (types from the workload spec), the
/// QueueState, and the policy built from a PolicyConfig; `now` flows from
/// event timestamps into the policy, so the same policy code runs under
/// simulated and wall-clock time.
class Simulator {
 public:
  /// Observer invoked every `interval` of simulated time; receives the
  /// current simulated time. Use policy() to inspect estimates.
  using TickCallback = std::function<void(Nanos now)>;

  Simulator(const workload::WorkloadSpec& workload,
            const SimulationConfig& config, const PolicyConfig& policy_config);

  /// Registers a periodic observer. Must be called before Run().
  void SetTickCallback(Nanos interval, TickCallback callback);

  /// Runs the simulation to completion and returns aggregated metrics.
  SimulationResult Run();

  /// The policy under test (valid after construction).
  AdmissionPolicy* policy() { return policy_.get(); }
  const QueryTypeRegistry& registry() const { return registry_; }

  /// Measured per-type counters so far (valid during tick callbacks):
  /// {received, rejected} for workload type index `i`.
  std::pair<uint64_t, uint64_t> LiveTypeCounts(size_t i) const;

 private:
  struct InFlight {
    uint32_t type_index;  ///< Workload spec index.
    Nanos enqueued;
    Nanos dequeued;
    Nanos processing;
    bool measured;
  };

  struct Event {
    Nanos time;
    enum class Kind : uint8_t { kArrival, kCompletion } kind;
    uint64_t completion_id;  ///< Index into in-flight slab for completions.

    friend bool operator>(const Event& a, const Event& b) {
      return a.time > b.time;
    }
  };

  void HandleArrival(Nanos now);
  void StartNext(Nanos now);
  void HandleCompletion(Nanos now, uint64_t id);
  void AccumulateBusy(Nanos now);

  workload::WorkloadSpec workload_;
  SimulationConfig config_;
  QueryTypeRegistry registry_;
  std::vector<QueryTypeId> type_ids_;  ///< Workload index -> QueryTypeId.
  QueueState queue_state_;
  std::unique_ptr<AdmissionPolicy> policy_;
  Rng rng_;

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events_;
  struct QueuedQuery {
    uint32_t type_index;
    Nanos enqueued;
    bool measured;
    int64_t order_key;  ///< Discipline key; ties broken by sequence.
    uint64_t sequence;

    friend bool operator>(const QueuedQuery& a, const QueuedQuery& b) {
      if (a.order_key != b.order_key) return a.order_key > b.order_key;
      return a.sequence > b.sequence;
    }
  };
  /// Min-heap on (order_key, sequence): pure FIFO when all keys equal.
  std::priority_queue<QueuedQuery, std::vector<QueuedQuery>,
                      std::greater<QueuedQuery>>
      queue_;
  std::vector<int64_t> order_keys_;  ///< Per workload type index.
  uint64_t next_sequence_ = 0;
  std::vector<InFlight> in_flight_;
  std::vector<uint64_t> free_slots_;
  size_t busy_ = 0;

  uint64_t generated_ = 0;

  // Measurement state.
  struct TypeCounters {
    uint64_t received = 0;
    uint64_t accepted = 0;
    uint64_t rejected = 0;
    uint64_t completed = 0;
    uint64_t expired = 0;
    uint64_t useless = 0;
    stats::SampleSummary rt_ms;
    stats::SampleSummary pt_ms;
    stats::SampleSummary wt_ms;
  };
  std::vector<TypeCounters> counters_;
  Nanos measure_start_ = -1;
  Nanos last_busy_change_ = 0;
  double busy_integral_ns_ = 0.0;  // sum busy_count * dt, within window.
  Nanos last_arrival_time_ = 0;
  double total_work_ns_ = 0.0;   // Processing time spent (measured).
  double wasted_work_ns_ = 0.0;  // ... on queries past their deadline.

  Nanos tick_interval_ = 0;
  TickCallback tick_callback_;
  Nanos next_tick_ = 0;
};

}  // namespace bouncer::sim

#endif  // BOUNCER_SIM_SIMULATOR_H_
