#include "src/stats/dual_histogram.h"

namespace bouncer::stats {

DualHistogram::DualHistogram(const Options& options)
    : options_(options), active_(0), next_swap_(0), swap_count_(0) {}

void DualHistogram::Record(Nanos value) {
  buffers_[active_.load(std::memory_order_acquire)].Record(value);
}

bool DualHistogram::MaybeSwap(Nanos now) {
  Nanos next = next_swap_.load(std::memory_order_acquire);
  if (next == 0) {
    // First observation of time: arm the interval timer instead of
    // swapping a buffer that has barely been populated.
    next_swap_.compare_exchange_strong(next, now + options_.swap_interval,
                                       std::memory_order_acq_rel);
    return false;
  }
  if (now < next) return false;
  if (!next_swap_.compare_exchange_strong(next, now + options_.swap_interval,
                                          std::memory_order_acq_rel)) {
    return false;  // Another thread won the swap.
  }
  DoSwap();
  return true;
}

void DualHistogram::ForceSwap() {
  // Single atomic RMW: a plain load+store pair here could interleave with
  // a concurrent MaybeSwap() CAS and lose its interval bump.
  next_swap_.fetch_add(options_.swap_interval, std::memory_order_acq_rel);
  DoSwap();
}

void DualHistogram::DoSwap() {
  const int old = active_.load(std::memory_order_acquire);
  const int fresh = 1 - old;
  // The `fresh` buffer was reset at the end of the previous swap.
  active_.store(fresh, std::memory_order_release);
  const HistogramSummary s = buffers_[old].MakeSummary();
  if (s.count >= options_.min_samples_to_publish) {
    PublishSummary(s);
  }
  buffers_[old].Reset();
  swap_count_.fetch_add(1, std::memory_order_relaxed);
}

void DualHistogram::PublishSummary(const HistogramSummary& s) {
  // Seqlock write: odd version while fields are inconsistent.
  const uint64_t v = version_.load(std::memory_order_relaxed);
  version_.store(v + 1, std::memory_order_release);
  pub_count_.store(s.count, std::memory_order_relaxed);
  pub_mean_.store(s.mean, std::memory_order_relaxed);
  pub_p50_.store(s.p50, std::memory_order_relaxed);
  pub_p90_.store(s.p90, std::memory_order_relaxed);
  pub_p99_.store(s.p99, std::memory_order_relaxed);
  version_.store(v + 2, std::memory_order_release);
}

HistogramSummary DualHistogram::ReadSummary() const {
  HistogramSummary s;
  while (true) {
    const uint64_t v1 = version_.load(std::memory_order_acquire);
    if (v1 & 1) continue;  // Writer in progress.
    s.count = pub_count_.load(std::memory_order_relaxed);
    s.mean = pub_mean_.load(std::memory_order_relaxed);
    s.p50 = pub_p50_.load(std::memory_order_relaxed);
    s.p90 = pub_p90_.load(std::memory_order_relaxed);
    s.p99 = pub_p99_.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    const uint64_t v2 = version_.load(std::memory_order_relaxed);
    if (v1 == v2) return s;
  }
}

}  // namespace bouncer::stats
