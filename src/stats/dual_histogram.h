#ifndef BOUNCER_STATS_DUAL_HISTOGRAM_H_
#define BOUNCER_STATS_DUAL_HISTOGRAM_H_

#include <atomic>
#include <cstdint>

#include "src/stats/histogram.h"
#include "src/util/time.h"

namespace bouncer::stats {

/// Dual-buffer processing-time histogram (paper §3, footnote 4).
///
/// One histogram is read-only while a second is being populated; at the end
/// of each interval they are swapped atomically and the retired buffer is
/// reset. The readable side is condensed into a HistogramSummary published
/// through a seqlock, so the admission decision path reads mean/p50/p90 in
/// a handful of loads with no bucket walks and no locks.
///
/// Stale retention (paper Appendix A): when the populated buffer holds
/// fewer than `min_samples_to_publish` samples at swap time, the previous
/// summary is retained — "we prefer stale data to no data".
class DualHistogram {
 public:
  struct Options {
    /// Interval between buffer swaps.
    Nanos swap_interval = 100 * kMillisecond;
    /// A buffer with fewer samples than this does not replace the current
    /// published summary at swap time.
    uint64_t min_samples_to_publish = 1;
  };

  DualHistogram() : DualHistogram(Options{}) {}
  explicit DualHistogram(const Options& options);

  DualHistogram(const DualHistogram&) = delete;
  DualHistogram& operator=(const DualHistogram&) = delete;

  /// Records one sample into the buffer currently being populated.
  /// Thread-safe, wait-free.
  void Record(Nanos value);

  /// Swaps buffers if `now` has passed the end of the current interval.
  /// Safe to call from many threads; at most one performs the swap.
  /// Returns true if this call performed a swap.
  bool MaybeSwap(Nanos now);

  /// Unconditionally swaps buffers and republishes. Used by tests and by
  /// simulation warm-up.
  void ForceSwap();

  /// Most recently published summary (possibly empty before first swap,
  /// possibly stale under retention). Thread-safe, lock-free read.
  HistogramSummary ReadSummary() const;

  /// Samples recorded into the currently-populated buffer (approximate
  /// under concurrency).
  uint64_t ActiveCount() const {
    return buffers_[active_.load(std::memory_order_acquire)].Count();
  }

  /// Total swaps performed.
  uint64_t SwapCount() const {
    return swap_count_.load(std::memory_order_relaxed);
  }

  const Options& options() const { return options_; }

 private:
  void PublishSummary(const HistogramSummary& s);
  void DoSwap();

  Options options_;
  Histogram buffers_[2];
  std::atomic<int> active_;
  std::atomic<Nanos> next_swap_;
  std::atomic<uint64_t> swap_count_;

  // Seqlock-published summary. Fields are individually atomic; the version
  // counter makes the set of fields consistent.
  mutable std::atomic<uint64_t> version_{0};
  std::atomic<uint64_t> pub_count_{0};
  std::atomic<Nanos> pub_mean_{0};
  std::atomic<Nanos> pub_p50_{0};
  std::atomic<Nanos> pub_p90_{0};
  std::atomic<Nanos> pub_p99_{0};
};

}  // namespace bouncer::stats

#endif  // BOUNCER_STATS_DUAL_HISTOGRAM_H_
