#include "src/stats/flight_recorder.h"

#include <cinttypes>
#include <cstdio>

namespace bouncer::stats {

namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

const char* KindName(uint8_t kind) {
  switch (static_cast<TraceEventKind>(kind)) {
    case TraceEventKind::kNetParse: return "net_parse";
    case TraceEventKind::kAdmission: return "admission";
    case TraceEventKind::kShed: return "shed";
    case TraceEventKind::kDequeue: return "dequeue";
    case TraceEventKind::kExpired: return "expired";
    case TraceEventKind::kShardScatter: return "shard_scatter";
    case TraceEventKind::kShardGather: return "shard_gather";
    case TraceEventKind::kResponseWrite: return "response_write";
  }
  return "unknown";
}

/// Per-thread cache of the ring this thread writes into, keyed by the
/// recorder's address AND its instance id: a freed recorder's address
/// can be recycled by a new one, and the id tie-break keeps the new
/// instance from adopting the dead ring pointer.
struct TlsCache {
  const void* owner = nullptr;
  uint64_t instance_id = 0;
  void* ring = nullptr;
};
thread_local TlsCache tls_ring_cache;

}  // namespace

std::atomic<uint64_t> FlightRecorder::next_instance_id_{1};

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

FlightRecorder::~FlightRecorder() = default;

void FlightRecorder::Configure(const Options& options) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_capacity_ = RoundUpPow2(options.ring_capacity < 2 ? 2
                                                         : options.ring_capacity);
  period_.store(options.sampling_period == 0 ? 1 : options.sampling_period,
                std::memory_order_relaxed);
  seed_.store(options.sampling_seed, std::memory_order_relaxed);
}

bool FlightRecorder::SampleDecision(uint64_t id, uint64_t seed,
                                    uint32_t period) {
  if (period <= 1) return true;
  return SplitMix64(id ^ seed) % period == 0;
}

FlightRecorder::Ring* FlightRecorder::RingForThisThread() {
  TlsCache& cache = tls_ring_cache;
  if (cache.owner == this && cache.instance_id == instance_id_) {
    return static_cast<Ring*>(cache.ring);
  }
  std::lock_guard<std::mutex> lock(mu_);
  const std::thread::id self = std::this_thread::get_id();
  Ring* ring = nullptr;
  for (const auto& r : rings_) {
    if (r->owner == self) {
      ring = r.get();
      break;
    }
  }
  if (ring == nullptr) {
    rings_.push_back(std::make_unique<Ring>(ring_capacity_));
    ring = rings_.back().get();
    ring->owner = self;
  }
  cache.owner = this;
  cache.instance_id = instance_id_;
  cache.ring = ring;
  return ring;
}

void FlightRecorder::Record(const TraceEvent& event) {
  Ring* ring = RingForThisThread();
  const uint64_t h = ring->head.load(std::memory_order_relaxed);
  PackedEvent& slot = ring->events[h & ring->mask];
  // Seqlock write: park the slot as busy, store the data words, then
  // publish this lap's absolute index. The release fence keeps the busy
  // mark ordered before the data stores for a racing dumper.
  slot.seq.store(PackedEvent::kBusySeq, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.Store(event);
  slot.seq.store(h, std::memory_order_release);
  ring->head.store(h + 1, std::memory_order_release);
}

size_t FlightRecorder::Dump(std::string* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t written = 0;
  char buf[256];
  for (size_t ring_idx = 0; ring_idx < rings_.size(); ++ring_idx) {
    const Ring& ring = *rings_[ring_idx];
    const size_t cap = ring.mask + 1;
    const uint64_t h1 = ring.head.load(std::memory_order_acquire);
    const uint64_t count = h1 < cap ? h1 : cap;
    const uint64_t begin = h1 - count;
    for (uint64_t i = begin; i < h1; ++i) {
      // Seqlock read: the copy is this lap's event iff the slot sequence
      // reads the absolute index on both sides of it. A slot the writer
      // lapped or is overwriting right now fails the check and is
      // dropped — the dump stays approximate under load, but never mixes
      // two events and never drops a quiescent slot.
      const PackedEvent& slot = ring.events[i & ring.mask];
      if (slot.seq.load(std::memory_order_acquire) != i) continue;
      const TraceEvent e = slot.Load();
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) != i) continue;
      std::snprintf(buf, sizeof(buf),
                    "{\"ts\":%" PRId64 ",\"id\":%" PRIu64
                    ",\"kind\":\"%s\",\"type\":%u,\"tenant\":%u,\"reason\":%u"
                    ",\"loc\":%u,\"arg0\":%" PRId64 ",\"arg1\":%" PRId64
                    ",\"ring\":%zu}\n",
                    e.ts, e.id, KindName(e.kind),
                    static_cast<unsigned>(e.type),
                    static_cast<unsigned>(e.tenant),
                    static_cast<unsigned>(e.reason),
                    static_cast<unsigned>(e.loc), e.arg0, e.arg1, ring_idx);
      *out += buf;
      ++written;
    }
  }
  return written;
}

bool FlightRecorder::DumpToFile(const char* path) const {
  std::string out;
  Dump(&out);
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  const size_t n = std::fwrite(out.data(), 1, out.size(), f);
  const bool ok = n == out.size() && std::fclose(f) == 0;
  if (!ok && n != out.size()) std::fclose(f);
  return ok;
}

void FlightRecorder::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& ring : rings_) {
    ring->head.store(0, std::memory_order_release);
    for (auto& slot : ring->events) {
      slot.seq.store(PackedEvent::kBusySeq, std::memory_order_release);
    }
  }
}

size_t FlightRecorder::num_rings() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rings_.size();
}

}  // namespace bouncer::stats
