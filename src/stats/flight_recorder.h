#ifndef BOUNCER_STATS_FLIGHT_RECORDER_H_
#define BOUNCER_STATS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/util/time.h"

namespace bouncer::stats {

/// Compile-time kill switch: building with -DBOUNCER_TRACE_DISABLED
/// discards every trace site (the `if constexpr` guards below compile the
/// recording branches out entirely). The default build keeps tracing
/// compiled in and gated by a single relaxed atomic load at runtime.
#ifdef BOUNCER_TRACE_DISABLED
inline constexpr bool kTraceCompiledIn = false;
#else
inline constexpr bool kTraceCompiledIn = true;
#endif

/// Lifecycle points a sampled request stamps on its way through the
/// system (the event schema is documented in DESIGN.md "Observability").
enum class TraceEventKind : uint8_t {
  kNetParse = 1,      ///< Request frame parsed off a connection (loc=loop).
  kAdmission = 2,     ///< Admission decision (reason, est wait, SLO budget).
  kShed = 3,          ///< Accepted but dropped on a full bounded queue.
  kDequeue = 4,       ///< Pulled from the FIFO (actual wait vs estimate).
  kExpired = 5,       ///< Deadline passed while queued.
  kShardScatter = 6,  ///< One subquery batch sent to a shard (loc=shard).
  kShardGather = 7,   ///< A scatter round fully gathered.
  kResponseWrite = 8, ///< Response encoded into a connection's tx ring.
};

/// One fixed-size trace record. POD; rings store it packed into atomic
/// words (see FlightRecorder::Ring) so a concurrent dump never races the
/// writer.
struct TraceEvent {
  Nanos ts = 0;          ///< Clock timestamp.
  uint64_t id = 0;       ///< Request correlation id (WorkItem::id).
  int64_t arg0 = 0;      ///< Kind-specific (e.g. estimated queue wait).
  int64_t arg1 = 0;      ///< Kind-specific (e.g. remaining SLO budget).
  uint32_t loc = 0;      ///< Loop id / shard id / broker id.
  uint32_t tenant = 0;   ///< Dense tenant index (0 = default tenant).
  uint16_t type = 0;     ///< QueryTypeId.
  uint8_t kind = 0;      ///< TraceEventKind.
  uint8_t reason = 0;    ///< RejectReason wire code (0 = none).
};

/// Always-on, low-overhead flight recorder: per-thread fixed-size ring
/// buffers of TraceEvents, dumped as JSONL on demand (admin kTraceDump,
/// graph_service exit) or on a crash signal.
///
/// Ownership rules:
///  - Each ring has exactly ONE writer — the thread that recorded into it
///    first. Rings are owned by the recorder and never freed before it,
///    so a dumping thread can read them at any time.
///  - Record() is wait-free: one relaxed head load, a handful of word
///    stores, one release head store. No allocation after a thread's
///    first event.
///  - Dump() tolerates concurrent writers: each slot carries a seqlock
///    sequence, so an entry overwritten while the dump copied it fails
///    the sequence check and is discarded — a dump is approximate under
///    load but never torn or mixed into the output.
///
/// Sampling is deterministic: a request is sampled iff
/// splitmix64(id ^ seed) % period == 0, so reruns with a fixed seed trace
/// the same requests and multi-layer events of one request land in the
/// dump together without any cross-thread coordination.
class FlightRecorder {
 public:
  struct Options {
    /// Events retained per thread (rounded up to a power of two).
    size_t ring_capacity = 4096;
    /// Sample 1-in-N requests; 1 = every request.
    uint32_t sampling_period = 64;
    /// Seed mixed into the sampling hash; fixed default so runs are
    /// reproducible unless a caller rotates it.
    uint64_t sampling_seed = 0x9e3779b97f4a7c15ull;
  };

  FlightRecorder() = default;
  explicit FlightRecorder(const Options& options) { Configure(options); }
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;
  ~FlightRecorder();

  /// Process-wide recorder instance every subsystem defaults to.
  static FlightRecorder& Global();

  /// Applies sampling settings immediately; ring_capacity applies to
  /// rings created after the call (existing rings keep their size).
  void Configure(const Options& options);

  /// Master switch; disabled recording costs one relaxed load per
  /// sampling decision. Starts disabled.
  void SetEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// True when tracing is enabled and `id` falls in the sample.
  bool ShouldSample(uint64_t id) const {
    if (!enabled()) return false;
    return SampleDecision(id, seed_.load(std::memory_order_relaxed),
                          period_.load(std::memory_order_relaxed));
  }

  /// The deterministic sampling predicate (exposed for tests).
  static bool SampleDecision(uint64_t id, uint64_t seed, uint32_t period);

  /// Appends `event` to the calling thread's ring (created on first use).
  void Record(const TraceEvent& event);

  /// Appends every ring's retained events to `out` as JSONL, oldest
  /// first within each ring; returns the number of events written.
  size_t Dump(std::string* out) const;

  /// Dump() straight to a file (overwrites). Returns false on IO error.
  bool DumpToFile(const char* path) const;

  /// Drops all retained events. Callers must quiesce writers first
  /// (test/bench helper; concurrent Record() may survive the reset).
  void Reset();

  size_t num_rings() const;

 private:
  /// A TraceEvent packed into six 64-bit words plus a slot sequence.
  /// Slots are written by one thread and read concurrently by dumpers,
  /// so each word is a relaxed atomic: an overlapped overwrite mixes old
  /// and new words but never tears one. The `seq` word makes the mix
  /// detectable exactly (a per-slot seqlock): the writer parks it at
  /// kBusySeq before touching the data words and publishes the slot's
  /// absolute ring index after, so a dumper that reads seq == index on
  /// both sides of its copy holds precisely that lap's event. Absolute
  /// indices are monotonic per slot (i, then i + capacity, ...), so the
  /// check can never ABA.
  struct PackedEvent {
    static constexpr size_t kWords = 6;
    /// "No lap published here" (the initial state / mid-overwrite mark).
    static constexpr uint64_t kBusySeq = ~uint64_t{0};
    std::atomic<uint64_t> seq{kBusySeq};
    std::atomic<uint64_t> w[kWords];

    void Store(const TraceEvent& e) {
      w[0].store(static_cast<uint64_t>(e.ts), std::memory_order_relaxed);
      w[1].store(e.id, std::memory_order_relaxed);
      w[2].store(static_cast<uint64_t>(e.arg0), std::memory_order_relaxed);
      w[3].store(static_cast<uint64_t>(e.arg1), std::memory_order_relaxed);
      w[4].store(static_cast<uint64_t>(e.loc) |
                     (static_cast<uint64_t>(e.tenant) << 32),
                 std::memory_order_relaxed);
      w[5].store(static_cast<uint64_t>(e.type) |
                     (static_cast<uint64_t>(e.kind) << 16) |
                     (static_cast<uint64_t>(e.reason) << 24),
                 std::memory_order_relaxed);
    }

    TraceEvent Load() const {
      TraceEvent e;
      e.ts = static_cast<Nanos>(w[0].load(std::memory_order_relaxed));
      e.id = w[1].load(std::memory_order_relaxed);
      e.arg0 = static_cast<int64_t>(w[2].load(std::memory_order_relaxed));
      e.arg1 = static_cast<int64_t>(w[3].load(std::memory_order_relaxed));
      const uint64_t w4 = w[4].load(std::memory_order_relaxed);
      e.loc = static_cast<uint32_t>(w4);
      e.tenant = static_cast<uint32_t>(w4 >> 32);
      const uint64_t w5 = w[5].load(std::memory_order_relaxed);
      e.type = static_cast<uint16_t>(w5);
      e.kind = static_cast<uint8_t>(w5 >> 16);
      e.reason = static_cast<uint8_t>(w5 >> 24);
      return e;
    }
  };

  struct Ring {
    explicit Ring(size_t capacity)
        : events(capacity), mask(capacity - 1) {}
    std::vector<PackedEvent> events;  ///< Power-of-two size.
    size_t mask;
    std::atomic<uint64_t> head{0};  ///< Next write index (monotonic).
    std::thread::id owner{};        ///< The single writer.
  };

  Ring* RingForThisThread();

  mutable std::mutex mu_;  ///< Guards rings_ growth and options.
  std::vector<std::unique_ptr<Ring>> rings_;
  size_t ring_capacity_ = 4096;
  std::atomic<bool> enabled_{false};
  std::atomic<uint32_t> period_{64};
  std::atomic<uint64_t> seed_{0x9e3779b97f4a7c15ull};
  /// Distinguishes this instance in the per-thread ring cache even after
  /// another recorder is allocated at a recycled address.
  const uint64_t instance_id_ = next_instance_id_.fetch_add(1);
  static std::atomic<uint64_t> next_instance_id_;
};

}  // namespace bouncer::stats

#endif  // BOUNCER_STATS_FLIGHT_RECORDER_H_
