#include "src/stats/histogram.h"

#include <algorithm>
#include <cmath>

namespace bouncer::stats {

Histogram::Histogram() : buckets_(kBucketCount), count_(0), sum_(0) {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

int Histogram::BucketIndex(Nanos value) {
  if (value < 0) value = 0;
  if (value > kMaxValue) value = kMaxValue;
  if (value < kSubCount) return static_cast<int>(value);
  const int msb = 63 - __builtin_clzll(static_cast<uint64_t>(value));
  const int octave = msb - kSubBits + 1;
  const int shift = msb - kSubBits;
  const auto sub = static_cast<int>((value >> shift) - kSubCount);
  return static_cast<int>(octave * kSubCount) + sub;
}

Nanos Histogram::BucketLowerBound(int index) {
  const int octave = index >> kSubBits;
  const int sub = index & (kSubCount - 1);
  if (octave == 0) return sub;
  return (kSubCount + sub) << (octave - 1);
}

Nanos Histogram::BucketMidpoint(int index) {
  const int octave = index >> kSubBits;
  const Nanos lower = BucketLowerBound(index);
  const Nanos width = octave == 0 ? 1 : (Nanos{1} << (octave - 1));
  return lower + width / 2;
}

void Histogram::Record(Nanos value) {
  if (value < 0) value = 0;
  if (value > kMaxValue) value = kMaxValue;
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

Nanos Histogram::Mean() const {
  const uint64_t n = count_.load(std::memory_order_relaxed);
  if (n == 0) return 0;
  return sum_.load(std::memory_order_relaxed) / static_cast<int64_t>(n);
}

Nanos Histogram::Percentile(double q) const {
  const uint64_t n = count_.load(std::memory_order_relaxed);
  if (n == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<uint64_t>(
      std::max<double>(1.0, std::ceil(q * static_cast<double>(n))));
  uint64_t cumulative = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative >= target) return BucketMidpoint(i);
  }
  return kMaxValue;
}

HistogramSummary Histogram::MakeSummary() const {
  HistogramSummary s;
  s.count = count_.load(std::memory_order_relaxed);
  if (s.count == 0) return s;
  s.mean = sum_.load(std::memory_order_relaxed) /
           static_cast<int64_t>(s.count);
  const double n = static_cast<double>(s.count);
  const auto t50 = static_cast<uint64_t>(std::max(1.0, std::ceil(0.50 * n)));
  const auto t90 = static_cast<uint64_t>(std::max(1.0, std::ceil(0.90 * n)));
  const auto t99 = static_cast<uint64_t>(std::max(1.0, std::ceil(0.99 * n)));
  uint64_t cumulative = 0;
  bool done50 = false, done90 = false;
  for (int i = 0; i < kBucketCount; ++i) {
    const uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    if (c == 0) continue;
    cumulative += c;
    if (!done50 && cumulative >= t50) {
      s.p50 = BucketMidpoint(i);
      done50 = true;
    }
    if (!done90 && cumulative >= t90) {
      s.p90 = BucketMidpoint(i);
      done90 = true;
    }
    if (cumulative >= t99) {
      s.p99 = BucketMidpoint(i);
      return s;
    }
  }
  // Concurrent writes may leave the pass short of the targets; fall back to
  // the largest populated bucket semantics.
  if (!done50) s.p50 = s.mean;
  if (!done90) s.p90 = s.p50;
  if (s.p99 == 0) s.p99 = s.p90;
  return s;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

}  // namespace bouncer::stats
