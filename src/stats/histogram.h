#ifndef BOUNCER_STATS_HISTOGRAM_H_
#define BOUNCER_STATS_HISTOGRAM_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/util/time.h"

namespace bouncer::stats {

/// Compact value summary extracted from a histogram at swap time. This is
/// what the admission decision path actually reads: O(1), no bucket walk.
struct HistogramSummary {
  uint64_t count = 0;  ///< Number of recorded samples.
  Nanos mean = 0;      ///< Mean sample value.
  Nanos p50 = 0;       ///< Median.
  Nanos p90 = 0;       ///< 90th percentile.
  Nanos p99 = 0;       ///< 99th percentile.

  bool empty() const { return count == 0; }
};

/// Lock-free fixed-layout latency histogram over nanosecond values.
///
/// Buckets are HdrHistogram-style: exact for values < 2^kSubBits, then
/// geometric octaves each split into 2^kSubBits sub-buckets, giving a
/// bounded ~3% relative error — far below the estimate error Bouncer
/// already tolerates (paper §3 trades accuracy for speed). Record() is a
/// single relaxed atomic increment plus an add, safe from any number of
/// threads. Aggregate reads (Mean / Percentile / MakeSummary) are
/// approximate under concurrent writes; Bouncer only reads them at
/// dual-buffer swap time when the buffer is quiescent.
class Histogram {
 public:
  /// Sub-bucket resolution: 2^kSubBits sub-buckets per octave.
  static constexpr int kSubBits = 5;
  static constexpr int64_t kSubCount = int64_t{1} << kSubBits;
  /// Largest trackable value (~18.3 minutes); larger samples clamp.
  static constexpr Nanos kMaxValue = (Nanos{1} << 40) - 1;
  static constexpr int kMaxOctave = 40 - kSubBits;  // Octaves above exact range.
  static constexpr int kBucketCount =
      static_cast<int>((kMaxOctave + 1) * kSubCount);

  Histogram();

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Records one sample. Negative values clamp to 0, values above
  /// kMaxValue clamp to kMaxValue. Thread-safe, wait-free.
  void Record(Nanos value);

  /// Number of samples recorded.
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }

  /// Mean of recorded samples (0 when empty). Exact (uses the true sum,
  /// not bucket midpoints).
  Nanos Mean() const;

  /// Approximate q-quantile, q in [0, 1]; returns 0 when empty.
  Nanos Percentile(double q) const;

  /// Extracts count/mean/p50/p90/p99 in a single bucket pass.
  HistogramSummary MakeSummary() const;

  /// Clears all buckets. Not linearizable against concurrent Record();
  /// callers must quiesce writers first (the dual-buffer does).
  void Reset();

  /// Index of the bucket holding `value` (clamped). Exposed for tests.
  static int BucketIndex(Nanos value);
  /// Inclusive lower bound of bucket `index`.
  static Nanos BucketLowerBound(int index);
  /// Representative (midpoint) value of bucket `index`.
  static Nanos BucketMidpoint(int index);

 private:
  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> count_;
  std::atomic<int64_t> sum_;
};

}  // namespace bouncer::stats

#endif  // BOUNCER_STATS_HISTOGRAM_H_
