#include "src/stats/metric_registry.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace bouncer::stats {

namespace {

/// Sorts by name and merges duplicates: counters sum (two sources
/// counting the same thing add up), gauges/histograms keep the last
/// writer (collectors run after owned metrics, so a collector wins).
template <typename V, typename Merge>
void SortAndMerge(std::vector<std::pair<std::string, V>>* entries,
                  Merge merge) {
  std::stable_sort(
      entries->begin(), entries->end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  size_t write = 0;
  for (size_t i = 0; i < entries->size(); ++i) {
    if (write > 0 && (*entries)[write - 1].first == (*entries)[i].first) {
      merge(&(*entries)[write - 1].second, (*entries)[i].second);
    } else {
      if (write != i) (*entries)[write] = std::move((*entries)[i]);
      ++write;
    }
  }
  entries->resize(write);
}

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendU64(uint64_t v, std::string* out) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  *out += buf;
}

void AppendI64(int64_t v, std::string* out) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  *out += buf;
}

std::string PromName(const std::string& name) {
  std::string out = "bouncer_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

Counter* MetricRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

uint64_t MetricRegistry::AddCollector(CollectFn fn) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t handle = next_handle_++;
  collectors_.emplace_back(handle, std::move(fn));
  return handle;
}

void MetricRegistry::RemoveCollector(uint64_t handle) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < collectors_.size(); ++i) {
    if (collectors_[i].first == handle) {
      collectors_.erase(collectors_.begin() + static_cast<ptrdiff_t>(i));
      return;
    }
  }
}

MetricSnapshot MetricRegistry::Snapshot() const {
  MetricSnapshot snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, counter] : counters_) {
      snapshot.counters.emplace_back(name, counter->Value());
    }
    for (const auto& [name, gauge] : gauges_) {
      snapshot.gauges.emplace_back(name, gauge->Value());
    }
    for (const auto& [name, histogram] : histograms_) {
      snapshot.histograms.emplace_back(name, histogram->MakeSummary());
    }
    MetricSink sink(&snapshot);
    for (const auto& [handle, fn] : collectors_) {
      (void)handle;
      fn(sink);
    }
  }
  SortAndMerge(&snapshot.counters, [](uint64_t* a, uint64_t b) { *a += b; });
  SortAndMerge(&snapshot.gauges, [](int64_t* a, int64_t b) { *a = b; });
  SortAndMerge(&snapshot.histograms,
               [](HistogramSummary* a, const HistogramSummary& b) { *a = b; });
  return snapshot;
}

std::string MetricRegistry::JsonFor(const MetricSnapshot& snapshot) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(name, &out);
    out.push_back(':');
    AppendU64(value, &out);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(name, &out);
    out.push_back(':');
    AppendI64(value, &out);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, summary] : snapshot.histograms) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(name, &out);
    out += ":{\"count\":";
    AppendU64(summary.count, &out);
    out += ",\"mean_ns\":";
    AppendI64(summary.mean, &out);
    out += ",\"p50_ns\":";
    AppendI64(summary.p50, &out);
    out += ",\"p90_ns\":";
    AppendI64(summary.p90, &out);
    out += ",\"p99_ns\":";
    AppendI64(summary.p99, &out);
    out.push_back('}');
  }
  out += "}}";
  return out;
}

std::string MetricRegistry::PrometheusFor(const MetricSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = PromName(name);
    out += "# TYPE " + prom + " counter\n" + prom + " ";
    AppendU64(value, &out);
    out.push_back('\n');
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = PromName(name);
    out += "# TYPE " + prom + " gauge\n" + prom + " ";
    AppendI64(value, &out);
    out.push_back('\n');
  }
  for (const auto& [name, summary] : snapshot.histograms) {
    const std::string prom = PromName(name);
    out += "# TYPE " + prom + "_count counter\n" + prom + "_count ";
    AppendU64(summary.count, &out);
    out.push_back('\n');
    const std::pair<const char*, Nanos> quantiles[] = {
        {"_mean_ns", summary.mean},
        {"_p50_ns", summary.p50},
        {"_p90_ns", summary.p90},
        {"_p99_ns", summary.p99},
    };
    for (const auto& [suffix, value] : quantiles) {
      out += "# TYPE " + prom + suffix + " gauge\n" + prom + suffix + " ";
      AppendI64(value, &out);
      out.push_back('\n');
    }
  }
  return out;
}

}  // namespace bouncer::stats
