#ifndef BOUNCER_STATS_METRIC_REGISTRY_H_
#define BOUNCER_STATS_METRIC_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/stats/histogram.h"

namespace bouncer::stats {

/// Named monotonic counter owned by a MetricRegistry. Bumping is a single
/// relaxed atomic add — safe on any hot path.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Named instantaneous signed value owned by a MetricRegistry.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Point-in-time view of every metric a registry knows about, owned
/// metrics and collector-published ones merged, sorted by name (so the
/// exposition formats are deterministic and golden-testable). Duplicate
/// names merge: counters sum, gauges and histograms last-write-wins.
struct MetricSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSummary>> histograms;
};

/// Write-side view handed to collect callbacks: subsystems that already
/// maintain their own atomic counter blocks (the stage's per-run-queue
/// counters, the net server's per-loop counters, ...) publish them here
/// at snapshot time instead of double-bumping a registry counter on
/// their hot paths.
class MetricSink {
 public:
  void AddCounter(std::string name, uint64_t value) {
    snapshot_->counters.emplace_back(std::move(name), value);
  }
  void AddGauge(std::string name, int64_t value) {
    snapshot_->gauges.emplace_back(std::move(name), value);
  }
  void AddHistogram(std::string name, const HistogramSummary& summary) {
    snapshot_->histograms.emplace_back(std::move(name), summary);
  }

 private:
  friend class MetricRegistry;
  explicit MetricSink(MetricSnapshot* snapshot) : snapshot_(snapshot) {}
  MetricSnapshot* snapshot_;
};

/// Registry of named counters/gauges/histograms plus collect callbacks,
/// snapshot-able as JSON or Prometheus text exposition.
///
/// Hot path: Get*() hands out stable pointers (metrics are never freed
/// while the registry lives), so callers resolve a metric once and then
/// touch only its atomics. Registration, collector management and
/// snapshots take a mutex — they are control-plane operations.
///
/// Naming convention: lowercase dotted paths ("stage.broker-0.received",
/// "net.requests"). The Prometheus exposition prefixes "bouncer_" and
/// maps every non-[a-zA-Z0-9_] byte to '_'.
class MetricRegistry {
 public:
  using CollectFn = std::function<void(MetricSink&)>;

  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Returns the counter/gauge/histogram registered under `name`,
  /// creating it on first use. Pointers stay valid for the registry's
  /// lifetime.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Registers a snapshot-time callback; returns a handle for
  /// RemoveCollector(). The callback runs under the registry mutex —
  /// keep it to loads, and never call back into this registry from it.
  uint64_t AddCollector(CollectFn fn);
  void RemoveCollector(uint64_t handle);

  /// Merged, name-sorted view of owned metrics + collector output.
  MetricSnapshot Snapshot() const;

  /// Snapshot rendered as a JSON object:
  ///   {"counters":{...},"gauges":{...},
  ///    "histograms":{"name":{"count":..,"mean_ns":..,"p50_ns":..,
  ///                          "p90_ns":..,"p99_ns":..}}}
  std::string ToJson() const { return JsonFor(Snapshot()); }

  /// Snapshot rendered as Prometheus text exposition (version 0.0.4).
  /// Histograms export <name>_count plus _mean_ns/_p50_ns/_p90_ns/_p99_ns
  /// summary gauges (the fixed-layout histogram is already a summary).
  std::string ToPrometheus() const { return PrometheusFor(Snapshot()); }

  static std::string JsonFor(const MetricSnapshot& snapshot);
  static std::string PrometheusFor(const MetricSnapshot& snapshot);

 private:
  mutable std::mutex mu_;
  // std::map: iteration is already name-sorted at snapshot time.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::vector<std::pair<uint64_t, CollectFn>> collectors_;
  uint64_t next_handle_ = 1;
};

}  // namespace bouncer::stats

#endif  // BOUNCER_STATS_METRIC_REGISTRY_H_
