#include "src/stats/sliding_window_counter.h"

#include <algorithm>

namespace bouncer::stats {

SlidingWindowCounter::SlidingWindowCounter(size_t num_types, Nanos duration,
                                           Nanos step)
    : num_types_(num_types),
      step_(std::max<Nanos>(step, 1)),
      num_slots_(static_cast<size_t>((duration + step_ - 1) / step_)),
      duration_(static_cast<Nanos>(num_slots_) * step_),
      cells_(std::max<size_t>(num_slots_, 1) * num_types_),
      totals_(num_types_),
      current_step_(0) {}

void SlidingWindowCounter::AdvanceTo(Nanos now) {
  const int64_t target = now / step_;
  if (target <= current_step_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(advance_mu_);
  int64_t current = current_step_.load(std::memory_order_acquire);
  if (target <= current) return;
  const int64_t steps_to_clear =
      std::min<int64_t>(target - current, static_cast<int64_t>(num_slots_));
  // Retire the slot positions the window rotates into: the slots for
  // steps (current, target], which still hold counts from one full ring
  // revolution ago. A jump of num_slots_ or more clears every slot.
  for (int64_t i = 1; i <= steps_to_clear; ++i) {
    const size_t slot =
        static_cast<size_t>((current + i) % static_cast<int64_t>(num_slots_));
    for (size_t t = 0; t < num_types_; ++t) {
      Cell& cell = cells_[CellIndex(slot, t)];
      const uint64_t r = cell.received.exchange(0, std::memory_order_relaxed);
      const uint64_t a = cell.accepted.exchange(0, std::memory_order_relaxed);
      if (r) totals_[t].received.fetch_sub(r, std::memory_order_relaxed);
      if (a) totals_[t].accepted.fetch_sub(a, std::memory_order_relaxed);
    }
  }
  current_step_.store(target, std::memory_order_release);
}

void SlidingWindowCounter::Record(size_t type, bool accepted, Nanos now) {
  if (type >= num_types_) return;
  AdvanceTo(now);
  const size_t slot = static_cast<size_t>((now / step_) %
                                          static_cast<int64_t>(num_slots_));
  Cell& cell = cells_[CellIndex(slot, type)];
  cell.received.fetch_add(1, std::memory_order_relaxed);
  totals_[type].received.fetch_add(1, std::memory_order_relaxed);
  if (accepted) {
    cell.accepted.fetch_add(1, std::memory_order_relaxed);
    totals_[type].accepted.fetch_add(1, std::memory_order_relaxed);
  }
}

void SlidingWindowCounter::UndoAccepted(size_t type, Nanos now) {
  if (type >= num_types_) return;
  AdvanceTo(now);
  const size_t slot = static_cast<size_t>((now / step_) %
                                          static_cast<int64_t>(num_slots_));
  Cell& cell = cells_[CellIndex(slot, type)];
  // Decrement-if-positive so a retraction that lands after the original
  // slot expired cannot underflow the counters.
  uint64_t a = cell.accepted.load(std::memory_order_relaxed);
  while (a > 0 && !cell.accepted.compare_exchange_weak(
                      a, a - 1, std::memory_order_relaxed)) {
  }
  if (a == 0) return;  // The accept already aged out with its slot.
  uint64_t t = totals_[type].accepted.load(std::memory_order_relaxed);
  while (t > 0 && !totals_[type].accepted.compare_exchange_weak(
                      t, t - 1, std::memory_order_relaxed)) {
  }
}

uint64_t SlidingWindowCounter::AcceptedCount(size_t type) const {
  if (type >= num_types_) return 0;
  return totals_[type].accepted.load(std::memory_order_relaxed);
}

uint64_t SlidingWindowCounter::ReceivedCount(size_t type) const {
  if (type >= num_types_) return 0;
  return totals_[type].received.load(std::memory_order_relaxed);
}

double SlidingWindowCounter::AcceptanceRatio(size_t type,
                                             double empty_value) const {
  const uint64_t received = ReceivedCount(type);
  if (received == 0) return empty_value;
  return static_cast<double>(AcceptedCount(type)) /
         static_cast<double>(received);
}

double SlidingWindowCounter::AverageAcceptanceRatio() const {
  if (num_types_ == 0) return 1.0;
  double sum = 0.0;
  for (size_t t = 0; t < num_types_; ++t) {
    const auto received = static_cast<double>(
        std::max<uint64_t>(ReceivedCount(t), 1));
    sum += static_cast<double>(AcceptedCount(t)) / received;
  }
  return sum / static_cast<double>(num_types_);
}

}  // namespace bouncer::stats
