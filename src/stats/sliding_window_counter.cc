#include "src/stats/sliding_window_counter.h"

#include <algorithm>

#include "src/util/stripe.h"

namespace bouncer::stats {

namespace {
/// Pads a stripe's row of totals to whole cache lines of Cells.
size_t TotalsStride(size_t num_types, size_t cell_size) {
  const size_t per_line = std::max<size_t>(kCacheLineSize / cell_size, 1);
  return (num_types + per_line - 1) / per_line * per_line;
}
}  // namespace

SlidingWindowCounter::SlidingWindowCounter(size_t num_types, Nanos duration,
                                           Nanos step, size_t num_stripes)
    : num_types_(num_types),
      step_(std::max<Nanos>(step, 1)),
      num_slots_(static_cast<size_t>((duration + step_ - 1) / step_)),
      duration_(static_cast<Nanos>(num_slots_) * step_),
      num_stripes_(num_stripes == 0 ? 1 : num_stripes),
      totals_stride_(TotalsStride(num_types_, sizeof(Cell))),
      cells_(num_stripes_ * std::max<size_t>(num_slots_, 1) * num_types_),
      totals_(num_stripes_ * totals_stride_),
      current_step_(0) {}

void SlidingWindowCounter::AdvanceTo(Nanos now) {
  const int64_t target = now / step_;
  if (target <= current_step_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(advance_mu_);
  int64_t current = current_step_.load(std::memory_order_acquire);
  if (target <= current) return;
  const int64_t steps_to_clear =
      std::min<int64_t>(target - current, static_cast<int64_t>(num_slots_));
  // Retire the slot positions the window rotates into: the slots for
  // steps (current, target], which still hold counts from one full ring
  // revolution ago. A jump of num_slots_ or more clears every slot.
  // Each stripe's bucket retires into that stripe's own totals, so a
  // negative bucket (an undo that landed off-stripe) adds back exactly
  // what the undo subtracted and cross-stripe sums stay consistent.
  for (int64_t i = 1; i <= steps_to_clear; ++i) {
    const size_t slot =
        static_cast<size_t>((current + i) % static_cast<int64_t>(num_slots_));
    for (size_t s = 0; s < num_stripes_; ++s) {
      for (size_t t = 0; t < num_types_; ++t) {
        Cell& cell = cells_[CellIndex(s, slot, t)];
        const int64_t r = cell.received.exchange(0, std::memory_order_relaxed);
        const int64_t a = cell.accepted.exchange(0, std::memory_order_relaxed);
        Cell& total = totals_[TotalIndex(s, t)];
        if (r) total.received.fetch_sub(r, std::memory_order_relaxed);
        if (a) total.accepted.fetch_sub(a, std::memory_order_relaxed);
      }
    }
  }
  current_step_.store(target, std::memory_order_release);
}

void SlidingWindowCounter::Record(size_t type, bool accepted, Nanos now) {
  if (type >= num_types_) return;
  AdvanceTo(now);
  const size_t stripe = StripeOf(num_stripes_);
  const size_t slot = static_cast<size_t>((now / step_) %
                                          static_cast<int64_t>(num_slots_));
  Cell& cell = cells_[CellIndex(stripe, slot, type)];
  Cell& total = totals_[TotalIndex(stripe, type)];
  cell.received.fetch_add(1, std::memory_order_relaxed);
  total.received.fetch_add(1, std::memory_order_relaxed);
  if (accepted) {
    cell.accepted.fetch_add(1, std::memory_order_relaxed);
    total.accepted.fetch_add(1, std::memory_order_relaxed);
  }
}

void SlidingWindowCounter::UndoAccepted(size_t type, Nanos now) {
  if (type >= num_types_) return;
  AdvanceTo(now);
  const size_t slot = static_cast<size_t>((now / step_) %
                                          static_cast<int64_t>(num_slots_));
  // The accept being retracted may sit on any stripe (the shedding
  // thread is not necessarily the deciding thread): check the bucket's
  // cross-stripe sum, then decrement the caller's own stripe. Its cell
  // may dip negative; rotation and the clamped reads absorb that. If the
  // summed bucket is already empty the accept aged out with its slot —
  // decrementing now would understate some current bucket.
  int64_t bucket = 0;
  for (size_t s = 0; s < num_stripes_; ++s) {
    bucket += cells_[CellIndex(s, slot, type)].accepted.load(
        std::memory_order_relaxed);
  }
  if (bucket <= 0) return;
  const size_t stripe = StripeOf(num_stripes_);
  cells_[CellIndex(stripe, slot, type)].accepted.fetch_sub(
      1, std::memory_order_relaxed);
  totals_[TotalIndex(stripe, type)].accepted.fetch_sub(
      1, std::memory_order_relaxed);
}

int64_t SlidingWindowCounter::SumAccepted(size_t type) const {
  int64_t sum = 0;
  for (size_t s = 0; s < num_stripes_; ++s) {
    sum += totals_[TotalIndex(s, type)].accepted.load(
        std::memory_order_relaxed);
  }
  return sum;
}

int64_t SlidingWindowCounter::SumReceived(size_t type) const {
  int64_t sum = 0;
  for (size_t s = 0; s < num_stripes_; ++s) {
    sum += totals_[TotalIndex(s, type)].received.load(
        std::memory_order_relaxed);
  }
  return sum;
}

uint64_t SlidingWindowCounter::AcceptedCount(size_t type) const {
  if (type >= num_types_) return 0;
  const int64_t sum = SumAccepted(type);
  return sum > 0 ? static_cast<uint64_t>(sum) : 0;
}

uint64_t SlidingWindowCounter::ReceivedCount(size_t type) const {
  if (type >= num_types_) return 0;
  const int64_t sum = SumReceived(type);
  return sum > 0 ? static_cast<uint64_t>(sum) : 0;
}

double SlidingWindowCounter::AcceptanceRatio(size_t type,
                                             double empty_value) const {
  const uint64_t received = ReceivedCount(type);
  if (received == 0) return empty_value;
  return static_cast<double>(AcceptedCount(type)) /
         static_cast<double>(received);
}

double SlidingWindowCounter::AverageAcceptanceRatio() const {
  if (num_types_ == 0) return 1.0;
  double sum = 0.0;
  for (size_t t = 0; t < num_types_; ++t) {
    const auto received = static_cast<double>(
        std::max<uint64_t>(ReceivedCount(t), 1));
    sum += static_cast<double>(AcceptedCount(t)) / received;
  }
  return sum / static_cast<double>(num_types_);
}

}  // namespace bouncer::stats
