#ifndef BOUNCER_STATS_SLIDING_WINDOW_COUNTER_H_
#define BOUNCER_STATS_SLIDING_WINDOW_COUNTER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "src/util/time.h"

namespace bouncer::stats {

/// Per-query-type accepted/received counts over a sliding window of
/// duration D discretized into steps of Δ, with D >> Δ (paper §4, e.g.
/// D = 1 s, Δ = 10 ms). Backs both starvation-avoidance strategies.
///
/// Counts are recorded into the step bucket that `now` falls in; expired
/// buckets are retired from running totals as time advances, so
/// AcceptedCount()/ReceivedCount() are O(1) per stripe. Increments are
/// lock-free; step rotation takes a mutex (at most once per Δ).
///
/// With `num_stripes` > 1 every bucket and running total is striped by
/// writer affinity (StripeOf): each decision thread increments only its
/// own stripe's cells, and reads sum across stripes. UndoAccepted() may
/// decrement a different stripe than the one the accept landed on, so
/// per-stripe values are signed and can dip negative; only cross-stripe
/// sums are meaningful and reads clamp them at zero. One stripe (the
/// default) is the exact single-counter behavior.
class SlidingWindowCounter {
 public:
  /// `num_types`: number of tracked query types (fixed).
  /// `duration` / `step`: window size D and step Δ; duration is rounded up
  /// to a whole number of steps.
  SlidingWindowCounter(size_t num_types, Nanos duration, Nanos step,
                       size_t num_stripes = 1);

  SlidingWindowCounter(const SlidingWindowCounter&) = delete;
  SlidingWindowCounter& operator=(const SlidingWindowCounter&) = delete;

  /// Records one received query of `type` at time `now`; counts it as
  /// accepted too when `accepted` is true.
  void Record(size_t type, bool accepted, Nanos now);

  /// Retracts one previously recorded accept of `type`: the runtime shed
  /// the query after the policy counted it as accepted, so the window
  /// would otherwise overstate the type's service. The query stays
  /// counted as received. Best-effort: if the accept's slot has already
  /// rotated out of the window, nothing is decremented.
  void UndoAccepted(size_t type, Nanos now);

  /// Expires buckets older than D relative to `now`. Record() calls this
  /// implicitly; call explicitly before reads if reads can outpace writes.
  void AdvanceTo(Nanos now);

  /// Accepted queries of `type` within the window.
  uint64_t AcceptedCount(size_t type) const;
  /// Received (accepted + rejected) queries of `type` within the window.
  uint64_t ReceivedCount(size_t type) const;

  /// Acceptance ratio accepted/received for `type`; `empty_value` when no
  /// queries of the type were received in the window.
  double AcceptanceRatio(size_t type, double empty_value = 1.0) const;

  /// Mean of per-type acceptance ratios across all types, exactly as
  /// paper Alg. 3 computes AAR: sum_t accepted(t)/max(received(t), 1)
  /// divided by max(|QT|, 1). A type with no received queries in the
  /// window contributes ratio 0.
  double AverageAcceptanceRatio() const;

  size_t num_types() const { return num_types_; }
  size_t num_stripes() const { return num_stripes_; }
  Nanos duration() const { return duration_; }
  Nanos step() const { return step_; }

 private:
  struct Cell {
    std::atomic<int64_t> received{0};
    std::atomic<int64_t> accepted{0};
  };

  /// Bucket cell of (stripe, slot, type).
  size_t CellIndex(size_t stripe, size_t slot, size_t type) const {
    return (stripe * num_slots_ + slot) * num_types_ + type;
  }
  /// Running-total cell of (stripe, type); stripes padded apart.
  size_t TotalIndex(size_t stripe, size_t type) const {
    return stripe * totals_stride_ + type;
  }
  int64_t SumAccepted(size_t type) const;
  int64_t SumReceived(size_t type) const;

  const size_t num_types_;
  const Nanos step_;
  const size_t num_slots_;
  const Nanos duration_;
  const size_t num_stripes_;
  const size_t totals_stride_;

  std::vector<Cell> cells_;   // num_stripes_ x num_slots_ x num_types_.
  std::vector<Cell> totals_;  // num_stripes_ x num_types_, over live slots.
  std::atomic<int64_t> current_step_;  // Absolute step number of newest slot.
  std::mutex advance_mu_;
};

}  // namespace bouncer::stats

#endif  // BOUNCER_STATS_SLIDING_WINDOW_COUNTER_H_
