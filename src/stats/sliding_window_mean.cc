#include "src/stats/sliding_window_mean.h"

#include <algorithm>

namespace bouncer::stats {

SlidingWindowMean::SlidingWindowMean(Nanos duration, Nanos step)
    : step_(std::max<Nanos>(step, 1)),
      num_slots_(static_cast<size_t>((duration + step_ - 1) / step_)),
      duration_(static_cast<Nanos>(num_slots_) * step_),
      slots_(std::max<size_t>(num_slots_, 1)),
      total_sum_(0),
      total_count_(0),
      current_step_(0) {}

void SlidingWindowMean::AdvanceTo(Nanos now) {
  const int64_t target = now / step_;
  if (target <= current_step_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(advance_mu_);
  const int64_t current = current_step_.load(std::memory_order_acquire);
  if (target <= current) return;
  const int64_t steps_to_clear =
      std::min<int64_t>(target - current, static_cast<int64_t>(num_slots_));
  // Retire the slot positions for steps (current, target]; see
  // SlidingWindowCounter::AdvanceTo for the rotation invariant.
  for (int64_t i = 1; i <= steps_to_clear; ++i) {
    const size_t slot =
        static_cast<size_t>((current + i) % static_cast<int64_t>(num_slots_));
    const int64_t s = slots_[slot].sum.exchange(0, std::memory_order_relaxed);
    const uint64_t c =
        slots_[slot].count.exchange(0, std::memory_order_relaxed);
    if (s) total_sum_.fetch_sub(s, std::memory_order_relaxed);
    if (c) total_count_.fetch_sub(c, std::memory_order_relaxed);
  }
  current_step_.store(target, std::memory_order_release);
}

void SlidingWindowMean::Record(int64_t value, Nanos now) {
  AdvanceTo(now);
  const size_t slot = static_cast<size_t>((now / step_) %
                                          static_cast<int64_t>(num_slots_));
  slots_[slot].sum.fetch_add(value, std::memory_order_relaxed);
  slots_[slot].count.fetch_add(1, std::memory_order_relaxed);
  total_sum_.fetch_add(value, std::memory_order_relaxed);
  total_count_.fetch_add(1, std::memory_order_relaxed);
}

double SlidingWindowMean::Mean(double empty_value) const {
  const uint64_t count = total_count_.load(std::memory_order_relaxed);
  if (count == 0) return empty_value;
  return static_cast<double>(total_sum_.load(std::memory_order_relaxed)) /
         static_cast<double>(count);
}

double SlidingWindowMean::RatePerSecond(Nanos now) const {
  const Nanos covered =
      std::max<Nanos>(step_, (now % step_) +
                                 static_cast<Nanos>(num_slots_ - 1) * step_);
  return static_cast<double>(total_count_.load(std::memory_order_relaxed)) /
         ToSeconds(covered);
}

}  // namespace bouncer::stats
