#ifndef BOUNCER_STATS_SLIDING_WINDOW_MEAN_H_
#define BOUNCER_STATS_SLIDING_WINDOW_MEAN_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "src/util/time.h"

namespace bouncer::stats {

/// Moving average (and event rate) over a sliding window of duration D
/// with step Δ, D >> Δ (paper §5.2.2/§5.2.3: pt_mavg and qps_mavg with
/// D = 60 s, Δ = 1 s).
///
/// Record(value, now) adds one sample; Mean() returns the mean of samples
/// still inside the window, Count() their number, and RatePerSecond() the
/// sample arrival rate Count()/window. Increments are lock-free; step
/// rotation takes a mutex at most once per Δ.
class SlidingWindowMean {
 public:
  SlidingWindowMean(Nanos duration, Nanos step);

  SlidingWindowMean(const SlidingWindowMean&) = delete;
  SlidingWindowMean& operator=(const SlidingWindowMean&) = delete;

  /// Records a sample with the given value at time `now`.
  void Record(int64_t value, Nanos now);

  /// Records an event with no value (for pure rate tracking).
  void RecordEvent(Nanos now) { Record(0, now); }

  /// Expires old buckets relative to `now`.
  void AdvanceTo(Nanos now);

  /// Number of samples in the window.
  uint64_t Count() const {
    return total_count_.load(std::memory_order_relaxed);
  }

  /// Mean of samples in the window; `empty_value` when the window is empty.
  double Mean(double empty_value = 0.0) const;

  /// Samples per second over the span the window actually covers at
  /// `now`: the n-1 full slots plus the partially-filled current slot.
  /// Dividing by the nominal duration instead would systematically
  /// under-report the rate by up to one step.
  double RatePerSecond(Nanos now) const;

  Nanos duration() const { return duration_; }
  Nanos step() const { return step_; }

 private:
  struct Slot {
    std::atomic<int64_t> sum{0};
    std::atomic<uint64_t> count{0};
  };

  const Nanos step_;
  const size_t num_slots_;
  const Nanos duration_;

  std::vector<Slot> slots_;
  std::atomic<int64_t> total_sum_;
  std::atomic<uint64_t> total_count_;
  std::atomic<int64_t> current_step_;
  std::mutex advance_mu_;
};

}  // namespace bouncer::stats

#endif  // BOUNCER_STATS_SLIDING_WINDOW_MEAN_H_
