#include "src/stats/summary.h"

#include <algorithm>
#include <cmath>

namespace bouncer::stats {

double SampleSummary::Mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : samples_) sum += v;
  return sum / static_cast<double>(samples_.size());
}

void SampleSummary::EnsureSorted() {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSummary::Percentile(double q) {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<size_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(samples_.size()))));
  return samples_[rank - 1];
}

double SampleSummary::Max() {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  return samples_.back();
}

double SampleSummary::FractionAbove(double threshold) const {
  if (samples_.empty()) return 0.0;
  size_t above = 0;
  for (double v : samples_) {
    if (v > threshold) ++above;
  }
  return static_cast<double>(above) / static_cast<double>(samples_.size());
}

}  // namespace bouncer::stats
