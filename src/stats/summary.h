#ifndef BOUNCER_STATS_SUMMARY_H_
#define BOUNCER_STATS_SUMMARY_H_

#include <cstddef>
#include <vector>

namespace bouncer::stats {

/// Offline percentile/mean computation over a raw sample vector, used by
/// experiment harnesses to report exact (non-bucketed) statistics.
/// Accumulates samples, sorts lazily, and answers quantile queries with
/// nearest-rank semantics.
class SampleSummary {
 public:
  SampleSummary() = default;

  /// Pre-allocates capacity for `n` samples.
  void Reserve(size_t n) { samples_.reserve(n); }

  /// Adds one sample.
  void Add(double value) {
    samples_.push_back(value);
    sorted_ = false;
  }

  /// Number of samples.
  size_t Count() const { return samples_.size(); }

  /// Mean of samples; 0 when empty.
  double Mean() const;

  /// Nearest-rank q-quantile, q in [0, 1]; 0 when empty. Not const
  /// because the backing vector is sorted lazily.
  double Percentile(double q);

  /// Largest sample; 0 when empty.
  double Max();

  /// Fraction of samples strictly greater than `threshold` (SLO-violation
  /// counting); 0 when empty.
  double FractionAbove(double threshold) const;

  /// Removes all samples.
  void Clear() {
    samples_.clear();
    sorted_ = false;
  }

  /// Read-only access to the raw samples.
  const std::vector<double>& samples() const { return samples_; }

 private:
  void EnsureSorted();

  std::vector<double> samples_;
  bool sorted_ = false;
};

}  // namespace bouncer::stats

#endif  // BOUNCER_STATS_SUMMARY_H_
