#include "src/util/clock.h"

namespace bouncer {

SystemClock* SystemClock::Global() {
  static SystemClock* const kInstance = new SystemClock();
  return kInstance;
}

}  // namespace bouncer
