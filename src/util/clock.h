#ifndef BOUNCER_UTIL_CLOCK_H_
#define BOUNCER_UTIL_CLOCK_H_

#include <atomic>
#include <chrono>

#include "src/util/time.h"

namespace bouncer {

/// Source of monotonic time for policies and runtimes. Implementations:
/// SystemClock (real threads, std::chrono::steady_clock) and ManualClock
/// (simulation and tests, explicitly advanced).
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current monotonic time in nanoseconds. Thread-safe.
  virtual Nanos Now() const = 0;
};

/// Real monotonic clock backed by std::chrono::steady_clock.
class SystemClock final : public Clock {
 public:
  Nanos Now() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  /// Process-wide shared instance.
  static SystemClock* Global();
};

/// Deterministic clock advanced explicitly by the owner (simulator or
/// test). Reads and writes are atomic so policy code running on other
/// threads observes a consistent value.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(Nanos start = 0) : now_(start) {}

  Nanos Now() const override { return now_.load(std::memory_order_acquire); }

  /// Sets the current time. Must not go backwards.
  void SetTime(Nanos t) { now_.store(t, std::memory_order_release); }

  /// Advances the current time by `delta` nanoseconds and returns the new
  /// time.
  Nanos Advance(Nanos delta) {
    return now_.fetch_add(delta, std::memory_order_acq_rel) + delta;
  }

 private:
  std::atomic<Nanos> now_;
};

}  // namespace bouncer

#endif  // BOUNCER_UTIL_CLOCK_H_
