#ifndef BOUNCER_UTIL_EPOCH_VISITED_H_
#define BOUNCER_UTIL_EPOCH_VISITED_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace bouncer {

/// Reusable membership set over a dense uint32 id space, for hot loops
/// that would otherwise build a fresh std::set / sorted vector per call
/// (2-hop dedup, BFS visited tracking). Each slot stores the epoch at
/// which its id was last marked; NextEpoch() invalidates every mark in
/// O(1) by bumping the current epoch, so steady-state use allocates
/// nothing and clears nothing. The stamp array is zeroed only on growth
/// and on the (once per ~4 billion epochs) counter wrap.
///
/// Not thread-safe; intended as per-worker scratch.
class EpochVisitedSet {
 public:
  /// Starts a new membership set; previous marks become stale.
  void NextEpoch(size_t universe_size) {
    if (stamps_.size() < universe_size) {
      stamps_.resize(universe_size, 0);
    }
    if (++epoch_ == 0) {  // Wrapped: stale stamps could alias epoch 0.
      std::fill(stamps_.begin(), stamps_.end(), 0);
      epoch_ = 1;
    }
  }

  /// Marks `id`; returns true when `id` was not yet in the current set.
  bool Insert(uint32_t id) {
    if (id >= stamps_.size()) stamps_.resize(id + 1, 0);
    if (stamps_[id] == epoch_) return false;
    stamps_[id] = epoch_;
    return true;
  }

  /// True when `id` is in the current set.
  bool Contains(uint32_t id) const {
    return id < stamps_.size() && stamps_[id] == epoch_;
  }

  size_t universe_size() const { return stamps_.size(); }

 private:
  std::vector<uint32_t> stamps_;
  uint32_t epoch_ = 0;
};

}  // namespace bouncer

#endif  // BOUNCER_UTIL_EPOCH_VISITED_H_
