#ifndef BOUNCER_UTIL_MPMC_QUEUE_H_
#define BOUNCER_UTIL_MPMC_QUEUE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>

namespace bouncer {

/// Destructive-interference granularity used to pad hot atomics.
inline constexpr size_t kCacheLineSize = 64;

/// Polite busy-wait hint: tells the core the caller is spinning so a
/// hyper-threaded sibling (or the power governor) can make progress.
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Bounded lock-free multi-producer/multi-consumer FIFO ring buffer
/// (Vyukov's bounded MPMC queue). Each slot carries a sequence number on
/// its own cache line, so producers and consumers that hit different
/// slots never share a line; the enqueue and dequeue cursors are padded
/// apart as well.
///
/// Ordering contract: elements pushed by one producer are popped in that
/// producer's push order (FIFO per producer); pushes from different
/// producers interleave in the order their CAS on the enqueue cursor
/// lands. A successful TryPush() synchronizes-with the TryPop() that
/// returns the element (release store / acquire load on the slot's
/// sequence number).
///
/// The capacity is rounded up to the next power of two (minimum 2).
template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(size_t min_capacity)
      : capacity_(RoundUpPow2(min_capacity < 2 ? 2 : min_capacity)),
        mask_(capacity_ - 1),
        cells_(new Cell[capacity_]) {
    for (size_t i = 0; i < capacity_; ++i) {
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  /// Attempts to enqueue `value`. Returns false when the ring is full;
  /// `value` is left untouched in that case (only moved from on success).
  bool TryPush(T&& value) {
    Cell* cell;
    size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const size_t seq = cell->sequence.load(std::memory_order_acquire);
      const intptr_t dif =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
      if (dif == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // The slot still holds an unconsumed element: full.
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(value);
    cell->sequence.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Enqueues a prefix of `items[0..count)` with a single reservation on
  /// the enqueue cursor: one CAS claims a contiguous block of slots, so a
  /// batch costs one contended atomic episode instead of `count` of them,
  /// and the whole block is popped in batch order with nothing
  /// interleaved inside it. Returns the number of items moved from (a
  /// prefix; less than `count` when the ring lacks space, 0 when full).
  ///
  /// Wait-free like TryPush: the claimable prefix is measured by scanning
  /// cell sequences, so only slots whose freeing pop has fully completed
  /// are counted. A consumer preempted mid-TryPop shrinks the batch (its
  /// slot reads as occupied) instead of stalling the producer on the
  /// pop's final sequence store.
  size_t TryPushBatch(T* items, size_t count) {
    if (count == 0) return 0;
    size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      // Longest prefix of push-ready slots at the current cursor. A slot
      // is push-ready for position p iff its sequence equals p — which a
      // pop publishes only as its very last step, so every slot counted
      // here can be filled without waiting. Once verified, a slot stays
      // push-ready until some producer claims position p; a successful
      // CAS from `pos` below means that producer is us.
      size_t n = 0;
      while (n < count && n < capacity_ &&
             cells_[(pos + n) & mask_].sequence.load(
                 std::memory_order_acquire) == pos + n) {
        ++n;
      }
      if (n == 0) {
        const size_t seq =
            cells_[pos & mask_].sequence.load(std::memory_order_acquire);
        if (static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos) < 0) {
          return 0;  // The slot still holds an unconsumed element: full.
        }
        pos = enqueue_pos_.load(std::memory_order_relaxed);  // Stale cursor.
        continue;
      }
      if (enqueue_pos_.compare_exchange_weak(pos, pos + n,
                                             std::memory_order_relaxed)) {
        for (size_t i = 0; i < n; ++i) {
          Cell* cell = &cells_[(pos + i) & mask_];
          cell->value = std::move(items[i]);
          cell->sequence.store(pos + i + 1, std::memory_order_release);
        }
        return n;
      }
      // CAS failure reloaded `pos`; rescan at the new cursor.
    }
  }

  /// Attempts to dequeue into `out`. Returns false when the ring is empty.
  bool TryPop(T& out) {
    Cell* cell;
    size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const size_t seq = cell->sequence.load(std::memory_order_acquire);
      const intptr_t dif =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1);
      if (dif == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // No producer has filled this slot yet: empty.
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
    out = std::move(cell->value);
    cell->value = T();  // Drop captured resources before the slot idles.
    cell->sequence.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

  /// Approximate number of queued elements (racy snapshot of the cursors;
  /// may transiently over- or under-count under concurrency).
  size_t SizeApprox() const {
    const size_t enq = enqueue_pos_.load(std::memory_order_relaxed);
    const size_t deq = dequeue_pos_.load(std::memory_order_relaxed);
    return enq >= deq ? enq - deq : 0;
  }

  bool EmptyApprox() const { return SizeApprox() == 0; }

  size_t capacity() const { return capacity_; }

 private:
  struct alignas(kCacheLineSize) Cell {
    std::atomic<size_t> sequence{0};
    T value{};
  };

  static size_t RoundUpPow2(size_t v) {
    size_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

  const size_t capacity_;
  const size_t mask_;
  std::unique_ptr<Cell[]> cells_;
  alignas(kCacheLineSize) std::atomic<size_t> enqueue_pos_{0};
  alignas(kCacheLineSize) std::atomic<size_t> dequeue_pos_{0};
};

/// Condvar-based parking lot for consumers of a lock-free queue: the
/// producer fast path is one fence plus one relaxed load when nobody
/// sleeps (no mutex, no syscall); the mutex is only touched to put a
/// thread to sleep or to wake one.
///
/// Memory-ordering contract (eventcount / Dekker pattern): a consumer
/// registers as a sleeper with a seq_cst RMW *before* re-checking the
/// queue; a producer publishes its element *before* a seq_cst fence and
/// the sleeper check. Either the producer observes the sleeper (and
/// notifies under the mutex, which the consumer holds from re-check to
/// wait, so the notify cannot fall between them), or the consumer's
/// re-check observes the element. A bounded wait backstops the analysis:
/// a missed wakeup costs at most `kParkBackstop` of latency, never a
/// hang.
class ParkingLot {
 public:
  static constexpr std::chrono::milliseconds kParkBackstop{10};

  /// Parks the calling thread unless `recheck()` returns true after the
  /// thread has registered as a sleeper. `recheck` runs under the lot's
  /// mutex and must be cheap and non-blocking. Spurious returns are
  /// allowed; callers loop around their own condition.
  template <typename Pred>
  void ParkUnless(Pred recheck) {
    std::unique_lock<std::mutex> lock(mu_);
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    if (!recheck()) {
      cv_.wait_for(lock, kParkBackstop);
    }
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
  }

  /// Wakes one parked thread, if any. Safe to call from any thread; cheap
  /// when nobody is parked.
  void NotifyOne() {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (sleepers_.load(std::memory_order_relaxed) == 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    cv_.notify_one();
  }

  /// Wakes every parked thread.
  void NotifyAll() {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (sleepers_.load(std::memory_order_relaxed) == 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::atomic<int> sleepers_{0};
};

}  // namespace bouncer

#endif  // BOUNCER_UTIL_MPMC_QUEUE_H_
