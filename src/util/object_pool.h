#ifndef BOUNCER_UTIL_OBJECT_POOL_H_
#define BOUNCER_UTIL_OBJECT_POOL_H_

#include <cstddef>
#include <memory>

#include "src/util/mpmc_queue.h"

namespace bouncer {

/// Lock-free recycling pool for heap objects whose checkout/return sides
/// live on different threads (e.g. a query context allocated at Submit()
/// and released by the completion callback on a worker). Free objects
/// park in a bounded MPMC ring; Acquire() pops one or heap-allocates on a
/// miss, Release() pushes back or deletes when the ring is full, so the
/// pool holds at most `capacity` idle objects. In steady state (in-flight
/// count below capacity) no acquire or release touches the allocator.
///
/// Objects are returned as-is: callers reset whatever state matters
/// before reuse. Objects still checked out when the pool dies are leaked
/// (the owner must quiesce first — completion-exactly-once makes that a
/// structural guarantee for the intended users).
template <typename T>
class ObjectPool {
 public:
  explicit ObjectPool(size_t capacity = 256) : free_(capacity) {}

  ~ObjectPool() {
    T* object = nullptr;
    while (free_.TryPop(object)) delete object;
  }

  ObjectPool(const ObjectPool&) = delete;
  ObjectPool& operator=(const ObjectPool&) = delete;

  /// Pops a recycled object, or default-constructs one on a pool miss.
  T* Acquire() {
    T* object = nullptr;
    if (free_.TryPop(object)) return object;
    return new T();
  }

  /// Returns `object` to the pool (or frees it when the pool is full).
  void Release(T* object) {
    if (object == nullptr) return;
    T* slot = object;
    if (!free_.TryPush(std::move(slot))) delete object;
  }

  /// Number of idle objects currently pooled (racy snapshot).
  size_t IdleApprox() const { return free_.SizeApprox(); }

 private:
  MpmcQueue<T*> free_;
};

}  // namespace bouncer

#endif  // BOUNCER_UTIL_OBJECT_POOL_H_
