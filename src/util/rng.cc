#include "src/util/rng.h"

#include <algorithm>

namespace bouncer {
namespace {

// Acklam's rational approximation to the inverse standard-normal CDF.
// Absolute error < 1.15e-9 over (0, 1), ample for quantile reporting.
double InverseNormalCdf(double p) {
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  static constexpr double kLow = 0.02425;

  p = std::clamp(p, 1e-300, 1.0 - 1e-16);
  if (p < kLow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= 1.0 - kLow) {
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  const double q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

}  // namespace

LogNormalParams LogNormalParams::FromMeanMedian(double mean, double median) {
  LogNormalParams p;
  if (median <= 0.0) {
    p.mu = 0.0;
    p.sigma = 0.0;
    return p;
  }
  p.mu = std::log(median);
  if (mean <= median) {
    p.sigma = 0.0;  // Point mass; mean == median.
  } else {
    p.sigma = std::sqrt(2.0 * std::log(mean / median));
  }
  return p;
}

double LogNormalParams::Quantile(double q) const {
  return std::exp(mu + sigma * InverseNormalCdf(q));
}

}  // namespace bouncer
