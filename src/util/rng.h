#ifndef BOUNCER_UTIL_RNG_H_
#define BOUNCER_UTIL_RNG_H_

#include <cmath>
#include <cstdint>

namespace bouncer {

/// Fast deterministic pseudo-random generator (xoshiro256**), seeded via
/// SplitMix64. Not thread-safe; give each thread / simulation its own
/// instance. Deterministic across platforms, which keeps simulation
/// experiments reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  /// Re-seeds the generator.
  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
    have_gaussian_ = false;
  }

  /// Next raw 64-bit value.
  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    // Lemire's nearly-divisionless bounded generation.
    __uint128_t m = static_cast<__uint128_t>(NextU64()) * bound;
    auto lo = static_cast<uint64_t>(m);
    if (lo < bound) {
      const uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(NextU64()) * bound;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// True with probability `p` (clamped to [0, 1]).
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Exponential variate with the given mean (> 0).
  double NextExponential(double mean) {
    double u = NextDouble();
    // Guard against log(0).
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  /// Standard normal variate (Box–Muller with caching).
  double NextGaussian() {
    if (have_gaussian_) {
      have_gaussian_ = false;
      return cached_gaussian_;
    }
    double u1 = NextDouble();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double u2 = NextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_gaussian_ = r * std::sin(theta);
    have_gaussian_ = true;
    return r * std::cos(theta);
  }

  /// Lognormal variate with log-space parameters mu and sigma.
  double NextLogNormal(double mu, double sigma) {
    return std::exp(mu + sigma * NextGaussian());
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
  bool have_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

/// Parameters of a lognormal distribution expressed in *linear-space*
/// statistics. The paper's Table 1 specifies per-type mean and median
/// (p50) processing times; for a lognormal, median = exp(mu) and
/// mean = exp(mu + sigma^2 / 2), so both log-space parameters are
/// recoverable from those two numbers.
struct LogNormalParams {
  double mu = 0.0;     ///< Log-space location.
  double sigma = 1.0;  ///< Log-space scale (>= 0).

  /// Builds parameters from a linear-space mean and median (both > 0,
  /// mean >= median). Degenerate inputs collapse to a point mass at the
  /// median.
  static LogNormalParams FromMeanMedian(double mean, double median);

  double Mean() const { return std::exp(mu + sigma * sigma / 2.0); }
  double Median() const { return std::exp(mu); }
  /// Value of the q-quantile (q in (0,1)).
  double Quantile(double q) const;
};

}  // namespace bouncer

#endif  // BOUNCER_UTIL_RNG_H_
