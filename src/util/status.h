#ifndef BOUNCER_UTIL_STATUS_H_
#define BOUNCER_UTIL_STATUS_H_

#include <cassert>
#include <string>
#include <string_view>
#include <utility>

namespace bouncer {

/// Error codes for library operations. The library does not throw
/// exceptions; fallible operations return Status or StatusOr<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kResourceExhausted = 6,
  kUnavailable = 7,
  kInternal = 8,
};

/// Returns a short stable name ("OK", "InvalidArgument", ...) for a code.
std::string_view StatusCodeToString(StatusCode code);

/// Value-semantic result of a fallible operation: a code plus an optional
/// human-readable message. Mirrors the RocksDB/Abseil Status idiom.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of T or an error Status. Accessing the value of a
/// non-OK StatusOr is a programming error (checked with assert in debug
/// builds).
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value (mirrors absl::StatusOr).
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit construction from an error status; must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return value_;
  }
  T& value() & {
    assert(ok());
    return value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value if OK, otherwise `fallback`.
  T value_or(T fallback) const& { return ok() ? value_ : std::move(fallback); }

 private:
  Status status_;
  T value_{};
};

}  // namespace bouncer

#endif  // BOUNCER_UTIL_STATUS_H_
