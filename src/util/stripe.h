#ifndef BOUNCER_UTIL_STRIPE_H_
#define BOUNCER_UTIL_STRIPE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "src/util/mpmc_queue.h"  // kCacheLineSize

namespace bouncer {

/// Dense process-wide thread token, assigned on first use. Stable for the
/// thread's lifetime; tokens of exited threads are not recycled. Used to
/// pick a home stripe/run-queue for striped single-writer counter blocks,
/// so a thread keeps hitting the same cache lines instead of contending
/// on shared ones.
inline uint32_t ThreadStripeToken() {
  static std::atomic<uint32_t> next_token{0};
  thread_local const uint32_t token =
      next_token.fetch_add(1, std::memory_order_relaxed);
  return token;
}

/// The calling thread's home stripe among `num_stripes`. Stripe 0 for a
/// single stripe (no thread-local lookup on that path).
inline size_t StripeOf(size_t num_stripes) {
  return num_stripes <= 1 ? 0 : ThreadStripeToken() % num_stripes;
}

/// Rounds a row of `cells` 8-byte counters up to whole cache lines, so
/// consecutive stripes of a flat striped array never share a line.
inline size_t StripeStride(size_t cells) {
  constexpr size_t kPerLine = kCacheLineSize / sizeof(std::atomic<int64_t>);
  return (cells + kPerLine - 1) / kPerLine * kPerLine;
}

}  // namespace bouncer

#endif  // BOUNCER_UTIL_STRIPE_H_
