#ifndef BOUNCER_UTIL_TIME_H_
#define BOUNCER_UTIL_TIME_H_

#include <cstdint>

namespace bouncer {

/// All times in the library — timestamps and durations — are signed 64-bit
/// nanosecond counts. A single integral representation keeps the admission
/// decision path free of floating-point conversions and makes simulated and
/// real time interchangeable.
using Nanos = int64_t;

inline constexpr Nanos kMicrosecond = 1'000;
inline constexpr Nanos kMillisecond = 1'000'000;
inline constexpr Nanos kSecond = 1'000'000'000;

/// Converts a nanosecond count to fractional milliseconds.
constexpr double ToMillis(Nanos ns) {
  return static_cast<double>(ns) / static_cast<double>(kMillisecond);
}

/// Converts a nanosecond count to fractional seconds.
constexpr double ToSeconds(Nanos ns) {
  return static_cast<double>(ns) / static_cast<double>(kSecond);
}

/// Converts fractional milliseconds to nanoseconds (truncating).
constexpr Nanos FromMillis(double ms) {
  return static_cast<Nanos>(ms * static_cast<double>(kMillisecond));
}

/// Converts fractional seconds to nanoseconds (truncating).
constexpr Nanos FromSeconds(double s) {
  return static_cast<Nanos>(s * static_cast<double>(kSecond));
}

}  // namespace bouncer

#endif  // BOUNCER_UTIL_TIME_H_
