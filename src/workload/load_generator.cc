#include "src/workload/load_generator.h"

#include <chrono>

namespace bouncer::workload {

void LoadGenerator::GeneratorThread(size_t thread_index,
                                    std::atomic<uint64_t>* sent) {
  using SteadyClock = std::chrono::steady_clock;
  Rng rng(options_.seed + thread_index * 0x9e37ULL);
  const double thread_rate =
      options_.rate_qps / static_cast<double>(options_.num_threads);
  if (thread_rate <= 0.0) return;
  const double mean_gap_ns = static_cast<double>(kSecond) / thread_rate;

  const auto start = SteadyClock::now();
  const auto end = start + std::chrono::nanoseconds(options_.duration);
  auto next = start;
  uint64_t emitted = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    next += std::chrono::nanoseconds(
        std::max<Nanos>(1, static_cast<Nanos>(
                               rng.NextExponential(mean_gap_ns))));
    if (next >= end) break;
    // Absolute schedule: if we are behind, fire immediately; the backlog
    // drains at full speed, preserving the offered rate on average.
    if (next > SteadyClock::now()) {
      std::this_thread::sleep_until(next);
    }
    sink_(mix_->SampleType(rng));
    ++emitted;
  }
  sent->fetch_add(emitted, std::memory_order_relaxed);
}

uint64_t LoadGenerator::Run() {
  stop_.store(false, std::memory_order_release);
  std::atomic<uint64_t> sent{0};
  if (options_.num_threads <= 1) {
    GeneratorThread(0, &sent);
    return sent.load(std::memory_order_relaxed);
  }
  std::vector<std::thread> threads;
  threads.reserve(options_.num_threads);
  for (size_t i = 0; i < options_.num_threads; ++i) {
    threads.emplace_back([this, i, &sent] { GeneratorThread(i, &sent); });
  }
  for (auto& t : threads) t.join();
  return sent.load(std::memory_order_relaxed);
}

}  // namespace bouncer::workload
