#ifndef BOUNCER_WORKLOAD_LOAD_GENERATOR_H_
#define BOUNCER_WORKLOAD_LOAD_GENERATOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "src/util/rng.h"
#include "src/util/time.h"
#include "src/workload/workload_spec.h"

namespace bouncer::workload {

/// Open-loop load generator modeled on the paper's modified wrk2 (§5.4):
/// it emits queries at a user-given average rate with exponential
/// inter-departure times (Poisson traffic, emulating burstiness), drawing
/// each query's type from the mix proportions. Departures follow an
/// absolute schedule, so a slow sink does not throttle the offered load
/// (no coordinated omission).
class LoadGenerator {
 public:
  struct Options {
    double rate_qps = 1000.0;      ///< Average offered rate.
    Nanos duration = 10 * kSecond; ///< Send window per Run().
    uint64_t seed = 7;
    size_t num_threads = 1;  ///< Rate is split evenly across threads.
  };

  /// Receives the sampled workload type index for each departure and is
  /// responsible for submitting the query (must not block for long).
  using Sink = std::function<void(size_t type_index)>;

  /// `mix` must outlive the generator.
  LoadGenerator(const WorkloadSpec* mix, const Options& options, Sink sink)
      : mix_(mix), options_(options), sink_(std::move(sink)) {}

  /// Sends traffic for the configured duration; blocks until done.
  /// Returns the number of queries emitted.
  uint64_t Run();

  /// Requests an early stop of a Run() in progress (from another thread).
  void RequestStop() { stop_.store(true, std::memory_order_release); }

 private:
  void GeneratorThread(size_t thread_index, std::atomic<uint64_t>* sent);

  const WorkloadSpec* mix_;
  Options options_;
  Sink sink_;
  std::atomic<bool> stop_{false};
};

}  // namespace bouncer::workload

#endif  // BOUNCER_WORKLOAD_LOAD_GENERATOR_H_
