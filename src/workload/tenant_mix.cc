#include "src/workload/tenant_mix.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace bouncer::workload {

TenantMix::TenantMix(std::vector<TenantSpec> tenants)
    : tenants_(std::move(tenants)) {
  cumulative_.reserve(tenants_.size());
  double sum = 0.0;
  for (const TenantSpec& t : tenants_) {
    sum += t.share < 0.0 ? 0.0 : t.share;
    cumulative_.push_back(sum);
  }
}

Status TenantMix::Validate() const {
  if (tenants_.empty()) {
    return Status::InvalidArgument("tenant mix has no tenants");
  }
  std::unordered_set<uint64_t> seen;
  double sum = 0.0;
  for (const TenantSpec& t : tenants_) {
    if (t.external_id == 0) {
      return Status::InvalidArgument(
          "tenant external id 0 is reserved for the default tenant");
    }
    if (!seen.insert(t.external_id).second) {
      return Status::InvalidArgument("duplicate tenant external id " +
                                     std::to_string(t.external_id));
    }
    if (t.share < 0.0) {
      return Status::InvalidArgument("negative share for tenant " +
                                     std::to_string(t.external_id));
    }
    if (t.weight <= 0.0) {
      return Status::InvalidArgument("non-positive weight for tenant " +
                                     std::to_string(t.external_id));
    }
    sum += t.share;
  }
  if (std::abs(sum - 1.0) > 1e-6) {
    return Status::InvalidArgument("tenant shares must sum to 1");
  }
  return Status::OK();
}

size_t TenantMix::SampleIndex(Rng& rng) const {
  const double total = cumulative_.empty() ? 0.0 : cumulative_.back();
  const double u = rng.NextDouble() * total;
  const auto it =
      std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
  const size_t i = static_cast<size_t>(it - cumulative_.begin());
  return i < tenants_.size() ? i : tenants_.size() - 1;
}

StatusOr<std::vector<TenantId>> TenantMix::PopulateRegistry(
    TenantRegistry* registry) const {
  std::vector<TenantId> ids;
  ids.reserve(tenants_.size());
  for (const TenantSpec& t : tenants_) {
    StatusOr<TenantId> id = registry->Register(t.external_id, t.weight);
    if (!id.ok()) return id.status();
    ids.push_back(*id);
  }
  return ids;
}

TenantMix UniformTenantMix(size_t num_tenants) {
  if (num_tenants < 1) num_tenants = 1;
  std::vector<TenantSpec> tenants(num_tenants);
  for (size_t i = 0; i < num_tenants; ++i) {
    tenants[i].external_id = i + 1;
    tenants[i].share = 1.0 / static_cast<double>(num_tenants);
    tenants[i].weight = 1.0;
  }
  return TenantMix(std::move(tenants));
}

TenantMix ZipfianTenantMix(size_t num_tenants, double exponent) {
  if (num_tenants < 1) num_tenants = 1;
  std::vector<TenantSpec> tenants(num_tenants);
  double norm = 0.0;
  for (size_t i = 0; i < num_tenants; ++i) {
    norm += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
  }
  for (size_t i = 0; i < num_tenants; ++i) {
    tenants[i].external_id = i + 1;
    tenants[i].share =
        1.0 / std::pow(static_cast<double>(i + 1), exponent) / norm;
    tenants[i].weight = 1.0;
  }
  return TenantMix(std::move(tenants));
}

TenantMix NoisyNeighborMix(size_t num_tenants, double aggressor_share) {
  if (num_tenants < 2) num_tenants = 2;
  if (aggressor_share < 0.0) aggressor_share = 0.0;
  if (aggressor_share > 1.0) aggressor_share = 1.0;
  std::vector<TenantSpec> tenants(num_tenants);
  tenants[0].external_id = 1;
  tenants[0].share = aggressor_share;
  tenants[0].weight = 1.0;
  const double quiet_share =
      (1.0 - aggressor_share) / static_cast<double>(num_tenants - 1);
  for (size_t i = 1; i < num_tenants; ++i) {
    tenants[i].external_id = i + 1;
    tenants[i].share = quiet_share;
    tenants[i].weight = 1.0;
  }
  return TenantMix(std::move(tenants));
}

}  // namespace bouncer::workload
