#ifndef BOUNCER_WORKLOAD_TENANT_MIX_H_
#define BOUNCER_WORKLOAD_TENANT_MIX_H_

#include <cstdint>
#include <vector>

#include "src/core/tenant_registry.h"
#include "src/core/types.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace bouncer::workload {

/// One tenant's slice of a multi-tenant traffic mix: its wire id, its
/// share of the offered load, and the fair-share weight the admission
/// layer should grant it. Share and weight are deliberately separate —
/// the interesting scenarios are exactly the ones where a tenant offers
/// more traffic than its weight entitles it to.
struct TenantSpec {
  uint64_t external_id = 1;  ///< Wire id (>= 1; 0 is the default tenant).
  double share = 0.0;        ///< Fraction of the offered load, in [0, 1].
  double weight = 1.0;       ///< Fair-share weight (> 0).
};

/// A multi-tenant traffic mix, sampled per departure the same way
/// WorkloadSpec samples query types. Orthogonal to the type mix: a study
/// draws (type, tenant) independently, which matches the paper's setting
/// where every account issues the same query blend.
class TenantMix {
 public:
  TenantMix() = default;
  explicit TenantMix(std::vector<TenantSpec> tenants);

  /// Validates ids are unique and non-zero, weights positive, and shares
  /// non-negative summing to ~1.
  Status Validate() const;

  const std::vector<TenantSpec>& tenants() const { return tenants_; }
  size_t size() const { return tenants_.size(); }
  const TenantSpec& tenant(size_t i) const { return tenants_.at(i); }

  /// Samples a spec index according to the shares.
  size_t SampleIndex(Rng& rng) const;

  /// Samples the wire id to stamp on one departure.
  uint64_t SampleExternalId(Rng& rng) const {
    return tenants_.at(SampleIndex(rng)).external_id;
  }

  /// Registers every tenant's weight with `registry`; returns the dense
  /// ids in spec order.
  StatusOr<std::vector<TenantId>> PopulateRegistry(
      TenantRegistry* registry) const;

 private:
  std::vector<TenantSpec> tenants_;
  std::vector<double> cumulative_;  ///< Prefix sums of shares.
};

/// `num_tenants` equal-share, equal-weight tenants with wire ids 1..N.
TenantMix UniformTenantMix(size_t num_tenants);

/// Zipf-distributed shares over wire ids 1..N (id 1 the hottest), equal
/// weights — the skew of real account populations, and the shape the
/// high-cardinality benches drive. `exponent` is the Zipf s parameter.
TenantMix ZipfianTenantMix(size_t num_tenants, double exponent = 1.0);

/// The noisy-neighbor scenario: tenant 1 (the aggressor) offers
/// `aggressor_share` of the load while the other `num_tenants - 1`
/// well-behaved tenants split the rest evenly. All weights are equal, so
/// under overload a weighted-fair admission layer should hold every
/// tenant — aggressor included — to ~1/num_tenants of the admitted
/// service, while share-blind admission lets the aggressor starve the
/// rest. `num_tenants` must be >= 2.
TenantMix NoisyNeighborMix(size_t num_tenants, double aggressor_share = 0.6);

}  // namespace bouncer::workload

#endif  // BOUNCER_WORKLOAD_TENANT_MIX_H_
