#include "src/workload/trace.h"

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "src/util/rng.h"

namespace bouncer::workload {

double QueryTrace::AverageQps() const {
  const Nanos duration = Duration();
  if (duration <= 0) return 0.0;
  return static_cast<double>(records_.size()) / ToSeconds(duration);
}

std::vector<uint64_t> QueryTrace::TypeCounts() const {
  std::vector<uint64_t> counts(type_names_.size(), 0);
  for (const TraceRecord& r : records_) {
    if (r.type_index < counts.size()) ++counts[r.type_index];
  }
  return counts;
}

Status QueryTrace::Append(const TraceRecord& record) {
  if (record.type_index >= type_names_.size()) {
    return Status::OutOfRange("record type index out of range");
  }
  if (!records_.empty() && record.timestamp < records_.back().timestamp) {
    return Status::InvalidArgument("trace timestamps must be non-decreasing");
  }
  records_.push_back(record);
  return Status::OK();
}

std::string QueryTrace::Serialize() const {
  std::string out = "# bouncer-trace v1\ntypes: ";
  for (size_t i = 0; i < type_names_.size(); ++i) {
    if (i > 0) out += ",";
    out += type_names_[i];
  }
  out += "\n";
  char line[96];
  for (const TraceRecord& r : records_) {
    std::snprintf(line, sizeof(line),
                  "%lld %u %" PRIu64 " %" PRIu64 "\n",
                  static_cast<long long>(r.timestamp), r.type_index,
                  r.param_a, r.param_b);
    out += line;
  }
  return out;
}

StatusOr<QueryTrace> QueryTrace::Parse(std::string_view text) {
  std::istringstream stream{std::string(text)};
  std::string line;
  if (!std::getline(stream, line) || line != "# bouncer-trace v1") {
    return Status::InvalidArgument("bad or missing trace header");
  }
  if (!std::getline(stream, line) || line.rfind("types: ", 0) != 0) {
    return Status::InvalidArgument("missing 'types:' line");
  }
  std::vector<std::string> names;
  {
    std::istringstream names_stream(line.substr(7));
    std::string name;
    while (std::getline(names_stream, name, ',')) {
      if (name.empty()) {
        return Status::InvalidArgument("empty type name in trace");
      }
      names.push_back(name);
    }
  }
  if (names.empty()) return Status::InvalidArgument("trace has no types");

  QueryTrace trace(std::move(names), {});
  size_t line_number = 2;
  while (std::getline(stream, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    TraceRecord record;
    long long timestamp = 0;
    if (std::sscanf(line.c_str(),
                    "%lld %u %" SCNu64 " %" SCNu64, &timestamp,
                    &record.type_index, &record.param_a,
                    &record.param_b) != 4) {
      return Status::InvalidArgument("malformed trace line " +
                                     std::to_string(line_number));
    }
    record.timestamp = timestamp;
    if (Status s = trace.Append(record); !s.ok()) {
      return Status::InvalidArgument(s.message() + " (line " +
                                     std::to_string(line_number) + ")");
    }
  }
  return trace;
}

Status QueryTrace::SaveToFile(const std::string& path) const {
  std::ofstream file(path, std::ios::trunc);
  if (!file) return Status::Unavailable("cannot open for write: " + path);
  file << Serialize();
  return file.good() ? Status::OK()
                     : Status::Unavailable("write failed: " + path);
}

StatusOr<QueryTrace> QueryTrace::LoadFromFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::NotFound("cannot open: " + path);
  std::ostringstream content;
  content << file.rdbuf();
  return Parse(content.str());
}

QueryTrace QueryTrace::Synthesize(const WorkloadSpec& mix, double qps,
                                  Nanos duration, uint64_t seed,
                                  uint64_t param_space) {
  std::vector<std::string> names;
  names.reserve(mix.size());
  for (const auto& type : mix.types()) names.push_back(type.name);
  QueryTrace trace(std::move(names), {});
  if (qps <= 0.0 || duration <= 0) return trace;

  Rng rng(seed);
  const double mean_gap = static_cast<double>(kSecond) / qps;
  Nanos t = 0;
  while (true) {
    t += std::max<Nanos>(1, static_cast<Nanos>(rng.NextExponential(mean_gap)));
    if (t > duration) break;
    TraceRecord record;
    record.timestamp = t;
    record.type_index = static_cast<uint32_t>(mix.SampleType(rng));
    if (param_space > 0) {
      record.param_a = rng.NextBounded(param_space);
      record.param_b = rng.NextBounded(param_space);
    }
    (void)trace.Append(record);
  }
  return trace;
}

uint64_t TraceReplayer::Run() {
  using SteadyClock = std::chrono::steady_clock;
  if (trace_ == nullptr || trace_->empty() || options_.speed <= 0.0) {
    return 0;
  }
  uint64_t delivered = 0;
  const Nanos base = trace_->records().front().timestamp;
  const Nanos span = trace_->Duration() + 1;
  const auto start = SteadyClock::now();
  for (int loop = 0; loop < options_.loops; ++loop) {
    const Nanos loop_offset = static_cast<Nanos>(loop) * span;
    for (const TraceRecord& record : trace_->records()) {
      if (stop_.load(std::memory_order_acquire)) return delivered;
      const auto relative = static_cast<Nanos>(
          static_cast<double>(record.timestamp - base + loop_offset) /
          options_.speed);
      const auto due = start + std::chrono::nanoseconds(relative);
      if (due > SteadyClock::now()) {
        std::this_thread::sleep_until(due);
      }
      sink_(record);
      ++delivered;
    }
  }
  return delivered;
}

}  // namespace bouncer::workload
