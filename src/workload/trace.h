#ifndef BOUNCER_WORKLOAD_TRACE_H_
#define BOUNCER_WORKLOAD_TRACE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"
#include "src/util/time.h"
#include "src/workload/workload_spec.h"

namespace bouncer::workload {

/// One query occurrence in a trace: when it arrived (relative to the
/// trace start), which type it was, and two opaque op parameters (e.g.
/// source/target vertices for graph queries).
struct TraceRecord {
  Nanos timestamp = 0;
  uint32_t type_index = 0;  ///< Index into QueryTrace::type_names().
  uint64_t param_a = 0;
  uint64_t param_b = 0;

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

/// A recorded (or synthesized) query stream — the stand-in for the
/// paper's production query sets (§5.4 samples 5.5 M production queries
/// into per-type query-set files consumed by their load generator).
///
/// Text format (one record per line, timestamps ascending):
///
///   # bouncer-trace v1
///   types: QT1,QT2,QT3
///   0 0 17 42
///   125000 2 99 7
///
class QueryTrace {
 public:
  QueryTrace() = default;
  QueryTrace(std::vector<std::string> type_names,
             std::vector<TraceRecord> records)
      : type_names_(std::move(type_names)), records_(std::move(records)) {}

  const std::vector<std::string>& type_names() const { return type_names_; }
  const std::vector<TraceRecord>& records() const { return records_; }
  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  /// Duration from the first to the last record.
  Nanos Duration() const {
    return records_.empty() ? 0
                            : records_.back().timestamp -
                                  records_.front().timestamp;
  }

  /// Average arrival rate over the span of the trace.
  double AverageQps() const;

  /// Per-type record counts (indexed like type_names()).
  std::vector<uint64_t> TypeCounts() const;

  /// Appends one record. Timestamps must be non-decreasing; out-of-order
  /// appends are rejected.
  Status Append(const TraceRecord& record);

  /// Serializes to the text format.
  std::string Serialize() const;

  /// Parses the text format; rejects unknown versions, malformed lines,
  /// out-of-range type indices and decreasing timestamps.
  static StatusOr<QueryTrace> Parse(std::string_view text);

  /// File convenience wrappers around Serialize()/Parse().
  Status SaveToFile(const std::string& path) const;
  static StatusOr<QueryTrace> LoadFromFile(const std::string& path);

  /// Draws a Poisson trace from a workload mix — the synthetic
  /// equivalent of sampling production traffic for a while. Op params
  /// are drawn uniformly from [0, param_space) when param_space > 0.
  static QueryTrace Synthesize(const WorkloadSpec& mix, double qps,
                               Nanos duration, uint64_t seed,
                               uint64_t param_space = 0);

 private:
  std::vector<std::string> type_names_;
  std::vector<TraceRecord> records_;
};

/// Replays a trace against a sink in real time (wall clock), optionally
/// compressed or stretched with `speed` (2.0 = twice as fast — i.e. the
/// paper's load tests at multiples of sampled traffic). Timestamps
/// follow an absolute schedule like LoadGenerator's, so a slow sink does
/// not throttle the offered load.
class TraceReplayer {
 public:
  struct Options {
    double speed = 1.0;  ///< Playback speed multiplier (> 0).
    int loops = 1;       ///< Times to replay the trace back-to-back.
  };

  using Sink = std::function<void(const TraceRecord&)>;

  TraceReplayer(const QueryTrace* trace, const Options& options, Sink sink)
      : trace_(trace), options_(options), sink_(std::move(sink)) {}

  /// Blocks until the replay finishes (or RequestStop). Returns the
  /// number of records delivered.
  uint64_t Run();

  void RequestStop() { stop_.store(true, std::memory_order_release); }

 private:
  const QueryTrace* trace_;
  Options options_;
  Sink sink_;
  std::atomic<bool> stop_{false};
};

}  // namespace bouncer::workload

#endif  // BOUNCER_WORKLOAD_TRACE_H_
