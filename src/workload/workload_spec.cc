#include "src/workload/workload_spec.h"

#include <cmath>

namespace bouncer::workload {

QueryTypeSpec QueryTypeSpec::FromMillis(std::string name, double proportion,
                                        double mean_ms, double median_ms,
                                        const Slo& slo) {
  QueryTypeSpec spec;
  spec.name = std::move(name);
  spec.proportion = proportion;
  spec.processing_time = LogNormalParams::FromMeanMedian(
      mean_ms * static_cast<double>(kMillisecond),
      median_ms * static_cast<double>(kMillisecond));
  spec.slo = slo;
  return spec;
}

Status WorkloadSpec::Validate() const {
  if (types_.empty()) {
    return Status::InvalidArgument("workload has no query types");
  }
  double sum = 0.0;
  for (const auto& t : types_) {
    if (t.proportion < 0.0) {
      return Status::InvalidArgument("negative proportion for type " + t.name);
    }
    if (t.name.empty()) {
      return Status::InvalidArgument("query type with empty name");
    }
    sum += t.proportion;
  }
  if (std::abs(sum - 1.0) > 1e-6) {
    return Status::InvalidArgument("proportions must sum to 1");
  }
  return Status::OK();
}

Nanos WorkloadSpec::WeightedMeanProcessingTime() const {
  double weighted = 0.0;
  for (const auto& t : types_) {
    weighted += t.proportion * t.processing_time.Mean();
  }
  return static_cast<Nanos>(weighted);
}

double WorkloadSpec::FullLoadQps(size_t parallelism) const {
  const Nanos pt_wmean = WeightedMeanProcessingTime();
  if (pt_wmean <= 0) return 0.0;
  return static_cast<double>(parallelism) / ToSeconds(pt_wmean);
}

size_t WorkloadSpec::SampleType(Rng& rng) const {
  const double u = rng.NextDouble();
  double cumulative = 0.0;
  for (size_t i = 0; i < types_.size(); ++i) {
    cumulative += types_[i].proportion;
    if (u < cumulative) return i;
  }
  return types_.size() - 1;
}

Nanos WorkloadSpec::SampleProcessingTime(size_t index, Rng& rng) const {
  const LogNormalParams& p = types_.at(index).processing_time;
  if (p.sigma == 0.0) return static_cast<Nanos>(p.Median());
  return static_cast<Nanos>(rng.NextLogNormal(p.mu, p.sigma));
}

std::vector<QueryTypeId> WorkloadSpec::PopulateRegistry(
    QueryTypeRegistry* registry) const {
  std::vector<QueryTypeId> ids;
  ids.reserve(types_.size());
  for (const auto& t : types_) {
    auto id = registry->Register(t.name, t.slo);
    ids.push_back(id.ok() ? *id : registry->Resolve(t.name));
  }
  return ids;
}

WorkloadSpec PaperSimulationWorkload() {
  // Table 1 + Table 2: SLO_p50 = 18 ms, SLO_p90 = 50 ms for every type.
  const Slo slo{18 * kMillisecond, 50 * kMillisecond, 0};
  std::vector<QueryTypeSpec> types;
  types.push_back(QueryTypeSpec::FromMillis("fast", 0.40, 1.16, 0.38, slo));
  types.push_back(
      QueryTypeSpec::FromMillis("medium_fast", 0.20, 2.53, 2.22, slo));
  types.push_back(
      QueryTypeSpec::FromMillis("medium_slow", 0.30, 12.13, 7.40, slo));
  types.push_back(QueryTypeSpec::FromMillis("slow", 0.10, 20.05, 12.51, slo));
  return WorkloadSpec(std::move(types));
}

WorkloadSpec PaperRealSystemMix(double qt11_median_ms) {
  // §5.4: proportions as published; query types sorted by cost ascending.
  // Medians descend geometrically from QT11; means carry moderate
  // lognormal skew (mean = 1.4 x median).
  // The published percentages sum to 100.01%; normalize so Validate()
  // holds.
  static constexpr double kRawProportions[11] = {
      0.1156, 0.0004, 0.0004, 0.0234, 0.1344, 0.1344,
      0.0042, 0.0009, 0.2635, 0.0449, 0.2780};
  double total = 0.0;
  for (double p : kRawProportions) total += p;
  const Slo slo{18 * kMillisecond, 50 * kMillisecond, 0};
  const double ratio = 0.60;  // median(QT_i) = median(QT_{i+1}) * ratio.
  std::vector<QueryTypeSpec> types;
  types.reserve(11);
  for (int i = 0; i < 11; ++i) {
    const double median = qt11_median_ms * std::pow(ratio, 10 - i);
    types.push_back(QueryTypeSpec::FromMillis("QT" + std::to_string(i + 1),
                                              kRawProportions[i] / total,
                                              1.4 * median, median, slo));
  }
  return WorkloadSpec(std::move(types));
}

}  // namespace bouncer::workload
