#ifndef BOUNCER_WORKLOAD_WORKLOAD_SPEC_H_
#define BOUNCER_WORKLOAD_WORKLOAD_SPEC_H_

#include <string>
#include <vector>

#include "src/core/query_type_registry.h"
#include "src/core/types.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace bouncer::workload {

/// One query type in a workload mix: its share of the traffic, its
/// processing-time distribution (lognormal, which the paper found
/// approximates production queries), and its latency SLO.
struct QueryTypeSpec {
  std::string name;
  double proportion = 0.0;  ///< Fraction of the query mix, in [0, 1].
  /// Lognormal processing-time distribution over nanoseconds.
  LogNormalParams processing_time;
  Slo slo;

  /// Convenience constructor from Table-1-style numbers: mean and median
  /// processing time in milliseconds.
  static QueryTypeSpec FromMillis(std::string name, double proportion,
                                  double mean_ms, double median_ms,
                                  const Slo& slo);

  double MeanProcessingMs() const {
    return processing_time.Mean() / static_cast<double>(kMillisecond);
  }
};

/// A typed query mix: the full description of the traffic a study offers
/// to the system (paper Table 1 for simulation, §5.4's QT1..QT11 mix for
/// the real-system study).
class WorkloadSpec {
 public:
  WorkloadSpec() = default;
  explicit WorkloadSpec(std::vector<QueryTypeSpec> types)
      : types_(std::move(types)) {}

  /// Validates that proportions are non-negative and sum to ~1.
  Status Validate() const;

  const std::vector<QueryTypeSpec>& types() const { return types_; }
  size_t size() const { return types_.size(); }
  const QueryTypeSpec& type(size_t i) const { return types_.at(i); }

  /// Weighted mean processing time pt_wmean = sum_i p_i * mean_i, in
  /// nanoseconds (paper §5.3).
  Nanos WeightedMeanProcessingTime() const;

  /// Traffic rate that fully utilizes a query engine with `parallelism`
  /// processes: QPS_full_load = P / pt_wmean (paper §5.3).
  double FullLoadQps(size_t parallelism) const;

  /// Samples a type index according to the mix proportions.
  size_t SampleType(Rng& rng) const;

  /// Samples a processing time (ns) for type `index`.
  Nanos SampleProcessingTime(size_t index, Rng& rng) const;

  /// Builds a QueryTypeRegistry with one entry per type, in order, so
  /// QueryTypeId == spec index + 1 (id 0 is the default type). Returns
  /// the mapping spec-index -> QueryTypeId.
  std::vector<QueryTypeId> PopulateRegistry(QueryTypeRegistry* registry) const;

 private:
  std::vector<QueryTypeSpec> types_;
};

/// The paper's Table 1 simulation workload: fast 40%, medium fast 20%,
/// medium slow 30%, slow 10%, with lognormal processing times matching
/// the published mean/p50 (their p90s then match Table 1 to within a few
/// percent). All types carry the Table 2 SLO (p50=18 ms, p90=50 ms).
WorkloadSpec PaperSimulationWorkload();

/// The paper's §5.4 real-system mix: QT1..QT11 with the published
/// proportions, costs ascending with the type index. Processing-time
/// scale is configurable: `qt11_median_ms` sets the heaviest type's
/// median; lighter types scale down geometrically. Defaults approximate
/// the published behaviour (QT11 p50 around 9–15 ms under load).
WorkloadSpec PaperRealSystemMix(double qt11_median_ms = 9.0);

}  // namespace bouncer::workload

#endif  // BOUNCER_WORKLOAD_WORKLOAD_SPEC_H_
