#include "src/core/accept_fraction_policy.h"

#include <gtest/gtest.h>

#include "tests/core/test_helpers.h"

namespace bouncer {
namespace {

using ::bouncer::testing::PolicyHarness;

AcceptFractionPolicy::Options TestOptions(double max_util,
                                          size_t units = 4) {
  AcceptFractionPolicy::Options options;
  options.max_utilization = max_util;
  options.processing_units = units;
  options.update_interval = kSecond;
  options.window_duration = 10 * kSecond;
  options.window_step = kSecond;
  return options;
}

/// Drives `policy` with `qps` arrivals/sec and completions of `pt` for
/// `seconds` of virtual time, returning the accept count of the last
/// second.
int DriveSteadyState(AcceptFractionPolicy& policy, double qps, Nanos pt,
                     int seconds) {
  int last_second_accepts = 0;
  Nanos now = 0;
  const auto per_second = static_cast<int>(qps);
  for (int s = 0; s < seconds; ++s) {
    last_second_accepts = 0;
    for (int i = 0; i < per_second; ++i) {
      now += kSecond / per_second;
      if (policy.Decide(1, now) == Decision::kAccept) {
        ++last_second_accepts;
        policy.OnCompleted(1, pt, now);
      }
    }
  }
  return last_second_accepts;
}

TEST(AcceptFractionTest, StartsFullyOpen) {
  PolicyHarness h;
  AcceptFractionPolicy policy(h.context, TestOptions(0.95));
  EXPECT_DOUBLE_EQ(policy.CurrentFraction(), 1.0);
  EXPECT_EQ(policy.Decide(h.fast_id, 0), Decision::kAccept);
}

TEST(AcceptFractionTest, AcceptsEverythingUnderCapacity) {
  PolicyHarness h;
  AcceptFractionPolicy policy(h.context, TestOptions(0.95, 4));
  // Demand: 100 qps x 10ms = 1 unit << 0.95 * 4 units.
  const int accepts = DriveSteadyState(policy, 100, 10 * kMillisecond, 15);
  EXPECT_EQ(accepts, 100);
  EXPECT_DOUBLE_EQ(policy.CurrentFraction(), 1.0);
}

TEST(AcceptFractionTest, ShedsProportionallyWhenOverloaded) {
  PolicyHarness h;
  AcceptFractionPolicy policy(h.context, TestOptions(0.95, 4));
  // Demand: 1000 qps x 10ms = 10 units; APC = 3.8 -> f ~ 0.38.
  const int accepts = DriveSteadyState(policy, 1000, 10 * kMillisecond, 20);
  EXPECT_LT(policy.CurrentFraction(), 1.0);
  // Steady state: acceptance rate such that APC is respected. Because
  // only accepted queries contribute processing-time samples, f converges
  // near APC / demanded = 0.38.
  EXPECT_NEAR(accepts / 1000.0, 0.38, 0.12);
}

TEST(AcceptFractionTest, UtilizationThresholdScalesFraction) {
  PolicyHarness h;
  AcceptFractionPolicy low(h.context, TestOptions(0.50, 4));
  AcceptFractionPolicy high(h.context, TestOptions(1.00, 4));
  const int accepts_low = DriveSteadyState(low, 1000, 10 * kMillisecond, 20);
  const int accepts_high = DriveSteadyState(high, 1000, 10 * kMillisecond, 20);
  EXPECT_LT(accepts_low, accepts_high);
}

TEST(AcceptFractionTest, QueueLengthLimitEnforced) {
  PolicyHarness h;
  AcceptFractionPolicy::Options options = TestOptions(1.0);
  options.queue_length_limit = 2;
  AcceptFractionPolicy policy(h.context, options);
  h.queue->OnEnqueued(h.fast_id);
  h.queue->OnEnqueued(h.fast_id);
  EXPECT_EQ(policy.Decide(h.fast_id, 0), Decision::kReject);
}

TEST(AcceptFractionTest, TimeoutGuardRejectsExpectedTimeouts) {
  PolicyHarness h(Slo{}, /*parallelism=*/4);
  AcceptFractionPolicy::Options options = TestOptions(1.0, 2);
  options.queue_timeout = 15 * kMillisecond;
  AcceptFractionPolicy policy(h.context, options);
  for (int i = 0; i < 10; ++i) {
    policy.OnCompleted(h.fast_id, 10 * kMillisecond, 0);
  }
  for (int i = 0; i < 4; ++i) h.queue->OnEnqueued(h.fast_id);
  // ewt = 4 * 10ms / 2 = 20ms > 15ms timeout.
  EXPECT_EQ(policy.Decide(h.fast_id, kSecond / 2), Decision::kReject);
}

TEST(AcceptFractionTest, ZeroDemandMeansFullAcceptance) {
  PolicyHarness h;
  AcceptFractionPolicy policy(h.context, TestOptions(0.95));
  // No completions ever: pt_mavg = 0 -> dpc = 0 -> f = min(1, inf) = 1.
  Nanos now = 0;
  for (int i = 0; i < 5000; ++i) {
    now += kMillisecond;
    EXPECT_EQ(policy.Decide(h.fast_id, now), Decision::kAccept);
  }
  EXPECT_DOUBLE_EQ(policy.CurrentFraction(), 1.0);
}

TEST(AcceptFractionTest, ProcessingUnitsDefaultToParallelism) {
  PolicyHarness h(Slo{}, /*parallelism=*/8);
  AcceptFractionPolicy::Options options = TestOptions(1.0, /*units=*/0);
  AcceptFractionPolicy policy(h.context, options);
  // Just exercises the default path; behaviour equals units=8.
  EXPECT_EQ(policy.Decide(h.fast_id, 0), Decision::kAccept);
}

}  // namespace
}  // namespace bouncer
