#include "src/core/acceptance_allowance_policy.h"

#include <gtest/gtest.h>

#include <memory>

namespace bouncer {
namespace {

/// Inner policy with a scriptable decision and call counters.
class StubPolicy : public AdmissionPolicy {
 public:
  Decision Decide(WorkKey, Nanos) override {
    ++decide_calls;
    return next_decision;
  }
  void OnEnqueued(WorkKey, Nanos) override { ++enqueued_calls; }
  void OnRejected(WorkKey, Nanos) override { ++rejected_calls; }
  void OnDequeued(WorkKey, Nanos, Nanos) override { ++dequeued_calls; }
  void OnCompleted(WorkKey, Nanos, Nanos) override { ++completed_calls; }
  std::string_view name() const override { return "Stub"; }

  Decision next_decision = Decision::kReject;
  int decide_calls = 0;
  int enqueued_calls = 0;
  int rejected_calls = 0;
  int dequeued_calls = 0;
  int completed_calls = 0;
};

AcceptanceAllowancePolicy MakePolicy(StubPolicy** stub_out, double allowance,
                                     size_t num_types = 3) {
  auto stub = std::make_unique<StubPolicy>();
  *stub_out = stub.get();
  AcceptanceAllowancePolicy::Options options;
  options.allowance = allowance;
  return AcceptanceAllowancePolicy(std::move(stub), num_types, options);
}

TEST(AcceptanceAllowanceTest, FirstQueryOfTypeAlwaysAccepted) {
  StubPolicy* stub = nullptr;
  auto policy = MakePolicy(&stub, 0.01);
  // No window history: accepted without consulting the inner policy.
  EXPECT_EQ(policy.Decide(1, 0), Decision::kAccept);
  EXPECT_EQ(stub->decide_calls, 0);
}

TEST(AcceptanceAllowanceTest, DelegatesOnceHistoryExists) {
  StubPolicy* stub = nullptr;
  auto policy = MakePolicy(&stub, 0.0);  // A=0: no free passes at all.
  stub->next_decision = Decision::kAccept;
  EXPECT_EQ(policy.Decide(1, 0), Decision::kAccept);  // rqc==0 path.
  EXPECT_EQ(policy.Decide(1, 0), Decision::kAccept);  // Inner accepts.
  EXPECT_EQ(stub->decide_calls, 1);
  stub->next_decision = Decision::kReject;
  EXPECT_EQ(policy.Decide(1, 0), Decision::kReject);
}

TEST(AcceptanceAllowanceTest, LowAcceptanceRatioGrantsPass) {
  StubPolicy* stub = nullptr;
  auto policy = MakePolicy(&stub, 0.5);
  stub->next_decision = Decision::kReject;
  // Build history: first accepted (rqc=0 rule), then a string of inner
  // rejections drags AR below A=0.5, after which passes are granted
  // without asking the inner policy.
  (void)policy.Decide(1, 0);
  int free_passes = 0;
  for (int i = 0; i < 200; ++i) {
    const int calls_before = stub->decide_calls;
    const Decision d = policy.Decide(1, 0);
    if (d == Decision::kAccept && stub->decide_calls == calls_before) {
      ++free_passes;
    }
  }
  EXPECT_GT(free_passes, 0);
  // AR is pinned near A: roughly half the queries got in.
  EXPECT_NEAR(policy.AcceptanceRatio(1), 0.5, 0.15);
}

TEST(AcceptanceAllowanceTest, OnTheSpotOverrideRate) {
  StubPolicy* stub = nullptr;
  const double allowance = 0.05;
  auto policy = MakePolicy(&stub, allowance);
  stub->next_decision = Decision::kReject;
  // Keep AR above A so the historical branch stays cold by feeding a
  // different type... simpler: measure aggregate accepts; they come from
  // the AR<A branch and the random branch combined, which the strategy
  // caps near A over the window.
  int accepted = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (policy.Decide(1, 0) == Decision::kAccept) ++accepted;
  }
  const double rate = static_cast<double>(accepted) / n;
  // The strategy guarantees roughly A acceptances but the two branches
  // can combine to about 2A.
  EXPECT_GT(rate, allowance * 0.5);
  EXPECT_LT(rate, allowance * 3.0);
}

TEST(AcceptanceAllowanceTest, TypesTrackedIndependently) {
  StubPolicy* stub = nullptr;
  auto policy = MakePolicy(&stub, 0.0);
  stub->next_decision = Decision::kReject;
  (void)policy.Decide(1, 0);  // Type 1 history exists.
  // Type 2 has no history: still gets the first-query pass.
  EXPECT_EQ(policy.Decide(2, 0), Decision::kAccept);
}

TEST(AcceptanceAllowanceTest, WindowExpiryRestoresFirstQueryPass) {
  StubPolicy* stub = nullptr;
  auto stub_ptr = std::make_unique<StubPolicy>();
  stub = stub_ptr.get();
  AcceptanceAllowancePolicy::Options options;
  options.allowance = 0.0;
  options.window_duration = kSecond;
  options.window_step = 10 * kMillisecond;
  AcceptanceAllowancePolicy policy(std::move(stub_ptr), 3, options);
  stub->next_decision = Decision::kReject;
  (void)policy.Decide(1, 0);
  EXPECT_EQ(policy.Decide(1, 0), Decision::kReject);
  // Two windows later the history is gone; rqc==0 accepts again.
  EXPECT_EQ(policy.Decide(1, 3 * kSecond), Decision::kAccept);
}

TEST(AcceptanceAllowanceTest, HooksForwardToInner) {
  StubPolicy* stub = nullptr;
  auto policy = MakePolicy(&stub, 0.01);
  policy.OnEnqueued(1, 0);
  policy.OnRejected(1, 0);
  policy.OnDequeued(1, 5, 10);
  policy.OnCompleted(1, 5, 10);
  EXPECT_EQ(stub->enqueued_calls, 1);
  EXPECT_EQ(stub->rejected_calls, 1);
  EXPECT_EQ(stub->dequeued_calls, 1);
  EXPECT_EQ(stub->completed_calls, 1);
}

TEST(AcceptanceAllowanceTest, NameCombinesInner) {
  StubPolicy* stub = nullptr;
  auto policy = MakePolicy(&stub, 0.01);
  EXPECT_EQ(policy.name(), "Stub+AcceptanceAllowance");
}

TEST(AcceptanceAllowanceTest, InnerAcceptPassesThrough) {
  StubPolicy* stub = nullptr;
  auto policy = MakePolicy(&stub, 0.0);
  stub->next_decision = Decision::kAccept;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(policy.Decide(1, 0), Decision::kAccept);
  }
}

}  // namespace
}  // namespace bouncer
