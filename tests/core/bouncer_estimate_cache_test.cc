// Cross-checks for the O(1) incremental Eq. 2 queue-wait estimate: in
// every quiescent state the fast aggregate path must return exactly what
// the reference full rescan returns, across warm/cold mixes, priorities,
// shed rollbacks, and out-of-band queue mutation (where the fast path
// must detect drift and fall back to the rescan).

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/core/bouncer_policy.h"
#include "tests/core/test_helpers.h"

namespace bouncer {
namespace {

using ::bouncer::testing::PolicyHarness;

BouncerPolicy::Options CheckedOptions() {
  BouncerPolicy::Options options;
  options.histogram_swap_interval = kSecond;
  // Every fast-path estimate asserts equality with the rescan.
  options.check_estimates = true;
  return options;
}

void Train(BouncerPolicy& policy, QueryTypeId type, Nanos pt, int n = 100) {
  for (int i = 0; i < n; ++i) policy.OnCompleted(type, pt, 0);
  policy.ForceHistogramSwap();
}

/// Enqueues through both the QueueState and the policy hook, the way the
/// server stage and the simulator do — this keeps the incremental
/// aggregate in sync, so the fast path stays active.
void HookEnqueue(PolicyHarness& h, BouncerPolicy& policy, QueryTypeId type,
                 Nanos now = 0) {
  h.queue->OnEnqueued(type);
  policy.OnEnqueued(type, now);
}

void HookDequeue(PolicyHarness& h, BouncerPolicy& policy, QueryTypeId type,
                 Nanos now = 0) {
  h.queue->OnDequeued(type);
  policy.OnDequeued(type, 0, now);
}

TEST(BouncerEstimateCacheTest, IncrementalMatchesRescanWarmTypes) {
  PolicyHarness h(Slo{18 * kMillisecond, 50 * kMillisecond, 0},
                  /*parallelism=*/2);
  BouncerPolicy policy(h.context, CheckedOptions());
  Train(policy, h.fast_id, 4 * kMillisecond);
  Train(policy, h.slow_id, 20 * kMillisecond);
  HookEnqueue(h, policy, h.fast_id);
  HookEnqueue(h, policy, h.slow_id);
  HookEnqueue(h, policy, h.slow_id);
  // (1*4 + 2*20) / 2 = 22 ms; check_estimates asserts fast == rescan.
  EXPECT_EQ(policy.EstimateQueueWait(), 22 * kMillisecond);
  EXPECT_EQ(policy.EstimateQueueWait(), policy.EstimateQueueWaitSlow());
  HookDequeue(h, policy, h.slow_id);
  EXPECT_EQ(policy.EstimateQueueWait(), 12 * kMillisecond);
  EXPECT_EQ(policy.EstimateQueueWait(), policy.EstimateQueueWaitSlow());
}

TEST(BouncerEstimateCacheTest, ColdTypesCostedAtGeneralMean) {
  PolicyHarness h(Slo{18 * kMillisecond, 50 * kMillisecond, 0},
                  /*parallelism=*/1);
  BouncerPolicy::Options options = CheckedOptions();
  options.warmup_min_samples = 10;
  BouncerPolicy policy(h.context, options);
  Train(policy, h.fast_id, 10 * kMillisecond, 100);
  // "slow" is cold: its queued query contributes the general mean (10ms).
  HookEnqueue(h, policy, h.slow_id);
  EXPECT_EQ(policy.EstimateQueueWait(), 10 * kMillisecond);
  EXPECT_EQ(policy.EstimateQueueWait(), policy.EstimateQueueWaitSlow());
  // Warm the type up; the next swap re-buckets the queued query from the
  // cold count into the warm weighted sum.
  Train(policy, h.slow_id, 30 * kMillisecond, 20);
  EXPECT_EQ(policy.EstimateQueueWait(), 30 * kMillisecond);
  EXPECT_EQ(policy.EstimateQueueWait(), policy.EstimateQueueWaitSlow());
}

TEST(BouncerEstimateCacheTest, PriorityLevelsMatchRescan) {
  PolicyHarness h(Slo{18 * kMillisecond, 50 * kMillisecond, 0},
                  /*parallelism=*/1);
  BouncerPolicy::Options options = CheckedOptions();
  options.type_priorities = {0, 0, 5};  // default/fast at 0, slow at 5.
  BouncerPolicy policy(h.context, options);
  Train(policy, h.fast_id, 4 * kMillisecond);
  Train(policy, h.slow_id, 20 * kMillisecond);
  HookEnqueue(h, policy, h.slow_id);
  HookEnqueue(h, policy, h.slow_id);
  HookEnqueue(h, policy, h.fast_id);
  // Fast (prio 0) ignores the lower-priority slow work.
  EXPECT_EQ(policy.EstimateQueueWait(h.fast_id), 4 * kMillisecond);
  // Slow (prio 5) waits behind everything: 2x20 + 1x4.
  EXPECT_EQ(policy.EstimateQueueWait(h.slow_id), 44 * kMillisecond);
  EXPECT_EQ(policy.EstimateQueueWait(h.fast_id),
            policy.EstimateQueueWaitSlow(h.fast_id));
  EXPECT_EQ(policy.EstimateQueueWait(h.slow_id),
            policy.EstimateQueueWaitSlow(h.slow_id));
}

TEST(BouncerEstimateCacheTest, SheddedQueryRollsBackContribution) {
  PolicyHarness h(Slo{18 * kMillisecond, 50 * kMillisecond, 0},
                  /*parallelism=*/1);
  BouncerPolicy policy(h.context, CheckedOptions());
  Train(policy, h.fast_id, 10 * kMillisecond);
  HookEnqueue(h, policy, h.fast_id);
  HookEnqueue(h, policy, h.fast_id);
  EXPECT_EQ(policy.EstimateQueueWait(), 20 * kMillisecond);
  // The stage sheds one of them: OnShedded mirrors the queue rollback.
  h.queue->OnDequeued(h.fast_id);
  policy.OnShedded(h.fast_id, 0);
  EXPECT_EQ(policy.EstimateQueueWait(), 10 * kMillisecond);
  EXPECT_EQ(policy.EstimateQueueWait(), policy.EstimateQueueWaitSlow());
}

TEST(BouncerEstimateCacheTest, OutOfBandQueueMutationFallsBackExactly) {
  PolicyHarness h(Slo{18 * kMillisecond, 50 * kMillisecond, 0},
                  /*parallelism=*/2);
  // No check_estimates here: the whole point is that tracked and live
  // occupancy disagree, which the fast path must detect.
  BouncerPolicy::Options options;
  options.histogram_swap_interval = kSecond;
  BouncerPolicy policy(h.context, options);
  Train(policy, h.fast_id, 4 * kMillisecond);
  Train(policy, h.slow_id, 20 * kMillisecond);
  // Mutate the queue without telling the policy, as tests and external
  // runtimes do. The estimate must still be the exact Eq. 2 value.
  h.queue->OnEnqueued(h.fast_id);
  h.queue->OnEnqueued(h.slow_id);
  h.queue->OnEnqueued(h.slow_id);
  EXPECT_EQ(policy.EstimateQueueWait(), 22 * kMillisecond);
  EXPECT_EQ(policy.EstimateQueueWait(), policy.EstimateQueueWaitSlow());
  // A swap rebuild re-syncs the aggregates to the live queue; the fast
  // path takes over and must agree.
  policy.ForceHistogramSwap();
  EXPECT_EQ(policy.EstimateQueueWait(), 22 * kMillisecond);
  EXPECT_EQ(policy.EstimateQueueWait(), policy.EstimateQueueWaitSlow());
}

TEST(BouncerEstimateCacheTest, RescanOnlyModeMatchesToo) {
  PolicyHarness h(Slo{18 * kMillisecond, 50 * kMillisecond, 0},
                  /*parallelism=*/2);
  BouncerPolicy::Options options;
  options.histogram_swap_interval = kSecond;
  options.incremental_estimate = false;  // Pre-optimization behavior.
  BouncerPolicy policy(h.context, options);
  Train(policy, h.fast_id, 4 * kMillisecond);
  h.queue->OnEnqueued(h.fast_id);
  EXPECT_EQ(policy.EstimateQueueWait(), 2 * kMillisecond);
  EXPECT_EQ(policy.EstimateQueueWait(), policy.EstimateQueueWaitSlow());
}

// Hook-driven churn from several threads, concurrent with swaps: after
// the dust settles and a rebuild runs, the fast estimate must equal the
// rescan again (the aggregate self-heals; it never wedges).
TEST(BouncerEstimateCacheTest, ConcurrentChurnSelfHeals) {
  PolicyHarness h(Slo{kSecond, kSecond, 0}, /*parallelism=*/4);
  BouncerPolicy::Options options;
  options.histogram_swap_interval = kSecond;
  BouncerPolicy policy(h.context, options);
  Train(policy, h.fast_id, 2 * kMillisecond);
  Train(policy, h.slow_id, 8 * kMillisecond);

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      const QueryTypeId type = (t % 2 == 0) ? h.fast_id : h.slow_id;
      for (int i = 0; i < 20'000; ++i) {
        h.queue->OnEnqueued(type);
        policy.OnEnqueued(type, 0);
        if (i % 1000 == 0) policy.ForceHistogramSwap();
        h.queue->OnDequeued(type);
        policy.OnDequeued(type, 0, 0);
      }
    });
  }
  std::thread reader([&] {
    for (int i = 0; i < 50'000; ++i) {
      // Must never crash or return garbage below zero.
      ASSERT_GE(policy.EstimateQueueWait(), 0);
    }
  });
  for (auto& t : threads) t.join();
  reader.join();

  policy.ForceHistogramSwap();  // Rebuild from the (now empty) queue.
  EXPECT_EQ(policy.EstimateQueueWait(), 0);
  EXPECT_EQ(policy.EstimateQueueWait(), policy.EstimateQueueWaitSlow());
}

}  // namespace
}  // namespace bouncer
