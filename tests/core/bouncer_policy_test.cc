#include "src/core/bouncer_policy.h"

#include <gtest/gtest.h>

#include "tests/core/test_helpers.h"

namespace bouncer {
namespace {

using ::bouncer::testing::PolicyHarness;

BouncerPolicy::Options FastSwapOptions() {
  BouncerPolicy::Options options;
  options.histogram_swap_interval = kSecond;
  return options;
}

/// Feeds `n` completions of duration `pt` and publishes them.
void Train(BouncerPolicy& policy, QueryTypeId type, Nanos pt, int n = 100) {
  for (int i = 0; i < n; ++i) policy.OnCompleted(type, pt, 0);
  policy.ForceHistogramSwap();
}

TEST(BouncerPolicyTest, AcceptsWhenColdByDefault) {
  PolicyHarness h;
  BouncerPolicy policy(h.context, FastSwapOptions());
  // No histogram data at all: nothing to reject on.
  EXPECT_EQ(policy.Decide(h.fast_id, 0), Decision::kAccept);
}

TEST(BouncerPolicyTest, AcceptsUnderSlo) {
  PolicyHarness h;  // SLO p50=18ms p90=50ms.
  BouncerPolicy policy(h.context, FastSwapOptions());
  Train(policy, h.fast_id, 2 * kMillisecond);
  EXPECT_EQ(policy.Decide(h.fast_id, kSecond), Decision::kAccept);
}

TEST(BouncerPolicyTest, RejectsWhenP50EstimateExceedsSlo) {
  PolicyHarness h;
  BouncerPolicy policy(h.context, FastSwapOptions());
  Train(policy, h.slow_id, 25 * kMillisecond);  // > SLO_p50 = 18 ms.
  EXPECT_EQ(policy.Decide(h.slow_id, kSecond), Decision::kReject);
}

TEST(BouncerPolicyTest, RejectsWhenP90EstimateExceedsSlo) {
  PolicyHarness h;
  BouncerPolicy policy(h.context, FastSwapOptions());
  // p50 ~10ms (ok), p90 > 50ms: 90 samples at 10ms, 10 at 80ms.
  for (int i = 0; i < 89; ++i) policy.OnCompleted(h.slow_id, 10 * kMillisecond, 0);
  for (int i = 0; i < 11; ++i) policy.OnCompleted(h.slow_id, 80 * kMillisecond, 0);
  policy.ForceHistogramSwap();
  const auto e = policy.EstimateFor(h.slow_id, kSecond);
  EXPECT_LE(e.ert_p50, 18 * kMillisecond);
  EXPECT_GT(e.ert_p90, 50 * kMillisecond);
  EXPECT_EQ(policy.Decide(h.slow_id, kSecond), Decision::kReject);
}

TEST(BouncerPolicyTest, QueueWaitPushesEstimateOverSlo) {
  PolicyHarness h(Slo{18 * kMillisecond, 50 * kMillisecond, 0},
                  /*parallelism=*/4);
  BouncerPolicy policy(h.context, FastSwapOptions());
  Train(policy, h.fast_id, 10 * kMillisecond);  // Well under SLO alone.
  EXPECT_EQ(policy.Decide(h.fast_id, kSecond), Decision::kAccept);
  // 8 queued fast queries: ewt = 8 * 10ms / 4 = 20ms; 20 + 10 > 18.
  for (int i = 0; i < 8; ++i) h.queue->OnEnqueued(h.fast_id);
  EXPECT_EQ(policy.Decide(h.fast_id, kSecond), Decision::kReject);
}

TEST(BouncerPolicyTest, EstimateQueueWaitEquation2) {
  PolicyHarness h(Slo{18 * kMillisecond, 50 * kMillisecond, 0},
                  /*parallelism=*/2);
  BouncerPolicy policy(h.context, FastSwapOptions());
  Train(policy, h.fast_id, 4 * kMillisecond);
  Train(policy, h.slow_id, 20 * kMillisecond);
  h.queue->OnEnqueued(h.fast_id);   // 1 x 4ms
  h.queue->OnEnqueued(h.slow_id);   // 1 x 20ms
  h.queue->OnEnqueued(h.slow_id);   // 1 x 20ms
  // ewt = (1*4 + 2*20) / 2 = 22 ms.
  EXPECT_EQ(policy.EstimateQueueWait(), 22 * kMillisecond);
}

TEST(BouncerPolicyTest, EstimatesComposeEquations3And4) {
  PolicyHarness h(Slo{100 * kMillisecond, 200 * kMillisecond, 0},
                  /*parallelism=*/1);
  BouncerPolicy policy(h.context, FastSwapOptions());
  Train(policy, h.fast_id, 10 * kMillisecond);
  h.queue->OnEnqueued(h.fast_id);
  const auto e = policy.EstimateFor(h.fast_id, kSecond);
  EXPECT_EQ(e.ewt_mean, 10 * kMillisecond);
  const auto summary = policy.TypeSummary(h.fast_id);
  EXPECT_EQ(e.ert_p50, e.ewt_mean + summary.p50);
  EXPECT_EQ(e.ert_p90, e.ewt_mean + summary.p90);
}

TEST(BouncerPolicyTest, PerTypeSlosIndependent) {
  PolicyHarness h;
  ASSERT_TRUE(
      h.registry.SetSlo(h.slow_id, Slo{100 * kMillisecond, 300 * kMillisecond, 0})
          .ok());
  BouncerPolicy policy(h.context, FastSwapOptions());
  Train(policy, h.fast_id, 25 * kMillisecond);
  Train(policy, h.slow_id, 25 * kMillisecond);
  // Same processing time; the type with the loose SLO is accepted.
  EXPECT_EQ(policy.Decide(h.fast_id, kSecond), Decision::kReject);
  EXPECT_EQ(policy.Decide(h.slow_id, kSecond), Decision::kAccept);
}

TEST(BouncerPolicyTest, UnknownTypeFallsBackToDefault) {
  PolicyHarness h;
  BouncerPolicy policy(h.context, FastSwapOptions());
  Train(policy, kDefaultQueryType, 25 * kMillisecond);
  // Out-of-range id maps to the default type, whose estimate violates.
  EXPECT_EQ(policy.Decide(999, kSecond), Decision::kReject);
}

TEST(BouncerPolicyTest, ColdStartGeneralHistogramMode) {
  PolicyHarness h;
  BouncerPolicy::Options options = FastSwapOptions();
  options.cold_start_mode = ColdStartMode::kGeneralHistogram;
  options.warmup_min_samples = 10;
  BouncerPolicy policy(h.context, options);
  // Train only "fast"; the general histogram absorbs those samples too.
  Train(policy, h.fast_id, 25 * kMillisecond, 100);
  // "slow" is cold; decision uses the general histogram + default SLO
  // (18/50ms): 25ms median violates, so the cold type is rejected.
  const auto e = policy.EstimateFor(h.slow_id, kSecond);
  EXPECT_TRUE(e.cold);
  EXPECT_EQ(policy.Decide(h.slow_id, kSecond), Decision::kReject);
}

TEST(BouncerPolicyTest, ColdStartAcceptAllMode) {
  PolicyHarness h;
  BouncerPolicy::Options options = FastSwapOptions();
  options.cold_start_mode = ColdStartMode::kAcceptAll;
  options.warmup_min_samples = 10;
  BouncerPolicy policy(h.context, options);
  Train(policy, h.fast_id, 25 * kMillisecond, 100);
  EXPECT_EQ(policy.Decide(h.slow_id, kSecond), Decision::kAccept);
}

TEST(BouncerPolicyTest, ColdStartNoneModeUsesEmptySummary) {
  PolicyHarness h;
  BouncerPolicy::Options options = FastSwapOptions();
  options.cold_start_mode = ColdStartMode::kNone;
  BouncerPolicy policy(h.context, options);
  // Empty histogram reads 0 estimates -> under SLO -> accept.
  EXPECT_EQ(policy.Decide(h.slow_id, kSecond), Decision::kAccept);
}

TEST(BouncerPolicyTest, WarmTypeLeavesColdPath) {
  PolicyHarness h;
  BouncerPolicy::Options options = FastSwapOptions();
  options.warmup_min_samples = 5;
  BouncerPolicy policy(h.context, options);
  Train(policy, h.slow_id, 2 * kMillisecond, 10);
  const auto e = policy.EstimateFor(h.slow_id, kSecond);
  EXPECT_FALSE(e.cold);
}

TEST(BouncerPolicyTest, DecisionExprP50Only) {
  PolicyHarness h;
  BouncerPolicy::Options options = FastSwapOptions();
  options.decision_expr = DecisionExpr::kP50Only;
  BouncerPolicy policy(h.context, options);
  // p50 fine, p90 violating: accepted under kP50Only.
  for (int i = 0; i < 89; ++i) policy.OnCompleted(h.slow_id, 10 * kMillisecond, 0);
  for (int i = 0; i < 11; ++i) policy.OnCompleted(h.slow_id, 80 * kMillisecond, 0);
  policy.ForceHistogramSwap();
  EXPECT_EQ(policy.Decide(h.slow_id, kSecond), Decision::kAccept);
}

TEST(BouncerPolicyTest, DecisionExprP90Only) {
  PolicyHarness h;
  BouncerPolicy::Options options = FastSwapOptions();
  options.decision_expr = DecisionExpr::kP90Only;
  BouncerPolicy policy(h.context, options);
  // p50 violating but p90 under SLO cannot happen for a point mass; use
  // p50 25ms, p90 40ms: kP90Only accepts, default expr would reject.
  for (int i = 0; i < 60; ++i) policy.OnCompleted(h.slow_id, 25 * kMillisecond, 0);
  for (int i = 0; i < 40; ++i) policy.OnCompleted(h.slow_id, 40 * kMillisecond, 0);
  policy.ForceHistogramSwap();
  EXPECT_EQ(policy.Decide(h.slow_id, kSecond), Decision::kAccept);
}

TEST(BouncerPolicyTest, DecisionExprWithP99) {
  PolicyHarness h;
  ASSERT_TRUE(h.registry
                  .SetSlo(h.slow_id, Slo{50 * kMillisecond, 80 * kMillisecond,
                                         90 * kMillisecond})
                  .ok());
  BouncerPolicy::Options options = FastSwapOptions();
  options.decision_expr = DecisionExpr::kP50OrP90OrP99;
  BouncerPolicy policy(h.context, options);
  // p50/p90 fine; p99 ~ 100ms > 90ms objective.
  for (int i = 0; i < 985; ++i) policy.OnCompleted(h.slow_id, 10 * kMillisecond, 0);
  for (int i = 0; i < 15; ++i) policy.OnCompleted(h.slow_id, 100 * kMillisecond, 0);
  policy.ForceHistogramSwap();
  EXPECT_EQ(policy.Decide(h.slow_id, kSecond), Decision::kReject);
}

TEST(BouncerPolicyTest, TimedSwapPublishes) {
  PolicyHarness h;
  BouncerPolicy::Options options = FastSwapOptions();  // 1 s interval.
  BouncerPolicy policy(h.context, options);
  policy.OnCompleted(h.fast_id, 5 * kMillisecond, 100);
  EXPECT_TRUE(policy.TypeSummary(h.fast_id).empty());
  // Crossing the interval during a later hook triggers the swap.
  policy.OnCompleted(h.fast_id, 5 * kMillisecond, kSecond + 200);
  EXPECT_FALSE(policy.TypeSummary(h.fast_id).empty());
}

TEST(BouncerPolicyTest, GeneralHistogramAggregatesAllTypes) {
  PolicyHarness h;
  BouncerPolicy policy(h.context, FastSwapOptions());
  for (int i = 0; i < 50; ++i) {
    policy.OnCompleted(h.fast_id, 2 * kMillisecond, 0);
    policy.OnCompleted(h.slow_id, 10 * kMillisecond, 0);
  }
  policy.ForceHistogramSwap();
  const auto general = policy.GeneralSummary();
  EXPECT_EQ(general.count, 100u);
  EXPECT_EQ(general.mean, 6 * kMillisecond);
}

TEST(BouncerPolicyTest, ColdTypesContributeGeneralMeanToQueueWait) {
  PolicyHarness h(Slo{18 * kMillisecond, 50 * kMillisecond, 0},
                  /*parallelism=*/1);
  BouncerPolicy::Options options = FastSwapOptions();
  options.warmup_min_samples = 10;
  BouncerPolicy policy(h.context, options);
  Train(policy, h.fast_id, 10 * kMillisecond, 100);
  // A queued query of the cold "slow" type is costed at the general mean.
  h.queue->OnEnqueued(h.slow_id);
  EXPECT_EQ(policy.EstimateQueueWait(), 10 * kMillisecond);
}

}  // namespace
}  // namespace bouncer
