#include "src/core/helping_underserved_policy.h"

#include <gtest/gtest.h>

#include <memory>

namespace bouncer {
namespace {

class StubPolicy : public AdmissionPolicy {
 public:
  Decision Decide(WorkKey key, Nanos) override {
    ++decide_calls;
    return key.type == favored_type ? Decision::kAccept : Decision::kReject;
  }
  void OnCompleted(WorkKey, Nanos, Nanos) override { ++completed_calls; }
  std::string_view name() const override { return "Stub"; }

  QueryTypeId favored_type = 1;  ///< Accepted; all other types rejected.
  int decide_calls = 0;
  int completed_calls = 0;
};

HelpingUnderservedPolicy MakePolicy(StubPolicy** stub_out, double alpha,
                                    size_t num_types = 3) {
  auto stub = std::make_unique<StubPolicy>();
  *stub_out = stub.get();
  HelpingUnderservedPolicy::Options options;
  options.alpha = alpha;
  return HelpingUnderservedPolicy(std::move(stub), num_types, options);
}

TEST(HelpingUnderservedTest, AlwaysAsksInnerFirst) {
  StubPolicy* stub = nullptr;
  auto policy = MakePolicy(&stub, 1.0);
  (void)policy.Decide(1, 0);
  EXPECT_EQ(stub->decide_calls, 1);
}

TEST(HelpingUnderservedTest, InnerAcceptNeverOverridden) {
  StubPolicy* stub = nullptr;
  auto policy = MakePolicy(&stub, 1.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(policy.Decide(1, 0), Decision::kAccept);
  }
}

TEST(HelpingUnderservedTest, OverrideProbabilityFormula) {
  StubPolicy* stub = nullptr;
  auto policy = MakePolicy(&stub, 1.0);
  // x = (AAR - AR)/AAR; p = alpha * x / (1 + x).
  EXPECT_DOUBLE_EQ(policy.OverrideProbability(0.0, 1.0), 0.5);   // x=1.
  EXPECT_DOUBLE_EQ(policy.OverrideProbability(0.5, 1.0), 0.5 / 1.5);
  EXPECT_DOUBLE_EQ(policy.OverrideProbability(1.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(policy.OverrideProbability(0.8, 0.5), 0.0);  // AR >= AAR.
  EXPECT_DOUBLE_EQ(policy.OverrideProbability(0.1, 0.0), 0.0);  // Empty AAR.
}

TEST(HelpingUnderservedTest, AlphaScalesMaxProbability) {
  StubPolicy* stub = nullptr;
  auto policy = MakePolicy(&stub, 0.6);
  // p_max = alpha / 2 (paper Table 5 footnote).
  EXPECT_DOUBLE_EQ(policy.OverrideProbability(0.0, 1.0), 0.3);
}

TEST(HelpingUnderservedTest, UnderservedTypeGetsHelped) {
  StubPolicy* stub = nullptr;
  auto policy = MakePolicy(&stub, 1.0);
  // Type 1 always accepted -> AR(1)=1; type 2 always rejected by inner.
  // After history builds, AAR > AR(2) and overrides kick in.
  int type2_accepts = 0;
  for (int i = 0; i < 2000; ++i) {
    (void)policy.Decide(1, 0);
    if (policy.Decide(2, 0) == Decision::kAccept) ++type2_accepts;
  }
  EXPECT_GT(type2_accepts, 100);  // Starvation is broken.
  // But the help is bounded: p <= alpha/2.
  EXPECT_LT(type2_accepts, 1400);
}

TEST(HelpingUnderservedTest, NoHelpWhenAllTypesEqual) {
  StubPolicy* stub = nullptr;
  auto policy = MakePolicy(&stub, 1.0, 2);  // Types 0 and 1 only.
  stub->favored_type = 999;                 // Inner rejects everything.
  // Both types rejected equally: AR == AAR per type (0 vs average 0),
  // x = 0, no overrides ever fire.
  int accepts = 0;
  for (int i = 0; i < 1000; ++i) {
    if (policy.Decide(0, 0) == Decision::kAccept) ++accepts;
    if (policy.Decide(1, 0) == Decision::kAccept) ++accepts;
  }
  EXPECT_EQ(accepts, 0);
}

TEST(HelpingUnderservedTest, NameCombinesInner) {
  StubPolicy* stub = nullptr;
  auto policy = MakePolicy(&stub, 1.0);
  EXPECT_EQ(policy.name(), "Stub+HelpingUnderserved");
}

TEST(HelpingUnderservedTest, HooksForwardToInner) {
  StubPolicy* stub = nullptr;
  auto policy = MakePolicy(&stub, 1.0);
  policy.OnCompleted(1, 5, 10);
  EXPECT_EQ(stub->completed_calls, 1);
}

TEST(HelpingUnderservedTest, WindowExpiryResetsHelp) {
  auto stub_ptr = std::make_unique<StubPolicy>();
  HelpingUnderservedPolicy::Options options;
  options.alpha = 1.0;
  options.window_duration = kSecond;
  options.window_step = 10 * kMillisecond;
  HelpingUnderservedPolicy policy(std::move(stub_ptr), 3, options);
  for (int i = 0; i < 100; ++i) {
    (void)policy.Decide(1, 0);
    (void)policy.Decide(2, 0);
  }
  // After the window expires, all ratios reset to empty; a rejection for
  // type 2 sees AR=0 vs AAR=0 -> no help.
  EXPECT_EQ(policy.Decide(2, 5 * kSecond), Decision::kReject);
}

}  // namespace
}  // namespace bouncer
