#include <gtest/gtest.h>

#include "src/core/max_queue_length_policy.h"
#include "src/core/max_queue_wait_policy.h"
#include "src/core/queue_guard_policy.h"
#include "tests/core/test_helpers.h"

namespace bouncer {
namespace {

using ::bouncer::testing::PolicyHarness;

// ---------- MaxQL ----------

TEST(MaxQueueLengthTest, AcceptsBelowLimit) {
  PolicyHarness h;
  MaxQueueLengthPolicy policy(h.context, {.length_limit = 3});
  EXPECT_EQ(policy.Decide(h.fast_id, 0), Decision::kAccept);
  h.queue->OnEnqueued(h.fast_id);
  h.queue->OnEnqueued(h.fast_id);
  EXPECT_EQ(policy.Decide(h.fast_id, 0), Decision::kAccept);
}

TEST(MaxQueueLengthTest, RejectsAtLimit) {
  PolicyHarness h;
  MaxQueueLengthPolicy policy(h.context, {.length_limit = 2});
  h.queue->OnEnqueued(h.fast_id);
  h.queue->OnEnqueued(h.slow_id);
  EXPECT_EQ(policy.Decide(h.fast_id, 0), Decision::kReject);
  h.queue->OnDequeued(h.fast_id);
  EXPECT_EQ(policy.Decide(h.fast_id, 0), Decision::kAccept);
}

TEST(MaxQueueLengthTest, ObliviousToType) {
  PolicyHarness h;
  MaxQueueLengthPolicy policy(h.context, {.length_limit = 1});
  h.queue->OnEnqueued(h.fast_id);
  EXPECT_EQ(policy.Decide(h.fast_id, 0), Decision::kReject);
  EXPECT_EQ(policy.Decide(h.slow_id, 0), Decision::kReject);
  EXPECT_EQ(policy.Decide(kDefaultQueryType, 0), Decision::kReject);
}

// ---------- MaxQWT ----------

MaxQueueWaitPolicy::Options QwtOptions(Nanos limit) {
  MaxQueueWaitPolicy::Options options;
  options.wait_time_limit = limit;
  options.window_duration = 60 * kSecond;
  options.window_step = kSecond;
  return options;
}

TEST(MaxQueueWaitTest, AcceptsWithEmptyQueue) {
  PolicyHarness h;
  MaxQueueWaitPolicy policy(h.context, QwtOptions(15 * kMillisecond));
  EXPECT_EQ(policy.Decide(h.fast_id, 0), Decision::kAccept);
}

TEST(MaxQueueWaitTest, Equation5Estimate) {
  PolicyHarness h(Slo{}, /*parallelism=*/4);
  MaxQueueWaitPolicy policy(h.context, QwtOptions(15 * kMillisecond));
  for (int i = 0; i < 10; ++i) {
    policy.OnCompleted(h.fast_id, 8 * kMillisecond, 0);
  }
  for (int i = 0; i < 6; ++i) h.queue->OnEnqueued(h.fast_id);
  // ewt = 6 * 8ms / 4 = 12 ms.
  EXPECT_EQ(policy.EstimateQueueWait(0), 12 * kMillisecond);
}

TEST(MaxQueueWaitTest, RejectsAboveWaitLimit) {
  PolicyHarness h(Slo{}, /*parallelism=*/2);
  MaxQueueWaitPolicy policy(h.context, QwtOptions(15 * kMillisecond));
  for (int i = 0; i < 10; ++i) {
    policy.OnCompleted(h.fast_id, 10 * kMillisecond, 0);
  }
  // ewt = l * 10ms / 2; accept while l <= 3.
  for (int i = 0; i < 3; ++i) h.queue->OnEnqueued(h.fast_id);
  EXPECT_EQ(policy.Decide(h.fast_id, 0), Decision::kAccept);
  h.queue->OnEnqueued(h.fast_id);  // l = 4 -> ewt = 20ms > 15ms.
  EXPECT_EQ(policy.Decide(h.fast_id, 0), Decision::kReject);
}

TEST(MaxQueueWaitTest, MovingAverageAdaptsOverWindow) {
  PolicyHarness h(Slo{}, /*parallelism=*/1);
  MaxQueueWaitPolicy policy(h.context, QwtOptions(15 * kMillisecond));
  policy.OnCompleted(h.fast_id, 100 * kMillisecond, 0);
  h.queue->OnEnqueued(h.fast_id);
  EXPECT_EQ(policy.Decide(h.fast_id, 0), Decision::kReject);
  // Old sample leaves the 60 s window; fresh cheap samples dominate.
  const Nanos later = 61 * kSecond;
  policy.OnCompleted(h.fast_id, 1 * kMillisecond, later);
  EXPECT_EQ(policy.Decide(h.fast_id, later), Decision::kAccept);
}

TEST(MaxQueueWaitTest, TypeObliviousWithGlobalLimit) {
  PolicyHarness h(Slo{}, /*parallelism=*/1);
  MaxQueueWaitPolicy policy(h.context, QwtOptions(15 * kMillisecond));
  for (int i = 0; i < 10; ++i) {
    policy.OnCompleted(h.slow_id, 20 * kMillisecond, 0);
  }
  h.queue->OnEnqueued(h.slow_id);
  // Both types see the same estimate and the same limit.
  EXPECT_EQ(policy.Decide(h.fast_id, 0), Decision::kReject);
  EXPECT_EQ(policy.Decide(h.slow_id, 0), Decision::kReject);
  EXPECT_EQ(policy.name(), "MaxQWT");
}

TEST(MaxQueueWaitTest, PerTypeLimits) {
  PolicyHarness h(Slo{}, /*parallelism=*/1);
  MaxQueueWaitPolicy::Options options = QwtOptions(15 * kMillisecond);
  options.per_type_limits = {0, 5 * kMillisecond, 50 * kMillisecond};
  MaxQueueWaitPolicy policy(h.context, options);
  EXPECT_EQ(policy.LimitFor(kDefaultQueryType), 15 * kMillisecond);  // 0 -> global.
  EXPECT_EQ(policy.LimitFor(h.fast_id), 5 * kMillisecond);
  EXPECT_EQ(policy.LimitFor(h.slow_id), 50 * kMillisecond);
  EXPECT_EQ(policy.LimitFor(99), 15 * kMillisecond);  // Out of range -> global.
  EXPECT_EQ(policy.name(), "MaxQWT(per-type)");

  for (int i = 0; i < 10; ++i) {
    policy.OnCompleted(h.fast_id, 10 * kMillisecond, 0);
  }
  h.queue->OnEnqueued(h.fast_id);  // ewt = 10 ms.
  EXPECT_EQ(policy.Decide(h.fast_id, 0), Decision::kReject);   // 10 > 5.
  EXPECT_EQ(policy.Decide(h.slow_id, 0), Decision::kAccept);   // 10 < 50.
}

// ---------- QueueGuard ----------

TEST(QueueGuardTest, CapsAnyPolicy) {
  PolicyHarness h;
  auto inner = std::make_unique<AlwaysAcceptPolicy>();
  QueueGuardPolicy guard(std::move(inner), h.queue.get(), 2);
  EXPECT_EQ(guard.Decide(h.fast_id, 0), Decision::kAccept);
  h.queue->OnEnqueued(h.fast_id);
  h.queue->OnEnqueued(h.fast_id);
  EXPECT_EQ(guard.Decide(h.fast_id, 0), Decision::kReject);
  EXPECT_EQ(guard.name(), "AlwaysAccept+QueueGuard");
  EXPECT_EQ(guard.length_limit(), 2u);
}

}  // namespace
}  // namespace bouncer
