// Concurrency exercises: policies must tolerate simultaneous Decide()
// calls and metric hooks from many threads (the server Stage does exactly
// this), keeping counters consistent and never crashing. Parameterized
// across every policy kind.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/core/policy_factory.h"
#include "src/util/clock.h"
#include "src/util/rng.h"

namespace bouncer {
namespace {

class PolicyConcurrency : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(PolicyConcurrency, ParallelDecideAndHooks) {
  QueryTypeRegistry registry(Slo{18 * kMillisecond, 50 * kMillisecond, 0});
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(registry
                    .Register("T" + std::to_string(i),
                              {18 * kMillisecond, 50 * kMillisecond, 0})
                    .ok());
  }
  QueueState queue(registry.size());
  PolicyContext context{&registry, &queue, 16};
  PolicyConfig config;
  config.kind = GetParam();
  config.queue_guard_limit = 1000;
  auto policy = CreatePolicy(config, context);
  ASSERT_TRUE(policy.ok());

  ManualClock clock;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> accepts{0};
  std::atomic<uint64_t> rejects{0};

  // A time-driver thread advances the clock so swap/update intervals and
  // sliding windows all rotate during the run.
  std::thread time_driver([&] {
    while (!stop.load(std::memory_order_acquire)) {
      clock.Advance(50 * kMillisecond);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(100 + t);
      for (int i = 0; i < 30'000; ++i) {
        const auto type = static_cast<QueryTypeId>(1 + rng.NextBounded(6));
        const Nanos now = clock.Now();
        const Decision decision = (*policy)->Decide(type, now);
        if (decision == Decision::kAccept) {
          accepts.fetch_add(1, std::memory_order_relaxed);
          queue.OnEnqueued(type);
          (*policy)->OnEnqueued(type, now);
          const Nanos wait = static_cast<Nanos>(rng.NextBounded(kMillisecond));
          queue.OnDequeued(type);
          (*policy)->OnDequeued(type, wait, now + wait);
          const auto pt = static_cast<Nanos>(
              kMillisecond + rng.NextBounded(20 * kMillisecond));
          (*policy)->OnCompleted(type, pt, now + wait + pt);
        } else {
          rejects.fetch_add(1, std::memory_order_relaxed);
          (*policy)->OnRejected(type, now);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  stop.store(true, std::memory_order_release);
  time_driver.join();

  EXPECT_EQ(accepts.load() + rejects.load(), 4u * 30'000u);
  // Balanced enqueue/dequeue above: the shared queue must end empty.
  EXPECT_EQ(queue.TotalLength(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyConcurrency,
    ::testing::Values(PolicyKind::kAlwaysAccept, PolicyKind::kBouncer,
                      PolicyKind::kBouncerWithAllowance,
                      PolicyKind::kBouncerWithUnderserved,
                      PolicyKind::kMaxQueueLength, PolicyKind::kMaxQueueWait,
                      PolicyKind::kAcceptFraction),
    [](const ::testing::TestParamInfo<PolicyKind>& info) {
      std::string name(PolicyKindName(info.param));
      for (char& c : name) {
        if (c == '+') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace bouncer
