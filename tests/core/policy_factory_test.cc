#include "src/core/policy_factory.h"

#include <gtest/gtest.h>

#include "tests/core/test_helpers.h"

namespace bouncer {
namespace {

using ::bouncer::testing::PolicyHarness;

TEST(PolicyFactoryTest, BuildsEveryKind) {
  PolicyHarness h;
  const struct {
    PolicyKind kind;
    std::string_view expected_name;
  } cases[] = {
      {PolicyKind::kAlwaysAccept, "AlwaysAccept"},
      {PolicyKind::kBouncer, "Bouncer"},
      {PolicyKind::kBouncerWithAllowance, "Bouncer+AcceptanceAllowance"},
      {PolicyKind::kBouncerWithUnderserved, "Bouncer+HelpingUnderserved"},
      {PolicyKind::kMaxQueueLength, "MaxQL"},
      {PolicyKind::kMaxQueueWait, "MaxQWT"},
      {PolicyKind::kAcceptFraction, "AcceptFraction"},
  };
  for (const auto& c : cases) {
    PolicyConfig config;
    config.kind = c.kind;
    auto policy = CreatePolicy(config, h.context);
    ASSERT_TRUE(policy.ok()) << PolicyKindName(c.kind);
    EXPECT_EQ((*policy)->name(), c.expected_name);
  }
}

TEST(PolicyFactoryTest, KindNamesStable) {
  EXPECT_EQ(PolicyKindName(PolicyKind::kBouncer), "Bouncer");
  EXPECT_EQ(PolicyKindName(PolicyKind::kAcceptFraction), "AcceptFraction");
}

TEST(PolicyFactoryTest, QueueGuardWrapping) {
  PolicyHarness h;
  PolicyConfig config;
  config.kind = PolicyKind::kBouncer;
  config.queue_guard_limit = 800;
  auto policy = CreatePolicy(config, h.context);
  ASSERT_TRUE(policy.ok());
  EXPECT_EQ((*policy)->name(), "Bouncer+QueueGuard");
}

TEST(PolicyFactoryTest, RequiresRegistryAndQueue) {
  PolicyConfig config;
  PolicyContext context;  // Null registry/queue.
  EXPECT_EQ(CreatePolicy(config, context).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PolicyFactoryTest, QueueMustCoverRegistry) {
  PolicyHarness h;
  QueueState small_queue(1);  // Registry has 3 types.
  PolicyContext context{&h.registry, &small_queue, 4};
  EXPECT_FALSE(CreatePolicy(PolicyConfig{}, context).ok());
}

TEST(PolicyFactoryTest, ValidatesAllowanceRange) {
  PolicyHarness h;
  PolicyConfig config;
  config.kind = PolicyKind::kBouncerWithAllowance;
  config.allowance.allowance = 1.5;
  EXPECT_FALSE(CreatePolicy(config, h.context).ok());
  config.allowance.allowance = -0.1;
  EXPECT_FALSE(CreatePolicy(config, h.context).ok());
  config.allowance.allowance = 0.05;
  EXPECT_TRUE(CreatePolicy(config, h.context).ok());
}

TEST(PolicyFactoryTest, ValidatesAlphaRange) {
  PolicyHarness h;
  PolicyConfig config;
  config.kind = PolicyKind::kBouncerWithUnderserved;
  config.underserved.alpha = 0.0;
  EXPECT_FALSE(CreatePolicy(config, h.context).ok());
  config.underserved.alpha = 1.1;
  EXPECT_FALSE(CreatePolicy(config, h.context).ok());
  config.underserved.alpha = 1.0;
  EXPECT_TRUE(CreatePolicy(config, h.context).ok());
}

TEST(PolicyFactoryTest, ValidatesMaxQlLimit) {
  PolicyHarness h;
  PolicyConfig config;
  config.kind = PolicyKind::kMaxQueueLength;
  config.max_queue_length.length_limit = 0;
  EXPECT_FALSE(CreatePolicy(config, h.context).ok());
}

TEST(PolicyFactoryTest, ValidatesMaxQwtLimit) {
  PolicyHarness h;
  PolicyConfig config;
  config.kind = PolicyKind::kMaxQueueWait;
  config.max_queue_wait.wait_time_limit = 0;
  EXPECT_FALSE(CreatePolicy(config, h.context).ok());
}

TEST(PolicyFactoryTest, ValidatesUtilization) {
  PolicyHarness h;
  PolicyConfig config;
  config.kind = PolicyKind::kAcceptFraction;
  config.accept_fraction.max_utilization = 0.0;
  EXPECT_FALSE(CreatePolicy(config, h.context).ok());
  config.accept_fraction.max_utilization = 1.01;
  EXPECT_FALSE(CreatePolicy(config, h.context).ok());
}

}  // namespace
}  // namespace bouncer
