#include "src/core/policy_state_table.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace bouncer {
namespace {

struct Counter {
  std::atomic<uint64_t> value{0};
};

TEST(PolicyStateTableTest, CellsStartZeroAndAreAddressedByTenantAndType) {
  PolicyStateTable<Counter> table(/*num_types=*/3);
  EXPECT_EQ(table.num_types(), 3u);
  table.At(5, 2).value.store(42);
  table.At(5, 1).value.store(7);
  EXPECT_EQ(table.At(5, 2).value.load(), 42u);
  EXPECT_EQ(table.At(5, 1).value.load(), 7u);
  EXPECT_EQ(table.At(5, 0).value.load(), 0u);
  EXPECT_EQ(table.At(6, 2).value.load(), 0u);
}

TEST(PolicyStateTableTest, FindNeverAllocates) {
  PolicyStateTable<Counter> table(/*num_types=*/2, /*base_tenants=*/4);
  // Chunk for tenant 1000 not allocated yet.
  EXPECT_EQ(table.Find(1000, 1), nullptr);
  table.At(1000, 1).value.store(9);
  const Counter* cell = table.Find(1000, 1);
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->value.load(), 9u);
}

TEST(PolicyStateTableTest, CellAddressesAreStableAcrossGrowth) {
  // The whole point of the chunked slab: a cell's address must never
  // change after first touch, no matter how many tenants arrive later.
  PolicyStateTable<Counter> table(/*num_types=*/2, /*base_tenants=*/2);
  Counter* early = &table.At(0, 1);
  early->value.store(11);
  for (TenantId t = 1; t < 5'000; ++t) {
    (void)table.At(t, 0);
  }
  EXPECT_EQ(early, &table.At(0, 1));
  EXPECT_EQ(early->value.load(), 11u);
}

TEST(PolicyStateTableTest, DoublingChunksCoverSparseHighIndices) {
  PolicyStateTable<Counter> table(/*num_types=*/1, /*base_tenants=*/2);
  // Touch tenants around every chunk boundary of a base-2 slab.
  const TenantId probes[] = {0, 1, 2, 3, 4, 7, 8, 15, 16, 1023, 1024, 100'000};
  for (size_t i = 0; i < std::size(probes); ++i) {
    table.At(probes[i]).value.store(i + 1);
  }
  for (size_t i = 0; i < std::size(probes); ++i) {
    EXPECT_EQ(table.At(probes[i]).value.load(), i + 1) << probes[i];
  }
  // Distinct tenants get distinct cells.
  for (size_t i = 0; i < std::size(probes); ++i) {
    for (size_t j = i + 1; j < std::size(probes); ++j) {
      EXPECT_NE(&table.At(probes[i]), &table.At(probes[j]));
    }
  }
}

TEST(PolicyStateTableTest, ConcurrentFirstTouchPublishesOneChunk) {
  // All threads hammer counters across a fresh table's chunk range; the
  // CAS publication means every thread lands on the same cells and no
  // increment is lost (run under TSan in CI).
  PolicyStateTable<Counter> table(/*num_types=*/1, /*base_tenants=*/8);
  constexpr size_t kThreads = 8;
  constexpr size_t kTenants = 4'096;
  constexpr size_t kRounds = 4;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&table] {
      for (size_t round = 0; round < kRounds; ++round) {
        for (size_t tenant = 0; tenant < kTenants; ++tenant) {
          table.At(static_cast<TenantId>(tenant))
              .value.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (size_t tenant = 0; tenant < kTenants; ++tenant) {
    EXPECT_EQ(table.At(static_cast<TenantId>(tenant)).value.load(),
              kThreads * kRounds)
        << tenant;
  }
}

TEST(MapPolicyStateTableTest, BaselineMatchesFlatSemantics) {
  MapPolicyStateTable<Counter> table(/*num_types=*/2);
  EXPECT_EQ(table.Find(3, 1), nullptr);
  table.At(3, 1).value.store(5);
  ASSERT_NE(table.Find(3, 1), nullptr);
  EXPECT_EQ(table.Find(3, 1)->value.load(), 5u);
  EXPECT_EQ(table.At(3, 0).value.load(), 0u);
  // References stay valid across rehash-inducing inserts.
  Counter* early = &table.At(0, 0);
  for (TenantId t = 0; t < 2'000; ++t) (void)table.At(t, 1);
  EXPECT_EQ(early, &table.At(0, 0));
}

}  // namespace
}  // namespace bouncer
