// Tests for the priority-aware wait estimate (paper §7 future work):
// when queries are served by priority, a high-priority query's estimated
// wait must exclude lower-priority queued work, and admission decisions
// must follow.

#include <gtest/gtest.h>

#include "src/core/bouncer_policy.h"
#include "tests/core/test_helpers.h"

namespace bouncer {
namespace {

using ::bouncer::testing::PolicyHarness;

BouncerPolicy::Options PriorityOptions(std::vector<int> priorities) {
  BouncerPolicy::Options options;
  options.histogram_swap_interval = kSecond;
  options.type_priorities = std::move(priorities);
  return options;
}

void Train(BouncerPolicy& policy, QueryTypeId type, Nanos pt) {
  for (int i = 0; i < 100; ++i) policy.OnCompleted(type, pt, 0);
  policy.ForceHistogramSwap();
}

TEST(PriorityBouncerTest, HighPriorityIgnoresLowPriorityWork) {
  // Types: default(0)=prio 0, fast(1)=prio 0, slow(2)=prio 5.
  PolicyHarness h(Slo{18 * kMillisecond, 50 * kMillisecond, 0},
                  /*parallelism=*/1);
  BouncerPolicy policy(h.context, PriorityOptions({0, 0, 5}));
  Train(policy, h.fast_id, 4 * kMillisecond);
  Train(policy, h.slow_id, 20 * kMillisecond);
  // Queue: 2 slow (prio 5), 1 fast (prio 0).
  h.queue->OnEnqueued(h.slow_id);
  h.queue->OnEnqueued(h.slow_id);
  h.queue->OnEnqueued(h.fast_id);
  // Fast (prio 0) only waits behind fast work: 1 x 4 ms.
  EXPECT_EQ(policy.EstimateQueueWait(h.fast_id), 4 * kMillisecond);
  // Slow (prio 5) waits behind everything: 2x20 + 1x4 = 44 ms.
  EXPECT_EQ(policy.EstimateQueueWait(h.slow_id), 44 * kMillisecond);
}

TEST(PriorityBouncerTest, EqualPriorityCountsEachOther) {
  PolicyHarness h(Slo{18 * kMillisecond, 50 * kMillisecond, 0},
                  /*parallelism=*/1);
  BouncerPolicy policy(h.context, PriorityOptions({0, 3, 3}));
  Train(policy, h.fast_id, 4 * kMillisecond);
  Train(policy, h.slow_id, 20 * kMillisecond);
  h.queue->OnEnqueued(h.fast_id);
  h.queue->OnEnqueued(h.slow_id);
  EXPECT_EQ(policy.EstimateQueueWait(h.fast_id), 24 * kMillisecond);
  EXPECT_EQ(policy.EstimateQueueWait(h.slow_id), 24 * kMillisecond);
}

TEST(PriorityBouncerTest, MissingEntriesDefaultToZero) {
  PolicyHarness h(Slo{18 * kMillisecond, 50 * kMillisecond, 0},
                  /*parallelism=*/1);
  // Only the default type's priority listed; fast/slow default to 0.
  BouncerPolicy policy(h.context, PriorityOptions({7}));
  Train(policy, h.fast_id, 4 * kMillisecond);
  h.queue->OnEnqueued(h.fast_id);
  // Fast has priority 0 < default's 7, so default-type queries wait
  // behind fast but not vice versa... fast only behind prio <= 0 work.
  EXPECT_EQ(policy.EstimateQueueWait(h.fast_id), 4 * kMillisecond);
  EXPECT_EQ(policy.EstimateQueueWait(kDefaultQueryType), 4 * kMillisecond);
}

TEST(PriorityBouncerTest, EmptyPrioritiesIsFifoFormulation) {
  PolicyHarness h(Slo{18 * kMillisecond, 50 * kMillisecond, 0},
                  /*parallelism=*/1);
  BouncerPolicy::Options options;
  options.histogram_swap_interval = kSecond;
  BouncerPolicy policy(h.context, options);
  Train(policy, h.fast_id, 4 * kMillisecond);
  Train(policy, h.slow_id, 20 * kMillisecond);
  h.queue->OnEnqueued(h.slow_id);
  h.queue->OnEnqueued(h.fast_id);
  // Same estimate regardless of the asking type.
  EXPECT_EQ(policy.EstimateQueueWait(h.fast_id), 24 * kMillisecond);
  EXPECT_EQ(policy.EstimateQueueWait(h.slow_id), 24 * kMillisecond);
}

TEST(PriorityBouncerTest, AdmissionFollowsPriorityEstimate) {
  PolicyHarness h(Slo{18 * kMillisecond, 50 * kMillisecond, 0},
                  /*parallelism=*/1);
  BouncerPolicy policy(h.context, PriorityOptions({0, 0, 5}));
  Train(policy, h.fast_id, 4 * kMillisecond);
  Train(policy, h.slow_id, 16 * kMillisecond);
  // A pile of queued slow work would push a FIFO estimate over the SLO...
  for (int i = 0; i < 10; ++i) h.queue->OnEnqueued(h.slow_id);
  // ...but fast (higher priority) jumps it: ewt(fast)=0, ert ~4ms.
  EXPECT_EQ(policy.Decide(h.fast_id, kSecond), Decision::kAccept);
  // Slow sees 10x16ms of equal-priority work ahead: rejected.
  EXPECT_EQ(policy.Decide(h.slow_id, kSecond), Decision::kReject);
}

TEST(PriorityBouncerTest, EstimateForReportsPriorityAwareWait) {
  PolicyHarness h(Slo{18 * kMillisecond, 50 * kMillisecond, 0},
                  /*parallelism=*/1);
  BouncerPolicy policy(h.context, PriorityOptions({0, 0, 5}));
  Train(policy, h.fast_id, 4 * kMillisecond);
  Train(policy, h.slow_id, 20 * kMillisecond);
  h.queue->OnEnqueued(h.slow_id);
  EXPECT_EQ(policy.EstimateFor(h.fast_id, 0).ewt_mean, 0);
  EXPECT_EQ(policy.EstimateFor(h.slow_id, 0).ewt_mean, 20 * kMillisecond);
}

}  // namespace
}  // namespace bouncer
