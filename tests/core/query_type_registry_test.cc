#include "src/core/query_type_registry.h"

#include <gtest/gtest.h>

namespace bouncer {
namespace {

const Slo kSlo{10 * kMillisecond, 40 * kMillisecond, 0};

TEST(QueryTypeRegistryTest, DefaultTypeAlwaysPresent) {
  QueryTypeRegistry registry(kSlo);
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.Name(kDefaultQueryType), "default");
  EXPECT_EQ(registry.GetSlo(kDefaultQueryType), kSlo);
}

TEST(QueryTypeRegistryTest, RegisterAssignsDenseIds) {
  QueryTypeRegistry registry(kSlo);
  auto a = registry.Register("GetFriends", kSlo);
  auto b = registry.Register("GraphDistance", kSlo);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, 1u);
  EXPECT_EQ(*b, 2u);
  EXPECT_EQ(registry.size(), 3u);
  EXPECT_EQ(registry.Name(1), "GetFriends");
}

TEST(QueryTypeRegistryTest, DuplicateRejected) {
  QueryTypeRegistry registry(kSlo);
  ASSERT_TRUE(registry.Register("A", kSlo).ok());
  const auto dup = registry.Register("A", kSlo);
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST(QueryTypeRegistryTest, EmptyNameRejected) {
  QueryTypeRegistry registry(kSlo);
  EXPECT_EQ(registry.Register("", kSlo).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(QueryTypeRegistryTest, RegisteringDefaultAgainRejected) {
  QueryTypeRegistry registry(kSlo);
  EXPECT_FALSE(registry.Register("default", kSlo).ok());
}

TEST(QueryTypeRegistryTest, ResolveKnownType) {
  QueryTypeRegistry registry(kSlo);
  const auto id = *registry.Register("Fast", kSlo);
  EXPECT_EQ(registry.Resolve("Fast"), id);
}

TEST(QueryTypeRegistryTest, ResolveUnknownFallsBackToDefault) {
  QueryTypeRegistry registry(kSlo);
  EXPECT_EQ(registry.Resolve("nope"), kDefaultQueryType);
}

TEST(QueryTypeRegistryTest, FindUnknownIsNotFound) {
  QueryTypeRegistry registry(kSlo);
  EXPECT_EQ(registry.Find("nope").status().code(), StatusCode::kNotFound);
}

TEST(QueryTypeRegistryTest, PerTypeSlos) {
  QueryTypeRegistry registry(kSlo);
  const Slo tight{5 * kMillisecond, 20 * kMillisecond, 0};
  const auto id = *registry.Register("Tight", tight);
  EXPECT_EQ(registry.GetSlo(id), tight);
  EXPECT_EQ(registry.GetSlo(kDefaultQueryType), kSlo);
}

TEST(QueryTypeRegistryTest, SetSloReplaces) {
  QueryTypeRegistry registry(kSlo);
  const auto id = *registry.Register("T", kSlo);
  const Slo updated{1 * kMillisecond, 2 * kMillisecond, 3 * kMillisecond};
  ASSERT_TRUE(registry.SetSlo(id, updated).ok());
  EXPECT_EQ(registry.GetSlo(id), updated);
}

TEST(QueryTypeRegistryTest, SetSloOutOfRange) {
  QueryTypeRegistry registry(kSlo);
  EXPECT_EQ(registry.SetSlo(99, kSlo).code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace bouncer
