#include "src/core/queue_state.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace bouncer {
namespace {

TEST(QueueStateTest, StartsEmpty) {
  QueueState q(3);
  EXPECT_EQ(q.TotalLength(), 0u);
  for (QueryTypeId t = 0; t < 3; ++t) EXPECT_EQ(q.CountForType(t), 0u);
}

TEST(QueueStateTest, EnqueueDequeueBalance) {
  QueueState q(2);
  q.OnEnqueued(1);
  q.OnEnqueued(1);
  q.OnEnqueued(0);
  EXPECT_EQ(q.TotalLength(), 3u);
  EXPECT_EQ(q.CountForType(1), 2u);
  EXPECT_EQ(q.CountForType(0), 1u);
  q.OnDequeued(1);
  EXPECT_EQ(q.TotalLength(), 2u);
  EXPECT_EQ(q.CountForType(1), 1u);
}

TEST(QueueStateTest, OutOfRangeReadIsZero) {
  QueueState q(1);
  EXPECT_EQ(q.CountForType(42), 0u);
}

TEST(QueueStateTest, NumTypes) {
  QueueState q(5);
  EXPECT_EQ(q.num_types(), 5u);
}

TEST(QueueStateTest, ConcurrentBalancedTraffic) {
  QueueState q(4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&q, t] {
      for (int i = 0; i < 50000; ++i) {
        q.OnEnqueued(static_cast<QueryTypeId>(t));
        q.OnDequeued(static_cast<QueryTypeId>(t));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(q.TotalLength(), 0u);
  for (QueryTypeId t = 0; t < 4; ++t) EXPECT_EQ(q.CountForType(t), 0u);
}

}  // namespace
}  // namespace bouncer
