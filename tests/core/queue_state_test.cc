#include "src/core/queue_state.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace bouncer {
namespace {

TEST(QueueStateTest, StartsEmpty) {
  QueueState q(3);
  EXPECT_EQ(q.TotalLength(), 0u);
  for (QueryTypeId t = 0; t < 3; ++t) EXPECT_EQ(q.CountForType(t), 0u);
}

TEST(QueueStateTest, EnqueueDequeueBalance) {
  QueueState q(2);
  q.OnEnqueued(1);
  q.OnEnqueued(1);
  q.OnEnqueued(0);
  EXPECT_EQ(q.TotalLength(), 3u);
  EXPECT_EQ(q.CountForType(1), 2u);
  EXPECT_EQ(q.CountForType(0), 1u);
  q.OnDequeued(1);
  EXPECT_EQ(q.TotalLength(), 2u);
  EXPECT_EQ(q.CountForType(1), 1u);
}

TEST(QueueStateTest, OutOfRangeReadIsZero) {
  QueueState q(1);
  EXPECT_EQ(q.CountForType(42), 0u);
}

TEST(QueueStateTest, NumTypes) {
  QueueState q(5);
  EXPECT_EQ(q.num_types(), 5u);
}

TEST(QueueStateTest, ConcurrentBalancedTraffic) {
  QueueState q(4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&q, t] {
      for (int i = 0; i < 50000; ++i) {
        q.OnEnqueued(static_cast<QueryTypeId>(t));
        q.OnDequeued(static_cast<QueryTypeId>(t));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(q.TotalLength(), 0u);
  for (QueryTypeId t = 0; t < 4; ++t) EXPECT_EQ(q.CountForType(t), 0u);
}

// Separate producer and consumer threads racing on shared types while
// readers sample the totals: every intermediate read must be a sane
// occupancy (never underflowed into a huge unsigned value) and the final
// per-type counts must be exact.
TEST(QueueStateTest, ConcurrentProducersConsumersAndReaders) {
  constexpr int kThreadsPerSide = 3;
  constexpr uint64_t kPerThread = 40'000;
  QueueState q(2);
  // Pre-fill so consumers never dequeue below zero.
  for (uint64_t i = 0; i < kThreadsPerSide * kPerThread; ++i) {
    q.OnEnqueued(i % 2);
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreadsPerSide; ++t) {
    threads.emplace_back([&q, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        q.OnEnqueued(static_cast<QueryTypeId>((t + i) % 2));
      }
    });
    threads.emplace_back([&q, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        q.OnDequeued(static_cast<QueryTypeId>((t + i) % 2));
      }
    });
  }
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    const uint64_t ceiling = 2 * kThreadsPerSide * kPerThread;
    while (!stop.load(std::memory_order_relaxed)) {
      EXPECT_LE(q.TotalLength(), ceiling);
      EXPECT_LE(q.CountForType(0), ceiling);
      EXPECT_LE(q.CountForType(1), ceiling);
    }
  });
  for (auto& t : threads) t.join();
  stop.store(true);
  reader.join();
  // Enqueues and dequeues balance: only the pre-fill remains.
  EXPECT_EQ(q.TotalLength(), kThreadsPerSide * kPerThread);
  EXPECT_EQ(q.CountForType(0) + q.CountForType(1),
            kThreadsPerSide * kPerThread);
}

// Striped cells: cross-stripe sums must stay exact even when the
// enqueue and the matching dequeue land on different threads' stripes
// (a worker steals an item another thread submitted), which drives
// individual stripe cells negative.
TEST(QueueStateTest, StripedCrossThreadBalance) {
  constexpr size_t kStripes = 4;
  constexpr uint64_t kPerThread = 40'000;
  QueueState q(2, kStripes);
  EXPECT_EQ(q.num_stripes(), kStripes);
  // Producer threads enqueue only; consumer threads dequeue only. Each
  // thread gets its own stripe token, so every dequeue decrements a
  // different stripe than the enqueue it pairs with.
  for (uint64_t i = 0; i < 2 * kPerThread; ++i) q.OnEnqueued(i % 2);
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&q] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        q.OnEnqueued(static_cast<QueryTypeId>(i % 2));
      }
    });
    threads.emplace_back([&q] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        q.OnDequeued(static_cast<QueryTypeId>(i % 2));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(q.TotalLength(), 2 * kPerThread);
  EXPECT_EQ(q.CountForType(0), kPerThread);
  EXPECT_EQ(q.CountForType(1), kPerThread);
}

// Reads clamp at zero: a momentarily-negative cross-stripe sum (reader
// saw the dequeue stripe but not yet the enqueue stripe) must never
// underflow the unsigned result. Exercised by dequeuing on a fresh
// thread before its stripe ever saw the enqueue.
TEST(QueueStateTest, StripedReadsClampAtZero) {
  QueueState q(1, 2);
  q.OnEnqueued(0);
  std::thread consumer([&q] {
    q.OnDequeued(0);
    q.OnDequeued(0);  // Transient over-dequeue from this stripe's view.
  });
  consumer.join();
  EXPECT_EQ(q.TotalLength(), 0u);
  EXPECT_EQ(q.CountForType(0), 0u);
  q.OnEnqueued(0);
  EXPECT_EQ(q.TotalLength(), 0u);  // Still one short overall.
  q.OnEnqueued(0);
  EXPECT_EQ(q.TotalLength(), 1u);
}

}  // namespace
}  // namespace bouncer
