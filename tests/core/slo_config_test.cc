#include "src/core/slo_config.h"

#include <gtest/gtest.h>

namespace bouncer {
namespace {

TEST(ParseDurationTest, Units) {
  EXPECT_EQ(*ParseDuration("10ms"), 10 * kMillisecond);
  EXPECT_EQ(*ParseDuration("250us"), 250 * kMicrosecond);
  EXPECT_EQ(*ParseDuration("2s"), 2 * kSecond);
  EXPECT_EQ(*ParseDuration("7ns"), 7);
}

TEST(ParseDurationTest, Fractions) {
  EXPECT_EQ(*ParseDuration("1.5ms"), 1'500'000);
  EXPECT_EQ(*ParseDuration("0.25s"), 250 * kMillisecond);
}

TEST(ParseDurationTest, Errors) {
  EXPECT_FALSE(ParseDuration("").ok());
  EXPECT_FALSE(ParseDuration("ms").ok());
  EXPECT_FALSE(ParseDuration("10").ok());
  EXPECT_FALSE(ParseDuration("10min").ok());
  EXPECT_FALSE(ParseDuration("1..5ms").ok());
}

TEST(FormatDurationTest, PicksLargestExactUnit) {
  EXPECT_EQ(FormatDuration(10 * kMillisecond), "10ms");
  EXPECT_EQ(FormatDuration(2 * kSecond), "2s");
  EXPECT_EQ(FormatDuration(1'500'000), "1500us");
  EXPECT_EQ(FormatDuration(7), "7ns");
  EXPECT_EQ(FormatDuration(0), "0ms");
}

TEST(FormatDurationTest, RoundTripsThroughParse) {
  for (Nanos v : {Nanos{1}, Nanos{999}, 5 * kMicrosecond, 18 * kMillisecond,
                  50 * kMillisecond, 3 * kSecond}) {
    EXPECT_EQ(*ParseDuration(FormatDuration(v)), v);
  }
}

TEST(ParseSloConfigTest, PaperExample) {
  QueryTypeRegistry registry;
  const Status status = ParseSloConfig(
      R"("Fast":{p50=10ms, p90=90ms}, "Slow":{p50=60ms, p90=270ms},
         "default":{p50=30ms, p90=400ms})",
      &registry);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(registry.size(), 3u);
  const QueryTypeId fast = *registry.Find("Fast");
  EXPECT_EQ(registry.GetSlo(fast).p50, 10 * kMillisecond);
  EXPECT_EQ(registry.GetSlo(fast).p90, 90 * kMillisecond);
  EXPECT_EQ(registry.GetSlo(kDefaultQueryType).p50, 30 * kMillisecond);
  EXPECT_EQ(registry.GetSlo(kDefaultQueryType).p90, 400 * kMillisecond);
}

TEST(ParseSloConfigTest, P99Objective) {
  QueryTypeRegistry registry;
  ASSERT_TRUE(
      ParseSloConfig(R"("T":{p50=1ms, p90=5ms, p99=20ms})", &registry).ok());
  EXPECT_EQ(registry.GetSlo(*registry.Find("T")).p99, 20 * kMillisecond);
}

TEST(ParseSloConfigTest, WhitespaceAndTrailingComma) {
  QueryTypeRegistry registry;
  ASSERT_TRUE(ParseSloConfig("  \"A\" : { p50 = 1ms } ,\n", &registry).ok());
  EXPECT_TRUE(registry.Find("A").ok());
}

TEST(ParseSloConfigTest, EmptyConfigIsOk) {
  QueryTypeRegistry registry;
  EXPECT_TRUE(ParseSloConfig("", &registry).ok());
  EXPECT_EQ(registry.size(), 1u);  // Just the default type.
}

TEST(ParseSloConfigTest, RejectsMalformedSyntax) {
  const char* bad[] = {
      R"("A"{p50=1ms})",            // Missing colon.
      R"("A":{p50=1ms)",            // Unterminated block.
      R"("A":{})",                  // Empty block.
      R"("A":{p75=1ms})",           // Unknown objective.
      R"("A":{p50:1ms})",           // Wrong separator.
      R"(A:{p50=1ms})",             // Unquoted name.
      R"("A":{p50=1ms} "B":{p50=1ms})",  // Missing comma.
      R"("A":{p50=9xy})",           // Bad unit.
  };
  for (const char* config : bad) {
    QueryTypeRegistry registry;
    EXPECT_FALSE(ParseSloConfig(config, &registry).ok()) << config;
  }
}

TEST(ParseSloConfigTest, RejectsDuplicateTypes) {
  QueryTypeRegistry registry;
  EXPECT_FALSE(
      ParseSloConfig(R"("A":{p50=1ms}, "A":{p50=2ms})", &registry).ok());
}

TEST(ParseSloConfigTest, RejectsUnorderedObjectives) {
  QueryTypeRegistry registry;
  EXPECT_FALSE(ParseSloConfig(R"("A":{p50=10ms, p90=5ms})", &registry).ok());
  QueryTypeRegistry registry2;
  EXPECT_FALSE(
      ParseSloConfig(R"("A":{p90=10ms, p99=5ms})", &registry2).ok());
}

TEST(ParseSloConfigTest, ErrorNamesOffset) {
  QueryTypeRegistry registry;
  const Status status = ParseSloConfig(R"("A":{p50=1ms} X)", &registry);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("offset"), std::string::npos);
}

TEST(FormatSloConfigTest, RoundTrip) {
  QueryTypeRegistry registry({30 * kMillisecond, 400 * kMillisecond, 0});
  ASSERT_TRUE(registry
                  .Register("Fast", {10 * kMillisecond, 90 * kMillisecond, 0})
                  .ok());
  ASSERT_TRUE(registry
                  .Register("Slow", {60 * kMillisecond, 270 * kMillisecond,
                                     kSecond})
                  .ok());
  const std::string formatted = FormatSloConfig(registry);

  QueryTypeRegistry reparsed;
  ASSERT_TRUE(ParseSloConfig(formatted, &reparsed).ok()) << formatted;
  ASSERT_EQ(reparsed.size(), registry.size());
  for (QueryTypeId id = 0; id < registry.size(); ++id) {
    EXPECT_EQ(reparsed.GetSlo(id), registry.GetSlo(id)) << id;
    EXPECT_EQ(reparsed.Name(id), registry.Name(id));
  }
}

}  // namespace
}  // namespace bouncer
