#include "src/core/tenant_fair_policy.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "src/core/tenant_registry.h"
#include "tests/core/test_helpers.h"

namespace bouncer {
namespace {

class StubPolicy : public AdmissionPolicy {
 public:
  Decision Decide(WorkKey, Nanos) override {
    decide_calls.fetch_add(1, std::memory_order_relaxed);
    return accept ? Decision::kAccept : Decision::kReject;
  }
  std::string_view name() const override { return "Stub"; }

  bool accept = true;
  std::atomic<int> decide_calls{0};
};

struct Fixture {
  explicit Fixture(TenantFairPolicy::Options options = {},
                   size_t num_tenants = 4) {
    for (uint64_t e = 1; e < num_tenants; ++e) {
      EXPECT_TRUE(tenants.Register(e, 1.0).ok());
    }
    harness.context.tenants = &tenants;
    auto stub_ptr = std::make_unique<StubPolicy>();
    stub = stub_ptr.get();
    policy = std::make_unique<TenantFairPolicy>(std::move(stub_ptr),
                                                harness.context, options);
  }

  testing::PolicyHarness harness;
  TenantRegistry tenants;
  StubPolicy* stub = nullptr;
  std::unique_ptr<TenantFairPolicy> policy;
};

WorkKey Key(TenantId tenant) { return WorkKey{1, tenant}; }

TEST(TenantFairPolicyTest, InnerAcceptPassesThrough) {
  Fixture f;
  for (TenantId t = 0; t < 4; ++t) {
    EXPECT_EQ(f.policy->Decide(Key(t), kMillisecond), Decision::kAccept);
  }
  EXPECT_EQ(f.stub->decide_calls, 4);
  EXPECT_EQ(f.policy->name(), "Stub+TenantFair");
}

TEST(TenantFairPolicyTest, OverrideProbabilityFormula) {
  Fixture f;
  // p = alpha * x / (1 + x), x the relative shortfall below fair share.
  EXPECT_DOUBLE_EQ(f.policy->OverrideProbability(0.0, 10.0), 0.5);
  EXPECT_DOUBLE_EQ(f.policy->OverrideProbability(5.0, 10.0), 0.5 / 1.5);
  EXPECT_DOUBLE_EQ(f.policy->OverrideProbability(10.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(f.policy->OverrideProbability(1.0, 0.0), 0.0);
}

TEST(TenantFairPolicyTest, StarvedTenantGetsHelped) {
  TenantFairPolicy::Options options;
  options.alpha = 1.0;
  options.window_step = kSecond;
  options.refresh_interval = kMillisecond;
  Fixture f(options);
  // Tenant 1 is served generously (inner accepts); then the inner flips
  // to rejecting and tenant 2 — with zero admitted share — arrives.
  for (int i = 0; i < 200; ++i) {
    (void)f.policy->Decide(Key(1), kMillisecond * (i + 1));
  }
  f.stub->accept = false;
  int helped = 0;
  for (int i = 0; i < 2000; ++i) {
    if (f.policy->Decide(Key(2), kMillisecond * (300 + i)) ==
        Decision::kAccept) {
      ++helped;
    }
  }
  // Fully starved tenant: override probability approaches alpha/2.
  EXPECT_GT(helped, 200);
  EXPECT_LT(helped, 1600);
}

TEST(TenantFairPolicyTest, NoHelpWhenSharesAreEven) {
  TenantFairPolicy::Options options;
  options.alpha = 1.0;
  options.window_step = kSecond;
  options.refresh_interval = kMillisecond;
  Fixture f(options);
  f.stub->accept = false;
  // Every tenant equally rejected from the start: nobody is below a fair
  // share of an all-zero admitted window, so no overrides fire.
  int accepts = 0;
  for (int i = 0; i < 1000; ++i) {
    for (TenantId t = 1; t <= 3; ++t) {
      if (f.policy->Decide(Key(t), kMillisecond * (i + 1)) ==
          Decision::kAccept) {
        ++accepts;
      }
    }
  }
  EXPECT_EQ(accepts, 0);
}

TEST(TenantFairPolicyTest, FloodGuardCapsQueueShare) {
  TenantFairPolicy::Options options;
  options.flood_guard_limit = 8;
  options.share_slack = 1.0;
  options.min_share = 2;
  options.alpha = 0.0;
  Fixture f(options);
  const Nanos now = kMillisecond;
  // Tenant 1 floods: every accept is enqueued and never dequeued.
  int accepted = 0;
  for (int i = 0; i < 64; ++i) {
    if (f.policy->Decide(Key(1), now) == Decision::kAccept) {
      f.policy->OnEnqueued(Key(1), now);
      f.harness.queue->OnEnqueued(1);
      ++accepted;
    }
  }
  // Once the queue passed the guard limit, tenant 1 was capped near its
  // weighted share of the queue, far below 64.
  EXPECT_LT(accepted, 32);
  EXPECT_GE(accepted, 8);
  // A quiet tenant still gets in (its queued count is below min_share).
  EXPECT_EQ(f.policy->Decide(Key(2), now), Decision::kAccept);
}

TEST(TenantFairPolicyTest, SheddingRetractsAcceptAndQueueShare) {
  TenantFairPolicy::Options options;
  options.window_step = kSecond;
  // Queue-share tracking only runs while the flood guard is armed.
  options.flood_guard_limit = 1000;
  Fixture f(options);
  const Nanos now = kMillisecond;
  (void)f.policy->Decide(Key(1), now);
  f.policy->OnEnqueued(Key(1), now);
  TenantFairPolicy::TenantSnapshot s = f.policy->Snapshot(1);
  EXPECT_EQ(s.queued, 1);
  EXPECT_EQ(s.window_admitted, 1);
  EXPECT_EQ(s.total_received, 1);
  f.policy->OnShedded(Key(1), now);
  s = f.policy->Snapshot(1);
  EXPECT_EQ(s.queued, 0);
  EXPECT_EQ(s.window_admitted, 0);
  EXPECT_EQ(s.total_admitted, 0);
}

TEST(TenantFairPolicyTest, QueueShareUntrackedWithGuardOff) {
  // Guard off: the enqueue/dequeue hooks skip the tenant cell — no
  // queued count accrues (and no cold cache line is touched).
  Fixture f;
  (void)f.policy->Decide(Key(1), kMillisecond);
  f.policy->OnEnqueued(Key(1), kMillisecond);
  EXPECT_EQ(f.policy->Snapshot(1).queued, 0);
  EXPECT_EQ(f.policy->Snapshot(1).window_admitted, 1);
}

TEST(TenantFairPolicyTest, SnapshotOfUntouchedTenantIsZero) {
  Fixture f;
  const TenantFairPolicy::TenantSnapshot s = f.policy->Snapshot(3);
  EXPECT_EQ(s.total_received, 0);
  EXPECT_EQ(s.queued, 0);
}

TEST(TenantFairPolicyTest, MapBaselineBehavesIdentically) {
  TenantFairPolicy::Options options;
  options.use_map_baseline = true;
  options.window_step = kSecond;
  Fixture f(options);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(f.policy->Decide(Key(2), kMillisecond), Decision::kAccept);
  }
  EXPECT_EQ(f.policy->Snapshot(2).total_received, 10);
}

TEST(TenantFairPolicyTest, ConcurrentDecidersOnDisjointTenants) {
  // 8 threads hammering distinct tenant ranges through chunk growth:
  // per-tenant totals must be exact (no lost updates; TSan-clean).
  TenantFairPolicy::Options options;
  options.window_step = kSecond;
  Fixture f(options, /*num_tenants=*/2);
  constexpr size_t kThreads = 8;
  constexpr int kPerThread = 5'000;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&f, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const TenantId tenant = static_cast<TenantId>(1 + t * 400 + i % 400);
        (void)f.policy->Decide(Key(tenant), kMillisecond * (i + 1));
      }
    });
  }
  for (auto& t : threads) t.join();
  int64_t total = 0;
  for (TenantId tenant = 0; tenant < kThreads * 400 + 1; ++tenant) {
    total += f.policy->Snapshot(tenant).total_received;
  }
  EXPECT_EQ(total, static_cast<int64_t>(kThreads * kPerThread));
}

}  // namespace
}  // namespace bouncer
