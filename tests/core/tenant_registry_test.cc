#include "src/core/tenant_registry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <unordered_map>
#include <vector>

namespace bouncer {
namespace {

TEST(TenantRegistryTest, DefaultTenantIsPreInterned) {
  TenantRegistry registry;
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.Intern(0), kDefaultTenant);
  EXPECT_EQ(registry.ExternalIdOf(kDefaultTenant), 0u);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(TenantRegistryTest, InternAssignsDenseSequentialIndices) {
  TenantRegistry registry;
  EXPECT_EQ(registry.Intern(1001), 1u);
  EXPECT_EQ(registry.Intern(7), 2u);
  // UINT64_MAX is the one unrepresentable wire id (it wraps onto the
  // empty-slot sentinel); it degrades to the default tenant.
  EXPECT_EQ(registry.Intern(0xffffffffffffffffull), kDefaultTenant);
  EXPECT_FALSE(registry.Register(0xffffffffffffffffull, 1.0).ok());
  // Re-interning is idempotent.
  EXPECT_EQ(registry.Intern(7), 2u);
  EXPECT_EQ(registry.size(), 3u);
  EXPECT_EQ(registry.ExternalIdOf(1), 1001u);
  EXPECT_EQ(registry.ExternalIdOf(2), 7u);
}

TEST(TenantRegistryTest, FindDoesNotIntern) {
  TenantRegistry registry;
  EXPECT_EQ(registry.Find(55).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(registry.size(), 1u);
  const TenantId id = registry.Intern(55);
  const StatusOr<TenantId> found = registry.Find(55);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, id);
}

TEST(TenantRegistryTest, RegisterSetsAndUpdatesWeight) {
  TenantRegistry registry;
  const StatusOr<TenantId> id = registry.Register(9, 4.0);
  ASSERT_TRUE(id.ok());
  EXPECT_DOUBLE_EQ(registry.WeightOf(*id), 4.0);
  // Total = default tenant (1.0) + tenant 9 (4.0).
  EXPECT_DOUBLE_EQ(registry.TotalWeight(), 5.0);
  // Re-registering updates in place, no new index.
  const StatusOr<TenantId> again = registry.Register(9, 2.5);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *id);
  EXPECT_DOUBLE_EQ(registry.WeightOf(*id), 2.5);
  EXPECT_DOUBLE_EQ(registry.TotalWeight(), 3.5);
  EXPECT_EQ(registry.Register(10, 0.0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(TenantRegistryTest, InternDefaultsToConfiguredWeight) {
  TenantRegistry::Options options;
  options.default_weight = 3.0;
  TenantRegistry registry(options);
  const TenantId id = registry.Intern(12);
  EXPECT_DOUBLE_EQ(registry.WeightOf(id), 3.0);
}

TEST(TenantRegistryTest, MaxTenantsCapDegradesToDefaultTenant) {
  TenantRegistry::Options options;
  options.max_tenants = 4;  // Default tenant + 3 real ones.
  TenantRegistry registry(options);
  EXPECT_EQ(registry.Intern(1), 1u);
  EXPECT_EQ(registry.Intern(2), 2u);
  EXPECT_EQ(registry.Intern(3), 3u);
  EXPECT_EQ(registry.Intern(4), kDefaultTenant);
  EXPECT_EQ(registry.overflowed(), 1u);
  // Known ids keep resolving after the cap.
  EXPECT_EQ(registry.Intern(2), 2u);
  EXPECT_EQ(registry.Register(5, 1.0).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(TenantRegistryTest, GrowthPreservesEveryMapping) {
  TenantRegistry::Options options;
  options.initial_capacity = 4;  // Force many doublings.
  TenantRegistry registry(options);
  constexpr uint64_t kTenants = 10'000;
  std::vector<TenantId> ids(kTenants);
  for (uint64_t e = 1; e <= kTenants; ++e) {
    ids[e - 1] = registry.Intern(e * 31 + 5);
  }
  EXPECT_EQ(registry.size(), kTenants + 1);
  for (uint64_t e = 1; e <= kTenants; ++e) {
    EXPECT_EQ(registry.Intern(e * 31 + 5), ids[e - 1]);
    EXPECT_EQ(registry.ExternalIdOf(ids[e - 1]), e * 31 + 5);
  }
}

TEST(TenantRegistryTest, ConcurrentInterningAgreesOnIndices) {
  // Many threads intern overlapping id sets through table growth; every
  // thread must observe the same external -> dense mapping, with dense
  // indices forming exactly [0, size()).
  TenantRegistry::Options options;
  options.initial_capacity = 8;
  TenantRegistry registry(options);
  constexpr size_t kThreads = 8;
  constexpr uint64_t kIds = 2'000;
  std::vector<std::unordered_map<uint64_t, TenantId>> seen(kThreads);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &seen, t] {
      // Interleave a thread-private range with a shared range so both
      // brand-new and already-interned paths race.
      for (uint64_t i = 1; i <= kIds; ++i) {
        const uint64_t shared_id = i;
        const uint64_t private_id = 1'000'000 + t * kIds + i;
        seen[t][shared_id] = registry.Intern(shared_id);
        seen[t][private_id] = registry.Intern(private_id);
        // Lock-free re-lookup returns the same index.
        ASSERT_EQ(registry.Intern(shared_id), seen[t][shared_id]);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(registry.size(), 1 + kIds + kThreads * kIds);
  for (size_t t = 1; t < kThreads; ++t) {
    for (uint64_t i = 1; i <= kIds; ++i) {
      EXPECT_EQ(seen[t][i], seen[0][i]) << "disagreement on shared id " << i;
    }
  }
  std::vector<bool> used(registry.size(), false);
  for (const auto& m : seen) {
    for (const auto& [external, dense] : m) {
      ASSERT_LT(dense, registry.size());
      EXPECT_EQ(registry.ExternalIdOf(dense), external);
      used[dense] = true;
    }
  }
  for (size_t i = 1; i < used.size(); ++i) {
    EXPECT_TRUE(used[i]) << "dense index " << i << " never handed out";
  }
}

TEST(TenantRegistryTest, ConcurrentRegisterAndLookup) {
  // Weighted registration racing hot lookups: WeightOf/TotalWeight stay
  // readable (no torn doubles under TSan) while inserts grow the table.
  TenantRegistry registry;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const size_t n = registry.size();
      for (size_t i = 0; i < n; ++i) {
        (void)registry.WeightOf(static_cast<TenantId>(i));
      }
      (void)registry.TotalWeight();
    }
  });
  for (uint64_t e = 1; e <= 3'000; ++e) {
    ASSERT_TRUE(registry.Register(e, 1.0 + (e % 5)).ok());
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(registry.size(), 3'001u);
}

}  // namespace
}  // namespace bouncer
