#ifndef BOUNCER_TESTS_CORE_TEST_HELPERS_H_
#define BOUNCER_TESTS_CORE_TEST_HELPERS_H_

#include <memory>

#include "src/core/admission_policy.h"
#include "src/core/query_type_registry.h"
#include "src/core/queue_state.h"

namespace bouncer::testing {

/// A registry with two types, "fast" (id 1) and "slow" (id 2), plus the
/// default type (id 0), and a matching QueueState — the standard fixture
/// scaffold for policy tests.
struct PolicyHarness {
  explicit PolicyHarness(const Slo& default_slo = Slo{18 * kMillisecond,
                                                      50 * kMillisecond, 0},
                         size_t parallelism = 4)
      : registry(default_slo) {
    fast_id = *registry.Register("fast", default_slo);
    slow_id = *registry.Register("slow", default_slo);
    queue = std::make_unique<QueueState>(registry.size());
    context = PolicyContext{&registry, queue.get(), parallelism};
  }

  /// Simulates one completed query so policies learn processing times.
  void Complete(AdmissionPolicy& policy, QueryTypeId type, Nanos pt,
                Nanos now) {
    policy.OnCompleted(type, pt, now);
  }

  QueryTypeRegistry registry;
  std::unique_ptr<QueueState> queue;
  PolicyContext context;
  QueryTypeId fast_id = 0;
  QueryTypeId slow_id = 0;
};

}  // namespace bouncer::testing

#endif  // BOUNCER_TESTS_CORE_TEST_HELPERS_H_
