// Stress and regression tests for the pooled/async scatter-gather path
// (and its legacy A/B twin): countdown correctness under synchronous
// shard rejections, end-to-end shed propagation, and value equivalence
// between the two implementations. The suite name (ClusterScatter*) is
// matched by the TSan CI job's ctest regex.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "src/graph/cluster.h"
#include "src/graph/graph_generator.h"

namespace bouncer::graph {
namespace {

using server::Outcome;

const Slo kSlo{18 * kMillisecond, 50 * kMillisecond, 0};

class ClusterScatterStressTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratorOptions options;
    options.num_vertices = 5000;
    options.edges_per_vertex = 8;
    options.seed = 11;
    graph_ = new GraphStore(GeneratePreferentialAttachment(options));
  }

  /// Submits `queries`, waits for every completion callback (bounded),
  /// and returns how many results carried ok == false.
  struct FloodResult {
    int done = 0;
    int failed_results = 0;
  };
  FloodResult Flood(Cluster& cluster, const std::vector<GraphQuery>& queries,
                    int timeout_ms = 30000) {
    std::mutex mu;
    std::condition_variable cv;
    FloodResult out;
    for (const GraphQuery& q : queries) {
      cluster.Submit(q, /*deadline=*/0,
                     [&](const server::WorkItem&, Outcome,
                         const GraphQueryResult& result) {
                       std::lock_guard<std::mutex> lock(mu);
                       ++out.done;
                       if (!result.ok) ++out.failed_results;
                       cv.notify_all();
                     });
    }
    std::unique_lock<std::mutex> lock(mu);
    cv.wait_for(lock, std::chrono::milliseconds(timeout_ms), [&] {
      return out.done == static_cast<int>(queries.size());
    });
    return out;
  }

  static GraphStore* graph_;
};

GraphStore* ClusterScatterStressTest::graph_ = nullptr;

/// A 1-slot shard queue with a MaxQL(1) shard policy makes shards reject
/// subqueries synchronously — often from inside the broker's submit loop,
/// before later shards of the same round were even reached. The gather
/// countdown must still reach zero exactly once per round (it is
/// preloaded with the full round size before any submit), or the broker
/// worker deadlocks on the gate / double-notifies a recycled round.
Cluster::Options OneSlotShardOptions(bool legacy) {
  Cluster::Options options;
  options.num_brokers = 1;
  options.broker_workers = 8;
  options.num_shards = 2;
  options.shard_workers = 1;
  // Heavy subqueries: each one occupies the single shard worker long
  // enough for concurrent rounds to stack up behind the 1-slot queue —
  // otherwise the fast path's work-helping drains it before the next
  // Decide ever sees a nonzero length and nothing is rejected.
  options.work_per_edge = 2048;
  options.shard_queue_capacity = 1;
  options.broker_policy.kind = PolicyKind::kAlwaysAccept;
  options.shard_policy.kind = PolicyKind::kMaxQueueLength;
  options.shard_policy.max_queue_length.length_limit = 1;
  options.legacy_scatter = legacy;
  return options;
}

TEST_F(ClusterScatterStressTest, OneSlotShardQueueFloodFast) {
  QueryTypeRegistry registry = Cluster::MakeRegistry(kSlo);
  Cluster cluster(graph_, &registry, SystemClock::Global(),
                  OneSlotShardOptions(/*legacy=*/false));
  ASSERT_TRUE(cluster.Start().ok());
  // Multi-round queries: every round must independently survive partial
  // synchronous rejection.
  Rng rng(21);
  std::vector<GraphQuery> queries;
  for (int i = 0; i < 200; ++i) {
    queries.push_back(
        Cluster::SampleQuery(GraphOp::kTwoHopDedup, *graph_, rng));
  }
  const FloodResult out = Flood(cluster, queries);
  cluster.Stop();
  // Conservation: every query terminated exactly once, no deadlock.
  EXPECT_EQ(out.done, 200);
  // The flood must actually have tripped synchronous rejections.
  EXPECT_GT(cluster.shard_failures(), 0u);
  EXPECT_GT(out.failed_results, 0);
}

TEST_F(ClusterScatterStressTest, OneSlotShardQueueFloodLegacy) {
  QueryTypeRegistry registry = Cluster::MakeRegistry(kSlo);
  Cluster cluster(graph_, &registry, SystemClock::Global(),
                  OneSlotShardOptions(/*legacy=*/true));
  ASSERT_TRUE(cluster.Start().ok());
  Rng rng(22);
  std::vector<GraphQuery> queries;
  for (int i = 0; i < 200; ++i) {
    queries.push_back(
        Cluster::SampleQuery(GraphOp::kTwoHopDedup, *graph_, rng));
  }
  const FloodResult out = Flood(cluster, queries);
  cluster.Stop();
  EXPECT_EQ(out.done, 200);
  EXPECT_GT(cluster.shard_failures(), 0u);
  EXPECT_GT(out.failed_results, 0);
}

/// End-to-end shard shedding: a shard-tier rejection must surface to the
/// client as GraphQueryResult.ok == false and be counted in
/// shard_failures(), while the broker outcome stays kCompleted (the
/// broker did its work; the data plane failed).
TEST_F(ClusterScatterStressTest, ShardShedPropagatesToResult) {
  for (const bool legacy : {false, true}) {
    SCOPED_TRACE(legacy ? "legacy" : "fast");
    QueryTypeRegistry registry = Cluster::MakeRegistry(kSlo);
    Cluster cluster(graph_, &registry, SystemClock::Global(),
                    OneSlotShardOptions(legacy));
    ASSERT_TRUE(cluster.Start().ok());
    Rng rng(23);
    // Whether a flood trips the 1-slot shard queue depends on scheduling
    // (a single-core host can drain it between submits), so retry the
    // flood until at least one shed occurs; conservation must hold on
    // every attempt.
    int completed_not_ok = 0;
    for (int attempt = 0; attempt < 5 && completed_not_ok == 0; ++attempt) {
      std::vector<GraphQuery> queries;
      for (int i = 0; i < 300; ++i) {
        queries.push_back(
            Cluster::SampleQuery(GraphOp::kNeighborDegreeSum, *graph_, rng));
      }
      std::mutex mu;
      std::condition_variable cv;
      int done = 0;
      for (const GraphQuery& q : queries) {
        cluster.Submit(q, /*deadline=*/0,
                       [&](const server::WorkItem&, Outcome outcome,
                           const GraphQueryResult& result) {
                         std::lock_guard<std::mutex> lock(mu);
                         ++done;
                         if (outcome == Outcome::kCompleted && !result.ok) {
                           ++completed_not_ok;
                         }
                         cv.notify_all();
                       });
      }
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait_for(lock, std::chrono::seconds(30),
                    [&] { return done == static_cast<int>(queries.size()); });
      }
      ASSERT_EQ(done, 300) << "attempt " << attempt;
    }
    cluster.Stop();
    EXPECT_GT(completed_not_ok, 0);
    EXPECT_GT(cluster.shard_failures(), 0u);
  }
}

/// Mixed-op concurrent stress over the fast path with wide-open
/// admission: every op class in flight at once, everything completes ok.
TEST_F(ClusterScatterStressTest, MixedOpsConcurrentAllComplete) {
  QueryTypeRegistry registry = Cluster::MakeRegistry(kSlo);
  Cluster::Options options;
  options.num_brokers = 1;
  options.broker_workers = 8;
  options.num_shards = 3;  // Odd count: single-shard rounds + batches mix.
  options.shard_workers = 2;
  options.work_per_edge = 4;
  options.broker_policy.kind = PolicyKind::kAlwaysAccept;
  options.shard_policy.kind = PolicyKind::kAlwaysAccept;
  Cluster cluster(graph_, &registry, SystemClock::Global(), options);
  ASSERT_TRUE(cluster.Start().ok());
  Rng rng(31);
  std::vector<GraphQuery> queries;
  for (int i = 0; i < 400; ++i) {
    const auto op = static_cast<GraphOp>(i % kNumGraphOps);
    queries.push_back(Cluster::SampleQuery(op, *graph_, rng));
  }
  const FloodResult out = Flood(cluster, queries);
  cluster.Stop();
  EXPECT_EQ(out.done, 400);
  EXPECT_EQ(out.failed_results, 0);
  EXPECT_EQ(cluster.shard_failures(), 0u);
}

/// The pooled/async path skips the legacy sort/unique dedup (epoch set +
/// smallest-k truncation instead), so its intermediate buffers hold the
/// same *sets* in a different order. Every observable value must still
/// match the legacy path exactly, for every op.
TEST_F(ClusterScatterStressTest, FastMatchesLegacyValues) {
  QueryTypeRegistry registry_fast = Cluster::MakeRegistry(kSlo);
  QueryTypeRegistry registry_legacy = Cluster::MakeRegistry(kSlo);
  Cluster::Options options;
  options.num_brokers = 1;
  options.broker_workers = 2;
  options.num_shards = 2;
  options.shard_workers = 1;
  options.work_per_edge = 4;
  options.broker_policy.kind = PolicyKind::kAlwaysAccept;
  options.shard_policy.kind = PolicyKind::kAlwaysAccept;
  Cluster fast(graph_, &registry_fast, SystemClock::Global(), options);
  options.legacy_scatter = true;
  Cluster legacy(graph_, &registry_legacy, SystemClock::Global(), options);
  ASSERT_TRUE(fast.Start().ok());
  ASSERT_TRUE(legacy.Start().ok());

  const auto ask = [](Cluster& cluster, const GraphQuery& q) {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    GraphQueryResult out;
    cluster.Submit(q, /*deadline=*/0,
                   [&](const server::WorkItem&, Outcome,
                       const GraphQueryResult& result) {
                     std::lock_guard<std::mutex> lock(mu);
                     out = result;
                     done = true;
                     cv.notify_all();
                   });
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done; });
    return out;
  };

  Rng rng(41);
  for (size_t op = 0; op < kNumGraphOps; ++op) {
    for (int i = 0; i < 25; ++i) {
      const GraphQuery q =
          Cluster::SampleQuery(static_cast<GraphOp>(op), *graph_, rng);
      const GraphQueryResult a = ask(fast, q);
      const GraphQueryResult b = ask(legacy, q);
      ASSERT_TRUE(a.ok);
      ASSERT_TRUE(b.ok);
      EXPECT_EQ(a.value, b.value)
          << "op " << op << " source " << q.source << " target " << q.target;
    }
  }
  fast.Stop();
  legacy.Stop();
}

/// Execution-core equivalence: the sharded core (per-worker run queues
/// with stealing, striped admission counters) and the forced single
/// global FIFO produce identical query values for every op.
TEST_F(ClusterScatterStressTest, ShardedMatchesSingleQueueValues) {
  QueryTypeRegistry registry_sharded = Cluster::MakeRegistry(kSlo);
  QueryTypeRegistry registry_single = Cluster::MakeRegistry(kSlo);
  Cluster::Options options;
  options.num_brokers = 1;
  options.broker_workers = 4;
  options.num_shards = 2;
  options.shard_workers = 2;
  options.work_per_edge = 4;
  options.broker_policy.kind = PolicyKind::kAlwaysAccept;
  options.shard_policy.kind = PolicyKind::kAlwaysAccept;
  Cluster sharded(graph_, &registry_sharded, SystemClock::Global(), options);
  options.force_single_queue = true;
  Cluster single(graph_, &registry_single, SystemClock::Global(), options);
  ASSERT_TRUE(sharded.Start().ok());
  ASSERT_TRUE(single.Start().ok());

  const auto ask = [](Cluster& cluster, const GraphQuery& q) {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    GraphQueryResult out;
    cluster.Submit(q, /*deadline=*/0,
                   [&](const server::WorkItem&, Outcome,
                       const GraphQueryResult& result) {
                     std::lock_guard<std::mutex> lock(mu);
                     out = result;
                     done = true;
                     cv.notify_all();
                   });
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done; });
    return out;
  };

  Rng rng(61);
  for (size_t op = 0; op < kNumGraphOps; ++op) {
    for (int i = 0; i < 10; ++i) {
      const GraphQuery q =
          Cluster::SampleQuery(static_cast<GraphOp>(op), *graph_, rng);
      const GraphQueryResult a = ask(sharded, q);
      const GraphQueryResult b = ask(single, q);
      ASSERT_TRUE(a.ok);
      ASSERT_TRUE(b.ok);
      EXPECT_EQ(a.value, b.value)
          << "op " << op << " source " << q.source << " target " << q.target;
    }
  }
  sharded.Stop();
  single.Stop();
}

/// TSan target for the sharded execution core end to end: concurrent
/// SubmitBatch callers with distinct run-queue hints (the network-loop
/// pattern) flood a multi-ring broker stage while gathering broker
/// workers TryRunOne-steal from the multi-ring shard stages mid-scatter.
/// Every query must terminate exactly once with a correct result.
TEST_F(ClusterScatterStressTest, ShardedBrokerStealFlood) {
  QueryTypeRegistry registry = Cluster::MakeRegistry(kSlo);
  Cluster::Options options;
  options.num_brokers = 1;
  options.broker_workers = 4;  // 4 broker rings.
  options.num_shards = 2;
  options.shard_workers = 2;  // 2 rings per shard, stolen by gatherers.
  options.work_per_edge = 4;
  options.broker_policy.kind = PolicyKind::kAlwaysAccept;
  options.shard_policy.kind = PolicyKind::kAlwaysAccept;
  Cluster cluster(graph_, &registry, SystemClock::Global(), options);
  ASSERT_TRUE(cluster.Start().ok());

  constexpr int kLoops = 4;
  constexpr int kBatchesPerLoop = 50;
  constexpr int kBatchSize = 8;
  std::mutex mu;
  std::condition_variable cv;
  int done = 0;
  int failed = 0;
  std::vector<std::thread> loops;
  for (int loop = 0; loop < kLoops; ++loop) {
    loops.emplace_back([&, loop] {
      Rng rng(100 + loop);
      for (int b = 0; b < kBatchesPerLoop; ++b) {
        std::vector<Cluster::BatchRequest> batch(kBatchSize);
        for (auto& request : batch) {
          request.query = Cluster::SampleQuery(GraphOp::kNeighborDegreeSum,
                                               *graph_, rng);
          request.done = [&](const server::WorkItem&, Outcome,
                             const GraphQueryResult& result) {
            std::lock_guard<std::mutex> lock(mu);
            ++done;
            if (!result.ok) ++failed;
            cv.notify_all();
          };
        }
        cluster.SubmitBatch(batch, static_cast<uint32_t>(loop));
      }
    });
  }
  for (auto& t : loops) t.join();

  constexpr int kTotal = kLoops * kBatchesPerLoop * kBatchSize;
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait_for(lock, std::chrono::seconds(30),
                [&] { return done == kTotal; });
  }
  cluster.Stop();
  EXPECT_EQ(done, kTotal);
  EXPECT_EQ(failed, 0);
  EXPECT_EQ(cluster.shard_failures(), 0u);
}

/// Satellite (f): with Options::shard_metrics wired, shard stages report
/// Points 1–3 per subquery batch — enough to compute shard utilization
/// (BusyMs over the worker-time budget).
TEST_F(ClusterScatterStressTest, ShardMetricsReportBusyTime) {
  QueryTypeRegistry registry = Cluster::MakeRegistry(kSlo);
  server::MetricsCollector shard_metrics(registry.size());
  Cluster::Options options;
  options.num_brokers = 1;
  options.broker_workers = 4;
  options.num_shards = 2;
  options.shard_workers = 1;
  options.work_per_edge = 24;
  options.broker_policy.kind = PolicyKind::kAlwaysAccept;
  options.shard_policy.kind = PolicyKind::kAlwaysAccept;
  options.shard_metrics = &shard_metrics;
  Cluster cluster(graph_, &registry, SystemClock::Global(), options);
  ASSERT_TRUE(cluster.Start().ok());
  Rng rng(51);
  std::vector<GraphQuery> queries;
  for (int i = 0; i < 100; ++i) {
    queries.push_back(
        Cluster::SampleQuery(GraphOp::kNeighborDegreeSum, *graph_, rng));
  }
  const FloodResult out = Flood(cluster, queries);
  cluster.Stop();
  ASSERT_EQ(out.done, 100);
  const server::TypeReport report = shard_metrics.Overall();
  // Each query runs >= 2 scatter rounds over 2 shards: plenty of batches.
  EXPECT_GE(report.completed, 100u);
  EXPECT_EQ(report.rejected, 0u);
  EXPECT_GT(report.pt_mean_ms, 0.0);
  EXPECT_GT(report.BusyMs(), 0.0);  // Utilization numerator is populated.
}

}  // namespace
}  // namespace bouncer::graph
