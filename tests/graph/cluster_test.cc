#include "src/graph/cluster.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>

#include "src/graph/graph_generator.h"

namespace bouncer::graph {
namespace {

using server::Outcome;
using server::WorkItem;

class ClusterTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratorOptions options;
    options.num_vertices = 20000;
    options.edges_per_vertex = 8;
    graph_ = new GraphStore(GeneratePreferentialAttachment(options));
  }

  Cluster::Options DefaultOptions() {
    Cluster::Options options;
    options.num_brokers = 1;
    options.broker_workers = 8;
    options.num_shards = 2;
    options.shard_workers = 2;
    options.work_per_edge = 4;
    options.broker_policy.kind = PolicyKind::kAlwaysAccept;
    options.shard_policy.kind = PolicyKind::kAlwaysAccept;
    return options;
  }

  /// Submits and waits for the result.
  struct SyncResult {
    Outcome outcome = Outcome::kCompleted;
    GraphQueryResult result;
    WorkItem item;
  };
  SyncResult Ask(Cluster& cluster, const GraphQuery& query,
                 Nanos deadline = 0) {
    SyncResult out;
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    cluster.Submit(query, deadline,
                   [&](const WorkItem& item, Outcome outcome,
                       const GraphQueryResult& result) {
                     std::lock_guard<std::mutex> lock(mu);
                     out.outcome = outcome;
                     out.result = result;
                     out.item = item;
                     out.item.on_complete = nullptr;
                     done = true;
                     cv.notify_all();
                   });
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done; });
    return out;
  }

  static GraphStore* graph_;
};

GraphStore* ClusterTest::graph_ = nullptr;

TEST_F(ClusterTest, MakeRegistryHasElevenTypes) {
  const Slo slo{18 * kMillisecond, 50 * kMillisecond, 0};
  QueryTypeRegistry registry = Cluster::MakeRegistry(slo);
  EXPECT_EQ(registry.size(), 12u);  // default + QT1..QT11.
  EXPECT_EQ(registry.Name(Cluster::TypeIdFor(GraphOp::kDegree)), "QT1");
  EXPECT_EQ(registry.Name(Cluster::TypeIdFor(GraphOp::kDistance4)), "QT11");
}

TEST_F(ClusterTest, DegreeQueryMatchesStore) {
  const Slo slo{18 * kMillisecond, 50 * kMillisecond, 0};
  QueryTypeRegistry registry = Cluster::MakeRegistry(slo);
  Cluster cluster(graph_, &registry, SystemClock::Global(), DefaultOptions());
  ASSERT_TRUE(cluster.Start().ok());
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    GraphQuery q = Cluster::SampleQuery(GraphOp::kDegree, *graph_, rng);
    const auto out = Ask(cluster, q);
    EXPECT_EQ(out.outcome, Outcome::kCompleted);
    EXPECT_TRUE(out.result.ok);
    EXPECT_EQ(out.result.value, graph_->Degree(q.source));
  }
  cluster.Stop();
}

TEST_F(ClusterTest, ExternalIdLookupMatchesDegree) {
  const Slo slo{18 * kMillisecond, 50 * kMillisecond, 0};
  QueryTypeRegistry registry = Cluster::MakeRegistry(slo);
  Cluster cluster(graph_, &registry, SystemClock::Global(), DefaultOptions());
  ASSERT_TRUE(cluster.Start().ok());
  Rng rng(2);
  GraphQuery q =
      Cluster::SampleQuery(GraphOp::kDegreeByExternalId, *graph_, rng);
  const auto out = Ask(cluster, q);
  EXPECT_EQ(out.result.value, graph_->Degree(q.source));
  cluster.Stop();
}

TEST_F(ClusterTest, EveryOpCompletes) {
  const Slo slo{18 * kMillisecond, 50 * kMillisecond, 0};
  QueryTypeRegistry registry = Cluster::MakeRegistry(slo);
  Cluster cluster(graph_, &registry, SystemClock::Global(), DefaultOptions());
  ASSERT_TRUE(cluster.Start().ok());
  Rng rng(3);
  for (size_t op = 0; op < kNumGraphOps; ++op) {
    GraphQuery q =
        Cluster::SampleQuery(static_cast<GraphOp>(op), *graph_, rng);
    const auto out = Ask(cluster, q);
    EXPECT_EQ(out.outcome, Outcome::kCompleted) << "op " << op;
    EXPECT_TRUE(out.result.ok) << "op " << op;
  }
  cluster.Stop();
}

TEST_F(ClusterTest, DistanceIsPlausible) {
  const Slo slo{18 * kMillisecond, 50 * kMillisecond, 0};
  QueryTypeRegistry registry = Cluster::MakeRegistry(slo);
  Cluster cluster(graph_, &registry, SystemClock::Global(), DefaultOptions());
  ASSERT_TRUE(cluster.Start().ok());
  // Direct neighbors are at distance 1.
  uint32_t source = 0;
  ASSERT_GT(graph_->Degree(source), 0u);
  GraphQuery q;
  q.op = GraphOp::kDistance3;
  q.source = source;
  q.target = graph_->Neighbors(source)[0];
  const auto out = Ask(cluster, q);
  EXPECT_EQ(out.result.value, 1u);
  // Distance to self is 0.
  GraphQuery self = q;
  self.target = source;
  EXPECT_EQ(Ask(cluster, self).result.value, 0u);
  cluster.Stop();
}

TEST_F(ClusterTest, BrokerTimestampsPopulated) {
  const Slo slo{18 * kMillisecond, 50 * kMillisecond, 0};
  QueryTypeRegistry registry = Cluster::MakeRegistry(slo);
  Cluster cluster(graph_, &registry, SystemClock::Global(), DefaultOptions());
  ASSERT_TRUE(cluster.Start().ok());
  Rng rng(4);
  GraphQuery q = Cluster::SampleQuery(GraphOp::kTwoHopCount, *graph_, rng);
  const auto out = Ask(cluster, q);
  EXPECT_GT(out.item.ProcessingTime(), 0);
  EXPECT_GE(out.item.ResponseTime(), out.item.ProcessingTime());
  cluster.Stop();
}

TEST_F(ClusterTest, BrokerPolicyRejectsEarly) {
  const Slo slo{18 * kMillisecond, 50 * kMillisecond, 0};
  QueryTypeRegistry registry = Cluster::MakeRegistry(slo);
  Cluster::Options options = DefaultOptions();
  options.broker_policy.kind = PolicyKind::kMaxQueueLength;
  options.broker_policy.max_queue_length.length_limit = 1;
  options.broker_workers = 1;
  Cluster cluster(graph_, &registry, SystemClock::Global(), options);
  ASSERT_TRUE(cluster.Start().ok());
  Rng rng(5);
  std::atomic<int> rejected{0};
  std::atomic<int> finished{0};
  // Burst of heavy queries against a 1-worker broker with queue cap 1.
  for (int i = 0; i < 30; ++i) {
    GraphQuery q = Cluster::SampleQuery(GraphOp::kDistance4, *graph_, rng);
    cluster.Submit(q, 0,
                   [&](const WorkItem&, Outcome outcome,
                       const GraphQueryResult&) {
                     if (outcome == Outcome::kRejected) rejected.fetch_add(1);
                     finished.fetch_add(1);
                   });
  }
  while (finished.load() < 30) std::this_thread::yield();
  EXPECT_GT(rejected.load(), 0);
  cluster.Stop();
}

TEST_F(ClusterTest, ShardShedPropagatesAsNotOk) {
  const Slo slo{18 * kMillisecond, 50 * kMillisecond, 0};
  QueryTypeRegistry registry = Cluster::MakeRegistry(slo);
  Cluster::Options options = DefaultOptions();
  options.shard_policy.kind = PolicyKind::kMaxQueueLength;
  options.shard_policy.max_queue_length.length_limit = 1;
  options.shard_workers = 1;
  // Heavy subqueries keep the single shard worker busy long enough for
  // concurrent rounds to queue behind it; with light work the pooled
  // scatter path's work-helping drains the queue before MaxQL(1) ever
  // observes a waiting item, and nothing is shed.
  options.work_per_edge = 2048;
  Cluster cluster(graph_, &registry, SystemClock::Global(), options);
  ASSERT_TRUE(cluster.Start().ok());
  Rng rng(6);
  std::atomic<int> not_ok{0};
  std::atomic<int> finished{0};
  const int kQueries = 40;
  for (int i = 0; i < kQueries; ++i) {
    GraphQuery q = Cluster::SampleQuery(GraphOp::kTwoHopDedup, *graph_, rng);
    cluster.Submit(q, 0,
                   [&](const WorkItem&, Outcome,
                       const GraphQueryResult& result) {
                     if (!result.ok) not_ok.fetch_add(1);
                     finished.fetch_add(1);
                   });
  }
  while (finished.load() < kQueries) std::this_thread::yield();
  EXPECT_GT(not_ok.load(), 0);
  EXPECT_GT(cluster.shard_failures(), 0u);
  cluster.Stop();
}

TEST_F(ClusterTest, RoundRobinAcrossBrokers) {
  const Slo slo{18 * kMillisecond, 50 * kMillisecond, 0};
  QueryTypeRegistry registry = Cluster::MakeRegistry(slo);
  Cluster::Options options = DefaultOptions();
  options.num_brokers = 2;
  Cluster cluster(graph_, &registry, SystemClock::Global(), options);
  ASSERT_TRUE(cluster.Start().ok());
  Rng rng(7);
  std::atomic<int> finished{0};
  for (int i = 0; i < 40; ++i) {
    GraphQuery q = Cluster::SampleQuery(GraphOp::kDegree, *graph_, rng);
    cluster.Submit(q, 0, [&](const WorkItem&, Outcome,
                             const GraphQueryResult&) {
      finished.fetch_add(1);
    });
  }
  while (finished.load() < 40) std::this_thread::yield();
  EXPECT_GT(cluster.broker(0)->counters().received, 0u);
  EXPECT_GT(cluster.broker(1)->counters().received, 0u);
  cluster.Stop();
}

}  // namespace
}  // namespace bouncer::graph
