#include "src/graph/graph_generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace bouncer::graph {
namespace {

TEST(GraphGeneratorTest, ProducesRequestedSize) {
  GeneratorOptions options;
  options.num_vertices = 5000;
  options.edges_per_vertex = 4;
  const GraphStore g = GeneratePreferentialAttachment(options);
  EXPECT_EQ(g.num_vertices(), 5000u);
  // Roughly 2 * m * n directed edges (minus duplicates/self-loops).
  EXPECT_GT(g.num_edges(), 30000u);
  EXPECT_LT(g.num_edges(), 45000u);
}

TEST(GraphGeneratorTest, DeterministicForSeed) {
  GeneratorOptions options;
  options.num_vertices = 2000;
  options.seed = 99;
  const GraphStore a = GeneratePreferentialAttachment(options);
  const GraphStore b = GeneratePreferentialAttachment(options);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (uint32_t v = 0; v < a.num_vertices(); v += 97) {
    EXPECT_EQ(a.Degree(v), b.Degree(v));
  }
}

TEST(GraphGeneratorTest, SeedChangesGraph) {
  GeneratorOptions a_options;
  a_options.num_vertices = 2000;
  a_options.seed = 1;
  GeneratorOptions b_options = a_options;
  b_options.seed = 2;
  const GraphStore a = GeneratePreferentialAttachment(a_options);
  const GraphStore b = GeneratePreferentialAttachment(b_options);
  int differing = 0;
  for (uint32_t v = 0; v < 2000; ++v) {
    if (a.Degree(v) != b.Degree(v)) ++differing;
  }
  EXPECT_GT(differing, 100);
}

TEST(GraphGeneratorTest, HeavyTailedDegrees) {
  GeneratorOptions options;
  options.num_vertices = 20000;
  options.edges_per_vertex = 8;
  const GraphStore g = GeneratePreferentialAttachment(options);
  uint32_t max_degree = 0;
  double sum = 0;
  for (uint32_t v = 0; v < g.num_vertices(); ++v) {
    max_degree = std::max(max_degree, g.Degree(v));
    sum += g.Degree(v);
  }
  const double mean = sum / g.num_vertices();
  // Preferential attachment: hubs far above the mean degree.
  EXPECT_GT(max_degree, 10 * mean);
}

TEST(GraphGeneratorTest, UndirectedSymmetry) {
  GeneratorOptions options;
  options.num_vertices = 3000;
  const GraphStore g = GeneratePreferentialAttachment(options);
  for (uint32_t v = 0; v < g.num_vertices(); v += 131) {
    for (uint32_t u : g.Neighbors(v)) {
      EXPECT_TRUE(g.HasEdge(u, v)) << u << "->" << v;
    }
  }
}

TEST(GraphGeneratorTest, NoSelfLoops) {
  GeneratorOptions options;
  options.num_vertices = 3000;
  const GraphStore g = GeneratePreferentialAttachment(options);
  for (uint32_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_FALSE(g.HasEdge(v, v)) << v;
  }
}

TEST(GraphGeneratorTest, ConnectedFromSeedClique) {
  // Every vertex attaches to existing vertices, so no isolated vertices.
  GeneratorOptions options;
  options.num_vertices = 5000;
  const GraphStore g = GeneratePreferentialAttachment(options);
  for (uint32_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_GT(g.Degree(v), 0u) << v;
  }
}

}  // namespace
}  // namespace bouncer::graph
