#include "src/graph/graph_store.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace bouncer::graph {
namespace {

GraphStore Triangle() {
  GraphBuilder builder(3);
  builder.AddUndirectedEdge(0, 1);
  builder.AddUndirectedEdge(1, 2);
  builder.AddUndirectedEdge(0, 2);
  return std::move(builder).Build();
}

TEST(GraphStoreTest, EmptyStore) {
  GraphStore store;
  EXPECT_EQ(store.num_vertices(), 0u);
  EXPECT_EQ(store.num_edges(), 0u);
  EXPECT_TRUE(store.Neighbors(0).empty());
  EXPECT_EQ(store.Degree(5), 0u);
}

TEST(GraphStoreTest, TriangleAdjacency) {
  const GraphStore store = Triangle();
  EXPECT_EQ(store.num_vertices(), 3u);
  EXPECT_EQ(store.num_edges(), 6u);  // Directed count, both ways.
  for (uint32_t v = 0; v < 3; ++v) EXPECT_EQ(store.Degree(v), 2u);
  const auto n0 = store.Neighbors(0);
  EXPECT_EQ(std::vector<uint32_t>(n0.begin(), n0.end()),
            (std::vector<uint32_t>{1, 2}));
}

TEST(GraphStoreTest, NeighborsAreSorted) {
  GraphBuilder builder(5);
  builder.AddEdge(0, 4);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 3);
  const GraphStore store = std::move(builder).Build();
  const auto n = store.Neighbors(0);
  EXPECT_TRUE(std::is_sorted(n.begin(), n.end()));
}

TEST(GraphStoreTest, DuplicateEdgesCollapse) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 1);
  const GraphStore store = std::move(builder).Build();
  EXPECT_EQ(store.Degree(0), 1u);
}

TEST(GraphStoreTest, OutOfRangeEdgesIgnored) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 5);
  builder.AddEdge(7, 1);
  const GraphStore store = std::move(builder).Build();
  EXPECT_EQ(store.num_edges(), 0u);
}

TEST(GraphStoreTest, HasEdge) {
  const GraphStore store = Triangle();
  EXPECT_TRUE(store.HasEdge(0, 1));
  EXPECT_TRUE(store.HasEdge(2, 0));
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);  // Directed only.
  const GraphStore directed = std::move(builder).Build();
  EXPECT_TRUE(directed.HasEdge(0, 1));
  EXPECT_FALSE(directed.HasEdge(1, 0));
}

TEST(GraphStoreTest, ExternalIdsUniqueAndIndexed) {
  GraphBuilder builder(1000);
  const GraphStore store = std::move(builder).Build();
  std::vector<uint64_t> ids;
  for (uint32_t v = 0; v < 1000; ++v) {
    const uint64_t id = store.ExternalId(v);
    EXPECT_NE(id, 0u);
    ids.push_back(id);
    const auto found = store.FindByExternalId(id);
    ASSERT_TRUE(found.ok()) << "vertex " << v;
    EXPECT_EQ(*found, v);
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
}

TEST(GraphStoreTest, UnknownExternalIdNotFound) {
  GraphBuilder builder(10);
  const GraphStore store = std::move(builder).Build();
  EXPECT_EQ(store.FindByExternalId(0xdeadbeefdeadbeefULL).status().code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(store.FindByExternalId(0).ok());
}

/// Replays the builder's insertion (same SplitMix64 scramble via the
/// store's published ids, same linear probing, same insertion order
/// v = 0..n-1) to recover each vertex's home and final slot in the
/// external-id index. The table size is NextPowerOfTwo(max(2n, 16)).
struct IndexLayout {
  uint64_t mask = 0;
  std::vector<bool> occupied;        // Per slot.
  std::vector<uint64_t> home_slot;   // Per vertex: id & mask.
  std::vector<uint64_t> final_slot;  // Per vertex: where probing landed.
};
IndexLayout ReplayIndexLayout(const GraphStore& store) {
  IndexLayout layout;
  const uint32_t n = store.num_vertices();
  uint64_t table_size = 16;
  while (table_size < 2ull * n) table_size <<= 1;
  layout.mask = table_size - 1;
  layout.occupied.assign(table_size, false);
  for (uint32_t v = 0; v < n; ++v) {
    const uint64_t id = store.ExternalId(v);
    uint64_t slot = id & layout.mask;
    layout.home_slot.push_back(slot);
    while (layout.occupied[slot]) slot = (slot + 1) & layout.mask;
    layout.occupied[slot] = true;
    layout.final_slot.push_back(slot);
  }
  return layout;
}

// A lookup whose probe chain wraps from the last slot back to slot 0
// must still find its vertex: the scan over table sizes is deterministic
// (ids are a fixed scramble of the vertex number), so once one size
// exhibits a wrapped insertion, it always does.
TEST(GraphStoreTest, FindByExternalIdProbeWraparound) {
  bool exercised = false;
  for (uint32_t n : {8u, 16u, 32u, 64u, 128u, 256u, 512u}) {
    const GraphStore store = std::move(GraphBuilder(n)).Build();
    const IndexLayout layout = ReplayIndexLayout(store);
    for (uint32_t v = 0; v < n; ++v) {
      // final < home means the probe walked off the end and wrapped.
      if (layout.final_slot[v] >= layout.home_slot[v]) continue;
      exercised = true;
      const auto found = store.FindByExternalId(store.ExternalId(v));
      ASSERT_TRUE(found.ok()) << "n=" << n << " v=" << v;
      EXPECT_EQ(*found, v);
    }
  }
  // At 50% load over several table sizes some chain crosses the end.
  EXPECT_TRUE(exercised);
}

// A missing key whose home slot sits in an occupied run touching the
// last slot forces the unsuccessful probe across the table boundary; it
// must terminate with NotFound at the first empty slot, not scan
// forever or read out of bounds.
TEST(GraphStoreTest, MissingKeyProbeCrossesTableBoundary) {
  bool exercised = false;
  for (uint32_t n : {8u, 16u, 32u, 64u, 128u, 256u, 512u}) {
    const GraphStore store = std::move(GraphBuilder(n)).Build();
    const IndexLayout layout = ReplayIndexLayout(store);
    if (!layout.occupied[layout.mask]) continue;  // Last slot empty.
    // Home the probe at the last slot: it visits `mask`, wraps to 0,
    // and walks until the first empty slot.
    const uint64_t table_size = layout.mask + 1;
    uint64_t missing = layout.mask;  // missing & mask == mask.
    bool collides = true;
    while (collides) {
      collides = false;
      for (uint32_t v = 0; v < n; ++v) {
        if (store.ExternalId(v) == missing) {
          missing += table_size;  // Same home slot, different key.
          collides = true;
        }
      }
    }
    exercised = true;
    EXPECT_EQ(store.FindByExternalId(missing).status().code(),
              StatusCode::kNotFound)
        << "n=" << n;
  }
  EXPECT_TRUE(exercised);
}

TEST(GraphStoreTest, ExternalIdOutOfRange) {
  GraphBuilder builder(2);
  const GraphStore store = std::move(builder).Build();
  EXPECT_EQ(store.ExternalId(99), 0u);
}

}  // namespace
}  // namespace bouncer::graph
