#include "src/graph/graph_store.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace bouncer::graph {
namespace {

GraphStore Triangle() {
  GraphBuilder builder(3);
  builder.AddUndirectedEdge(0, 1);
  builder.AddUndirectedEdge(1, 2);
  builder.AddUndirectedEdge(0, 2);
  return std::move(builder).Build();
}

TEST(GraphStoreTest, EmptyStore) {
  GraphStore store;
  EXPECT_EQ(store.num_vertices(), 0u);
  EXPECT_EQ(store.num_edges(), 0u);
  EXPECT_TRUE(store.Neighbors(0).empty());
  EXPECT_EQ(store.Degree(5), 0u);
}

TEST(GraphStoreTest, TriangleAdjacency) {
  const GraphStore store = Triangle();
  EXPECT_EQ(store.num_vertices(), 3u);
  EXPECT_EQ(store.num_edges(), 6u);  // Directed count, both ways.
  for (uint32_t v = 0; v < 3; ++v) EXPECT_EQ(store.Degree(v), 2u);
  const auto n0 = store.Neighbors(0);
  EXPECT_EQ(std::vector<uint32_t>(n0.begin(), n0.end()),
            (std::vector<uint32_t>{1, 2}));
}

TEST(GraphStoreTest, NeighborsAreSorted) {
  GraphBuilder builder(5);
  builder.AddEdge(0, 4);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 3);
  const GraphStore store = std::move(builder).Build();
  const auto n = store.Neighbors(0);
  EXPECT_TRUE(std::is_sorted(n.begin(), n.end()));
}

TEST(GraphStoreTest, DuplicateEdgesCollapse) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 1);
  const GraphStore store = std::move(builder).Build();
  EXPECT_EQ(store.Degree(0), 1u);
}

TEST(GraphStoreTest, OutOfRangeEdgesIgnored) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 5);
  builder.AddEdge(7, 1);
  const GraphStore store = std::move(builder).Build();
  EXPECT_EQ(store.num_edges(), 0u);
}

TEST(GraphStoreTest, HasEdge) {
  const GraphStore store = Triangle();
  EXPECT_TRUE(store.HasEdge(0, 1));
  EXPECT_TRUE(store.HasEdge(2, 0));
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);  // Directed only.
  const GraphStore directed = std::move(builder).Build();
  EXPECT_TRUE(directed.HasEdge(0, 1));
  EXPECT_FALSE(directed.HasEdge(1, 0));
}

TEST(GraphStoreTest, ExternalIdsUniqueAndIndexed) {
  GraphBuilder builder(1000);
  const GraphStore store = std::move(builder).Build();
  std::vector<uint64_t> ids;
  for (uint32_t v = 0; v < 1000; ++v) {
    const uint64_t id = store.ExternalId(v);
    EXPECT_NE(id, 0u);
    ids.push_back(id);
    const auto found = store.FindByExternalId(id);
    ASSERT_TRUE(found.ok()) << "vertex " << v;
    EXPECT_EQ(*found, v);
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
}

TEST(GraphStoreTest, UnknownExternalIdNotFound) {
  GraphBuilder builder(10);
  const GraphStore store = std::move(builder).Build();
  EXPECT_EQ(store.FindByExternalId(0xdeadbeefdeadbeefULL).status().code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(store.FindByExternalId(0).ok());
}

TEST(GraphStoreTest, ExternalIdOutOfRange) {
  GraphBuilder builder(2);
  const GraphStore store = std::move(builder).Build();
  EXPECT_EQ(store.ExternalId(99), 0u);
}

}  // namespace
}  // namespace bouncer::graph
