// Golden tests: every Cluster graph operation checked against a
// straightforward single-threaded reference implementation on a small
// random graph. Caps are chosen larger than any quantity in the graph so
// reference and cluster agree exactly.

#include <gtest/gtest.h>

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <queue>
#include <set>

#include "src/graph/cluster.h"
#include "src/graph/graph_generator.h"

namespace bouncer::graph {
namespace {

using server::Outcome;
using server::WorkItem;

constexpr uint32_t kVertices = 300;  // Small: every cap is effectively off.

class QueryGoldenTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratorOptions options;
    options.num_vertices = kVertices;
    options.edges_per_vertex = 3;
    options.seed = 77;
    graph_ = new GraphStore(GeneratePreferentialAttachment(options));

    const Slo slo{kSecond, kSecond, 0};
    registry_ = new QueryTypeRegistry(Cluster::MakeRegistry(slo));
    Cluster::Options cluster_options;
    cluster_options.num_brokers = 1;
    cluster_options.broker_workers = 4;
    cluster_options.num_shards = 3;
    cluster_options.shard_workers = 1;
    cluster_options.work_per_edge = 0;
    cluster_options.broker_policy.kind = PolicyKind::kAlwaysAccept;
    cluster_options.shard_policy.kind = PolicyKind::kAlwaysAccept;
    cluster_ = new Cluster(graph_, registry_, SystemClock::Global(),
                           cluster_options);
    ASSERT_TRUE(cluster_->Start().ok());
  }

  static void TearDownTestSuite() {
    cluster_->Stop();
    delete cluster_;
    cluster_ = nullptr;
  }

  uint64_t Ask(const GraphQuery& query) {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    uint64_t value = 0;
    bool ok = false;
    cluster_->Submit(query, 0,
                     [&](const WorkItem&, Outcome outcome,
                         const GraphQueryResult& result) {
                       std::lock_guard<std::mutex> lock(mu);
                       value = result.value;
                       ok = outcome == Outcome::kCompleted && result.ok;
                       done = true;
                       cv.notify_all();
                     });
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done; });
    EXPECT_TRUE(ok);
    return value;
  }

  // ----- reference implementations -----

  static std::set<uint32_t> RefNeighbors(uint32_t v) {
    const auto span = graph_->Neighbors(v);
    return {span.begin(), span.end()};
  }

  static std::set<uint32_t> RefTwoHop(uint32_t v) {
    std::set<uint32_t> result;
    for (uint32_t u : RefNeighbors(v)) {
      for (uint32_t w : graph_->Neighbors(u)) result.insert(w);
    }
    return result;
  }

  static uint64_t RefDistance(uint32_t source, uint32_t target,
                              uint32_t max_depth) {
    if (source == target) return 0;
    std::set<uint32_t> visited = {source};
    std::vector<uint32_t> frontier = {source};
    for (uint32_t depth = 1; depth <= max_depth; ++depth) {
      std::vector<uint32_t> next;
      for (uint32_t v : frontier) {
        for (uint32_t u : graph_->Neighbors(v)) {
          if (u == target) return depth;
          if (visited.insert(u).second) next.push_back(u);
        }
      }
      if (next.empty()) return 0;
      frontier = std::move(next);
    }
    return 0;
  }

  static GraphStore* graph_;
  static QueryTypeRegistry* registry_;
  static Cluster* cluster_;
};

GraphStore* QueryGoldenTest::graph_ = nullptr;
QueryTypeRegistry* QueryGoldenTest::registry_ = nullptr;
Cluster* QueryGoldenTest::cluster_ = nullptr;

TEST_F(QueryGoldenTest, Degree) {
  for (uint32_t v = 0; v < kVertices; v += 13) {
    GraphQuery q{GraphOp::kDegree, v, 0, 0};
    EXPECT_EQ(Ask(q), graph_->Degree(v)) << v;
  }
}

TEST_F(QueryGoldenTest, NeighborsCount) {
  for (uint32_t v = 0; v < kVertices; v += 17) {
    GraphQuery q{GraphOp::kNeighbors, v, 0, 0};
    EXPECT_EQ(Ask(q), std::min<uint64_t>(graph_->Degree(v), 64)) << v;
  }
}

TEST_F(QueryGoldenTest, DegreeByExternalId) {
  for (uint32_t v = 5; v < kVertices; v += 31) {
    GraphQuery q{GraphOp::kDegreeByExternalId, v, 0, graph_->ExternalId(v)};
    EXPECT_EQ(Ask(q), graph_->Degree(v)) << v;
  }
  GraphQuery bogus{GraphOp::kDegreeByExternalId, 0, 0, 0xdeadbeef};
  EXPECT_EQ(Ask(bogus), 0u);
}

TEST_F(QueryGoldenTest, CommonNeighbors) {
  Rng rng(5);
  for (int i = 0; i < 25; ++i) {
    const auto a = static_cast<uint32_t>(rng.NextBounded(kVertices));
    const auto b = static_cast<uint32_t>(rng.NextBounded(kVertices));
    const auto na = RefNeighbors(a);
    const auto nb = RefNeighbors(b);
    std::vector<uint32_t> common;
    std::set_intersection(na.begin(), na.end(), nb.begin(), nb.end(),
                          std::back_inserter(common));
    GraphQuery q{GraphOp::kCommonNeighbors, a, b, 0};
    EXPECT_EQ(Ask(q), common.size()) << a << "," << b;
  }
}

TEST_F(QueryGoldenTest, NeighborDegreeSum) {
  for (uint32_t v = 0; v < kVertices; v += 41) {
    if (graph_->Degree(v) > 128) continue;  // Cap would bite.
    uint64_t expected = 0;
    for (uint32_t u : RefNeighbors(v)) expected += graph_->Degree(u);
    GraphQuery q{GraphOp::kNeighborDegreeSum, v, 0, 0};
    EXPECT_EQ(Ask(q), expected) << v;
  }
}

TEST_F(QueryGoldenTest, TopKNeighbors) {
  for (uint32_t v = 0; v < kVertices; v += 53) {
    if (graph_->Degree(v) > 256) continue;
    std::vector<uint32_t> degrees;
    for (uint32_t u : RefNeighbors(v)) degrees.push_back(graph_->Degree(u));
    std::sort(degrees.begin(), degrees.end(), std::greater<>());
    uint64_t expected = 0;
    for (size_t i = 0; i < std::min<size_t>(10, degrees.size()); ++i) {
      expected += degrees[i];
    }
    GraphQuery q{GraphOp::kTopKNeighbors, v, 0, 0};
    EXPECT_EQ(Ask(q), expected) << v;
  }
}

TEST_F(QueryGoldenTest, TwoHopCount) {
  for (uint32_t v = 0; v < kVertices; v += 67) {
    if (graph_->Degree(v) > 128) continue;
    bool capped = false;
    for (uint32_t u : RefNeighbors(v)) {
      if (graph_->Degree(u) > 64) capped = true;  // Per-vertex cap bites.
    }
    if (capped) continue;
    GraphQuery q{GraphOp::kTwoHopCount, v, 0, 0};
    const auto expected = RefTwoHop(v);
    if (expected.size() > 2048) continue;
    EXPECT_EQ(Ask(q), expected.size()) << v;
  }
}

TEST_F(QueryGoldenTest, DistanceDepth3) {
  Rng rng(9);
  for (int i = 0; i < 15; ++i) {
    const auto a = static_cast<uint32_t>(rng.NextBounded(kVertices));
    const auto b = static_cast<uint32_t>(rng.NextBounded(kVertices));
    const uint64_t expected = RefDistance(a, b, 3);
    // The cluster BFS caps per-vertex expansion at 64; skip pairs whose
    // reference path crosses a hub bigger than that.
    bool has_big_hub = false;
    for (uint32_t v = 0; v < kVertices; ++v) {
      if (graph_->Degree(v) > 64) has_big_hub = true;
    }
    GraphQuery q{GraphOp::kDistance3, a, b, 0};
    const uint64_t actual = Ask(q);
    if (!has_big_hub) {
      EXPECT_EQ(actual, expected) << a << "->" << b;
    } else {
      // With caps, the cluster may miss a path but never invents one
      // shorter than the true distance.
      if (actual != 0 && expected != 0) EXPECT_GE(actual, expected);
      if (expected == 0) {
        // Reference says unreachable within 3: cluster must agree or
        // also report 0 (caps only shrink reachability).
        EXPECT_EQ(actual, 0u);
      }
    }
  }
}

TEST_F(QueryGoldenTest, DistanceSelfAndNeighbor) {
  GraphQuery self{GraphOp::kDistance4, 10, 10, 0};
  EXPECT_EQ(Ask(self), 0u);
  const uint32_t neighbor = *RefNeighbors(10).begin();
  GraphQuery adjacent{GraphOp::kDistance4, 10, neighbor, 0};
  EXPECT_EQ(Ask(adjacent), 1u);
}

}  // namespace
}  // namespace bouncer::graph
