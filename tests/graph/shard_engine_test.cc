#include "src/graph/shard_engine.h"

#include <gtest/gtest.h>

#include "src/graph/graph_generator.h"

namespace bouncer::graph {
namespace {

GraphStore Line4() {
  // 0 - 1 - 2 - 3 (undirected path).
  GraphBuilder builder(4);
  builder.AddUndirectedEdge(0, 1);
  builder.AddUndirectedEdge(1, 2);
  builder.AddUndirectedEdge(2, 3);
  return std::move(builder).Build();
}

TEST(ShardEngineTest, OwnershipByModulo) {
  const GraphStore g = Line4();
  ShardEngine shard0(&g, 0, 2, 0);
  ShardEngine shard1(&g, 1, 2, 0);
  EXPECT_TRUE(shard0.Owns(0));
  EXPECT_TRUE(shard0.Owns(2));
  EXPECT_FALSE(shard0.Owns(1));
  EXPECT_TRUE(shard1.Owns(1));
  EXPECT_TRUE(shard1.Owns(3));
}

TEST(ShardEngineTest, DegreesForOwnedVertices) {
  const GraphStore g = Line4();
  ShardEngine shard0(&g, 0, 2, 0);
  Subquery sq;
  sq.kind = Subquery::Kind::kDegrees;
  sq.vertices = {0, 2};
  SubqueryResult result;
  shard0.Execute(sq, &result);
  EXPECT_EQ(result.degrees, (std::vector<uint32_t>{1, 2}));
}

TEST(ShardEngineTest, UnownedVerticesReportZeroDegree) {
  const GraphStore g = Line4();
  ShardEngine shard0(&g, 0, 2, 0);
  Subquery sq;
  sq.kind = Subquery::Kind::kDegrees;
  sq.vertices = {1};  // Owned by shard 1.
  SubqueryResult result;
  shard0.Execute(sq, &result);
  EXPECT_EQ(result.degrees, (std::vector<uint32_t>{0}));
}

TEST(ShardEngineTest, ExpandReturnsNeighbors) {
  const GraphStore g = Line4();
  ShardEngine shard0(&g, 0, 2, 0);
  Subquery sq;
  sq.kind = Subquery::Kind::kExpand;
  sq.vertices = {2};
  SubqueryResult result;
  shard0.Execute(sq, &result);
  EXPECT_EQ(result.neighbors, (std::vector<uint32_t>{1, 3}));
}

TEST(ShardEngineTest, ExpandSkipsUnowned) {
  const GraphStore g = Line4();
  ShardEngine shard0(&g, 0, 2, 0);
  Subquery sq;
  sq.kind = Subquery::Kind::kExpand;
  sq.vertices = {1};
  SubqueryResult result;
  shard0.Execute(sq, &result);
  EXPECT_TRUE(result.neighbors.empty());
}

TEST(ShardEngineTest, ExpandHonorsPerVertexLimit) {
  GeneratorOptions options;
  options.num_vertices = 1000;
  options.edges_per_vertex = 16;
  const GraphStore g = GeneratePreferentialAttachment(options);
  ShardEngine shard(&g, 0, 1, 0);
  // Vertex 0 is in the seed clique: a hub with a large degree.
  ASSERT_GT(g.Degree(0), 8u);
  Subquery sq;
  sq.kind = Subquery::Kind::kExpand;
  sq.vertices = {0};
  sq.limit_per_vertex = 8;
  SubqueryResult result;
  shard.Execute(sq, &result);
  EXPECT_EQ(result.neighbors.size(), 8u);
}

TEST(ShardEngineTest, ShardsPartitionDegreeWork) {
  const GraphStore g = Line4();
  // Union of per-shard degree answers equals the global answer.
  for (uint32_t v = 0; v < 4; ++v) {
    uint32_t total = 0;
    for (uint32_t s = 0; s < 2; ++s) {
      ShardEngine shard(&g, s, 2, 0);
      Subquery sq;
      sq.kind = Subquery::Kind::kDegrees;
      sq.vertices = {v};
      SubqueryResult result;
      shard.Execute(sq, &result);
      total += result.degrees[0];
    }
    EXPECT_EQ(total, g.Degree(v));
  }
}

TEST(ShardEngineTest, WorkPerEdgeChangesChecksumNotResults) {
  const GraphStore g = Line4();
  ShardEngine cheap(&g, 0, 1, 0);
  ShardEngine costly(&g, 0, 1, 100);
  Subquery sq;
  sq.kind = Subquery::Kind::kExpand;
  sq.vertices = {1};
  SubqueryResult a;
  SubqueryResult b;
  cheap.Execute(sq, &a);
  costly.Execute(sq, &b);
  EXPECT_EQ(a.neighbors, b.neighbors);
}

}  // namespace
}  // namespace bouncer::graph
