#include "src/graph/update_log.h"

#include <gtest/gtest.h>

#include <thread>

#include "src/graph/shard_engine.h"

namespace bouncer::graph {
namespace {

GraphStore Line3() {
  GraphBuilder builder(3);
  builder.AddUndirectedEdge(0, 1);
  builder.AddUndirectedEdge(1, 2);
  return std::move(builder).Build();
}

TEST(EdgeUpdateLogTest, StartsEmpty) {
  EdgeUpdateLog log;
  EXPECT_EQ(log.TotalEdges(), 0u);
  EXPECT_EQ(log.ExtraDegree(0), 0u);
  std::vector<uint32_t> out;
  log.AppendNeighbors(0, 0, &out);
  EXPECT_TRUE(out.empty());
}

TEST(EdgeUpdateLogTest, AddAndRead) {
  EdgeUpdateLog log;
  log.AddEdge(0, 5);
  log.AddEdge(0, 7);
  log.AddEdge(3, 9);
  EXPECT_EQ(log.TotalEdges(), 3u);
  EXPECT_EQ(log.ExtraDegree(0), 2u);
  EXPECT_EQ(log.ExtraDegree(3), 1u);
  std::vector<uint32_t> out;
  log.AppendNeighbors(0, 0, &out);
  EXPECT_EQ(out, (std::vector<uint32_t>{5, 7}));
}

TEST(EdgeUpdateLogTest, DuplicatesCollapse) {
  EdgeUpdateLog log;
  log.AddEdge(0, 5);
  log.AddEdge(0, 5);
  EXPECT_EQ(log.TotalEdges(), 1u);
}

TEST(EdgeUpdateLogTest, LimitRespected) {
  EdgeUpdateLog log;
  for (uint32_t i = 0; i < 10; ++i) log.AddEdge(2, 100 + i);
  std::vector<uint32_t> out;
  log.AppendNeighbors(2, 4, &out);
  EXPECT_EQ(out.size(), 4u);
}

TEST(EdgeUpdateLogTest, ConcurrentWriters) {
  EdgeUpdateLog log;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&log, t] {
      for (uint32_t i = 0; i < 5000; ++i) {
        log.AddEdge(static_cast<uint32_t>(t), 10 + i);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(log.TotalEdges(), 20000u);
  for (uint32_t v = 0; v < 4; ++v) EXPECT_EQ(log.ExtraDegree(v), 5000u);
}

TEST(EdgeUpdateLogTest, CompactFoldsBaseAndDelta) {
  const GraphStore base = Line3();
  EdgeUpdateLog log;
  log.AddEdge(0, 2);
  log.AddEdge(2, 0);
  log.AddEdge(0, 1);  // Already in base: collapses at compaction.
  const GraphStore compacted = log.Compact(base);
  EXPECT_EQ(compacted.Degree(0), 2u);  // {1, 2}.
  EXPECT_TRUE(compacted.HasEdge(0, 2));
  EXPECT_TRUE(compacted.HasEdge(2, 0));
  EXPECT_TRUE(compacted.HasEdge(1, 2));  // Base preserved.
}

TEST(ShardEngineUpdateTest, DegreesSeeDeltaEdges) {
  const GraphStore base = Line3();
  EdgeUpdateLog log;
  log.AddEdge(0, 2);
  ShardEngine shard(&base, 0, 1, 0, &log);
  Subquery sq;
  sq.kind = Subquery::Kind::kDegrees;
  sq.vertices = {0, 1};
  SubqueryResult result;
  shard.Execute(sq, &result);
  EXPECT_EQ(result.degrees, (std::vector<uint32_t>{2, 2}));  // 1+1, 2+0.
}

TEST(ShardEngineUpdateTest, ExpandSeesDeltaEdges) {
  const GraphStore base = Line3();
  EdgeUpdateLog log;
  log.AddEdge(0, 2);
  ShardEngine shard(&base, 0, 1, 0, &log);
  Subquery sq;
  sq.kind = Subquery::Kind::kExpand;
  sq.vertices = {0};
  SubqueryResult result;
  shard.Execute(sq, &result);
  EXPECT_EQ(result.neighbors, (std::vector<uint32_t>{1, 2}));
}

TEST(ShardEngineUpdateTest, ExpandCapCoversBasePlusDelta) {
  const GraphStore base = Line3();
  EdgeUpdateLog log;
  for (uint32_t i = 10; i < 20; ++i) log.AddEdge(0, i);
  ShardEngine shard(&base, 0, 1, 0, &log);
  Subquery sq;
  sq.kind = Subquery::Kind::kExpand;
  sq.vertices = {0};
  sq.limit_per_vertex = 4;
  SubqueryResult result;
  shard.Execute(sq, &result);
  EXPECT_EQ(result.neighbors.size(), 4u);  // 1 base + 3 delta.
}

TEST(ShardEngineUpdateTest, ExactCapSkipsDelta) {
  const GraphStore base = Line3();
  EdgeUpdateLog log;
  log.AddEdge(1, 9);
  ShardEngine shard(&base, 0, 1, 0, &log);
  Subquery sq;
  sq.kind = Subquery::Kind::kExpand;
  sq.vertices = {1};        // Base degree 2.
  sq.limit_per_vertex = 2;  // Cap exactly at the base degree.
  SubqueryResult result;
  shard.Execute(sq, &result);
  EXPECT_EQ(result.neighbors.size(), 2u);
}

}  // namespace
}  // namespace bouncer::graph
